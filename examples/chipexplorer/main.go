// Chipexplorer: inspect the community-detection substrate behind CDAP.
// It prints each device's hierarchy tree (the dendrogram of Algorithm 1
// and Figure 8), sweeps the reward weight omega to find the knee
// solution of Figure 9, and shows how the partition changes with omega.
//
//	go run ./examples/chipexplorer
package main

import (
	"fmt"

	qucloud "repro"
	"repro/internal/arch"
	"repro/internal/community"
)

func main() {
	// Figure 8's worked example: the 5-qubit IBM Q London "T".
	london := arch.London()
	fmt.Println("IBM Q London dendrogram (omega = 0.95):")
	fmt.Print(community.Build(london, 0.95).Dendrogram())

	// Omega controls the blend of topology and error awareness in the
	// merge reward F = dQ + omega*E*V. At 0 the tree is topology-only.
	fmt.Println("\nmerge order vs omega on London:")
	for _, w := range []float64{0, 0.95, 100} {
		tree := community.Build(london, w)
		fmt.Printf("  omega %-6g:", w)
		for _, m := range tree.MergeOrder() {
			fmt.Printf(" %v+%v", m[0], m[1])
		}
		fmt.Println()
	}

	// Figure 9: the knee of the redundant-qubits curve picks omega.
	for _, tc := range []struct {
		name string
		dev  *arch.Device
		days int
	}{
		{"IBMQ16", arch.IBMQ16(0), 21},
		{"IBMQ50", arch.IBMQ50(0), 5},
	} {
		res := qucloud.RunFig9(tc.dev, tc.days, 0.05)
		fmt.Printf("\n%s omega sweep (%d days): redundant %.2f at omega 0 -> %.2f at omega 2.5; knee at %.2f\n",
			tc.name, tc.days,
			res.AvgRedundant[0], res.AvgRedundant[len(res.AvgRedundant)-1], res.KneeOmega())
	}

	// The hierarchy tree doubles as a chip profile: deep nodes are the
	// most reliable regions.
	d := arch.IBMQ16(0)
	tree := community.Build(d, 0.95)
	fmt.Println("\nmost reliable 4-qubit communities on IBMQ16 (by region fidelity):")
	type scored struct {
		qubits []int
		fid    float64
	}
	var best []scored
	for _, n := range tree.Nodes() {
		if n.Size() == 4 {
			best = append(best, scored{n.Qubits, d.RegionFidelity(n.Qubits)})
		}
	}
	for _, s := range best {
		fmt.Printf("  %v  fidelity %.4f\n", s.qubits, s.fid)
	}
	if len(best) == 0 {
		fmt.Println("  (no exact 4-qubit community this calibration; CDAP would subset a larger one)")
	}
}
