// Cloudscheduler: drive the EPST-based compilation task scheduler
// (Algorithm 4) over a queue of jobs and sweep the fidelity-violation
// threshold epsilon, reproducing the trade-off of the paper's Figure 14:
// larger epsilon means more co-location (higher TRF/throughput) at some
// fidelity cost.
//
//	go run ./examples/cloudscheduler
package main

import (
	"fmt"
	"log"

	qucloud "repro"
	"repro/internal/arch"
	"repro/internal/sched"
)

func main() {
	device := arch.IBMQ16(0)

	// The queue: every tiny- and small-sized Table I program, twice.
	jobs := qucloud.Fig14Queue(2)
	fmt.Printf("queue: %d jobs on %s\n\n", len(jobs), device.Name)

	for _, eps := range []float64{0.05, 0.10, 0.15, 0.20} {
		cfg := sched.DefaultConfig()
		cfg.Epsilon = eps
		batches, err := sched.Schedule(device, jobs, cfg)
		if err != nil {
			log.Fatal(err)
		}
		multi := 0
		for _, b := range batches {
			if len(b.JobIDs) > 1 {
				multi++
			}
		}
		fmt.Printf("eps=%.2f: %2d batches (%2d multi-program), TRF %.3f\n",
			eps, len(batches), multi, sched.TRF(len(jobs), batches))
	}

	// Show what one schedule actually looks like.
	cfg := sched.DefaultConfig()
	cfg.Epsilon = 0.15
	batches, err := sched.Schedule(device, jobs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	byID := map[int]string{}
	for _, j := range jobs {
		byID[j.ID] = j.Circ.Name
	}
	fmt.Println("\nschedule at eps=0.15:")
	for bi, b := range batches {
		fmt.Printf("  batch %2d:", bi)
		for _, id := range b.JobIDs {
			fmt.Printf(" %s", byID[id])
		}
		fmt.Println()
	}
}
