// Multiprogramming: co-locate two quantum programs on IBM Q16 Melbourne
// and compare all six compilation strategies of the paper's Table II —
// separate execution, merged SABRE, the FRP baseline, QuCloud
// (CDAP+X-SWAP), and the two ablations.
//
//	go run ./examples/multiprogramming
package main

import (
	"fmt"
	"log"

	qucloud "repro"
	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/nisqbench"
	"repro/internal/sim"
)

func main() {
	device := arch.IBMQ16(0)

	// Highlight the chip's weak links first, like the paper's Figure 5.
	fmt.Printf("chip %s: %d qubits, %d links, %d weak links (err >= 7%%)\n\n",
		device.Name, device.NumQubits(), device.Coupling.M(), len(device.WeakLinks(0.07)))

	progs := []*circuit.Circuit{
		nisqbench.MustGet("bv_n3"),
		nisqbench.MustGet("toffoli_3"),
	}
	fmt.Printf("workload: %s (%dq) + %s (%dq)\n\n",
		progs[0].Name, progs[0].NumQubits, progs[1].Name, progs[1].NumQubits)

	fmt.Printf("%-12s %6s %6s %6s %6s %8s %8s\n",
		"strategy", "CNOTs", "depth", "swaps", "inter", "PST1(%)", "PST2(%)")
	for _, strat := range qucloud.Strategies {
		comp := qucloud.NewCompiler(device)
		res, err := comp.Compile(progs, strat)
		if err != nil {
			log.Fatalf("%s: %v", strat, err)
		}
		psts, err := comp.Simulate(res, 2000, 7, sim.DefaultNoise())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %6d %6d %6d %6d %8.1f %8.1f\n",
			strat, res.CNOTs, res.Depth, res.Swaps, res.InterSwaps,
			psts[0]*100, psts[1]*100)
	}

	fmt.Println("\nSeparate execution is the fidelity upper bound (no cross-talk,")
	fmt.Println("no idle waiting, whole chip available); QuCloud's CDAP+X-SWAP")
	fmt.Println("recovers most of it while running both programs at once (TRF 2).")
}
