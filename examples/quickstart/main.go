// Quickstart: compile one quantum program onto simulated IBM Q16
// Melbourne with QuCloud and estimate its fidelity.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	qucloud "repro"
	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/nisqbench"
	"repro/internal/sim"
)

func main() {
	// A chip is a coupling map plus one day of calibration data; the
	// seed picks the synthetic "calibration day".
	device := arch.IBMQ16(0)

	// Table I benchmark programs ship with the library...
	prog := nisqbench.MustGet("bv_n4")
	fmt.Printf("program %s: %d qubits, %d CNOTs, depth %d\n",
		prog.Name, prog.NumQubits, prog.RawCNOTCount(), prog.Depth())

	// ...or build circuits directly:
	bell := circuit.New("bell", 2)
	bell.H(0).CX(0, 1).MeasureAll()

	comp := qucloud.NewCompiler(device)
	res, err := comp.Compile([]*circuit.Circuit{prog}, qucloud.CDAPXSwap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d CNOTs, depth %d, %d SWAPs inserted\n",
		res.CNOTs, res.Depth, res.Swaps)

	// The initial mapping shows which physical qubits were picked (the
	// most reliable connected region of the hierarchy tree).
	fmt.Printf("initial mapping (logical -> physical): %v\n", res.Initial[0][0])

	// Estimate fidelity with the Monte-Carlo noise simulator (the
	// stand-in for the paper's 8024 hardware trials).
	psts, err := comp.Simulate(res, 2000, 1, sim.DefaultNoise())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated PST: %.1f%%\n", psts[0]*100)

	// The compiled schedule is a plain physical circuit; export it as
	// OpenQASM if you want to inspect or run it elsewhere.
	qasm := circuit.QASMString(res.Schedules[0].PhysicalCircuit())
	fmt.Printf("\ncompiled circuit (%d QASM lines)\n", len(qasm))
}
