// Cloudservice: simulate a day of a quantum cloud backend. Jobs arrive
// as a Poisson stream (the paper reports >120 queued jobs/day on IBMQ
// Vigo); we compare three service policies — separate execution,
// unconditional pairing, and the QuCloud EPST scheduler — on waiting
// time, throughput, and qubit utilization.
//
//	go run ./examples/cloudservice
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/cloudsim"
	"repro/internal/nisqbench"
)

func main() {
	device := arch.IBMQ16(0)

	// A realistic mix of tiny and small programs, 60 jobs arriving
	// with a 4-second mean gap — an oversubscribed backend (one batch
	// takes ~10 s to execute 8024 shots, so a queue builds up).
	var circs []*circuit.Circuit
	for _, name := range []string{"bv_n3", "bv_n4", "peres_3", "toffoli_3",
		"fredkin_3", "3_17_13", "4mod5-v1_22", "mod5mils_65", "alu-v0_27"} {
		circs = append(circs, nisqbench.MustGet(name))
	}
	jobs := cloudsim.PoissonArrivals(circs, 60, 4, 2026)
	fmt.Printf("backend %s: %d jobs over %.1f minutes of arrivals\n\n",
		device.Name, len(jobs), jobs[len(jobs)-1].Arrival/60)

	fmt.Printf("%-15s %9s %9s %10s %8s %6s %6s\n",
		"policy", "makespan", "avg wait", "jobs/hour", "util(%)", "TRF", "batches")
	for _, policy := range []cloudsim.Policy{cloudsim.FIFOSeparate, cloudsim.FIFOPairs, cloudsim.QuCloud} {
		cfg := cloudsim.DefaultConfig()
		cfg.Policy = policy
		m, _, err := cloudsim.Run(device, jobs, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %8.1fm %8.1fm %10.1f %8.1f %6.2f %6d\n",
			policy, m.Makespan/60, m.AvgWait/60, m.ThroughputPerHour,
			m.QubitUtilization*100, m.TRF, m.Batches)
	}

	fmt.Println("\nThe QuCloud policy reduces waiting time and raises utilization by")
	fmt.Println("co-locating jobs whose estimated fidelity loss stays under epsilon;")
	fmt.Println("unconditional pairing gets similar throughput but sacrifices fidelity")
	fmt.Println("(compare the scheduler evaluation in examples/cloudscheduler).")
}
