// Adaptiveruntime: the QuOS prototype. A feedback controller wraps the
// EPST scheduler: each batch's achieved fidelity (Monte-Carlo execution
// standing in for hardware) is compared against the separate-execution
// expectation, and the co-location threshold epsilon adapts — backing
// off when multi-programming hurts, probing upward when it is safe.
// This closes the loop the paper's §III says static compilers cannot:
// reverting to separate execution when fidelity drops.
//
//	go run ./examples/adaptiveruntime
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/arch"
	"repro/internal/nisqbench"
	"repro/internal/quos"
	"repro/internal/sched"
)

func main() {
	device := arch.IBMQ16(0)

	// A queue mixing friendly tiny programs with deeper small ones.
	var names []string
	names = append(names, nisqbench.ByClass(nisqbench.Tiny)...)
	names = append(names, nisqbench.ByClass(nisqbench.Small)...)
	names = append(names, names...)
	jobs := make([]sched.Job, len(names))
	for i, n := range names {
		jobs[i] = sched.Job{ID: i, Circ: nisqbench.MustGet(n)}
	}
	fmt.Printf("QuOS adaptive runtime on %s: %d queued jobs\n\n", device.Name, len(jobs))

	cfg := quos.DefaultConfig()
	res, err := quos.Run(device, jobs, cfg, 2026)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-5s %-42s %8s %8s %8s\n", "batch", "jobs", "PST(%)", "est(%)", "eps")
	for i, r := range res.Reports {
		mark := ""
		if r.Violated {
			mark = "  <- fidelity violation, backing off"
		}
		ids := make([]string, len(r.JobIDs))
		for k, id := range r.JobIDs {
			ids[k] = jobs[id].Circ.Name
		}
		fmt.Printf("%-5d %-42s %8.1f %8.1f %8.3f%s\n",
			i, strings.Join(ids, "+"), r.AvgPST*100, r.SeparateEstimate*100, r.EpsilonAfter, mark)
	}
	fmt.Printf("\noverall: avg PST %.1f%%, TRF %.2f, final epsilon %.3f\n",
		res.AvgPST*100, res.TRF, res.FinalEpsilon)
}
