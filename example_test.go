package qucloud_test

import (
	"fmt"

	qucloud "repro"
	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/community"
	"repro/internal/nisqbench"
	"repro/internal/sched"
)

// Compile two Table I benchmarks together on IBM Q16 Melbourne with the
// full QuCloud pipeline (CDAP partitioning + X-SWAP routing).
func ExampleCompiler_Compile() {
	device := arch.IBMQ16(0) // synthetic calibration day 0
	comp := qucloud.NewCompiler(device)
	progs := []*circuit.Circuit{
		nisqbench.MustGet("bv_n3"),
		nisqbench.MustGet("toffoli_3"),
	}
	res, err := comp.Compile(progs, qucloud.CDAPXSwap)
	if err != nil {
		panic(err)
	}
	fmt.Printf("strategy: %s\n", res.Strategy)
	fmt.Printf("programs: %d, schedules: %d\n", len(res.Programs), len(res.Schedules))
	fmt.Printf("valid: %v\n", res.Validate() == nil)
	// Output:
	// strategy: CDAP+X-SWAP
	// programs: 2, schedules: 1
	// valid: true
}

// Build the hierarchy tree of Figure 8 (IBM Q London) and print its
// dendrogram.
func ExampleNewCompiler_hierarchyTree() {
	device := arch.London()
	tree := community.Build(device, 0.95)
	fmt.Print(tree.Dendrogram())
	// Output:
	// [0 1 2 3 4] (merge 4)
	//   [0 1 2] (merge 3)
	//     [0 1] (merge 1)
	//       Q0
	//       Q1
	//     Q2
	//   [3 4] (merge 2)
	//     Q3
	//     Q4
}

// Schedule a four-job queue with the EPST task scheduler (Algorithm 4).
func ExampleCompiler_scheduler() {
	device := arch.IBMQ16(0)
	jobs := []sched.Job{
		{ID: 0, Circ: nisqbench.MustGet("bv_n3")},
		{ID: 1, Circ: nisqbench.MustGet("bv_n4")},
		{ID: 2, Circ: nisqbench.MustGet("toffoli_3")},
		{ID: 3, Circ: nisqbench.MustGet("peres_3")},
	}
	cfg := sched.DefaultConfig() // epsilon = 0.15, N = 10
	batches, err := sched.Schedule(device, jobs, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("batches: %d, TRF: %.2f\n", len(batches), sched.TRF(len(jobs), batches))
	// Output:
	// batches: 2, TRF: 2.00
}
