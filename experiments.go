package qucloud

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/community"
	"repro/internal/nisqbench"
	"repro/internal/partition"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Table2Workloads lists the ten two-program workloads of Table II
// (five tiny-sized pairs, five small-sized pairs).
var Table2Workloads = [][2]string{
	{"bv_n3", "bv_n3"},
	{"bv_n3", "bv_n4"},
	{"bv_n3", "peres_3"},
	{"bv_n3", "toffoli_3"},
	{"bv_n3", "fredkin_3"},
	{"3_17_13", "3_17_13"},
	{"3_17_13", "4mod5-v1_22"},
	{"3_17_13", "mod5mils_65"},
	{"3_17_13", "alu-v0_27"},
	{"3_17_13", "decod24-v2_43"},
}

// Table3Mixes lists the twelve 4-program IBMQ50 workloads of Table III.
var Table3Mixes = [][]string{
	{"aj-e11_165", "alu-v2_31", "4gt4-v0_72", "sf_276"},
	{"alu-bdd_288", "ex2_227", "ham7_104", "C17_204"},
	{"bv_n10", "ising_model_10", "qft_10", "sys6-v0_111"},
	{"aj-e11_165", "alu-v2_31", "ising_model_10", "cnt3-5_180"},
	{"4gt4-v0_72", "sf_276", "sym9_146", "rd53_311"},
	{"alu-bdd_288", "ex2_227", "qft_10", "sys6-v0_111"},
	{"ham7_104", "C17_204", "bv_n10", "ising_model_10"},
	{"aj-e11_165", "4gt4-v0_72", "rd53_311", "cnt3-5_180"},
	{"alu-v2_31", "sf_276", "sym9_146", "qft_16"},
	{"alu-bdd_288", "ham7_104", "ising_model_10", "sys6-v0_111"},
	{"ex2_227", "C17_204", "bv_n10", "qft_10"},
	{"aj-e11_165", "sf_276", "C17_204", "sys6-v0_111"},
}

// Table2Row is one workload's PSTs (percent) under every strategy.
type Table2Row struct {
	W1, W2 string
	// PST[strategy] = {program 1 PST, program 2 PST}, in percent.
	PST map[Strategy][2]float64
}

// Avg returns the row's mean PST (percent) under the strategy.
func (r Table2Row) Avg(s Strategy) float64 {
	p := r.PST[s]
	return (p[0] + p[1]) / 2
}

// RunTable2 reproduces Table II: for each two-program workload on the
// given IBMQ16 calibration, it compiles under all six strategies and
// estimates PST with `trials` Monte-Carlo trials per run. Strategies
// that fail to co-locate a workload fall back to separate execution, as
// Algorithm 2 prescribes. Workloads run in parallel across the worker
// pool; the simulation seed is a function of the workload index, so the
// table is identical at every parallelism level.
func RunTable2(calSeed int64, trials int) ([]Table2Row, error) {
	all := make([]int, len(Table2Workloads))
	for i := range all {
		all[i] = i
	}
	return RunTable2Subset(calSeed, trials, all)
}

// RunTable2Subset runs only the given workload indices (0-based into
// Table2Workloads); tests and quick benchmarks use it to bound runtime.
func RunTable2Subset(calSeed int64, trials int, workloadIndices []int) ([]Table2Row, error) {
	d := arch.IBMQ16(calSeed)
	noise := sim.DefaultNoise()
	rows := make([]Table2Row, len(workloadIndices))
	err := pool.ForEach(context.Background(), len(workloadIndices), 0, func(ri int) error {
		wi := workloadIndices[ri]
		w := Table2Workloads[wi]
		progs := []*circuit.Circuit{nisqbench.MustGet(w[0]), nisqbench.MustGet(w[1])}
		row := Table2Row{W1: w[0], W2: w[1], PST: map[Strategy][2]float64{}}
		for _, strat := range Strategies {
			comp := NewCompiler(d)
			comp.Workers = 1 // rows already fan out; keep inner work sequential
			res, err := comp.Compile(progs, strat)
			if err != nil {
				// Fall back to separate execution (Algorithm 2 line 9).
				res, err = comp.Compile(progs, Separate)
				if err != nil {
					return fmt.Errorf("table2 %s+%s %s: %w", w[0], w[1], strat, err)
				}
			}
			psts, err := comp.Simulate(res, trials, 1000+int64(wi), noise)
			if err != nil {
				return fmt.Errorf("table2 %s+%s %s: %w", w[0], w[1], strat, err)
			}
			row.PST[strat] = [2]float64{psts[0] * 100, psts[1] * 100}
		}
		rows[ri] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Table3Row is one mix's compilation overheads under the co-located
// strategies (Separate is not part of Table III).
type Table3Row struct {
	Mix        string
	Benchmarks []string
	CNOTs      map[Strategy]int
	Depth      map[Strategy]int
}

// Table3Strategies are the columns of Table III.
var Table3Strategies = []Strategy{SABRE, Baseline, CDAPXSwap, CDAPOnly, XSwapOnly}

// RunTable3 reproduces Table III: post-compilation CNOT counts and
// circuit depth for the twelve 4-program mixes on simulated IBMQ50
// (best of the compiler's attempts, as in the paper). Mixes compile in
// parallel across CPU cores.
func RunTable3(calSeed int64) ([]Table3Row, error) {
	all := make([]int, len(Table3Mixes))
	for i := range all {
		all[i] = i
	}
	return RunTable3Subset(calSeed, all)
}

// RunTable3Subset runs only the given mix indices (0-based into
// Table3Mixes); tests and quick benchmarks use it to bound runtime.
func RunTable3Subset(calSeed int64, mixIndices []int) ([]Table3Row, error) {
	d := arch.IBMQ50(calSeed)
	d.Hops() // warm the shared distance cache before fanning out
	rows := make([]Table3Row, len(mixIndices))
	err := pool.ForEach(context.Background(), len(mixIndices), 0, func(ri int) error {
		mi := mixIndices[ri]
		mix := Table3Mixes[mi]
		progs := make([]*circuit.Circuit, len(mix))
		for i, name := range mix {
			progs[i] = nisqbench.MustGet(name)
		}
		row := Table3Row{
			Mix:        fmt.Sprintf("Mix_%d", mi+1),
			Benchmarks: mix,
			CNOTs:      map[Strategy]int{},
			Depth:      map[Strategy]int{},
		}
		for _, strat := range Table3Strategies {
			comp := NewCompiler(d)
			comp.Workers = 1 // mixes already fan out; keep inner work sequential
			// Table III measures pure compilation overhead of the
			// published algorithms: the baseline's transition is
			// noise-aware SABRE (Das et al.), while SABRE and the
			// QuCloud variants score SWAPs by distance only.
			if strat != Baseline {
				comp.NoisePenalty = 0
			}
			res, err := comp.Compile(progs, strat)
			if err != nil {
				// A strategy that cannot co-locate the mix reverts
				// to separate execution (Algorithm 2 line 9); its
				// overheads are the separate-compilation totals.
				res, err = comp.Compile(progs, Separate)
				if err != nil {
					return fmt.Errorf("table3 %s %s: %w", row.Mix, strat, err)
				}
			}
			row.CNOTs[strat] = res.CNOTs
			row.Depth[strat] = res.Depth
		}
		rows[ri] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig9Result is the ω sweep of Figure 9 for one chip.
type Fig9Result struct {
	Omegas []float64
	// AvgRedundant[i] is the mean redundant-qubit count at Omegas[i]
	// over all calibration days.
	AvgRedundant []float64
	// KneeIndex locates the knee solution in Omegas.
	KneeIndex int
}

// KneeOmega returns the ω at the knee.
func (f Fig9Result) KneeOmega() float64 { return f.Omegas[f.KneeIndex] }

// RunFig9 reproduces Figure 9: it sweeps ω from 0 to 2.5 over `days`
// synthetic calibration days of the device and reports the average
// redundant qubits per ω plus the knee solution.
func RunFig9(d *arch.Device, days int, step float64) Fig9Result {
	if step <= 0 {
		step = 0.05
	}
	cals := arch.CalibrationSeries(d, 1, days)
	var omegas []float64
	for w := 0.0; w <= 2.5+1e-9; w += step {
		omegas = append(omegas, w)
	}
	series := community.OmegaSweep(d, cals, omegas)
	return Fig9Result{
		Omegas:       omegas,
		AvgRedundant: series,
		KneeIndex:    community.Knee(omegas, series),
	}
}

// Fig14Point is one scheduler configuration's outcome.
type Fig14Point struct {
	Label   string
	Epsilon float64
	// AvgPST is the mean PST over all jobs, percent.
	AvgPST float64
	// TRF is the trial reduction factor (throughput gain).
	TRF float64
}

// Fig14Queue returns the job queue used by the scheduler evaluation:
// the tiny- and small-sized programs of Table I, duplicated to
// `copies` rounds.
func Fig14Queue(copies int) []sched.Job {
	var names []string
	names = append(names, nisqbench.ByClass(nisqbench.Tiny)...)
	names = append(names, nisqbench.ByClass(nisqbench.Small)...)
	var jobs []sched.Job
	id := 0
	for c := 0; c < copies; c++ {
		for _, n := range names {
			jobs = append(jobs, sched.Job{ID: id, Circ: nisqbench.MustGet(n)})
			id++
		}
	}
	return jobs
}

// RunFig14 reproduces Figure 14: it schedules the queue under each ε,
// compiles every batch with CDAP+X-SWAP (falling back to separate
// execution when a batch cannot be co-located), simulates PST, and
// reports PST and TRF, together with the separate-execution and
// random-pairing baselines.
func RunFig14(calSeed int64, epsilons []float64, trials int) ([]Fig14Point, error) {
	d := arch.IBMQ16(calSeed)
	jobs := Fig14Queue(2)
	var points []Fig14Point

	sepBatches := sched.SeparateAll(jobs)
	sepPST, err := runBatches(d, jobs, sepBatches, trials)
	if err != nil {
		return nil, err
	}
	points = append(points, Fig14Point{Label: "Separate", Epsilon: -1, AvgPST: sepPST, TRF: sched.TRF(len(jobs), sepBatches)})

	randBatches := sched.RandomPairsRand(jobs, rand.New(rand.NewSource(calSeed+5)))
	randPST, err := runBatches(d, jobs, randBatches, trials)
	if err != nil {
		return nil, err
	}
	points = append(points, Fig14Point{Label: "Random", Epsilon: -1, AvgPST: randPST, TRF: sched.TRF(len(jobs), randBatches)})

	for _, eps := range epsilons {
		cfg := sched.DefaultConfig()
		cfg.Epsilon = eps
		batches, err := sched.Schedule(d, jobs, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig14 eps=%v: %w", eps, err)
		}
		pst, err := runBatches(d, jobs, batches, trials)
		if err != nil {
			return nil, fmt.Errorf("fig14 eps=%v: %w", eps, err)
		}
		points = append(points, Fig14Point{
			Label:   fmt.Sprintf("eps=%.2f", eps),
			Epsilon: eps,
			AvgPST:  pst,
			TRF:     sched.TRF(len(jobs), batches),
		})
	}
	return points, nil
}

// runBatches compiles and simulates every batch (CDAP+X-SWAP for
// multi-program batches, separate otherwise) and returns the mean PST
// over all jobs, in percent. Batches run in parallel (the Compiler is
// safe for concurrent use); each batch writes its PSTs to its own index
// and the float accumulation happens in batch order afterwards, so the
// mean is bit-identical at every parallelism level.
func runBatches(d *arch.Device, jobs []sched.Job, batches []sched.Batch, trials int) (float64, error) {
	byID := map[int]*circuit.Circuit{}
	for _, j := range jobs {
		byID[j.ID] = j.Circ
	}
	comp := NewCompiler(d)
	comp.Attempts = 2 // keep queue-level experiments tractable
	comp.Workers = 1  // batches already fan out; keep inner work sequential
	noise := sim.DefaultNoise()
	perBatch := make([][]float64, len(batches))
	err := pool.ForEach(context.Background(), len(batches), 0, func(bi int) error {
		b := batches[bi]
		progs := make([]*circuit.Circuit, len(b.JobIDs))
		for i, id := range b.JobIDs {
			progs[i] = byID[id]
		}
		strat := CDAPXSwap
		if len(progs) == 1 {
			strat = Separate
		}
		res, err := comp.Compile(progs, strat)
		if err != nil {
			// Co-location infeasible at compile time: run separately.
			res, err = comp.Compile(progs, Separate)
			if err != nil {
				return err
			}
		}
		psts, err := comp.Simulate(res, trials, 4000+int64(bi), noise)
		if err != nil {
			return err
		}
		perBatch[bi] = psts
		return nil
	})
	if err != nil {
		return 0, err
	}
	total, count := 0.0, 0
	for _, psts := range perBatch {
		for _, p := range psts {
			total += p * 100
			count++
		}
	}
	if count == 0 {
		return 0, nil
	}
	return total / float64(count), nil
}

// ScaleRow reports one chip's results for the scalability experiment.
type ScaleRow struct {
	Device    string
	Qubits    int
	CNOTs     map[Strategy]int
	Depth     map[Strategy]int
	CompileMS map[Strategy]float64
}

// ScaleStrategies are the columns of the scalability experiment.
var ScaleStrategies = []Strategy{Baseline, CDAPXSwap}

// RunScale supports the paper's §V-B2 scalability claim: the same
// two-program workload (3_17_13 + alu-v0_27) is compiled on every
// standard chip from 15 to 50 qubits, comparing the baseline and
// QuCloud on post-compilation overheads and compile time.
func RunScale(calSeed int64) ([]ScaleRow, error) {
	progs := []*circuit.Circuit{
		nisqbench.MustGet("3_17_13"),
		nisqbench.MustGet("alu-v0_27"),
	}
	var rows []ScaleRow
	for _, name := range arch.StandardDevices() {
		d, err := arch.ByName(name, calSeed)
		if err != nil {
			return nil, err
		}
		if d.NumQubits() < 8 {
			continue // London cannot host the pair
		}
		row := ScaleRow{
			Device:    name,
			Qubits:    d.NumQubits(),
			CNOTs:     map[Strategy]int{},
			Depth:     map[Strategy]int{},
			CompileMS: map[Strategy]float64{},
		}
		for _, strat := range ScaleStrategies {
			comp := NewCompiler(d)
			comp.Attempts = 3
			start := time.Now()
			res, err := comp.Compile(progs, strat)
			if err != nil {
				return nil, fmt.Errorf("scale %s %s: %w", name, strat, err)
			}
			row.CNOTs[strat] = res.CNOTs
			row.Depth[strat] = res.Depth
			row.CompileMS[strat] = float64(time.Since(start).Microseconds()) / 1000
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunTreeStaleness evaluates the paper's §IV-A1 claim that the
// hierarchy tree "only needs to be constructed once in each calibration
// cycle": calibration drifts day by day, the day-0 tree is reused, and
// for each day we compare the EPST of the allocation the stale tree
// yields against a freshly built tree's. Returned ratios (stale/fresh,
// per day after day 0) near 1.0 mean reuse is safe.
func RunTreeStaleness(calSeed int64, days int, drift float64) ([]float64, error) {
	d := arch.IBMQ16(calSeed)
	series := arch.DriftSeries(d, calSeed, days, drift)
	progs := []*circuit.Circuit{
		nisqbench.MustGet("3_17_13"),
		nisqbench.MustGet("alu-v0_27"),
	}
	arch.ApplyCalibration(d, series[0])
	staleTree := community.Build(d, 0.95)

	epstOf := func(tree *community.Tree) (float64, error) {
		res, err := partition.CDAP(d, tree, progs)
		if err != nil {
			return 0, err
		}
		total := 0.0
		for i, a := range res.Assignments {
			total += d.EPST(a.Region, progs[i].RawCNOTCount(), progs[i].Gate1Count(), progs[i].NumQubits)
		}
		return total / float64(len(progs)), nil
	}

	var ratios []float64
	for t := 1; t < days; t++ {
		arch.ApplyCalibration(d, series[t])
		fresh := community.Build(d, 0.95)
		freshEPST, err := epstOf(fresh)
		if err != nil {
			return nil, fmt.Errorf("staleness day %d fresh: %w", t, err)
		}
		staleEPST, err := epstOf(staleTree)
		if err != nil {
			return nil, fmt.Errorf("staleness day %d stale: %w", t, err)
		}
		ratios = append(ratios, staleEPST/freshEPST)
	}
	return ratios, nil
}

// CliffordRow is one strategy's per-program PSTs in the 50-qubit
// Clifford-workload experiment.
type CliffordRow struct {
	Strategy Strategy
	PST      []float64 // percent, per program
	Avg      float64
	CNOTs    int
	Depth    int
}

// CliffordWorkload is the 4-program Clifford workload used by
// RunCliffordFidelity: 28 qubits of Bernstein-Vazirani, GHZ and
// Deutsch-Jozsa circuits (all stabilizer-simulable).
func CliffordWorkload() []*circuit.Circuit {
	return []*circuit.Circuit{
		nisqbench.MustGet("bv_n10"),
		nisqbench.MustGet("ghz_n8"),
		nisqbench.MustGet("dj_n4"),
		nisqbench.BernsteinVazirani(6),
	}
}

// RunCliffordFidelity extends the paper's evaluation beyond what real
// hardware allowed: per-program PST on the simulated 50-qubit chip,
// computed exactly with the stabilizer backend, for separate execution,
// the FRP baseline, and QuCloud.
func RunCliffordFidelity(calSeed int64, trials int) ([]CliffordRow, error) {
	d := arch.IBMQ50(calSeed)
	progs := CliffordWorkload()
	noise := sim.DefaultNoise()
	strategies := []Strategy{Separate, Baseline, CDAPXSwap}
	rows := make([]CliffordRow, len(strategies))
	err := pool.ForEach(context.Background(), len(strategies), 0, func(si int) error {
		strat := strategies[si]
		comp := NewCompiler(d)
		comp.Attempts = 2
		comp.Workers = 1 // strategies already fan out; keep inner work sequential
		res, err := comp.Compile(progs, strat)
		if err != nil {
			return fmt.Errorf("clifford %s: %w", strat, err)
		}
		psts, err := comp.SimulateClifford(res, trials, 7000, noise)
		if err != nil {
			return fmt.Errorf("clifford %s: %w", strat, err)
		}
		row := CliffordRow{Strategy: strat, CNOTs: res.CNOTs, Depth: res.Depth}
		sum := 0.0
		for _, p := range psts {
			row.PST = append(row.PST, p*100)
			sum += p * 100
		}
		row.Avg = sum / float64(len(psts))
		rows[si] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// CrosstalkMixes lists the three-program workloads of the
// crosstalk-awareness experiment. Each mix occupies 11-14 of IBMQ16's
// 15 qubits, so CDAP cannot separate the programs: regions are forced
// to pack side by side and the only freedom left is WHICH boundary
// pairs end up co-firing. That is exactly the regime where the
// pairwise E(g_i|g_j) model has something to buy.
var CrosstalkMixes = [][]string{
	{"3_17_13", "4mod5-v1_22", "decod24-v2_43"},
	{"3_17_13", "mod5mils_65", "decod24-v2_43"},
	{"bv_n4", "alu-v0_27", "3_17_13"},
	{"toffoli_3", "3_17_13", "mod5mils_65"},
	{"fredkin_3", "decod24-v2_43", "4mod5-v1_22"},
	{"peres_3", "alu-v0_27", "decod24-v2_43"},
}

// CrosstalkRow is one workload's outcome in the crosstalk-awareness
// experiment: mean PST (percent) of the co-located mix when the
// compiler sees the pairwise matrix versus when it compiles blind, both
// simulated on the same matrix-carrying chip (the physical truth).
type CrosstalkRow struct {
	Programs []string
	// AwarePST and BlindPST are mean PSTs in percent.
	AwarePST, BlindPST float64
	// AwareHostile and BlindHostile count characterized hostile pairs
	// (ratio >= 2) spanning different programs' regions in each
	// placement.
	AwareHostile, BlindHostile int
}

// Delta returns the awareness gain in PST points.
func (r CrosstalkRow) Delta() float64 { return r.AwarePST - r.BlindPST }

// RunCrosstalkAware measures what the pairwise crosstalk model buys on
// an adversarial chip: IBMQ16 with a synthetic SRB matrix where ~50% of
// adjacent link pairs are hostile (conditional error 8-12x base). Each
// CrosstalkMixes workload is compiled twice with CDAP+X-SWAP — once on
// the matrix-carrying device (CDAP penalizes hostile co-location and
// the simulator is the same physical truth) and once on a matrix-free
// copy with identical base calibration (the pre-SRB compiler) — and
// both schedules are then simulated on the matrix-carrying chip.
func RunCrosstalkAware(calSeed int64, trials int) ([]CrosstalkRow, error) {
	aware := arch.IBMQ16(calSeed)
	aware.Crosstalk = arch.GenerateHostileCrosstalk(aware, calSeed+1, 0.5, 8, 12)
	if err := aware.Validate(); err != nil {
		return nil, err
	}
	blind := arch.IBMQ16(calSeed) // same calibration, no matrix
	noise := sim.DefaultNoise()

	rows := make([]CrosstalkRow, len(CrosstalkMixes))
	err := pool.ForEach(context.Background(), len(CrosstalkMixes), 0, func(wi int) error {
		w := CrosstalkMixes[wi]
		progs := make([]*circuit.Circuit, len(w))
		for i, name := range w {
			progs[i] = nisqbench.MustGet(name)
		}
		row := CrosstalkRow{Programs: w}
		for _, arm := range []struct {
			compileOn *arch.Device
			out       *float64
			hostile   *int
		}{
			{aware, &row.AwarePST, &row.AwareHostile},
			{blind, &row.BlindPST, &row.BlindHostile},
		} {
			comp := NewCompiler(arm.compileOn)
			comp.Attempts = 2
			comp.Workers = 1 // workloads already fan out
			res, err := comp.Compile(progs, CDAPXSwap)
			if err != nil {
				return fmt.Errorf("crosstalk mix %d: %w", wi, err)
			}
			// Simulate on the matrix chip either way: the hardware has
			// the crosstalk whether or not the compiler modeled it.
			truth := NewCompiler(aware)
			truth.Workers = 1
			psts, err := truth.Simulate(res, trials, 4200+int64(wi), noise)
			if err != nil {
				return fmt.Errorf("crosstalk mix %d: %w", wi, err)
			}
			sum := 0.0
			for _, p := range psts {
				sum += p * 100
			}
			*arm.out = sum / float64(len(psts))
			*arm.hostile = hostileAdjacency(aware, res)
		}
		rows[wi] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// hostileAdjacency counts the characterized hostile pairs (ratio >= 2)
// spanning two different programs' initial regions in the result.
func hostileAdjacency(d *arch.Device, res *Result) int {
	if len(res.Initial) == 0 {
		return 0
	}
	maps := res.Initial[0]
	n := 0
	for i := 0; i < len(maps); i++ {
		for j := 0; j < len(maps); j++ {
			if i == j {
				continue
			}
			for _, ei := range d.Coupling.InducedEdges(maps[i]) {
				for _, ej := range d.Coupling.InducedEdges(maps[j]) {
					if d.CrosstalkRatio(ei, ej) >= 2 {
						n++
					}
				}
			}
		}
	}
	return n
}
