# qucloud-go — build, test, and experiment targets.

GO ?= go

.PHONY: all build vet lint lint-json test race chaos bench bench-json bench-parallel-json bench-compare fuzz-smoke cover experiments examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Domain-specific static checks: determinism (norandglobal,
# nowallclock, maporder, detflow), float safety (floateq), concurrency
# hygiene (guardedby, lockorder, atomicmix), cancellation plumbing
# (ctxflow), and output discipline (noprint); see internal/lint and
# `go run ./cmd/qulint -list`.
lint:
	$(GO) run ./cmd/qulint ./...

# Machine-readable lint artifact: the full check set over ./... as a
# JSON object (findings with per-check docs, the selected checks, and
# //lint:ignore suppression counts) written to LINT.json.
lint-json:
	$(GO) run ./cmd/qulint -json ./... > LINT.json

# The default test path runs vet and qulint first, then the full
# suite, then the race detector over the concurrent packages (the
# service, its scheduler dependencies, the daemon, and the sharded
# simulation/compile engines plus their worker pool).
test: vet lint
	$(GO) test ./...
	$(GO) test -race ./internal/service/... ./internal/fleet/... ./internal/sched/... ./internal/cloudsim/... ./cmd/qucloudd/... ./internal/sim/... ./internal/core/... ./internal/pool/... ./internal/ccache/...
	$(MAKE) chaos

# Fault-injection chaos suite: drives the full qucloudd HTTP service
# through injected panics, timeouts, and error bursts under the race
# detector (see internal/service/chaos_test.go and DESIGN.md §10).
chaos:
	$(GO) test -race -run 'TestChaos' ./internal/service/...

# Full race-detector sweep over every package (slow).
race:
	$(GO) test -race ./...

# Short test run (skips the large-chip stress cases).
test-short:
	$(GO) test -short ./...

# Full benchmark sweep: regenerates every table and figure. Slow (~10 min).
bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzz pass over the two untrusted-input parsers (QASM source and
# device-spec JSON). Go allows one -fuzz target per invocation, so each
# gets its own ~10s budget; the checked-in corpora under testdata/fuzz
# replay on every plain `go test` run as well.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParseQASMString -fuzztime 10s ./internal/circuit
	$(GO) test -run '^$$' -fuzz FuzzDeviceSpec -fuzztime 10s ./internal/arch

# Machine-readable benchmark records: the sequential-vs-parallel
# Simulate micro-benches, the packed-vs-boolean tableau pair, the
# SABRE/X-SWAP routing benches, and the Table 2 compile pipeline go to
# BENCH_parallel.json; the cold-vs-warm compile-cache pair goes to
# BENCH_cache.json with a derived warm_speedup ratio; the 1-vs-4-chip
# fleet dispatch sweep (throughput and p99 wait per policy) goes to
# BENCH_fleet.json with a derived scale-out ratio.
BENCH_PARALLEL ?= BENCH_parallel.json
bench-parallel-json:
	$(GO) test -run '^$$' -bench 'BenchmarkSimulate(Clifford)?(Sequential|Parallel)$$' -benchtime 3x ./internal/sim \
		| $(GO) run ./cmd/benchjson -o $(BENCH_PARALLEL) -label simulate
	$(GO) test -run '^$$' -bench 'Benchmark(PackedVsBooleanTableau|TableauMeasureHeavy)/' -benchtime 10x ./internal/sim \
		| $(GO) run ./cmd/benchjson -o $(BENCH_PARALLEL) -label tableau -append \
			-ratio packed_speedup=PackedVsBooleanTableau/boolean/PackedVsBooleanTableau/packed
	$(GO) test -run '^$$' -bench 'BenchmarkRoute(SABRE|XSWAP)$$' -benchtime 50x . \
		| $(GO) run ./cmd/benchjson -o $(BENCH_PARALLEL) -label route -append
	$(GO) test -run '^$$' -bench 'BenchmarkTable2$$' -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -o $(BENCH_PARALLEL) -label table2 -append
	$(GO) test -run '^$$' -bench 'BenchmarkSRBEstimate$$' -benchtime 20x ./internal/srb \
		| $(GO) run ./cmd/benchjson -o $(BENCH_PARALLEL) -label srb -append

bench-json: bench-parallel-json
	$(GO) test -run '^$$' -bench 'BenchmarkCacheCompile(Cold|Warm)$$' -benchtime 20x . \
		| $(GO) run ./cmd/benchjson -o BENCH_cache.json -label cache \
			-ratio warm_speedup=CacheCompileCold/CacheCompileWarm
	$(GO) test -run '^$$' -bench 'BenchmarkFleet(1|4)Chip' -benchtime 3x ./internal/service \
		| $(GO) run ./cmd/benchjson -o BENCH_fleet.json -label fleet \
			-ratio scaleout_speedup=Fleet1ChipBalanced/Fleet4ChipBalanced
	$(MAKE) bench-service-json

# Multi-tenant fairness artifact: a 100k-job, four-tenant (4:2:1:1
# weights) Poisson loadgen through the WFQ front end; records Jain's
# fairness index over weight-normalized completions, the end-to-end
# p99 latency, and throughput in BENCH_service.json. Slow (~3 min).
bench-service-json:
	$(GO) test -run '^$$' -bench 'BenchmarkTenantLoadgen$$' -benchtime 1x ./internal/service \
		| $(GO) run ./cmd/benchjson -o BENCH_service.json -label service

# Benchmark-regression gate: regenerate the parallel/route benches into
# a scratch file and compare them against the committed baseline.
# Fails (exit 1) when any benchmark slowed past the threshold; the
# scratch file is kept on failure for inspection.
BENCH_THRESHOLD ?= 1.6
bench-compare:
	$(MAKE) bench-parallel-json BENCH_PARALLEL=BENCH_parallel.new.json
	$(GO) run ./cmd/benchjson -compare -threshold $(BENCH_THRESHOLD) BENCH_parallel.json BENCH_parallel.new.json
	rm -f BENCH_parallel.new.json

cover:
	$(GO) test -cover ./...

# Text-table reproduction of the paper's evaluation section.
experiments: build
	$(GO) run ./cmd/quexp -exp all

examples: build
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multiprogramming
	$(GO) run ./examples/cloudscheduler
	$(GO) run ./examples/chipexplorer
	$(GO) run ./examples/cloudservice

clean:
	$(GO) clean ./...
