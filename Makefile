# qucloud-go — build, test, and experiment targets.

GO ?= go

.PHONY: all build vet lint test race bench cover experiments examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Domain-specific static checks (determinism, float safety, lock
# hygiene); see internal/lint and `go run ./cmd/qulint -list`.
lint:
	$(GO) run ./cmd/qulint ./...

# The default test path runs vet and qulint first, then the full
# suite, then the race detector over the concurrent packages (the
# service, its scheduler dependencies, and the daemon).
test: vet lint
	$(GO) test ./...
	$(GO) test -race ./internal/service/... ./internal/sched/... ./internal/cloudsim/... ./cmd/qucloudd/...

# Full race-detector sweep over every package (slow).
race:
	$(GO) test -race ./...

# Short test run (skips the large-chip stress cases).
test-short:
	$(GO) test -short ./...

# Full benchmark sweep: regenerates every table and figure. Slow (~10 min).
bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -cover ./...

# Text-table reproduction of the paper's evaluation section.
experiments: build
	$(GO) run ./cmd/quexp -exp all

examples: build
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multiprogramming
	$(GO) run ./examples/cloudscheduler
	$(GO) run ./examples/chipexplorer
	$(GO) run ./examples/cloudservice

clean:
	$(GO) clean ./...
