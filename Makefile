# qucloud-go — build, test, and experiment targets.

GO ?= go

.PHONY: all build vet test bench cover experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Short test run (skips the large-chip stress cases).
test-short:
	$(GO) test -short ./...

# Full benchmark sweep: regenerates every table and figure. Slow (~10 min).
bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -cover ./...

# Text-table reproduction of the paper's evaluation section.
experiments: build
	$(GO) run ./cmd/quexp -exp all

examples: build
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multiprogramming
	$(GO) run ./examples/cloudscheduler
	$(GO) run ./examples/chipexplorer
	$(GO) run ./examples/cloudservice

clean:
	$(GO) clean ./...
