package qucloud

// Benchmarks regenerating every table and figure of the paper's
// evaluation section, plus micro-benchmarks for the main components.
// Run them all with:
//
//	go test -bench=. -benchmem
//
// Each experiment bench reports paper-relevant aggregates via b.ReportMetric
// (PST percentages, CNOT counts, TRF) so the benchmark output doubles as
// the reproduction record summarized in EXPERIMENTS.md.

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/ccache"
	"repro/internal/circuit"
	"repro/internal/community"
	"repro/internal/nisqbench"
	"repro/internal/partition"
	"repro/internal/router"
	"repro/internal/sched"
	"repro/internal/sim"
)

// BenchmarkTable2 regenerates Table II: PST of the ten two-program
// workloads on IBMQ16 under all six strategies. Metrics: average PST
// (percent) for the QuCloud configuration and the two baselines.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunTable2(0, 400)
		if err != nil {
			b.Fatal(err)
		}
		avg := func(s Strategy) float64 {
			sum := 0.0
			for _, r := range rows {
				sum += r.Avg(s)
			}
			return sum / float64(len(rows))
		}
		b.ReportMetric(avg(Separate), "pst_separate_%")
		b.ReportMetric(avg(SABRE), "pst_sabre_%")
		b.ReportMetric(avg(Baseline), "pst_baseline_%")
		b.ReportMetric(avg(CDAPXSwap), "pst_qucloud_%")
	}
}

// BenchmarkTable3 regenerates Table III: post-compilation CNOTs and
// depth of the twelve 4-program mixes on simulated IBMQ50. Metrics:
// total CNOTs per strategy (lower is better).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunTable3(0)
		if err != nil {
			b.Fatal(err)
		}
		tot := func(s Strategy) (c float64) {
			for _, r := range rows {
				c += float64(r.CNOTs[s])
			}
			return c
		}
		totD := func(s Strategy) (d float64) {
			for _, r := range rows {
				d += float64(r.Depth[s])
			}
			return d
		}
		b.ReportMetric(tot(SABRE), "cnots_sabre")
		b.ReportMetric(tot(Baseline), "cnots_baseline")
		b.ReportMetric(tot(CDAPXSwap), "cnots_qucloud")
		b.ReportMetric(totD(Baseline), "depth_baseline")
		b.ReportMetric(totD(CDAPXSwap), "depth_qucloud")
	}
}

// BenchmarkFig9_IBMQ16 regenerates Figure 9 on IBMQ16: the ω sweep of
// average redundant qubits over 21 calibration days, and its knee.
func BenchmarkFig9_IBMQ16(b *testing.B) {
	d := arch.IBMQ16(0)
	for i := 0; i < b.N; i++ {
		res := RunFig9(d, 21, 0.05)
		b.ReportMetric(res.KneeOmega(), "knee_omega")
		b.ReportMetric(res.AvgRedundant[res.KneeIndex], "redundant_at_knee")
	}
}

// BenchmarkFig9_IBMQ50 is the same sweep on the simulated 50-qubit chip
// (the paper reports knee ω = 0.40 there).
func BenchmarkFig9_IBMQ50(b *testing.B) {
	d := arch.IBMQ50(0)
	for i := 0; i < b.N; i++ {
		res := RunFig9(d, 5, 0.05)
		b.ReportMetric(res.KneeOmega(), "knee_omega")
	}
}

// BenchmarkFig14 regenerates Figure 14: scheduler PST and TRF across ε,
// against the separate-execution and random-pairing baselines.
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := RunFig14(0, []float64{0.05, 0.10, 0.15, 0.20}, 250)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			switch p.Label {
			case "Separate":
				b.ReportMetric(p.AvgPST, "pst_separate_%")
			case "Random":
				b.ReportMetric(p.AvgPST, "pst_random_%")
			case "eps=0.15":
				b.ReportMetric(p.AvgPST, "pst_eps15_%")
				b.ReportMetric(p.TRF, "trf_eps15")
			}
		}
	}
}

// BenchmarkHierarchyTree measures Algorithm 1 (FN community detection
// with the error-aware reward) on both chips.
func BenchmarkHierarchyTree(b *testing.B) {
	for _, tc := range []struct {
		name string
		dev  *arch.Device
		w    float64
	}{
		{"IBMQ16", arch.IBMQ16(0), 0.95},
		{"IBMQ50", arch.IBMQ50(0), 0.40},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				community.Build(tc.dev, tc.w)
			}
		})
	}
}

// BenchmarkCDAPPartition measures Algorithm 2 for a 4-program workload
// on IBMQ50.
func BenchmarkCDAPPartition(b *testing.B) {
	d := arch.IBMQ50(0)
	tree := community.Build(d, 0.40)
	progs := []*circuit.Circuit{
		nisqbench.MustGet("aj-e11_165"),
		nisqbench.MustGet("alu-v2_31"),
		nisqbench.MustGet("4gt4-v0_72"),
		nisqbench.MustGet("sf_276"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.CDAP(d, tree, progs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFRPPartition measures the baseline partitioner on the same
// workload for comparison.
func BenchmarkFRPPartition(b *testing.B) {
	d := arch.IBMQ50(0)
	progs := []*circuit.Circuit{
		nisqbench.MustGet("aj-e11_165"),
		nisqbench.MustGet("alu-v2_31"),
		nisqbench.MustGet("4gt4-v0_72"),
		nisqbench.MustGet("sf_276"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.FRP(d, progs); err != nil {
			b.Fatal(err)
		}
	}
}

// routeBench routes one fixed 2-program workload under the given options.
func routeBench(b *testing.B, opts router.Options) {
	d := arch.IBMQ16(0)
	tree := community.Build(d, 0.95)
	progs := []*circuit.Circuit{
		nisqbench.MustGet("3_17_13"),
		nisqbench.MustGet("alu-v0_27"),
	}
	res, err := partition.CDAP(d, tree, progs)
	if err != nil {
		b.Fatal(err)
	}
	initial := [][]int{res.Assignments[0].InitialMapping, res.Assignments[1].InitialMapping}
	b.ResetTimer()
	swaps := 0
	for i := 0; i < b.N; i++ {
		s, err := router.Route(d, progs, initial, opts)
		if err != nil {
			b.Fatal(err)
		}
		swaps = s.SwapCount
	}
	b.ReportMetric(float64(swaps), "swaps")
}

// BenchmarkRouteSABRE measures the plain SABRE-style transition.
func BenchmarkRouteSABRE(b *testing.B) { routeBench(b, router.DefaultOptions()) }

// BenchmarkRouteXSWAP measures Algorithm 3 (inter-program SWAPs +
// critical-gate prioritization) on the same workload.
func BenchmarkRouteXSWAP(b *testing.B) { routeBench(b, router.XSWAPOptions()) }

// BenchmarkRouteXSWAPAblations measures the two X-SWAP ingredients in
// isolation: the gain term and the critical-gate restriction (the
// design-choice ablations DESIGN.md calls out).
func BenchmarkRouteXSWAPAblations(b *testing.B) {
	cases := map[string]func() router.Options{
		"NoGainTerm": func() router.Options {
			o := router.XSWAPOptions()
			o.GainTerm = false
			return o
		},
		"NoCriticalGates": func() router.Options {
			o := router.XSWAPOptions()
			o.CriticalGatesOnly = false
			return o
		},
		"InterOnly": func() router.Options {
			o := router.XSWAPOptions()
			o.GainTerm = false
			o.CriticalGatesOnly = false
			return o
		},
	}
	for name, mk := range cases {
		b.Run(name, func(b *testing.B) { routeBench(b, mk()) })
	}
}

// BenchmarkSimulator measures the Monte-Carlo PST estimator (per 100
// trials of a routed two-program workload).
func BenchmarkSimulator(b *testing.B) {
	d := arch.IBMQ16(0)
	progs := []*circuit.Circuit{
		nisqbench.MustGet("bv_n3"),
		nisqbench.MustGet("toffoli_3"),
	}
	comp := NewCompiler(d)
	comp.Attempts = 1
	res, err := comp.Compile(progs, CDAPXSwap)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comp.Simulate(res, 100, int64(i), sim.DefaultNoise()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduler measures Algorithm 4 over the Figure 14 queue.
func BenchmarkScheduler(b *testing.B) {
	d := arch.IBMQ16(0)
	jobs := Fig14Queue(2)
	cfg := sched.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Schedule(d, jobs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEnd measures the full QuCloud pipeline (tree +
// partition + route) for a two-program workload on IBMQ16.
func BenchmarkEndToEnd(b *testing.B) {
	d := arch.IBMQ16(0)
	progs := []*circuit.Circuit{
		nisqbench.MustGet("bv_n4"),
		nisqbench.MustGet("mod5mils_65"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp := NewCompiler(d)
		comp.Attempts = 1
		if _, err := comp.Compile(progs, CDAPXSwap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheCompileCold measures the cache-aware compile entry
// point when every lookup misses (fresh cache per iteration): the
// full pipeline plus fingerprint + store overhead. Paired with
// BenchmarkCacheCompileWarm it yields the warm-cache speedup recorded
// in BENCH_cache.json.
func BenchmarkCacheCompileCold(b *testing.B) {
	progs := []*circuit.Circuit{nisqbench.MustGet("bv_n3"), nisqbench.MustGet("3_17_13")}
	comp := NewCompiler(arch.IBMQ16(0))
	comp.Attempts = 2
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := ccache.New(32)
		if _, out, err := comp.CompileCachedContext(ctx, cache, progs, CDAPXSwap); err != nil {
			b.Fatal(err)
		} else if out != ccache.OutcomeMiss {
			b.Fatalf("outcome %v, want miss", out)
		}
	}
}

// BenchmarkCacheCompileWarm measures the same workload against a
// primed cache: fingerprint + lookup only, no compilation.
func BenchmarkCacheCompileWarm(b *testing.B) {
	progs := []*circuit.Circuit{nisqbench.MustGet("bv_n3"), nisqbench.MustGet("3_17_13")}
	comp := NewCompiler(arch.IBMQ16(0))
	comp.Attempts = 2
	ctx := context.Background()
	cache := ccache.New(32)
	if _, _, err := comp.CompileCachedContext(ctx, cache, progs, CDAPXSwap); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, out, err := comp.CompileCachedContext(ctx, cache, progs, CDAPXSwap); err != nil {
			b.Fatal(err)
		} else if out != ccache.OutcomeHit {
			b.Fatalf("outcome %v, want hit", out)
		}
	}
}

// BenchmarkClifford50 measures the extension experiment: exact PST on
// the 50-qubit chip for a Clifford workload via the stabilizer backend.
func BenchmarkClifford50(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunCliffordFidelity(0, 300)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Strategy {
			case Separate:
				b.ReportMetric(r.Avg, "pst_separate_%")
			case CDAPXSwap:
				b.ReportMetric(r.Avg, "pst_qucloud_%")
			}
		}
	}
}

// BenchmarkTreeStaleness measures hierarchy-tree reuse under
// calibration drift (the §IV-A1 once-per-cycle claim).
func BenchmarkTreeStaleness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ratios, err := RunTreeStaleness(0, 8, 0.08)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ratios[0], "epst_ratio_day1")
		b.ReportMetric(ratios[len(ratios)-1], "epst_ratio_day7")
	}
}

// BenchmarkScale measures compile cost and overhead across chip sizes
// (the §V-B2 scalability claim).
func BenchmarkScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunScale(0)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(float64(last.CNOTs[CDAPXSwap]), "cnots_qucloud_50q")
		b.ReportMetric(last.CompileMS[CDAPXSwap], "compile_ms_50q")
	}
}

// BenchmarkTableauSimulator measures the stabilizer backend per 100
// trials of a 24-qubit Clifford workload (beyond statevector reach).
func BenchmarkTableauSimulator(b *testing.B) {
	d := arch.IBMQ50(0)
	progs := CliffordWorkload()
	comp := NewCompiler(d)
	comp.Attempts = 1
	res, err := comp.Compile(progs, CDAPXSwap)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comp.SimulateClifford(res, 100, int64(i), sim.DefaultNoise()); err != nil {
			b.Fatal(err)
		}
	}
}
