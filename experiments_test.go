package qucloud

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/nisqbench"
)

func TestTable2WorkloadsMatchTableI(t *testing.T) {
	if len(Table2Workloads) != 10 {
		t.Fatalf("workloads = %d, want 10", len(Table2Workloads))
	}
	for _, w := range Table2Workloads {
		for _, name := range w {
			if _, err := nisqbench.Get(name); err != nil {
				t.Fatalf("unknown benchmark %q in Table II workloads", name)
			}
			cl, _ := nisqbench.Class(name)
			if cl == nisqbench.Large {
				t.Fatalf("%q is large-sized; Table II uses tiny/small only", name)
			}
		}
	}
}

func TestTable3MixesMatchPaper(t *testing.T) {
	if len(Table3Mixes) != 12 {
		t.Fatalf("mixes = %d, want 12", len(Table3Mixes))
	}
	for mi, mix := range Table3Mixes {
		if len(mix) != 4 {
			t.Fatalf("Mix_%d has %d programs, want 4", mi+1, len(mix))
		}
		total := 0
		for _, name := range mix {
			c, err := nisqbench.Get(name)
			if err != nil {
				t.Fatalf("Mix_%d: %v", mi+1, err)
			}
			total += c.NumQubits
		}
		if total > arch.IBMQ50NumQubits {
			t.Fatalf("Mix_%d needs %d qubits > 50", mi+1, total)
		}
	}
}

func TestRunTable2SmokeAndShape(t *testing.T) {
	rows, err := RunTable2(0, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Every strategy produced a PST in (0, 100] for every workload, and
	// tiny workloads outscore small ones on average (the paper's
	// headline contrast: ~77% vs ~32% for separate execution).
	tiny, small := 0.0, 0.0
	for i, r := range rows {
		for _, s := range Strategies {
			for k := 0; k < 2; k++ {
				if p := r.PST[s][k]; p <= 0 || p > 100 {
					t.Fatalf("%s+%s %s pst[%d] = %v", r.W1, r.W2, s, k, p)
				}
			}
		}
		if i < 5 {
			tiny += r.Avg(Separate) / 5
		} else {
			small += r.Avg(Separate) / 5
		}
	}
	if tiny <= small {
		t.Fatalf("tiny avg %v <= small avg %v; size classes must separate", tiny, small)
	}
}

func TestRunTable3SubsetShape(t *testing.T) {
	rows, err := RunTable3Subset(0, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Mix != "Mix_3" {
		t.Fatalf("mix = %s", r.Mix)
	}
	for _, s := range Table3Strategies {
		if r.CNOTs[s] <= 0 || r.Depth[s] <= 0 {
			t.Fatalf("%s: cnots=%d depth=%d", s, r.CNOTs[s], r.Depth[s])
		}
		// Source CNOTs of Mix_3 (9+90+90+98 plus swap overhead):
		// post-compilation must be at least the source total.
		src := 0
		for _, name := range r.Benchmarks {
			src += nisqbench.MustGet(name).RawCNOTCount()
		}
		if r.CNOTs[s] < src {
			t.Fatalf("%s: %d CNOTs below source %d", s, r.CNOTs[s], src)
		}
	}
}

func TestRunFig9KneeAndMonotonicity(t *testing.T) {
	d := arch.IBMQ16(0)
	res := RunFig9(d, 5, 0.25)
	if len(res.Omegas) != len(res.AvgRedundant) {
		t.Fatal("length mismatch")
	}
	first, last := res.AvgRedundant[0], res.AvgRedundant[len(res.AvgRedundant)-1]
	if last >= first {
		t.Fatalf("redundant qubits must fall with omega: %v -> %v", first, last)
	}
	knee := res.KneeOmega()
	if knee <= 0 || knee >= 2.5 {
		t.Fatalf("knee omega = %v, want interior", knee)
	}
}

func TestRunFig9IBMQ50KneeLower(t *testing.T) {
	// §IV-A3: the knee is 0.95 on IBMQ16 and 0.40 on IBMQ50 — the
	// bigger chip's knee comes earlier. Check the ordering (not the
	// exact values, which depend on calibration).
	k16 := RunFig9(arch.IBMQ16(0), 5, 0.25).KneeOmega()
	k50 := RunFig9(arch.IBMQ50(0), 3, 0.25).KneeOmega()
	if k50 > k16+0.26 { // allow one grid step of slack
		t.Fatalf("knee(IBMQ50)=%v should not exceed knee(IBMQ16)=%v", k50, k16)
	}
}

func TestFig14Queue(t *testing.T) {
	jobs := Fig14Queue(2)
	if len(jobs) != 20 {
		t.Fatalf("queue = %d jobs, want 20", len(jobs))
	}
	seen := map[int]bool{}
	for _, j := range jobs {
		if seen[j.ID] {
			t.Fatalf("duplicate job id %d", j.ID)
		}
		seen[j.ID] = true
		if j.Circ == nil {
			t.Fatal("nil circuit")
		}
	}
}

func TestRunFig14Shape(t *testing.T) {
	points, err := RunFig14(0, []float64{0.15}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 { // separate, random, one epsilon
		t.Fatalf("points = %d", len(points))
	}
	byLabel := map[string]Fig14Point{}
	for _, p := range points {
		byLabel[p.Label] = p
	}
	sep := byLabel["Separate"]
	rnd := byLabel["Random"]
	eps := byLabel["eps=0.15"]
	if sep.TRF != 1 {
		t.Fatalf("separate TRF = %v", sep.TRF)
	}
	if rnd.TRF != 2 {
		t.Fatalf("random TRF = %v", rnd.TRF)
	}
	// The scheduler co-locates up to MaxColocate (3) programs, so TRF
	// ranges from 1 (all separate) to 3.
	if eps.TRF < 1 || eps.TRF > 3 {
		t.Fatalf("scheduler TRF = %v, want within [1,3]", eps.TRF)
	}
	if sep.AvgPST <= 0 || rnd.AvgPST <= 0 || eps.AvgPST <= 0 {
		t.Fatalf("PSTs = %v %v %v", sep.AvgPST, rnd.AvgPST, eps.AvgPST)
	}
	// Figure 14's ordering: separate >= scheduler >= random (small
	// Monte-Carlo slack allowed).
	if eps.AvgPST < rnd.AvgPST-4 {
		t.Fatalf("scheduler PST %v clearly below random %v", eps.AvgPST, rnd.AvgPST)
	}
	if sep.AvgPST < eps.AvgPST-4 {
		t.Fatalf("separate PST %v clearly below scheduler %v", sep.AvgPST, eps.AvgPST)
	}
}

func TestRunScaleCoversStandardChips(t *testing.T) {
	rows, err := RunScale(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // london excluded (too small)
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	prev := 0
	for _, r := range rows {
		if r.Qubits < prev {
			t.Fatalf("%s out of size order", r.Device)
		}
		prev = r.Qubits
		for _, s := range ScaleStrategies {
			if r.CNOTs[s] <= 0 || r.Depth[s] <= 0 || r.CompileMS[s] <= 0 {
				t.Fatalf("%s %s: %d/%d/%v", r.Device, s, r.CNOTs[s], r.Depth[s], r.CompileMS[s])
			}
		}
	}
}

func TestRunTreeStaleness(t *testing.T) {
	ratios, err := RunTreeStaleness(0, 8, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	if len(ratios) != 7 {
		t.Fatalf("ratios = %d", len(ratios))
	}
	for day, r := range ratios {
		if r <= 0 || r > 1.2 {
			t.Fatalf("day %d ratio = %v out of plausible range", day+1, r)
		}
		// The paper's reuse claim: a day-old tree must cost little.
		if day == 0 && r < 0.8 {
			t.Fatalf("one-day-stale tree lost %.0f%% EPST; reuse claim violated", (1-r)*100)
		}
	}
}

func TestRunCliffordFidelityShape(t *testing.T) {
	rows, err := RunCliffordFidelity(0, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byStrat := map[Strategy]CliffordRow{}
	for _, r := range rows {
		byStrat[r.Strategy] = r
		for _, p := range r.PST {
			if p <= 0 || p > 100 {
				t.Fatalf("%s PSTs = %v", r.Strategy, r.PST)
			}
		}
	}
	// Separate is the fidelity upper bound within Monte-Carlo slack.
	if byStrat[Separate].Avg < byStrat[CDAPXSwap].Avg-8 {
		t.Fatalf("separate avg %v clearly below qucloud %v", byStrat[Separate].Avg, byStrat[CDAPXSwap].Avg)
	}
}
