package qucloud

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/ccache"
	"repro/internal/circuit"
	"repro/internal/nisqbench"
	"repro/internal/sim"
)

// fingerprint serializes everything a compile+simulate run produces
// that callers can observe, with floats in hex so the comparison is
// byte-exact, not approximate.
func fingerprint(res *Result, psts []float64) string {
	s := fmt.Sprintf("cnots=%d depth=%d swaps=%d inter=%d", res.CNOTs, res.Depth, res.Swaps, res.InterSwaps)
	for _, p := range psts {
		s += fmt.Sprintf(" %x", p)
	}
	return s
}

// withGOMAXPROCS runs f under the given GOMAXPROCS setting and
// restores the previous value.
func withGOMAXPROCS(n int, f func()) {
	prev := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(prev)
	f()
}

// TestCompileSimulateDeterministicAcrossGOMAXPROCS is the PR's central
// differential guarantee, table-driven over every strategy: with
// Workers=0 the compiler sizes its fan-out from the pool default
// (GOMAXPROCS), so running the same workload at GOMAXPROCS 1, 2, and 8
// exercises the sequential path and two parallel widths — and all three
// must produce byte-identical CNOT/depth/swap counts and PSTs.
func TestCompileSimulateDeterministicAcrossGOMAXPROCS(t *testing.T) {
	progs := []*circuit.Circuit{nisqbench.MustGet("bv_n3"), nisqbench.MustGet("3_17_13")}
	const trials = 1100 // spans multiple RNG shards
	for _, strat := range Strategies {
		t.Run(strat.String(), func(t *testing.T) {
			var prints []string
			for _, gmp := range []int{1, 2, 8} {
				withGOMAXPROCS(gmp, func() {
					comp := NewCompiler(arch.IBMQ16(0))
					comp.Attempts = 2
					res, err := comp.Compile(progs, strat)
					if err != nil {
						t.Fatalf("GOMAXPROCS=%d: Compile: %v", gmp, err)
					}
					psts, err := comp.Simulate(res, trials, 9, sim.DefaultNoise())
					if err != nil {
						t.Fatalf("GOMAXPROCS=%d: Simulate: %v", gmp, err)
					}
					prints = append(prints, fingerprint(res, psts))
				})
			}
			for i := 1; i < len(prints); i++ {
				if prints[i] != prints[0] {
					t.Fatalf("results diverge across GOMAXPROCS:\n  gmp=1: %s\n  other: %s", prints[0], prints[i])
				}
			}
		})
	}
}

// TestCachedCompileDifferential is the compile-cache counterpart of the
// GOMAXPROCS sweep: for every strategy, at every parallelism width, the
// cache-aware entry point must be byte-identical to the uncached path —
// on a cold cache (miss: it compiles and stores) and on a warm one
// (hit: it returns the stored result). The fingerprints compare
// schedule-derived counts and simulated PSTs with hex-exact floats, and
// every value must also match across the three GOMAXPROCS settings.
func TestCachedCompileDifferential(t *testing.T) {
	progs := []*circuit.Circuit{nisqbench.MustGet("bv_n3"), nisqbench.MustGet("3_17_13")}
	const trials = 400
	ctx := context.Background()
	for _, strat := range Strategies {
		t.Run(strat.String(), func(t *testing.T) {
			var prints []string
			for _, gmp := range []int{1, 2, 8} {
				withGOMAXPROCS(gmp, func() {
					comp := NewCompiler(arch.IBMQ16(0))
					comp.Attempts = 2
					cache := ccache.New(32)

					uncached, err := comp.Compile(progs, strat)
					if err != nil {
						t.Fatalf("GOMAXPROCS=%d: uncached Compile: %v", gmp, err)
					}
					missRes, out, err := comp.CompileCachedContext(ctx, cache, progs, strat)
					if err != nil {
						t.Fatalf("GOMAXPROCS=%d: cached Compile (cold): %v", gmp, err)
					}
					if out != ccache.OutcomeMiss {
						t.Fatalf("GOMAXPROCS=%d: cold lookup outcome %v, want miss", gmp, out)
					}
					hitRes, out, err := comp.CompileCachedContext(ctx, cache, progs, strat)
					if err != nil {
						t.Fatalf("GOMAXPROCS=%d: cached Compile (warm): %v", gmp, err)
					}
					if out != ccache.OutcomeHit {
						t.Fatalf("GOMAXPROCS=%d: warm lookup outcome %v, want hit", gmp, out)
					}
					if hitRes != missRes {
						t.Fatalf("GOMAXPROCS=%d: warm hit returned a different *Result than the stored one", gmp)
					}
					if !reflect.DeepEqual(uncached.Schedules, missRes.Schedules) ||
						!reflect.DeepEqual(uncached.Initial, missRes.Initial) {
						t.Fatalf("GOMAXPROCS=%d: cached schedules diverge from uncached", gmp)
					}

					for _, res := range []*Result{uncached, missRes} {
						psts, err := comp.Simulate(res, trials, 9, sim.DefaultNoise())
						if err != nil {
							t.Fatalf("GOMAXPROCS=%d: Simulate: %v", gmp, err)
						}
						prints = append(prints, fingerprint(res, psts))
					}
				})
			}
			for i := 1; i < len(prints); i++ {
				if prints[i] != prints[0] {
					t.Fatalf("cached/uncached results diverge:\n  first: %s\n  other: %s", prints[0], prints[i])
				}
			}
		})
	}
}

// TestCacheInvalidatedByCalibration: the fingerprint embeds the
// device's calibration version, so applying fresh calibration data must
// turn the next identical compile into a miss (stale entries become
// unreachable garbage) rather than serving a result mapped for error
// rates that no longer exist.
func TestCacheInvalidatedByCalibration(t *testing.T) {
	progs := []*circuit.Circuit{nisqbench.MustGet("bv_n3")}
	dev := arch.IBMQ16(0)
	comp := NewCompiler(dev)
	comp.Attempts = 2
	cache := ccache.New(32)
	ctx := context.Background()

	keyBefore := comp.CacheKey(progs, CDAPXSwap).Fingerprint()
	if _, out, err := comp.CompileCachedContext(ctx, cache, progs, CDAPXSwap); err != nil || out != ccache.OutcomeMiss {
		t.Fatalf("first compile: outcome=%v err=%v", out, err)
	}
	if _, out, err := comp.CompileCachedContext(ctx, cache, progs, CDAPXSwap); err != nil || out != ccache.OutcomeHit {
		t.Fatalf("repeat compile: outcome=%v err=%v", out, err)
	}

	arch.ApplyCalibration(dev, arch.GenerateCalibration(dev, 99))
	if keyAfter := comp.CacheKey(progs, CDAPXSwap).Fingerprint(); keyAfter == keyBefore {
		t.Fatal("calibration update did not change the cache key")
	}
	if _, out, err := comp.CompileCachedContext(ctx, cache, progs, CDAPXSwap); err != nil || out != ccache.OutcomeMiss {
		t.Fatalf("post-calibration compile: outcome=%v err=%v, want a fresh miss", out, err)
	}
}

// TestDriverRowsDeterministicAcrossGOMAXPROCS checks the same property
// one layer up, through the experiment drivers that fan out whole rows.
func TestDriverRowsDeterministicAcrossGOMAXPROCS(t *testing.T) {
	var t2 [][]Table2Row
	var t3 [][]Table3Row
	for _, gmp := range []int{1, 2, 8} {
		withGOMAXPROCS(gmp, func() {
			rows2, err := RunTable2Subset(0, 400, []int{0, 1})
			if err != nil {
				t.Fatalf("GOMAXPROCS=%d: RunTable2Subset: %v", gmp, err)
			}
			t2 = append(t2, rows2)
			rows3, err := RunTable3Subset(0, []int{0})
			if err != nil {
				t.Fatalf("GOMAXPROCS=%d: RunTable3Subset: %v", gmp, err)
			}
			t3 = append(t3, rows3)
		})
	}
	for i := 1; i < len(t2); i++ {
		if !reflect.DeepEqual(t2[i], t2[0]) {
			t.Fatalf("Table2 rows diverge across GOMAXPROCS:\n  first: %+v\n  other: %+v", t2[0], t2[i])
		}
		if !reflect.DeepEqual(t3[i], t3[0]) {
			t.Fatalf("Table3 rows diverge across GOMAXPROCS:\n  first: %+v\n  other: %+v", t3[0], t3[i])
		}
	}
}

// TestParallelSimulateSpeedup checks the point of all this: on a
// multi-core machine the sharded engine must actually be faster. It
// needs real cores to mean anything, so it skips on small runners
// (including the single-CPU CI container).
func TestParallelSimulateSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful speedup measurement, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	progs := []*circuit.Circuit{nisqbench.MustGet("bv_n3"), nisqbench.MustGet("3_17_13")}
	comp := NewCompiler(arch.IBMQ16(0))
	res, err := comp.Compile(progs, CDAPXSwap)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 16 * 1024 // 32 shards: plenty to amortize fan-out overhead
	run := func(workers int) (time.Duration, []float64) {
		comp.Workers = workers
		// Warm-up run excludes one-time costs (artifact cache fills).
		if _, err := comp.Simulate(res, 2048, 9, sim.DefaultNoise()); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		psts, err := comp.Simulate(res, trials, 9, sim.DefaultNoise())
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start), psts
	}
	seqTime, seqPSTs := run(1)
	parTime, parPSTs := run(8)
	if !reflect.DeepEqual(seqPSTs, parPSTs) {
		t.Fatalf("parallel PSTs %v differ from sequential %v", parPSTs, seqPSTs)
	}
	speedup := float64(seqTime) / float64(parTime)
	t.Logf("sequential %v, 8 workers %v, speedup %.2fx", seqTime, parTime, speedup)
	if speedup < 3 {
		t.Fatalf("8-worker speedup %.2fx, want >= 3x (sequential %v, parallel %v)", speedup, seqTime, parTime)
	}
}
