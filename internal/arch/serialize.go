package arch

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/graph"
)

// DeviceSpec is the JSON-serializable description of a device: the
// coupling map plus calibration. It lets users import real backend
// calibration data (e.g. exported from a provider's API) instead of the
// synthetic generator.
type DeviceSpec struct {
	Name   string `json:"name"`
	Qubits int    `json:"qubits"`
	// Edges lists the coupling map; CNOTErr is aligned with it.
	Edges      [][2]int  `json:"edges"`
	CNOTErr    []float64 `json:"cnot_err"`
	ReadoutErr []float64 `json:"readout_err"`
	Gate1Err   []float64 `json:"gate1_err"`
	// Crosstalk lists the pairwise conditional-error matrix
	// E(victim|aggressor), sorted by victim then aggressor link; absent
	// (nil) for devices without SRB characterization, so specs written
	// by older versions keep loading unchanged.
	Crosstalk []CrosstalkSpec `json:"crosstalk,omitempty"`
}

// CrosstalkSpec is one serialized crosstalk-matrix entry.
type CrosstalkSpec struct {
	Victim    [2]int  `json:"victim"`
	Aggressor [2]int  `json:"aggressor"`
	Err       float64 `json:"err"`
}

// Spec returns the device's serializable description.
func (d *Device) Spec() DeviceSpec {
	edges := d.Coupling.Edges()
	spec := DeviceSpec{
		Name:       d.Name,
		Qubits:     d.NumQubits(),
		Edges:      make([][2]int, len(edges)),
		CNOTErr:    make([]float64, len(edges)),
		ReadoutErr: append([]float64(nil), d.ReadoutErr...),
		Gate1Err:   append([]float64(nil), d.Gate1Err...),
	}
	for i, e := range edges {
		spec.Edges[i] = [2]int{e.U, e.V}
		spec.CNOTErr[i] = d.CNOTErr[e]
	}
	for _, p := range d.Crosstalk.SortedPairs() {
		spec.Crosstalk = append(spec.Crosstalk, CrosstalkSpec{
			Victim:    [2]int{p.Victim.U, p.Victim.V},
			Aggressor: [2]int{p.Aggressor.U, p.Aggressor.V},
			Err:       d.Crosstalk[p],
		})
	}
	return spec
}

// FromSpec builds and validates a Device from its description.
func FromSpec(spec DeviceSpec) (*Device, error) {
	if spec.Qubits <= 0 {
		return nil, fmt.Errorf("arch: spec %q has %d qubits", spec.Name, spec.Qubits)
	}
	if len(spec.CNOTErr) != len(spec.Edges) {
		return nil, fmt.Errorf("arch: spec %q has %d edges but %d cnot_err entries",
			spec.Name, len(spec.Edges), len(spec.CNOTErr))
	}
	// Validate edges before handing them to the graph package, whose
	// AddEdge panics on self-loops and out-of-range vertices; untrusted
	// specs (fuzzed or user-imported) must fail with an error instead.
	for i, e := range spec.Edges {
		if e[0] == e[1] {
			return nil, fmt.Errorf("arch: spec %q edge %d is a self-loop at qubit %d", spec.Name, i, e[0])
		}
		for _, q := range e {
			if q < 0 || q >= spec.Qubits {
				return nil, fmt.Errorf("arch: spec %q edge %d endpoint %d out of range [0,%d)", spec.Name, i, q, spec.Qubits)
			}
		}
	}
	// Checking the per-qubit arrays before allocating the device also
	// bounds Qubits by data the caller actually supplied, so a bogus
	// huge qubit count cannot trigger a pathological allocation.
	if len(spec.ReadoutErr) != spec.Qubits || len(spec.Gate1Err) != spec.Qubits {
		return nil, fmt.Errorf("arch: spec %q per-qubit arrays must have %d entries", spec.Name, spec.Qubits)
	}
	d := newDevice(spec.Name, spec.Qubits, spec.Edges)
	for i, e := range spec.Edges {
		d.CNOTErr[graph.NewEdge(e[0], e[1])] = spec.CNOTErr[i]
	}
	copy(d.ReadoutErr, spec.ReadoutErr)
	copy(d.Gate1Err, spec.Gate1Err)
	if len(spec.Crosstalk) > 0 {
		d.Crosstalk = make(CrosstalkMatrix, len(spec.Crosstalk))
		for _, c := range spec.Crosstalk {
			d.Crosstalk[NewEdgePair(c.Victim[0], c.Victim[1], c.Aggressor[0], c.Aggressor[1])] = c.Err
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// SaveDevice writes the device as indented JSON.
func SaveDevice(w io.Writer, d *Device) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d.Spec())
}

// LoadDevice reads a JSON DeviceSpec and builds the device.
func LoadDevice(r io.Reader) (*Device, error) {
	var spec DeviceSpec
	if err := json.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("arch: decoding device spec: %w", err)
	}
	return FromSpec(spec)
}
