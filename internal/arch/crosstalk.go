package arch

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// EdgePair is an ordered pair of coupling links keying the pairwise
// crosstalk matrix: the entry for {Victim, Aggressor} is E(g_i|g_j),
// the conditional error rate of a CNOT on Victim while a simultaneous
// CNOT runs on Aggressor. Both edges are normalized (U <= V, as
// graph.NewEdge produces), so lookups are orientation-independent.
type EdgePair struct {
	Victim    graph.Edge
	Aggressor graph.Edge
}

// NewEdgePair normalizes both links of an ordered (victim, aggressor)
// pair so that either orientation of either link keys the same entry.
func NewEdgePair(vu, vv, au, av int) EdgePair {
	return EdgePair{Victim: graph.NewEdge(vu, vv), Aggressor: graph.NewEdge(au, av)}
}

// CrosstalkMatrix is the sparse pairwise crosstalk calibration: ordered
// link pairs mapped to the conditional CNOT error E(victim|aggressor)
// measured (or synthesized) under simultaneous execution, as
// Simultaneous Randomized Benchmarking reports it. Pairs absent from
// the matrix are benign: their conditional error is the link's base
// CNOT error. A nil or empty matrix means "not characterized" and every
// consumer falls back to its scalar crosstalk model.
type CrosstalkMatrix map[EdgePair]float64

// Clone returns a deep copy (nil stays nil).
func (m CrosstalkMatrix) Clone() CrosstalkMatrix {
	if m == nil {
		return nil
	}
	out := make(CrosstalkMatrix, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// SortedPairs returns the matrix keys in deterministic order (victim
// edge, then aggressor edge) for serialization and reproducible sweeps.
func (m CrosstalkMatrix) SortedPairs() []EdgePair {
	pairs := make([]EdgePair, 0, len(m))
	for p := range m {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool { return lessEdgePair(pairs[i], pairs[j]) })
	return pairs
}

func lessEdge(a, b graph.Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

func lessEdgePair(a, b EdgePair) bool {
	if a.Victim != b.Victim {
		return lessEdge(a.Victim, b.Victim)
	}
	return lessEdge(a.Aggressor, b.Aggressor)
}

// HasCrosstalk reports whether the device carries a pairwise crosstalk
// matrix. When false, every consumer (the simulator, the analytic ESP,
// CDAP, the scheduler's co-location test) uses its scalar fallback and
// behaves exactly as it did before matrices existed.
func (d *Device) HasCrosstalk() bool { return len(d.Crosstalk) > 0 }

// CrosstalkErr returns the conditional CNOT error E(victim|aggressor)
// and whether the pair is characterized. Both edges may be given in
// either orientation.
func (d *Device) CrosstalkErr(victim, aggressor graph.Edge) (float64, bool) {
	v, ok := d.Crosstalk[EdgePair{Victim: graph.NewEdge(victim.U, victim.V), Aggressor: graph.NewEdge(aggressor.U, aggressor.V)}]
	return v, ok
}

// CrosstalkRatio returns E(victim|aggressor) / E(victim): 1 for
// uncharacterized pairs or zero base error. Ratios well above 1 mark
// hostile pairs; ratios near 1 are benign.
func (d *Device) CrosstalkRatio(victim, aggressor graph.Edge) float64 {
	cond, ok := d.CrosstalkErr(victim, aggressor)
	if !ok {
		return 1
	}
	base := d.CNOTErr[graph.NewEdge(victim.U, victim.V)]
	if base <= 0 {
		return 1
	}
	return cond / base
}

// HostilePairs returns the characterized pairs whose conditional-error
// ratio E(v|a)/E(v) is at or above the threshold, in deterministic
// order. Niu & Todri-Sanial use a similar cutoff to decide which link
// pairs must never fire simultaneously.
func (d *Device) HostilePairs(ratio float64) []EdgePair {
	var out []EdgePair
	for _, p := range d.Crosstalk.SortedPairs() {
		if d.CrosstalkRatio(p.Victim, p.Aggressor) >= ratio {
			out = append(out, p)
		}
	}
	return out
}

// Worst2qErrUnder returns the effective CNOT error of the victim link
// while any of the busy links fires simultaneously: the worst of the
// base error and every characterized conditional error E(victim|b) for
// b in busy. Uncharacterized pairs contribute nothing (benign). With no
// matrix it degenerates to the base error.
func (d *Device) Worst2qErrUnder(victim graph.Edge, busy []graph.Edge) float64 {
	v := graph.NewEdge(victim.U, victim.V)
	worst := d.CNOTError(v.U, v.V)
	for _, b := range busy {
		bn := graph.NewEdge(b.U, b.V)
		if bn == v {
			continue // a link is not its own aggressor
		}
		if cond, ok := d.Crosstalk[EdgePair{Victim: v, Aggressor: bn}]; ok && cond > worst {
			worst = cond
		}
	}
	return worst
}

// AdjacentEdgePairs enumerates the ordered (victim, aggressor) pairs of
// distinct, qubit-disjoint coupling links with at least one coupled
// endpoint pair — exactly the pairs whose CNOTs the hardware can fire
// in the same layer close enough to interfere. (Links sharing a qubit
// can never fire simultaneously, so they are excluded.) The order is
// deterministic: victim edge, then aggressor edge.
func (d *Device) AdjacentEdgePairs() []EdgePair {
	edges := d.Coupling.Edges()
	var out []EdgePair
	for _, v := range edges {
		for _, a := range edges {
			if v == a || sharesQubit(v, a) {
				continue
			}
			if edgesCoupled(d, v, a) {
				out = append(out, EdgePair{Victim: v, Aggressor: a})
			}
		}
	}
	return out
}

func sharesQubit(a, b graph.Edge) bool {
	return a.U == b.U || a.U == b.V || a.V == b.U || a.V == b.V
}

func edgesCoupled(d *Device, a, b graph.Edge) bool {
	for _, x := range [2]int{a.U, a.V} {
		for _, y := range [2]int{b.U, b.V} {
			if d.Coupling.HasEdge(x, y) {
				return true
			}
		}
	}
	return false
}

// Crosstalk-generation parameters: most adjacent pairs on real chips
// are benign (conditional error within ~1.4x of the base rate); a small
// fraction are hostile with conditional errors several times the base,
// the structure Simultaneous Randomized Benchmarking surfaces.
const (
	// BenignRatioLo/Hi bound the conditional/base error ratio of a
	// benign pair.
	BenignRatioLo = 1.0
	BenignRatioHi = 1.4
	// HostileRatioLo/Hi bound a hostile pair's ratio.
	HostileRatioLo = 2.0
	HostileRatioHi = 5.0
	// HostilePairFrac is the fraction of adjacent pairs made hostile by
	// GenerateCrosstalk.
	HostilePairFrac = 0.1
	// MaxCondErr caps conditional error rates so they stay valid
	// probabilities with headroom.
	MaxCondErr = 0.8
)

// GenerateCrosstalk produces a deterministic synthetic pairwise
// crosstalk matrix for the device's current calibration: every ordered
// adjacent link pair gets a conditional error drawn as base error times
// a ratio — benign for most pairs, hostile (HostileRatioLo..Hi) for a
// seeded ~10% — mirroring how GenerateCalibration plants weak links.
// Hostility is decided per unordered pair so E(i|j) and E(j|i) are
// elevated together (interference is mutual even when asymmetric in
// magnitude). Day-by-day matrices for a calibration series come from
// CrosstalkSeries.
func GenerateCrosstalk(d *Device, seed int64) CrosstalkMatrix {
	return generateCrosstalk(d, seed, HostilePairFrac, HostileRatioLo, HostileRatioHi)
}

// GenerateHostileCrosstalk is GenerateCrosstalk with the hostile-pair
// fraction and ratio range under caller control; experiments use it to
// synthesize adversarial chips where co-location placement matters.
func GenerateHostileCrosstalk(d *Device, seed int64, hostileFrac, ratioLo, ratioHi float64) CrosstalkMatrix {
	if hostileFrac < 0 {
		hostileFrac = 0
	}
	if hostileFrac > 1 {
		hostileFrac = 1
	}
	if ratioHi < ratioLo {
		ratioHi = ratioLo
	}
	return generateCrosstalk(d, seed, hostileFrac, ratioLo, ratioHi)
}

func generateCrosstalk(d *Device, seed int64, hostileFrac, ratioLo, ratioHi float64) CrosstalkMatrix {
	rng := rand.New(rand.NewSource(seed*1099511628211 + 41))
	uniform := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }
	pairs := d.AdjacentEdgePairs()
	// First pass: decide hostility per unordered pair, in deterministic
	// pair order (victim < aggressor picks the canonical orientation).
	hostile := map[EdgePair]bool{}
	for _, p := range pairs {
		if !lessEdge(p.Victim, p.Aggressor) {
			continue
		}
		if rng.Float64() < hostileFrac {
			hostile[p] = true
		}
	}
	out := make(CrosstalkMatrix, len(pairs))
	for _, p := range pairs {
		canon := p
		if !lessEdge(p.Victim, p.Aggressor) {
			canon = EdgePair{Victim: p.Aggressor, Aggressor: p.Victim}
		}
		lo, hi := BenignRatioLo, BenignRatioHi
		if hostile[canon] {
			lo, hi = ratioLo, ratioHi
		}
		cond := d.CNOTErr[p.Victim] * uniform(lo, hi)
		if cond > MaxCondErr {
			cond = MaxCondErr
		}
		out[p] = cond
	}
	return out
}

// CrosstalkSeries returns one pairwise matrix per day for the same
// `days`-long window CalibrationSeries generates, using the same
// base + i*131 seed derivation, so day i's matrix belongs with day i's
// calibration. Apply them together:
//
//	cals := arch.CalibrationSeries(d, base, days)
//	mats := arch.CrosstalkSeries(d, base, days)
//	for i := range cals { cals[i].Crosstalk = mats[i] }
//
// The matrix must be generated after the day's CNOT errors are known,
// so CrosstalkSeries applies each day's calibration to a scratch copy
// of the device before drawing the day's conditional rates; d itself is
// not modified.
func CrosstalkSeries(d *Device, base int64, days int) []CrosstalkMatrix {
	out := make([]CrosstalkMatrix, days)
	scratch, err := FromSpec(d.Spec())
	if err != nil {
		panic(fmt.Sprintf("arch: device %s does not round-trip: %v", d.Name, err))
	}
	for i := 0; i < days; i++ {
		daySeed := base + int64(i)*131
		ApplyCalibration(scratch, GenerateCalibration(scratch, daySeed))
		out[i] = GenerateCrosstalk(scratch, daySeed)
	}
	return out
}

// validateCrosstalk checks matrix entries against the device: both
// links must exist in the coupling map, be normalized, qubit-disjoint,
// and carry a valid probability.
func validateCrosstalk(d *Device, m CrosstalkMatrix) error {
	for p, v := range m {
		for _, e := range [2]graph.Edge{p.Victim, p.Aggressor} {
			if e.U > e.V {
				return fmt.Errorf("arch: device %s: crosstalk pair %v has a non-normalized edge", d.Name, p)
			}
			if !d.Coupling.HasEdge(e.U, e.V) {
				return fmt.Errorf("arch: device %s: crosstalk pair %v references missing link %v", d.Name, p, e)
			}
		}
		if p.Victim == p.Aggressor || sharesQubit(p.Victim, p.Aggressor) {
			return fmt.Errorf("arch: device %s: crosstalk pair %v is not qubit-disjoint", d.Name, p)
		}
		if v < 0 || v >= 1 {
			return fmt.Errorf("arch: device %s: crosstalk pair %v error %v out of [0,1)", d.Name, p, v)
		}
	}
	return nil
}
