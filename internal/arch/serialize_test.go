package arch

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestDeviceJSONRoundTrip(t *testing.T) {
	for _, name := range StandardDevices() {
		orig, err := ByName(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := SaveDevice(&buf, orig); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadDevice(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Name != orig.Name || got.NumQubits() != orig.NumQubits() || got.Coupling.M() != orig.Coupling.M() {
			t.Fatalf("%s: shape mismatch after round trip", name)
		}
		for e, v := range orig.CNOTErr {
			if got.CNOTErr[e] != v {
				t.Fatalf("%s: CNOT err mismatch at %v", name, e)
			}
		}
		for q := range orig.ReadoutErr {
			if got.ReadoutErr[q] != orig.ReadoutErr[q] || got.Gate1Err[q] != orig.Gate1Err[q] {
				t.Fatalf("%s: per-qubit calibration mismatch at %d", name, q)
			}
		}
	}
}

func TestFromSpecValidation(t *testing.T) {
	good := IBMQ16(0).Spec()
	cases := []func(s DeviceSpec) DeviceSpec{
		func(s DeviceSpec) DeviceSpec { s.Qubits = 0; return s },
		func(s DeviceSpec) DeviceSpec { s.CNOTErr = s.CNOTErr[:1]; return s },
		func(s DeviceSpec) DeviceSpec { s.ReadoutErr = s.ReadoutErr[:2]; return s },
		func(s DeviceSpec) DeviceSpec { s.CNOTErr[0] = 1.5; return s },
	}
	for i, mutate := range cases {
		spec := IBMQ16(0).Spec()
		_ = good
		if _, err := FromSpec(mutate(spec)); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestLoadDeviceRejectsGarbage(t *testing.T) {
	if _, err := LoadDevice(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage must error")
	}
}

// TestCalibrationFieldsRoundTrip is a reflection-based guard against
// the bug class where a new Calibration field is added but Spec/FromSpec
// silently drop it (as originally happened with Crosstalk): every field
// of Calibration must have a checker here that perturbs the field,
// round-trips the device through its JSON spec, and proves the
// perturbation survived. Adding a Calibration field without extending
// this map fails the test by name.
func TestCalibrationFieldsRoundTrip(t *testing.T) {
	// Each checker installs a calibration with a distinctive value in
	// its field and returns (value on the round-tripped device, value
	// expected). Device state flows Calibration -> ApplyCalibration ->
	// Spec -> FromSpec.
	roundTrip := func(t *testing.T, cal Calibration) *Device {
		t.Helper()
		d := IBMQ16(1)
		ApplyCalibration(d, cal)
		got, err := FromSpec(d.Spec())
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	checkers := map[string]func(t *testing.T){
		"CNOTErr": func(t *testing.T) {
			cal := GenerateCalibration(IBMQ16(1), 3)
			e := graph.NewEdge(0, 1)
			cal.CNOTErr[e] = 0.0421
			got := roundTrip(t, cal)
			if got.CNOTErr[e] != 0.0421 {
				t.Errorf("CNOTErr dropped: got %v", got.CNOTErr[e])
			}
		},
		"ReadoutErr": func(t *testing.T) {
			cal := GenerateCalibration(IBMQ16(1), 3)
			cal.ReadoutErr[2] = 0.0839
			got := roundTrip(t, cal)
			if got.ReadoutErr[2] != 0.0839 {
				t.Errorf("ReadoutErr dropped: got %v", got.ReadoutErr[2])
			}
		},
		"Gate1Err": func(t *testing.T) {
			cal := GenerateCalibration(IBMQ16(1), 3)
			cal.Gate1Err[4] = 0.0031
			got := roundTrip(t, cal)
			if got.Gate1Err[4] != 0.0031 {
				t.Errorf("Gate1Err dropped: got %v", got.Gate1Err[4])
			}
		},
		"Crosstalk": func(t *testing.T) {
			d := IBMQ16(1)
			cal := GenerateCalibration(d, 3)
			cal.Crosstalk = GenerateCrosstalk(d, 3)
			got := roundTrip(t, cal)
			if !reflect.DeepEqual(got.Crosstalk, cal.Crosstalk) {
				t.Error("Crosstalk dropped or altered by the round trip")
			}
		},
	}
	typ := reflect.TypeOf(Calibration{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		check, ok := checkers[name]
		if !ok {
			t.Errorf("Calibration field %q has no round-trip coverage: extend DeviceSpec/Spec/FromSpec and add a checker here", name)
			continue
		}
		t.Run(name, check)
	}
	for name := range checkers {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("checker %q names a field Calibration no longer has", name)
		}
	}
}
