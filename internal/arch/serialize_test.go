package arch

import (
	"bytes"
	"strings"
	"testing"
)

func TestDeviceJSONRoundTrip(t *testing.T) {
	for _, name := range StandardDevices() {
		orig, err := ByName(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := SaveDevice(&buf, orig); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadDevice(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Name != orig.Name || got.NumQubits() != orig.NumQubits() || got.Coupling.M() != orig.Coupling.M() {
			t.Fatalf("%s: shape mismatch after round trip", name)
		}
		for e, v := range orig.CNOTErr {
			if got.CNOTErr[e] != v {
				t.Fatalf("%s: CNOT err mismatch at %v", name, e)
			}
		}
		for q := range orig.ReadoutErr {
			if got.ReadoutErr[q] != orig.ReadoutErr[q] || got.Gate1Err[q] != orig.Gate1Err[q] {
				t.Fatalf("%s: per-qubit calibration mismatch at %d", name, q)
			}
		}
	}
}

func TestFromSpecValidation(t *testing.T) {
	good := IBMQ16(0).Spec()
	cases := []func(s DeviceSpec) DeviceSpec{
		func(s DeviceSpec) DeviceSpec { s.Qubits = 0; return s },
		func(s DeviceSpec) DeviceSpec { s.CNOTErr = s.CNOTErr[:1]; return s },
		func(s DeviceSpec) DeviceSpec { s.ReadoutErr = s.ReadoutErr[:2]; return s },
		func(s DeviceSpec) DeviceSpec { s.CNOTErr[0] = 1.5; return s },
	}
	for i, mutate := range cases {
		spec := IBMQ16(0).Spec()
		_ = good
		if _, err := FromSpec(mutate(spec)); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestLoadDeviceRejectsGarbage(t *testing.T) {
	if _, err := LoadDevice(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage must error")
	}
}
