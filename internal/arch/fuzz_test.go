package arch

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzDeviceSpec asserts the spec loader's safety contract on arbitrary
// JSON: it must return an error or a valid device, never panic (the
// graph package panics on self-loops and out-of-range vertices, so
// FromSpec has to screen them) and never size allocations by a qubit
// count the supplied data doesn't back. On success the device must pass
// Validate and Save/Load must be a fixed point of Spec(): duplicate
// edges collapse on first load, so the canonical spec round-trips
// exactly.
func FuzzDeviceSpec(f *testing.F) {
	var london bytes.Buffer
	if err := SaveDevice(&london, London()); err != nil {
		f.Fatal(err)
	}
	seeds := []string{
		london.String(),
		`{"name":"pair","qubits":2,"edges":[[0,1]],"cnot_err":[0.01],"readout_err":[0.02,0.03],"gate1_err":[0.001,0.001]}`,
		// Former crashers: self-loop and out-of-range edges panicked in
		// graph.AddEdge; a huge qubit count allocated gigabytes before
		// any validation ran. All must stay plain errors.
		`{"name":"loop","qubits":2,"edges":[[1,1]],"cnot_err":[0.01],"readout_err":[0,0],"gate1_err":[0,0]}`,
		`{"name":"oob","qubits":2,"edges":[[0,7]],"cnot_err":[0.01],"readout_err":[0,0],"gate1_err":[0,0]}`,
		`{"name":"huge","qubits":1000000000,"edges":[],"cnot_err":[],"readout_err":[],"gate1_err":[]}`,
		`{"name":"dup","qubits":2,"edges":[[0,1],[1,0]],"cnot_err":[0.01,0.02],"readout_err":[0,0],"gate1_err":[0,0]}`,
		`{}`,
		`not json`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := LoadDevice(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("loaded device fails Validate: %v\nsource:\n%s", err, src)
		}
		spec1 := d.Spec()
		var buf bytes.Buffer
		if err := SaveDevice(&buf, d); err != nil {
			t.Fatalf("saving loaded device: %v", err)
		}
		d2, err := LoadDevice(&buf)
		if err != nil {
			t.Fatalf("canonical spec does not reload: %v\nsource:\n%s", err, src)
		}
		if spec2 := d2.Spec(); !reflect.DeepEqual(spec1, spec2) {
			t.Fatalf("Save/Load round-trip changed the spec\nfirst:  %+v\nsecond: %+v", spec1, spec2)
		}
	})
}
