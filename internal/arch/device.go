// Package arch models NISQ quantum chips: coupling maps (which pairs of
// physical qubits support a CNOT) plus calibration data (per-link CNOT
// error, per-qubit single-qubit-gate and readout error). It ships the
// device topologies the paper evaluates on — IBM Q16 Melbourne, a
// simulated 50-qubit chip, and the 5-qubit IBM Q London used in the
// hierarchy-tree example — together with a seeded synthetic calibration
// generator standing in for the IBMQ daily calibration API.
package arch

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/fp"
	"repro/internal/graph"
)

// Device is a quantum chip: a coupling graph over physical qubits with
// calibration data attached. All error rates are probabilities in [0, 1).
type Device struct {
	// Name identifies the chip (e.g. "ibmq16").
	Name string
	// Coupling is the undirected coupling graph; an edge {u,v} means a
	// CNOT can be applied directly between physical qubits u and v.
	Coupling *graph.Graph
	// CNOTErr maps each coupling edge to its CNOT (two-qubit gate)
	// error rate.
	CNOTErr map[graph.Edge]float64
	// ReadoutErr[q] is the probability that measuring qubit q reports
	// the wrong classical bit.
	ReadoutErr []float64
	// Gate1Err[q] is the error rate of single-qubit gates on qubit q.
	Gate1Err []float64
	// Crosstalk is the optional pairwise crosstalk calibration
	// E(victim|aggressor) from (simulated) Simultaneous Randomized
	// Benchmarking; nil when the chip has not been characterized, in
	// which case every consumer falls back to its scalar crosstalk
	// model (see crosstalk.go).
	Crosstalk CrosstalkMatrix

	hopsOnce sync.Once
	hops     [][]int // lazily computed all-pairs hop distances

	artMu      sync.Mutex
	calVersion uint64                    // guarded by d.artMu
	artifacts  map[artifactKey]*artifact // guarded by d.artMu
}

// artifactKey identifies one derived artifact in the device cache: the
// calibration version it was computed from, a kind tag (e.g.
// "arch/errdist", "community/tree"), and one numeric parameter (0 when
// the artifact takes none).
type artifactKey struct {
	version uint64
	kind    string
	param   float64
}

// artifact is one cache slot; once guards the single build so
// concurrent requesters of the same key share one computation.
type artifact struct {
	once sync.Once
	val  any
}

// CalibrationVersion returns the device's calibration version counter;
// ApplyCalibration and InvalidateArtifacts bump it, retiring every
// cached artifact derived from older error data.
func (d *Device) CalibrationVersion() uint64 {
	d.artMu.Lock()
	defer d.artMu.Unlock()
	return d.calVersion
}

// Artifact returns the derived artifact for (kind, param) under the
// current calibration version, invoking build at most once per key even
// under concurrent callers. The returned value is shared: callers must
// treat it as immutable. Distinct keys build concurrently; only the
// map bookkeeping is serialized.
func (d *Device) Artifact(kind string, param float64, build func() any) any {
	d.artMu.Lock()
	if d.artifacts == nil {
		d.artifacts = map[artifactKey]*artifact{}
	}
	key := artifactKey{version: d.calVersion, kind: kind, param: param}
	a, ok := d.artifacts[key]
	if !ok {
		a = &artifact{}
		d.artifacts[key] = a
	}
	d.artMu.Unlock()
	a.once.Do(func() { a.val = build() })
	return a.val
}

// InvalidateArtifacts drops every cached derived artifact by bumping
// the calibration version. Call it after mutating the device's error
// data in place; ApplyCalibration does so automatically. Artifact
// values already handed out stay valid for their callers — they are
// simply rebuilt on next request.
func (d *Device) InvalidateArtifacts() {
	d.artMu.Lock()
	defer d.artMu.Unlock()
	d.calVersion++
	d.artifacts = map[artifactKey]*artifact{}
}

// NumQubits returns the number of physical qubits on the device.
func (d *Device) NumQubits() int { return d.Coupling.N() }

// Validate checks internal consistency: every coupling edge has a CNOT
// error entry, per-qubit slices have the right length, and all error
// rates lie in [0, 1).
func (d *Device) Validate() error {
	n := d.Coupling.N()
	if len(d.ReadoutErr) != n {
		return fmt.Errorf("arch: device %s: ReadoutErr has %d entries, want %d", d.Name, len(d.ReadoutErr), n)
	}
	if len(d.Gate1Err) != n {
		return fmt.Errorf("arch: device %s: Gate1Err has %d entries, want %d", d.Name, len(d.Gate1Err), n)
	}
	for _, e := range d.Coupling.Edges() {
		err, ok := d.CNOTErr[e]
		if !ok {
			return fmt.Errorf("arch: device %s: edge %v has no CNOT error entry", d.Name, e)
		}
		if err < 0 || err >= 1 {
			return fmt.Errorf("arch: device %s: edge %v CNOT error %v out of [0,1)", d.Name, e, err)
		}
	}
	for q := 0; q < n; q++ {
		if d.ReadoutErr[q] < 0 || d.ReadoutErr[q] >= 1 {
			return fmt.Errorf("arch: device %s: qubit %d readout error %v out of [0,1)", d.Name, q, d.ReadoutErr[q])
		}
		if d.Gate1Err[q] < 0 || d.Gate1Err[q] >= 1 {
			return fmt.Errorf("arch: device %s: qubit %d 1q error %v out of [0,1)", d.Name, q, d.Gate1Err[q])
		}
	}
	return validateCrosstalk(d, d.Crosstalk)
}

// CNOTError returns the CNOT error rate of the link {u, v}. It panics if
// the link does not exist (callers must respect the coupling map).
func (d *Device) CNOTError(u, v int) float64 {
	e := graph.NewEdge(u, v)
	err, ok := d.CNOTErr[e]
	if !ok {
		panic(fmt.Sprintf("arch: device %s has no link %v", d.Name, e))
	}
	return err
}

// CNOTReliability returns 1 - CNOTError(u, v).
func (d *Device) CNOTReliability(u, v int) float64 { return 1 - d.CNOTError(u, v) }

// Hops returns the all-pairs hop-distance matrix of the coupling graph,
// computing and caching it on first use (safe for concurrent callers).
// The returned matrix is shared; callers must not modify it.
func (d *Device) Hops() [][]int {
	d.hopsOnce.Do(func() {
		d.hops = d.Coupling.AllPairsHops()
	})
	return d.hops
}

// AvgCNOTErr returns the mean CNOT error over all links. The sum runs
// in sorted edge order: float addition is not associative, so summing
// in map-iteration order made the last ULP of the mean vary between
// processes — enough to flip a score-tied dispatch decision.
func (d *Device) AvgCNOTErr() float64 {
	if len(d.CNOTErr) == 0 {
		return 0
	}
	edges := make([]graph.Edge, 0, len(d.CNOTErr))
	for e := range d.CNOTErr {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	sum := 0.0
	for _, e := range edges {
		sum += d.CNOTErr[e]
	}
	return sum / float64(len(d.CNOTErr))
}

// RegionFidelity scores how robust a set of physical qubits is: the mean
// of the link reliabilities of all internal coupling edges and the
// readout reliabilities of all qubits in the region. Higher is better.
// CDAP uses it to choose among candidate hierarchy-tree nodes; a region
// with no internal structure scores on readout alone.
func (d *Device) RegionFidelity(qubits []int) float64 {
	if len(qubits) == 0 {
		return 0
	}
	sum, cnt := 0.0, 0
	for _, q := range qubits {
		sum += 1 - d.ReadoutErr[q]
		cnt++
	}
	for _, e := range d.Coupling.InducedEdges(qubits) {
		sum += 1 - d.CNOTErr[e]
		cnt++
	}
	return sum / float64(cnt)
}

// EPST is the Estimated Probability of a Successful Trial (Equation 4)
// of a program with the given gate counts when allocated to region:
// r2q^cnots * r1q^gate1s * rro^qubits, where the r's are the mean
// reliabilities over the region's internal links and qubits. A region
// with no internal links scores r2q = 1 (no CNOT can run there anyway).
func (d *Device) EPST(region []int, cnots, gate1s, qubits int) float64 {
	if len(region) == 0 {
		return 0
	}
	r2q := 1.0
	if edges := d.Coupling.InducedEdges(region); len(edges) > 0 {
		sum := 0.0
		for _, e := range edges {
			sum += 1 - d.CNOTErr[e]
		}
		r2q = sum / float64(len(edges))
	}
	var r1q, rro float64
	for _, q := range region {
		r1q += 1 - d.Gate1Err[q]
		rro += 1 - d.ReadoutErr[q]
	}
	r1q /= float64(len(region))
	rro /= float64(len(region))
	return math.Pow(r2q, float64(cnots)) * math.Pow(r1q, float64(gate1s)) * math.Pow(rro, float64(qubits))
}

// EPSTUnder is EPST conditioned on concurrently busy links: when the
// device carries a pairwise crosstalk matrix, each of the region's
// internal links contributes its worst conditional error over the busy
// aggressor links (Worst2qErrUnder) instead of its base error, so a
// region whose boundary is hostile to an already-placed neighbor scores
// lower. With no matrix, no busy links, or no internal links it returns
// exactly EPST — the same float operations in the same order.
func (d *Device) EPSTUnder(region []int, cnots, gate1s, qubits int, busy []graph.Edge) float64 {
	if len(d.Crosstalk) == 0 || len(busy) == 0 {
		return d.EPST(region, cnots, gate1s, qubits)
	}
	if len(region) == 0 {
		return 0
	}
	r2q := 1.0
	if edges := d.Coupling.InducedEdges(region); len(edges) > 0 {
		sum := 0.0
		for _, e := range edges {
			sum += 1 - d.Worst2qErrUnder(e, busy)
		}
		r2q = sum / float64(len(edges))
	}
	var r1q, rro float64
	for _, q := range region {
		r1q += 1 - d.Gate1Err[q]
		rro += 1 - d.ReadoutErr[q]
	}
	r1q /= float64(len(region))
	rro /= float64(len(region))
	return math.Pow(r2q, float64(cnots)) * math.Pow(r1q, float64(gate1s)) * math.Pow(rro, float64(qubits))
}

// Utility returns the FRP utility of qubit q restricted to free qubits:
// (number of links from q to free qubits) / (sum of the CNOT error rates
// of those links). Das et al. use it to pick partition roots and grow
// regions; a qubit with no free links has utility 0.
func (d *Device) Utility(q int, free []bool) float64 {
	links, errSum := 0, 0.0
	for _, nb := range d.Coupling.Neighbors(q) {
		if free == nil || free[nb] {
			links++
			errSum += d.CNOTError(q, nb)
		}
	}
	if links == 0 || fp.Zero(errSum) {
		return 0
	}
	return float64(links) / errSum
}

// ErrWeightedDistance returns an all-pairs "noise distance" matrix where
// each link's length is 1 + penalty * (-log(reliability)). Noise-aware
// SABRE uses it so routes prefer reliable links; with penalty = 0 it
// degenerates to plain hop counts. The matrix is cached per
// (calibration version, penalty) and shared: callers must not modify
// it.
func (d *Device) ErrWeightedDistance(penalty float64) [][]float64 {
	return d.Artifact("arch/errdist", penalty, func() any {
		return d.errWeightedDistance(penalty)
	}).([][]float64)
}

func (d *Device) errWeightedDistance(penalty float64) [][]float64 {
	n := d.NumQubits()
	g := graph.New(n)
	for e, errRate := range d.CNOTErr {
		w := 1.0
		if penalty > 0 {
			rel := 1 - errRate
			if rel < 1e-9 {
				rel = 1e-9
			}
			w += penalty * -math.Log(rel)
		}
		g.AddWeightedEdge(e.U, e.V, w)
	}
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = g.Dijkstra(i)
	}
	return out
}

// BestQubits returns the qubit indices sorted by ascending readout error
// (a simple robustness ranking used in tests and examples).
func (d *Device) BestQubits() []int {
	idx := make([]int, d.NumQubits())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return d.ReadoutErr[idx[a]] < d.ReadoutErr[idx[b]]
	})
	return idx
}

// newDevice assembles a Device from an edge list, leaving calibration
// zeroed for the caller to fill.
func newDevice(name string, n int, edges [][2]int) *Device {
	g := graph.New(n)
	cerr := make(map[graph.Edge]float64, len(edges))
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
		cerr[graph.NewEdge(e[0], e[1])] = 0
	}
	return &Device{
		Name:       name,
		Coupling:   g,
		CNOTErr:    cerr,
		ReadoutErr: make([]float64, n),
		Gate1Err:   make([]float64, n),
	}
}
