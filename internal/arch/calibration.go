package arch

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Calibration is a snapshot of a device's error rates, analogous to one
// day of IBM backend calibration data. It is decoupled from Device so
// multi-day series (Figure 9) can be generated once and re-applied.
type Calibration struct {
	// CNOTErr maps each coupling edge to its CNOT error rate.
	CNOTErr map[graph.Edge]float64
	// ReadoutErr and Gate1Err are per-qubit error rates.
	ReadoutErr []float64
	Gate1Err   []float64
	// Crosstalk is the optional pairwise conditional-error matrix
	// E(victim|aggressor); nil means the day's calibration did not
	// characterize crosstalk and the device falls back to its scalar
	// model. GenerateCalibration leaves it nil (so existing seeds stay
	// byte-identical); pair it with GenerateCrosstalk/CrosstalkSeries.
	Crosstalk CrosstalkMatrix
}

// Realistic IBMQ16-Melbourne-like calibration ranges. The paper's
// simulated IBMQ50 draws each attribute "within the range of its maximum
// and minimum value on IBMQ16 using a uniform random model"; we use the
// same model for every synthetic calibration in this repository.
const (
	// MinCNOTErr and MaxCNOTErr bound per-link CNOT error rates.
	MinCNOTErr = 0.012
	MaxCNOTErr = 0.12
	// MinReadoutErr and MaxReadoutErr bound per-qubit readout error.
	MinReadoutErr = 0.015
	MaxReadoutErr = 0.12
	// MinGate1Err and MaxGate1Err bound per-qubit 1q-gate error.
	MinGate1Err = 0.0005
	MaxGate1Err = 0.005
)

// GenerateCalibration produces a deterministic synthetic calibration for
// the device from the given seed, drawing each attribute uniformly
// within the Melbourne-like ranges above. A fraction of links is made
// distinctly "weak" (top of the error range) so the variation-aware
// mapping policies have real structure to exploit, mirroring the
// highlighted weak links in the paper's Figure 5.
func GenerateCalibration(d *Device, seed int64) Calibration {
	rng := rand.New(rand.NewSource(seed*2654435761 + 97))
	n := d.NumQubits()
	cal := Calibration{
		CNOTErr:    make(map[graph.Edge]float64, len(d.CNOTErr)),
		ReadoutErr: make([]float64, n),
		Gate1Err:   make([]float64, n),
	}
	uniform := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }

	// Iterate edges in sorted order so generation is reproducible
	// regardless of map iteration order.
	edges := d.Coupling.Edges()
	for _, e := range edges {
		err := uniform(MinCNOTErr, MaxCNOTErr*0.6)
		if rng.Float64() < 0.15 { // weak link
			err = uniform(MaxCNOTErr*0.6, MaxCNOTErr)
		}
		cal.CNOTErr[e] = err
	}
	for q := 0; q < n; q++ {
		cal.ReadoutErr[q] = uniform(MinReadoutErr, MaxReadoutErr*0.7)
		if rng.Float64() < 0.12 { // weak qubit
			cal.ReadoutErr[q] = uniform(MaxReadoutErr*0.7, MaxReadoutErr)
		}
		cal.Gate1Err[q] = uniform(MinGate1Err, MaxGate1Err)
	}
	return cal
}

// ApplyCalibration installs cal onto d, replacing its error data. It
// panics if cal's shape does not match the device.
func ApplyCalibration(d *Device, cal Calibration) {
	if len(cal.ReadoutErr) != d.NumQubits() || len(cal.Gate1Err) != d.NumQubits() {
		panic(fmt.Sprintf("arch: calibration shape mismatch for %s", d.Name))
	}
	for e := range d.CNOTErr {
		v, ok := cal.CNOTErr[e]
		if !ok {
			panic(fmt.Sprintf("arch: calibration missing edge %v for %s", e, d.Name))
		}
		d.CNOTErr[e] = v
	}
	copy(d.ReadoutErr, cal.ReadoutErr)
	copy(d.Gate1Err, cal.Gate1Err)
	// The matrix is part of the calibration: a day without one clears
	// any previous day's (conditional rates are meaningless against
	// fresh base rates).
	d.Crosstalk = cal.Crosstalk.Clone()
	d.InvalidateArtifacts()
}

// CalibrationSeries returns `days` successive calibrations for the
// device, seeded deterministically from base. It models the daily IBM
// recalibration cycle used by the Figure 9 omega sweep (21 days in the
// paper).
func CalibrationSeries(d *Device, base int64, days int) []Calibration {
	out := make([]Calibration, days)
	for i := 0; i < days; i++ {
		out[i] = GenerateCalibration(d, base+int64(i)*131)
	}
	return out
}

// WeakLinks returns the coupling edges whose CNOT error rate is at or
// above the given threshold, sorted by edge order. Used by examples to
// highlight unreliable regions as in Figure 5.
func (d *Device) WeakLinks(threshold float64) []graph.Edge {
	var out []graph.Edge
	for e, err := range d.CNOTErr {
		if err >= threshold {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// DriftSeries returns `days` successive calibrations where each day is
// the previous day perturbed by a small relative drift (each value
// multiplied by a factor uniform in [1-drift, 1+drift], clamped to the
// global ranges). Unlike CalibrationSeries' independent draws, this
// models the day-to-day autocorrelation of real backends and is used by
// the hierarchy-tree staleness experiment.
func DriftSeries(d *Device, base int64, days int, drift float64) []Calibration {
	if days <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(base*40503 + 7))
	out := make([]Calibration, days)
	out[0] = GenerateCalibration(d, base)
	clamp := func(v, lo, hi float64) float64 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	perturb := func(v float64) float64 {
		return v * (1 + drift*(2*rng.Float64()-1))
	}
	for t := 1; t < days; t++ {
		prev := out[t-1]
		cal := Calibration{
			CNOTErr:    make(map[graph.Edge]float64, len(prev.CNOTErr)),
			ReadoutErr: make([]float64, len(prev.ReadoutErr)),
			Gate1Err:   make([]float64, len(prev.Gate1Err)),
		}
		// Iterate edges in sorted order for determinism.
		for _, e := range d.Coupling.Edges() {
			cal.CNOTErr[e] = clamp(perturb(prev.CNOTErr[e]), MinCNOTErr, MaxCNOTErr)
		}
		for q := range prev.ReadoutErr {
			cal.ReadoutErr[q] = clamp(perturb(prev.ReadoutErr[q]), MinReadoutErr, MaxReadoutErr)
			cal.Gate1Err[q] = clamp(perturb(prev.Gate1Err[q]), MinGate1Err, MaxGate1Err)
		}
		out[t] = cal
	}
	return out
}
