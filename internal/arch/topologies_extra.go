package arch

import "fmt"

// tokyoEdges is the coupling map of IBM Q20 Tokyo: a 4x5 grid with the
// diagonal couplers of the production device (the chip SABRE and the
// noise-adaptive mapping papers evaluate on).
var tokyoEdges = [][2]int{
	// horizontal
	{0, 1}, {1, 2}, {2, 3}, {3, 4},
	{5, 6}, {6, 7}, {7, 8}, {8, 9},
	{10, 11}, {11, 12}, {12, 13}, {13, 14},
	{15, 16}, {16, 17}, {17, 18}, {18, 19},
	// vertical
	{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9},
	{5, 10}, {6, 11}, {7, 12}, {8, 13}, {9, 14},
	{10, 15}, {11, 16}, {12, 17}, {13, 18}, {14, 19},
	// diagonal couplers
	{1, 7}, {2, 6}, {3, 9}, {4, 8},
	{5, 11}, {6, 10}, {7, 13}, {8, 12},
	{11, 17}, {12, 16}, {13, 19}, {14, 18},
}

// Tokyo returns the 20-qubit IBM Q20 Tokyo device with synthetic
// calibration drawn from the given seed.
func Tokyo(seed int64) *Device {
	d := newDevice("tokyo", 20, tokyoEdges)
	ApplyCalibration(d, GenerateCalibration(d, seed))
	return d
}

// falcon27Edges is the heavy-hex coupling map of IBM's 27-qubit Falcon
// processors (e.g. ibmq_montreal / ibmq_mumbai).
var falcon27Edges = [][2]int{
	{0, 1}, {1, 2}, {1, 4}, {2, 3}, {3, 5}, {4, 7}, {5, 8}, {6, 7},
	{7, 10}, {8, 9}, {8, 11}, {10, 12}, {11, 14}, {12, 13}, {12, 15},
	{13, 14}, {14, 16}, {15, 18}, {16, 19}, {17, 18}, {18, 21},
	{19, 20}, {19, 22}, {21, 23}, {22, 25}, {23, 24}, {24, 25}, {25, 26},
}

// Falcon27 returns a 27-qubit heavy-hex device (IBM Falcon layout) with
// synthetic calibration from the given seed. Heavy-hex lattices are the
// topology of IBM's post-2020 chips, including the 53-qubit cloud
// device the paper's introduction cites.
func Falcon27(seed int64) *Device {
	d := newDevice("falcon27", 27, falcon27Edges)
	ApplyCalibration(d, GenerateCalibration(d, seed))
	return d
}

// Ring returns an n-qubit cycle device with uniform calibration, useful
// for tests needing two disjoint routes between any pair.
func Ring(n int, cnotErr, readoutErr float64) *Device {
	if n < 3 {
		panic("arch: ring needs >= 3 qubits")
	}
	var edges [][2]int
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	d := newDevice(fmt.Sprintf("ring%d", n), n, edges)
	for e := range d.CNOTErr {
		d.CNOTErr[e] = cnotErr
	}
	for q := 0; q < n; q++ {
		d.ReadoutErr[q] = readoutErr
		d.Gate1Err[q] = cnotErr / 10
	}
	return d
}

// ByName builds a standard device by name ("ibmq16", "ibmq50", "tokyo",
// "falcon27", "london") with the given calibration seed. CLI tools and
// the scalability experiment use it.
func ByName(name string, seed int64) (*Device, error) {
	switch name {
	case "ibmq16":
		return IBMQ16(seed), nil
	case "ibmq50":
		return IBMQ50(seed), nil
	case "tokyo":
		return Tokyo(seed), nil
	case "falcon27":
		return Falcon27(seed), nil
	case "london":
		return London(), nil
	}
	return nil, fmt.Errorf("arch: unknown device %q (ibmq16, ibmq50, tokyo, falcon27, london)", name)
}

// StandardDevices lists the named chips ByName accepts, smallest first.
func StandardDevices() []string {
	return []string{"london", "ibmq16", "tokyo", "falcon27", "ibmq50"}
}
