package arch

import (
	"fmt"

	"repro/internal/graph"
)

// ibmq16Edges is the coupling map of IBM Q16 Melbourne's 15 working
// qubits: two horizontal rows (0..6 on top, 14..8 on the bottom, with 7
// hanging off the bottom-right) connected by vertical rungs.
var ibmq16Edges = [][2]int{
	{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, // top row
	{7, 8}, {8, 9}, {9, 10}, {10, 11}, {11, 12}, {12, 13}, {13, 14}, // bottom row
	{0, 14}, {1, 13}, {2, 12}, {3, 11}, {4, 10}, {5, 9}, {6, 8}, // rungs
}

// IBMQ16NumQubits is the number of working qubits on IBM Q16 Melbourne.
const IBMQ16NumQubits = 15

// IBMQ50NumQubits is the size of the simulated 50-qubit chip.
const IBMQ50NumQubits = 50

// IBMQ16 returns the IBM Q16 Melbourne device with calibration drawn
// from the synthetic generator using the given seed. Seed 0 yields the
// repository's canonical "calibration day".
func IBMQ16(seed int64) *Device {
	d := newDevice("ibmq16", IBMQ16NumQubits, ibmq16Edges)
	ApplyCalibration(d, GenerateCalibration(d, seed))
	return d
}

// IBMQ50 returns the simulated 50-qubit device: a 5x10 lattice with all
// horizontal links and alternating vertical rungs (a "heavy ladder"
// standing in for IBM's unpublished 50-qubit prototype topology — sparse,
// planar, max degree 4). Calibration is drawn uniformly within IBMQ16's
// observed ranges, exactly as the paper does for its simulated chip.
func IBMQ50(seed int64) *Device {
	const rows, cols = 5, 10
	var edges [][2]int
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c+1 < cols; c++ {
			edges = append(edges, [2]int{id(r, c), id(r, c+1)})
		}
	}
	for r := 0; r+1 < rows; r++ {
		for c := 0; c < cols; c++ {
			// Alternate rung phase per row pair so the lattice is
			// sparse (degree <= 4) like superconducting chips.
			if (c+r)%2 == 0 {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	d := newDevice("ibmq50", rows*cols, edges)
	ApplyCalibration(d, GenerateCalibration(d, seed))
	return d
}

// London returns the 5-qubit IBM Q London "T" topology from Figure 8 of
// the paper, with the calibration values chosen to reproduce the
// figure's dendrogram: Q0-Q1 merge first (most reliable link), then Q2
// joins {0,1} (despite Q1-Q3 having a lower CNOT error, topology wins),
// then Q3-Q4 merge, then the root.
func London() *Device {
	d := newDevice("london", 5, [][2]int{{0, 1}, {1, 2}, {1, 3}, {3, 4}})
	// Readout error (%): matches the figure's per-qubit annotations.
	readout := []float64{1.9, 2.4, 3.1, 2.6, 4.2}
	for q, r := range readout {
		d.ReadoutErr[q] = r / 100
		d.Gate1Err[q] = 0.0005 + 0.0001*float64(q)
	}
	// CNOT error (%): Q0-Q1 lowest; Q1-Q3 lower than Q1-Q2.
	set := func(u, v int, pct float64) {
		d.CNOTErr[edgeOf(d, u, v)] = pct / 100
	}
	set(0, 1, 0.8)
	set(1, 2, 1.6)
	set(1, 3, 1.2)
	set(3, 4, 4.4)
	return d
}

// Linear returns an n-qubit path device (q0-q1-...-q(n-1)) with uniform
// calibration, handy for unit tests with predictable SWAP paths.
func Linear(n int, cnotErr, readoutErr float64) *Device {
	var edges [][2]int
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	d := newDevice(fmt.Sprintf("linear%d", n), n, edges)
	for e := range d.CNOTErr {
		d.CNOTErr[e] = cnotErr
	}
	for q := 0; q < n; q++ {
		d.ReadoutErr[q] = readoutErr
		d.Gate1Err[q] = cnotErr / 10
	}
	return d
}

// Grid returns a rows x cols full-grid device with uniform calibration.
// Used by the X-SWAP shortcut tests (Figure 10 uses a 3x3 grid).
func Grid(rows, cols int, cnotErr, readoutErr float64) *Device {
	var edges [][2]int
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	d := newDevice(fmt.Sprintf("grid%dx%d", rows, cols), rows*cols, edges)
	for e := range d.CNOTErr {
		d.CNOTErr[e] = cnotErr
	}
	for q := 0; q < rows*cols; q++ {
		d.ReadoutErr[q] = readoutErr
		d.Gate1Err[q] = cnotErr / 10
	}
	return d
}

func edgeOf(d *Device, u, v int) graph.Edge {
	e := graph.NewEdge(u, v)
	if _, ok := d.CNOTErr[e]; !ok {
		panic(fmt.Sprintf("arch: device %s has no edge %v", d.Name, e))
	}
	return e
}
