package arch

import "testing"

func TestTokyoShape(t *testing.T) {
	d := Tokyo(0)
	if d.NumQubits() != 20 {
		t.Fatalf("qubits = %d", d.NumQubits())
	}
	if got, want := d.Coupling.M(), 43; got != want {
		t.Fatalf("edges = %d, want %d", got, want)
	}
	if !d.Coupling.Connected() {
		t.Fatal("tokyo must be connected")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corner 0 touches 1 and 5 only.
	if d.Coupling.Degree(0) != 2 {
		t.Fatalf("q0 degree = %d, want 2", d.Coupling.Degree(0))
	}
}

func TestFalcon27Shape(t *testing.T) {
	d := Falcon27(0)
	if d.NumQubits() != 27 {
		t.Fatalf("qubits = %d", d.NumQubits())
	}
	if got, want := d.Coupling.M(), 28; got != want {
		t.Fatalf("edges = %d, want %d", got, want)
	}
	if !d.Coupling.Connected() {
		t.Fatal("falcon27 must be connected")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Heavy-hex: max degree 3.
	for q := 0; q < d.NumQubits(); q++ {
		if d.Coupling.Degree(q) > 3 {
			t.Fatalf("q%d degree %d > 3 on heavy-hex", q, d.Coupling.Degree(q))
		}
	}
}

func TestRingShape(t *testing.T) {
	d := Ring(6, 0.02, 0.02)
	if d.Coupling.M() != 6 {
		t.Fatalf("edges = %d", d.Coupling.M())
	}
	for q := 0; q < 6; q++ {
		if d.Coupling.Degree(q) != 2 {
			t.Fatalf("ring degree = %d", d.Coupling.Degree(q))
		}
	}
	// Two disjoint routes: distance 0->3 is 3 both ways.
	if d.Hops()[0][3] != 3 {
		t.Fatalf("ring d(0,3) = %d", d.Hops()[0][3])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ring with <3 qubits must panic")
		}
	}()
	Ring(2, 0.02, 0.02)
}

func TestByName(t *testing.T) {
	for _, name := range StandardDevices() {
		d, err := ByName(name, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !d.Coupling.Connected() {
			t.Fatalf("%s not connected", name)
		}
	}
	if _, err := ByName("bogus", 0); err == nil {
		t.Fatal("unknown name must error")
	}
}

func TestStandardDevicesSortedBySize(t *testing.T) {
	prev := 0
	for _, name := range StandardDevices() {
		d, err := ByName(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d.NumQubits() < prev {
			t.Fatalf("%s (%d qubits) out of size order", name, d.NumQubits())
		}
		prev = d.NumQubits()
	}
}
