package arch

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/graph"
)

func xtalkDevice(t *testing.T) *Device {
	t.Helper()
	d := IBMQ16(1)
	d.Crosstalk = GenerateCrosstalk(d, 5)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateCrosstalkDeterministic(t *testing.T) {
	d := IBMQ16(1)
	a := GenerateCrosstalk(d, 5)
	b := GenerateCrosstalk(d, 5)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different matrices")
	}
	c := GenerateCrosstalk(d, 6)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical matrices")
	}
}

func TestGenerateCrosstalkCoversAdjacentPairs(t *testing.T) {
	d := xtalkDevice(t)
	pairs := d.AdjacentEdgePairs()
	if len(d.Crosstalk) != len(pairs) {
		t.Fatalf("matrix has %d entries, want %d adjacent pairs", len(d.Crosstalk), len(pairs))
	}
	for _, p := range pairs {
		cond, ok := d.CrosstalkErr(p.Victim, p.Aggressor)
		if !ok {
			t.Fatalf("pair %v not characterized", p)
		}
		base := d.CNOTError(p.Victim.U, p.Victim.V)
		if cond < base*BenignRatioLo-1e-12 || cond > MaxCondErr {
			t.Errorf("pair %v: conditional %v outside [base=%v, cap=%v]", p, cond, base, MaxCondErr)
		}
	}
}

func TestGenerateCrosstalkPlantsHostilePairs(t *testing.T) {
	d := xtalkDevice(t)
	hostile := d.HostilePairs(HostileRatioLo * 0.99)
	if len(hostile) == 0 {
		t.Fatal("generator planted no hostile pairs")
	}
	// Hostility is mutual: each hostile pair's reverse must be hostile
	// too (both orientations draw from the hostile ratio range), unless
	// the reverse hit the MaxCondErr cap.
	for _, p := range hostile {
		rev := d.CrosstalkRatio(p.Aggressor, p.Victim)
		revCond, _ := d.CrosstalkErr(p.Aggressor, p.Victim)
		//lint:ignore floateq cap comparison is exact by construction
		if rev < HostileRatioLo*0.99 && revCond != MaxCondErr {
			t.Errorf("pair %v hostile but reverse ratio only %v", p, rev)
		}
	}
	// Roughly HostilePairFrac of unordered pairs should be hostile.
	frac := float64(len(hostile)) / float64(len(d.Crosstalk))
	if frac < 0.02 || frac > 0.4 {
		t.Errorf("hostile fraction %.3f implausible for target %.2f", frac, HostilePairFrac)
	}
}

func TestWorst2qErrUnder(t *testing.T) {
	d := IBMQ16(1)
	v := graph.NewEdge(0, 1)
	a := graph.NewEdge(2, 3) // coupled to v via 1-2
	base := d.CNOTError(0, 1)
	d.Crosstalk = CrosstalkMatrix{
		EdgePair{Victim: v, Aggressor: a}: base * 4,
	}
	if got := d.Worst2qErrUnder(v, nil); got != base {
		t.Errorf("no busy links: got %v, want base %v", got, base)
	}
	if got := d.Worst2qErrUnder(v, []graph.Edge{a}); got != base*4 {
		t.Errorf("hostile aggressor: got %v, want %v", got, base*4)
	}
	// Orientation-independent on both sides.
	if got := d.Worst2qErrUnder(graph.Edge{U: 1, V: 0}, []graph.Edge{{U: 3, V: 2}}); got != base*4 {
		t.Errorf("reversed orientations: got %v, want %v", got, base*4)
	}
	// A link is never its own aggressor, in either orientation.
	if got := d.Worst2qErrUnder(v, []graph.Edge{v, {U: 1, V: 0}}); got != base {
		t.Errorf("self aggressor: got %v, want base %v", got, base)
	}
	// Uncharacterized busy links are benign.
	if got := d.Worst2qErrUnder(v, []graph.Edge{graph.NewEdge(5, 6)}); got != base {
		t.Errorf("uncharacterized aggressor: got %v, want base %v", got, base)
	}
}

func TestAdjacentEdgePairsDisjointAndCoupled(t *testing.T) {
	d := IBMQ16(0)
	for _, p := range d.AdjacentEdgePairs() {
		if sharesQubit(p.Victim, p.Aggressor) {
			t.Fatalf("pair %v shares a qubit", p)
		}
		if !edgesCoupled(d, p.Victim, p.Aggressor) {
			t.Fatalf("pair %v not coupled", p)
		}
	}
}

func TestEPSTUnderPenalizesHostileNeighbors(t *testing.T) {
	d := IBMQ16(1)
	region := []int{0, 1}
	v := graph.NewEdge(0, 1)
	a := graph.NewEdge(2, 3)
	base := d.EPST(region, 10, 5, 2)
	// No matrix: identical to EPST regardless of busy links.
	//lint:ignore floateq fallback must be bit-identical
	if got := d.EPSTUnder(region, 10, 5, 2, []graph.Edge{a}); got != base {
		t.Errorf("no matrix: EPSTUnder %v != EPST %v", got, base)
	}
	d.Crosstalk = CrosstalkMatrix{EdgePair{Victim: v, Aggressor: a}: d.CNOTError(0, 1) * 4}
	//lint:ignore floateq no busy links must be bit-identical to EPST
	if got := d.EPSTUnder(region, 10, 5, 2, nil); got != base {
		t.Errorf("no busy links: EPSTUnder %v != EPST %v", got, base)
	}
	hostile := d.EPSTUnder(region, 10, 5, 2, []graph.Edge{a})
	if hostile >= base {
		t.Errorf("hostile neighbor did not lower EPST: %v >= %v", hostile, base)
	}
	benign := d.EPSTUnder(region, 10, 5, 2, []graph.Edge{graph.NewEdge(12, 13)})
	//lint:ignore floateq uncharacterized neighbors charge exactly the base error
	if benign != base {
		t.Errorf("uncharacterized neighbor changed EPST: %v != %v", benign, base)
	}
}

func TestCrosstalkValidation(t *testing.T) {
	cases := map[string]CrosstalkMatrix{
		"missing link":      {EdgePair{Victim: graph.NewEdge(0, 5), Aggressor: graph.NewEdge(2, 3)}: 0.1},
		"non-normalized":    {EdgePair{Victim: graph.Edge{U: 1, V: 0}, Aggressor: graph.NewEdge(2, 3)}: 0.1},
		"self pair":         {EdgePair{Victim: graph.NewEdge(0, 1), Aggressor: graph.NewEdge(0, 1)}: 0.1},
		"shared qubit":      {EdgePair{Victim: graph.NewEdge(0, 1), Aggressor: graph.NewEdge(1, 2)}: 0.1},
		"error out of range": {EdgePair{Victim: graph.NewEdge(0, 1), Aggressor: graph.NewEdge(2, 3)}: 1.0},
	}
	for name, m := range cases {
		d := IBMQ16(0)
		d.Crosstalk = m
		if err := d.Validate(); err == nil {
			t.Errorf("%s: validation accepted bad matrix", name)
		}
	}
}

func TestCrosstalkJSONRoundTrip(t *testing.T) {
	d := xtalkDevice(t)
	var buf bytes.Buffer
	if err := SaveDevice(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDevice(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Crosstalk, d.Crosstalk) {
		t.Error("crosstalk matrix did not survive the JSON round trip")
	}
	// A matrix-free device must serialize without a crosstalk key at
	// all, so specs stay byte-compatible with older readers.
	buf.Reset()
	if err := SaveDevice(&buf, IBMQ16(1)); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("crosstalk")) {
		t.Error("matrix-free device emitted a crosstalk key")
	}
}

func TestApplyCalibrationInstallsAndClearsCrosstalk(t *testing.T) {
	d := IBMQ16(1)
	cal := GenerateCalibration(d, 9)
	cal.Crosstalk = GenerateCrosstalk(d, 9)
	ApplyCalibration(d, cal)
	if !d.HasCrosstalk() {
		t.Fatal("calibration with matrix did not install it")
	}
	if !reflect.DeepEqual(d.Crosstalk, cal.Crosstalk) {
		t.Error("installed matrix differs from calibration's")
	}
	// Clone, not alias: mutating the device's copy must not write back.
	for p := range d.Crosstalk {
		d.Crosstalk[p] = 0.9
		break
	}
	if reflect.DeepEqual(d.Crosstalk, cal.Crosstalk) {
		t.Error("device aliases the calibration's matrix")
	}
	ApplyCalibration(d, GenerateCalibration(d, 10))
	if d.HasCrosstalk() {
		t.Error("calibration without matrix did not clear the previous one")
	}
}

func TestCrosstalkSeriesDeterministicAndAligned(t *testing.T) {
	d := IBMQ16(1)
	a := CrosstalkSeries(d, 7, 3)
	b := CrosstalkSeries(d, 7, 3)
	if !reflect.DeepEqual(a, b) {
		t.Error("series not deterministic")
	}
	if len(a) != 3 {
		t.Fatalf("got %d days", len(a))
	}
	if reflect.DeepEqual(a[0], a[1]) {
		t.Error("consecutive days identical")
	}
	// Day i's conditional rates must be drawn against day i's base
	// rates: every benign entry stays within MaxCondErr of that day's
	// calibration, and installing the pair validates.
	cals := CalibrationSeries(d, 7, 3)
	for i := range cals {
		cals[i].Crosstalk = a[i]
		scratch := IBMQ16(1)
		ApplyCalibration(scratch, cals[i])
		if err := scratch.Validate(); err != nil {
			t.Fatalf("day %d: %v", i, err)
		}
	}
	// d itself must be untouched by the series generation.
	if d.HasCrosstalk() {
		t.Error("CrosstalkSeries mutated the input device")
	}
}
