package arch

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestIBMQ16Shape(t *testing.T) {
	d := IBMQ16(0)
	if d.NumQubits() != IBMQ16NumQubits {
		t.Fatalf("qubits = %d, want %d", d.NumQubits(), IBMQ16NumQubits)
	}
	if got, want := d.Coupling.M(), 20; got != want {
		t.Fatalf("edges = %d, want %d", got, want)
	}
	if !d.Coupling.Connected() {
		t.Fatal("IBMQ16 coupling must be connected")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper §IV-A: "Q1 has links to the three adjacent physical
	// qubits, while Q7 has a link to only one qubit."
	if d.Coupling.Degree(1) != 3 {
		t.Fatalf("Q1 degree = %d, want 3", d.Coupling.Degree(1))
	}
	if d.Coupling.Degree(7) != 1 {
		t.Fatalf("Q7 degree = %d, want 1", d.Coupling.Degree(7))
	}
	for q := 0; q < d.NumQubits(); q++ {
		if deg := d.Coupling.Degree(q); deg < 1 || deg > 4 {
			t.Fatalf("qubit %d degree %d outside [1,4]", q, deg)
		}
	}
}

func TestIBMQ50Shape(t *testing.T) {
	d := IBMQ50(0)
	if d.NumQubits() != IBMQ50NumQubits {
		t.Fatalf("qubits = %d, want %d", d.NumQubits(), IBMQ50NumQubits)
	}
	if !d.Coupling.Connected() {
		t.Fatal("IBMQ50 coupling must be connected")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < d.NumQubits(); q++ {
		if deg := d.Coupling.Degree(q); deg > 4 {
			t.Fatalf("qubit %d degree %d > 4; superconducting lattices are sparse", q, deg)
		}
	}
}

func TestLondonShape(t *testing.T) {
	d := London()
	if d.NumQubits() != 5 || d.Coupling.M() != 4 {
		t.Fatalf("london = %d qubits %d edges", d.NumQubits(), d.Coupling.M())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Figure 8 preconditions: Q0-Q1 is the most reliable link, and
	// Q1-Q3 is more reliable than Q1-Q2.
	if !(d.CNOTError(0, 1) < d.CNOTError(1, 3) && d.CNOTError(1, 3) < d.CNOTError(1, 2)) {
		t.Fatal("london calibration must satisfy figure 8 ordering")
	}
}

func TestCalibrationDeterministic(t *testing.T) {
	a, b := IBMQ16(7), IBMQ16(7)
	for e, v := range a.CNOTErr {
		if b.CNOTErr[e] != v {
			t.Fatalf("same seed produced different CNOT error at %v", e)
		}
	}
	c := IBMQ16(8)
	same := true
	for e, v := range a.CNOTErr {
		if c.CNOTErr[e] != v {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must produce different calibrations")
	}
}

func TestCalibrationRanges(t *testing.T) {
	f := func(seed int64) bool {
		d := IBMQ16(seed)
		for _, v := range d.CNOTErr {
			if v < MinCNOTErr || v > MaxCNOTErr {
				return false
			}
		}
		for q := 0; q < d.NumQubits(); q++ {
			if d.ReadoutErr[q] < MinReadoutErr || d.ReadoutErr[q] > MaxReadoutErr {
				return false
			}
			if d.Gate1Err[q] < MinGate1Err || d.Gate1Err[q] > MaxGate1Err {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrationSeries(t *testing.T) {
	d := IBMQ16(0)
	series := CalibrationSeries(d, 1, 21)
	if len(series) != 21 {
		t.Fatalf("series length = %d", len(series))
	}
	// Days must differ.
	e := graph.NewEdge(0, 1)
	if series[0].CNOTErr[e] == series[1].CNOTErr[e] && series[1].CNOTErr[e] == series[2].CNOTErr[e] {
		t.Fatal("calibration days should differ")
	}
	// Applying must be loss-free.
	ApplyCalibration(d, series[3])
	if d.CNOTErr[e] != series[3].CNOTErr[e] {
		t.Fatal("ApplyCalibration did not install values")
	}
}

func TestValidateCatchesBadData(t *testing.T) {
	d := IBMQ16(0)
	d.ReadoutErr[3] = 1.5
	if err := d.Validate(); err == nil {
		t.Fatal("Validate must reject out-of-range readout error")
	}
	d = IBMQ16(0)
	d.ReadoutErr = d.ReadoutErr[:3]
	if err := d.Validate(); err == nil {
		t.Fatal("Validate must reject wrong-length ReadoutErr")
	}
}

func TestCNOTErrorPanicsOnMissingLink(t *testing.T) {
	d := IBMQ16(0)
	defer func() {
		if recover() == nil {
			t.Fatal("CNOTError on a non-link must panic")
		}
	}()
	d.CNOTError(0, 5) // not coupled on Melbourne
}

func TestRegionFidelity(t *testing.T) {
	d := Linear(5, 0.05, 0.02)
	// Region {0,1}: one link rel 0.95 + two readout rel 0.98 -> mean.
	want := (0.95 + 0.98 + 0.98) / 3
	if got := d.RegionFidelity([]int{0, 1}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RegionFidelity = %v, want %v", got, want)
	}
	if d.RegionFidelity(nil) != 0 {
		t.Fatal("empty region must score 0")
	}
	// A region with worse qubits must score lower.
	d2 := Linear(5, 0.05, 0.02)
	d2.ReadoutErr[0] = 0.3
	if d2.RegionFidelity([]int{0, 1}) >= d.RegionFidelity([]int{0, 1}) {
		t.Fatal("worse readout must lower region fidelity")
	}
}

func TestUtility(t *testing.T) {
	d := Linear(3, 0.1, 0.02)
	free := []bool{true, true, true}
	// Qubit 1 has two links with err 0.1 each: utility = 2/0.2 = 10.
	if got := d.Utility(1, free); math.Abs(got-10) > 1e-9 {
		t.Fatalf("utility = %v, want 10", got)
	}
	// Masking neighbor 2 halves links and err sum: 1/0.1 = 10 still.
	free[2] = false
	if got := d.Utility(1, free); math.Abs(got-10) > 1e-9 {
		t.Fatalf("utility with mask = %v, want 10", got)
	}
	free[0] = false
	if got := d.Utility(1, free); got != 0 {
		t.Fatalf("utility with no free links = %v, want 0", got)
	}
}

func TestErrWeightedDistance(t *testing.T) {
	d := Linear(4, 0.05, 0.02)
	dist := d.ErrWeightedDistance(0)
	if dist[0][3] != 3 {
		t.Fatalf("penalty 0 must give hops; got %v", dist[0][3])
	}
	distP := d.ErrWeightedDistance(5)
	if distP[0][3] <= 3 {
		t.Fatalf("penalty must lengthen noisy paths; got %v", distP[0][3])
	}
}

func TestErrWeightedDistancePrefersReliablePath(t *testing.T) {
	// Square with one very bad direct link 0-3 and a good path 0-1-2-3.
	d := Grid(2, 2, 0.01, 0.02) // qubits 0,1 / 2,3 with 4 edges
	d.CNOTErr[graph.NewEdge(1, 3)] = 0.6
	dist := d.ErrWeightedDistance(10)
	// With heavy penalty, 1->3 direct costs 1 + 10*(-ln 0.4) ~ 10.2,
	// while 1-0-2-3 costs ~3.3.
	if dist[1][3] > 4 {
		t.Fatalf("noise-aware distance should route around the weak link; got %v", dist[1][3])
	}
}

func TestHopsCached(t *testing.T) {
	d := IBMQ16(0)
	h1 := d.Hops()
	h2 := d.Hops()
	if &h1[0] != &h2[0] {
		t.Fatal("Hops must cache the matrix")
	}
	if h1[0][0] != 0 || h1[0][1] != 1 {
		t.Fatalf("unexpected hop values %d %d", h1[0][0], h1[0][1])
	}
}

func TestWeakLinks(t *testing.T) {
	d := Linear(4, 0.02, 0.02)
	d.CNOTErr[graph.NewEdge(1, 2)] = 0.2
	weak := d.WeakLinks(0.1)
	if len(weak) != 1 || weak[0] != graph.NewEdge(1, 2) {
		t.Fatalf("weak links = %v", weak)
	}
}

func TestGridShape(t *testing.T) {
	d := Grid(3, 3, 0.02, 0.02)
	if d.NumQubits() != 9 {
		t.Fatalf("grid qubits = %d", d.NumQubits())
	}
	if got, want := d.Coupling.M(), 12; got != want {
		t.Fatalf("grid edges = %d, want %d", got, want)
	}
	// Center qubit (4) must touch 4 neighbors.
	if d.Coupling.Degree(4) != 4 {
		t.Fatalf("center degree = %d", d.Coupling.Degree(4))
	}
}

func TestLinearShape(t *testing.T) {
	d := Linear(6, 0.03, 0.01)
	if d.NumQubits() != 6 || d.Coupling.M() != 5 {
		t.Fatalf("linear = %d qubits %d edges", d.NumQubits(), d.Coupling.M())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBestQubits(t *testing.T) {
	d := Linear(3, 0.02, 0.02)
	d.ReadoutErr = []float64{0.3, 0.1, 0.2}
	got := d.BestQubits()
	if got[0] != 1 || got[1] != 2 || got[2] != 0 {
		t.Fatalf("BestQubits = %v", got)
	}
}

func TestAvgCNOTErr(t *testing.T) {
	d := Linear(3, 0.1, 0.02)
	if got := d.AvgCNOTErr(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("avg = %v", got)
	}
}

func TestDriftSeriesAutocorrelated(t *testing.T) {
	d := IBMQ16(0)
	days := DriftSeries(d, 1, 10, 0.1)
	if len(days) != 10 {
		t.Fatalf("days = %d", len(days))
	}
	e := graph.NewEdge(0, 1)
	// Consecutive days stay within the drift bound; distant days wander.
	for t1 := 1; t1 < 10; t1++ {
		prev, cur := days[t1-1].CNOTErr[e], days[t1].CNOTErr[e]
		rel := math.Abs(cur-prev) / prev
		if rel > 0.1001 && cur != MinCNOTErr && cur != MaxCNOTErr {
			t.Fatalf("day %d drifted %.0f%% > 10%%", t1, rel*100)
		}
	}
	// Values stay in range.
	for _, day := range days {
		for _, v := range day.CNOTErr {
			if v < MinCNOTErr || v > MaxCNOTErr {
				t.Fatalf("cnot err %v out of range", v)
			}
		}
		for q := range day.ReadoutErr {
			if day.ReadoutErr[q] < MinReadoutErr || day.ReadoutErr[q] > MaxReadoutErr {
				t.Fatalf("readout err out of range")
			}
		}
	}
	if DriftSeries(d, 1, 0, 0.1) != nil {
		t.Fatal("zero days must return nil")
	}
}

func TestDriftSeriesDeterministic(t *testing.T) {
	d := IBMQ16(0)
	a := DriftSeries(d, 5, 4, 0.08)
	b := DriftSeries(d, 5, 4, 0.08)
	e := graph.NewEdge(0, 1)
	for i := range a {
		if a[i].CNOTErr[e] != b[i].CNOTErr[e] {
			t.Fatal("same seed must give same drift")
		}
	}
}
