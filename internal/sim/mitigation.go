package sim

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/fp"
	"repro/internal/pool"
	"repro/internal/router"
)

// MitigatedOutcome extends Outcome with readout-error-mitigated PSTs:
// the per-program outcome histograms are corrected by inverting the
// tensored per-qubit readout confusion matrices (the standard
// measurement-error-mitigation technique; cf. Tannu & Qureshi, the
// paper's [29]).
type MitigatedOutcome struct {
	Outcome
	// MitigatedPST[p] is program p's PST after readout correction,
	// clamped to [0, 1].
	MitigatedPST []float64
}

// SimulateScheduleMitigated runs the Monte-Carlo simulation like
// SimulateSchedule and additionally applies tensored readout-error
// mitigation per program. Programs are limited to 16 measured qubits
// (the histogram is dense).
func SimulateScheduleMitigated(d *arch.Device, sched *router.Schedule, progs []*circuit.Circuit, trials int, seed int64, noise NoiseModel) (*MitigatedOutcome, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("sim: trials must be positive, got %d", trials)
	}
	lay := layerize(sched)
	if noise.Enabled && noise.SerializeCrosstalk {
		lay = serializeCrosstalk(d, lay)
	}
	if len(lay.active) > 24 {
		return nil, fmt.Errorf("sim: %d active qubits exceed the statevector limit", len(lay.active))
	}
	measOf := make([][]router.Measurement, len(progs))
	for _, m := range lay.measures {
		if m.Program < 0 || m.Program >= len(progs) {
			return nil, fmt.Errorf("sim: measurement for unknown program %d", m.Program)
		}
		measOf[m.Program] = append(measOf[m.Program], m)
	}
	for p := range measOf {
		if len(measOf[p]) > 16 {
			return nil, fmt.Errorf("sim: program %d measures %d qubits; mitigation supports <= 16", p, len(measOf[p]))
		}
		sort.Slice(measOf[p], func(i, j int) bool { return measOf[p][i].Logical < measOf[p][j].Logical })
	}

	cp, err := compileLayers(d, lay, noise, engineStatevector)
	if err != nil {
		return nil, err
	}
	ref := newState(cp.nq)
	cp.runStatevectorNoiseless(ref)
	modal := ref.modal()
	correct := make([]string, len(progs))
	correctIdx := make([]int, len(progs))
	plan := make([][]measPoint, len(progs))
	for p := range progs {
		buf := make([]byte, len(measOf[p]))
		plan[p] = make([]measPoint, len(measOf[p]))
		idx := 0
		for i, m := range measOf[p] {
			b := (modal >> uint(lay.compact[m.Phys])) & 1
			buf[i] = byte('0' + b)
			idx |= b << uint(i)
			plan[p][i] = measPoint{compact: lay.compact[m.Phys], readout: d.ReadoutErr[m.Phys], correct: b}
		}
		correct[p] = string(buf)
		correctIdx[p] = idx
	}
	doReadout := noise.Enabled && noise.Readout

	// Sharded like SimulateScheduleWorkers; per-shard histograms hold
	// integer counts, so the shard-order reduction is exact and the
	// result is worker-count-independent.
	type shardCounts struct {
		counts [][]int
		succ   []int
	}
	shards := numShards(trials)
	workers := shardWorkers(0, trials, cp.trialWork)
	perShard := make([]shardCounts, shards)
	ferr := pool.ForEach(context.Background(), shards, workers, func(s int) error {
		rng := rand.New(rand.NewSource(shardSeed(seed, s)))
		lo, hi := shardRange(s, trials)
		sc := shardCounts{counts: make([][]int, len(progs)), succ: make([]int, len(progs))}
		for p := range progs {
			sc.counts[p] = make([]int, 1<<uint(len(plan[p])))
		}
		st := newState(cp.nq)
		for trial := lo; trial < hi; trial++ {
			st.reset()
			cp.runStatevector(st, rng)
			for p := range plan {
				idx := 0
				for i := range plan[p] {
					mp := &plan[p][i]
					b := st.measure(mp.compact, rng)
					if doReadout && rng.Float64() < mp.readout {
						b ^= 1
					}
					idx |= b << uint(i)
				}
				sc.counts[p][idx]++
				if idx == correctIdx[p] {
					sc.succ[p]++
				}
			}
		}
		perShard[s] = sc
		return nil
	})
	if ferr != nil {
		return nil, ferr
	}
	counts := make([][]float64, len(progs))
	for p := range progs {
		counts[p] = make([]float64, 1<<uint(len(measOf[p])))
	}
	succ := make([]int, len(progs))
	for s := 0; s < shards; s++ {
		for p := range progs {
			for i, c := range perShard[s].counts[p] {
				counts[p][i] += float64(c)
			}
			succ[p] += perShard[s].succ[p]
		}
	}

	out := &MitigatedOutcome{
		Outcome: Outcome{
			PST:     make([]float64, len(progs)),
			Correct: correct,
			Trials:  trials,
		},
		MitigatedPST: make([]float64, len(progs)),
	}
	for p := range progs {
		out.PST[p] = float64(succ[p]) / float64(trials)
		freq := make([]float64, len(counts[p]))
		for i, c := range counts[p] {
			freq[i] = c / float64(trials)
		}
		eps := make([]float64, len(measOf[p]))
		for i, m := range measOf[p] {
			if noise.Enabled && noise.Readout {
				eps[i] = d.ReadoutErr[m.Phys]
			}
		}
		mitigated := invertReadout(freq, eps)
		v := mitigated[correctIdx[p]]
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		out.MitigatedPST[p] = v
	}
	return out, nil
}

// invertReadout applies the tensored inverse confusion transform to a
// dense outcome distribution: for each qubit i with flip probability
// eps[i], the pairwise [p(bit=0), p(bit=1)] marginals are multiplied by
// A^-1 = 1/(1-2e) * [[1-e, -e], [-e, 1-e]]. eps values of 0.5 (singular
// matrix) leave that qubit uncorrected.
func invertReadout(freq []float64, eps []float64) []float64 {
	out := append([]float64(nil), freq...)
	for i, e := range eps {
		if fp.Zero(e) {
			continue
		}
		den := 1 - 2*e
		if den <= 1e-9 {
			continue // singular or anti-correlated: skip correction
		}
		a, b := (1-e)/den, -e/den
		bit := 1 << uint(i)
		for idx := range out {
			if idx&bit == 0 {
				p0, p1 := out[idx], out[idx|bit]
				out[idx] = a*p0 + b*p1
				out[idx|bit] = b*p0 + a*p1
			}
		}
	}
	return out
}
