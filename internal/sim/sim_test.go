package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/nisqbench"
	"repro/internal/router"
)

func TestStateBasics(t *testing.T) {
	s := newState(2)
	if s.prob1(0) != 0 || s.prob1(1) != 0 {
		t.Fatal("initial state must be |00>")
	}
	s.apply1q(pauliX, 0)
	if math.Abs(s.prob1(0)-1) > 1e-12 {
		t.Fatalf("after X, p1 = %v", s.prob1(0))
	}
	s.applyCNOT(0, 1)
	if math.Abs(s.prob1(1)-1) > 1e-12 {
		t.Fatalf("after CNOT, p1(target) = %v", s.prob1(1))
	}
}

func TestBellState(t *testing.T) {
	s := newState(2)
	h, err := gateMatrix(circuit.Gate{Name: circuit.GateH})
	if err != nil {
		t.Fatal(err)
	}
	s.apply1q(h, 0)
	s.applyCNOT(0, 1)
	if math.Abs(s.prob1(0)-0.5) > 1e-12 || math.Abs(s.prob1(1)-0.5) > 1e-12 {
		t.Fatalf("bell probs = %v %v", s.prob1(0), s.prob1(1))
	}
	// Measuring one qubit must collapse the other to the same value.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		c := s.clone()
		a := c.measure(0, rng)
		b := c.measure(1, rng)
		if a != b {
			t.Fatal("bell measurement must correlate")
		}
	}
}

func TestSwapGate(t *testing.T) {
	s := newState(2)
	s.apply1q(pauliX, 0)
	s.applySWAP(0, 1)
	if s.prob1(0) > 1e-12 || math.Abs(s.prob1(1)-1) > 1e-12 {
		t.Fatalf("swap: p = %v %v", s.prob1(0), s.prob1(1))
	}
}

func TestCZPhase(t *testing.T) {
	// CZ on |11> flips sign; verify via interference: H X basis trick.
	s := newState(2)
	s.apply1q(pauliX, 0)
	s.apply1q(pauliX, 1)
	s.applyCZ(0, 1)
	if math.Abs(real(s.amps[3])+1) > 1e-12 {
		t.Fatalf("cz |11> amp = %v, want -1", s.amps[3])
	}
}

func TestGateMatrixUnitarity(t *testing.T) {
	gates := []circuit.Gate{
		{Name: circuit.GateH}, {Name: circuit.GateX}, {Name: circuit.GateY},
		{Name: circuit.GateZ}, {Name: circuit.GateS}, {Name: circuit.GateSdg},
		{Name: circuit.GateT}, {Name: circuit.GateTdg},
		{Name: circuit.GateRX, Params: []float64{0.7}},
		{Name: circuit.GateRY, Params: []float64{1.1}},
		{Name: circuit.GateRZ, Params: []float64{2.2}},
		{Name: circuit.GateU1, Params: []float64{0.4}},
		{Name: circuit.GateU2, Params: []float64{0.3, 0.9}},
		{Name: circuit.GateU3, Params: []float64{1.0, 0.2, 0.5}},
	}
	for _, g := range gates {
		m, err := gateMatrix(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		// m * m^dagger = I
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				sum := complex(0, 0)
				for k := 0; k < 2; k++ {
					a := m[i][k]
					b := m[j][k]
					sum += a * complex(real(b), -imag(b))
				}
				want := complex(0, 0)
				if i == j {
					want = 1
				}
				if math.Abs(real(sum-want)) > 1e-9 || math.Abs(imag(sum-want)) > 1e-9 {
					t.Fatalf("%s not unitary: (%d,%d) = %v", g.Name, i, j, sum)
				}
			}
		}
	}
	if _, err := gateMatrix(circuit.Gate{Name: "bogus"}); err == nil {
		t.Fatal("unknown gate must error")
	}
}

func TestNormPreservedUnderTrajectory(t *testing.T) {
	s := newState(3)
	rng := rand.New(rand.NewSource(9))
	h, _ := gateMatrix(circuit.Gate{Name: circuit.GateH})
	for i := 0; i < 50; i++ {
		s.apply1q(h, rng.Intn(3))
		s.applyCNOT(rng.Intn(3), (rng.Intn(2)+1+rng.Intn(3))%3)
		if rng.Float64() < 0.3 {
			s.injectPauli(rng.Intn(3), rng)
		}
		if rng.Float64() < 0.2 {
			s.decay(rng.Intn(3), rng)
		}
		norm := 0.0
		for _, a := range s.amps {
			norm += real(a)*real(a) + imag(a)*imag(a)
		}
		if math.Abs(norm-1) > 1e-9 {
			t.Fatalf("norm drifted to %v", norm)
		}
	}
}

func TestSimulateIdealBV(t *testing.T) {
	// BV with hidden string all-ones: data qubits read 1, ancilla 0.
	out, prob, err := SimulateIdeal(nisqbench.BernsteinVazirani(4))
	if err != nil {
		t.Fatal(err)
	}
	if out != "1110" {
		t.Fatalf("bv_n4 ideal = %q, want 1110", out)
	}
	if prob < 0.99 {
		t.Fatalf("bv_n4 modal prob = %v, want ~1", prob)
	}
}

func TestSimulateIdealToffoliFamily(t *testing.T) {
	cases := map[string]string{
		"toffoli_3": "111", // |110> -> target flips
		"fredkin_3": "101", // swap of (1,0) on targets
		"peres_3":   "101", // toffoli then cx(0,1): |111> -> |101>
	}
	for name, want := range cases {
		out, prob, err := SimulateIdeal(nisqbench.MustGet(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out != want {
			t.Fatalf("%s ideal = %q, want %q", name, out, want)
		}
		if prob < 0.99 {
			t.Fatalf("%s modal prob = %v", name, prob)
		}
	}
}

func TestSyntheticRevLibDeterministicOutput(t *testing.T) {
	// NCT circuits are permutations: modal probability must be ~1.
	for _, name := range []string{"3_17_13", "alu-v0_27", "4mod5-v1_22"} {
		_, prob, err := SimulateIdeal(nisqbench.MustGet(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prob < 0.99 {
			t.Fatalf("%s modal prob = %v, want ~1 (classical circuit)", name, prob)
		}
	}
}

// compile routes a pair of programs side by side on a linear chip.
func compilePair(t *testing.T, d *arch.Device, p1, p2 *circuit.Circuit, m1, m2 []int) (*router.Schedule, []*circuit.Circuit) {
	t.Helper()
	progs := []*circuit.Circuit{p1, p2}
	s, err := router.Route(d, progs, [][]int{m1, m2}, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return s, progs
}

func TestSimulateScheduleNoiselessIsPerfect(t *testing.T) {
	d := arch.IBMQ16(0)
	p := nisqbench.MustGet("bv_n3")
	s, err := router.RouteSingle(d, p, []int{0, 1, 2}, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out, err := SimulateSchedule(d, s, []*circuit.Circuit{p}, 50, 1, NoiseModel{})
	if err != nil {
		t.Fatal(err)
	}
	if out.PST[0] != 1.0 {
		t.Fatalf("noiseless PST = %v, want 1", out.PST[0])
	}
	if out.Correct[0] != "110" {
		t.Fatalf("correct = %q, want 110 (bv data=11, ancilla=0)", out.Correct[0])
	}
}

func TestSimulateScheduleNoiseLowersPST(t *testing.T) {
	d := arch.IBMQ16(0)
	p := nisqbench.MustGet("toffoli_3")
	s, err := router.RouteSingle(d, p, []int{0, 1, 2}, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := SimulateSchedule(d, s, []*circuit.Circuit{p}, 400, 1, DefaultNoise())
	if err != nil {
		t.Fatal(err)
	}
	if noisy.PST[0] >= 1.0 {
		t.Fatalf("noisy PST = %v, expected < 1", noisy.PST[0])
	}
	if noisy.PST[0] < 0.3 {
		t.Fatalf("noisy PST = %v, suspiciously low for a tiny circuit", noisy.PST[0])
	}
}

func TestSimulateScheduleTwoPrograms(t *testing.T) {
	d := arch.IBMQ16(0)
	p1 := nisqbench.MustGet("bv_n3")
	p2 := nisqbench.MustGet("bv_n3")
	s, progs := compilePair(t, d, p1, p2, []int{0, 1, 2}, []int{11, 12, 13})
	out, err := SimulateSchedule(d, s, progs, 300, 2, DefaultNoise())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PST) != 2 {
		t.Fatalf("PST entries = %d", len(out.PST))
	}
	for p, pst := range out.PST {
		if pst <= 0.2 || pst > 1 {
			t.Fatalf("program %d PST = %v out of plausible range", p, pst)
		}
	}
	if out.Correct[0] != "110" || out.Correct[1] != "110" {
		t.Fatalf("correct = %v", out.Correct)
	}
}

func TestWorseLinksLowerPST(t *testing.T) {
	good := arch.Linear(3, 0.005, 0.01)
	bad := arch.Linear(3, 0.10, 0.10)
	p := nisqbench.MustGet("bv_n3")
	run := func(d *arch.Device) float64 {
		s, err := router.RouteSingle(d, p, []int{0, 1, 2}, router.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		out, err := SimulateSchedule(d, s, []*circuit.Circuit{p}, 500, 3, DefaultNoise())
		if err != nil {
			t.Fatal(err)
		}
		return out.PST[0]
	}
	if gp, bp := run(good), run(bad); gp <= bp {
		t.Fatalf("good-chip PST %v <= bad-chip PST %v", gp, bp)
	}
}

func TestIdleDecoherencePenalizesWaiting(t *testing.T) {
	// A 1-gate program co-located with a deep program must lose PST
	// versus running with a shallow partner (its measurement waits).
	d := arch.Linear(6, 0.004, 0.01)
	short := circuit.New("short", 2)
	short.X(0).CX(0, 1).MeasureAll()
	deep := circuit.New("deep", 2)
	for i := 0; i < 120; i++ {
		deep.CX(0, 1)
	}
	deep.MeasureAll()
	shallow := circuit.New("shallow", 2)
	shallow.CX(0, 1).MeasureAll()

	noise := NoiseModel{Enabled: true, IdleErrPerLayer: 0.004, Readout: false}
	pstWith := func(partner *circuit.Circuit) float64 {
		s, progs := compilePair(t, d, short, partner, []int{0, 1}, []int{3, 4})
		out, err := SimulateSchedule(d, s, progs, 600, 4, noise)
		if err != nil {
			t.Fatal(err)
		}
		return out.PST[0]
	}
	deepPST, shallowPST := pstWith(deep), pstWith(shallow)
	if deepPST >= shallowPST {
		t.Fatalf("PST with deep partner %v >= with shallow partner %v; idle decoherence must hurt", deepPST, shallowPST)
	}
}

func TestSimulateScheduleErrors(t *testing.T) {
	d := arch.IBMQ16(0)
	p := nisqbench.MustGet("bv_n3")
	s, err := router.RouteSingle(d, p, []int{0, 1, 2}, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateSchedule(d, s, []*circuit.Circuit{p}, 0, 1, NoiseModel{}); err == nil {
		t.Fatal("zero trials must error")
	}
}

func TestSimulateIdealTooManyQubits(t *testing.T) {
	c := circuit.New("big", 30)
	if _, _, err := SimulateIdeal(c); err == nil {
		t.Fatal("30 qubits must exceed the statevector limit")
	}
}

func TestOutcomeAvgPST(t *testing.T) {
	o := &Outcome{PST: []float64{0.4, 0.6}}
	if got := o.AvgPST(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("avg = %v", got)
	}
	if (&Outcome{}).AvgPST() != 0 {
		t.Fatal("empty outcome avg must be 0")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	d := arch.IBMQ16(0)
	p := nisqbench.MustGet("bv_n4")
	s, err := router.RouteSingle(d, p, []int{0, 1, 2, 3}, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := SimulateSchedule(d, s, []*circuit.Circuit{p}, 200, 7, DefaultNoise())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateSchedule(d, s, []*circuit.Circuit{p}, 200, 7, DefaultNoise())
	if err != nil {
		t.Fatal(err)
	}
	if a.PST[0] != b.PST[0] {
		t.Fatalf("same seed gave %v vs %v", a.PST[0], b.PST[0])
	}
}

func TestBridgedScheduleSemanticsMatchSwapped(t *testing.T) {
	// The 4-CNOT bridge must implement exactly the same unitary as the
	// SWAP-based route: identical noiseless modal outcomes, PST 1.
	d := arch.Linear(3, 0.02, 0.02)
	p := circuit.New("p", 2)
	p.X(0).CX(0, 1).MeasureAll() // |1> control -> target flips

	swapOpts := router.DefaultOptions()
	bridgeOpts := router.DefaultOptions()
	bridgeOpts.UseBridge = true

	run := func(opts router.Options) (string, float64, int) {
		s, err := router.Route(d, []*circuit.Circuit{p}, [][]int{{0, 2}}, opts)
		if err != nil {
			t.Fatal(err)
		}
		out, err := SimulateSchedule(d, s, []*circuit.Circuit{p}, 50, 1, NoiseModel{})
		if err != nil {
			t.Fatal(err)
		}
		return out.Correct[0], out.PST[0], s.BridgeCount
	}
	swCorrect, swPST, swBridges := run(swapOpts)
	brCorrect, brPST, brBridges := run(bridgeOpts)
	if swBridges != 0 || brBridges != 1 {
		t.Fatalf("bridge counts = %d, %d", swBridges, brBridges)
	}
	if swPST != 1 || brPST != 1 {
		t.Fatalf("noiseless PSTs = %v, %v", swPST, brPST)
	}
	if swCorrect != brCorrect || brCorrect != "11" {
		t.Fatalf("outcomes differ: swap=%q bridge=%q (want 11)", swCorrect, brCorrect)
	}
}

func TestInterProgramBridgeRestoresOtherProgram(t *testing.T) {
	// Bridging through another program's qubit must leave that
	// program's state untouched (noiseless PST 1 for both).
	d := arch.Grid(2, 2, 0.02, 0.02)
	p1 := circuit.New("p1", 2)
	p1.X(0).CX(0, 1).MeasureAll()
	p2 := circuit.New("p2", 1)
	p2.X(0).Measure(0)
	opts := router.DefaultOptions()
	opts.UseBridge = true
	opts.InterProgram = true
	s, err := router.Route(d, []*circuit.Circuit{p1, p2}, [][]int{{0, 3}, {1}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	out, err := SimulateSchedule(d, s, []*circuit.Circuit{p1, p2}, 50, 2, NoiseModel{})
	if err != nil {
		t.Fatal(err)
	}
	if out.PST[0] != 1 || out.PST[1] != 1 {
		t.Fatalf("noiseless PSTs = %v", out.PST)
	}
	if out.Correct[0] != "11" || out.Correct[1] != "1" {
		t.Fatalf("outcomes = %v", out.Correct)
	}
}

func TestExtraBenchmarkIdealOutputs(t *testing.T) {
	cases := map[string]struct {
		want    string
		minProb float64
	}{
		"grover_n2": {"11", 0.99},   // Grover finds the marked state
		"dj_n4":     {"1110", 0.99}, // balanced oracle -> data all ones
		"adder_n4":  {"1101", 0.99}, // 1+1+0 = 0 carry 1 (a,b,sum,cout)
		"ghz_n4":    {"0000", 0.45}, // GHZ: 50/50 split; modal = zeros
		"wstate_n3": {"100", 0.30},  // W state: three equal outcomes
	}
	for name, tc := range cases {
		out, prob, err := SimulateIdeal(nisqbench.MustGet(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out != tc.want {
			t.Errorf("%s ideal = %q, want %q (prob %v)", name, out, tc.want, prob)
		}
		if prob < tc.minProb {
			t.Errorf("%s modal prob = %v, want >= %v", name, prob, tc.minProb)
		}
	}
}

func TestSerializeCrosstalkImprovesPSTUnderHeavyCrosstalk(t *testing.T) {
	// Two programs running parallel CNOTs on adjacent links; with a
	// large crosstalk factor, serializing must raise PST.
	d := arch.Linear(4, 0.015, 0.01)
	mk := func(name string) *circuit.Circuit {
		c := circuit.New(name, 2)
		c.X(0)
		for i := 0; i < 12; i++ {
			c.CX(0, 1)
		}
		// Odd CNOT count so the output is deterministic |11>.
		c.CX(0, 1)
		return c.MeasureAll()
	}
	progs := []*circuit.Circuit{mk("a"), mk("b")}
	s, err := router.Route(d, progs, [][]int{{0, 1}, {2, 3}}, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	base := NoiseModel{Enabled: true, CrosstalkFactor: 3.0, IdleErrPerLayer: 0.0001, Readout: false}
	serial := base
	serial.SerializeCrosstalk = true
	outBase, err := SimulateSchedule(d, s, progs, 800, 9, base)
	if err != nil {
		t.Fatal(err)
	}
	outSerial, err := SimulateSchedule(d, s, progs, 800, 9, serial)
	if err != nil {
		t.Fatal(err)
	}
	if outSerial.AvgPST() <= outBase.AvgPST() {
		t.Fatalf("serialized PST %v <= parallel PST %v under heavy crosstalk",
			outSerial.AvgPST(), outBase.AvgPST())
	}
}

func TestSerializeCrosstalkPreservesSemantics(t *testing.T) {
	// Zero calibration: with all stochastic channels at zero rate, the
	// only effect left is the relayering itself.
	d := arch.Linear(4, 0, 0)
	for q := range d.Gate1Err {
		d.Gate1Err[q] = 0
	}
	p1 := circuit.New("p1", 2)
	p1.X(0).CX(0, 1).MeasureAll()
	p2 := circuit.New("p2", 2)
	p2.H(0).CX(0, 1).CX(0, 1).H(0).X(1).MeasureAll()
	progs := []*circuit.Circuit{p1, p2}
	s, err := router.Route(d, progs, [][]int{{0, 1}, {2, 3}}, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	noise := NoiseModel{Enabled: true, SerializeCrosstalk: true}
	out, err := SimulateSchedule(d, s, progs, 60, 3, noise)
	if err != nil {
		t.Fatal(err)
	}
	// No stochastic channels are configured beyond serialization, so
	// the results must be perfect.
	if out.PST[0] != 1 || out.PST[1] != 1 {
		t.Fatalf("serialization changed semantics: PST %v", out.PST)
	}
	if out.Correct[0] != "11" || out.Correct[1] != "01" {
		t.Fatalf("outcomes = %v", out.Correct)
	}
}

func TestPSTMonotonicInGateError(t *testing.T) {
	// Fixing everything but the CNOT error rate, PST must fall as the
	// links get worse (deterministic seeds, wide spacing).
	p := nisqbench.MustGet("toffoli_3")
	prev := 1.1
	for _, cnotErr := range []float64{0.005, 0.03, 0.09} {
		d := arch.Linear(3, cnotErr, 0.01)
		s, err := router.RouteSingle(d, p, []int{0, 1, 2}, router.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		out, err := SimulateSchedule(d, s, []*circuit.Circuit{p}, 1200, 17, DefaultNoise())
		if err != nil {
			t.Fatal(err)
		}
		if out.PST[0] >= prev {
			t.Fatalf("PST %v at cnotErr %v did not fall below %v", out.PST[0], cnotErr, prev)
		}
		prev = out.PST[0]
	}
}

func TestPSTMonotonicInReadoutError(t *testing.T) {
	p := nisqbench.MustGet("bv_n3")
	prev := 1.1
	for _, roErr := range []float64{0.01, 0.06, 0.15} {
		d := arch.Linear(3, 0.01, roErr)
		s, err := router.RouteSingle(d, p, []int{0, 1, 2}, router.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		out, err := SimulateSchedule(d, s, []*circuit.Circuit{p}, 1200, 23, DefaultNoise())
		if err != nil {
			t.Fatal(err)
		}
		if out.PST[0] >= prev {
			t.Fatalf("PST %v at readout %v did not fall below %v", out.PST[0], roErr, prev)
		}
		prev = out.PST[0]
	}
}
