package sim

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/pool"
	"repro/internal/router"
)

// SimulateScheduleClifford estimates per-program PSTs like
// SimulateSchedule, but with the stabilizer tableau backend: it handles
// any number of active qubits (50-qubit chips included) as long as
// every gate in the schedule is Clifford. The reference outcome is the
// noiseless run with random measurement outcomes resolved to 0,
// matching the statevector engine's lowest-index modal convention.
//
// Trials run sharded over the default worker pool; results are
// identical at every worker count (see SimulateScheduleWorkers).
func SimulateScheduleClifford(d *arch.Device, sched *router.Schedule, progs []*circuit.Circuit, trials int, seed int64, noise NoiseModel) (*Outcome, error) {
	return SimulateScheduleCliffordWorkers(d, sched, progs, trials, seed, noise, 0)
}

// SimulateScheduleCliffordWorkers is SimulateScheduleClifford with an
// explicit worker count (0 selects pool.Default(), 1 forces sequential
// execution) and the same shard-per-RNG determinism contract as
// SimulateScheduleWorkers.
func SimulateScheduleCliffordWorkers(d *arch.Device, sched *router.Schedule, progs []*circuit.Circuit, trials int, seed int64, noise NoiseModel, workers int) (*Outcome, error) {
	return SimulateScheduleCliffordCtx(context.Background(), d, sched, progs, trials, seed, noise, workers)
}

// SimulateScheduleCliffordCtx is SimulateScheduleCliffordWorkers with a
// caller-supplied context, checked at shard boundaries like
// SimulateScheduleCtx.
func SimulateScheduleCliffordCtx(ctx context.Context, d *arch.Device, sched *router.Schedule, progs []*circuit.Circuit, trials int, seed int64, noise NoiseModel, workers int) (*Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if trials <= 0 {
		return nil, fmt.Errorf("sim: trials must be positive, got %d", trials)
	}
	lay := layerize(sched)
	if noise.Enabled && noise.SerializeCrosstalk {
		lay = serializeCrosstalk(d, lay)
	}
	// Lowering validates the gate set: any non-Clifford gate fails here,
	// before the reference run (see hotpath.go).
	cp, err := compileLayers(d, lay, noise, engineTableau)
	if err != nil {
		return nil, err
	}
	measOf := make([][]router.Measurement, len(progs))
	for _, m := range lay.measures {
		if m.Program < 0 || m.Program >= len(progs) {
			return nil, fmt.Errorf("sim: measurement for unknown program %d", m.Program)
		}
		measOf[m.Program] = append(measOf[m.Program], m)
	}
	// Global deterministic measurement order: program, then logical.
	var order []router.Measurement
	for p := range measOf {
		ms := measOf[p]
		for i := 0; i < len(ms); i++ {
			min := i
			for j := i + 1; j < len(ms); j++ {
				if ms[j].Logical < ms[min].Logical {
					min = j
				}
			}
			ms[i], ms[min] = ms[min], ms[i]
		}
		order = append(order, ms...)
	}

	// Reference: noiseless run, random outcomes resolved to 0. The
	// compiled gate sequence is identical to the noisy one; only the
	// draw thresholds differ, and a noiseless run never reads them.
	ref := newPtab(cp.nq)
	cp.runTableauNoiseless(ref)
	pickZero := func() bool { return false }
	// The measurement plan flattens the (program, logical)-ordered
	// measurement list with each point's trial-invariant inputs resolved,
	// replacing the per-trial map lookups of the legacy path.
	plan := make([]struct {
		prog    int
		compact int
		readout float64
		correct int
	}, len(order))
	correct := make([]string, len(progs))
	bufs := make([][]byte, len(progs))
	for p := range progs {
		bufs[p] = make([]byte, 0, len(measOf[p]))
	}
	for i, m := range order {
		b := ref.measure(lay.compact[m.Phys], pickZero)
		plan[i].prog = m.Program
		plan[i].compact = lay.compact[m.Phys]
		plan[i].readout = d.ReadoutErr[m.Phys]
		plan[i].correct = b
		bufs[m.Program] = append(bufs[m.Program], byte('0'+b))
	}
	for p := range progs {
		correct[p] = string(bufs[p])
	}
	doReadout := noise.Enabled && noise.Readout

	shards := numShards(trials)
	workers = shardWorkers(workers, trials, cp.trialWork)
	perShard := make([][]int, shards)
	ferr := pool.ForEach(ctx, shards, workers, func(s int) error {
		rng := rand.New(rand.NewSource(shardSeed(seed, s)))
		lo, hi := shardRange(s, trials)
		succ := make([]int, len(progs))
		tb := newPtab(cp.nq)
		pick := func() bool { return rng.Intn(2) == 1 }
		ok := make([]bool, len(progs))
		for trial := lo; trial < hi; trial++ {
			tb.reset()
			cp.runTableau(tb, rng)
			for p := range ok {
				ok[p] = true
			}
			for i := range plan {
				mp := &plan[i]
				b := tb.measure(mp.compact, pick)
				if doReadout && rng.Float64() < mp.readout {
					b ^= 1
				}
				if b != mp.correct {
					ok[mp.prog] = false
				}
			}
			for p := range progs {
				if ok[p] {
					succ[p]++
				}
			}
		}
		perShard[s] = succ
		return nil
	})
	if ferr != nil {
		return nil, ferr
	}
	succ := make([]int, len(progs))
	for s := 0; s < shards; s++ {
		for p, v := range perShard[s] {
			succ[p] += v
		}
	}
	out := &Outcome{PST: make([]float64, len(progs)), Correct: correct, Trials: trials}
	for p := range progs {
		out.PST[p] = float64(succ[p]) / float64(trials)
	}
	return out, nil
}

// CliffordOutcome computes a logical Clifford circuit's noiseless
// reference bitstring without any device or routing: all non-measure
// gates run on a stabilizer tableau in program order, then every
// measured qubit is read in ascending qubit order with random outcomes
// resolved to 0 — the same convention SimulateScheduleClifford uses for
// its reference run. Property tests compare it against routed
// schedules' Correct strings; that comparison assumes the circuit's
// measurements are terminal (e.g. MeasureAll), matching the router's
// measure-deferral semantics.
func CliffordOutcome(c *circuit.Circuit) (string, error) {
	// Packed tableau by default: the boolean tableau survives only as
	// the property-test cross-check (TestPackedMatchesBooleanTableau).
	tb := newPtab(c.NumQubits)
	measured := make([]bool, c.NumQubits)
	ident := func(q int) int { return q }
	for _, g := range c.Gates {
		switch {
		case g.IsMeasure():
			measured[g.Qubits[0]] = true
		case g.IsBarrier():
			// no-op
		default:
			if err := tb.applyCliffordGate(g, ident); err != nil {
				return "", err
			}
		}
	}
	var buf []byte
	for q := 0; q < c.NumQubits; q++ {
		if !measured[q] {
			continue
		}
		b := tb.measure(q, func() bool { return false })
		buf = append(buf, byte('0'+b))
	}
	return string(buf), nil
}

// cliffordBackend is satisfied by both stabilizer implementations: the
// boolean reference tableau and the bit-packed ptab. The direct gate
// methods let the compiled hot path (hotpath.go) dispatch on a small op
// kind instead of re-resolving gate names per trial.
type cliffordBackend interface {
	applyCliffordGate(g circuit.Gate, qmap func(int) int) error
	injectPauliT(q int, rng *rand.Rand)
	decayT(q int, rng *rand.Rand)
	measure(q int, pick func() bool) int
	h(q int)
	s(q int)
	sdg(q int)
	xg(q int)
	yg(q int)
	zg(q int)
	cx(c, t int)
	cz(a, b int)
	swap(a, b int)
}

// runTrialT is runTrial over a stabilizer backend.
func runTrialT(tb cliffordBackend, d *arch.Device, lay *layered, noise NoiseModel, rng *rand.Rand) error {
	qmapOf := func(g circuit.Gate) func(int) int {
		return func(q int) int { return lay.compact[q] }
	}
	for _, layer := range lay.layers {
		cnotEdges := layer2qEdges(d, layer, noise)
		busy := map[int]bool{}
		for _, op := range layer {
			g := op.Gate
			if g.IsMeasure() || g.IsBarrier() {
				continue
			}
			for _, q := range g.Qubits {
				busy[q] = true
			}
			if err := tb.applyCliffordGate(g, qmapOf(g)); err != nil {
				return err
			}
			if !noise.Enabled {
				continue
			}
			switch {
			case g.Name == circuit.GateSWAP:
				errRate := effective2qErr(d, noise, cnotEdges, g.Qubits[0], g.Qubits[1])
				for k := 0; k < 3; k++ {
					if rng.Float64() < errRate {
						tb.injectPauliT(pick2(lay.compact[g.Qubits[0]], lay.compact[g.Qubits[1]], rng), rng)
					}
				}
			case g.IsTwoQubit():
				errRate := effective2qErr(d, noise, cnotEdges, g.Qubits[0], g.Qubits[1])
				if rng.Float64() < errRate {
					tb.injectPauliT(pick2(lay.compact[g.Qubits[0]], lay.compact[g.Qubits[1]], rng), rng)
				}
			default:
				if rng.Float64() < d.Gate1Err[g.Qubits[0]] {
					tb.injectPauliT(lay.compact[g.Qubits[0]], rng)
				}
			}
		}
		if noise.Enabled && noise.IdleErrPerLayer > 0 {
			for _, q := range lay.active {
				if !busy[q] && rng.Float64() < noise.IdleErrPerLayer {
					tb.decayT(lay.compact[q], rng)
				}
			}
		}
	}
	return nil
}
