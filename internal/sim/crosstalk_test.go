package sim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/fp"
	"repro/internal/graph"
	"repro/internal/router"
)

// --- scalar-model adjacency on hand-built layers (satellite audit) ---

// TestCrosstalkAdjacentSelfSkip pins the self-adjacency rule the audit
// targeted: a link never counts as its own aggressor, in either
// orientation, while genuinely adjacent links do.
func TestCrosstalkAdjacentSelfSkip(t *testing.T) {
	d := arch.IBMQ16(0)
	self := graph.NewEdge(0, 1)
	cases := []struct {
		name  string
		edges []graph.Edge
		want  bool
	}{
		{"alone", []graph.Edge{self}, false},
		{"alone reversed orientation", []graph.Edge{{U: 1, V: 0}}, false},
		{"duplicate of itself", []graph.Edge{self, self, {U: 1, V: 0}}, false},
		{"shared-qubit neighbor", []graph.Edge{self, graph.NewEdge(1, 2)}, true},
		{"coupled neighbor", []graph.Edge{self, graph.NewEdge(2, 3)}, true},
		{"distant link", []graph.Edge{self, graph.NewEdge(7, 8)}, false},
	}
	for _, tc := range cases {
		if got := crosstalkAdjacent(d, tc.edges, 0, 1); got != tc.want {
			t.Errorf("%s: crosstalkAdjacent = %v, want %v", tc.name, got, tc.want)
		}
		// Orientation of the victim must not matter either.
		if got := crosstalkAdjacent(d, tc.edges, 1, 0); got != tc.want {
			t.Errorf("%s (victim reversed): crosstalkAdjacent = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestEffective2qErrScalarModel checks the scalar fallback reproduces
// the legacy arithmetic exactly: base error, multiplied by
// 1+CrosstalkFactor only when an adjacent link co-fires.
func TestEffective2qErrScalarModel(t *testing.T) {
	d := arch.IBMQ16(0)
	noise := DefaultNoise()
	base := d.CNOTError(0, 1)
	//lint:ignore floateq fallback must be bit-identical to the legacy expression
	if got := effective2qErr(d, noise, nil, 0, 1); got != base {
		t.Errorf("no layer edges: got %v, want base %v", got, base)
	}
	withAdj := effective2qErr(d, noise, []graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(2, 3)}, 0, 1)
	//lint:ignore floateq same expression, same bits
	if withAdj != base*(1+noise.CrosstalkFactor) {
		t.Errorf("adjacent co-fire: got %v, want %v", withAdj, base*(1+noise.CrosstalkFactor))
	}
	noise.CrosstalkFactor = 0
	//lint:ignore floateq zero factor disables the multiplier exactly
	if got := effective2qErr(d, noise, []graph.Edge{graph.NewEdge(2, 3)}, 0, 1); got != base {
		t.Errorf("zero factor: got %v, want base %v", got, base)
	}
}

// TestEffective2qErrMatrixSupersedesScalar checks the matrix path: the
// characterized conditional error replaces the base rate outright and
// the scalar factor is ignored, including for uncharacterized pairs.
func TestEffective2qErrMatrixSupersedesScalar(t *testing.T) {
	d := arch.IBMQ16(0)
	v, a := graph.NewEdge(0, 1), graph.NewEdge(2, 3)
	base := d.CNOTError(0, 1)
	cond := base * 3
	d.Crosstalk = arch.CrosstalkMatrix{arch.EdgePair{Victim: v, Aggressor: a}: cond}
	noise := DefaultNoise() // scalar factor 0.3 must be ignored
	//lint:ignore floateq matrix lookup returns the stored value exactly
	if got := effective2qErr(d, noise, []graph.Edge{v, a}, 0, 1); got != cond {
		t.Errorf("characterized pair: got %v, want conditional %v", got, cond)
	}
	// Reversed orientations key the same entry.
	//lint:ignore floateq matrix lookup returns the stored value exactly
	if got := effective2qErr(d, noise, []graph.Edge{{U: 3, V: 2}}, 1, 0); got != cond {
		t.Errorf("reversed orientations: got %v, want %v", got, cond)
	}
	// Uncharacterized co-fire: base error, NOT base*(1+factor).
	//lint:ignore floateq benign pairs charge exactly the base rate
	if got := effective2qErr(d, noise, []graph.Edge{graph.NewEdge(5, 6)}, 0, 1); got != base {
		t.Errorf("uncharacterized pair: got %v, want base %v", got, base)
	}
	// The victim alone in the layer (any orientation): base error.
	//lint:ignore floateq a link is not its own aggressor
	if got := effective2qErr(d, noise, []graph.Edge{{U: 1, V: 0}}, 0, 1); got != base {
		t.Errorf("self only: got %v, want base %v", got, base)
	}
}

// TestLayer2qEdgesGating checks the per-layer edge scan runs exactly
// when some crosstalk model needs it — in particular that a pairwise
// matrix activates it even with the scalar factor disabled.
func TestLayer2qEdgesGating(t *testing.T) {
	d := arch.IBMQ16(0)
	layer := []router.Op{
		{Program: 0, Gate: circuit.NewGate(circuit.GateCX, 0, 1)},
		{Program: 0, Gate: circuit.NewGate(circuit.GateH, 2)},
		{Program: 1, Gate: circuit.NewGate(circuit.GateSWAP, 5, 6), IsSwap: true},
	}
	want := []graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(5, 6)}
	if got := layer2qEdges(d, layer, DefaultNoise()); !reflect.DeepEqual(got, want) {
		t.Errorf("scalar model: got %v, want %v", got, want)
	}
	off := DefaultNoise()
	off.Enabled = false
	if got := layer2qEdges(d, layer, off); got != nil {
		t.Errorf("noise disabled: got %v, want nil", got)
	}
	noFactor := DefaultNoise()
	noFactor.CrosstalkFactor = 0
	if got := layer2qEdges(d, layer, noFactor); got != nil {
		t.Errorf("no crosstalk model: got %v, want nil", got)
	}
	d.Crosstalk = arch.GenerateCrosstalk(d, 1)
	if got := layer2qEdges(d, layer, noFactor); !reflect.DeepEqual(got, want) {
		t.Errorf("matrix with zero factor: got %v, want %v", got, want)
	}
}

// --- engine agreement with a matrix installed ---

// matrixDevice16 is IBMQ16 with an adversarial pairwise matrix.
func matrixDevice16(tb testing.TB, seed int64) *arch.Device {
	tb.Helper()
	d := arch.IBMQ16(0)
	d.Crosstalk = arch.GenerateHostileCrosstalk(d, seed, 0.3, 3, 5)
	if err := d.Validate(); err != nil {
		tb.Fatal(err)
	}
	return d
}

// TestCompiledMatchesLegacyWithMatrix extends the compiled-vs-legacy
// contract to matrix-carrying devices: both engines must stay
// bit-identical between the interpreter and the hot path when the
// pairwise conditional errors are in play.
func TestCompiledMatchesLegacyWithMatrix(t *testing.T) {
	d := matrixDevice16(t, 11)
	progs := []*circuit.Circuit{
		circuit.New("a", 2).H(0).CX(0, 1).MeasureAll(),
		circuit.New("b", 2).X(0).CX(0, 1).MeasureAll(),
	}
	s, err := router.Route(d, progs, [][]int{{0, 1}, {2, 3}}, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	noise := DefaultNoise()
	lay, cp := compiledLay(t, d, s, noise, engineStatevector)
	for seed := int64(0); seed < 5; seed++ {
		rngA, rngB := rand.New(rand.NewSource(seed)), rand.New(rand.NewSource(seed))
		stA := newState(len(lay.active))
		if err := runTrial(stA, d, lay, noise, rngA); err != nil {
			t.Fatal(err)
		}
		stB := newState(cp.nq)
		cp.runStatevector(stB, rngB)
		if !reflect.DeepEqual(stA.amps, stB.amps) {
			t.Fatalf("seed=%d: compiled statevector diverges from legacy under matrix", seed)
		}
		if rngA.Int63() != rngB.Int63() {
			t.Fatalf("seed=%d: draw counts diverge under matrix", seed)
		}
	}
	layT, cpT := compiledLay(t, d, s, noise, engineTableau)
	for seed := int64(0); seed < 5; seed++ {
		rngA, rngB := rand.New(rand.NewSource(seed)), rand.New(rand.NewSource(seed))
		tbA := newPtab(len(layT.active))
		if err := runTrialT(tbA, d, layT, noise, rngA); err != nil {
			t.Fatal(err)
		}
		tbB := newPtab(cpT.nq)
		cpT.runTableau(tbB, rngB)
		if !reflect.DeepEqual(tbA.xbits, tbB.xbits) || !reflect.DeepEqual(tbA.zbits, tbB.zbits) || !reflect.DeepEqual(tbA.r, tbB.r) {
			t.Fatalf("seed=%d: compiled tableau diverges from legacy under matrix", seed)
		}
		if rngA.Int63() != rngB.Int63() {
			t.Fatalf("seed=%d: tableau draw counts diverge under matrix", seed)
		}
	}
}

// TestMatrixCrosstalkLowersPST: co-firing on a hostile pair must cost
// fidelity versus the same device with the hostility removed.
func TestMatrixCrosstalkLowersPST(t *testing.T) {
	d := arch.IBMQ16(0)
	v, a := graph.NewEdge(0, 1), graph.NewEdge(2, 3)
	progs := []*circuit.Circuit{
		circuit.New("v", 2).CX(0, 1).CX(0, 1).CX(0, 1).CX(0, 1).MeasureAll(),
		circuit.New("a", 2).CX(0, 1).CX(0, 1).CX(0, 1).CX(0, 1).MeasureAll(),
	}
	s, err := router.Route(d, progs, [][]int{{v.U, v.V}, {a.U, a.V}}, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	noise := DefaultNoise()
	noise.CrosstalkFactor = 0 // isolate the matrix's effect
	run := func(m arch.CrosstalkMatrix) float64 {
		d.Crosstalk = m
		out, err := SimulateSchedule(d, s, progs, 3000, 7, noise)
		if err != nil {
			t.Fatal(err)
		}
		return out.PST[0]
	}
	hostile := run(arch.CrosstalkMatrix{
		arch.EdgePair{Victim: v, Aggressor: a}: 0.5,
		arch.EdgePair{Victim: a, Aggressor: v}: 0.5,
	})
	benign := run(nil)
	if hostile >= benign {
		t.Errorf("hostile matrix PST %v >= matrix-free PST %v", hostile, benign)
	}
	if benign-hostile < 0.2 {
		t.Errorf("hostility barely visible: %v vs %v", hostile, benign)
	}
}

// --- analytic ESP with a matrix (differential vs Monte-Carlo) ---

// TestAnalyticESPMatrixDifferential is the satellite differential test:
// on a small CX circuit pair placed on a hostile link pair, the
// analytic ESP computed with the matrix must track the Monte-Carlo PST
// computed with the same matrix — same ordering versus the benign
// placement, and the same ballpark magnitude (MC sees error
// cancellation and sub-unit Pauli visibility that the closed form
// ignores, so the bound is loose; exact agreement is asserted where it
// must hold: the matrix-free fallback).
func TestAnalyticESPMatrixDifferential(t *testing.T) {
	d := arch.IBMQ16(0)
	v, a := graph.NewEdge(0, 1), graph.NewEdge(2, 3)
	progs := []*circuit.Circuit{
		circuit.New("v", 2).CX(0, 1).CX(0, 1).MeasureAll(),
		circuit.New("a", 2).CX(0, 1).CX(0, 1).MeasureAll(),
	}
	s, err := router.Route(d, progs, [][]int{{v.U, v.V}, {a.U, a.V}}, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	noise := DefaultNoise()
	noise.CrosstalkFactor = 0
	noise.IdleErrPerLayer = 0

	// Matrix-free fallback: installing no matrix must leave the ESP
	// bit-identical to the pre-matrix closed form.
	espFree, err := AnalyticESP(d, s, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.Crosstalk = arch.CrosstalkMatrix{
		arch.EdgePair{Victim: v, Aggressor: a}: 0.2,
		arch.EdgePair{Victim: a, Aggressor: v}: 0.2,
	}
	espMat, err := AnalyticESP(d, s, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if espMat.PerProgram[0] >= espFree.PerProgram[0] {
		t.Fatalf("matrix did not lower ESP: %v vs %v", espMat.PerProgram[0], espFree.PerProgram[0])
	}

	out, err := SimulateSchedule(d, s, progs, 4000, 3, noise)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		if math.Abs(espMat.PerProgram[p]-out.PST[p]) > 0.15 {
			t.Errorf("program %d: matrix ESP %v far from matrix MC PST %v",
				p, espMat.PerProgram[p], out.PST[p])
		}
	}

	// Per-layer accounting sanity: each program runs 2 CNOTs that all
	// co-fire with the hostile neighbor, so the conditional error is
	// charged to every one of them. Expected gate factor: (1-0.2)^2
	// on top of readout; verify against the breakdown.
	for p := 0; p < 2; p++ {
		want := (1 - 0.2) * (1 - 0.2)
		if !fp.Eq(espMat.GateFactor[p], want) {
			t.Errorf("program %d: gate factor %v, want %v", p, espMat.GateFactor[p], want)
		}
	}
}
