// Package sim estimates the fidelity (PST) of compiled schedules by
// Monte-Carlo statevector simulation over the active physical qubits.
// The noise model composes the same error channels the mapper optimizes
// against: per-gate stochastic Pauli errors drawn from the device
// calibration, per-qubit readout flips, idle-layer decoherence (the
// coherence-error channel that penalizes short programs co-located with
// long ones, §III-C), and a crosstalk penalty for simultaneous CNOTs on
// adjacent links. It stands in for the paper's 8024-trial executions on
// real IBMQ16 hardware.
package sim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/fp"
)

// state is a dense statevector over n qubits (amplitude index bit i is
// qubit i's value).
type state struct {
	n    int
	amps []complex128
}

func newState(n int) *state {
	if n < 0 || n > 26 {
		panic(fmt.Sprintf("sim: unsupported qubit count %d", n))
	}
	s := &state{n: n, amps: make([]complex128, 1<<uint(n))}
	s.amps[0] = 1
	return s
}

// reset returns the state to |0...0> in place, so per-shard trial loops
// reuse one amplitude buffer instead of allocating 2^n complex128s per
// trial (the dominant allocation of the legacy hot path).
func (s *state) reset() {
	clear(s.amps)
	s.amps[0] = 1
}

func (s *state) clone() *state {
	c := &state{n: s.n, amps: make([]complex128, len(s.amps))}
	copy(c.amps, s.amps)
	return c
}

// apply1q applies the 2x2 unitary m to qubit q.
func (s *state) apply1q(m [2][2]complex128, q int) {
	bit := 1 << uint(q)
	for i := 0; i < len(s.amps); i++ {
		if i&bit == 0 {
			a0, a1 := s.amps[i], s.amps[i|bit]
			s.amps[i] = m[0][0]*a0 + m[0][1]*a1
			s.amps[i|bit] = m[1][0]*a0 + m[1][1]*a1
		}
	}
}

// applyCNOT applies a controlled-X with the given control and target.
func (s *state) applyCNOT(c, t int) {
	cb, tb := 1<<uint(c), 1<<uint(t)
	for i := 0; i < len(s.amps); i++ {
		if i&cb != 0 && i&tb == 0 {
			s.amps[i], s.amps[i|tb] = s.amps[i|tb], s.amps[i]
		}
	}
}

// applyCZ applies a controlled-Z between a and b.
func (s *state) applyCZ(a, b int) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	for i := 0; i < len(s.amps); i++ {
		if i&ab != 0 && i&bb != 0 {
			s.amps[i] = -s.amps[i]
		}
	}
}

// applySWAP exchanges qubits a and b.
func (s *state) applySWAP(a, b int) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	for i := 0; i < len(s.amps); i++ {
		if i&ab != 0 && i&bb == 0 {
			j := i&^ab | bb
			s.amps[i], s.amps[j] = s.amps[j], s.amps[i]
		}
	}
}

// prob1 returns the probability that qubit q measures 1.
func (s *state) prob1(q int) float64 {
	bit := 1 << uint(q)
	p := 0.0
	for i, a := range s.amps {
		if i&bit != 0 {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p
}

// measure projectively measures qubit q, collapsing the state, and
// returns the outcome bit.
func (s *state) measure(q int, rng *rand.Rand) int {
	p1 := s.prob1(q)
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	s.project(q, outcome)
	return outcome
}

// project collapses qubit q onto the given outcome and renormalizes.
func (s *state) project(q, outcome int) {
	bit := 1 << uint(q)
	norm := 0.0
	for i := range s.amps {
		if (i&bit != 0) == (outcome == 1) {
			norm += real(s.amps[i])*real(s.amps[i]) + imag(s.amps[i])*imag(s.amps[i])
		} else {
			s.amps[i] = 0
		}
	}
	if fp.Zero(norm) {
		// Numerically impossible branch; reset to the projected basis
		// state to stay total.
		s.amps[0] = 0
		idx := 0
		if outcome == 1 {
			idx = bit
		}
		s.amps[idx] = 1
		return
	}
	scale := complex(1/math.Sqrt(norm), 0)
	for i := range s.amps {
		s.amps[i] *= scale
	}
}

// modal returns the basis index with the highest probability (lowest
// index wins ties within 1e-12).
func (s *state) modal() int {
	best, bestP := 0, -1.0
	for i, a := range s.amps {
		p := real(a)*real(a) + imag(a)*imag(a)
		if p > bestP+1e-12 {
			best, bestP = i, p
		}
	}
	return best
}

// gateMatrix returns the 2x2 unitary of a named single-qubit gate.
func gateMatrix(g circuit.Gate) ([2][2]complex128, error) {
	i := complex(0, 1)
	s2 := complex(1/math.Sqrt2, 0)
	p := func(k int) float64 {
		if k < len(g.Params) {
			return g.Params[k]
		}
		return 0
	}
	switch g.Name {
	case circuit.GateH:
		return [2][2]complex128{{s2, s2}, {s2, -s2}}, nil
	case circuit.GateX:
		return [2][2]complex128{{0, 1}, {1, 0}}, nil
	case circuit.GateY:
		return [2][2]complex128{{0, -i}, {i, 0}}, nil
	case circuit.GateZ:
		return [2][2]complex128{{1, 0}, {0, -1}}, nil
	case circuit.GateS:
		return [2][2]complex128{{1, 0}, {0, i}}, nil
	case circuit.GateSdg:
		return [2][2]complex128{{1, 0}, {0, -i}}, nil
	case circuit.GateT:
		return [2][2]complex128{{1, 0}, {0, cmplx.Exp(i * math.Pi / 4)}}, nil
	case circuit.GateTdg:
		return [2][2]complex128{{1, 0}, {0, cmplx.Exp(-i * math.Pi / 4)}}, nil
	case circuit.GateRX:
		th := p(0) / 2
		c, s := complex(math.Cos(th), 0), complex(math.Sin(th), 0)
		return [2][2]complex128{{c, -i * s}, {-i * s, c}}, nil
	case circuit.GateRY:
		th := p(0) / 2
		c, s := complex(math.Cos(th), 0), complex(math.Sin(th), 0)
		return [2][2]complex128{{c, -s}, {s, c}}, nil
	case circuit.GateRZ, circuit.GateU1:
		return [2][2]complex128{{cmplx.Exp(-i * complex(p(0)/2, 0)), 0}, {0, cmplx.Exp(i * complex(p(0)/2, 0))}}, nil
	case circuit.GateU2:
		phi, lam := complex(p(0), 0), complex(p(1), 0)
		return [2][2]complex128{
			{s2, -s2 * cmplx.Exp(i*lam)},
			{s2 * cmplx.Exp(i*phi), s2 * cmplx.Exp(i*(phi+lam))},
		}, nil
	case circuit.GateU3:
		th, phi, lam := p(0)/2, complex(p(1), 0), complex(p(2), 0)
		c, s := complex(math.Cos(th), 0), complex(math.Sin(th), 0)
		return [2][2]complex128{
			{c, -s * cmplx.Exp(i*lam)},
			{s * cmplx.Exp(i*phi), c * cmplx.Exp(i*(phi+lam))},
		}, nil
	}
	return [2][2]complex128{}, fmt.Errorf("sim: no matrix for gate %q", g.Name)
}

var pauliX = [2][2]complex128{{0, 1}, {1, 0}}
var pauliY = [2][2]complex128{{0, complex(0, -1)}, {complex(0, 1), 0}}
var pauliZ = [2][2]complex128{{1, 0}, {0, -1}}

// injectPauli applies a uniformly random non-identity Pauli to qubit q.
func (s *state) injectPauli(q int, rng *rand.Rand) {
	switch rng.Intn(3) {
	case 0:
		s.apply1q(pauliX, q)
	case 1:
		s.apply1q(pauliY, q)
	default:
		s.apply1q(pauliZ, q)
	}
}

// decay applies one trajectory step of combined T1/T2 decoherence to
// qubit q: a projective Z-basis measurement (dephasing) followed by a
// conditional relaxation of |1> to |0>.
func (s *state) decay(q int, rng *rand.Rand) {
	if s.measure(q, rng) == 1 {
		s.apply1q(pauliX, q) // relax to |0>
	}
}
