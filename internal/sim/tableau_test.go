package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/nisqbench"
	"repro/internal/router"
)

func TestTableauBasics(t *testing.T) {
	tb := newTableau(2)
	zero := func() bool { return false }
	if tb.measure(0, zero) != 0 {
		t.Fatal("|0> must measure 0")
	}
	tb.xg(0)
	if tb.measure(0, zero) != 1 {
		t.Fatal("X|0> must measure 1")
	}
	tb.cx(0, 1)
	if tb.measure(1, zero) != 1 {
		t.Fatal("CNOT from |1> must flip target")
	}
}

func TestTableauBellCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ones := 0
	for trial := 0; trial < 200; trial++ {
		tb := newTableau(2)
		tb.h(0)
		tb.cx(0, 1)
		pick := func() bool { return rng.Intn(2) == 1 }
		a := tb.measure(0, pick)
		b := tb.measure(1, pick)
		if a != b {
			t.Fatal("bell pair must correlate")
		}
		ones += a
	}
	if ones < 60 || ones > 140 {
		t.Fatalf("bell outcomes biased: %d/200 ones", ones)
	}
}

func TestTableauPhaseGates(t *testing.T) {
	// HZH = X: |0> -> |1>.
	tb := newTableau(1)
	tb.h(0)
	tb.zg(0)
	tb.h(0)
	if tb.measure(0, func() bool { return false }) != 1 {
		t.Fatal("HZH must act as X")
	}
	// S^4 = I; HS S H on |0>: HS^2H = HZH = X.
	tb2 := newTableau(1)
	tb2.h(0)
	tb2.s(0)
	tb2.s(0)
	tb2.h(0)
	if tb2.measure(0, func() bool { return false }) != 1 {
		t.Fatal("H S S H must act as X")
	}
	// sdg then s cancels.
	tb3 := newTableau(1)
	tb3.h(0)
	tb3.sdg(0)
	tb3.s(0)
	tb3.h(0)
	if tb3.measure(0, func() bool { return false }) != 0 {
		t.Fatal("H Sdg S H must be identity")
	}
}

func TestTableauSwapAndCZ(t *testing.T) {
	tb := newTableau(2)
	tb.xg(0)
	tb.swap(0, 1)
	zero := func() bool { return false }
	if tb.measure(0, zero) != 0 || tb.measure(1, zero) != 1 {
		t.Fatal("swap must move the excitation")
	}
	// CZ in X basis: H(1) CZ H(1) == CNOT(0,1).
	tb2 := newTableau(2)
	tb2.xg(0)
	tb2.h(1)
	tb2.cz(0, 1)
	tb2.h(1)
	if tb2.measure(1, zero) != 1 {
		t.Fatal("H-CZ-H must act as CNOT")
	}
}

// TestTableauMatchesStatevector cross-validates the two backends on
// random Clifford circuits: deterministic measurement outcomes must
// agree exactly.
func TestTableauMatchesStatevector(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(2)
		c := circuit.New("cliff", n)
		for i := 0; i < 25; i++ {
			q := rng.Intn(n)
			switch rng.Intn(6) {
			case 0:
				c.H(q)
			case 1:
				c.S(q)
			case 2:
				c.X(q)
			case 3:
				c.Z(q)
			default:
				r := rng.Intn(n - 1)
				if r >= q {
					r++
				}
				c.CX(q, r)
			}
		}
		c.MeasureAll()
		// Statevector reference under the same greedy prefer-0
		// sequential-measurement rule the tableau uses (probability
		// argmax differs on entangled superpositions).
		st := newState(n)
		for _, g := range c.Gates {
			if g.IsMeasure() {
				continue
			}
			switch g.Name {
			case circuit.GateCX:
				st.applyCNOT(g.Qubits[0], g.Qubits[1])
			default:
				m, err := gateMatrix(g)
				if err != nil {
					return false
				}
				st.apply1q(m, g.Qubits[0])
			}
		}
		want := make([]byte, n)
		for q := 0; q < n; q++ {
			outcome := 0
			if st.prob1(q) > 1-1e-9 {
				outcome = 1
			}
			st.project(q, outcome)
			want[q] = byte('0' + outcome)
		}
		wantStr := string(want)
		// Tableau with prefer-0 resolution.
		tb := newTableau(n)
		for _, g := range c.Gates {
			if g.IsMeasure() {
				continue
			}
			if err := tb.applyCliffordGate(g, func(q int) int { return q }); err != nil {
				return false
			}
		}
		got := make([]byte, n)
		for q := 0; q < n; q++ {
			got[q] = byte('0' + tb.measure(q, func() bool { return false }))
		}
		return string(got) == wantStr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestIsClifford(t *testing.T) {
	if !IsClifford(nisqbench.MustGet("bv_n10")) {
		t.Fatal("BV is Clifford")
	}
	if !IsClifford(nisqbench.GHZ(8)) {
		t.Fatal("GHZ is Clifford")
	}
	if IsClifford(nisqbench.MustGet("toffoli_3")) {
		t.Fatal("decomposed Toffoli contains T gates")
	}
}

func TestSimulateScheduleCliffordNoiseless(t *testing.T) {
	d := arch.IBMQ16(0)
	p := nisqbench.MustGet("bv_n4")
	s, err := router.RouteSingle(d, p, []int{0, 1, 2, 3}, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out, err := SimulateScheduleClifford(d, s, []*circuit.Circuit{p}, 40, 1, NoiseModel{})
	if err != nil {
		t.Fatal(err)
	}
	if out.PST[0] != 1 {
		t.Fatalf("noiseless Clifford PST = %v", out.PST[0])
	}
	if out.Correct[0] != "1110" {
		t.Fatalf("correct = %q", out.Correct[0])
	}
}

func TestCliffordMatchesStatevectorPST(t *testing.T) {
	// The two backends must give statistically close noisy PSTs for
	// the same schedule and noise model.
	d := arch.IBMQ16(0)
	p := nisqbench.MustGet("bv_n4")
	s, err := router.RouteSingle(d, p, []int{0, 1, 2, 3}, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	noise := DefaultNoise()
	sv, err := SimulateSchedule(d, s, []*circuit.Circuit{p}, 1500, 3, noise)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := SimulateScheduleClifford(d, s, []*circuit.Circuit{p}, 1500, 3, noise)
	if err != nil {
		t.Fatal(err)
	}
	if diff := sv.PST[0] - cl.PST[0]; diff > 0.06 || diff < -0.06 {
		t.Fatalf("backends disagree: statevector %v vs tableau %v", sv.PST[0], cl.PST[0])
	}
}

func TestCliffordRejectsNonClifford(t *testing.T) {
	d := arch.IBMQ16(0)
	p := nisqbench.MustGet("toffoli_3")
	s, err := router.RouteSingle(d, p, []int{0, 1, 2}, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateScheduleClifford(d, s, []*circuit.Circuit{p}, 10, 1, NoiseModel{}); err == nil {
		t.Fatal("T gates must be rejected")
	}
}

func TestClifford50QubitWorkload(t *testing.T) {
	// The whole point: fidelity estimation on the 50-qubit chip.
	d := arch.IBMQ50(0)
	progs := []*circuit.Circuit{
		nisqbench.MustGet("bv_n10"),
		nisqbench.GHZ(8),
		nisqbench.BernsteinVazirani(6),
	}
	comp := newTestCompiler(d)
	initial, err := comp(progs)
	if err != nil {
		t.Fatal(err)
	}
	s, err := router.Route(d, progs, initial, router.XSWAPOptions())
	if err != nil {
		t.Fatal(err)
	}
	out, err := SimulateScheduleClifford(d, s, progs, 300, 5, DefaultNoise())
	if err != nil {
		t.Fatal(err)
	}
	for p, pst := range out.PST {
		if pst <= 0.01 || pst > 1 {
			t.Fatalf("program %d PST = %v", p, pst)
		}
	}
	// GHZ's reference must be all zeros (prefer-0 resolution).
	if out.Correct[1] != "00000000" {
		t.Fatalf("ghz reference = %q", out.Correct[1])
	}
}

// newTestCompiler avoids an import cycle with partition by allocating
// simple disjoint row regions on the 5x10 lattice.
func newTestCompiler(d *arch.Device) func([]*circuit.Circuit) ([][]int, error) {
	return func(progs []*circuit.Circuit) ([][]int, error) {
		next := 0
		out := make([][]int, len(progs))
		for i, p := range progs {
			m := make([]int, p.NumQubits)
			for l := range m {
				m[l] = next
				next++
			}
			out[i] = m
		}
		return out, nil
	}
}
