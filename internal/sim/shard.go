package sim

// Trial sharding for the parallel Monte-Carlo engines.
//
// Each simulation's trial budget is split into fixed-size shards and
// every shard owns a private *rand.Rand whose seed is a pure function of
// (caller seed, shard index). Shard s always covers the same trial
// range and always draws the same random stream, so per-shard success
// counts — and therefore the summed PSTs — are identical whether the
// shards run on one goroutine or sixteen. The reduction over shards
// happens in shard-index order, keeping even float aggregation
// bit-stable (see DESIGN.md, "Shard-seed derivation").

// shardTrials is the number of Monte-Carlo trials per RNG shard. It is
// a determinism constant, not a tuning knob: changing it changes which
// RNG stream each trial draws from and hence every simulated PST.
const shardTrials = 512

// shardSeed derives shard s's RNG seed from the caller's seed with a
// splitmix64-style finalizer, so neighboring (seed, shard) pairs map to
// decorrelated streams. The +2 offset keeps shard 0 off the raw seed
// (which seeds the noiseless reference run).
func shardSeed(seed int64, shard int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(int64(shard)+2)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// numShards returns how many shards cover the trial budget.
func numShards(trials int) int {
	return (trials + shardTrials - 1) / shardTrials
}

// shardRange returns shard s's half-open trial range [lo, hi).
func shardRange(s, trials int) (lo, hi int) {
	lo = s * shardTrials
	hi = lo + shardTrials
	if hi > trials {
		hi = trials
	}
	return lo, hi
}
