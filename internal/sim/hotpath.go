package sim

// Trial-loop hot path: the Monte-Carlo engines execute the same layered
// schedule thousands of times, so everything that does not depend on
// the trial's random draws is resolved ONCE here — compact operand
// indices, per-op error rates with the crosstalk multiplier folded in,
// single-qubit gate matrices, per-layer idle-qubit lists — and the
// per-trial loop becomes a branch on a small op kind with zero map
// lookups and zero allocations. The legacy interpreters (runTrial,
// runTrialT) remain as the cross-validation reference; equivalence is
// enforced by TestCompiledTrialMatchesLegacy*.
//
// Determinism contract: a compiled program draws from the RNG in
// exactly the same order, with exactly the same comparisons, as the
// legacy interpreter it replaces — byte-identical PSTs are a hard
// invariant (see DESIGN.md, "Hot-path memory discipline").

import (
	"fmt"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/circuit"
)

// engineKind selects which interpreter's semantics a compiled program
// bakes in. The two engines differ in two documented corners: the
// statevector path applies no crosstalk multiplier to CZ gates, and it
// counts barrier operands as busy for the idle-error channel while the
// tableau path does not.
type engineKind uint8

const (
	engineStatevector engineKind = iota
	engineTableau
)

// opKind is a compiled operation tag. Single-qubit gates compile to
// their named Clifford kind for the tableau engine and to op1Q (matrix
// apply) for the statevector engine.
type opKind uint8

const (
	op1Q opKind = iota
	opH
	opX
	opY
	opZ
	opS
	opSdg
	opCX
	opCZ
	opSWAP
)

// compiledOp is one gate with every trial-invariant input resolved:
// compact operand indices, the noise-draw threshold (crosstalk
// multiplier already applied), and the 1q unitary where relevant.
type compiledOp struct {
	kind opKind
	a, b int
	// err is the probability threshold for this op's Pauli-injection
	// draw(s); it is only read when the compiled noise model is enabled.
	err float64
	// m is the statevector 2x2 unitary for op1Q.
	m [2][2]complex128
}

// compiledLayer is one depth layer plus the compact indices of active
// qubits idle in it (in lay.active order — the idle-error draw order).
type compiledLayer struct {
	ops  []compiledOp
	idle []int
}

// compiledProgram is a layered schedule lowered for one engine.
type compiledProgram struct {
	layers []compiledLayer
	noise  NoiseModel
	nq     int // active qubit count
	// trialWork estimates one trial's cost (op count x per-op touch
	// cost) for the parallel-dispatch threshold.
	trialWork int64
}

// compileLayers lowers the layered schedule for the given engine. All
// gate-name resolution, crosstalk adjacency scans, busy-set and error
// arithmetic happen here, once, instead of once per trial.
func compileLayers(d *arch.Device, lay *layered, noise NoiseModel, engine engineKind) (*compiledProgram, error) {
	cp := &compiledProgram{noise: noise, nq: len(lay.active)}
	perOpCost := int64(1) << uint(min(len(lay.active), 30))
	if engine == engineTableau {
		words := (len(lay.active) + 63) / 64
		perOpCost = int64(2*len(lay.active)) * int64(words)
		if perOpCost == 0 {
			perOpCost = 1
		}
	}
	for _, layer := range lay.layers {
		cl := compiledLayer{}
		// Crosstalk is a property of the layer, not the trial: collect
		// the two-qubit links once and fold the scalar multiplier or the
		// pairwise conditional error into each op's compiled rate.
		layerEdges := layer2qEdges(d, layer, noise)
		busy := map[int]bool{}
		for _, op := range layer {
			g := op.Gate
			if g.IsMeasure() || g.IsBarrier() {
				// Barriers carry no compiled op; the statevector
				// interpreter counts their operands busy, the tableau
				// interpreter does not (mirrors runTrial vs runTrialT).
				if engine == engineStatevector {
					for _, q := range g.Qubits {
						busy[q] = true
					}
				}
				continue
			}
			for _, q := range g.Qubits {
				busy[q] = true
			}
			co := compiledOp{}
			switch g.Name {
			case circuit.GateSWAP:
				co.kind = opSWAP
				co.a, co.b = lay.compact[g.Qubits[0]], lay.compact[g.Qubits[1]]
				co.err = effective2qErr(d, noise, layerEdges, g.Qubits[0], g.Qubits[1])
			case circuit.GateCX:
				co.kind = opCX
				co.a, co.b = lay.compact[g.Qubits[0]], lay.compact[g.Qubits[1]]
				co.err = effective2qErr(d, noise, layerEdges, g.Qubits[0], g.Qubits[1])
			case circuit.GateCZ:
				co.kind = opCZ
				co.a, co.b = lay.compact[g.Qubits[0]], lay.compact[g.Qubits[1]]
				// The statevector interpreter charges CZ its base error
				// with no crosstalk (scalar or matrix); the tableau
				// interpreter treats CZ like any two-qubit gate.
				co.err = d.CNOTError(g.Qubits[0], g.Qubits[1])
				if engine == engineTableau {
					co.err = effective2qErr(d, noise, layerEdges, g.Qubits[0], g.Qubits[1])
				}
			default:
				co.a = lay.compact[g.Qubits[0]]
				co.err = d.Gate1Err[g.Qubits[0]]
				if engine == engineStatevector {
					m, err := gateMatrix(g)
					if err != nil {
						return nil, err
					}
					co.kind, co.m = op1Q, m
				} else {
					k, ok := cliffordKind(g.Name)
					if !ok {
						return nil, fmt.Errorf("sim: schedule contains non-Clifford gate %q", g.Name)
					}
					co.kind = k
				}
			}
			cl.ops = append(cl.ops, co)
		}
		for _, q := range lay.active {
			if !busy[q] {
				cl.idle = append(cl.idle, lay.compact[q])
			}
		}
		cp.trialWork += int64(len(cl.ops)+len(cl.idle)) * perOpCost
		cp.layers = append(cp.layers, cl)
	}
	return cp, nil
}

// measPoint is one measurement with its trial-invariant inputs
// resolved: the compact qubit index, the qubit's readout-error rate,
// and the reference run's correct bit.
type measPoint struct {
	compact int
	readout float64
	correct int
}

// cliffordKind maps a single-qubit Clifford gate name to its op kind.
func cliffordKind(name string) (opKind, bool) {
	switch name {
	case circuit.GateH:
		return opH, true
	case circuit.GateX:
		return opX, true
	case circuit.GateY:
		return opY, true
	case circuit.GateZ:
		return opZ, true
	case circuit.GateS:
		return opS, true
	case circuit.GateSdg:
		return opSdg, true
	}
	return 0, false
}

// runStatevector executes one noisy trial on st. The RNG draw sequence
// is identical to the legacy runTrial: per op one Float64 (three for
// SWAP) when noise is enabled, then Intn(2)+Intn(3) per injected Pauli,
// then one Float64 per idle active qubit per layer.
func (cp *compiledProgram) runStatevector(st *state, rng *rand.Rand) {
	noisy := cp.noise.Enabled
	idleErr := cp.noise.IdleErrPerLayer
	for li := range cp.layers {
		cl := &cp.layers[li]
		for oi := range cl.ops {
			op := &cl.ops[oi]
			switch op.kind {
			case opSWAP:
				st.applySWAP(op.a, op.b)
				if noisy {
					for k := 0; k < 3; k++ {
						if rng.Float64() < op.err {
							st.injectPauli(pick2(op.a, op.b, rng), rng)
						}
					}
				}
			case opCX:
				st.applyCNOT(op.a, op.b)
				if noisy && rng.Float64() < op.err {
					st.injectPauli(pick2(op.a, op.b, rng), rng)
				}
			case opCZ:
				st.applyCZ(op.a, op.b)
				if noisy && rng.Float64() < op.err {
					st.injectPauli(pick2(op.a, op.b, rng), rng)
				}
			default:
				st.apply1q(op.m, op.a)
				if noisy && rng.Float64() < op.err {
					st.injectPauli(op.a, rng)
				}
			}
		}
		if noisy && idleErr > 0 {
			for _, q := range cl.idle {
				if rng.Float64() < idleErr {
					st.decay(q, rng)
				}
			}
		}
	}
}

// runStatevectorNoiseless executes the gates only — the reference run.
// It draws nothing from any RNG (the legacy path's reference RNG was
// never consulted either).
func (cp *compiledProgram) runStatevectorNoiseless(st *state) {
	for li := range cp.layers {
		cl := &cp.layers[li]
		for oi := range cl.ops {
			op := &cl.ops[oi]
			switch op.kind {
			case opSWAP:
				st.applySWAP(op.a, op.b)
			case opCX:
				st.applyCNOT(op.a, op.b)
			case opCZ:
				st.applyCZ(op.a, op.b)
			default:
				st.apply1q(op.m, op.a)
			}
		}
	}
}

// runTableau executes one noisy trial on a stabilizer backend with the
// same draw sequence as the legacy runTrialT.
func (cp *compiledProgram) runTableau(tb cliffordBackend, rng *rand.Rand) {
	noisy := cp.noise.Enabled
	idleErr := cp.noise.IdleErrPerLayer
	for li := range cp.layers {
		cl := &cp.layers[li]
		for oi := range cl.ops {
			op := &cl.ops[oi]
			applyTableauOp(tb, op)
			if !noisy {
				continue
			}
			switch op.kind {
			case opSWAP:
				for k := 0; k < 3; k++ {
					if rng.Float64() < op.err {
						tb.injectPauliT(pick2(op.a, op.b, rng), rng)
					}
				}
			case opCX, opCZ:
				if rng.Float64() < op.err {
					tb.injectPauliT(pick2(op.a, op.b, rng), rng)
				}
			default:
				if rng.Float64() < op.err {
					tb.injectPauliT(op.a, rng)
				}
			}
		}
		if noisy && idleErr > 0 {
			for _, q := range cl.idle {
				if rng.Float64() < idleErr {
					tb.decayT(q, rng)
				}
			}
		}
	}
}

// runTableauNoiseless executes the gates only — the reference run.
func (cp *compiledProgram) runTableauNoiseless(tb cliffordBackend) {
	for li := range cp.layers {
		cl := &cp.layers[li]
		for oi := range cl.ops {
			applyTableauOp(tb, &cl.ops[oi])
		}
	}
}

func applyTableauOp(tb cliffordBackend, op *compiledOp) {
	switch op.kind {
	case opH:
		tb.h(op.a)
	case opX:
		tb.xg(op.a)
	case opY:
		tb.yg(op.a)
	case opZ:
		tb.zg(op.a)
	case opS:
		tb.s(op.a)
	case opSdg:
		tb.sdg(op.a)
	case opCX:
		tb.cx(op.a, op.b)
	case opCZ:
		tb.cz(op.a, op.b)
	case opSWAP:
		tb.swap(op.a, op.b)
	}
}

// minParallelWork is the estimated whole-simulation work (trials x
// per-trial op-touch cost) below which shard fan-out costs more than it
// buys: small Clifford workloads finish a shard in microseconds, so
// goroutine dispatch and the pool's cancellation machinery dominate.
// The threshold never affects results — worker count only decides where
// shards run, never what they compute.
const minParallelWork = 1 << 21

// shardWorkers applies the dispatch threshold: simulations whose total
// estimated work is too small run on one worker regardless of the
// requested fan-out.
func shardWorkers(workers, trials int, perTrialWork int64) int {
	if workers == 1 {
		return 1
	}
	if int64(trials)*perTrialWork < minParallelWork {
		return 1
	}
	return workers
}
