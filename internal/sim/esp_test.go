package sim

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/nisqbench"
	"repro/internal/router"
)

func TestAnalyticESPSimpleCircuit(t *testing.T) {
	d := arch.Linear(3, 0.1, 0.2)
	for q := range d.Gate1Err {
		d.Gate1Err[q] = 0.05
	}
	p := circuit.New("p", 2)
	p.H(0).CX(0, 1).MeasureAll()
	s, err := router.RouteSingle(d, p, []int{0, 1}, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	esp, err := AnalyticESP(d, s, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 1 h (0.95) * 1 cx (0.9) * 2 readouts (0.8^2).
	want := 0.95 * 0.9 * 0.8 * 0.8
	if math.Abs(esp.PerProgram[0]-want) > 1e-12 {
		t.Fatalf("ESP = %v, want %v", esp.PerProgram[0], want)
	}
}

func TestAnalyticESPCountsSwapAsThreeCNOTs(t *testing.T) {
	d := arch.Linear(3, 0.1, 0) // readout perfect to isolate gates
	for q := range d.Gate1Err {
		d.Gate1Err[q] = 0
	}
	p := circuit.New("p", 2)
	p.CX(0, 1)
	s, err := router.RouteSingle(d, p, []int{0, 2}, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s.SwapCount != 1 {
		t.Fatalf("swaps = %d", s.SwapCount)
	}
	esp, err := AnalyticESP(d, s, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 1 swap = 3 cnots at rel 0.9 plus the cx itself: 0.9^4.
	want := math.Pow(0.9, 4)
	if math.Abs(esp.PerProgram[0]-want) > 1e-12 {
		t.Fatalf("ESP = %v, want %v", esp.PerProgram[0], want)
	}
}

func TestAnalyticESPIdlePenalizesShortProgram(t *testing.T) {
	d := arch.Linear(6, 0.004, 0)
	short := circuit.New("short", 2)
	short.CX(0, 1).MeasureAll()
	deep := circuit.New("deep", 2)
	for i := 0; i < 50; i++ {
		deep.CX(0, 1)
	}
	deep.MeasureAll()
	s, err := router.Route(d, []*circuit.Circuit{short, deep}, [][]int{{0, 1}, {3, 4}}, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	esp, err := AnalyticESP(d, s, 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if esp.IdleFactor[0] >= esp.IdleFactor[1] {
		t.Fatalf("short program idle factor %v must be below deep program's %v",
			esp.IdleFactor[0], esp.IdleFactor[1])
	}
	noIdle, err := AnalyticESP(d, s, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if noIdle.IdleFactor[0] != 1 {
		t.Fatal("idle factor must be 1 when disabled")
	}
}

func TestAnalyticESPTracksMonteCarloOrdering(t *testing.T) {
	// ESP and MC PST must agree on which placement is better.
	good := arch.Linear(3, 0.01, 0.01)
	bad := arch.Linear(3, 0.09, 0.09)
	p := nisqbench.MustGet("bv_n3")
	run := func(d *arch.Device) (float64, float64) {
		s, err := router.RouteSingle(d, p, []int{0, 1, 2}, router.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		esp, err := AnalyticESP(d, s, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		out, err := SimulateSchedule(d, s, []*circuit.Circuit{p}, 600, 5, DefaultNoise())
		if err != nil {
			t.Fatal(err)
		}
		return esp.PerProgram[0], out.PST[0]
	}
	gESP, gPST := run(good)
	bESP, bPST := run(bad)
	if !(gESP > bESP && gPST > bPST) {
		t.Fatalf("ESP ordering (%v vs %v) must match PST ordering (%v vs %v)", gESP, bESP, gPST, bPST)
	}
	// ESP should be in the same ballpark as PST for the good chip
	// (within ~15 points; MC includes error cancellation ESP ignores).
	if math.Abs(gESP-gPST) > 0.15 {
		t.Fatalf("ESP %v far from PST %v", gESP, gPST)
	}
}

func TestAnalyticESPErrors(t *testing.T) {
	d := arch.Linear(3, 0.05, 0.05)
	p := circuit.New("p", 2)
	p.CX(0, 1)
	s, err := router.RouteSingle(d, p, []int{0, 2}, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Claiming 0 programs makes the swap's trigger out of range.
	if _, err := AnalyticESP(d, s, 0, 0); err == nil {
		t.Fatal("program count 0 must error on attribution")
	}
}
