package sim

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/graph"
	"repro/internal/router"
)

// ESP holds the analytic Estimated Success Probability of a compiled
// schedule: the product of every operation's reliability, per program.
// It is the closed-form counterpart to the Monte-Carlo PST — orders of
// magnitude faster, exact for independent error channels, but blind to
// error cancellation and crosstalk structure.
type ESP struct {
	// PerProgram[p] is program p's estimated success probability.
	PerProgram []float64
	// Breakdown separates the contributions (same indexing).
	GateFactor    []float64 // 1q + CNOT + attributed SWAP reliabilities
	ReadoutFactor []float64 // measurement reliabilities
	IdleFactor    []float64 // idle-layer decoherence
}

// AnalyticESP computes each program's ESP for the schedule:
//
//	ESP_p = Π_{1q,cx ops of p} (1-err)
//	      · Π_{SWAPs triggered by p} (1-err)^3
//	      · Π_{measures of p} (1-readout)
//	      · (1-idle)^(idle-layers of p's qubits)
//
// where idle layers count, for each of p's qubits, the layers between
// the qubit's last gate and the end of the co-located schedule (the
// §III-C waiting penalty) plus gaps inside the circuit. idlePerLayer of
// 0 disables the idle factor. numPrograms must cover every program
// index appearing in the schedule.
func AnalyticESP(d *arch.Device, sched *router.Schedule, numPrograms int, idlePerLayer float64) (*ESP, error) {
	esp := &ESP{
		PerProgram:    make([]float64, numPrograms),
		GateFactor:    make([]float64, numPrograms),
		ReadoutFactor: make([]float64, numPrograms),
		IdleFactor:    make([]float64, numPrograms),
	}
	for p := 0; p < numPrograms; p++ {
		esp.GateFactor[p] = 1
		esp.ReadoutFactor[p] = 1
		esp.IdleFactor[p] = 1
	}
	// With a pairwise crosstalk matrix the error of a two-qubit op
	// depends on which links fire in the same layer, so those ops are
	// charged in a layered walk below instead of the flat walk here. The
	// no-matrix path is untouched (ESP never had a scalar crosstalk
	// term), so existing devices produce bit-identical estimates.
	useMatrix := d.HasCrosstalk()
	for _, op := range sched.Ops {
		switch {
		case op.IsSwap:
			p := op.TriggerProgram
			if p < 0 || p >= numPrograms {
				return nil, fmt.Errorf("sim: swap with trigger program %d (have %d programs)", p, numPrograms)
			}
			if useMatrix {
				continue
			}
			rel := 1 - d.CNOTError(op.Gate.Qubits[0], op.Gate.Qubits[1])
			esp.GateFactor[p] *= rel * rel * rel
		case op.Gate.IsMeasure():
			if op.Program >= 0 && op.Program < numPrograms {
				esp.ReadoutFactor[op.Program] *= 1 - d.ReadoutErr[op.Gate.Qubits[0]]
			}
		case op.Gate.IsBarrier():
			// no physical cost
		case op.Gate.IsTwoQubit():
			if op.Program < 0 || op.Program >= numPrograms {
				return nil, fmt.Errorf("sim: gate op with program %d", op.Program)
			}
			if useMatrix {
				continue
			}
			esp.GateFactor[op.Program] *= 1 - d.CNOTError(op.Gate.Qubits[0], op.Gate.Qubits[1])
		default:
			if op.Program < 0 || op.Program >= numPrograms {
				return nil, fmt.Errorf("sim: gate op with program %d", op.Program)
			}
			esp.GateFactor[op.Program] *= 1 - d.Gate1Err[op.Gate.Qubits[0]]
		}
	}

	if useMatrix {
		lay := layerize(sched)
		for _, layer := range lay.layers {
			var edges []graph.Edge
			for _, op := range layer {
				if op.Gate.IsTwoQubit() {
					edges = append(edges, graph.NewEdge(op.Gate.Qubits[0], op.Gate.Qubits[1]))
				}
			}
			for _, op := range layer {
				if !op.Gate.IsTwoQubit() {
					continue
				}
				rel := 1 - d.Worst2qErrUnder(graph.NewEdge(op.Gate.Qubits[0], op.Gate.Qubits[1]), edges)
				if op.IsSwap {
					esp.GateFactor[op.TriggerProgram] *= rel * rel * rel
				} else {
					esp.GateFactor[op.Program] *= rel
				}
			}
		}
	}

	if idlePerLayer > 0 {
		lay := layerize(sched)
		total := len(lay.layers)
		// lastBusy[q] = last layer index where q participated; the
		// qubit then idles until the schedule (and measurement) ends.
		lastBusy := map[int]int{}
		busySum := map[int]int{}
		for li, layer := range lay.layers {
			for _, op := range layer {
				cost := 1
				if op.Gate.Name == "swap" {
					cost = 3
				}
				for _, q := range op.Gate.Qubits {
					lastBusy[q] = li + cost
					busySum[q] += cost
				}
			}
		}
		// Attribute each measured qubit's idle time to its program.
		for _, m := range sched.Measurements {
			if m.Program < 0 || m.Program >= numPrograms {
				continue
			}
			idle := total - busySum[m.Phys]
			if idle < 0 {
				idle = 0
			}
			for i := 0; i < idle; i++ {
				esp.IdleFactor[m.Program] *= 1 - idlePerLayer
			}
		}
	}

	for p := 0; p < numPrograms; p++ {
		esp.PerProgram[p] = esp.GateFactor[p] * esp.ReadoutFactor[p] * esp.IdleFactor[p]
	}
	return esp, nil
}
