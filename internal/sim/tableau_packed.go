package sim

import (
	"math/bits"
	"math/rand"

	"repro/internal/circuit"
)

// ptab is the bit-packed counterpart of tableau: each Pauli row stores
// its x/z bits in 64-bit words, so gate updates and row products run
// word-parallel (~64 qubits per operation). It is the production
// backend behind SimulateScheduleClifford; the boolean tableau remains
// as the cross-validation reference.
type ptab struct {
	n     int
	words int
	x, z  [][]uint64
	r     []bool
	// xbits/zbits back every row in one contiguous allocation (cache
	// locality + a single memclr on reset); sx/sz are the deterministic-
	// measure scratch rows, reused across measurements.
	xbits, zbits []uint64
	sx, sz       []uint64
	// pickRng/pickFn make decayT's random pick allocation-free: the
	// closure is built once here instead of once per decay event.
	pickRng *rand.Rand
	pickFn  func() bool
}

func newPtab(n int) *ptab {
	w := (n + 63) / 64
	t := &ptab{
		n:     n,
		words: w,
		x:     make([][]uint64, 2*n),
		z:     make([][]uint64, 2*n),
		r:     make([]bool, 2*n),
		xbits: make([]uint64, 2*n*w),
		zbits: make([]uint64, 2*n*w),
		sx:    make([]uint64, w),
		sz:    make([]uint64, w),
	}
	for i := 0; i < 2*n; i++ {
		t.x[i] = t.xbits[i*w : (i+1)*w : (i+1)*w]
		t.z[i] = t.zbits[i*w : (i+1)*w : (i+1)*w]
	}
	t.pickFn = func() bool { return t.pickRng.Intn(2) == 1 }
	t.init()
	return t
}

// init sets the identity tableau (destabilizer X_q, stabilizer Z_q).
func (t *ptab) init() {
	for q := 0; q < t.n; q++ {
		t.x[q][q>>6] |= 1 << uint(q&63)
		t.z[t.n+q][q>>6] |= 1 << uint(q&63)
	}
}

// reset restores the identity tableau in place, so per-shard trial
// loops reuse one ptab instead of reallocating 4n*words words per
// trial.
func (t *ptab) reset() {
	clear(t.xbits)
	clear(t.zbits)
	clear(t.r)
	t.init()
}

func (t *ptab) getx(i, q int) bool { return t.x[i][q>>6]&(1<<uint(q&63)) != 0 }
func (t *ptab) getz(i, q int) bool { return t.z[i][q>>6]&(1<<uint(q&63)) != 0 }

// h applies a Hadamard to qubit q.
func (t *ptab) h(q int) {
	w, b := q>>6, uint64(1)<<uint(q&63)
	for i := 0; i < 2*t.n; i++ {
		xi, zi := t.x[i][w]&b, t.z[i][w]&b
		if xi != 0 && zi != 0 {
			t.r[i] = !t.r[i]
		}
		if (xi != 0) != (zi != 0) {
			t.x[i][w] ^= b
			t.z[i][w] ^= b
		}
	}
}

// s applies the phase gate to qubit q.
func (t *ptab) s(q int) {
	w, b := q>>6, uint64(1)<<uint(q&63)
	for i := 0; i < 2*t.n; i++ {
		xi, zi := t.x[i][w]&b, t.z[i][w]&b
		if xi != 0 && zi != 0 {
			t.r[i] = !t.r[i]
		}
		if xi != 0 {
			t.z[i][w] ^= b
		}
	}
}

func (t *ptab) sdg(q int) { t.s(q); t.s(q); t.s(q) }

// cx applies a CNOT with control c and target tq.
func (t *ptab) cx(c, tq int) {
	cw, cb := c>>6, uint64(1)<<uint(c&63)
	tw, tb := tq>>6, uint64(1)<<uint(tq&63)
	for i := 0; i < 2*t.n; i++ {
		xc := t.x[i][cw]&cb != 0
		zt := t.z[i][tw]&tb != 0
		xt := t.x[i][tw]&tb != 0
		zc := t.z[i][cw]&cb != 0
		if xc && zt && (xt == zc) {
			t.r[i] = !t.r[i]
		}
		if xc {
			t.x[i][tw] ^= tb
		}
		if t.z[i][tw]&tb != 0 {
			t.z[i][cw] ^= cb
		}
	}
}

func (t *ptab) xg(q int) { t.h(q); t.zg(q); t.h(q) }
func (t *ptab) zg(q int) { t.s(q); t.s(q) }
func (t *ptab) yg(q int) { t.zg(q); t.xg(q) }
func (t *ptab) cz(a, b int) {
	t.h(b)
	t.cx(a, b)
	t.h(b)
}
func (t *ptab) swap(a, b int) { t.cx(a, b); t.cx(b, a); t.cx(a, b) }

// phaseOf returns the i-power exponent (mod 4, as 0 or ±popcount
// difference) accumulated when multiplying Pauli row (x1,z1) into
// (x2,z2), using the word-parallel {X,Y,Z} cycle formula.
func phaseOf(x1, z1, x2, z2 []uint64) int {
	plus, minus := 0, 0
	for w := range x1 {
		a, b, c, d := x1[w], z1[w], x2[w], z2[w]
		X1, Y1, Z1 := a&^b, a&b, b&^a
		X2, Y2, Z2 := c&^d, c&d, d&^c
		plus += bits.OnesCount64(X1&Y2 | Y1&Z2 | Z1&X2)
		minus += bits.OnesCount64(Y1&X2 | Z1&Y2 | X1&Z2)
	}
	return plus - minus
}

// rowsum multiplies row i into row h.
func (t *ptab) rowsum(h, i int) {
	sum := 2*b2i(t.r[h]) + 2*b2i(t.r[i]) + phaseOf(t.x[i], t.z[i], t.x[h], t.z[h])
	sum = ((sum % 4) + 4) % 4
	t.r[h] = sum == 2
	for w := 0; w < t.words; w++ {
		t.x[h][w] ^= t.x[i][w]
		t.z[h][w] ^= t.z[i][w]
	}
}

// measure performs a Z-basis measurement of qubit q; pick resolves
// random outcomes.
func (t *ptab) measure(q int, pick func() bool) int {
	n := t.n
	p := -1
	for i := n; i < 2*n; i++ {
		if t.getx(i, q) {
			p = i
			break
		}
	}
	if p >= 0 {
		for i := 0; i < 2*n; i++ {
			if i != p && t.getx(i, q) {
				t.rowsum(i, p)
			}
		}
		copy(t.x[p-n], t.x[p])
		copy(t.z[p-n], t.z[p])
		t.r[p-n] = t.r[p]
		for w := 0; w < t.words; w++ {
			t.x[p][w] = 0
			t.z[p][w] = 0
		}
		t.z[p][q>>6] |= 1 << uint(q&63)
		outcome := pick()
		t.r[p] = outcome
		return b2i(outcome)
	}
	// Deterministic: accumulate stabilizer rows into the reusable
	// scratch row.
	sx, sz := t.sx, t.sz
	clear(sx)
	clear(sz)
	sr := false
	for i := 0; i < n; i++ {
		if t.getx(i, q) {
			sum := 2*b2i(sr) + 2*b2i(t.r[i+n]) + phaseOf(t.x[i+n], t.z[i+n], sx, sz)
			sum = ((sum % 4) + 4) % 4
			sr = sum == 2
			for w := 0; w < t.words; w++ {
				sx[w] ^= t.x[i+n][w]
				sz[w] ^= t.z[i+n][w]
			}
		}
	}
	return b2i(sr)
}

// applyCliffordGate applies a named Clifford gate (same contract as the
// boolean tableau's method).
func (t *ptab) applyCliffordGate(g circuit.Gate, qmap func(int) int) error {
	q := func(i int) int { return qmap(g.Qubits[i]) }
	switch g.Name {
	case circuit.GateH:
		t.h(q(0))
	case circuit.GateX:
		t.xg(q(0))
	case circuit.GateY:
		t.yg(q(0))
	case circuit.GateZ:
		t.zg(q(0))
	case circuit.GateS:
		t.s(q(0))
	case circuit.GateSdg:
		t.sdg(q(0))
	case circuit.GateCX:
		t.cx(q(0), q(1))
	case circuit.GateCZ:
		t.cz(q(0), q(1))
	case circuit.GateSWAP:
		t.swap(q(0), q(1))
	default:
		return errNotClifford(g.Name)
	}
	return nil
}

func errNotClifford(name string) error {
	return &notCliffordError{name}
}

type notCliffordError struct{ gate string }

func (e *notCliffordError) Error() string { return "sim: gate " + e.gate + " is not Clifford" }

func (t *ptab) injectPauliT(q int, rng *rand.Rand) {
	switch rng.Intn(3) {
	case 0:
		t.xg(q)
	case 1:
		t.yg(q)
	default:
		t.zg(q)
	}
}

func (t *ptab) decayT(q int, rng *rand.Rand) {
	t.pickRng = rng
	if t.measure(q, t.pickFn) == 1 {
		t.xg(q)
	}
}
