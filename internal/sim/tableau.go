package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
)

// tableau is an Aaronson-Gottesman stabilizer tableau over n qubits:
// rows 0..n-1 are destabilizers, rows n..2n-1 stabilizers; each row is
// a Pauli string (x/z bit per qubit) with a sign bit r. It simulates
// Clifford circuits (h, s, cx and everything derived from them) in
// O(n^2) per gate regardless of entanglement — the engine behind
// 50-qubit fidelity estimation for Clifford workloads.
type tableau struct {
	n    int
	x, z [][]bool
	r    []bool
}

func newTableau(n int) *tableau {
	t := &tableau{
		n: n,
		x: make([][]bool, 2*n),
		z: make([][]bool, 2*n),
		r: make([]bool, 2*n),
	}
	for i := 0; i < 2*n; i++ {
		t.x[i] = make([]bool, n)
		t.z[i] = make([]bool, n)
	}
	for q := 0; q < n; q++ {
		t.x[q][q] = true   // destabilizer X_q
		t.z[n+q][q] = true // stabilizer Z_q
	}
	return t
}

// h applies a Hadamard to qubit q.
func (t *tableau) h(q int) {
	for i := 0; i < 2*t.n; i++ {
		if t.x[i][q] && t.z[i][q] {
			t.r[i] = !t.r[i]
		}
		t.x[i][q], t.z[i][q] = t.z[i][q], t.x[i][q]
	}
}

// s applies the phase gate S to qubit q.
func (t *tableau) s(q int) {
	for i := 0; i < 2*t.n; i++ {
		if t.x[i][q] && t.z[i][q] {
			t.r[i] = !t.r[i]
		}
		t.z[i][q] = t.z[i][q] != t.x[i][q]
	}
}

// sdg applies S-dagger (S three times).
func (t *tableau) sdg(q int) { t.s(q); t.s(q); t.s(q) }

// cx applies a CNOT with control c and target tq.
func (t *tableau) cx(c, tq int) {
	for i := 0; i < 2*t.n; i++ {
		// Sign update: r ^= x_c & z_t & (x_t XNOR z_c).
		if t.x[i][c] && t.z[i][tq] && (t.x[i][tq] == t.z[i][c]) {
			t.r[i] = !t.r[i]
		}
		t.x[i][tq] = t.x[i][tq] != t.x[i][c]
		t.z[i][c] = t.z[i][c] != t.z[i][tq]
	}
}

// xg applies Pauli X (H Z H = H S S H).
func (t *tableau) xg(q int) { t.h(q); t.zg(q); t.h(q) }

// zg applies Pauli Z (S S).
func (t *tableau) zg(q int) { t.s(q); t.s(q) }

// yg applies Pauli Y (= iXZ up to global phase: Z then X).
func (t *tableau) yg(q int) { t.zg(q); t.xg(q) }

// cz applies a controlled-Z (H on target sandwiching a CNOT).
func (t *tableau) cz(a, b int) { t.h(b); t.cx(a, b); t.h(b) }

// swap applies a SWAP (three CNOTs).
func (t *tableau) swap(a, b int) { t.cx(a, b); t.cx(b, a); t.cx(a, b) }

// gFunc returns the exponent contribution (mod 4) of multiplying two
// single-qubit Paulis given their x/z bits (Aaronson-Gottesman g).
func gFunc(x1, z1, x2, z2 bool) int {
	switch {
	case !x1 && !z1:
		return 0
	case x1 && z1: // Y
		return b2i(z2) - b2i(x2)
	case x1 && !z1: // X
		return b2i(z2) * (2*b2i(x2) - 1)
	default: // Z
		return b2i(x2) * (1 - 2*b2i(z2))
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// rowsum sets row h to row h * row i (Pauli product with sign tracking).
func (t *tableau) rowsum(h, i int) {
	sum := 2*b2i(t.r[h]) + 2*b2i(t.r[i])
	for q := 0; q < t.n; q++ {
		sum += gFunc(t.x[i][q], t.z[i][q], t.x[h][q], t.z[h][q])
	}
	sum = ((sum % 4) + 4) % 4
	t.r[h] = sum == 2
	for q := 0; q < t.n; q++ {
		t.x[h][q] = t.x[h][q] != t.x[i][q]
		t.z[h][q] = t.z[h][q] != t.z[i][q]
	}
}

// measure performs a Z-basis measurement of qubit q. When the outcome
// is random, pick picks it (rng-based for trials; "always 0" for the
// reference outcome).
func (t *tableau) measure(q int, pick func() bool) int {
	n := t.n
	p := -1
	for i := n; i < 2*n; i++ {
		if t.x[i][q] {
			p = i
			break
		}
	}
	if p >= 0 {
		// Random outcome.
		for i := 0; i < 2*n; i++ {
			if i != p && t.x[i][q] {
				t.rowsum(i, p)
			}
		}
		copy(t.x[p-n], t.x[p])
		copy(t.z[p-n], t.z[p])
		t.r[p-n] = t.r[p]
		for k := 0; k < n; k++ {
			t.x[p][k] = false
			t.z[p][k] = false
		}
		t.z[p][q] = true
		outcome := pick()
		t.r[p] = outcome
		return b2i(outcome)
	}
	// Deterministic outcome: accumulate into a scratch row.
	sx := make([]bool, n)
	sz := make([]bool, n)
	sr := false
	for i := 0; i < n; i++ {
		if t.x[i][q] {
			// rowsum(scratch, i+n) inline.
			sum := 2*b2i(sr) + 2*b2i(t.r[i+n])
			for k := 0; k < n; k++ {
				sum += gFunc(t.x[i+n][k], t.z[i+n][k], sx[k], sz[k])
			}
			sum = ((sum % 4) + 4) % 4
			sr = sum == 2
			for k := 0; k < n; k++ {
				sx[k] = sx[k] != t.x[i+n][k]
				sz[k] = sz[k] != t.z[i+n][k]
			}
		}
	}
	return b2i(sr)
}

// applyCliffordGate applies a named gate to the tableau; it errors on
// non-Clifford gates.
func (t *tableau) applyCliffordGate(g circuit.Gate, qmap func(int) int) error {
	q := func(i int) int { return qmap(g.Qubits[i]) }
	switch g.Name {
	case circuit.GateH:
		t.h(q(0))
	case circuit.GateX:
		t.xg(q(0))
	case circuit.GateY:
		t.yg(q(0))
	case circuit.GateZ:
		t.zg(q(0))
	case circuit.GateS:
		t.s(q(0))
	case circuit.GateSdg:
		t.sdg(q(0))
	case circuit.GateCX:
		t.cx(q(0), q(1))
	case circuit.GateCZ:
		t.cz(q(0), q(1))
	case circuit.GateSWAP:
		t.swap(q(0), q(1))
	default:
		return fmt.Errorf("sim: gate %q is not Clifford", g.Name)
	}
	return nil
}

// injectPauliT applies a uniformly random non-identity Pauli.
func (t *tableau) injectPauliT(q int, rng *rand.Rand) {
	switch rng.Intn(3) {
	case 0:
		t.xg(q)
	case 1:
		t.yg(q)
	default:
		t.zg(q)
	}
}

// decayT is the tableau counterpart of state.decay: projective Z
// measurement followed by relaxation of |1> to |0>.
func (t *tableau) decayT(q int, rng *rand.Rand) {
	if t.measure(q, func() bool { return rng.Intn(2) == 1 }) == 1 {
		t.xg(q)
	}
}

// IsClifford reports whether every gate in the circuit is simulable by
// the stabilizer backend (Clifford gates, measurements, barriers).
func IsClifford(c *circuit.Circuit) bool {
	for _, g := range c.Gates {
		switch g.Name {
		case circuit.GateH, circuit.GateX, circuit.GateY, circuit.GateZ,
			circuit.GateS, circuit.GateSdg, circuit.GateCX, circuit.GateCZ,
			circuit.GateSWAP, circuit.GateMeasure, circuit.GateBarrier:
		default:
			return false
		}
	}
	return true
}
