package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

// TestPackedMatchesBooleanTableau drives both stabilizer backends with
// identical random Clifford gate streams and measurement orders; every
// outcome (with identical random picks) must agree.
func TestPackedMatchesBooleanTableau(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := newTableau(n)
		b := newPtab(n)
		for step := 0; step < 60; step++ {
			q := rng.Intn(n)
			switch rng.Intn(9) {
			case 0:
				a.h(q)
				b.h(q)
			case 1:
				a.s(q)
				b.s(q)
			case 2:
				a.sdg(q)
				b.sdg(q)
			case 3:
				a.xg(q)
				b.xg(q)
			case 4:
				a.yg(q)
				b.yg(q)
			case 5:
				a.zg(q)
				b.zg(q)
			case 6, 7:
				if n > 1 {
					r := rng.Intn(n - 1)
					if r >= q {
						r++
					}
					a.cx(q, r)
					b.cx(q, r)
				}
			default:
				// Mid-circuit measurement with a shared random pick.
				pickVal := rng.Intn(2) == 1
				pick := func() bool { return pickVal }
				ma := a.measure(q, pick)
				mb := b.measure(q, pick)
				if ma != mb {
					return false
				}
			}
		}
		// Final readout of every qubit, prefer 0.
		for q := 0; q < n; q++ {
			if a.measure(q, func() bool { return false }) != b.measure(q, func() bool { return false }) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPackedTableauLargeChip(t *testing.T) {
	// 100-qubit GHZ: well beyond the statevector limit; prefer-0
	// readout must give all zeros, and bell correlations must hold.
	n := 100
	b := newPtab(n)
	b.h(0)
	for q := 0; q+1 < n; q++ {
		b.cx(q, q+1)
	}
	first := b.measure(0, func() bool { return false })
	for q := 1; q < n; q++ {
		if got := b.measure(q, func() bool { return false }); got != first {
			t.Fatalf("GHZ qubit %d decorrelated: %d vs %d", q, got, first)
		}
	}
	if first != 0 {
		t.Fatal("prefer-0 readout must resolve GHZ to all zeros")
	}
}

func BenchmarkPackedVsBooleanTableau(b *testing.B) {
	run := func(b *testing.B, mk func(int) cliffordBackend) {
		n := 50
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tb := mk(n)
			for q := 0; q < n; q++ {
				tb.injectPauliT(q%n, rand.New(rand.NewSource(int64(q))))
			}
			for q := 0; q+1 < n; q++ {
				if err := tb.applyCliffordGate(cxGate(q, q+1), ident); err != nil {
					b.Fatal(err)
				}
			}
			for q := 0; q < n; q++ {
				tb.measure(q, func() bool { return false })
			}
		}
	}
	b.Run("boolean", func(b *testing.B) {
		run(b, func(n int) cliffordBackend { return newTableau(n) })
	})
	b.Run("packed", func(b *testing.B) {
		run(b, func(n int) cliffordBackend { return newPtab(n) })
	})
}

func ident(q int) int { return q }

func cxGate(c, t int) circuit.Gate {
	return circuit.Gate{Name: circuit.GateCX, Qubits: []int{c, t}}
}

// BenchmarkTableauMeasureHeavy stresses the rowsum path (random-outcome
// measurements on a fully superposed register), where bit-packing pays.
func BenchmarkTableauMeasureHeavy(b *testing.B) {
	run := func(b *testing.B, mk func(int) cliffordBackend) {
		n := 64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tb := mk(n)
			for q := 0; q < n; q++ {
				if err := tb.applyCliffordGate(circuit.Gate{Name: circuit.GateH, Qubits: []int{q}}, ident); err != nil {
					b.Fatal(err)
				}
			}
			for q := 0; q+1 < n; q++ {
				if err := tb.applyCliffordGate(cxGate(q, q+1), ident); err != nil {
					b.Fatal(err)
				}
			}
			for q := 0; q < n; q++ {
				tb.measure(q, func() bool { return false })
			}
		}
	}
	b.Run("boolean", func(b *testing.B) {
		run(b, func(n int) cliffordBackend { return newTableau(n) })
	})
	b.Run("packed", func(b *testing.B) {
		run(b, func(n int) cliffordBackend { return newPtab(n) })
	})
}
