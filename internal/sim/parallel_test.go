package sim

import (
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/nisqbench"
	"repro/internal/pool"
	"repro/internal/router"
)

func TestShardSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40} {
		for s := 0; s < 64; s++ {
			v := shardSeed(seed, s)
			if v != shardSeed(seed, s) {
				t.Fatalf("shardSeed(%d,%d) is not deterministic", seed, s)
			}
			if v == seed {
				t.Fatalf("shardSeed(%d,%d) collides with the raw seed reserved for the reference run", seed, s)
			}
			if seen[v] {
				t.Fatalf("shardSeed(%d,%d)=%d collides with an earlier (seed,shard) pair", seed, s, v)
			}
			seen[v] = true
		}
	}
}

func TestShardRangePartitionsTrials(t *testing.T) {
	for _, trials := range []int{1, 100, shardTrials - 1, shardTrials, shardTrials + 1, 3*shardTrials + 17} {
		shards := numShards(trials)
		covered := 0
		prevHi := 0
		for s := 0; s < shards; s++ {
			lo, hi := shardRange(s, trials)
			if lo != prevHi {
				t.Fatalf("trials=%d shard %d starts at %d, want %d (gap/overlap)", trials, s, lo, prevHi)
			}
			if hi <= lo {
				t.Fatalf("trials=%d shard %d is empty [%d,%d)", trials, s, lo, hi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != trials || prevHi != trials {
			t.Fatalf("trials=%d: shards cover %d trials ending at %d", trials, covered, prevHi)
		}
	}
}

// pairSchedule routes bv_n3 and 3_17_13 side by side on IBMQ16 — a
// workload big enough that its trials span several shards' worth of
// random draws in every engine.
func pairSchedule(tb testing.TB) (*arch.Device, *router.Schedule, []*circuit.Circuit) {
	tb.Helper()
	d := arch.IBMQ16(0)
	progs := []*circuit.Circuit{nisqbench.MustGet("bv_n3"), nisqbench.MustGet("3_17_13")}
	s, err := router.Route(d, progs, [][]int{{0, 1, 2}, {5, 6, 7}}, router.DefaultOptions())
	if err != nil {
		tb.Fatal(err)
	}
	return d, s, progs
}

// TestSimulateWorkersDifferential is the core determinism guarantee:
// the statevector engine returns byte-identical outcomes no matter how
// many workers execute the shards.
func TestSimulateWorkersDifferential(t *testing.T) {
	d, s, progs := pairSchedule(t)
	trials := 2*shardTrials + 100 // 3 shards, last one partial
	want, err := SimulateScheduleWorkers(d, s, progs, trials, 7, DefaultNoise(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		got, err := SimulateScheduleWorkers(d, s, progs, trials, 7, DefaultNoise(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d outcome %+v differs from sequential %+v", workers, got, want)
		}
	}
}

func TestSimulateCliffordWorkersDifferential(t *testing.T) {
	d := arch.IBMQ16(0)
	prog := circuit.New("ghz", 4).H(0).CX(0, 1).CX(1, 2).CX(2, 3).MeasureAll()
	s, err := router.RouteSingle(d, prog, []int{0, 1, 2, 3}, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	progs := []*circuit.Circuit{prog}
	trials := 3*shardTrials + 1
	want, err := SimulateScheduleCliffordWorkers(d, s, progs, trials, 11, DefaultNoise(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := SimulateScheduleCliffordWorkers(d, s, progs, trials, 11, DefaultNoise(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d outcome %+v differs from sequential %+v", workers, got, want)
		}
	}
}

// TestSimulateMitigatedWorkersDifferential drives the worker count
// through the pool default, the only knob the mitigation engine
// exposes; its per-shard integer histograms must make the reduction
// exact at any setting.
func TestSimulateMitigatedWorkersDifferential(t *testing.T) {
	defer pool.SetDefault(0)
	d, s, progs := pairSchedule(t)
	noise := DefaultNoise()
	trials := shardTrials + 200
	pool.SetDefault(1)
	want, err := SimulateScheduleMitigated(d, s, progs, trials, 3, noise)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		pool.SetDefault(workers)
		got, err := SimulateScheduleMitigated(d, s, progs, trials, 3, noise)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d mitigated outcome %+v differs from sequential %+v", workers, got, want)
		}
	}
}

func benchSimulate(b *testing.B, workers int) {
	d, s, progs := pairSchedule(b)
	noise := DefaultNoise()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateScheduleWorkers(d, s, progs, 2*shardTrials, 7, noise, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateSequential(b *testing.B) { benchSimulate(b, 1) }
func BenchmarkSimulateParallel(b *testing.B)  { benchSimulate(b, 0) }

func benchSimulateClifford(b *testing.B, workers int) {
	d := arch.IBMQ16(0)
	prog := circuit.New("ghz", 4).H(0).CX(0, 1).CX(1, 2).CX(2, 3).MeasureAll()
	s, err := router.RouteSingle(d, prog, []int{0, 1, 2, 3}, router.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	progs := []*circuit.Circuit{prog}
	noise := DefaultNoise()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateScheduleCliffordWorkers(d, s, progs, 4*shardTrials, 7, noise, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateCliffordSequential(b *testing.B) { benchSimulateClifford(b, 1) }
func BenchmarkSimulateCliffordParallel(b *testing.B)   { benchSimulateClifford(b, 0) }
