package sim

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/graph"
	"repro/internal/pool"
	"repro/internal/router"
)

// NoiseModel configures the Monte-Carlo error channels.
type NoiseModel struct {
	// Enabled turns all stochastic channels on; when false the
	// simulation is noiseless (used to find the correct outcome).
	Enabled bool
	// IdleErrPerLayer is the per-layer probability that an idle, not
	// yet measured qubit suffers a decoherence event (reset
	// trajectory). It models the coherence error that grows when a
	// short program waits for a long co-located one.
	IdleErrPerLayer float64
	// CrosstalkFactor scales up a CNOT's error rate when another CNOT
	// executes in the same layer on an adjacent link: err *= 1 +
	// CrosstalkFactor.
	CrosstalkFactor float64
	// Readout enables measurement bit-flips with the device's
	// per-qubit readout error.
	Readout bool
	// SerializeCrosstalk applies crosstalk-aware scheduling (Murali et
	// al., ASPLOS'20 — the paper's [22]): CNOTs on adjacent links are
	// never executed in the same layer, trading extra depth (and idle
	// error) for the crosstalk penalty. It changes the layering, not
	// the gates.
	SerializeCrosstalk bool
}

// DefaultNoise returns the noise model used throughout the evaluation.
func DefaultNoise() NoiseModel {
	return NoiseModel{
		Enabled:         true,
		IdleErrPerLayer: 0.0012,
		CrosstalkFactor: 0.3,
		Readout:         true,
	}
}

// Outcome reports a simulated workload's per-program results.
type Outcome struct {
	// PST[p] is program p's probability of a successful trial.
	PST []float64
	// Correct[p] is program p's noiseless modal bitstring (logical
	// qubit order, logical 0 first).
	Correct []string
	// Trials is the number of Monte-Carlo trials run.
	Trials int
}

// AvgPST returns the mean PST across programs.
func (o *Outcome) AvgPST() float64 {
	if len(o.PST) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range o.PST {
		sum += p
	}
	return sum / float64(len(o.PST))
}

// layered is the schedule flattened into depth layers; measurements are
// deferred to the very end (co-located programs cannot be measured until
// every program's gates have run, §III-C).
type layered struct {
	layers   [][]router.Op
	measures []router.Measurement
	active   []int       // sorted physical qubits in play
	compact  map[int]int // phys -> dense index
}

// layerize builds ASAP layers from the schedule ops over active qubits.
func layerize(sched *router.Schedule) *layered {
	activeSet := map[int]bool{}
	for _, op := range sched.Ops {
		for _, q := range op.Gate.Qubits {
			activeSet[q] = true
		}
	}
	for _, m := range sched.Measurements {
		activeSet[m.Phys] = true
	}
	var active []int
	for q := range activeSet {
		active = append(active, q)
	}
	sort.Ints(active)
	compact := map[int]int{}
	for i, q := range active {
		compact[q] = i
	}

	level := map[int]int{} // phys -> next free layer
	var layers [][]router.Op
	place := func(op router.Op, cost int) {
		start := 0
		for _, q := range op.Gate.Qubits {
			if level[q] > start {
				start = level[q]
			}
		}
		for len(layers) < start+cost {
			layers = append(layers, nil)
		}
		layers[start] = append(layers[start], op)
		for _, q := range op.Gate.Qubits {
			level[q] = start + cost
		}
	}
	for _, op := range sched.Ops {
		if op.Gate.IsMeasure() {
			continue // deferred
		}
		cost := 1
		if op.Gate.Name == circuit.GateSWAP {
			cost = 3
		}
		place(op, cost)
	}
	return &layered{
		layers:   layers,
		measures: sched.Measurements,
		active:   active,
		compact:  compact,
	}
}

// SimulateSchedule runs the compiled schedule for the given number of
// noisy trials and returns per-program PSTs. The correct answer per
// program is its modal bitstring under a noiseless run of the same
// schedule. progs must be the source programs the schedule was built
// from (for qubit counts); seed drives all stochastic channels.
//
// Trials run sharded over the default worker pool; the outcome is a
// pure function of the arguments regardless of GOMAXPROCS (see
// SimulateScheduleWorkers).
func SimulateSchedule(d *arch.Device, sched *router.Schedule, progs []*circuit.Circuit, trials int, seed int64, noise NoiseModel) (*Outcome, error) {
	return SimulateScheduleWorkers(d, sched, progs, trials, seed, noise, 0)
}

// SimulateScheduleWorkers is SimulateSchedule with an explicit worker
// count (0 selects pool.Default(), 1 forces sequential execution). The
// trial budget is split into fixed shards, each with its own
// counter-derived RNG, so every worker count produces bit-identical
// PSTs.
func SimulateScheduleWorkers(d *arch.Device, sched *router.Schedule, progs []*circuit.Circuit, trials int, seed int64, noise NoiseModel, workers int) (*Outcome, error) {
	return SimulateScheduleCtx(context.Background(), d, sched, progs, trials, seed, noise, workers)
}

// SimulateScheduleCtx is SimulateScheduleWorkers with a caller-supplied
// context: cancellation is checked at shard boundaries, so a service
// deadline abandons the remaining trial budget and returns the
// context's error. An uncancelled context leaves the result
// bit-identical to SimulateScheduleWorkers.
func SimulateScheduleCtx(ctx context.Context, d *arch.Device, sched *router.Schedule, progs []*circuit.Circuit, trials int, seed int64, noise NoiseModel, workers int) (*Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if trials <= 0 {
		return nil, fmt.Errorf("sim: trials must be positive, got %d", trials)
	}
	lay := layerize(sched)
	if noise.Enabled && noise.SerializeCrosstalk {
		lay = serializeCrosstalk(d, lay)
	}
	if len(lay.active) > 24 {
		return nil, fmt.Errorf("sim: %d active qubits exceed the statevector limit", len(lay.active))
	}
	// Group measurements per program in logical order.
	measOf := make([][]router.Measurement, len(progs))
	for _, m := range lay.measures {
		if m.Program < 0 || m.Program >= len(progs) {
			return nil, fmt.Errorf("sim: measurement for unknown program %d", m.Program)
		}
		measOf[m.Program] = append(measOf[m.Program], m)
	}
	for p := range measOf {
		sort.Slice(measOf[p], func(i, j int) bool { return measOf[p][i].Logical < measOf[p][j].Logical })
	}

	// Lower the schedule once: compact indices, folded error rates, 1q
	// matrices, and idle lists are trial-invariant (see hotpath.go).
	cp, err := compileLayers(d, lay, noise, engineStatevector)
	if err != nil {
		return nil, err
	}

	// Noiseless reference run fixes the correct outcome.
	ref := newState(cp.nq)
	cp.runStatevectorNoiseless(ref)
	modal := ref.modal()
	correct := make([]string, len(progs))
	plan := make([][]measPoint, len(progs))
	for p := range progs {
		buf := make([]byte, len(measOf[p]))
		plan[p] = make([]measPoint, len(measOf[p]))
		for i, m := range measOf[p] {
			b := (modal >> uint(lay.compact[m.Phys])) & 1
			buf[i] = byte('0' + b)
			plan[p][i] = measPoint{compact: lay.compact[m.Phys], readout: d.ReadoutErr[m.Phys], correct: b}
		}
		correct[p] = string(buf)
	}
	doReadout := noise.Enabled && noise.Readout

	// Shard the trial budget: shard s runs trials [lo, hi) with its own
	// counter-derived RNG, so per-shard counts do not depend on how the
	// shards are spread over goroutines. Each shard reuses one state
	// buffer across its trials.
	shards := numShards(trials)
	workers = shardWorkers(workers, trials, cp.trialWork)
	perShard := make([][]int, shards)
	ferr := pool.ForEach(ctx, shards, workers, func(s int) error {
		rng := rand.New(rand.NewSource(shardSeed(seed, s)))
		lo, hi := shardRange(s, trials)
		succ := make([]int, len(progs))
		st := newState(cp.nq)
		for trial := lo; trial < hi; trial++ {
			st.reset()
			cp.runStatevector(st, rng)
			for p := range plan {
				ok := true
				for i := range plan[p] {
					mp := &plan[p][i]
					b := st.measure(mp.compact, rng)
					if doReadout && rng.Float64() < mp.readout {
						b ^= 1
					}
					if b != mp.correct {
						ok = false
					}
				}
				if ok {
					succ[p]++
				}
			}
		}
		perShard[s] = succ
		return nil
	})
	if ferr != nil {
		return nil, ferr
	}
	// Reduce in shard-index order (integer sums are order-independent,
	// but the fixed order keeps the pattern uniform across engines).
	succ := make([]int, len(progs))
	for s := 0; s < shards; s++ {
		for p, v := range perShard[s] {
			succ[p] += v
		}
	}
	out := &Outcome{PST: make([]float64, len(progs)), Correct: correct, Trials: trials}
	for p := range progs {
		out.PST[p] = float64(succ[p]) / float64(trials)
	}
	return out, nil
}

// runTrial executes all layers on st (without final measurements),
// injecting stochastic errors per the noise model.
func runTrial(st *state, d *arch.Device, lay *layered, noise NoiseModel, rng *rand.Rand) error {
	for _, layer := range lay.layers {
		// Count CNOT-layer adjacency for crosstalk.
		cnotEdges := layer2qEdges(d, layer, noise)
		busy := map[int]bool{}
		for _, op := range layer {
			g := op.Gate
			for _, q := range g.Qubits {
				busy[q] = true
			}
			switch {
			case g.Name == circuit.GateSWAP:
				a, b := lay.compact[g.Qubits[0]], lay.compact[g.Qubits[1]]
				st.applySWAP(a, b)
				if noise.Enabled {
					// Three physical CNOTs' worth of error on the link.
					errRate := effective2qErr(d, noise, cnotEdges, g.Qubits[0], g.Qubits[1])
					for k := 0; k < 3; k++ {
						if rng.Float64() < errRate {
							st.injectPauli(pick2(a, b, rng), rng)
						}
					}
				}
			case g.Name == circuit.GateCX:
				c, t := lay.compact[g.Qubits[0]], lay.compact[g.Qubits[1]]
				st.applyCNOT(c, t)
				if noise.Enabled {
					errRate := effective2qErr(d, noise, cnotEdges, g.Qubits[0], g.Qubits[1])
					if rng.Float64() < errRate {
						st.injectPauli(pick2(c, t, rng), rng)
					}
				}
			case g.Name == circuit.GateCZ:
				a, b := lay.compact[g.Qubits[0]], lay.compact[g.Qubits[1]]
				st.applyCZ(a, b)
				if noise.Enabled {
					if rng.Float64() < d.CNOTError(g.Qubits[0], g.Qubits[1]) {
						st.injectPauli(pick2(a, b, rng), rng)
					}
				}
			case g.IsMeasure() || g.IsBarrier():
				// Measures are deferred; barriers are no-ops here.
			default:
				m, err := gateMatrix(g)
				if err != nil {
					return err
				}
				q := lay.compact[g.Qubits[0]]
				st.apply1q(m, q)
				if noise.Enabled && rng.Float64() < d.Gate1Err[g.Qubits[0]] {
					st.injectPauli(q, rng)
				}
			}
		}
		if noise.Enabled && noise.IdleErrPerLayer > 0 {
			for _, q := range lay.active {
				if !busy[q] && rng.Float64() < noise.IdleErrPerLayer {
					st.decay(lay.compact[q], rng)
				}
			}
		}
	}
	return nil
}

// layer2qEdges collects the normalized links of a layer's two-qubit ops
// when the noise model needs them for crosstalk — either the legacy
// scalar factor or the device's pairwise matrix. Returns nil otherwise
// so the per-layer scan is skipped entirely on crosstalk-free runs.
func layer2qEdges(d *arch.Device, layer []router.Op, noise NoiseModel) []graph.Edge {
	if !noise.Enabled || (noise.CrosstalkFactor <= 0 && !d.HasCrosstalk()) {
		return nil
	}
	var edges []graph.Edge
	for _, op := range layer {
		if op.Gate.IsTwoQubit() {
			edges = append(edges, graph.NewEdge(op.Gate.Qubits[0], op.Gate.Qubits[1]))
		}
	}
	return edges
}

// effective2qErr returns the error rate charged to one execution of the
// two-qubit link (a,b) given the other two-qubit links firing in the
// same layer. A device carrying a pairwise crosstalk matrix supersedes
// the scalar model: the worst characterized conditional error
// E((a,b)|busy) wins, and neighbors absent from the matrix are benign.
// Without a matrix the legacy scalar model applies — base error times
// 1+CrosstalkFactor when any same-layer two-qubit op is adjacent —
// byte-identical to the pre-matrix simulator.
func effective2qErr(d *arch.Device, noise NoiseModel, layerEdges []graph.Edge, a, b int) float64 {
	if d.HasCrosstalk() {
		return d.Worst2qErrUnder(graph.NewEdge(a, b), layerEdges)
	}
	errRate := d.CNOTError(a, b)
	if noise.CrosstalkFactor > 0 && crosstalkAdjacent(d, layerEdges, a, b) {
		errRate *= 1 + noise.CrosstalkFactor
	}
	return errRate
}

// crosstalkAdjacent reports whether another CNOT in the same layer acts
// on a link adjacent to (a,b): sharing a qubit or coupled to one of its
// endpoints. The self-skip compares normalized edges, so a hand-built
// layer listing the same link in reversed orientation still does not
// count as its own aggressor.
func crosstalkAdjacent(d *arch.Device, layerEdges []graph.Edge, a, b int) bool {
	self := graph.NewEdge(a, b)
	for _, e := range layerEdges {
		if graph.NewEdge(e.U, e.V) == self {
			continue
		}
		for _, x := range [2]int{e.U, e.V} {
			for _, y := range [2]int{a, b} {
				if x == y || d.Coupling.HasEdge(x, y) {
					return true
				}
			}
		}
	}
	return false
}

func pick2(a, b int, rng *rand.Rand) int {
	if rng.Intn(2) == 0 {
		return a
	}
	return b
}

// serializeCrosstalk splits every layer containing CNOTs on adjacent
// links into conflict-free sub-layers (greedy graph coloring on the
// adjacency-conflict graph); non-CNOT ops stay in the first sub-layer.
func serializeCrosstalk(d *arch.Device, lay *layered) *layered {
	out := &layered{
		measures: lay.measures,
		active:   lay.active,
		compact:  lay.compact,
	}
	for _, layer := range lay.layers {
		var twoq, rest []router.Op
		for _, op := range layer {
			if op.Gate.IsTwoQubit() {
				twoq = append(twoq, op)
			} else {
				rest = append(rest, op)
			}
		}
		if len(twoq) <= 1 {
			out.layers = append(out.layers, layer)
			continue
		}
		// Greedy coloring: assign each CNOT the first sub-layer where
		// it conflicts with nothing already placed.
		var groups [][]router.Op
		for _, op := range twoq {
			placed := false
			for gi := range groups {
				conflict := false
				for _, other := range groups[gi] {
					if linksAdjacent(d, op.Gate.Qubits, other.Gate.Qubits) {
						conflict = true
						break
					}
				}
				if !conflict {
					groups[gi] = append(groups[gi], op)
					placed = true
					break
				}
			}
			if !placed {
				groups = append(groups, []router.Op{op})
			}
		}
		first := append(append([]router.Op(nil), rest...), groups[0]...)
		out.layers = append(out.layers, first)
		for _, g := range groups[1:] {
			out.layers = append(out.layers, g)
		}
	}
	return out
}

// linksAdjacent reports whether two 2-qubit ops act on links that share
// or couple a qubit (the crosstalk condition).
func linksAdjacent(d *arch.Device, a, b []int) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y || d.Coupling.HasEdge(x, y) {
				return true
			}
		}
	}
	return false
}

// SimulateIdeal runs a plain circuit (logical qubits, no device) without
// noise and returns its modal output bitstring over measured qubits (in
// qubit order) plus that outcome's probability.
func SimulateIdeal(c *circuit.Circuit) (string, float64, error) {
	if c.NumQubits > 24 {
		return "", 0, fmt.Errorf("sim: %d qubits exceed the statevector limit", c.NumQubits)
	}
	st := newState(c.NumQubits)
	for _, g := range c.Gates {
		switch {
		case g.IsMeasure() || g.IsBarrier():
			continue
		case g.Name == circuit.GateCX:
			st.applyCNOT(g.Qubits[0], g.Qubits[1])
		case g.Name == circuit.GateCZ:
			st.applyCZ(g.Qubits[0], g.Qubits[1])
		case g.Name == circuit.GateSWAP:
			st.applySWAP(g.Qubits[0], g.Qubits[1])
		default:
			m, err := gateMatrix(g)
			if err != nil {
				return "", 0, err
			}
			st.apply1q(m, g.Qubits[0])
		}
	}
	modal := st.modal()
	a := st.amps[modal]
	prob := real(a)*real(a) + imag(a)*imag(a)
	buf := make([]byte, c.NumQubits)
	for q := 0; q < c.NumQubits; q++ {
		buf[q] = byte('0' + (modal>>uint(q))&1)
	}
	return string(buf), prob, nil
}
