package sim

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/nisqbench"
	"repro/internal/router"
)

func TestInvertReadoutExactOnProducts(t *testing.T) {
	// A 2-qubit distribution pushed through known flips must invert
	// exactly: start with P(11) = 1, apply eps = {0.1, 0.2} forward,
	// then invert.
	eps := []float64{0.1, 0.2}
	true4 := []float64{0, 0, 0, 1}
	// Forward confusion: A(e) = [[1-e, e],[e, 1-e]] per qubit.
	meas := make([]float64, 4)
	for s := 0; s < 4; s++ {
		for m := 0; m < 4; m++ {
			p := 1.0
			for q := 0; q < 2; q++ {
				sb, mb := (s>>q)&1, (m>>q)&1
				if sb == mb {
					p *= 1 - eps[q]
				} else {
					p *= eps[q]
				}
			}
			meas[m] += true4[s] * p
		}
	}
	got := invertReadout(meas, eps)
	for i, want := range true4 {
		if math.Abs(got[i]-want) > 1e-12 {
			t.Fatalf("inverted[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestInvertReadoutSkipsSingular(t *testing.T) {
	freq := []float64{0.5, 0.5}
	got := invertReadout(freq, []float64{0.5})
	if got[0] != 0.5 || got[1] != 0.5 {
		t.Fatal("eps=0.5 must leave the distribution alone")
	}
	got = invertReadout(freq, []float64{0})
	if got[0] != 0.5 || got[1] != 0.5 {
		t.Fatal("eps=0 must be a no-op")
	}
}

func TestMitigationRecoversReadoutLoss(t *testing.T) {
	// Heavy readout error, light gate error: mitigation should recover
	// most of the PST lost to readout.
	d := arch.Linear(3, 0.002, 0.10)
	p := nisqbench.MustGet("bv_n3")
	s, err := router.RouteSingle(d, p, []int{0, 1, 2}, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	noise := NoiseModel{Enabled: true, Readout: true}
	out, err := SimulateScheduleMitigated(d, s, []*circuit.Circuit{p}, 4000, 5, noise)
	if err != nil {
		t.Fatal(err)
	}
	raw, mit := out.PST[0], out.MitigatedPST[0]
	if mit <= raw {
		t.Fatalf("mitigated PST %v must exceed raw %v under readout noise", mit, raw)
	}
	// Without readout noise the PST would be ~ (1-0.002)^cnots: compute
	// that bound and require mitigation to land close.
	clean, err := SimulateSchedule(d, s, []*circuit.Circuit{p},
		4000, 5, NoiseModel{Enabled: true, Readout: false})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mit-clean.PST[0]) > 0.05 {
		t.Fatalf("mitigated %v far from readout-free truth %v", mit, clean.PST[0])
	}
}

func TestMitigationNoOpWithoutReadoutNoise(t *testing.T) {
	d := arch.Linear(3, 0.01, 0.10)
	p := nisqbench.MustGet("bv_n3")
	s, err := router.RouteSingle(d, p, []int{0, 1, 2}, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	noise := NoiseModel{Enabled: true, Readout: false}
	out, err := SimulateScheduleMitigated(d, s, []*circuit.Circuit{p}, 500, 2, noise)
	if err != nil {
		t.Fatal(err)
	}
	if out.MitigatedPST[0] != out.PST[0] {
		t.Fatalf("without readout noise mitigation must be identity: %v vs %v",
			out.MitigatedPST[0], out.PST[0])
	}
}

func TestMitigationErrors(t *testing.T) {
	d := arch.IBMQ16(0)
	p := nisqbench.MustGet("bv_n3")
	s, err := router.RouteSingle(d, p, []int{0, 1, 2}, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateScheduleMitigated(d, s, []*circuit.Circuit{p}, 0, 1, NoiseModel{}); err == nil {
		t.Fatal("zero trials must error")
	}
}
