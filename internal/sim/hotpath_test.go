package sim

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/router"
)

// ghzSchedule routes a 4-qubit GHZ circuit on IBMQ16 — the Clifford
// engine's benchmark workload, small enough to sit below the parallel
// dispatch threshold.
func ghzSchedule(tb testing.TB) (*arch.Device, *router.Schedule, []*circuit.Circuit) {
	tb.Helper()
	d := arch.IBMQ16(0)
	prog := circuit.New("ghz", 4).H(0).CX(0, 1).CX(1, 2).CX(2, 3).MeasureAll()
	s, err := router.RouteSingle(d, prog, []int{0, 1, 2, 3}, router.DefaultOptions())
	if err != nil {
		tb.Fatal(err)
	}
	return d, s, []*circuit.Circuit{prog}
}

// compiledLay lowers a schedule the way the simulate entry points do.
func compiledLay(tb testing.TB, d *arch.Device, s *router.Schedule, noise NoiseModel, engine engineKind) (*layered, *compiledProgram) {
	tb.Helper()
	lay := layerize(s)
	if noise.Enabled && noise.SerializeCrosstalk {
		lay = serializeCrosstalk(d, lay)
	}
	cp, err := compileLayers(d, lay, noise, engine)
	if err != nil {
		tb.Fatal(err)
	}
	return lay, cp
}

// TestCompiledTrialMatchesLegacyStatevector replays the same seeds
// through the legacy interpreter (runTrial) and the compiled hot path
// and demands bit-identical statevectors AND identical RNG positions —
// the determinism contract behind every simulate entry point.
func TestCompiledTrialMatchesLegacyStatevector(t *testing.T) {
	d, s, _ := pairSchedule(t)
	for _, noise := range []NoiseModel{
		{},
		DefaultNoise(),
		{Enabled: true, IdleErrPerLayer: 0.01, CrosstalkFactor: 0.5, Readout: true, SerializeCrosstalk: true},
	} {
		lay, cp := compiledLay(t, d, s, noise, engineStatevector)
		for seed := int64(0); seed < 5; seed++ {
			rngA := rand.New(rand.NewSource(seed))
			rngB := rand.New(rand.NewSource(seed))
			stA := newState(len(lay.active))
			if err := runTrial(stA, d, lay, noise, rngA); err != nil {
				t.Fatal(err)
			}
			stB := newState(cp.nq)
			cp.runStatevector(stB, rngB)
			if !reflect.DeepEqual(stA.amps, stB.amps) {
				t.Fatalf("noise=%+v seed=%d: compiled statevector diverges from legacy", noise, seed)
			}
			if rngA.Int63() != rngB.Int63() {
				t.Fatalf("noise=%+v seed=%d: compiled path consumed a different number of draws", noise, seed)
			}
		}
	}
}

// TestCompiledTrialMatchesLegacyTableau is the stabilizer-engine
// counterpart: identical tableau contents and RNG positions after a
// noisy trial plus a measurement sweep.
func TestCompiledTrialMatchesLegacyTableau(t *testing.T) {
	d, s, _ := ghzSchedule(t)
	for _, noise := range []NoiseModel{
		{},
		DefaultNoise(),
		{Enabled: true, IdleErrPerLayer: 0.05, CrosstalkFactor: 0.5, Readout: true, SerializeCrosstalk: true},
	} {
		lay, cp := compiledLay(t, d, s, noise, engineTableau)
		for seed := int64(0); seed < 5; seed++ {
			rngA := rand.New(rand.NewSource(seed))
			rngB := rand.New(rand.NewSource(seed))
			tbA := newPtab(len(lay.active))
			if err := runTrialT(tbA, d, lay, noise, rngA); err != nil {
				t.Fatal(err)
			}
			tbB := newPtab(cp.nq)
			cp.runTableau(tbB, rngB)
			for q := 0; q < cp.nq; q++ {
				a := tbA.measure(q, func() bool { return rngA.Intn(2) == 1 })
				b := tbB.measure(q, func() bool { return rngB.Intn(2) == 1 })
				if a != b {
					t.Fatalf("noise=%+v seed=%d: measurement of qubit %d differs (%d vs %d)", noise, seed, q, a, b)
				}
			}
			if !reflect.DeepEqual(tbA.xbits, tbB.xbits) || !reflect.DeepEqual(tbA.zbits, tbB.zbits) || !reflect.DeepEqual(tbA.r, tbB.r) {
				t.Fatalf("noise=%+v seed=%d: compiled tableau diverges from legacy", noise, seed)
			}
			if rngA.Int63() != rngB.Int63() {
				t.Fatalf("noise=%+v seed=%d: compiled path consumed a different number of draws", noise, seed)
			}
		}
	}
}

// TestPtabResetMatchesFresh guards the buffer-reuse path: a reset
// tableau must be indistinguishable from a newly allocated one.
func TestPtabResetMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	used := newPtab(7)
	used.h(0)
	used.cx(0, 3)
	used.s(5)
	used.measure(3, func() bool { return rng.Intn(2) == 1 })
	used.reset()
	fresh := newPtab(7)
	if !reflect.DeepEqual(used.xbits, fresh.xbits) || !reflect.DeepEqual(used.zbits, fresh.zbits) || !reflect.DeepEqual(used.r, fresh.r) {
		t.Fatal("reset ptab differs from a fresh one")
	}
}

// TestStateResetMatchesFresh is the statevector counterpart.
func TestStateResetMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	used := newState(5)
	used.apply1q(pauliY, 2)
	used.applyCNOT(2, 4)
	used.measure(4, rng)
	used.reset()
	fresh := newState(5)
	if !reflect.DeepEqual(used.amps, fresh.amps) {
		t.Fatal("reset state differs from a fresh one")
	}
}

func TestShardWorkersGating(t *testing.T) {
	cases := []struct {
		name         string
		workers      int
		trials       int
		perTrialWork int64
		want         int
	}{
		{"explicit sequential stays sequential", 1, 1 << 20, 1 << 20, 1},
		{"tiny clifford workload gates to one", 8, 4 * shardTrials, 100, 1},
		{"big statevector workload keeps fanout", 8, 1024, 25600, 8},
		{"default workers kept above threshold", 0, 1024, 25600, 0},
		{"default workers gated below threshold", 0, 512, 10, 1},
	}
	for _, c := range cases {
		if got := shardWorkers(c.workers, c.trials, c.perTrialWork); got != c.want {
			t.Errorf("%s: shardWorkers(%d, %d, %d) = %d, want %d", c.name, c.workers, c.trials, c.perTrialWork, got, c.want)
		}
	}
}

// TestCliffordBenchWorkloadGatesSequential pins the satellite fix: the
// GHZ-4 benchmark workload's estimated work sits below the dispatch
// threshold, so SimulateCliffordParallel no longer pays shard fan-out
// for microsecond shards.
func TestCliffordBenchWorkloadGatesSequential(t *testing.T) {
	d, s, _ := ghzSchedule(t)
	_, cp := compiledLay(t, d, s, DefaultNoise(), engineTableau)
	if got := shardWorkers(0, 4*shardTrials, cp.trialWork); got != 1 {
		t.Fatalf("GHZ-4 bench workload (trialWork=%d) dispatches %d workers, want gated to 1", cp.trialWork, got)
	}
	// The statevector benchmark workload must NOT be gated.
	dd, ss, _ := pairSchedule(t)
	_, cpSV := compiledLay(t, dd, ss, DefaultNoise(), engineStatevector)
	if got := shardWorkers(0, 2*shardTrials, cpSV.trialWork); got != 0 {
		t.Fatalf("statevector bench workload (trialWork=%d) gated to %d workers, want pool default", cpSV.trialWork, got)
	}
}

// TestCliffordGatedFingerprintAcrossWorkers checks byte-identity on
// both sides of the dispatch threshold: a small workload (coerced
// sequential) and a large one (genuinely sharded) must return identical
// outcomes at every requested worker count.
func TestCliffordGatedFingerprintAcrossWorkers(t *testing.T) {
	d, s, progs := ghzSchedule(t)
	for _, trials := range []int{shardTrials + 3, 40 * shardTrials} {
		want, err := SimulateScheduleCliffordWorkers(d, s, progs, trials, 13, DefaultNoise(), 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 8} {
			got, err := SimulateScheduleCliffordWorkers(d, s, progs, trials, 13, DefaultNoise(), workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("trials=%d workers=%d outcome %+v differs from sequential %+v", trials, workers, got, want)
			}
		}
	}
}

// TestStatevectorTrialAllocs is the steady-state allocation guard: once
// the shard's scratch state exists, a full trial (gates + noise +
// measurements) must not allocate.
func TestStatevectorTrialAllocs(t *testing.T) {
	d, s, _ := pairSchedule(t)
	lay, cp := compiledLay(t, d, s, DefaultNoise(), engineStatevector)
	st := newState(cp.nq)
	rng := rand.New(rand.NewSource(1))
	compacts := make([]int, 0, len(lay.measures))
	for _, m := range lay.measures {
		compacts = append(compacts, lay.compact[m.Phys])
	}
	allocs := testing.AllocsPerRun(20, func() {
		st.reset()
		cp.runStatevector(st, rng)
		for _, c := range compacts {
			st.measure(c, rng)
		}
	})
	if allocs > 0 {
		t.Fatalf("statevector trial allocates %.1f times per run, want 0", allocs)
	}
}

// TestTableauTrialAllocs is the stabilizer-engine counterpart,
// including the randomized-measure and decay paths.
func TestTableauTrialAllocs(t *testing.T) {
	d, s, _ := ghzSchedule(t)
	lay, cp := compiledLay(t, d, s, DefaultNoise(), engineTableau)
	tb := newPtab(cp.nq)
	rng := rand.New(rand.NewSource(1))
	pick := func() bool { return rng.Intn(2) == 1 }
	compacts := make([]int, 0, len(lay.measures))
	for _, m := range lay.measures {
		compacts = append(compacts, lay.compact[m.Phys])
	}
	allocs := testing.AllocsPerRun(50, func() {
		tb.reset()
		cp.runTableau(tb, rng)
		for _, c := range compacts {
			tb.measure(c, pick)
		}
	})
	if allocs > 0 {
		t.Fatalf("tableau trial allocates %.1f times per run, want 0", allocs)
	}
}

// TestSimulateParallelSpeedupAt8Cores asserts the headline claim on
// machines that can demonstrate it: with >= 8 CPUs, the sharded
// statevector path must beat sequential by at least 2x on the
// benchmark workload. Skipped elsewhere — byte-identity tests cover
// correctness at every core count.
func TestSimulateParallelSpeedupAt8Cores(t *testing.T) {
	if runtime.NumCPU() < 8 {
		t.Skipf("need >= 8 CPUs to demonstrate parallel speedup, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	d, s, progs := pairSchedule(t)
	noise := DefaultNoise()
	trials := 4 * shardTrials
	run := func(workers int) time.Duration {
		start := time.Now()
		if _, err := SimulateScheduleWorkers(d, s, progs, trials, 7, noise, workers); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	run(8) // warm up
	seq := run(1)
	par := run(8)
	if par*2 > seq {
		t.Fatalf("parallel %v is less than 2x faster than sequential %v at %d CPUs", par, seq, runtime.NumCPU())
	}
}
