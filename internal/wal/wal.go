// Package wal implements qucloudd's write-ahead job log: an
// append-only JSONL file under the daemon's data directory that makes
// the bounded in-memory queue durable. Every admitted job is logged
// before its submission is acknowledged, and every terminal transition
// (done/failed) is logged when it happens; on startup the service
// replays the log, restores terminal records, and requeues every job
// that was admitted but never finished — so a crash or kill between
// accept and execute loses nothing.
//
// The format is one JSON object per line. A torn final line (the
// classic partial-write artifact of killing a process mid-append) is
// skipped and counted, never fatal: the log is an availability
// mechanism, and refusing to start over one ragged tail would invert
// its purpose. Compact rewrites the file atomically (temp file +
// rename) so replay cost stays proportional to live state, not to the
// daemon's lifetime.
//
// The package itself is deterministic: it never reads the wall clock
// or draws randomness — timestamps arrive in the records the caller
// appends. File I/O errors are returned, not retried; the caller
// decides whether durability loss is fatal (qucloudd degrades to
// in-memory-only and counts the failures).
package wal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Record types: a job admission and its two terminal outcomes.
const (
	// TypeSubmit logs an admitted job with everything needed to requeue
	// it after a restart (tenant, QASM source, idempotency key).
	TypeSubmit = "submit"
	// TypeDone logs a successful completion with its result summary.
	TypeDone = "done"
	// TypeFailed logs a terminal failure with its error.
	TypeFailed = "failed"
)

// Record is one WAL line. Submit records carry the replayable job
// identity and source; terminal records carry the result summary keyed
// by the same ID. Field names are kept short — the log is written on
// the submit hot path and a 100k-job run appends 100k+ lines.
type Record struct {
	Type   string `json:"t"`
	ID     string `json:"id"`
	Seq    int    `json:"seq,omitempty"`
	Tenant string `json:"tn,omitempty"`
	Name   string `json:"name,omitempty"`
	QASM   string `json:"qasm,omitempty"`
	// Idem and Fingerprint persist the idempotency-key binding so a
	// retrying client still collapses onto the original job after a
	// daemon restart.
	Idem        string `json:"idem,omitempty"`
	Fingerprint string `json:"fp,omitempty"`
	// SubmittedUnixNano and Arrival preserve the job's original
	// submission instant across a restart (Arrival is seconds since the
	// logging service's start, mirroring cloudsim.Job.Arrival).
	SubmittedUnixNano int64   `json:"sub,omitempty"`
	Arrival           float64 `json:"arr,omitempty"`
	// Terminal-record result summary.
	Backend        string  `json:"bk,omitempty"`
	Error          string  `json:"err,omitempty"`
	PST            float64 `json:"pst,omitempty"`
	WaitSeconds    float64 `json:"wait,omitempty"`
	ServiceSeconds float64 `json:"svc,omitempty"`
}

// Replay is the result of reading an existing log: the parsed records
// in append order, plus how many unparseable lines were skipped (a
// torn tail from a kill mid-append is the expected source).
type Replay struct {
	Records []Record
	Skipped int
}

// Pending folds a replay into the jobs that must be requeued (admitted
// but never terminal) and the terminal records worth restoring, both in
// original submit order. Terminal records are joined with their submit
// record so the restored JobRecord keeps its identity fields.
func (r Replay) Pending() (pending []Record, terminal []Record) {
	done := map[string]Record{}
	for _, rec := range r.Records {
		if rec.Type == TypeDone || rec.Type == TypeFailed {
			done[rec.ID] = rec
		}
	}
	for _, rec := range r.Records {
		if rec.Type != TypeSubmit {
			continue
		}
		if term, ok := done[rec.ID]; ok {
			// Merge: the submit record's identity plus the terminal
			// record's outcome.
			term.Seq = rec.Seq
			term.Tenant = rec.Tenant
			term.Name = rec.Name
			term.Idem = rec.Idem
			term.Fingerprint = rec.Fingerprint
			term.SubmittedUnixNano = rec.SubmittedUnixNano
			term.Arrival = rec.Arrival
			terminal = append(terminal, term)
		} else {
			pending = append(pending, rec)
		}
	}
	return pending, terminal
}

// Log is an open write-ahead log. Append is safe for concurrent use;
// the hook and path fields must be set before the log is shared.
type Log struct {
	// AppendHook, when non-nil, runs before every append; an error
	// aborts the append and is returned to the caller. It exists for
	// fault injection (the chaos suite's WAL-append outage site).
	AppendHook func() error

	path string

	mu sync.Mutex
	f  *os.File // guarded by mu
}

// Open reads the log at path (creating it when absent), returns the
// replayed records, and leaves the file open for appending. Lines that
// do not parse as a Record are counted in Replay.Skipped — a torn
// final line from a mid-append kill must not prevent startup.
func Open(path string) (*Log, Replay, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, Replay{}, fmt.Errorf("wal: open %s: %w", path, err)
	}
	rep, err := replay(f)
	if err != nil {
		f.Close()
		return nil, Replay{}, fmt.Errorf("wal: replay %s: %w", path, err)
	}
	// Position at the end for appends, and terminate a torn tail with a
	// newline so the next append starts its own line instead of gluing
	// onto the fragment (which would corrupt a good record too).
	end, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, Replay{}, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	if end > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], end-1); err != nil {
			f.Close()
			return nil, Replay{}, fmt.Errorf("wal: read tail %s: %w", path, err)
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, Replay{}, fmt.Errorf("wal: terminate tail %s: %w", path, err)
			}
		}
	}
	return &Log{path: path, f: f}, rep, nil
}

// replay parses every line of the open file.
func replay(f *os.File) (Replay, error) {
	var rep Replay
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Type == "" || rec.ID == "" {
			rep.Skipped++
			continue
		}
		rep.Records = append(rep.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return Replay{}, err
	}
	return rep, nil
}

// Append writes one record as a single line. The write goes straight
// to the file descriptor (no userspace buffering), so a killed process
// loses at most the record being written — the torn tail Open skips.
// It does not fsync: the durability target is process death, not
// power loss, and an fsync per admitted job would put a disk flush on
// the submit path.
func (l *Log) Append(rec Record) error {
	if hook := l.AppendHook; hook != nil {
		if err := hook(); err != nil {
			return err
		}
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("wal: marshal: %w", err)
	}
	data = append(data, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("wal: log closed")
	}
	if _, err := l.f.Write(data); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	return nil
}

// Compact atomically replaces the log's contents with the given
// records (temp file in the same directory + rename), then reopens for
// append. The service calls it after replay so the file holds exactly
// the restored state instead of every line ever written.
func (l *Log) Compact(live []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("wal: log closed")
	}
	dir := filepath.Dir(l.path)
	tmp, err := os.CreateTemp(dir, ".wal-compact-*")
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	w := bufio.NewWriter(tmp)
	for _, rec := range live {
		data, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("wal: compact marshal: %w", err)
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			tmp.Close()
			return fmt.Errorf("wal: compact write: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: compact flush: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: compact close: %w", err)
	}
	if err := os.Rename(tmp.Name(), l.path); err != nil {
		return fmt.Errorf("wal: compact rename: %w", err)
	}
	f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact reopen: %w", err)
	}
	l.f.Close()
	l.f = f
	return nil
}

// Sync flushes the file to stable storage (fsync). The service exposes
// it for tests and shutdown; the append path deliberately skips it.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	return l.f.Sync()
}

// Close syncs and closes the underlying file. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
