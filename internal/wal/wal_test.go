package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openT(t *testing.T, path string) (*Log, Replay) {
	t.Helper()
	l, rep, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return l, rep
}

func TestAppendAndReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	l, rep := openT(t, path)
	if len(rep.Records) != 0 || rep.Skipped != 0 {
		t.Fatalf("fresh log replayed %+v", rep)
	}
	recs := []Record{
		{Type: TypeSubmit, ID: "job-000000", Seq: 0, Tenant: "acme", Name: "bv", QASM: "OPENQASM 2.0;", Arrival: 0.5},
		{Type: TypeSubmit, ID: "job-000001", Seq: 1, Tenant: "beta", Name: "ghz", QASM: "OPENQASM 2.0;", Idem: "k1", Fingerprint: "abc"},
		{Type: TypeDone, ID: "job-000000", Backend: "london", PST: 0.91, WaitSeconds: 1.5, ServiceSeconds: 0.2},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rep2 := openT(t, path)
	defer l2.Close()
	if len(rep2.Records) != len(recs) || rep2.Skipped != 0 {
		t.Fatalf("replay got %d records (%d skipped), want %d", len(rep2.Records), rep2.Skipped, len(recs))
	}
	for i, got := range rep2.Records {
		if got != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got, recs[i])
		}
	}

	pending, terminal := rep2.Pending()
	if len(pending) != 1 || pending[0].ID != "job-000001" {
		t.Fatalf("pending = %+v, want only job-000001", pending)
	}
	if len(terminal) != 1 || terminal[0].ID != "job-000000" {
		t.Fatalf("terminal = %+v, want only job-000000", terminal)
	}
	// The terminal record is joined with its submit identity.
	tm := terminal[0]
	if tm.Tenant != "acme" || tm.Name != "bv" || tm.Arrival != 0.5 || tm.PST != 0.91 || tm.Type != TypeDone {
		t.Fatalf("terminal join lost fields: %+v", tm)
	}
}

// TestTornTailSkipped simulates a kill mid-append: a partial final line
// must be skipped (and counted), never fatal, and appends after reopen
// must land on their own line.
func TestTornTailSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	l, _ := openT(t, path)
	if err := l.Append(Record{Type: TypeSubmit, ID: "job-000000"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"submit","id":"job-0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, rep := openT(t, path)
	if len(rep.Records) != 1 || rep.Skipped != 1 {
		t.Fatalf("torn tail: got %d records, %d skipped, want 1/1", len(rep.Records), rep.Skipped)
	}
	// An append after replay must start a fresh line — the replayed
	// record set after another reopen is the old record plus the new
	// one, with the torn fragment still isolated.
	if err := l2.Append(Record{Type: TypeDone, ID: "job-000000"}); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, rep2 := openT(t, path)
	if len(rep2.Records) != 2 {
		t.Fatalf("after reopen+append: got %d records, want 2 (%+v)", len(rep2.Records), rep2.Records)
	}
}

// TestGarbageLinesSkipped: arbitrary corruption (bad JSON, valid JSON
// missing mandatory fields, blank lines) is counted and skipped.
func TestGarbageLinesSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	content := strings.Join([]string{
		`{"t":"submit","id":"job-000000"}`,
		`not json at all`,
		`{"valid":"json","but":"no type"}`,
		``,
		`{"t":"done","id":"job-000000"}`,
	}, "\n") + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	l, rep := openT(t, path)
	defer l.Close()
	if len(rep.Records) != 2 || rep.Skipped != 2 {
		t.Fatalf("got %d records, %d skipped, want 2/2", len(rep.Records), rep.Skipped)
	}
}

func TestCompactRewritesToLiveState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	l, _ := openT(t, path)
	for i := 0; i < 100; i++ {
		if err := l.Append(Record{Type: TypeSubmit, ID: "job-x", Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	live := []Record{{Type: TypeSubmit, ID: "job-000042", Seq: 42}}
	if err := l.Compact(live); err != nil {
		t.Fatal(err)
	}
	// The log keeps accepting appends after compaction.
	if err := l.Append(Record{Type: TypeDone, ID: "job-000042"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep := openT(t, path)
	if len(rep.Records) != 2 || rep.Records[0].Seq != 42 || rep.Records[1].Type != TypeDone {
		t.Fatalf("post-compact replay: %+v", rep.Records)
	}
}

func TestAppendHookAbortsAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	l, _ := openT(t, path)
	injected := errors.New("injected outage")
	fail := true
	l.AppendHook = func() error {
		if fail {
			return injected
		}
		return nil
	}
	if err := l.Append(Record{Type: TypeSubmit, ID: "job-000000"}); !errors.Is(err, injected) {
		t.Fatalf("hooked append: err = %v, want injected", err)
	}
	fail = false
	if err := l.Append(Record{Type: TypeSubmit, ID: "job-000001"}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, rep := openT(t, path)
	if len(rep.Records) != 1 || rep.Records[0].ID != "job-000001" {
		t.Fatalf("aborted append leaked into the log: %+v", rep.Records)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	l, _ := openT(t, path)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: TypeSubmit, ID: "x"}); err == nil {
		t.Fatal("append after close should fail")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestPendingPreservesSubmitOrder: requeue order after replay is the
// original admission order regardless of terminal interleaving.
func TestPendingPreservesSubmitOrder(t *testing.T) {
	rep := Replay{Records: []Record{
		{Type: TypeSubmit, ID: "a", Seq: 0},
		{Type: TypeSubmit, ID: "b", Seq: 1},
		{Type: TypeSubmit, ID: "c", Seq: 2},
		{Type: TypeFailed, ID: "b", Error: "boom"},
	}}
	pending, terminal := rep.Pending()
	if len(pending) != 2 || pending[0].ID != "a" || pending[1].ID != "c" {
		t.Fatalf("pending = %+v", pending)
	}
	if len(terminal) != 1 || terminal[0].ID != "b" || terminal[0].Error != "boom" {
		t.Fatalf("terminal = %+v", terminal)
	}
}
