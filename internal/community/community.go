// Package community implements the paper's Community Detection Assisted
// Partitioning substrate: Newman's fast-greedy (FN) agglomerative
// community detection over a chip's coupling graph, modified with the
// error-aware reward F = ΔQ + ω·E·V (Equation 1), producing the
// hierarchy tree (dendrogram) of Algorithm 1 that CDAP walks to allocate
// qubit regions. It also provides the redundant-qubit statistic and the
// knee-point selection of ω used for Figure 9.
package community

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/arch"
	"repro/internal/fp"
	"repro/internal/graph"
)

// Node is one dendrogram node: a community of physical qubits. Leaves
// hold a single qubit; internal nodes are the union of their children.
type Node struct {
	// Qubits is the sorted set of physical qubits in this community.
	Qubits []int
	// Left and Right are the merged sub-communities (nil for leaves).
	Left, Right *Node
	// Height is the merge step at which this node was created (leaves
	// are 0; the k-th merge gets height k).
	Height int
	// Parent is set after tree construction (nil for the root).
	Parent *Node
}

// IsLeaf reports whether the node is a single-qubit leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Size returns the number of qubits in the community.
func (n *Node) Size() int { return len(n.Qubits) }

// Contains reports whether qubit q belongs to this community.
func (n *Node) Contains(q int) bool {
	i := sort.SearchInts(n.Qubits, q)
	return i < len(n.Qubits) && n.Qubits[i] == q
}

// MaxRedundantQubits returns the paper's "maximum redundant qubits" of
// the node: node.n_qubits − (1 + max(left.n_qubits, right.n_qubits)).
// It is 0 for leaves.
func (n *Node) MaxRedundantQubits() int {
	if n.IsLeaf() {
		return 0
	}
	m := n.Left.Size()
	if r := n.Right.Size(); r > m {
		m = r
	}
	return n.Size() - (1 + m)
}

// Tree is the hierarchy tree over a device's qubits.
type Tree struct {
	Root   *Node
	Leaves []*Node // Leaves[q] is the leaf node of qubit q
	// Omega is the reward weight the tree was built with.
	Omega float64
	// nodes in creation order (leaves first, then merges).
	nodes []*Node
}

// Nodes returns every node of the tree in creation order (leaves first).
func (t *Tree) Nodes() []*Node { return t.nodes }

// AvgRedundantQubits returns the mean of MaxRedundantQubits over the
// internal (merge) nodes of the tree — the y-axis of Figure 9.
func (t *Tree) AvgRedundantQubits() float64 {
	sum, cnt := 0, 0
	for _, n := range t.nodes {
		if !n.IsLeaf() {
			sum += n.MaxRedundantQubits()
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return float64(sum) / float64(cnt)
}

// BuildCached returns the hierarchy tree for the device's current
// calibration, building it at most once per (calibration version, ω)
// through the device's artifact cache. Concurrent callers share one
// build; the returned tree is shared and must be treated as read-only
// (Build's output is never mutated by the partitioner). ApplyCalibration
// or Device.InvalidateArtifacts retire the cached tree, matching the
// paper's build-once-per-calibration-cycle policy.
func BuildCached(d *arch.Device, omega float64) *Tree {
	return d.Artifact("community/tree", omega, func() any {
		return Build(d, omega)
	}).(*Tree)
}

// Build runs Algorithm 1: starting from one community per qubit, it
// repeatedly merges the pair of communities with the maximum reward
// F = Q_merged − Q_origin + ω·E·V, where E is the mean CNOT reliability
// of the between-community links and V the mean readout reliability of
// the union's qubits. Only pairs connected by at least one coupling link
// are merged while any exist; disconnected remainders (possible on
// devices with isolated regions) are merged last with E = 0.
func Build(d *arch.Device, omega float64) *Tree {
	n := d.NumQubits()
	t := &Tree{Omega: omega}
	t.Leaves = make([]*Node, n)
	comms := make([]*Node, n) // live community per index; nil when merged away
	for q := 0; q < n; q++ {
		leaf := &Node{Qubits: []int{q}}
		t.Leaves[q] = leaf
		comms[q] = leaf
		t.nodes = append(t.nodes, leaf)
	}
	// Community membership for modularity bookkeeping.
	commOf := make([]int, n)
	for q := range commOf {
		commOf[q] = q
	}
	m := float64(d.Coupling.M())
	if d.Coupling.M() == 0 {
		m = 1 // degenerate single-qubit devices
	}

	// e[i][j]: fraction of edges with one endpoint in community i and
	// the other in j (i<=j stored once); a[i]: fraction of edge ends in i.
	eFrac := map[[2]int]float64{}
	aFrac := make([]float64, n)
	for _, ed := range d.Coupling.Edges() {
		i, j := commOf[ed.U], commOf[ed.V]
		if i > j {
			i, j = j, i
		}
		eFrac[[2]int{i, j}] += 1 / m
		aFrac[i] += 1 / (2 * m)
		aFrac[j] += 1 / (2 * m)
	}

	live := n
	for step := 1; live > 1; step++ {
		bi, bj, bestF := -1, -1, math.Inf(-1)
		connectedPair := false
		for i := 0; i < n; i++ {
			if comms[i] == nil {
				continue
			}
			for j := i + 1; j < n; j++ {
				if comms[j] == nil {
					continue
				}
				between, linked := eFrac[[2]int{i, j}]
				if !linked && connectedPair {
					continue // prefer connected merges
				}
				// between is in units of (edges between)/m = 2·e_ij,
				// so ΔQ = 2(e_ij − a_i·a_j) = between − 2·a_i·a_j.
				deltaQ := between - 2*aFrac[i]*aFrac[j]
				f := deltaQ + omega*rewardEV(d, comms[i], comms[j])
				if between > 0 && !connectedPair {
					// First connected pair found: reset the search to
					// connected pairs only.
					connectedPair = true
					bi, bj, bestF = i, j, f
					continue
				}
				if (between > 0) == connectedPair && f > bestF {
					bi, bj, bestF = i, j, f
				}
			}
		}
		if bi < 0 {
			break
		}
		merged := &Node{
			Qubits: mergeSorted(comms[bi].Qubits, comms[bj].Qubits),
			Left:   comms[bi],
			Right:  comms[bj],
			Height: step,
		}
		comms[bi].Parent = merged
		comms[bj].Parent = merged
		t.nodes = append(t.nodes, merged)
		// Fold j into i for the modularity bookkeeping.
		for k := 0; k < n; k++ {
			if k == bi || k == bj || comms[k] == nil {
				continue
			}
			key := func(a, b int) [2]int {
				if a > b {
					a, b = b, a
				}
				return [2]int{a, b}
			}
			eFrac[key(bi, k)] += eFrac[key(bj, k)]
			delete(eFrac, key(bj, k))
		}
		eFrac[[2]int{bi, bi}] += eFrac[[2]int{bj, bj}] + eFrac[[2]int{bi, bj}]
		delete(eFrac, [2]int{bi, bj})
		delete(eFrac, [2]int{bj, bj})
		aFrac[bi] += aFrac[bj]
		aFrac[bj] = 0
		comms[bi] = merged
		comms[bj] = nil
		live--
	}
	for _, c := range comms {
		if c != nil {
			t.Root = c
			break
		}
	}
	return t
}

// rewardEV computes E·V for a candidate merge: E is the average CNOT
// reliability over the links between the two communities (0 if none),
// V the average readout reliability over the union's qubits.
func rewardEV(d *arch.Device, a, b *Node) float64 {
	var relSum float64
	links := 0
	for _, qa := range a.Qubits {
		for _, nb := range d.Coupling.Neighbors(qa) {
			if b.Contains(nb) {
				relSum += 1 - d.CNOTError(qa, nb)
				links++
			}
		}
	}
	if links == 0 {
		return 0
	}
	e := relSum / float64(links)
	var roSum float64
	for _, q := range a.Qubits {
		roSum += 1 - d.ReadoutErr[q]
	}
	for _, q := range b.Qubits {
		roSum += 1 - d.ReadoutErr[q]
	}
	v := roSum / float64(len(a.Qubits)+len(b.Qubits))
	return e * v
}

func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Modularity returns Newman's Q for a partition of the device's qubits
// into the given groups: Q = Σ_i (e_ii − a_i²).
func Modularity(d *arch.Device, groups [][]int) float64 {
	m := float64(d.Coupling.M())
	if d.Coupling.M() == 0 {
		return 0
	}
	groupOf := map[int]int{}
	for gi, g := range groups {
		for _, q := range g {
			groupOf[q] = gi
		}
	}
	eii := make([]float64, len(groups))
	ai := make([]float64, len(groups))
	for _, ed := range d.Coupling.Edges() {
		gu, uok := groupOf[ed.U]
		gv, vok := groupOf[ed.V]
		if uok {
			ai[gu] += 1 / (2 * m)
		}
		if vok {
			ai[gv] += 1 / (2 * m)
		}
		if uok && vok && gu == gv {
			eii[gu] += 1 / m
		}
	}
	q := 0.0
	for i := range groups {
		q += eii[i] - ai[i]*ai[i]
	}
	return q
}

// Dendrogram renders the tree as an indented text diagram (for the
// chip-explorer example and Figure 8 checks).
func (t *Tree) Dendrogram() string {
	var b []byte
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		for i := 0; i < depth; i++ {
			b = append(b, ' ', ' ')
		}
		if n.IsLeaf() {
			b = append(b, fmt.Sprintf("Q%d\n", n.Qubits[0])...)
			return
		}
		b = append(b, fmt.Sprintf("%v (merge %d)\n", n.Qubits, n.Height)...)
		rec(n.Left, depth+1)
		rec(n.Right, depth+1)
	}
	if t.Root != nil {
		rec(t.Root, 0)
	}
	return string(b)
}

// MergeOrder returns, for each internal node in creation order, the
// qubit sets that were merged (left, right). Tests use it to check
// Figure 8's merge sequence.
func (t *Tree) MergeOrder() [][2][]int {
	var out [][2][]int
	for _, n := range t.nodes {
		if !n.IsLeaf() {
			out = append(out, [2][]int{n.Left.Qubits, n.Right.Qubits})
		}
	}
	return out
}

// OmegaSweep builds a tree per ω value over each calibration day and
// returns the mean AvgRedundantQubits per ω — the Figure 9 series.
func OmegaSweep(d *arch.Device, days []arch.Calibration, omegas []float64) []float64 {
	out := make([]float64, len(omegas))
	// Preserve the device's current calibration.
	saved := arch.Calibration{
		CNOTErr:    map[graph.Edge]float64{},
		ReadoutErr: append([]float64(nil), d.ReadoutErr...),
		Gate1Err:   append([]float64(nil), d.Gate1Err...),
	}
	for e, v := range d.CNOTErr {
		saved.CNOTErr[e] = v
	}
	defer arch.ApplyCalibration(d, saved)

	for oi, omega := range omegas {
		sum := 0.0
		for _, day := range days {
			arch.ApplyCalibration(d, day)
			sum += Build(d, omega).AvgRedundantQubits()
		}
		out[oi] = sum / float64(len(days))
	}
	return out
}

// Knee returns the index of the knee point of a decreasing series using
// the max-distance-to-chord method: the point farthest from the straight
// line joining the first and last samples. The paper picks ω at the knee
// of the redundant-qubits curve (ω = 0.95 on IBMQ16, 0.40 on IBMQ50).
func Knee(xs, ys []float64) int {
	if len(xs) != len(ys) || len(xs) < 3 {
		return 0
	}
	x0, y0 := xs[0], ys[0]
	x1, y1 := xs[len(xs)-1], ys[len(ys)-1]
	dx, dy := x1-x0, y1-y0
	norm := math.Hypot(dx, dy)
	if fp.Zero(norm) {
		return 0
	}
	best, bestDist := 0, -1.0
	for i := range xs {
		// Perpendicular distance from (xs[i], ys[i]) to the chord.
		dist := math.Abs(dy*xs[i]-dx*ys[i]+x1*y0-y1*x0) / norm
		if dist > bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}
