package community

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/graph"
)

func TestBuildCoversAllQubits(t *testing.T) {
	d := arch.IBMQ16(0)
	tr := Build(d, 0.95)
	if tr.Root == nil {
		t.Fatal("no root")
	}
	if got := tr.Root.Size(); got != d.NumQubits() {
		t.Fatalf("root size = %d, want %d", got, d.NumQubits())
	}
	want := make([]int, d.NumQubits())
	for i := range want {
		want[i] = i
	}
	if !reflect.DeepEqual(tr.Root.Qubits, want) {
		t.Fatalf("root qubits = %v", tr.Root.Qubits)
	}
	// n leaves + n-1 merges.
	if got := len(tr.Nodes()); got != 2*d.NumQubits()-1 {
		t.Fatalf("nodes = %d, want %d", got, 2*d.NumQubits()-1)
	}
}

func TestTreeStructureInvariants(t *testing.T) {
	d := arch.IBMQ50(3)
	tr := Build(d, 0.4)
	for _, n := range tr.Nodes() {
		if n.IsLeaf() {
			if n.Size() != 1 {
				t.Fatalf("leaf with %d qubits", n.Size())
			}
			continue
		}
		// Children partition the parent.
		merged := append(append([]int(nil), n.Left.Qubits...), n.Right.Qubits...)
		sort.Ints(merged)
		if !reflect.DeepEqual(merged, n.Qubits) {
			t.Fatalf("node %v != union of children %v", n.Qubits, merged)
		}
		if n.Left.Parent != n || n.Right.Parent != n {
			t.Fatal("child parent pointers must point at the merge node")
		}
		// Communities stay connected when merges follow coupling links.
		if !d.Coupling.SubsetConnected(n.Qubits) {
			t.Fatalf("community %v is not connected", n.Qubits)
		}
	}
}

func TestLeavesIndexedByQubit(t *testing.T) {
	d := arch.London()
	tr := Build(d, 0.95)
	for q := 0; q < d.NumQubits(); q++ {
		leaf := tr.Leaves[q]
		if !leaf.IsLeaf() || leaf.Qubits[0] != q {
			t.Fatalf("leaf %d = %v", q, leaf.Qubits)
		}
	}
}

// TestLondonDendrogram reproduces Figure 8: on IBM Q London, Q0 and Q1
// merge first; then Q2 joins {0,1} even though the Q1-Q3 link has a
// lower CNOT error (topology/modularity wins); then Q3-Q4; then the root.
func TestLondonDendrogram(t *testing.T) {
	d := arch.London()
	tr := Build(d, 0.95)
	order := tr.MergeOrder()
	if len(order) != 4 {
		t.Fatalf("merges = %d, want 4", len(order))
	}
	first := mergedSet(order[0])
	if !reflect.DeepEqual(first, []int{0, 1}) {
		t.Fatalf("first merge = %v, want {0,1}", first)
	}
	second := mergedSet(order[1])
	third := mergedSet(order[2])
	// Figure 8 step (ii): Q2 joins {0,1} (not Q3, despite Q1-Q3's lower
	// CNOT error) and Q3-Q4 merge; both happen before the root. Their
	// relative order does not change the tree shape.
	want012, want34 := []int{0, 1, 2}, []int{3, 4}
	ok := (reflect.DeepEqual(second, want012) && reflect.DeepEqual(third, want34)) ||
		(reflect.DeepEqual(second, want34) && reflect.DeepEqual(third, want012))
	if !ok {
		t.Fatalf("middle merges = %v, %v; want {0,1,2} and {3,4}", second, third)
	}
	root := mergedSet(order[3])
	if !reflect.DeepEqual(root, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("root merge = %v", root)
	}
}

func mergedSet(pair [2][]int) []int {
	out := append(append([]int(nil), pair[0]...), pair[1]...)
	sort.Ints(out)
	return out
}

func TestOmegaZeroIsTopologyOnly(t *testing.T) {
	// With ω = 0 the reward ignores calibration entirely: two devices
	// with identical topology but different calibration must produce
	// identical merge orders.
	a, b := arch.IBMQ16(1), arch.IBMQ16(99)
	ta, tb := Build(a, 0), Build(b, 0)
	oa, ob := ta.MergeOrder(), tb.MergeOrder()
	if len(oa) != len(ob) {
		t.Fatal("merge counts differ")
	}
	for i := range oa {
		if !reflect.DeepEqual(mergedSet(oa[i]), mergedSet(ob[i])) {
			t.Fatalf("merge %d differs under omega=0: %v vs %v", i, oa[i], ob[i])
		}
	}
}

func TestLargeOmegaFollowsErrorRate(t *testing.T) {
	// With a huge ω, the first merge must be the most reliable pair
	// (link reliability x readout reliability dominates modularity).
	d := arch.London()
	tr := Build(d, 1000)
	first := mergedSet(tr.MergeOrder()[0])
	if !reflect.DeepEqual(first, []int{0, 1}) {
		t.Fatalf("first merge under huge omega = %v, want the most reliable link {0,1}", first)
	}
}

func TestMaxRedundantQubits(t *testing.T) {
	leaf := &Node{Qubits: []int{0}}
	if leaf.MaxRedundantQubits() != 0 {
		t.Fatal("leaf redundancy must be 0")
	}
	// Balanced merge of 2+3 -> 5: 5 - (1+3) = 1.
	n := &Node{
		Qubits: []int{0, 1, 2, 3, 4},
		Left:   &Node{Qubits: []int{0, 1}},
		Right:  &Node{Qubits: []int{2, 3, 4}},
	}
	if got := n.MaxRedundantQubits(); got != 1 {
		t.Fatalf("redundant = %d, want 1", got)
	}
	// Chain merge 1+4 -> 5: 5 - (1+4) = 0.
	n2 := &Node{
		Qubits: []int{0, 1, 2, 3, 4},
		Left:   &Node{Qubits: []int{0}},
		Right:  &Node{Qubits: []int{1, 2, 3, 4}},
	}
	if got := n2.MaxRedundantQubits(); got != 0 {
		t.Fatalf("chain redundant = %d, want 0", got)
	}
}

func TestRedundantQubitsDecreaseWithOmega(t *testing.T) {
	// Paper §IV-A3: increasing ω degrades the tree toward chain merges,
	// reducing average redundant qubits.
	d := arch.IBMQ16(0)
	days := arch.CalibrationSeries(d, 1, 5)
	omegas := []float64{0, 2.5}
	ys := OmegaSweep(d, days, omegas)
	if ys[1] >= ys[0] {
		t.Fatalf("avg redundant qubits should drop from omega 0 (%v) to 2.5 (%v)", ys[0], ys[1])
	}
}

func TestOmegaSweepRestoresCalibration(t *testing.T) {
	d := arch.IBMQ16(0)
	before := append([]float64(nil), d.ReadoutErr...)
	days := arch.CalibrationSeries(d, 7, 3)
	OmegaSweep(d, days, []float64{0, 1})
	if !reflect.DeepEqual(before, d.ReadoutErr) {
		t.Fatal("OmegaSweep must restore the device calibration")
	}
}

func TestModularity(t *testing.T) {
	// Two triangles joined by one edge: strong community structure.
	d := arch.Grid(1, 2, 0.02, 0.02) // placeholder device; build our own graph below
	_ = d
	dev := twoTriangles()
	groups := [][]int{{0, 1, 2}, {3, 4, 5}}
	q := Modularity(dev, groups)
	// e11 = e22 = 3/7, a1 = a2 = 1/2 -> Q = 2*(3/7 - 1/4) = 5/14.
	want := 2 * (3.0/7.0 - 0.25)
	if math.Abs(q-want) > 1e-12 {
		t.Fatalf("Q = %v, want %v", q, want)
	}
	// Everything in one group: Q = 1 - 1 = 0.
	if q := Modularity(dev, [][]int{{0, 1, 2, 3, 4, 5}}); math.Abs(q) > 1e-12 {
		t.Fatalf("single-group Q = %v, want 0", q)
	}
}

// twoTriangles builds a 6-qubit device: triangle {0,1,2} and {3,4,5}
// bridged by 2-3.
func twoTriangles() *arch.Device {
	return customDevice(6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}})
}

func customDevice(n int, edges [][2]int) *arch.Device {
	g := graph.New(n)
	errs := map[graph.Edge]float64{}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
		errs[graph.NewEdge(e[0], e[1])] = 0.02
	}
	d := &arch.Device{
		Name:       "custom",
		Coupling:   g,
		CNOTErr:    errs,
		ReadoutErr: make([]float64, n),
		Gate1Err:   make([]float64, n),
	}
	for q := 0; q < n; q++ {
		d.ReadoutErr[q] = 0.02
		d.Gate1Err[q] = 0.002
	}
	return d
}

func TestKnee(t *testing.T) {
	// A curve that drops fast then flattens: knee near the bend.
	xs := []float64{0, 0.5, 1, 1.5, 2, 2.5}
	ys := []float64{10, 4, 2, 1.8, 1.7, 1.6}
	k := Knee(xs, ys)
	if k != 1 && k != 2 {
		t.Fatalf("knee index = %d, want 1 or 2", k)
	}
	if Knee([]float64{0, 1}, []float64{1, 0}) != 0 {
		t.Fatal("short series must return 0")
	}
	if Knee(xs, ys[:3]) != 0 {
		t.Fatal("mismatched lengths must return 0")
	}
}

func TestDendrogramRender(t *testing.T) {
	d := arch.London()
	s := Build(d, 0.95).Dendrogram()
	if s == "" {
		t.Fatal("empty dendrogram")
	}
	for _, want := range []string{"Q0", "Q4", "merge"} {
		if !strings.Contains(s, want) {
			t.Fatalf("dendrogram missing %q:\n%s", want, s)
		}
	}
}
