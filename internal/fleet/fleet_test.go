package fleet

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/fp"
)

// testFleet is a synthetic 3-chip fleet with deliberately skewed
// calibrations and load:
//
//   - "alder":  small (5q), pristine calibration, short queue
//   - "birch":  mid (16q), mediocre calibration, empty and idle
//   - "cedar":  large (27q), noisy calibration, long busy queue but
//     barely any cumulative work per qubit
func testFleet() []Candidate {
	return []Candidate{
		{
			Chip: Chip{Name: "alder", Qubits: 5, MeanCNOTErr: 0.005, MeanReadoutErr: 0.01},
			Load: Load{QueueDepth: 2, Busy: true, EWMAServiceSeconds: 1.5, Dispatched: 40},
		},
		{
			Chip: Chip{Name: "birch", Qubits: 16, MeanCNOTErr: 0.02, MeanReadoutErr: 0.04},
			Load: Load{QueueDepth: 0, Busy: false, EWMAServiceSeconds: 2.0, Dispatched: 8},
		},
		{
			Chip: Chip{Name: "cedar", Qubits: 27, MeanCNOTErr: 0.06, MeanReadoutErr: 0.09},
			Load: Load{QueueDepth: 6, Busy: true, EWMAServiceSeconds: 3.0, Dispatched: 3},
		},
	}
}

func mustPolicy(t *testing.T, name string) Policy {
	t.Helper()
	p, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPolicyScoring pins each policy's choice on the skewed fleet.
func TestPolicyScoring(t *testing.T) {
	small := Job{Qubits: 3, CNOTs: 10, Gate1s: 12}
	wide := Job{Qubits: 20, CNOTs: 30, Gate1s: 40}
	cases := []struct {
		policy string
		job    Job
		want   string
		reason string
	}{
		// birch is idle; alder has ~4.5s of queue, cedar ~21s.
		{"speed", small, "birch", "idle chip beats queued ones"},
		// alder's calibration dominates regardless of its queue.
		{"fidelity", small, "alder", "lowest error rates win"},
		// per-qubit load: alder 42/5=8.4, birch 8/16=0.5, cedar 9/27=0.33.
		{"fairness", small, "cedar", "least cumulative work per qubit"},
		// balanced: alder's fidelity edge (~0.1 in log domain) loses to
		// its 0.45 wait penalty; birch is idle and nearly as clean.
		{"balanced", small, "birch", "good calibration with no queue"},
		// only cedar can hold 20 qubits, whatever the policy says.
		{"speed", wide, "cedar", "capacity filter"},
		{"fidelity", wide, "cedar", "capacity filter"},
		{"fairness", wide, "cedar", "capacity filter"},
		{"balanced", wide, "cedar", "capacity filter"},
	}
	for _, tc := range cases {
		cands := testFleet()
		got := Pick(mustPolicy(t, tc.policy), cands, tc.job)
		if got < 0 {
			t.Fatalf("%s/%dq: no chip picked (%s)", tc.policy, tc.job.Qubits, tc.reason)
		}
		if name := cands[got].Chip.Name; name != tc.want {
			t.Errorf("%s/%dq: picked %s, want %s (%s)", tc.policy, tc.job.Qubits, name, tc.want, tc.reason)
		}
	}
}

// TestPickOrderIndependence permutes the candidate slice: the chosen
// chip (by name) must never depend on candidate order.
func TestPickOrderIndependence(t *testing.T) {
	job := Job{Qubits: 3, CNOTs: 8, Gate1s: 8}
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, name := range Names() {
		p := mustPolicy(t, name)
		base := testFleet()
		want := base[Pick(p, base, job)].Chip.Name
		for _, perm := range perms {
			shuffled := make([]Candidate, len(perm))
			for i, src := range perm {
				shuffled[i] = base[src]
			}
			got := Pick(p, shuffled, job)
			if shuffled[got].Chip.Name != want {
				t.Fatalf("%s: order %v picked %s, want %s", name, perm, shuffled[got].Chip.Name, want)
			}
		}
	}
}

// TestPickTieBreaksOnName gives two identical chips different names:
// the lexicographically smaller one must win from either position.
func TestPickTieBreaksOnName(t *testing.T) {
	chip := Chip{Qubits: 16, MeanCNOTErr: 0.01, MeanReadoutErr: 0.02}
	load := Load{QueueDepth: 1, EWMAServiceSeconds: 2}
	a, b := Candidate{Chip: chip, Load: load}, Candidate{Chip: chip, Load: load}
	a.Chip.Name, b.Chip.Name = "zeta", "alpha"
	job := Job{Qubits: 4, CNOTs: 5, Gate1s: 5}
	for _, name := range Names() {
		p := mustPolicy(t, name)
		for _, cands := range [][]Candidate{{a, b}, {b, a}} {
			got := Pick(p, cands, job)
			if cands[got].Chip.Name != "alpha" {
				t.Fatalf("%s: tie broke to %s, want alpha", name, cands[got].Chip.Name)
			}
		}
	}
}

// TestPickBreakerFiltering: open-breaker chips are skipped while any
// healthy chip fits, but remain eligible when every fitting chip is
// open, and a job too wide for every chip yields -1.
func TestPickBreakerFiltering(t *testing.T) {
	p := mustPolicy(t, "speed")
	cands := testFleet()
	job := Job{Qubits: 3}

	// birch (the speed winner) trips: the pick must move on.
	cands[1].Load.BreakerOpen = true
	if got := Pick(p, cands, job); cands[got].Chip.Name != "alder" {
		t.Fatalf("open breaker not avoided: picked %s", cands[got].Chip.Name)
	}
	// Everything trips: the best open chip still takes the job.
	for i := range cands {
		cands[i].Load.BreakerOpen = true
	}
	if got := Pick(p, cands, job); cands[got].Chip.Name != "birch" {
		t.Fatalf("all-open fleet: picked %s, want birch", cands[got].Chip.Name)
	}
	// A 40-qubit job fits nowhere.
	if got := Pick(p, testFleet(), Job{Qubits: 40}); got != -1 {
		t.Fatalf("oversized job picked chip %d, want -1", got)
	}
	if got := Pick(p, nil, job); got != -1 {
		t.Fatalf("empty fleet picked %d, want -1", got)
	}
}

// TestPickSkipsNaNScores: a candidate whose score is NaN must be
// disqualified, not silently win or lose a comparison.
func TestPickSkipsNaNScores(t *testing.T) {
	cands := []Candidate{
		{Chip: Chip{Name: "bad", Qubits: 8, MeanCNOTErr: math.NaN()}},
		{Chip: Chip{Name: "good", Qubits: 8, MeanCNOTErr: 0.01, MeanReadoutErr: 0.01}},
	}
	got := Pick(mustPolicy(t, "fidelity"), cands, Job{Qubits: 2, CNOTs: 3})
	if got != 1 {
		t.Fatalf("NaN-scored candidate not skipped: got %d", got)
	}
}

func TestNamesAndNew(t *testing.T) {
	want := []string{"balanced", "fairness", "fidelity", "speed"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, n := range want {
		p, err := New(n)
		if err != nil || p.Name() != n {
			t.Fatalf("New(%q) = %v, %v", n, p, err)
		}
	}
	if _, err := New("nosuch"); err == nil {
		t.Fatal("unknown policy must error")
	}
}

// TestChipOf checks the calibration summary against a real device.
func TestChipOf(t *testing.T) {
	d := arch.IBMQ16(3)
	c := ChipOf(d)
	if c.Name != d.Name || c.Qubits != d.NumQubits() {
		t.Fatalf("ChipOf identity mismatch: %+v", c)
	}
	if !fp.Eq(c.MeanCNOTErr, d.AvgCNOTErr()) {
		t.Fatalf("MeanCNOTErr = %v, want %v", c.MeanCNOTErr, d.AvgCNOTErr())
	}
	sum := 0.0
	for _, r := range d.ReadoutErr {
		sum += r
	}
	if !fp.Eq(c.MeanReadoutErr, sum/float64(d.NumQubits())) {
		t.Fatalf("MeanReadoutErr = %v", c.MeanReadoutErr)
	}
	if c.MeanCNOTErr <= 0 || c.MeanReadoutErr <= 0 {
		t.Fatalf("calibration summary should be positive: %+v", c)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 || e.Samples() != 0 {
		t.Fatalf("fresh EWMA: %v/%d", e.Value(), e.Samples())
	}
	e.Observe(4)
	if !fp.Eq(e.Value(), 4) {
		t.Fatalf("first sample should seed the value, got %v", e.Value())
	}
	e.Observe(8)
	if !fp.Eq(e.Value(), 6) {
		t.Fatalf("0.5-EWMA of 4,8 = %v, want 6", e.Value())
	}
	e.Observe(math.NaN())
	e.Observe(math.Inf(1))
	if !fp.Eq(e.Value(), 6) || e.Samples() != 2 {
		t.Fatalf("non-finite samples must be ignored: %v/%d", e.Value(), e.Samples())
	}
	// Out-of-range alpha falls back to the default rather than wedging.
	bad := NewEWMA(-1)
	bad.Observe(10)
	bad.Observe(0)
	if v := bad.Value(); v <= 0 || v >= 10 {
		t.Fatalf("defaulted alpha should smooth, got %v", v)
	}
}

// TestWaitEstimate pins the unit prior: with no service-time history
// the estimate is the queue depth itself.
func TestWaitEstimate(t *testing.T) {
	if got := waitEstimate(Load{QueueDepth: 3}); !fp.Eq(got, 3) {
		t.Fatalf("no-history wait = %v, want 3", got)
	}
	if got := waitEstimate(Load{QueueDepth: 2, Busy: true, EWMAServiceSeconds: 1.5}); !fp.Eq(got, 4.5) {
		t.Fatalf("wait = %v, want 4.5", got)
	}
}
