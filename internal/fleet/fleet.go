// Package fleet is the multi-chip dispatcher core: given a pool of
// registered devices with live load information, it scores every chip
// that can hold a job under a pluggable allocation policy and picks
// the best one deterministically. The policy set mirrors the
// allocation-strategies map of cloud-queue simulators (QSRA's QPU
// scheduling + resource allocation formulation): "speed" minimizes
// estimated waiting time, "fidelity" maximizes a calibration-derived
// success estimate, "fairness" equalizes per-qubit cumulative load,
// and "balanced" blends all three. Both the live service
// (internal/service) and the offline cloud simulator
// (internal/cloudsim) route through this package, so dispatch
// decisions agree between simulation and production.
//
// Everything here is a pure function of its inputs — no clocks, no
// global randomness — so a dispatch trace is reproducible from the job
// stream alone. Ties are broken by ascending chip name, never by
// candidate order.
package fleet

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/arch"
)

// Chip is the static, calibration-derived view of one device: the
// facts a policy may consult that do not change between calibration
// pushes. Build it with ChipOf.
type Chip struct {
	// Name identifies the chip; it is the deterministic tie-breaker,
	// so names must be unique within a fleet.
	Name string `json:"name"`
	// Qubits is the physical qubit count (capacity filter and
	// headroom denominator).
	Qubits int `json:"qubits"`
	// MeanCNOTErr is the mean two-qubit gate error over all links.
	MeanCNOTErr float64 `json:"mean_cnot_err"`
	// MeanReadoutErr is the mean measurement error over all qubits.
	MeanReadoutErr float64 `json:"mean_readout_err"`
}

// ChipOf summarizes an arch device into the dispatcher's chip view.
func ChipOf(d *arch.Device) Chip {
	n := d.NumQubits()
	ro := 0.0
	for q := 0; q < n; q++ {
		ro += d.ReadoutErr[q]
	}
	if n > 0 {
		ro /= float64(n)
	}
	return Chip{
		Name:           d.Name,
		Qubits:         n,
		MeanCNOTErr:    d.AvgCNOTErr(),
		MeanReadoutErr: ro,
	}
}

// Load is the live state of one chip at dispatch time, supplied by
// whoever owns the queues (the service under its lock, the simulator
// from its event loop).
type Load struct {
	// QueueDepth is how many dispatched jobs are waiting for the chip.
	QueueDepth int `json:"queue_depth"`
	// Busy reports whether a batch is executing right now (counts as
	// one extra queued job in wait estimates).
	Busy bool `json:"busy"`
	// EWMAServiceSeconds is the smoothed per-job service time; 0 means
	// no sample yet (policies substitute a unit prior so empty-history
	// chips still rank by queue depth).
	EWMAServiceSeconds float64 `json:"ewma_service_seconds"`
	// Dispatched is the cumulative number of jobs routed to the chip.
	Dispatched int64 `json:"dispatched"`
	// BreakerOpen marks a chip whose circuit breaker is open or
	// half-open: Pick avoids it whenever any healthy chip fits.
	BreakerOpen bool `json:"breaker_open"`
}

// Job is what the dispatcher knows about a submission: its width and
// gate counts (the inputs of the calibration-derived success
// estimate).
type Job struct {
	Qubits int
	CNOTs  int
	Gate1s int
}

// Candidate pairs a chip with its live load for one dispatch decision.
type Candidate struct {
	Chip Chip
	Load Load
}

// Policy scores candidate chips for a job. Higher is better; scores
// need only be comparable within one Pick call. Implementations must
// be pure functions of (Candidate, Job) so dispatch is reproducible.
type Policy interface {
	Name() string
	Score(c Candidate, j Job) float64
}

// ewmaOrUnit substitutes a one-second prior when the chip has no
// service-time history, so wait estimates stay proportional to queue
// depth instead of collapsing to zero.
func ewmaOrUnit(l Load) float64 {
	if l.EWMAServiceSeconds > 0 {
		return l.EWMAServiceSeconds
	}
	return 1
}

// waitEstimate is the expected seconds until the chip could start the
// job: queued jobs (plus the one executing) times the smoothed per-job
// service time.
func waitEstimate(l Load) float64 {
	depth := float64(l.QueueDepth)
	if l.Busy {
		depth++
	}
	return depth * ewmaOrUnit(l)
}

// logFidelity is the calibration-derived success estimate in log
// domain (≤ 0, higher is better): each of the job's CNOTs survives
// with the chip's mean link reliability and each measured qubit reads
// out with the mean readout reliability. Log domain keeps wide
// circuits from underflowing to an untie-breakable 0.
func logFidelity(c Chip, j Job) float64 {
	return float64(j.CNOTs)*math.Log1p(-clampErr(c.MeanCNOTErr)) +
		float64(j.Qubits)*math.Log1p(-clampErr(c.MeanReadoutErr))
}

// clampErr keeps an error rate inside [0, 1-1e-9] so Log1p stays
// finite even on a pathological calibration.
func clampErr(e float64) float64 {
	if e < 0 {
		return 0
	}
	if e > 1-1e-9 {
		return 1 - 1e-9
	}
	return e
}

// perQubitLoad is the fairness measure: cumulative dispatched plus
// currently queued jobs, normalized by capacity so a 50-qubit chip is
// expected to absorb ten times the work of a 5-qubit one.
func perQubitLoad(c Candidate) float64 {
	return (float64(c.Load.Dispatched) + float64(c.Load.QueueDepth)) / float64(c.Chip.Qubits)
}

// speedPolicy routes to the chip with the shortest estimated wait.
type speedPolicy struct{}

func (speedPolicy) Name() string { return "speed" }
func (speedPolicy) Score(c Candidate, j Job) float64 {
	return -waitEstimate(c.Load)
}

// fidelityPolicy routes to the chip where the job's estimated success
// probability is highest, ignoring load entirely.
type fidelityPolicy struct{}

func (fidelityPolicy) Name() string { return "fidelity" }
func (fidelityPolicy) Score(c Candidate, j Job) float64 {
	return logFidelity(c.Chip, j)
}

// fairnessPolicy equalizes cumulative per-qubit load across the
// fleet, so small chips are not starved and large ones not idled.
type fairnessPolicy struct{}

func (fairnessPolicy) Name() string { return "fairness" }
func (fairnessPolicy) Score(c Candidate, j Job) float64 {
	return -perQubitLoad(c)
}

// Balanced-policy blend weights (see DESIGN §12): the wait term is
// scaled so one smoothed service time of queueing outweighs typical
// calibration spreads (~1e-2 in log-fidelity), and the fairness term
// acts only as a mild long-run equalizer.
const (
	balancedWaitWeight = 0.1
	balancedFairWeight = 0.01
)

// balancedPolicy blends fidelity, wait, and fairness: route to a good
// chip, but not one with a long queue, and spread sustained load.
type balancedPolicy struct{}

func (balancedPolicy) Name() string { return "balanced" }
func (balancedPolicy) Score(c Candidate, j Job) float64 {
	return logFidelity(c.Chip, j) -
		balancedWaitWeight*waitEstimate(c.Load) -
		balancedFairWeight*perQubitLoad(c)
}

// policies is the allocation-strategies map: selectable by name, like
// the QCloud simulator exemplar.
var policies = map[string]func() Policy{
	"speed":    func() Policy { return speedPolicy{} },
	"fidelity": func() Policy { return fidelityPolicy{} },
	"fairness": func() Policy { return fairnessPolicy{} },
	"balanced": func() Policy { return balancedPolicy{} },
}

// Names lists the registered policy names, sorted.
func Names() []string {
	out := make([]string, 0, len(policies))
	for n := range policies {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// New returns the policy registered under name, or an error listing
// the valid names.
func New(name string) (Policy, error) {
	mk, ok := policies[name]
	if !ok {
		return nil, fmt.Errorf("fleet: unknown policy %q (valid: %v)", name, Names())
	}
	return mk(), nil
}

// Pick returns the index of the best candidate for the job, or -1 when
// no chip can hold it. Selection is deterministic and independent of
// candidate order:
//
//  1. chips with fewer qubits than the job needs are excluded;
//  2. breaker-open chips are excluded while any healthy chip fits
//     (when every fitting chip is open, all of them stay eligible —
//     the job must land somewhere);
//  3. the highest policy score wins, with exact ties broken by
//     ascending chip name. A NaN score disqualifies its candidate.
func Pick(p Policy, cands []Candidate, j Job) int {
	healthy := false
	for _, c := range cands {
		if c.Chip.Qubits >= j.Qubits && !c.Load.BreakerOpen {
			healthy = true
			break
		}
	}
	best := -1
	var bestScore float64
	for i, c := range cands {
		if c.Chip.Qubits < j.Qubits {
			continue
		}
		if c.Load.BreakerOpen && healthy {
			continue
		}
		score := p.Score(c, j)
		if math.IsNaN(score) {
			continue
		}
		switch {
		case best < 0:
		case score > bestScore:
		case score < bestScore:
			continue
		case c.Chip.Name < cands[best].Chip.Name:
			// Exact score tie: the lexicographically smaller name wins,
			// whatever order the candidates arrived in.
		default:
			continue
		}
		best, bestScore = i, score
	}
	return best
}

// EWMA is an exponentially weighted moving average over service
// times. The zero value is unusable; use NewEWMA. It is not
// concurrency-safe: callers serialize access (the service updates it
// under its own lock).
type EWMA struct {
	alpha float64
	value float64
	n     int64
}

// NewEWMA returns an average with the given smoothing factor in
// (0, 1]; the first observation seeds the value directly.
func NewEWMA(alpha float64) EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return EWMA{alpha: alpha}
}

// Observe folds one sample in. Non-finite samples are ignored so a
// poisoned measurement cannot wedge every future dispatch decision.
func (e *EWMA) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	if e.n == 0 {
		e.value = v
	} else {
		e.value = e.alpha*v + (1-e.alpha)*e.value
	}
	e.n++
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Samples returns how many observations have been folded in.
func (e *EWMA) Samples() int64 { return e.n }
