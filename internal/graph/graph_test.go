package graph

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func ladder(n int) *Graph {
	// Path graph 0-1-2-...-n-1.
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestNewEdgeNormalization(t *testing.T) {
	if NewEdge(3, 1) != (Edge{1, 3}) {
		t.Fatalf("NewEdge(3,1) = %v, want {1 3}", NewEdge(3, 1))
	}
	if NewEdge(1, 3) != NewEdge(3, 1) {
		t.Fatal("edge normalization must make order irrelevant")
	}
}

func TestEdgeOther(t *testing.T) {
	e := NewEdge(2, 7)
	if e.Other(2) != 7 || e.Other(7) != 2 {
		t.Fatalf("Other: got %d/%d", e.Other(2), e.Other(7))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other with non-endpoint must panic")
		}
	}()
	e.Other(5)
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1 after duplicate add", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatalf("degrees = %d,%d; want 1,1", g.Degree(0), g.Degree(1))
	}
}

func TestAddWeightedEdgeOverwrites(t *testing.T) {
	g := New(3)
	g.AddWeightedEdge(0, 1, 2.0)
	g.AddWeightedEdge(1, 0, 5.0)
	if w := g.Weight(0, 1); w != 5.0 {
		t.Fatalf("weight = %v, want 5.0", w)
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop must panic")
		}
	}()
	New(2).AddEdge(1, 1)
}

func TestHasEdgeOutOfRange(t *testing.T) {
	g := ladder(3)
	if g.HasEdge(-1, 0) || g.HasEdge(0, 99) || g.HasEdge(1, 1) {
		t.Fatal("out-of-range / self edges must report false")
	}
	if !g.HasEdge(1, 0) {
		t.Fatal("HasEdge must be order-insensitive")
	}
}

func TestBFSDistances(t *testing.T) {
	g := ladder(5)
	got := g.BFSDistances(0)
	want := []int{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BFS = %v, want %v", got, want)
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	d := g.BFSDistances(0)
	if d[2] != -1 || d[3] != -1 {
		t.Fatalf("unreachable distances = %v, want -1", d[2:])
	}
}

func TestAllPairsHopsSymmetric(t *testing.T) {
	g := New(6)
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {3, 4}, {4, 5}}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	d := g.AllPairsHops()
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if d[i][j] != d[j][i] {
				t.Fatalf("asymmetric distance d[%d][%d]=%d d[%d][%d]=%d", i, j, d[i][j], j, i, d[j][i])
			}
		}
	}
	if d[0][5] != 3 {
		t.Fatalf("d[0][5] = %d, want 3", d[0][5])
	}
}

func TestRestrictedHops(t *testing.T) {
	// Square 0-1-2-3-0; disallow vertex 1 so 0..2 must go via 3.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	allowed := []bool{true, false, true, true}
	d := g.RestrictedHops(allowed)
	if d[0][2] != 2 {
		t.Fatalf("restricted d[0][2] = %d, want 2 (via 3)", d[0][2])
	}
	if d[0][1] != -1 || d[1][0] != -1 {
		t.Fatal("distances to disallowed vertices must be -1")
	}
}

func TestRestrictedHopsWrongMaskLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong mask length must panic")
		}
	}()
	ladder(3).RestrictedHops([]bool{true})
}

func TestDijkstra(t *testing.T) {
	g := New(4)
	g.AddWeightedEdge(0, 1, 1)
	g.AddWeightedEdge(1, 2, 1)
	g.AddWeightedEdge(0, 2, 5)
	d := g.Dijkstra(0)
	if d[2] != 2 {
		t.Fatalf("dijkstra d[2] = %v, want 2", d[2])
	}
	if !math.IsInf(d[3], 1) {
		t.Fatalf("unreachable must be +Inf, got %v", d[3])
	}
}

func TestShortestPath(t *testing.T) {
	g := ladder(5)
	p := g.ShortestPath(0, 4)
	if !reflect.DeepEqual(p, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("path = %v", p)
	}
	if p := g.ShortestPath(2, 2); !reflect.DeepEqual(p, []int{2}) {
		t.Fatalf("trivial path = %v", p)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	if p := g.ShortestPath(0, 2); p != nil {
		t.Fatalf("path to unreachable = %v, want nil", p)
	}
}

func TestShortestPathDeterministicTieBreak(t *testing.T) {
	// Diamond: 0-1-3 and 0-2-3; lower-numbered neighbor wins.
	g := New(4)
	g.AddEdge(0, 2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	p := g.ShortestPath(0, 3)
	if !reflect.DeepEqual(p, []int{0, 1, 3}) {
		t.Fatalf("path = %v, want [0 1 3]", p)
	}
}

func TestConnected(t *testing.T) {
	if !New(0).Connected() {
		t.Fatal("empty graph is connected")
	}
	if !ladder(4).Connected() {
		t.Fatal("ladder must be connected")
	}
	g := New(3)
	g.AddEdge(0, 1)
	if g.Connected() {
		t.Fatal("graph with isolated vertex is not connected")
	}
}

func TestSubsetConnected(t *testing.T) {
	g := ladder(6)
	if !g.SubsetConnected([]int{1, 2, 3}) {
		t.Fatal("contiguous subset must be connected")
	}
	if g.SubsetConnected([]int{0, 2}) {
		t.Fatal("gap subset must be disconnected")
	}
	if !g.SubsetConnected(nil) || !g.SubsetConnected([]int{4}) {
		t.Fatal("empty and singleton subsets are connected")
	}
}

func TestComponents(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(3, 4)
	comps := g.Components()
	want := [][]int{{0, 1}, {2}, {3, 4}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("components = %v, want %v", comps, want)
	}
}

func TestInducedEdges(t *testing.T) {
	g := ladder(5)
	got := g.InducedEdges([]int{1, 2, 4})
	want := []Edge{{1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("induced = %v, want %v", got, want)
	}
}

func TestClone(t *testing.T) {
	g := ladder(4)
	c := g.Clone()
	c.AddEdge(0, 3)
	if g.HasEdge(0, 3) {
		t.Fatal("clone must not alias the original")
	}
	if c.M() != g.M()+1 {
		t.Fatalf("clone M = %d", c.M())
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New(4)
	g.AddEdge(2, 3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	es := g.Edges()
	want := []Edge{{0, 1}, {1, 2}, {2, 3}}
	if !reflect.DeepEqual(es, want) {
		t.Fatalf("edges = %v, want %v", es, want)
	}
}

// Property: in any connected random graph, BFS distances satisfy the
// triangle inequality along edges: |d(u) - d(v)| <= 1 for every edge.
func TestBFSEdgeLipschitzProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed % 8)
		if n < 0 {
			n = -n
		}
		n += 3
		g := New(n)
		for i := 0; i+1 < n; i++ {
			g.AddEdge(i, i+1)
		}
		// Add some chords deterministically from the seed.
		s := seed
		for k := 0; k < n; k++ {
			s = s*6364136223846793005 + 1442695040888963407
			u := int((s >> 33) % int64(n))
			v := int((s >> 13) % int64(n))
			if u < 0 {
				u = -u
			}
			if v < 0 {
				v = -v
			}
			if u != v {
				g.AddEdge(u%n, v%n)
			}
		}
		d := g.BFSDistances(0)
		for _, e := range g.Edges() {
			diff := d[e.U] - d[e.V]
			if diff < -1 || diff > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ShortestPath length equals BFS distance + 1 vertices.
func TestShortestPathLengthMatchesBFS(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed % 10)
		if n < 0 {
			n = -n
		}
		n += 4
		g := New(n)
		for i := 0; i+1 < n; i++ {
			g.AddEdge(i, i+1)
		}
		g.AddEdge(0, n-1) // ring
		d := g.BFSDistances(0)
		for v := 0; v < n; v++ {
			p := g.ShortestPath(0, v)
			if len(p) != d[v]+1 {
				return false
			}
			// Path must be a walk along edges.
			for i := 0; i+1 < len(p); i++ {
				if !g.HasEdge(p[i], p[i+1]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
