// Package graph provides small undirected-graph utilities used by the
// architecture model, the community-detection partitioner, and the
// routers: adjacency storage, BFS/Dijkstra shortest paths, connectivity
// checks, and subgraph extraction.
//
// Vertices are dense integers in [0, N). Edges are undirected and
// optionally weighted; parallel edges are collapsed.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Edge is an undirected edge between two vertices. The constructor
// normalizes it so that U <= V, which makes Edge usable as a map key.
type Edge struct {
	U, V int
}

// NewEdge returns the normalized edge {min(u,v), max(u,v)}.
func NewEdge(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Other returns the endpoint of e that is not x. It panics if x is not
// an endpoint of e.
func (e Edge) Other(x int) int {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of %v", x, e))
}

// Graph is an undirected graph with optional per-edge weights.
// The zero value is not usable; create instances with New.
type Graph struct {
	n      int
	adj    [][]int
	weight map[Edge]float64
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{
		n:      n,
		adj:    make([][]int, n),
		weight: make(map[Edge]float64),
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of (collapsed, undirected) edges.
func (g *Graph) M() int { return len(g.weight) }

// AddEdge inserts the undirected edge {u, v} with weight 1. Adding an
// existing edge is a no-op (the original weight is kept). Self-loops are
// rejected.
func (g *Graph) AddEdge(u, v int) {
	g.AddWeightedEdge(u, v, 1)
}

// AddWeightedEdge inserts the undirected edge {u, v} with the given
// weight, overwriting the weight if the edge already exists.
func (g *Graph) AddWeightedEdge(u, v int, w float64) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at vertex %d", u))
	}
	g.checkVertex(u)
	g.checkVertex(v)
	e := NewEdge(u, v)
	if _, ok := g.weight[e]; !ok {
		g.adj[u] = append(g.adj[u], v)
		g.adj[v] = append(g.adj[v], u)
	}
	g.weight[e] = w
}

// HasEdge reports whether the undirected edge {u, v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n || u == v {
		return false
	}
	_, ok := g.weight[NewEdge(u, v)]
	return ok
}

// Weight returns the weight of edge {u, v}, or 0 if the edge is absent.
func (g *Graph) Weight(u, v int) float64 {
	return g.weight[NewEdge(u, v)]
}

// Neighbors returns the adjacency list of u. The returned slice is owned
// by the graph and must not be modified.
func (g *Graph) Neighbors(u int) []int {
	g.checkVertex(u)
	return g.adj[u]
}

// Degree returns the number of distinct neighbors of u.
func (g *Graph) Degree(u int) int {
	g.checkVertex(u)
	return len(g.adj[u])
}

// Edges returns all edges sorted by (U, V); the slice is freshly
// allocated on each call.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.weight))
	for e := range g.weight {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for e, w := range g.weight {
		c.AddWeightedEdge(e.U, e.V, w)
	}
	return c
}

func (g *Graph) checkVertex(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", u, g.n))
	}
}

// BFSDistances returns the unweighted hop distance from src to every
// vertex; unreachable vertices get -1.
func (g *Graph) BFSDistances(src int) []int {
	g.checkVertex(src)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// AllPairsHops returns the unweighted all-pairs hop-distance matrix
// (BFS from every vertex). Unreachable pairs get -1.
func (g *Graph) AllPairsHops() [][]int {
	d := make([][]int, g.n)
	for i := 0; i < g.n; i++ {
		d[i] = g.BFSDistances(i)
	}
	return d
}

// RestrictedHops returns the all-pairs hop-distance matrix on the vertex-
// induced subgraph containing only vertices with allowed[v] == true.
// Pairs that are not connected inside the subgraph (or involve a
// disallowed vertex) get -1.
func (g *Graph) RestrictedHops(allowed []bool) [][]int {
	if len(allowed) != g.n {
		panic("graph: allowed mask has wrong length")
	}
	d := make([][]int, g.n)
	for i := range d {
		d[i] = make([]int, g.n)
		for j := range d[i] {
			d[i][j] = -1
		}
	}
	for src := 0; src < g.n; src++ {
		if !allowed[src] {
			continue
		}
		d[src][src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if allowed[v] && d[src][v] < 0 {
					d[src][v] = d[src][u] + 1
					queue = append(queue, v)
				}
			}
		}
	}
	return d
}

// Dijkstra returns weighted shortest-path distances from src using the
// stored edge weights (which must be non-negative). Unreachable vertices
// get +Inf.
func (g *Graph) Dijkstra(src int) []float64 {
	g.checkVertex(src)
	dist := make([]float64, g.n)
	done := make([]bool, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for {
		u, best := -1, math.Inf(1)
		for v := 0; v < g.n; v++ {
			if !done[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 {
			return dist
		}
		done[u] = true
		for _, v := range g.adj[u] {
			w := g.weight[NewEdge(u, v)]
			if w < 0 {
				panic("graph: negative edge weight in Dijkstra")
			}
			if nd := dist[u] + w; nd < dist[v] {
				dist[v] = nd
			}
		}
	}
}

// ShortestPath returns one unweighted shortest path from src to dst as a
// vertex sequence (inclusive of both endpoints), or nil if dst is
// unreachable. Ties are broken toward lower-numbered vertices so the
// result is deterministic.
func (g *Graph) ShortestPath(src, dst int) []int {
	g.checkVertex(src)
	g.checkVertex(dst)
	if src == dst {
		return []int{src}
	}
	prev := make([]int, g.n)
	dist := make([]int, g.n)
	for i := range prev {
		prev[i] = -1
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		nbrs := append([]int(nil), g.adj[u]...)
		sort.Ints(nbrs)
		for _, v := range nbrs {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				prev[v] = u
				queue = append(queue, v)
			}
		}
	}
	if dist[dst] < 0 {
		return nil
	}
	path := []int{dst}
	for at := dst; at != src; at = prev[at] {
		path = append(path, prev[at])
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Connected reports whether the whole graph is a single connected
// component. The empty graph is considered connected.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	d := g.BFSDistances(0)
	for _, v := range d {
		if v < 0 {
			return false
		}
	}
	return true
}

// SubsetConnected reports whether the vertex set `verts` induces a
// connected subgraph. Empty and single-vertex sets are connected.
func (g *Graph) SubsetConnected(verts []int) bool {
	if len(verts) <= 1 {
		return true
	}
	in := make(map[int]bool, len(verts))
	for _, v := range verts {
		g.checkVertex(v)
		in[v] = true
	}
	seen := map[int]bool{verts[0]: true}
	queue := []int{verts[0]}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if in[v] && !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return len(seen) == len(in)
}

// Components returns the connected components as sorted vertex slices,
// ordered by their smallest vertex.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// InducedEdges returns the edges of the subgraph induced by verts.
func (g *Graph) InducedEdges(verts []int) []Edge {
	in := make(map[int]bool, len(verts))
	for _, v := range verts {
		in[v] = true
	}
	var out []Edge
	for _, e := range g.Edges() {
		if in[e.U] && in[e.V] {
			out = append(out, e)
		}
	}
	return out
}
