package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkAtomicMix finds struct fields that are accessed through
// sync/atomic in one function but with plain loads/stores in another —
// a data race the race detector only catches if both paths run under
// test. Fields whose type comes from sync or sync/atomic (atomic.Int64
// and friends) are safe by construction and exempt.
func checkAtomicMix() Check {
	return Check{
		Name: "atomicmix",
		Doc: "a field accessed via sync/atomic in one function must not be read or " +
			"written plainly in another",
		RunModule: runAtomicMix,
	}
}

// atomicSite is one sync/atomic access to a field.
type atomicSite struct {
	fn  *FuncInfo
	pos token.Pos
}

func runAtomicMix(m *Module) []Finding {
	// Pass 1: every field reached through an argument of a sync/atomic
	// call, with the selector nodes involved (so pass 2 can skip them).
	atomicBy := map[*types.Var][]atomicSite{}
	inAtomic := map[*ast.SelectorExpr]bool{}
	for _, f := range m.Funcs() {
		p := f.Pkg
		if p.Info == nil {
			continue
		}
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ok := p.pkgFuncCall(f.File, call, "sync/atomic"); !ok {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					sel, ok := an.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					if fv := fieldVar(p, sel); fv != nil {
						atomicBy[fv] = append(atomicBy[fv], atomicSite{fn: f, pos: sel.Pos()})
						inAtomic[sel] = true
					}
					return true
				})
			}
			return true
		})
	}
	if len(atomicBy) == 0 {
		return nil
	}

	// Pass 2: plain accesses to those same fields from *other*
	// functions.
	var out []Finding
	for _, f := range m.Funcs() {
		p := f.Pkg
		if p.Info == nil {
			continue
		}
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomic[sel] {
				return true
			}
			fv := fieldVar(p, sel)
			if fv == nil {
				return true
			}
			sites := atomicBy[fv]
			if len(sites) == 0 {
				return true
			}
			elsewhere := atomicSite{}
			found := false
			for _, s := range sites {
				if s.fn != f && (!found || posLess(p.Fset, s.pos, elsewhere.pos)) {
					elsewhere, found = s, true
				}
			}
			if !found {
				return true // all atomic accesses are in this same function
			}
			ap := p.Fset.Position(elsewhere.pos)
			out = append(out, p.finding("atomicmix", sel,
				"%s accesses %s plainly, but %s uses sync/atomic on it (%s:%d): every access must go through sync/atomic",
				f.Name(), exprString(sel), elsewhere.fn.Name(), shortFile(ap.Filename), ap.Line))
			return true
		})
	}
	return out
}

// fieldVar resolves a selector to the struct field it reads, excluding
// fields whose own type already provides atomicity (sync / sync/atomic
// types).
func fieldVar(p *Package, sel *ast.SelectorExpr) *types.Var {
	s, ok := p.Info.Selections[sel]
	if !ok {
		return nil
	}
	fv, ok := s.Obj().(*types.Var)
	if !ok || !fv.IsField() {
		return nil
	}
	t := fv.Type().String()
	if strings.Contains(t, "sync/atomic.") || strings.Contains(t, "sync.") {
		return nil
	}
	return fv
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
