package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LoadModule discovers, parses, and type-checks every non-test package
// under the module rooted at dir (the directory containing go.mod).
// Module-internal imports are type-checked from source in dependency
// order; standard-library imports resolve through go/importer's
// "source" importer, so the loader needs no compiled export data and
// no dependencies beyond the standard library.
func LoadModule(dir string) ([]*Package, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		modPath: modPath,
		root:    root,
		std:     importer.ForCompiler(fset, "source", nil),
		byPath:  map[string]*Package{},
	}
	for _, d := range dirs {
		p, err := ld.parseDir(d)
		if err != nil {
			return nil, err
		}
		if p != nil {
			ld.byPath[p.Path] = p
		}
	}
	var paths []string
	for path := range ld.byPath {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	var pkgs []*Package
	for _, path := range paths {
		p := ld.byPath[path]
		if err := ld.check(p); err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", path, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if q, err := strconv.Unquote(rest); err == nil {
				return q, nil
			}
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module declaration", gomod)
}

// packageDirs lists every directory under root that holds at least one
// non-test .go file, skipping testdata, vendor, hidden, and
// underscore-prefixed directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			n := e.Name()
			if strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

type loader struct {
	fset    *token.FileSet
	modPath string
	root    string
	std     types.Importer
	byPath  map[string]*Package
	stack   []string // import path chain, for cycle reporting
}

// parseDir parses every non-test .go file in dir into one Package.
func (ld *loader) parseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		rel = ""
	}
	path := ld.modPath
	if rel != "" {
		path = ld.modPath + "/" + rel
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return &Package{
		ModulePath: ld.modPath,
		Path:       path,
		Rel:        rel,
		Dir:        dir,
		Fset:       ld.fset,
		Files:      files,
	}, nil
}

// check type-checks p (and, recursively, its module-internal imports
// first). It is idempotent; already-checked packages return
// immediately.
func (ld *loader) check(p *Package) error {
	if p.Types != nil {
		return nil
	}
	for _, prev := range ld.stack {
		if prev == p.Path {
			return fmt.Errorf("import cycle: %s", strings.Join(append(ld.stack, p.Path), " -> "))
		}
	}
	ld.stack = append(ld.stack, p.Path)
	defer func() { ld.stack = ld.stack[:len(ld.stack)-1] }()

	// Check module-internal dependencies first so Import can hand back
	// completed packages.
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			ipath, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if dep, ok := ld.byPath[ipath]; ok {
				if err := ld.check(dep); err != nil {
					return err
				}
			}
		}
	}

	p.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer:    ld,
		FakeImportC: true,
		Error:       func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	pkg, err := conf.Check(p.Path, ld.fset, p.Files, p.Info)
	if pkg == nil {
		return err
	}
	p.Types = pkg
	return nil
}

// Import implements types.Importer over the module map plus the
// standard library's source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := ld.byPath[path]; ok {
		if err := ld.check(p); err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return ld.std.Import(path)
}

// CheckFile type-checks a single standalone source file (used by
// fixture tests). rel positions the file as if it lived in that
// directory of the module, so path-scoped checks behave as they would
// on real packages.
func CheckFile(fset *token.FileSet, file *ast.File, modPath, rel string) (*Package, error) {
	path := modPath
	if rel != "" {
		path = modPath + "/" + rel
	}
	p := &Package{
		ModulePath: modPath,
		Path:       path,
		Rel:        rel,
		Fset:       fset,
		Files:      []*ast.File{file},
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	conf := types.Config{
		Importer:    importer.ForCompiler(fset, "source", nil),
		FakeImportC: true,
		Error:       func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	pkg, err := conf.Check(path, fset, p.Files, p.Info)
	if pkg == nil {
		return nil, err
	}
	p.Types = pkg
	return p, nil
}
