// Fixture for the lockorder check.
package demo

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func work() bool { return true }

// one acquires A.mu then B.mu: the canonical order.
func one(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "lock-order cycle"
	work()
	b.mu.Unlock()
	a.mu.Unlock()
}

// two acquires them in the opposite order, closing the cycle. The
// cycle is reported once, at the earliest edge site (in one).
func two(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	work()
	a.mu.Unlock()
	b.mu.Unlock()
}

// Guarded uses the defer idiom: no leak.
func Guarded(a *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
	work()
}

// Leak falls off the end with the mutex held.
func Leak(a *A) { // want "can return while still holding demo.A.mu"
	a.mu.Lock()
	work()
}

// LeakIf forgets the unlock on the early-return path only.
func LeakIf(a *A) bool {
	a.mu.Lock()
	if work() {
		return false // want "still holding demo.A.mu"
	}
	a.mu.Unlock()
	return true
}

// Twice re-acquires a mutex it already holds: self-deadlock.
func Twice(a *A) {
	a.mu.Lock()
	a.mu.Lock() // want "acquires demo.A.mu while already holding it"
	a.mu.Unlock()
	a.mu.Unlock()
}

// lockB is a helper whose summary says it acquires B.mu.
func lockB(b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	work()
}

// Reenter calls a helper that takes a lock the caller already holds.
func Reenter(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	lockB(b) // want "calls lockB while holding demo.B.mu"
}

// DeferClosure releases through a deferred closure: recognized.
func DeferClosure(a *A) {
	a.mu.Lock()
	defer func() {
		a.mu.Unlock()
	}()
	work()
}
