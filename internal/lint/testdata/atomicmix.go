// Fixture for the atomicmix check.
package demo

import "sync/atomic"

// Counter mixes access disciplines on n.
type Counter struct {
	n    int64
	safe atomic.Int64
}

// Inc updates n atomically.
func (c *Counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

// Read races with Inc: a plain load of an atomically-written field.
func (c *Counter) Read() int64 {
	return c.n // want "accesses c.n plainly"
}

// Reset races the same way on the store side.
func (c *Counter) Reset() {
	c.n = 0 // want "accesses c.n plainly"
}

// SafeRead uses the typed atomic: exempt by construction.
func (c *Counter) SafeRead() int64 {
	return c.safe.Load()
}

// SafeBump likewise.
func (c *Counter) SafeBump() {
	c.safe.Add(1)
}
