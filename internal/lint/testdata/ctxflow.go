// Fixture for the ctxflow check (loaded as if in internal/service, a
// cancellation-scoped package).
package service

import (
	"context"
	"time"
)

// pause blocks directly and has no cancellation input.
func pause() { // want "pause blocks on time.Sleep"
	time.Sleep(time.Millisecond)
}

// Outer blocks only transitively, through pause.
func Outer() { // want "time.Sleep via pause"
	pause()
}

// OuterCtx has a context; it is used, so both rules pass.
func OuterCtx(ctx context.Context) {
	select {
	case <-ctx.Done():
	case <-time.After(time.Millisecond):
	}
}

// Flush blocks on a data channel and cannot be cancelled.
func Flush(done chan int) { // want "channel receive <-done"
	<-done
}

// waitClosed takes a stop channel: that is a cancellation input.
func waitClosed(stop <-chan struct{}) {
	<-stop
}

// Drop receives a context and ignores it.
func Drop(ctx context.Context, n int) int { // want "context parameter ctx of Drop is received but never used"
	return n * 2
}

// TryPoll never blocks: the select has a default.
func TryPoll(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// Spawn only blocks inside the spawned goroutine, which is the
// goroutine's business, not Spawn's.
func Spawn(ch chan int) {
	go func() { ch <- 1 }()
}

// root mints a fresh context inside the service layer.
func root() context.Context {
	return context.Background() // want "plumb the caller's context instead"
}
