// Fixture for the nowallclock check (loaded as if it lived in
// internal/sim, one of the deterministic packages).
package fixture

import "time"

func stamp() (time.Time, float64) {
	start := time.Now()    // want "time.Now in deterministic package internal/sim"
	d := time.Since(start) // want "time.Since in deterministic package internal/sim"
	_ = time.Until(start)  // want "time.Until in deterministic package internal/sim"
	return start, d.Seconds()
}

func pureDuration() time.Duration {
	return 3 * time.Second // ok: no clock read
}

func parse(s string) (time.Time, error) {
	return time.Parse(time.RFC3339, s) // ok: pure function of its input
}
