// Fixture for the guardedby check: fields annotated "guarded by <mu>"
// must only be touched by methods that lock <mu> (or carry the *Locked
// caller-holds-the-lock suffix).
package fixture

import "sync"

type counter struct {
	mu   sync.Mutex
	n    int    // guarded by mu
	name string // immutable, no guard
}

func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++ // ok: method locks mu
}

func (c *counter) Bad() int {
	return c.n // want "c.n is guarded by mu but method Bad never locks it"
}

func (c *counter) Name() string {
	return c.name // ok: field is not guarded
}

func (c *counter) valueLocked() int {
	return c.n // ok: *Locked suffix documents the caller holds mu
}

type wrapper struct {
	svc *counter
	val int // guarded by svc.mu
}

func (w *wrapper) Get() int {
	w.svc.mu.Lock()
	defer w.svc.mu.Unlock()
	return w.val // ok: locks through the owning object
}

func (w *wrapper) Sneak() int {
	return w.val // want "w.val is guarded by mu but method Sneak never locks it"
}

type rw struct {
	mu   sync.RWMutex
	data map[string]int // guarded by mu
}

func (r *rw) Read(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.data[k] // ok: read lock counts
}
