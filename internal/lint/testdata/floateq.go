// Fixture for the floateq check: exact ==/!= between floating-point
// operands is flagged outside tests.
package fixture

func approx(a, b float64) bool {
	return a == b // want "exact float comparison a==b"
}

func nonzero(x float64) bool {
	return x != 0 // want "exact float comparison x!=0"
}

func mixed(score float64, best float64) bool {
	if score == best { // want "exact float comparison score==best"
		return true
	}
	return false
}

func f32(a, b float32) bool {
	return a == b // want "exact float comparison a==b"
}

func nanProbe(x float64) bool {
	return x != x // ok: the portable NaN test
}

func ints(a, b int) bool {
	return a == b // ok: integers compare exactly
}

var constFold = 0.1 == 0.2 // ok: folded at compile time

func ordered(a, b float64) bool {
	return a < b // ok: ordering comparisons are fine
}
