// Fixture for //lint:ignore suppression, exercised with the floateq
// check: a directive with a reason on the offending line or the line
// above silences the finding; undirected lines still fire.
package fixture

func eqExact(a, b float64) bool {
	//lint:ignore floateq fixture demonstrates a justified suppression
	return a == b
}

func eqSameLine(a, b float64) bool {
	return a == b //lint:ignore floateq same-line suppression works too
}

func eqMultiCheck(a, b float64) bool {
	//lint:ignore floateq,noprint one directive may name several checks
	return a == b
}

func eqOtherCheck(a, b float64) bool {
	//lint:ignore noprint directive for a different check does not apply
	return a == b // want "exact float comparison a==b"
}

func eqFlagged(a, b float64) bool {
	return a != b // want "exact float comparison a!=b"
}
