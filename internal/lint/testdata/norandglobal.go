// Fixture for the norandglobal check: calls through the global
// math/rand source are flagged; explicit *rand.Rand generators pass.
package fixture

import "math/rand"

func useGlobal() int {
	rand.Seed(42)                      // want "call to global rand.Seed"
	x := rand.Intn(10)                 // want "call to global rand.Intn"
	rand.Shuffle(3, func(i, j int) {}) // want "call to global rand.Shuffle"
	xs := rand.Perm(4)                 // want "call to global rand.Perm"
	f := rand.Float64()                // want "call to global rand.Float64"
	return x + len(xs) + int(f)
}

func useLocal(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // ok: explicit generator
	var r *rand.Rand = rng                // ok: type reference
	return r.Float64()                    // ok: method on explicit generator
}
