// Fixture for the noprint check (loaded as if it lived under
// internal/): library packages must not write to stdout/stderr.
package fixture

import (
	"fmt"
	"io"
)

func chatty() {
	fmt.Println("hello")    // want "fmt.Println in library package internal/demo"
	fmt.Printf("x=%d\n", 1) // want "fmt.Printf in library package internal/demo"
	fmt.Print("y")          // want "fmt.Print in library package internal/demo"
	println("dbg")          // want "builtin println in library package internal/demo"
}

func quiet(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "hello"); err != nil { // ok: explicit writer
		return err
	}
	_ = fmt.Sprintf("x=%d", 1) // ok: no output
	return fmt.Errorf("boom")  // ok: error construction
}
