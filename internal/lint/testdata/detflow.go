// Fixture for the detflow check (loaded as if in internal/sim, a
// deterministic package).
package sim

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// stamp is an unexported helper: not reported itself, but its summary
// marks the return value as wall-clock tainted.
func stamp() int64 {
	return time.Now().UnixNano()
}

// Seed launders the clock through a helper; the interprocedural
// summary still sees it.
func Seed() int64 {
	s := stamp()
	return s // want "returned from exported Seed"
}

// Keys assembles map keys in iteration order without sorting.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out // want "iteration order of map m"
}

// SortedKeys repairs the order before returning: clean.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot observes sync.Map.Range order.
func Snapshot(sm *sync.Map) []string {
	var out []string
	sm.Range(func(k, v any) bool {
		out = append(out, k.(string))
		return true
	})
	return out // want "sync.Map.Range iteration order"
}

// Gather records goroutine completion order.
func Gather(ch chan int, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, <-ch)
	}
	return out // want "completion order"
}

// Engine holds state the simulator reads back later.
type Engine struct {
	seed int64
}

// Reseed stores a wall-clock read into persistent state.
func (e *Engine) Reseed() {
	e.seed = time.Now().UnixNano() // want "stored in e.seed"
}

// Pick threads an explicit generator: clean.
func Pick(r *rand.Rand, xs []int) int {
	return xs[r.Intn(len(xs))]
}

// Jitter uses the global source through a chain of assignments.
func Jitter() float64 {
	v := rand.Float64()
	w := v * 2
	return w // want "global math/rand.Float64"
}
