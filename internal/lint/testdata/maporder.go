// Fixture for the maporder check: result assembly inside an unordered
// map range is flagged unless the collected slice is sorted afterwards.
package fixture

import (
	"fmt"
	"sort"
)

func leakyKeys(m map[int]float64) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want "append inside range over map m"
	}
	return out
}

func leakyField(m map[string]int) {
	var res struct{ names []string }
	for k := range m {
		res.names = append(res.names, k) // want "append inside range over map m"
	}
	_ = res
}

func emits(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "emits in nondeterministic order"
	}
}

func sortedAfter(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k) // ok: keys sorted below
	}
	sort.Ints(keys)
	return keys
}

func sortedSlice(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // ok: sorted with sort.Slice below
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sliceRange(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // ok: slices iterate in order
	}
	return out
}
