// Package lint is a small stdlib-only static-analysis framework for
// this repository. It loads every package in the module with
// go/parser + go/types (no golang.org/x/tools dependency) and runs a
// set of domain-specific checks that keep the QuCloud reproduction's
// fidelity numbers trustworthy: determinism (no global math/rand, no
// wall-clock reads in compiler/simulator packages, no unordered map
// iteration feeding results), numeric safety (no exact float
// equality), and concurrency hygiene (fields documented as guarded by
// a mutex are only touched under it).
//
// Findings can be suppressed per line with
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// placed on the offending line or the line directly above it. The
// reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Finding is one diagnostic produced by a check.
type Finding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.File, f.Line, f.Col, f.Message, f.Check)
}

// Package is one loaded, type-checked package handed to checks.
type Package struct {
	// ModulePath is the module's import-path prefix (from go.mod).
	ModulePath string
	// Path is the package's full import path.
	Path string
	// Rel is the package directory relative to the module root, using
	// forward slashes ("" for the root package).
	Rel string
	// Dir is the absolute package directory.
	Dir string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Info holds type information; always non-nil, possibly sparse if
	// type-checking reported errors.
	Info *types.Info
	// Types is the type-checked package object (may be marked
	// incomplete if checking failed part-way).
	Types *types.Package
	// TypeErrors collects type-checker diagnostics; checks still run
	// on a package with errors, degrading to syntactic matching.
	TypeErrors []error
}

// Check is one named analysis pass.
type Check struct {
	// Name is the identifier used by -checks and //lint:ignore.
	Name string
	// Doc is a one-line description shown by qulint -list.
	Doc string
	// Run produces the check's findings for one package.
	Run func(p *Package) []Finding
}

// Checks returns every registered check in stable order.
func Checks() []Check {
	return []Check{
		checkNoRandGlobal(),
		checkNoWallClock(),
		checkMapOrder(),
		checkFloatEq(),
		checkNoPrint(),
		checkGuardedBy(),
	}
}

// CheckNames returns the registered check names in stable order.
func CheckNames() []string {
	var names []string
	for _, c := range Checks() {
		names = append(names, c.Name)
	}
	return names
}

// SelectChecks resolves a comma-separated -checks value against the
// registry. An empty spec selects every check.
func SelectChecks(spec string) ([]Check, error) {
	all := Checks()
	if strings.TrimSpace(spec) == "" {
		return all, nil
	}
	byName := make(map[string]Check, len(all))
	for _, c := range all {
		byName[c.Name] = c
	}
	var out []Check
	seen := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (known: %s)", name, strings.Join(CheckNames(), ", "))
		}
		if !seen[name] {
			out = append(out, c)
			seen[name] = true
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -checks selection")
	}
	return out, nil
}

// Run applies the checks to every package, drops suppressed findings,
// and returns the remainder sorted by file, line, and column.
func Run(pkgs []*Package, checks []Check) []Finding {
	var out []Finding
	for _, p := range pkgs {
		ignores, bad := collectIgnores(p)
		out = append(out, bad...)
		for _, c := range checks {
			for _, f := range c.Run(p) {
				if ignores.suppresses(f) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return out
}

// ignoreSet indexes //lint:ignore directives by file and line.
type ignoreSet map[string]map[int][]string // file -> line -> check names ("all" wildcard)

// suppresses reports whether a directive on the finding's line or the
// line directly above names the finding's check.
func (s ignoreSet) suppresses(f Finding) bool {
	lines := s[f.File]
	if lines == nil {
		return false
	}
	for _, l := range []int{f.Line, f.Line - 1} {
		for _, name := range lines[l] {
			if name == "all" || name == f.Check {
				return true
			}
		}
	}
	return false
}

const ignorePrefix = "//lint:ignore"

// collectIgnores gathers the package's suppression directives. A
// directive missing its mandatory reason is returned as a finding so
// suppressions stay auditable.
func collectIgnores(p *Package) (ignoreSet, []Finding) {
	set := ignoreSet{}
	var bad []Finding
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Check:   "lintdirective",
						File:    pos.Filename,
						Line:    pos.Line,
						Col:     pos.Column,
						Message: "malformed //lint:ignore directive: need a check name and a reason",
					})
					continue
				}
				if set[pos.Filename] == nil {
					set[pos.Filename] = map[int][]string{}
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name = strings.TrimSpace(name); name != "" {
						set[pos.Filename][pos.Line] = append(set[pos.Filename][pos.Line], name)
					}
				}
			}
		}
	}
	return set, bad
}

// --- shared helpers for checks ---

// finding builds a Finding at the node's position.
func (p *Package) finding(check string, n ast.Node, format string, args ...any) Finding {
	pos := p.Fset.Position(n.Pos())
	return Finding{
		Check:   check,
		File:    pos.Filename,
		Line:    pos.Line,
		Col:     pos.Column,
		Message: fmt.Sprintf(format, args...),
	}
}

// isTestFile reports whether the node sits in a _test.go file.
func (p *Package) isTestFile(n ast.Node) bool {
	return strings.HasSuffix(p.Fset.Position(n.Pos()).Filename, "_test.go")
}

// importLocalName returns the identifier a file binds to the import
// path ("" if not imported; "_" and "." are returned verbatim).
func importLocalName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p
	}
	return ""
}

// pkgFuncCall resolves a call of the form pkgname.Func where pkgname
// is the file-local name of importPath. It returns the called
// function's name and true on match. Type information is consulted
// first (catching aliased imports and rejecting shadowed identifiers);
// when absent it falls back to matching the import table.
func (p *Package) pkgFuncCall(file *ast.File, call *ast.CallExpr, importPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if p.Info != nil {
		if obj, ok := p.Info.Uses[id]; ok {
			pn, ok := obj.(*types.PkgName)
			if !ok {
				return "", false
			}
			if pn.Imported().Path() != importPath {
				return "", false
			}
			return sel.Sel.Name, true
		}
	}
	if name := importLocalName(file, importPath); name != "" && name == id.Name {
		return sel.Sel.Name, true
	}
	return "", false
}

// exprString renders a (small) expression for messages and lexical
// comparisons.
func exprString(e ast.Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeExpr(b *strings.Builder, e ast.Expr) {
	switch v := e.(type) {
	case *ast.Ident:
		b.WriteString(v.Name)
	case *ast.SelectorExpr:
		writeExpr(b, v.X)
		b.WriteByte('.')
		b.WriteString(v.Sel.Name)
	case *ast.ParenExpr:
		writeExpr(b, v.X)
	case *ast.StarExpr:
		b.WriteByte('*')
		writeExpr(b, v.X)
	case *ast.IndexExpr:
		writeExpr(b, v.X)
		b.WriteByte('[')
		writeExpr(b, v.Index)
		b.WriteByte(']')
	case *ast.CallExpr:
		writeExpr(b, v.Fun)
		b.WriteString("(…)")
	case *ast.BasicLit:
		b.WriteString(v.Value)
	case *ast.UnaryExpr:
		b.WriteString(v.Op.String())
		writeExpr(b, v.X)
	case *ast.BinaryExpr:
		writeExpr(b, v.X)
		b.WriteString(v.Op.String())
		writeExpr(b, v.Y)
	default:
		b.WriteString("…")
	}
}

// rootIdent returns the leftmost identifier of a selector/index chain
// (x in x.a.b[i]), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// lastSelName returns the final identifier of an expression like
// a.b.mu (-> "mu") or mu (-> "mu"), or "".
func lastSelName(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	case *ast.ParenExpr:
		return lastSelName(v.X)
	}
	return ""
}

// mentionsIdent reports whether the expression tree contains an
// identifier with the given name.
func mentionsIdent(e ast.Node, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return !found
	})
	return found
}

var guardedByRe = regexp.MustCompile(`(?i)guarded by\s+([A-Za-z_][A-Za-z0-9_.]*)`)
