// Package lint is a small stdlib-only static-analysis framework for
// this repository. It loads every package in the module with
// go/parser + go/types (no golang.org/x/tools dependency) and runs a
// set of domain-specific checks that keep the QuCloud reproduction's
// fidelity numbers trustworthy: determinism (no global math/rand, no
// wall-clock reads in compiler/simulator packages, no unordered map
// iteration feeding results), numeric safety (no exact float
// equality), and concurrency hygiene (fields documented as guarded by
// a mutex are only touched under it).
//
// Findings can be suppressed per line with
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// placed on the offending line or the line directly above it. The
// reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Finding is one diagnostic produced by a check.
type Finding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	// Doc is the one-line documentation of the check that produced the
	// finding (filled by Analyze; surfaced in -json output).
	Doc string `json:"doc,omitempty"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.File, f.Line, f.Col, f.Message, f.Check)
}

// Package is one loaded, type-checked package handed to checks.
type Package struct {
	// ModulePath is the module's import-path prefix (from go.mod).
	ModulePath string
	// Path is the package's full import path.
	Path string
	// Rel is the package directory relative to the module root, using
	// forward slashes ("" for the root package).
	Rel string
	// Dir is the absolute package directory.
	Dir string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Info holds type information; always non-nil, possibly sparse if
	// type-checking reported errors.
	Info *types.Info
	// Types is the type-checked package object (may be marked
	// incomplete if checking failed part-way).
	Types *types.Package
	// TypeErrors collects type-checker diagnostics; checks still run
	// on a package with errors, degrading to syntactic matching.
	TypeErrors []error
}

// Check is one named analysis pass. Exactly one of Run and RunModule
// is set: Run is a per-package pass; RunModule sees the whole module
// at once (with its call graph) for interprocedural checks.
type Check struct {
	// Name is the identifier used by -checks and //lint:ignore.
	Name string
	// Doc is a one-line description shown by qulint -list.
	Doc string
	// Run produces the check's findings for one package.
	Run func(p *Package) []Finding
	// RunModule produces the check's findings for the whole module.
	RunModule func(m *Module) []Finding
}

// Checks returns every registered check in stable order.
func Checks() []Check {
	return []Check{
		checkNoRandGlobal(),
		checkNoWallClock(),
		checkMapOrder(),
		checkFloatEq(),
		checkNoPrint(),
		checkGuardedBy(),
		checkDetFlow(),
		checkCtxFlow(),
		checkLockOrder(),
		checkAtomicMix(),
	}
}

// CheckNames returns the registered check names in stable order.
func CheckNames() []string {
	var names []string
	for _, c := range Checks() {
		names = append(names, c.Name)
	}
	return names
}

// SelectChecks resolves a comma-separated -checks value against the
// registry. An empty spec selects every check.
func SelectChecks(spec string) ([]Check, error) {
	all := Checks()
	if strings.TrimSpace(spec) == "" {
		return all, nil
	}
	byName := make(map[string]Check, len(all))
	for _, c := range all {
		byName[c.Name] = c
	}
	var out []Check
	seen := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (known: %s)", name, strings.Join(CheckNames(), ", "))
		}
		if !seen[name] {
			out = append(out, c)
			seen[name] = true
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -checks selection")
	}
	return out, nil
}

// SuppressionStats summarizes the //lint:ignore directives seen by one
// Analyze pass.
type SuppressionStats struct {
	// Directives is the total number of well-formed directives.
	Directives int `json:"directives"`
	// Used counts directives that suppressed at least one finding.
	Used int `json:"used"`
	// Unused counts auditable directives that suppressed nothing (each
	// also produces an "unusedignore" finding).
	Unused int `json:"unused"`
}

// Result is the full output of an Analyze pass.
type Result struct {
	Findings     []Finding
	Suppressions SuppressionStats
}

// Docs for the engine-level pseudo-checks (they have no Check entry:
// the engine itself produces them).
const (
	directiveDoc     = "every //lint:ignore directive must name a known check and carry a reason"
	unusedIgnoreDoc  = "a //lint:ignore directive that suppresses nothing is stale and must be removed"
	directiveCheck   = "lintdirective"
	unusedIgnoreName = "unusedignore"
)

// Run applies the checks to every package, drops suppressed findings,
// and returns the remainder sorted by file, line, and column.
func Run(pkgs []*Package, checks []Check) []Finding {
	return Analyze(pkgs, checks, nil).Findings
}

// Analyze runs the checks over the packages and returns findings plus
// suppression statistics. Module-scope checks (RunModule) always see
// every package — the call graph needs the whole module — but their
// findings, like everything else, are reported only for packages
// accepted by include (nil includes all). Suppression directives are
// collected from included packages; auditable directives that suppress
// nothing become "unusedignore" findings, so stale exemptions cannot
// accumulate silently.
func Analyze(pkgs []*Package, checks []Check, include func(*Package) bool) Result {
	if include == nil {
		include = func(*Package) bool { return true }
	}
	known := map[string]bool{"all": true, directiveCheck: true, unusedIgnoreName: true}
	docs := map[string]string{directiveCheck: directiveDoc, unusedIgnoreName: unusedIgnoreDoc}
	for _, c := range Checks() {
		known[c.Name] = true
		docs[c.Name] = c.Doc
	}

	var out []Finding
	index := ignoreIndex{}
	var directives []*directive
	included := map[string]bool{} // package dir -> reported
	for _, p := range pkgs {
		if !include(p) {
			continue
		}
		included[p.Dir] = true
		ds, bad := collectIgnores(p, known)
		out = append(out, bad...)
		directives = append(directives, ds...)
		index.add(ds)
	}

	keep := func(f Finding) {
		if index.suppresses(f) {
			return
		}
		out = append(out, f)
	}

	needModule := false
	for _, c := range checks {
		if c.RunModule != nil {
			needModule = true
			continue
		}
		for _, p := range pkgs {
			if !include(p) {
				continue
			}
			for _, f := range c.Run(p) {
				keep(f)
			}
		}
	}
	if needModule {
		m := NewModule(pkgs)
		dirOf := map[string]bool{} // file directory -> included
		for _, p := range pkgs {
			dirOf[p.Dir] = included[p.Dir]
		}
		for _, c := range checks {
			if c.RunModule == nil {
				continue
			}
			for _, f := range c.RunModule(m) {
				if in, ok := dirOf[filepath.Dir(f.File)]; ok && !in {
					continue
				}
				keep(f)
			}
		}
	}

	// Stale-suppression audit: a directive is auditable when every
	// check it names ran in this pass (so `-checks floateq` does not
	// condemn a norandglobal exemption); the "all" wildcard is audited
	// only under the full registry.
	res := Result{}
	selected := map[string]bool{}
	for _, c := range checks {
		selected[c.Name] = true
	}
	fullRun := len(checks) == len(Checks())
	for _, d := range directives {
		res.Suppressions.Directives++
		if d.used {
			res.Suppressions.Used++
			continue
		}
		auditable := true
		for _, name := range d.names {
			if name == "all" {
				auditable = auditable && fullRun
			} else {
				auditable = auditable && selected[name]
			}
		}
		if !auditable {
			continue
		}
		res.Suppressions.Unused++
		out = append(out, Finding{
			Check:   unusedIgnoreName,
			File:    d.file,
			Line:    d.line,
			Col:     d.col,
			Message: fmt.Sprintf("//lint:ignore %s suppresses nothing: remove the stale exemption", strings.Join(d.names, ",")),
		})
	}

	for i := range out {
		out[i].Doc = docs[out[i].Check]
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	res.Findings = out
	return res
}

// directive is one well-formed //lint:ignore, tracked for the stale-
// suppression audit.
type directive struct {
	file      string
	line, col int
	names     []string
	used      bool
}

// ignoreIndex locates directives by file and line.
type ignoreIndex map[string]map[int][]*directive

func (s ignoreIndex) add(ds []*directive) {
	for _, d := range ds {
		if s[d.file] == nil {
			s[d.file] = map[int][]*directive{}
		}
		s[d.file][d.line] = append(s[d.file][d.line], d)
	}
}

// suppresses reports whether a directive on the finding's line or the
// line directly above names the finding's check, marking the directive
// used.
func (s ignoreIndex) suppresses(f Finding) bool {
	lines := s[f.File]
	if lines == nil {
		return false
	}
	for _, l := range []int{f.Line, f.Line - 1} {
		for _, d := range lines[l] {
			for _, name := range d.names {
				if name == "all" || name == f.Check {
					d.used = true
					return true
				}
			}
		}
	}
	return false
}

const ignorePrefix = "//lint:ignore"

// collectIgnores gathers the package's suppression directives. A
// directive missing its mandatory reason, or naming a check the
// registry does not know, is returned as a finding so suppressions
// stay auditable.
func collectIgnores(p *Package, known map[string]bool) ([]*directive, []Finding) {
	var ds []*directive
	var bad []Finding
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Check:   directiveCheck,
						File:    pos.Filename,
						Line:    pos.Line,
						Col:     pos.Column,
						Message: "malformed //lint:ignore directive: need a check name and a reason",
					})
					continue
				}
				d := &directive{file: pos.Filename, line: pos.Line, col: pos.Column}
				for _, name := range strings.Split(fields[0], ",") {
					if name = strings.TrimSpace(name); name == "" {
						continue
					}
					if !known[name] {
						bad = append(bad, Finding{
							Check:   directiveCheck,
							File:    pos.Filename,
							Line:    pos.Line,
							Col:     pos.Column,
							Message: fmt.Sprintf("//lint:ignore names unknown check %q", name),
						})
						continue
					}
					d.names = append(d.names, name)
				}
				if len(d.names) > 0 {
					ds = append(ds, d)
				}
			}
		}
	}
	return ds, bad
}

// --- shared helpers for checks ---

// finding builds a Finding at the node's position.
func (p *Package) finding(check string, n ast.Node, format string, args ...any) Finding {
	pos := p.Fset.Position(n.Pos())
	return Finding{
		Check:   check,
		File:    pos.Filename,
		Line:    pos.Line,
		Col:     pos.Column,
		Message: fmt.Sprintf(format, args...),
	}
}

// isTestFile reports whether the node sits in a _test.go file.
func (p *Package) isTestFile(n ast.Node) bool {
	return strings.HasSuffix(p.Fset.Position(n.Pos()).Filename, "_test.go")
}

// importLocalName returns the identifier a file binds to the import
// path ("" if not imported; "_" and "." are returned verbatim).
func importLocalName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p
	}
	return ""
}

// pkgFuncCall resolves a call of the form pkgname.Func where pkgname
// is the file-local name of importPath. It returns the called
// function's name and true on match. Type information is consulted
// first (catching aliased imports and rejecting shadowed identifiers);
// when absent it falls back to matching the import table.
func (p *Package) pkgFuncCall(file *ast.File, call *ast.CallExpr, importPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if p.Info != nil {
		if obj, ok := p.Info.Uses[id]; ok {
			pn, ok := obj.(*types.PkgName)
			if !ok {
				return "", false
			}
			if pn.Imported().Path() != importPath {
				return "", false
			}
			return sel.Sel.Name, true
		}
	}
	if name := importLocalName(file, importPath); name != "" && name == id.Name {
		return sel.Sel.Name, true
	}
	return "", false
}

// exprString renders a (small) expression for messages and lexical
// comparisons.
func exprString(e ast.Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeExpr(b *strings.Builder, e ast.Expr) {
	switch v := e.(type) {
	case *ast.Ident:
		b.WriteString(v.Name)
	case *ast.SelectorExpr:
		writeExpr(b, v.X)
		b.WriteByte('.')
		b.WriteString(v.Sel.Name)
	case *ast.ParenExpr:
		writeExpr(b, v.X)
	case *ast.StarExpr:
		b.WriteByte('*')
		writeExpr(b, v.X)
	case *ast.IndexExpr:
		writeExpr(b, v.X)
		b.WriteByte('[')
		writeExpr(b, v.Index)
		b.WriteByte(']')
	case *ast.CallExpr:
		writeExpr(b, v.Fun)
		b.WriteString("(…)")
	case *ast.BasicLit:
		b.WriteString(v.Value)
	case *ast.UnaryExpr:
		b.WriteString(v.Op.String())
		writeExpr(b, v.X)
	case *ast.BinaryExpr:
		writeExpr(b, v.X)
		b.WriteString(v.Op.String())
		writeExpr(b, v.Y)
	default:
		b.WriteString("…")
	}
}

// rootIdent returns the leftmost identifier of a selector/index chain
// (x in x.a.b[i]), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// lastSelName returns the final identifier of an expression like
// a.b.mu (-> "mu") or mu (-> "mu"), or "".
func lastSelName(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	case *ast.ParenExpr:
		return lastSelName(v.X)
	}
	return ""
}

// mentionsIdent reports whether the expression tree contains an
// identifier with the given name.
func mentionsIdent(e ast.Node, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return !found
	})
	return found
}

var guardedByRe = regexp.MustCompile(`(?i)guarded by\s+([A-Za-z_][A-Za-z0-9_.]*)`)
