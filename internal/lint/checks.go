package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// --- norandglobal -----------------------------------------------------

// randConstructors are the math/rand functions that build explicit
// generators — the only sanctioned entry points. Everything else on
// the package (Intn, Float64, Shuffle, Seed, …) consults or mutates
// the shared global source and breaks run-to-run determinism.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// randGlobalFuncs is the syntactic fallback denylist used when type
// information is unavailable (v1 and v2 top-level functions).
var randGlobalFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
	// math/rand/v2 spellings
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32N": true, "Uint64N": true,
}

func checkNoRandGlobal() Check {
	return Check{
		Name: "norandglobal",
		Doc:  "forbid the global math/rand source; randomness must flow through an explicit *rand.Rand",
		Run: func(p *Package) []Finding {
			var out []Finding
			for _, file := range p.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					for _, path := range []string{"math/rand", "math/rand/v2"} {
						name, ok := p.pkgFuncCall(file, call, path)
						if !ok || randConstructors[name] {
							continue
						}
						// With type info, any non-constructor package
						// *function* is a global-state entry point (type
						// conversions like rand.Source(x) stay clean);
						// without it, fall back to the known top-level
						// function names.
						if p.resolvesToFunc(call.Fun) || (!p.typeResolves(call.Fun) && randGlobalFuncs[name]) {
							out = append(out, p.finding("norandglobal", call,
								"call to global rand.%s: thread an explicit *rand.Rand (rand.New(rand.NewSource(seed))) instead", name))
						}
					}
					return true
				})
			}
			return out
		},
	}
}

// typeResolves reports whether the type checker resolved the selector
// expression's package identifier.
func (p *Package) typeResolves(fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if p.Info == nil {
		return false
	}
	_, ok = p.Info.Uses[id]
	return ok
}

// resolvesToFunc reports whether the selector's member resolved to a
// package-level function (as opposed to a type or variable).
func (p *Package) resolvesToFunc(fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || p.Info == nil {
		return false
	}
	_, ok = p.Info.Uses[sel.Sel].(*types.Func)
	return ok
}

// --- nowallclock ------------------------------------------------------

// deterministicPkgs are the compiler/simulator packages whose results
// must be a pure function of their inputs: reading the wall clock
// there either leaks into a result or tempts someone to make it.
// service, cloudsim, quos, cmd/, and the root experiment driver are
// deliberately NOT listed — they measure real latency.
var deterministicPkgs = map[string]bool{
	"internal/arch":      true,
	"internal/ccache":    true,
	"internal/circuit":   true,
	"internal/community": true,
	"internal/core":      true,
	"internal/fleet":     true,
	"internal/fp":        true,
	"internal/graph":     true,
	"internal/nisqbench": true,
	"internal/partition": true,
	"internal/pool":      true,
	"internal/router":    true,
	"internal/sched":     true,
	"internal/sim":       true,
	"internal/srb":       true,
	"internal/viz":       true,
	"internal/wal":       true,
}

// latencyPkgs are the internal packages deliberately exempt from the
// determinism discipline: they measure real latency, inject faults, or
// host the analyzer itself. Every internal/* package must appear in
// exactly one of deterministicPkgs and latencyPkgs — enforced by
// TestPackageClassification — so new packages are classified on
// purpose, not by omission.
var latencyPkgs = map[string]bool{
	"internal/cloudsim":    true,
	"internal/faultinject": true,
	"internal/lint":        true,
	"internal/quos":        true,
	"internal/service":     true,
}

// wallClockFuncs are the time package's wall-clock reads.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func checkNoWallClock() Check {
	return Check{
		Name: "nowallclock",
		Doc:  "forbid time.Now/Since/Until in the deterministic compiler/simulator packages",
		Run: func(p *Package) []Finding {
			if !deterministicPkgs[p.Rel] {
				return nil
			}
			var out []Finding
			for _, file := range p.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if name, ok := p.pkgFuncCall(file, call, "time"); ok && wallClockFuncs[name] {
						out = append(out, p.finding("nowallclock", call,
							"time.%s in deterministic package %s: results must not depend on the wall clock", name, p.Rel))
					}
					return true
				})
			}
			return out
		},
	}
}

// --- maporder ---------------------------------------------------------

func checkMapOrder() Check {
	return Check{
		Name: "maporder",
		Doc:  "forbid result assembly (appends/output) inside unordered map iteration unless sorted afterwards",
		Run: func(p *Package) []Finding {
			var out []Finding
			for _, file := range p.Files {
				// Walk function bodies so each range statement can see
				// its enclosing block (for the sorted-afterwards
				// exemption).
				ast.Inspect(file, func(n ast.Node) bool {
					block, ok := n.(*ast.BlockStmt)
					if !ok {
						return true
					}
					for i, stmt := range block.List {
						rs, ok := stmt.(*ast.RangeStmt)
						if !ok || !p.isMapType(rs.X) {
							continue
						}
						out = append(out, p.mapRangeFindings(rs, block.List[i+1:])...)
					}
					return true
				})
			}
			return out
		},
	}
}

// isMapType reports whether the expression's underlying type is a map.
func (p *Package) isMapType(e ast.Expr) bool {
	if p.Info == nil {
		return false
	}
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// mapRangeFindings flags order-sensitive operations in the body of a
// range over a map. Appending to a slice is exempt when a later
// statement in the same block sorts that slice (the collect-then-sort
// idiom); writes to streams/builders have no such repair and are
// always flagged.
func (p *Package) mapRangeFindings(rs *ast.RangeStmt, rest []ast.Stmt) []Finding {
	var out []Finding
	ranged := exprString(rs.X)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(call) || i >= len(v.Lhs) {
					continue
				}
				target := rootIdent(v.Lhs[i])
				if target != nil && sortedLater(rest, target.Name) {
					continue
				}
				out = append(out, p.finding("maporder", v,
					"append inside range over map %s is order-dependent: sort the keys first (or sort %s before use)",
					ranged, exprString(v.Lhs[i])))
			}
		case *ast.CallExpr:
			if name, ok := outputCall(v); ok {
				out = append(out, p.finding("maporder", v,
					"%s inside range over map %s emits in nondeterministic order: iterate sorted keys instead", name, ranged))
			}
		}
		return true
	})
	return out
}

func isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// outputCall recognizes calls that write human- or machine-visible
// output: fmt printers, io/builder Write* methods, and the print
// builtins.
func outputCall(call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "print" || fun.Name == "println" {
			return fun.Name, true
		}
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln",
			"Write", "WriteString", "WriteByte", "WriteRune":
			return exprString(fun), true
		}
	}
	return "", false
}

// sortedLater reports whether a following statement sorts the named
// slice (sort.*/slices.Sort* call mentioning it).
func sortedLater(rest []ast.Stmt, name string) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
				return true
			}
			for _, arg := range call.Args {
				if mentionsIdent(arg, name) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// --- floateq ----------------------------------------------------------

func checkFloatEq() Check {
	return Check{
		Name: "floateq",
		Doc:  "forbid ==/!= between floating-point operands outside tests; use core.FloatEq / fp.Eq",
		Run: func(p *Package) []Finding {
			if p.Info == nil {
				return nil
			}
			var out []Finding
			for _, file := range p.Files {
				if p.isTestFile(file) {
					continue
				}
				ast.Inspect(file, func(n ast.Node) bool {
					be, ok := n.(*ast.BinaryExpr)
					if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
						return true
					}
					if !p.isFloat(be.X) || !p.isFloat(be.Y) {
						return true
					}
					// Both sides constant folds at compile time — no
					// runtime rounding hazard.
					if p.isConst(be.X) && p.isConst(be.Y) {
						return true
					}
					// x != x is the portable NaN probe; leave it alone.
					if exprString(be.X) == exprString(be.Y) {
						return true
					}
					out = append(out, p.finding("floateq", be,
						"exact float comparison %s: use an epsilon helper (core.FloatEq / fp.Eq) or //lint:ignore with justification",
						exprString(be)))
					return true
				})
			}
			return out
		},
	}
}

func (p *Package) isFloat(e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func (p *Package) isConst(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

// --- noprint ----------------------------------------------------------

var stdoutPrinters = map[string]bool{"Print": true, "Printf": true, "Println": true}

func checkNoPrint() Check {
	return Check{
		Name: "noprint",
		Doc:  "forbid fmt.Print*/print/println in internal/ library packages; logging belongs to callers",
		Run: func(p *Package) []Finding {
			if !strings.HasPrefix(p.Rel, "internal/") {
				return nil
			}
			var out []Finding
			for _, file := range p.Files {
				if p.isTestFile(file) {
					continue
				}
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if name, ok := p.pkgFuncCall(file, call, "fmt"); ok && stdoutPrinters[name] {
						out = append(out, p.finding("noprint", call,
							"fmt.%s in library package %s writes to stdout: return data or take an io.Writer", name, p.Rel))
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "print" || id.Name == "println") {
						if p.Info != nil {
							if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); p.Info.Uses[id] != nil && !isBuiltin {
								return true // shadowed by a local function
							}
						}
						out = append(out, p.finding("noprint", call,
							"builtin %s in library package %s writes to stderr: return data or take an io.Writer", id.Name, p.Rel))
					}
					return true
				})
			}
			return out
		},
	}
}

// --- guardedby --------------------------------------------------------

// guardedField records one "// guarded by <mu>" annotation.
type guardedField struct {
	structName string
	fieldName  string
	mu         string // final path component of the annotated mutex
}

func checkGuardedBy() Check {
	return Check{
		Name: "guardedby",
		Doc:  "fields annotated '// guarded by <mu>' must only be touched in methods that lock <mu> (lexical, best-effort)",
		Run: func(p *Package) []Finding {
			guards := collectGuardedFields(p)
			if len(guards) == 0 {
				return nil
			}
			byStruct := map[string]map[string]string{} // struct -> field -> mu
			for _, g := range guards {
				if byStruct[g.structName] == nil {
					byStruct[g.structName] = map[string]string{}
				}
				byStruct[g.structName][g.fieldName] = g.mu
			}
			var out []Finding
			for _, file := range p.Files {
				if p.isTestFile(file) {
					continue
				}
				for _, decl := range file.Decls {
					fn, ok := decl.(*ast.FuncDecl)
					if !ok || fn.Recv == nil || fn.Body == nil {
						continue
					}
					recvName, structName := receiver(fn)
					fields := byStruct[structName]
					if recvName == "" || len(fields) == 0 {
						continue
					}
					// Convention: a *Locked suffix documents that the
					// caller already holds the lock.
					if strings.HasSuffix(fn.Name.Name, "Locked") {
						continue
					}
					locked := locksInBody(fn.Body)
					ast.Inspect(fn.Body, func(n ast.Node) bool {
						sel, ok := n.(*ast.SelectorExpr)
						if !ok {
							return true
						}
						id, ok := sel.X.(*ast.Ident)
						if !ok || id.Name != recvName {
							return true
						}
						mu, guarded := fields[sel.Sel.Name]
						if !guarded || locked[mu] {
							return true
						}
						out = append(out, p.finding("guardedby", sel,
							"%s.%s is guarded by %s but method %s never locks it", recvName, sel.Sel.Name, mu, fn.Name.Name))
						return true
					})
				}
			}
			return out
		},
	}
}

// collectGuardedFields scans struct declarations for fields whose doc
// or line comment says "guarded by <path>".
func collectGuardedFields(p *Package) []guardedField {
	var out []guardedField
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field.Doc, field.Comment)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					out = append(out, guardedField{
						structName: ts.Name.Name,
						fieldName:  name.Name,
						mu:         mu,
					})
				}
			}
			return true
		})
	}
	return out
}

// guardAnnotation extracts the mutex name from "guarded by a.b.mu"
// (the final path component), or "".
func guardAnnotation(groups ...*ast.CommentGroup) string {
	for _, g := range groups {
		if g == nil {
			continue
		}
		m := guardedByRe.FindStringSubmatch(g.Text())
		if m == nil {
			continue
		}
		path := strings.TrimSuffix(m[1], ".")
		if i := strings.LastIndex(path, "."); i >= 0 {
			path = path[i+1:]
		}
		return path
	}
	return ""
}

// receiver returns the receiver identifier name and the receiver's
// (dereferenced) type name.
func receiver(fn *ast.FuncDecl) (recvName, structName string) {
	if len(fn.Recv.List) != 1 {
		return "", ""
	}
	field := fn.Recv.List[0]
	if len(field.Names) == 1 {
		recvName = field.Names[0].Name
	}
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		structName = id.Name
	}
	return recvName, structName
}

// locksInBody collects the final path components of every mutex the
// body locks — e.g. s.mu.Lock() and w.svc.mu.RLock() both yield "mu".
func locksInBody(body *ast.BlockStmt) map[string]bool {
	locked := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "TryLock", "TryRLock":
			if name := lastSelName(sel.X); name != "" {
				locked[name] = true
			}
		case "Wait":
			// cond.Wait reacquires the associated lock; treat a wait on
			// a sync.Cond named like the mutex's sibling conservatively:
			// do nothing — Wait callers must have locked explicitly.
		}
		return true
	})
	return locked
}
