package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkDetFlow is the interprocedural successor of nowallclock: instead
// of forbidding clock reads per package, it tracks *nondeterministic
// values* — wall-clock reads, the global math/rand source, map and
// sync.Map iteration order, goroutine completion order — through
// assignments and static calls, and reports where such a value reaches
// the return of an exported function or a stored field inside one of
// the deterministicPkgs. Per-function "returns tainted" summaries are
// propagated over the module call graph to a fixpoint, so taint that
// passes through any chain of helpers is still seen at the boundary.
func checkDetFlow() Check {
	return Check{
		Name: "detflow",
		Doc: "nondeterminism (wall clock, global rand, map/sync.Map iteration order, " +
			"goroutine completion order) must not flow into results of deterministic packages",
		RunModule: runDetFlow,
	}
}

// detSource says how nondeterminism entered a value: the ultimate
// source plus the call chain that carried it here (nearest callee
// first).
type detSource struct {
	desc string
	via  []string
}

// through extends the chain by one caller-side hop.
func (s detSource) through(callee string) detSource {
	via := make([]string, 0, len(s.via)+1)
	via = append(via, callee)
	via = append(via, s.via...)
	return detSource{desc: s.desc, via: via}
}

func (s detSource) String() string {
	if len(s.via) == 0 {
		return s.desc
	}
	return s.desc + " via " + strings.Join(s.via, " → ")
}

// detSummary is the per-function fact propagated over the call graph.
type detSummary struct {
	tainted bool // some return value may carry nondeterminism
	src     detSource
}

func runDetFlow(m *Module) []Finding {
	sums := map[*FuncInfo]*detSummary{}
	for _, f := range m.Funcs() {
		sums[f] = &detSummary{}
	}
	m.Fixpoint(func(f *FuncInfo) bool {
		if sums[f].tainted {
			return false // monotone: once tainted, stays tainted
		}
		a := newDetAnalysis(m, f, sums)
		a.run()
		if a.returnsTainted {
			sums[f].tainted = true
			sums[f].src = a.returnSrc
			return true
		}
		return false
	})

	// Reporting pass: with final summaries in hand, re-analyze each
	// function in a deterministic package and surface its sinks.
	var out []Finding
	for _, f := range m.Funcs() {
		if !deterministicPkgs[f.Pkg.Rel] {
			continue
		}
		a := newDetAnalysis(m, f, sums)
		a.run()
		out = append(out, a.findings...)
	}
	return out
}

// detAnalysis is one intraprocedural pass: local taint propagation plus
// sink collection for a single function body.
type detAnalysis struct {
	m    *Module
	f    *FuncInfo
	sums map[*FuncInfo]*detSummary

	taint          map[types.Object]detSource
	returnsTainted bool
	returnSrc      detSource
	findings       []Finding
}

func newDetAnalysis(m *Module, f *FuncInfo, sums map[*FuncInfo]*detSummary) *detAnalysis {
	return &detAnalysis{m: m, f: f, sums: sums, taint: map[types.Object]detSource{}}
}

func (a *detAnalysis) run() {
	if a.f.Decl.Body == nil {
		return
	}
	a.orderPass()
	// Local taint is a monotone set over a finite variable population;
	// a handful of sweeps reaches the fixpoint for any realistic body.
	for i := 0; i < 16; i++ {
		if !a.flowPass() {
			break
		}
	}
	a.sinkPass()
}

// objOf resolves an identifier to its object (definition or use).
func (a *detAnalysis) objOf(id *ast.Ident) types.Object {
	info := a.f.Pkg.Info
	if info == nil {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// --- order sources ----------------------------------------------------

// orderPass seeds taint for aggregates built in nondeterministic order:
// appends inside a map range, inside a sync.Map.Range callback, or of
// channel-received values in a loop — unless a later statement in the
// same block sorts the aggregate (the collect-then-sort idiom).
func (a *detAnalysis) orderPass() {
	p := a.f.Pkg
	ast.Inspect(a.f.Decl.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			rest := block.List[i+1:]
			switch st := stmt.(type) {
			case *ast.RangeStmt:
				if p.isMapType(st.X) {
					a.taintAppends(st.Body, rest,
						detSource{desc: "iteration order of map " + exprString(st.X)})
				} else if a.isChanType(st.X) {
					a.taintAppends(st.Body, rest,
						detSource{desc: "goroutine completion order (range over channel " + exprString(st.X) + ")"})
				} else {
					a.taintRecvAppends(st.Body, rest)
				}
			case *ast.ForStmt:
				a.taintRecvAppends(st.Body, rest)
			case *ast.ExprStmt:
				call, ok := st.X.(*ast.CallExpr)
				if !ok || !a.isSyncMapRange(call) || len(call.Args) != 1 {
					continue
				}
				if fl, ok := call.Args[0].(*ast.FuncLit); ok {
					a.taintAppends(fl.Body, rest,
						detSource{desc: "sync.Map.Range iteration order"})
				}
			}
		}
		return true
	})
}

func (a *detAnalysis) isChanType(e ast.Expr) bool {
	info := a.f.Pkg.Info
	if info == nil {
		return false
	}
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func (a *detAnalysis) isSyncMapRange(call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Range" {
		return false
	}
	info := a.f.Pkg.Info
	if info == nil {
		return false
	}
	s, ok := info.Selections[sel]
	return ok && strings.Contains(s.Recv().String(), "sync.Map")
}

// taintAppends marks variables appended to inside body with src, unless
// a later statement in rest sorts them.
func (a *detAnalysis) taintAppends(body *ast.BlockStmt, rest []ast.Stmt, src detSource) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(call) || i >= len(as.Lhs) {
				continue
			}
			target := rootIdent(as.Lhs[i])
			if target == nil || sortedLater(rest, target.Name) {
				continue
			}
			a.setTaint(target, src)
		}
		return true
	})
}

// taintRecvAppends handles the completion-order hazard: inside a loop,
// appending a value that came off a channel records arrival order, not
// submission order.
func (a *detAnalysis) taintRecvAppends(body *ast.BlockStmt, rest []ast.Stmt) {
	// Variables assigned from a channel receive within this loop body.
	recv := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			ue, ok := unparen(rhs).(*ast.UnaryExpr)
			if !ok || ue.Op != token.ARROW || i >= len(as.Lhs) {
				continue
			}
			if id, ok := unparen(as.Lhs[i]).(*ast.Ident); ok {
				if obj := a.objOf(id); obj != nil {
					recv[obj] = true
				}
			}
		}
		return true
	})
	containsRecv := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.UnaryExpr:
				if v.Op == token.ARROW {
					found = true
				}
			case *ast.Ident:
				if obj := a.objOf(v); obj != nil && recv[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(call) || i >= len(as.Lhs) || len(call.Args) < 2 {
				continue
			}
			hazard := false
			for _, arg := range call.Args[1:] {
				if containsRecv(arg) {
					hazard = true
				}
			}
			if !hazard {
				continue
			}
			target := rootIdent(as.Lhs[i])
			if target == nil || sortedLater(rest, target.Name) {
				continue
			}
			a.setTaint(target, detSource{desc: "goroutine completion order (channel receive in loop)"})
		}
		return true
	})
}

func (a *detAnalysis) setTaint(id *ast.Ident, src detSource) bool {
	obj := a.objOf(id)
	if obj == nil || id.Name == "_" {
		return false
	}
	if _, ok := a.taint[obj]; ok {
		return false
	}
	a.taint[obj] = src
	return true
}

// --- value flow -------------------------------------------------------

// flowPass propagates taint through assignments and declarations once,
// reporting whether anything new was tainted.
func (a *detAnalysis) flowPass() bool {
	changed := false
	ast.Inspect(a.f.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
				// x, y := f() — one tainted producer taints every LHS.
				if src, ok := a.exprSource(st.Rhs[0]); ok {
					for _, lhs := range st.Lhs {
						changed = a.taintLHS(lhs, src) || changed
					}
				}
				return true
			}
			for i := 0; i < len(st.Lhs) && i < len(st.Rhs); i++ {
				if src, ok := a.exprSource(st.Rhs[i]); ok {
					changed = a.taintLHS(st.Lhs[i], src) || changed
				}
			}
		case *ast.GenDecl:
			for _, spec := range st.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, val := range vs.Values {
					src, ok := a.exprSource(val)
					if !ok {
						continue
					}
					if len(vs.Names) == len(vs.Values) {
						changed = a.setTaint(vs.Names[i], src) || changed
					} else {
						for _, name := range vs.Names {
							changed = a.setTaint(name, src) || changed
						}
					}
				}
			}
		}
		return true
	})
	return changed
}

// taintLHS taints the variable underlying an assignment target; for
// x.f = v and x[i] = v the whole of x becomes tainted (conservative).
func (a *detAnalysis) taintLHS(e ast.Expr, src detSource) bool {
	id := rootIdent(e)
	if id == nil {
		return false
	}
	return a.setTaint(id, src)
}

// exprSource reports whether evaluating e can yield a nondeterministic
// value, and the first (source-order) reason why.
func (a *detAnalysis) exprSource(e ast.Expr) (detSource, bool) {
	var src detSource
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.FuncLit:
			return false // a closure's body is not this expression's value
		case *ast.CallExpr:
			if s, ok := a.callSource(v); ok {
				src, found = s, true
				return false
			}
		case *ast.Ident:
			if obj := a.objOf(v); obj != nil {
				if s, ok := a.taint[obj]; ok {
					src, found = s, true
					return false
				}
			}
		}
		return true
	})
	return src, found
}

// callSource classifies a call as a taint source: a direct wall-clock
// or global-rand read, or a module function whose summary says its
// return value is tainted.
func (a *detAnalysis) callSource(call *ast.CallExpr) (detSource, bool) {
	p, file := a.f.Pkg, a.f.File
	if name, ok := p.pkgFuncCall(file, call, "time"); ok && wallClockFuncs[name] {
		return detSource{desc: "time." + name + "()"}, true
	}
	for _, path := range []string{"math/rand", "math/rand/v2"} {
		name, ok := p.pkgFuncCall(file, call, path)
		if !ok || randConstructors[name] {
			continue
		}
		if p.resolvesToFunc(call.Fun) || (!p.typeResolves(call.Fun) && randGlobalFuncs[name]) {
			return detSource{desc: "global " + path + "." + name + "()"}, true
		}
	}
	if callee := a.m.Callee(p, call); callee != nil {
		if s := a.sums[callee]; s != nil && s.tainted {
			return s.src.through(callee.Name()), true
		}
	}
	return detSource{}, false
}

// --- sinks ------------------------------------------------------------

// sinkPass finds where taint escapes the function: return statements
// (feeding the summary, and a finding when the function is exported)
// and stores into receiver fields or package-level variables.
func (a *detAnalysis) sinkPass() {
	p := a.f.Pkg
	exported := ast.IsExported(a.f.Decl.Name.Name)

	var named []types.Object
	if res := a.f.Decl.Type.Results; res != nil {
		for _, field := range res.List {
			for _, id := range field.Names {
				if obj := a.objOf(id); obj != nil {
					named = append(named, obj)
				}
			}
		}
	}

	markReturn := func(n ast.Node, src detSource) {
		if !a.returnsTainted {
			a.returnsTainted = true
			a.returnSrc = src
		}
		if exported {
			a.findings = append(a.findings, p.finding("detflow", n,
				"nondeterministic value returned from exported %s in deterministic package %s: %s",
				a.f.Name(), p.Rel, src))
		}
	}

	ast.Inspect(a.f.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false // returns inside literals are not f's returns
		case *ast.ReturnStmt:
			if len(st.Results) == 0 {
				for _, obj := range named {
					if src, ok := a.taint[obj]; ok {
						markReturn(st, src)
						break
					}
				}
				return true
			}
			for _, res := range st.Results {
				if src, ok := a.exprSource(res); ok {
					markReturn(st, src)
					break
				}
			}
		case *ast.AssignStmt:
			for i := range st.Lhs {
				sel, ok := unparen(st.Lhs[i]).(*ast.SelectorExpr)
				if !ok || !a.persistentTarget(sel) {
					continue
				}
				j := i
				if len(st.Rhs) == 1 {
					j = 0
				}
				if j >= len(st.Rhs) {
					continue
				}
				if src, ok := a.exprSource(st.Rhs[j]); ok {
					a.findings = append(a.findings, p.finding("detflow", st,
						"nondeterministic value stored in %s in deterministic package %s: %s",
						exprString(sel), p.Rel, src))
				}
			}
		}
		return true
	})
}

// persistentTarget reports whether the selector writes state that
// outlives the call: a field of the method receiver or a package-level
// variable.
func (a *detAnalysis) persistentTarget(sel *ast.SelectorExpr) bool {
	root := rootIdent(sel)
	if root == nil {
		return false
	}
	obj := a.objOf(root)
	if obj == nil {
		return false
	}
	if recv := a.recvObj(); recv != nil && obj == recv {
		return true
	}
	if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return true
	}
	return false
}

// recvObj returns the method receiver's object, nil for plain
// functions.
func (a *detAnalysis) recvObj() types.Object {
	recv := a.f.Decl.Recv
	if recv == nil || len(recv.List) == 0 || len(recv.List[0].Names) == 0 {
		return nil
	}
	return a.objOf(recv.List[0].Names[0])
}
