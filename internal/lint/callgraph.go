package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the interprocedural layer under detflow, ctxflow,
// lockorder, and atomicmix: a module-wide static call graph plus a
// deterministic fixpoint driver for propagating per-function facts
// along it.
//
// The graph is intentionally conservative and simple:
//
//   - only *static* callees are resolved — direct function calls,
//     package-qualified calls, and concrete method calls (through
//     go/types.Selections). Calls through function values, interface
//     methods, and reflection are unresolved and contribute no edge;
//   - a callee is in the graph only if its body lives in this module
//     (standard-library internals are summarized by the checks
//     themselves, e.g. "time.Now is a taint source");
//   - iteration order everywhere is source order (package path, file
//     name, declaration offset), so every analysis built on top is
//     byte-stable across runs and GOMAXPROCS settings.

// FuncInfo is one module function (or method) with a body, as a call
// graph node.
type FuncInfo struct {
	// Obj is the function's type-checker object (the generic origin
	// for parameterized functions).
	Obj *types.Func
	// Pkg is the package the declaration lives in.
	Pkg *Package
	// File is the parsed file containing the declaration.
	File *ast.File
	// Decl is the declaration; Decl.Body is non-nil.
	Decl *ast.FuncDecl
}

// Name renders the function name with its receiver type, e.g.
// "(*Service).Submit" or "backoffDelay".
func (f *FuncInfo) Name() string {
	if f.Decl.Recv == nil || len(f.Decl.Recv.List) == 0 {
		return f.Decl.Name.Name
	}
	return "(" + exprString(f.Decl.Recv.List[0].Type) + ")." + f.Decl.Name.Name
}

// Module is the unit interprocedural checks run over: every loaded
// package plus the resolved call graph.
type Module struct {
	// Pkgs are the analyzed packages, sorted by import path.
	Pkgs []*Package

	funcs map[*types.Func]*FuncInfo
	order []*FuncInfo
}

// NewModule indexes the packages' function declarations into a call
// graph. It accepts packages with partial type information; calls that
// do not resolve simply contribute no edges.
func NewModule(pkgs []*Package) *Module {
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	m := &Module{Pkgs: sorted, funcs: map[*types.Func]*FuncInfo{}}
	for _, p := range sorted {
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				fi := &FuncInfo{Pkg: p, File: file, Decl: fn}
				if p.Info != nil {
					if obj, ok := p.Info.Defs[fn.Name].(*types.Func); ok {
						fi.Obj = obj
						m.funcs[obj] = fi
					}
				}
				m.order = append(m.order, fi)
			}
		}
	}
	return m
}

// Funcs returns every module function in deterministic source order.
func (m *Module) Funcs() []*FuncInfo { return m.order }

// FuncOf maps a type-checker function object back to its module
// declaration (nil for functions defined outside the module, without a
// body, or unresolved).
func (m *Module) FuncOf(obj *types.Func) *FuncInfo {
	if obj == nil {
		return nil
	}
	return m.funcs[obj.Origin()]
}

// StaticCallee resolves the call's target to a function object: a
// plain function, a package-qualified function, or a concrete method.
// Calls through function values and interface methods return nil.
func StaticCallee(p *Package, call *ast.CallExpr) *types.Func {
	if p.Info == nil {
		return nil
	}
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := p.Info.Uses[fun].(*types.Func); ok {
			return f.Origin()
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f.Origin()
			}
			return nil
		}
		if f, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return f.Origin()
		}
	}
	return nil
}

// Callee resolves a call to its module declaration, nil when the
// target is outside the module or not statically known.
func (m *Module) Callee(p *Package, call *ast.CallExpr) *FuncInfo {
	return m.FuncOf(StaticCallee(p, call))
}

// Fixpoint runs step over every function in source order, repeatedly,
// until one full sweep changes nothing. step reports whether it
// changed the summary it maintains for f. Facts must be monotone (only
// grow) for termination; the sweep count is additionally capped at
// len(funcs)+2 sweeps as a defensive bound, which suffices for any
// monotone boolean fact to reach its fixpoint.
func (m *Module) Fixpoint(step func(f *FuncInfo) bool) {
	for sweep := 0; sweep <= len(m.order)+2; sweep++ {
		changed := false
		for _, f := range m.order {
			if step(f) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// posLess orders two positions by file name then offset (byte-stable
// across runs).
func posLess(fset *token.FileSet, a, b token.Pos) bool {
	pa, pb := fset.Position(a), fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	return pa.Offset < pb.Offset
}
