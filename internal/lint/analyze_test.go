package lint

import (
	"bytes"
	"encoding/json"
	"go/parser"
	"go/token"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestPackageClassification enforces the allowlist invariant the
// checks rely on: every internal/* package is classified as either
// deterministic or latency-measuring — exactly one, never both,
// never neither — and neither map carries stale entries for packages
// that no longer exist. A new internal package must be placed on
// purpose.
func TestPackageClassification(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := packageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			t.Fatal(err)
		}
		rel = filepath.ToSlash(rel)
		if !strings.HasPrefix(rel, "internal/") {
			continue
		}
		seen[rel] = true
		det, lat := deterministicPkgs[rel], latencyPkgs[rel]
		switch {
		case det && lat:
			t.Errorf("%s is in both deterministicPkgs and latencyPkgs", rel)
		case !det && !lat:
			t.Errorf("%s is in neither deterministicPkgs nor latencyPkgs: classify it in internal/lint/checks.go", rel)
		}
	}
	for rel := range deterministicPkgs {
		if strings.HasPrefix(rel, "internal/") && !seen[rel] {
			t.Errorf("deterministicPkgs lists %s, which no longer exists", rel)
		}
	}
	for rel := range latencyPkgs {
		if !seen[rel] {
			t.Errorf("latencyPkgs lists %s, which no longer exists", rel)
		}
	}
	if len(seen) == 0 {
		t.Fatal("packageDirs found no internal packages")
	}
}

// TestUnusedIgnoreAudit exercises the stale-suppression audit: a
// directive that suppresses nothing is itself reported, and the
// suppression statistics count it.
func TestUnusedIgnoreAudit(t *testing.T) {
	p := parseSnippet(t, `package demo

func less(a, b float64) bool {
	//lint:ignore floateq legacy tolerance kept for the calibration rework
	return a < b
}
`)
	res := Analyze([]*Package{p}, Checks(), nil)
	var audit []Finding
	for _, f := range res.Findings {
		if f.Check == unusedIgnoreName {
			audit = append(audit, f)
		}
	}
	if len(audit) != 1 || !strings.Contains(audit[0].Message, "floateq") {
		t.Errorf("want one unusedignore finding naming floateq, got %v", res.Findings)
	}
	want := SuppressionStats{Directives: 1, Used: 0, Unused: 1}
	if res.Suppressions != want {
		t.Errorf("suppressions = %+v, want %+v", res.Suppressions, want)
	}
}

// TestUsedIgnoreCounted is the audit's complement: a directive that
// earns its keep is counted used and produces no finding.
func TestUsedIgnoreCounted(t *testing.T) {
	p := parseSnippet(t, `package demo

func eq(a, b float64) bool {
	//lint:ignore floateq bit-exact comparison is the point here
	return a == b
}
`)
	res := Analyze([]*Package{p}, Checks(), nil)
	if len(res.Findings) != 0 {
		t.Errorf("want no findings, got %v", res.Findings)
	}
	want := SuppressionStats{Directives: 1, Used: 1, Unused: 0}
	if res.Suppressions != want {
		t.Errorf("suppressions = %+v, want %+v", res.Suppressions, want)
	}
}

// renderFixtureResults parses the finding-rich fixtures fresh (new
// FileSet, new type info, new maps — so any map-iteration order
// leaking into output would differ between calls) and renders every
// Analyze result as one JSON byte stream.
func renderFixtureResults(t *testing.T) []byte {
	t.Helper()
	cases := []struct{ file, rel string }{
		{"detflow.go", "internal/sim"},
		{"ctxflow.go", "internal/service"},
		{"lockorder.go", "internal/demo"},
		{"atomicmix.go", "internal/demo"},
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, c := range cases {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, filepath.Join("testdata", c.file), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		p, err := CheckFile(fset, f, "repro", c.rel)
		if err != nil {
			t.Fatal(err)
		}
		res := Analyze([]*Package{p}, Checks(), nil)
		if len(res.Findings) == 0 {
			t.Fatalf("fixture %s produced no findings; the determinism test needs non-trivial output", c.file)
		}
		if err := enc.Encode(res.Findings); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestOutputDeterminism asserts the analyzer's output is byte-stable:
// repeated runs over freshly parsed inputs, under different
// GOMAXPROCS values, must render identically. This is the contract
// that makes `make lint-json` artifacts diffable.
func TestOutputDeterminism(t *testing.T) {
	first := renderFixtureResults(t)
	for run := 0; run < 3; run++ {
		if got := renderFixtureResults(t); !bytes.Equal(got, first) {
			t.Fatalf("run %d differs from first run:\n--- first\n%s--- run\n%s", run, first, got)
		}
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	if got := renderFixtureResults(t); !bytes.Equal(got, first) {
		t.Fatalf("GOMAXPROCS=1 run differs:\n--- first\n%s--- got\n%s", first, got)
	}
}
