package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ctxScopePkgs are the concurrency-heavy layers where cancellation must
// be plumbed end to end: a goroutine stuck in one of these without a
// context or stop channel can outlive Shutdown and strand a backend.
var ctxScopePkgs = map[string]bool{
	"internal/service": true,
	"internal/fleet":   true,
	"internal/ccache":  true,
}

// checkCtxFlow verifies cancellation plumbing in ctxScopePkgs with the
// call graph: a function that *transitively* reaches a blocking
// operation must accept a context.Context (or a stop channel, or an
// *http.Request it can take one from); context.Background()/TODO() are
// forbidden there outside main/init; a received ctx parameter must
// actually be used.
//
// "Blocking" means unbounded waits: channel operations, select without
// a default, time.Sleep, sync.Cond/WaitGroup Wait, and network or
// subprocess calls. Plain mutex critical sections are deliberately NOT
// blockers — they are bounded by their holders and are lockorder's
// business; flagging them would force a context into every accessor.
// Operations inside `go` statements and function literals are
// attributed to the goroutine/closure, not the enclosing function.
func checkCtxFlow() Check {
	return Check{
		Name: "ctxflow",
		Doc: "service/fleet/ccache functions that transitively block must accept a context " +
			"or stop channel; no context.Background/TODO there; no dropped ctx params",
		RunModule: runCtxFlow,
	}
}

// blockSummary is the per-function fact: can a call to this function
// block the caller, and on what.
type blockSummary struct {
	blocks bool
	src    detSource
}

func runCtxFlow(m *Module) []Finding {
	sums := map[*FuncInfo]*blockSummary{}
	for _, f := range m.Funcs() {
		sums[f] = &blockSummary{}
	}
	m.Fixpoint(func(f *FuncInfo) bool {
		if sums[f].blocks {
			return false // monotone
		}
		if src, ok := blockingIn(m, f, sums); ok {
			sums[f].blocks = true
			sums[f].src = src
			return true
		}
		return false
	})

	var out []Finding
	for _, f := range m.Funcs() {
		p := f.Pkg
		if !ctxScopePkgs[p.Rel] {
			continue
		}
		name := f.Decl.Name.Name
		if sums[f].blocks && !ctxAware(f) && name != "main" && name != "init" {
			out = append(out, p.finding("ctxflow", f.Decl.Name,
				"%s blocks on %s but accepts no context.Context or stop channel: plumb cancellation through",
				f.Name(), sums[f].src))
		}
		out = append(out, droppedCtx(f)...)
	}

	for _, p := range m.Pkgs {
		if !ctxScopePkgs[p.Rel] {
			continue
		}
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := p.pkgFuncCall(file, call, "context"); ok && (name == "Background" || name == "TODO") {
					out = append(out, p.finding("ctxflow", call,
						"context.%s() in %s: plumb the caller's context instead of minting a root", name, p.Rel))
				}
				return true
			})
		}
	}
	return out
}

// blockingIn reports the first blocking operation reachable from f's
// body on the current thread (skipping go statements and function
// literals), including calls to module functions already known to
// block.
func blockingIn(m *Module, f *FuncInfo, sums map[*FuncInfo]*blockSummary) (detSource, bool) {
	if f.Decl.Body == nil {
		return detSource{}, false
	}

	// Subtrees whose blocking belongs to someone else: spawned
	// goroutines, closure bodies, and the comm statements of a select
	// that has a default (those ops cannot block).
	type span struct{ lo, hi token.Pos }
	var skips []span
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			skips = append(skips, span{v.Pos(), v.End()})
		case *ast.FuncLit:
			skips = append(skips, span{v.Pos(), v.End()})
		case *ast.SelectStmt:
			if selectHasDefault(v) {
				for _, c := range v.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						skips = append(skips, span{cc.Comm.Pos(), cc.Comm.End()})
					}
				}
			}
		}
		return true
	})
	skipped := func(pos token.Pos) bool {
		for _, s := range skips {
			if pos >= s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}

	var src detSource
	found := false
	report := func(s detSource) {
		if !found {
			src, found = s, true
		}
	}
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if skipped(n.Pos()) {
			return false
		}
		switch v := n.(type) {
		case *ast.SelectStmt:
			if !selectHasDefault(v) {
				report(detSource{desc: "select with no default case"})
			}
		case *ast.SendStmt:
			report(detSource{desc: "channel send " + exprString(v.Chan) + " <- …"})
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				report(detSource{desc: "channel receive <-" + exprString(v.X)})
			}
		case *ast.CallExpr:
			if s, ok := blockingCall(m, f, v, sums); ok {
				report(s)
			}
		}
		return !found
	})
	return src, found
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingCall classifies a call as blocking: a curated set of
// standard-library waits plus any module callee whose summary blocks.
func blockingCall(m *Module, f *FuncInfo, call *ast.CallExpr, sums map[*FuncInfo]*blockSummary) (detSource, bool) {
	p, file := f.Pkg, f.File
	if name, ok := p.pkgFuncCall(file, call, "time"); ok && name == "Sleep" {
		return detSource{desc: "time.Sleep"}, true
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && p.Info != nil {
		if s, ok := p.Info.Selections[sel]; ok {
			recv := s.Recv().String()
			switch sel.Sel.Name {
			case "Wait":
				for _, t := range []string{"sync.Cond", "sync.WaitGroup", "exec.Cmd"} {
					if strings.Contains(recv, t) {
						return detSource{desc: t + ".Wait"}, true
					}
				}
			case "Do":
				if strings.Contains(recv, "http.Client") {
					return detSource{desc: "http.Client.Do"}, true
				}
			case "Run", "Output", "CombinedOutput":
				if strings.Contains(recv, "exec.Cmd") {
					return detSource{desc: "exec.Cmd." + sel.Sel.Name}, true
				}
			}
		}
	}
	if name, ok := p.pkgFuncCall(file, call, "net/http"); ok {
		switch name {
		case "Get", "Post", "PostForm", "Head":
			return detSource{desc: "http." + name}, true
		}
	}
	if name, ok := p.pkgFuncCall(file, call, "net"); ok && strings.HasPrefix(name, "Dial") {
		return detSource{desc: "net." + name}, true
	}
	if callee := m.Callee(p, call); callee != nil {
		if cs := sums[callee]; cs != nil && cs.blocks {
			return cs.src.through(callee.Name()), true
		}
	}
	return detSource{}, false
}

// ctxAware reports whether the function already has a cancellation
// input: a context.Context parameter, a struct{}-channel parameter
// (stop/done channel), or an *http.Request (which carries a context).
func ctxAware(f *FuncInfo) bool {
	params := f.Decl.Type.Params
	if params == nil || f.Pkg.Info == nil {
		return false
	}
	for _, field := range params.List {
		t := f.Pkg.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		switch t.String() {
		case "context.Context", "*net/http.Request":
			return true
		}
		if ch, ok := t.Underlying().(*types.Chan); ok {
			if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
				return true
			}
		}
	}
	return false
}

// droppedCtx flags context.Context parameters that the body never
// reads: cancellation that arrives but goes nowhere.
func droppedCtx(f *FuncInfo) []Finding {
	p := f.Pkg
	params := f.Decl.Type.Params
	if params == nil || f.Decl.Body == nil || p.Info == nil {
		return nil
	}
	var out []Finding
	for _, field := range params.List {
		t := p.Info.TypeOf(field.Type)
		if t == nil || t.String() != "context.Context" {
			continue
		}
		for _, id := range field.Names {
			if id.Name == "_" {
				continue
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				continue
			}
			used := false
			ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
				if u, ok := n.(*ast.Ident); ok && p.Info.Uses[u] == obj {
					used = true
				}
				return !used
			})
			if !used {
				out = append(out, p.finding("ctxflow", id,
					"context parameter %s of %s is received but never used: forward it to the blocking calls or drop it",
					id.Name, f.Name()))
			}
		}
	}
	return out
}
