package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runFixtureFile loads one testdata file as a standalone package
// rooted (virtually) at rel and runs the named check plus the
// suppression layer over it.
func runFixtureFile(t *testing.T, checkName, file, rel string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	path := filepath.Join("testdata", file)
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	p, err := CheckFile(fset, f, "repro", rel)
	if err != nil {
		t.Fatalf("type-check %s: %v", path, err)
	}
	if len(p.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors: %v", path, p.TypeErrors)
	}
	checks, err := SelectChecks(checkName)
	if err != nil {
		t.Fatalf("select %s: %v", checkName, err)
	}
	return Run([]*Package{p}, checks)
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// wantedLines extracts the fixture's `// want "substring"` comments,
// keyed by line number.
func wantedLines(t *testing.T, file string) map[int]string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", file))
	if err != nil {
		t.Fatal(err)
	}
	out := map[int]string{}
	for i, line := range strings.Split(string(data), "\n") {
		if m := wantRe.FindStringSubmatch(line); m != nil {
			out[i+1] = m[1]
		}
	}
	if len(out) == 0 {
		t.Fatalf("fixture %s declares no // want expectations", file)
	}
	return out
}

func TestFixtures(t *testing.T) {
	cases := []struct {
		check string
		file  string
		rel   string
	}{
		{"norandglobal", "norandglobal.go", "internal/demo"},
		{"nowallclock", "nowallclock.go", "internal/sim"},
		{"maporder", "maporder.go", "internal/partition"},
		{"floateq", "floateq.go", "internal/core"},
		{"floateq", "ignore.go", "internal/demo"},
		{"noprint", "noprint.go", "internal/demo"},
		{"guardedby", "guardedby.go", "internal/demo"},
		{"detflow", "detflow.go", "internal/sim"},
		{"ctxflow", "ctxflow.go", "internal/service"},
		{"lockorder", "lockorder.go", "internal/demo"},
		{"atomicmix", "atomicmix.go", "internal/demo"},
	}
	for _, c := range cases {
		t.Run(c.file+"/"+c.check, func(t *testing.T) {
			findings := runFixtureFile(t, c.check, c.file, c.rel)
			want := wantedLines(t, c.file)
			got := map[int]Finding{}
			for _, f := range findings {
				if prev, dup := got[f.Line]; dup {
					t.Errorf("line %d has two findings: %q and %q", f.Line, prev.Message, f.Message)
				}
				got[f.Line] = f
			}
			for line, substr := range want {
				f, ok := got[line]
				if !ok {
					t.Errorf("line %d: want a finding containing %q, got none", line, substr)
					continue
				}
				if !strings.Contains(f.Message, substr) {
					t.Errorf("line %d: finding %q does not contain %q", line, f.Message, substr)
				}
				if f.Check != c.check {
					t.Errorf("line %d: finding from check %q, want %q", line, f.Check, c.check)
				}
				delete(got, line)
			}
			for line, f := range got {
				t.Errorf("line %d: unexpected finding %q", line, f.Message)
			}
		})
	}
}

// TestNoWallClockAllowlist re-runs the nowallclock fixture as if it
// lived in an allowlisted package: service code may read the clock.
func TestNoWallClockAllowlist(t *testing.T) {
	for _, rel := range []string{"internal/service", "internal/cloudsim", "internal/quos", "cmd/qucloudd", ""} {
		findings := runFixtureFile(t, "nowallclock", "nowallclock.go", rel)
		if len(findings) != 0 {
			t.Errorf("rel %q: want no findings outside deterministic packages, got %v", rel, findings)
		}
	}
}

// TestNoPrintScope re-runs the noprint fixture outside internal/:
// commands and examples may print.
func TestNoPrintScope(t *testing.T) {
	for _, rel := range []string{"cmd/qulint", "examples/quickstart", ""} {
		findings := runFixtureFile(t, "noprint", "noprint.go", rel)
		if len(findings) != 0 {
			t.Errorf("rel %q: want no findings outside internal/, got %v", rel, findings)
		}
	}
}

// parseSnippet type-checks an inline source string as internal/demo.
func parseSnippet(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "snippet.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse snippet: %v", err)
	}
	p, err := CheckFile(fset, f, "repro", "internal/demo")
	if err != nil {
		t.Fatalf("type-check snippet: %v", err)
	}
	return p
}

func TestMalformedIgnoreDirective(t *testing.T) {
	p := parseSnippet(t, `package demo

func eq(a, b float64) bool {
	//lint:ignore floateq
	return a == b
}
`)
	findings := Run([]*Package{p}, Checks())
	var checks []string
	for _, f := range findings {
		checks = append(checks, f.Check)
	}
	// The reason-less directive must not suppress, and must itself be
	// reported.
	joined := strings.Join(checks, ",")
	if !strings.Contains(joined, "lintdirective") || !strings.Contains(joined, "floateq") {
		t.Errorf("want lintdirective + floateq findings, got %v", findings)
	}
}

func TestIgnoreAllWildcard(t *testing.T) {
	p := parseSnippet(t, `package demo

func eq(a, b float64) bool {
	//lint:ignore all migration shim, remove with the next calibration rework
	return a == b
}
`)
	if findings := Run([]*Package{p}, Checks()); len(findings) != 0 {
		t.Errorf("want all findings suppressed, got %v", findings)
	}
}

func TestSelectChecks(t *testing.T) {
	all, err := SelectChecks("")
	if err != nil || len(all) != len(Checks()) {
		t.Fatalf("empty spec: got %d checks, err %v", len(all), err)
	}
	two, err := SelectChecks("floateq, maporder")
	if err != nil || len(two) != 2 {
		t.Fatalf("two-check spec: got %v, err %v", two, err)
	}
	if _, err := SelectChecks("nosuchcheck"); err == nil {
		t.Fatal("unknown check: want error, got nil")
	}
	if _, err := SelectChecks(","); err == nil {
		t.Fatal("empty selection: want error, got nil")
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Check: "floateq", File: "x.go", Line: 3, Col: 9, Message: "boom"}
	if got, want := f.String(), "x.go:3:9: boom (floateq)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestEveryCheckHasFixture keeps the fixture suite in sync with the
// registry: a new check must ship a testdata file named after it.
func TestEveryCheckHasFixture(t *testing.T) {
	for _, c := range Checks() {
		path := filepath.Join("testdata", c.Name+".go")
		if _, err := os.Stat(path); err != nil {
			t.Errorf("check %s has no fixture %s: %v", c.Name, path, err)
		}
		if c.Doc == "" {
			t.Errorf("check %s has no doc line", c.Name)
		}
	}
}

// TestLoadModule exercises the real loader against this module and
// asserts the lint package itself is among the results with type info
// attached.
func TestLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	byRel := map[string]*Package{}
	for _, p := range pkgs {
		byRel[p.Rel] = p
	}
	for _, rel := range []string{"", "internal/lint", "internal/core", "internal/sim", "cmd/qulint"} {
		p, ok := byRel[rel]
		if !ok {
			t.Errorf("module load missing package %q", rel)
			continue
		}
		if p.Types == nil || p.Info == nil {
			t.Errorf("package %q loaded without type info", rel)
		}
		if len(p.TypeErrors) > 0 {
			t.Errorf("package %q has type errors: %v", rel, p.TypeErrors[:min(3, len(p.TypeErrors))])
		}
	}
	if len(byRel) < 15 {
		t.Errorf("module load found only %d packages", len(byRel))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func ExampleFinding_String() {
	f := Finding{Check: "nowallclock", File: "internal/sim/engine.go", Line: 42, Col: 7, Message: "time.Now in deterministic package internal/sim"}
	fmt.Println(f)
	// Output: internal/sim/engine.go:42:7: time.Now in deterministic package internal/sim (nowallclock)
}
