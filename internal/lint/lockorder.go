package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// checkLockOrder builds a module-wide lock-acquisition graph: an edge
// A → B is recorded whenever B is acquired (directly, or transitively
// through a static call) while A is held. Cycles in the graph are
// potential deadlocks. The held-set is tracked with a small abstract
// interpreter that understands defer mu.Unlock() (including inside a
// deferred closure), branch joins (a lock held on only one arm is
// dropped at the join), and early returns — so it also reports paths
// that can return with a mutex still held, and re-acquisition of a
// mutex already held. `// guarded by <mu>` annotations on fields that
// are themselves mutexes contribute documentation edges to the same
// graph. Methods named *Locked (callee runs under the caller's lock)
// and mutex-wrapper methods named Lock/Unlock/RLock/RUnlock are
// exempt from the return-with-lock rule.
func checkLockOrder() Check {
	return Check{
		Name: "lockorder",
		Doc: "consistent mutex acquisition order module-wide: no cyclic lock orders, no " +
			"returning with a mutex held (defer-aware), no re-acquiring a held mutex",
		RunModule: runLockOrder,
	}
}

type lockKind int

const (
	lockNone lockKind = iota
	lockAcquire
	lockRelease
)

// lockCall classifies a call as a sync mutex acquire/release and
// returns the canonical identity of the mutex. Only methods declared
// in package sync count; a custom Lock method is an ordinary call.
func lockCall(p *Package, call *ast.CallExpr) (string, lockKind) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || p.Info == nil {
		return "", lockNone
	}
	var kind lockKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = lockAcquire
	case "Unlock", "RUnlock":
		kind = lockRelease
	default:
		return "", lockNone
	}
	s, ok := p.Info.Selections[sel]
	if !ok {
		return "", lockNone
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", lockNone
	}
	return muKey(p, sel.X), kind
}

// muKey renders a stable identity for the mutex expression: struct
// fields become pkg.Type.field (so s.mu and w.svc.mu agree), package
// variables become pkg.name, and locals are position-qualified.
func muKey(p *Package, e ast.Expr) string {
	e = unparen(e)
	switch v := e.(type) {
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[v]; ok {
			if fv, ok := s.Obj().(*types.Var); ok && fv.IsField() {
				recv := s.Recv()
				for {
					ptr, ok := recv.(*types.Pointer)
					if !ok {
						break
					}
					recv = ptr.Elem()
				}
				if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
					return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + fv.Name()
				}
				return fv.Name()
			}
		}
		if obj, ok := p.Info.Uses[v.Sel]; ok && obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name()
		}
		return exprString(v)
	case *ast.Ident:
		if obj, ok := p.Info.Uses[v].(*types.Var); ok {
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Name() + "." + obj.Name()
			}
			pos := p.Fset.Position(obj.Pos())
			return fmt.Sprintf("%s@%s:%d", v.Name, filepath.Base(pos.Filename), pos.Line)
		}
		return v.Name
	}
	return exprString(e)
}

// lockSummary is the per-function fact for the fixpoint: the set of
// mutexes a call to this function may acquire (transitively).
type lockSummary struct {
	acquires map[string]bool
}

func runLockOrder(m *Module) []Finding {
	sums := map[*FuncInfo]*lockSummary{}
	for _, f := range m.Funcs() {
		sums[f] = &lockSummary{acquires: map[string]bool{}}
	}
	m.Fixpoint(func(f *FuncInfo) bool {
		s := sums[f]
		before := len(s.acquires)
		p := f.Pkg
		inspectSameThread(f.Decl.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if key, kind := lockCall(p, call); kind == lockAcquire {
				s.acquires[key] = true
			} else if kind == lockNone {
				if callee := m.Callee(p, call); callee != nil {
					for k := range sums[callee].acquires {
						s.acquires[k] = true
					}
				}
			}
		})
		return len(s.acquires) > before
	})

	w := &lockOrderPass{
		m:       m,
		sums:    sums,
		edgePos: map[lockEdge]token.Pos{},
		edgeFn:  map[lockEdge]string{},
	}
	if len(m.Pkgs) > 0 {
		w.fset = m.Pkgs[0].Fset
	}
	for _, f := range m.Funcs() {
		w.checkFunc(f)
	}
	w.annotationEdges()
	return append(w.findings, w.cycleFindings()...)
}

// inspectSameThread walks n skipping go statements and function
// literals: what a spawned goroutine or a stored closure acquires is
// its own business, not the enclosing function's.
func inspectSameThread(n ast.Node, visit func(ast.Node)) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		}
		if c != nil {
			visit(c)
		}
		return true
	})
}

type lockEdge struct{ from, to string }

type lockOrderPass struct {
	m       *Module
	sums    map[*FuncInfo]*lockSummary
	fset    *token.FileSet
	edgePos map[lockEdge]token.Pos // representative (earliest) site
	edgeFn  map[lockEdge]string    // function holding `from` there
	findings []Finding
}

func (w *lockOrderPass) addEdge(from, to string, pos token.Pos, fn string) {
	if from == to {
		return
	}
	e := lockEdge{from, to}
	if old, ok := w.edgePos[e]; !ok || posLess(w.fset, pos, old) {
		w.edgePos[e] = pos
		w.edgeFn[e] = fn
	}
}

// checkFunc abstract-interprets one function body with a held-set.
func (w *lockOrderPass) checkFunc(f *FuncInfo) {
	name := f.Decl.Name.Name
	switch {
	case f.Decl.Body == nil,
		strings.HasSuffix(name, "Locked"),
		name == "Lock", name == "Unlock", name == "RLock", name == "RUnlock":
		return
	}
	st := &lockFnState{w: w, f: f, deferred: map[string]bool{}}
	st.collectDeferred(f.Decl.Body)
	held := map[string]bool{}
	if !st.stmts(f.Decl.Body.List, held) {
		// Fell off the end of the body: an implicit return.
		st.exit(f.Decl.Name, held)
	}
}

type lockFnState struct {
	w        *lockOrderPass
	f        *FuncInfo
	deferred map[string]bool // mutexes released by a defer (flow-insensitive)
}

// collectDeferred records defer mu.Unlock() and deferred closures that
// unlock, anywhere in the body.
func (st *lockFnState) collectDeferred(body *ast.BlockStmt) {
	p := st.f.Pkg
	noteUnlocks := func(n ast.Node) {
		ast.Inspect(n, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok {
				if key, kind := lockCall(p, call); kind == lockRelease {
					st.deferred[key] = true
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a non-deferred closure's unlocks don't count
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if key, kind := lockCall(p, ds.Call); kind == lockRelease {
			st.deferred[key] = true
			return true
		}
		if fl, ok := unparen(ds.Call.Fun).(*ast.FuncLit); ok {
			noteUnlocks(fl.Body)
		}
		return true
	})
}

// stmts runs the statements in order; true means the path terminated
// (returned, panicked, or branched away).
func (st *lockFnState) stmts(list []ast.Stmt, held map[string]bool) bool {
	for _, s := range list {
		if st.stmt(s, held) {
			return true
		}
	}
	return false
}

func (st *lockFnState) stmt(s ast.Stmt, held map[string]bool) bool {
	switch v := s.(type) {
	case *ast.BlockStmt:
		return st.stmts(v.List, held)
	case *ast.ExprStmt:
		if call, ok := unparen(v.X).(*ast.CallExpr); ok && terminatingCall(call) {
			return true
		}
		st.expr(v.X, held)
	case *ast.AssignStmt:
		for _, r := range v.Rhs {
			st.expr(r, held)
		}
	case *ast.SendStmt:
		st.expr(v.Value, held)
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred unlocks are handled by collectDeferred; a spawned
		// goroutine does not change the caller's held-set.
	case *ast.ReturnStmt:
		for _, r := range v.Results {
			st.expr(r, held)
		}
		st.exit(v, held)
		return true
	case *ast.BranchStmt:
		return true // stop tracking this path (break/continue/goto)
	case *ast.IfStmt:
		if v.Init != nil {
			st.stmt(v.Init, held)
		}
		st.expr(v.Cond, held)
		thenHeld := cloneSet(held)
		thenTerm := st.stmts(v.Body.List, thenHeld)
		elseHeld := cloneSet(held)
		elseTerm := false
		if v.Else != nil {
			elseTerm = st.stmt(v.Else, elseHeld)
		}
		switch {
		case thenTerm && elseTerm && v.Else != nil:
			return true
		case thenTerm:
			replaceSet(held, elseHeld)
		case elseTerm:
			replaceSet(held, thenHeld)
		default:
			replaceSet(held, intersectSets(thenHeld, elseHeld))
		}
	case *ast.ForStmt:
		if v.Init != nil {
			st.stmt(v.Init, held)
		}
		if v.Cond != nil {
			st.expr(v.Cond, held)
		}
		body := cloneSet(held)
		st.stmts(v.Body.List, body)
		// The loop may run zero times; keep the entry held-set.
	case *ast.RangeStmt:
		st.expr(v.X, held)
		body := cloneSet(held)
		st.stmts(v.Body.List, body)
	case *ast.SwitchStmt:
		if v.Init != nil {
			st.stmt(v.Init, held)
		}
		if v.Tag != nil {
			st.expr(v.Tag, held)
		}
		return st.clauses(caseBodies(v.Body), hasDefaultCase(v.Body), held)
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			st.stmt(v.Init, held)
		}
		return st.clauses(caseBodies(v.Body), hasDefaultCase(v.Body), held)
	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		for _, c := range v.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			body := cc.Body
			if cc.Comm != nil {
				body = append([]ast.Stmt{cc.Comm}, cc.Body...)
			}
			bodies = append(bodies, body)
		}
		// A select always takes some case (or blocks forever): no
		// fall-through path outside the clauses.
		return st.clauses(bodies, true, held)
	case *ast.LabeledStmt:
		return st.stmt(v.Stmt, held)
	}
	return false
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// clauses evaluates each clause body from the entry held-set and joins
// with intersection; exhaustive says whether some clause must run.
func (st *lockFnState) clauses(bodies [][]ast.Stmt, exhaustive bool, held map[string]bool) bool {
	var outs []map[string]bool
	for _, b := range bodies {
		h := cloneSet(held)
		if !st.stmts(b, h) {
			outs = append(outs, h)
		}
	}
	if !exhaustive {
		outs = append(outs, cloneSet(held))
	}
	if len(outs) == 0 {
		return len(bodies) > 0 // every clause terminated
	}
	replaceSet(held, intersectAll(outs))
	return false
}

// expr visits the calls inside an expression (skipping closures).
func (st *lockFnState) expr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			st.call(call, held)
		}
		return true
	})
}

func (st *lockFnState) call(call *ast.CallExpr, held map[string]bool) {
	p := st.f.Pkg
	if key, kind := lockCall(p, call); kind != lockNone {
		switch kind {
		case lockAcquire:
			if held[key] {
				st.w.findings = append(st.w.findings, p.finding("lockorder", call,
					"%s acquires %s while already holding it", st.f.Name(), key))
				return
			}
			for _, h := range sortedSet(held) {
				st.w.addEdge(h, key, call.Pos(), st.f.Name())
			}
			held[key] = true
		case lockRelease:
			delete(held, key)
		}
		return
	}
	callee := st.w.m.Callee(p, call)
	if callee == nil || len(held) == 0 {
		return
	}
	for _, a := range sortedSet(st.w.sums[callee].acquires) {
		if held[a] {
			st.w.findings = append(st.w.findings, p.finding("lockorder", call,
				"%s calls %s while holding %s, which %s also acquires (self-deadlock)",
				st.f.Name(), callee.Name(), a, callee.Name()))
			continue
		}
		for _, h := range sortedSet(held) {
			st.w.addEdge(h, a, call.Pos(), st.f.Name())
		}
	}
}

// exit reports mutexes still held when the function leaves, net of
// deferred unlocks.
func (st *lockFnState) exit(n ast.Node, held map[string]bool) {
	p := st.f.Pkg
	for _, k := range sortedSet(held) {
		if st.deferred[k] {
			continue
		}
		st.w.findings = append(st.w.findings, p.finding("lockorder", n,
			"%s can return while still holding %s (no unlock or defer on this path)", st.f.Name(), k))
	}
}

// terminatingCall recognizes calls after which control does not
// continue on this path.
func terminatingCall(call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if root, ok := fun.X.(*ast.Ident); ok {
			if root.Name == "os" && name == "Exit" {
				return true
			}
			if name == "Fatal" || name == "Fatalf" || name == "Fatalln" {
				return true
			}
		}
	}
	return false
}

// annotationEdges adds documentation-derived edges: a field that is
// itself a mutex and carries `// guarded by <mu>` declares that <mu>
// is taken first.
func (w *lockOrderPass) annotationEdges() {
	for _, p := range w.m.Pkgs {
		for _, file := range p.Files {
			pkgName := file.Name.Name
			ast.Inspect(file, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				structType, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range structType.Fields.List {
					mu := guardAnnotation(field.Doc, field.Comment)
					if mu == "" {
						continue
					}
					t := exprString(field.Type)
					if t != "sync.Mutex" && t != "sync.RWMutex" {
						continue
					}
					for _, name := range field.Names {
						from := pkgName + "." + ts.Name.Name + "." + mu
						to := pkgName + "." + ts.Name.Name + "." + name.Name
						w.addEdge(from, to, name.Pos(), "// guarded by annotation")
					}
				}
				return true
			})
		}
	}
}

// cycleFindings enumerates each elementary cycle in the acquisition
// graph once (anchored at its lexicographically smallest node) and
// reports it at the earliest edge site.
func (w *lockOrderPass) cycleFindings() []Finding {
	adj := map[string][]string{}
	for e := range w.edgePos {
		adj[e.from] = append(adj[e.from], e.to)
	}
	var nodes []string
	for n := range adj {
		sort.Strings(adj[n])
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var out []Finding
	seen := map[string]bool{}
	for _, start := range nodes {
		path := []string{start}
		onPath := map[string]bool{start: true}
		var dfs func(n string)
		dfs = func(n string) {
			for _, next := range adj[n] {
				if next == start {
					key := strings.Join(path, "→")
					if !seen[key] {
						seen[key] = true
						out = append(out, w.cycleFinding(path))
					}
					continue
				}
				if next < start || onPath[next] {
					continue
				}
				path = append(path, next)
				onPath[next] = true
				dfs(next)
				path = path[:len(path)-1]
				delete(onPath, next)
			}
		}
		dfs(start)
	}
	return out
}

func (w *lockOrderPass) cycleFinding(cycle []string) Finding {
	var parts []string
	for i, from := range cycle {
		to := cycle[(i+1)%len(cycle)]
		e := lockEdge{from, to}
		pos := w.fset.Position(w.edgePos[e])
		parts = append(parts, fmt.Sprintf("%s → %s (%s, %s:%d)",
			from, to, w.edgeFn[e], filepath.Base(pos.Filename), pos.Line))
	}
	first := lockEdge{cycle[0], cycle[1%len(cycle)]}
	pos := w.fset.Position(w.edgePos[first])
	return Finding{
		Check: "lockorder",
		File:  pos.Filename,
		Line:  pos.Line,
		Col:   pos.Column,
		Message: "lock-order cycle (potential deadlock): " +
			strings.Join(parts, "; "),
	}
}

// --- small set helpers ------------------------------------------------

func cloneSet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func replaceSet(dst, src map[string]bool) {
	for k := range dst {
		delete(dst, k)
	}
	for k := range src {
		dst[k] = true
	}
}

func intersectSets(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func intersectAll(sets []map[string]bool) map[string]bool {
	out := cloneSet(sets[0])
	for _, s := range sets[1:] {
		out = intersectSets(out, s)
	}
	return out
}

func sortedSet(s map[string]bool) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
