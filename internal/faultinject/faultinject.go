// Package faultinject provides deterministic, test-only fault hooks
// for the service path. Production code never imports it with a live
// injector: internal/service carries an optional *Injector in its
// Config (nil in every real deployment) and consults it at three named
// sites — the compiler, the simulator, and the scheduler. Chaos tests
// hand the service an injector scripted with per-site rules and drive
// the full HTTP API through panics, timeouts, and error bursts.
//
// Determinism: every decision is a pure function of the injector's
// seed and the per-site visit counter. Probabilistic rules draw from a
// rand.Rand seeded at construction, so a fixed (seed, rule set,
// request order) triple always injects the same faults.
package faultinject

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Site names a hook point in the service path.
type Site string

// The three service hook sites.
const (
	// SiteCompile fires before each batch compilation attempt.
	SiteCompile Site = "compile"
	// SiteSimulate fires before each batch simulation.
	SiteSimulate Site = "simulate"
	// SiteSchedule fires inside batch claiming, before the EPST
	// scheduler runs. The service holds its queue lock there, so rules
	// at this site should not inject latency (errors and panics only).
	SiteSchedule Site = "schedule"
	// SiteCacheLookup fires at the top of each compile-cache lookup. An
	// injected error makes the cache bypass itself for that call
	// (compute directly, store nothing); a panic exercises the worker's
	// panic-isolation path through the cache.
	SiteCacheLookup Site = "cache-lookup"
	// SiteCacheStore fires before a computed result is stored into the
	// compile cache. An injected error suppresses only the store, so a
	// poisoned or unwritable cache can never fail the compilation it
	// fronts.
	SiteCacheStore Site = "cache-store"
	// SiteLatency is an observation site: workers route measured
	// latencies through Observe before feeding the metrics histograms,
	// so chaos tests can substitute NaN/Inf readings and prove the
	// metrics pipeline rejects them.
	SiteLatency Site = "latency"
	// SiteWALAppend fires before each write-ahead-log append. An
	// injected error aborts only that append: the service counts the
	// durability loss and keeps serving (availability over durability).
	// Rules at this site should inject errors, not panics — the append
	// runs under the service's queue lock on the submit path.
	SiteWALAppend Site = "wal-append"
	// SiteWALReplay fires once during startup WAL replay. An injected
	// error makes the service discard the replayed records and start
	// empty, while the log stays open for new appends.
	SiteWALReplay Site = "wal-replay"
)

// Plan describes what an activated rule does to the visiting call.
type Plan struct {
	// Msg is the injected failure message (a default is derived from
	// the site and visit number when empty).
	Msg string
	// Panic makes the visit panic instead of returning an error,
	// exercising the caller's panic-isolation path.
	Panic bool
	// Transient marks the returned error as retryable: it implements
	// Transient() bool, the net.Error-style contract the service's
	// retry policy checks. Ignored when Panic is set.
	Transient bool
	// Latency delays the visit before failing — or, when neither Panic
	// nor Error is implied (ErrorFree), before succeeding. The sleep
	// honors the caller's context: an expired deadline surfaces the
	// context error, which is how simulator-timeout chaos is driven.
	Latency time.Duration
	// ErrorFree suppresses the injected error: the rule only delays
	// (pure latency injection). Panic takes precedence.
	ErrorFree bool
	// ReplaceObservation makes Observe return Observation instead of
	// the measured value at observation sites (see SiteLatency). Only
	// Observe consults these fields; Visit ignores them.
	ReplaceObservation bool
	Observation        float64
}

// Rule activates a Plan on a window of visits to one site. Visits are
// counted from 1 per site.
type Rule struct {
	// From..To is the inclusive 1-based visit window; From <= 0 means
	// "from the first visit", To <= 0 means "forever".
	From, To int
	// Prob activates the rule on each in-window visit with the given
	// probability (seeded, deterministic); <= 0 or >= 1 means always.
	Prob float64
	Plan Plan
}

// matches reports whether the rule covers the n-th visit.
func (r Rule) matches(n int) bool {
	if r.From > 0 && n < r.From {
		return false
	}
	if r.To > 0 && n > r.To {
		return false
	}
	return true
}

// Error is an injected failure. It implements Transient() so the
// service's retry classifier can distinguish retryable bursts from
// permanent faults.
type Error struct {
	Site      Site
	Visit     int
	Msg       string
	Retryable bool
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: %s visit %d: %s", e.Site, e.Visit, e.Msg)
}

// Transient reports whether the service should retry the failed call.
func (e *Error) Transient() bool { return e.Retryable }

// Injector holds the scripted rules and per-site visit counters. All
// methods are safe for concurrent use (workers on different backends
// visit concurrently).
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand      // guarded by mu
	rules  map[Site][]Rule // guarded by mu
	visits map[Site]int    // guarded by mu
}

// New returns an empty injector whose probabilistic rules draw from
// the given seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		rules:  map[Site][]Rule{},
		visits: map[Site]int{},
	}
}

// Add appends a rule to the site; rules are evaluated in insertion
// order and the first match wins.
func (in *Injector) Add(site Site, r Rule) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[site] = append(in.rules[site], r)
	return in
}

// FailVisits injects plain (permanent) errors on visits [from, to].
func (in *Injector) FailVisits(site Site, from, to int) *Injector {
	return in.Add(site, Rule{From: from, To: to, Plan: Plan{Msg: "injected failure"}})
}

// FailTransient injects retryable errors on visits [from, to].
func (in *Injector) FailTransient(site Site, from, to int) *Injector {
	return in.Add(site, Rule{From: from, To: to, Plan: Plan{Msg: "injected transient failure", Transient: true}})
}

// PanicVisits injects panics on visits [from, to].
func (in *Injector) PanicVisits(site Site, from, to int) *Injector {
	return in.Add(site, Rule{From: from, To: to, Plan: Plan{Msg: "injected panic", Panic: true}})
}

// DelayVisits injects pure latency (no error) on visits [from, to].
func (in *Injector) DelayVisits(site Site, from, to int, d time.Duration) *Injector {
	return in.Add(site, Rule{From: from, To: to, Plan: Plan{Latency: d, ErrorFree: true}})
}

// ObserveVisits substitutes v for the measured value on visits
// [from, to] of an observation site (see Observe). Substituting NaN or
// ±Inf is the canonical way to prove a metrics consumer rejects
// poisoned readings.
func (in *Injector) ObserveVisits(site Site, from, to int, v float64) *Injector {
	return in.Add(site, Rule{From: from, To: to, Plan: Plan{ReplaceObservation: true, Observation: v}})
}

// Visits returns how many times the site has been visited.
func (in *Injector) Visits(site Site) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.visits[site]
}

// Visit is the hook call: it advances the site's visit counter,
// evaluates the rules, and acts out the first matching plan — sleeping
// its latency (bounded by ctx), then panicking or returning the
// injected error. It returns nil when no rule fires, and ctx's error
// when the context expires during an injected delay. A nil injector
// or nil ctx is safe.
func (in *Injector) Visit(ctx context.Context, site Site) error {
	if in == nil {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	in.mu.Lock()
	in.visits[site]++
	n := in.visits[site]
	var plan *Plan
	for _, r := range in.rules[site] {
		if !r.matches(n) {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && in.rng.Float64() >= r.Prob {
			continue
		}
		p := r.Plan
		plan = &p
		break
	}
	in.mu.Unlock()
	if plan == nil {
		return nil
	}
	if plan.Latency > 0 {
		t := time.NewTimer(plan.Latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	msg := plan.Msg
	if msg == "" {
		msg = "injected fault"
	}
	if plan.Panic {
		panic(fmt.Sprintf("faultinject: %s visit %d: %s", site, n, msg))
	}
	if plan.ErrorFree {
		return nil
	}
	return &Error{Site: site, Visit: n, Msg: msg, Retryable: plan.Transient}
}

// Observe is the measurement hook: callers pass a measured value (a
// latency, a score) through it before recording the value anywhere.
// It advances the site's visit counter and, when the first matching
// rule sets ReplaceObservation, returns the rule's Observation instead
// of the measurement. A nil injector returns the measurement unchanged,
// so production code pays one nil check.
func (in *Injector) Observe(site Site, measured float64) float64 {
	if in == nil {
		return measured
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.visits[site]++
	n := in.visits[site]
	for _, r := range in.rules[site] {
		if !r.matches(n) {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && in.rng.Float64() >= r.Prob {
			continue
		}
		if r.Plan.ReplaceObservation {
			return r.Plan.Observation
		}
		break
	}
	return measured
}
