package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilInjectorIsSafe(t *testing.T) {
	var in *Injector
	if err := in.Visit(context.Background(), SiteCompile); err != nil {
		t.Fatalf("nil injector injected %v", err)
	}
}

func TestVisitWindows(t *testing.T) {
	in := New(1).FailVisits(SiteCompile, 2, 3)
	var got []bool
	for i := 0; i < 5; i++ {
		got = append(got, in.Visit(nil, SiteCompile) != nil)
	}
	want := []bool{false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visit %d: injected=%v, want %v (%v)", i+1, got[i], want[i], got)
		}
	}
	if in.Visits(SiteCompile) != 5 {
		t.Fatalf("visit count = %d, want 5", in.Visits(SiteCompile))
	}
	// Other sites are independent.
	if in.Visits(SiteSimulate) != 0 || in.Visit(nil, SiteSimulate) != nil {
		t.Fatal("rules leaked across sites")
	}
}

func TestOpenEndedWindowAndFirstMatchWins(t *testing.T) {
	in := New(1).
		Add(SiteSimulate, Rule{From: 1, To: 1, Plan: Plan{Msg: "first", Transient: true}}).
		Add(SiteSimulate, Rule{Plan: Plan{Msg: "rest"}})
	err := in.Visit(nil, SiteSimulate)
	var fe *Error
	if !errors.As(err, &fe) || fe.Msg != "first" || !fe.Transient() {
		t.Fatalf("visit 1: %v", err)
	}
	for i := 0; i < 3; i++ {
		err = in.Visit(nil, SiteSimulate)
		if !errors.As(err, &fe) || fe.Msg != "rest" || fe.Transient() {
			t.Fatalf("open-ended rule missed visit %d: %v", i+2, err)
		}
	}
}

func TestTransientClassification(t *testing.T) {
	in := New(1).FailTransient(SiteCompile, 1, 1).FailVisits(SiteCompile, 2, 2)
	var tr interface{ Transient() bool }
	if err := in.Visit(nil, SiteCompile); !errors.As(err, &tr) || !tr.Transient() {
		t.Fatalf("visit 1 not transient: %v", err)
	}
	if err := in.Visit(nil, SiteCompile); !errors.As(err, &tr) || tr.Transient() {
		t.Fatalf("visit 2 unexpectedly transient: %v", err)
	}
}

func TestPanicPlan(t *testing.T) {
	in := New(1).PanicVisits(SiteSchedule, 1, 1)
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("expected injected panic")
			}
		}()
		_ = in.Visit(nil, SiteSchedule)
	}()
	if err := in.Visit(nil, SiteSchedule); err != nil {
		t.Fatalf("visit 2 should pass: %v", err)
	}
}

func TestLatencyHonorsContext(t *testing.T) {
	in := New(1).DelayVisits(SiteSimulate, 1, 0, time.Minute)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := in.Visit(ctx, SiteSimulate)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected DeadlineExceeded, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("latency injection ignored the context deadline")
	}
}

func TestDelayWithoutErrorSucceeds(t *testing.T) {
	in := New(1).DelayVisits(SiteCompile, 1, 1, time.Millisecond)
	if err := in.Visit(context.Background(), SiteCompile); err != nil {
		t.Fatalf("pure latency rule returned %v", err)
	}
}

func TestProbabilisticRuleIsSeedDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		in := New(seed).Add(SiteCompile, Rule{Prob: 0.5, Plan: Plan{Msg: "coin"}})
		out := make([]bool, 32)
		for i := range out {
			out[i] = in.Visit(nil, SiteCompile) != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at visit %d", i+1)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("p=0.5 rule fired %d/%d times", hits, len(a))
	}
}
