package fp

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{1, 1 + 1e-12, true},                  // rounding noise
		{1, 1 + 1e-6, false},                  // real difference
		{0, 1e-12, true},                      // absolute near zero
		{0, 1e-6, false},                      //
		{1e12, 1e12 + 1, true},                // relative at scale
		{1e12, 1.001e12, false},               //
		{0.1 + 0.2, 0.3, true},                // the classic
		{math.Inf(1), math.Inf(1), true},      //
		{math.Inf(1), math.Inf(-1), false},    //
		{math.Inf(1), math.MaxFloat64, false}, //
		{math.NaN(), math.NaN(), false},       //
		{math.NaN(), 0, false},                //
		{-1, 1, false},                        //
		{1e-15, -1e-15, true},                 // straddling zero
		{0.95, 0.95 + 2e-16, true},            // omega knee values
		{0.4 + 1e-8, 0.4, false},              // above Tol
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := Eq(c.b, c.a); got != c.want {
			t.Errorf("Eq(%v, %v) = %v, want %v (asymmetric)", c.b, c.a, got, c.want)
		}
	}
}

func TestZero(t *testing.T) {
	for _, x := range []float64{0, 1e-12, -1e-12, math.Copysign(0, -1)} {
		if !Zero(x) {
			t.Errorf("Zero(%v) = false, want true", x)
		}
	}
	for _, x := range []float64{1e-6, -1e-6, 1, math.Inf(1), math.NaN()} {
		if Zero(x) {
			t.Errorf("Zero(%v) = true, want false", x)
		}
	}
}
