// Package fp holds the repository's floating-point comparison
// predicates. Fidelity scores (EPST, PST), modularity values, and
// calibration error rates are all float64; comparing them with == is
// exact to the last bit and silently nondeterministic across
// refactorings that reassociate arithmetic. Every package below
// internal/core uses these helpers (core re-exports Eq as
// core.FloatEq for the public API); the floateq lint check enforces
// it.
package fp

import "math"

// Tol is the default comparison tolerance: two values within
// Tol × max(1, |a|, |b|) of each other are considered equal. 1e-9 sits
// far below any physically meaningful fidelity or modularity
// difference (calibration error rates are ~1e-3) while staying far
// above accumulated float64 rounding noise (~1e-15 per operation).
const Tol = 1e-9

// Eq reports whether a and b are equal within Tol, relative to the
// larger magnitude (absolute near zero). NaN compares unequal to
// everything, including itself; equal infinities compare equal.
func Eq(a, b float64) bool {
	//lint:ignore floateq exact fast path; the epsilon helpers must bottom out somewhere
	if a == b {
		return true // also catches equal infinities
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsNaN(a) || math.IsNaN(b) {
		return false // unequal infinities; NaN equals nothing
	}
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= Tol*scale
}

// Zero reports whether x is within Tol of zero.
func Zero(x float64) bool {
	return math.Abs(x) <= Tol
}
