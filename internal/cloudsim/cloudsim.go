// Package cloudsim simulates a quantum cloud service: jobs arrive over
// time at a single NISQ backend, a scheduling policy decides which jobs
// run together (multi-programming), and queueing metrics — waiting
// time, turnaround, makespan, throughput, qubit utilization — are
// collected. It substantiates the paper's motivation (§II-E: >120
// queued jobs/day on IBMQ Vigo) and quantifies how much the QuCloud
// scheduler's co-location relieves the queue versus separate execution.
package cloudsim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/sched"
)

// Policy selects how the backend batches queued jobs.
type Policy int

// Scheduling policies.
const (
	// FIFOSeparate runs every job alone, in arrival order.
	FIFOSeparate Policy = iota
	// FIFOPairs co-locates adjacent queued jobs unconditionally (the
	// "random workloads" baseline).
	FIFOPairs
	// QuCloud batches jobs with the EPST scheduler (Algorithm 4).
	QuCloud
)

func (p Policy) String() string {
	switch p {
	case FIFOSeparate:
		return "fifo-separate"
	case FIFOPairs:
		return "fifo-pairs"
	case QuCloud:
		return "qucloud"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config tunes the simulation.
type Config struct {
	Policy Policy
	// Epsilon, Lookahead, MaxColocate configure the QuCloud policy.
	Epsilon     float64
	Lookahead   int
	MaxColocate int
	// Shots is the number of trials each batch executes (the paper
	// uses 8024).
	Shots int
	// LayerSeconds is the gate-layer duration; ShotOverheadSeconds is
	// the per-shot reset+readout cost; CompileSeconds is charged once
	// per batch. Defaults (see DefaultConfig) approximate
	// superconducting-hardware timescales.
	LayerSeconds        float64
	ShotOverheadSeconds float64
	CompileSeconds      float64
	// FleetPolicy optionally breaks RunFleet's idle-backend ties with
	// an internal/fleet allocation policy (the same scoring the live
	// service dispatches with), so offline simulation and qucloudd
	// agree on placement. nil keeps the pure earliest-free rule with
	// the deterministic name tie-break.
	FleetPolicy fleet.Policy
}

// DefaultConfig returns a QuCloud-policy configuration with hardware-
// plausible timing (300 ns layers, 1 ms per-shot overhead).
func DefaultConfig() Config {
	return Config{
		Policy:              QuCloud,
		Epsilon:             0.15,
		Lookahead:           10,
		MaxColocate:         3,
		Shots:               8024,
		LayerSeconds:        300e-9,
		ShotOverheadSeconds: 1e-3,
		CompileSeconds:      2,
	}
}

// Metrics aggregates the simulation outcome.
type Metrics struct {
	// Makespan is the finish time of the last batch (seconds).
	Makespan float64
	// AvgWait is the mean time jobs spent queued before their batch
	// started; AvgTurnaround adds service time.
	AvgWait       float64
	AvgTurnaround float64
	// ThroughputPerHour is jobs completed per hour of makespan.
	ThroughputPerHour float64
	// Batches and TRF report the batching intensity.
	Batches int
	TRF     float64
	// QubitUtilization is the time- and qubit-weighted busy fraction.
	QubitUtilization float64
}

// Run simulates the backend serving the jobs under the configured
// policy and returns the metrics with the per-batch trace.
func Run(d *arch.Device, jobs []Job, cfg Config) (*Metrics, []BatchRecord, error) {
	if len(jobs) == 0 {
		return &Metrics{}, nil, nil
	}
	if cfg.Shots <= 0 {
		return nil, nil, fmt.Errorf("cloudsim: shots must be positive")
	}
	queue := append([]Job(nil), jobs...)
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].Arrival < queue[j].Arrival })

	comp := core.NewCompiler(d)
	comp.Attempts = 1

	var (
		records []BatchRecord
		now     float64
		waitSum float64
		turnSum float64
		busyQS  float64 // qubit-seconds busy
	)
	for len(queue) > 0 {
		// The backend idles until the next job arrives.
		if queue[0].Arrival > now {
			now = queue[0].Arrival
		}
		// Jobs available for batching: arrived by `now`.
		avail := 0
		for avail < len(queue) && queue[avail].Arrival <= now {
			avail++
		}
		batchJobs := pickBatch(d, queue[:avail], cfg)
		progs := make([]*circuit.Circuit, len(batchJobs))
		ids := make([]int, len(batchJobs))
		for i, j := range batchJobs {
			progs[i] = j.Circ
			ids[i] = j.ID
		}
		strat := core.CDAPXSwap
		if len(progs) == 1 {
			strat = core.Separate
		}
		res, err := comp.Compile(progs, strat)
		if err != nil {
			// Cannot co-locate after all: run the head job alone.
			strat = core.Separate
			batchJobs = batchJobs[:1]
			progs = progs[:1]
			ids = ids[:1]
			res, err = comp.Compile(progs, strat)
			if err != nil {
				return nil, nil, fmt.Errorf("cloudsim: job %d unschedulable: %w", ids[0], err)
			}
		}

		service := cfg.CompileSeconds +
			float64(cfg.Shots)*(cfg.ShotOverheadSeconds+float64(res.Depth)*cfg.LayerSeconds)
		start := now
		finish := start + service
		qubits := 0
		for _, p := range progs {
			qubits += p.NumQubits
		}
		records = append(records, BatchRecord{
			JobIDs:     ids,
			Start:      start,
			Finish:     finish,
			Depth:      res.Depth,
			CNOTs:      res.CNOTs,
			Strategy:   strat,
			QubitsUsed: qubits,
		})
		for _, j := range batchJobs {
			waitSum += start - j.Arrival
			turnSum += finish - j.Arrival
		}
		busyQS += float64(qubits) * service
		now = finish

		inBatch := map[int]bool{}
		for _, id := range ids {
			inBatch[id] = true
		}
		var rest []Job
		for _, j := range queue {
			if !inBatch[j.ID] {
				rest = append(rest, j)
			}
		}
		queue = rest
	}

	m := &Metrics{
		Makespan:      now,
		AvgWait:       waitSum / float64(len(jobs)),
		AvgTurnaround: turnSum / float64(len(jobs)),
		Batches:       len(records),
		TRF:           float64(len(jobs)) / float64(len(records)),
	}
	if now > 0 {
		m.ThroughputPerHour = float64(len(jobs)) / now * 3600
		m.QubitUtilization = busyQS / (float64(d.NumQubits()) * now)
	}
	return m, records, nil
}

// pickBatch selects the next batch from the arrived portion of the
// queue according to the policy. The head job is always included.
func pickBatch(d *arch.Device, arrived []Job, cfg Config) []Job {
	switch cfg.Policy {
	case FIFOSeparate:
		return arrived[:1]
	case FIFOPairs:
		n := 2
		if n > len(arrived) {
			n = len(arrived)
		}
		return append([]Job(nil), arrived[:n]...)
	case QuCloud:
		sjobs := make([]sched.Job, len(arrived))
		for i, j := range arrived {
			sjobs[i] = j.SchedJob()
		}
		scfg := sched.DefaultConfig()
		scfg.Epsilon = cfg.Epsilon
		scfg.Lookahead = cfg.Lookahead
		scfg.MaxColocate = cfg.MaxColocate
		if d.NumQubits() > 20 {
			scfg.Omega = 0.40
		}
		batches, err := sched.Schedule(d, sjobs, scfg)
		if err != nil || len(batches) == 0 {
			return arrived[:1]
		}
		first := batches[0]
		inFirst := map[int]bool{}
		for _, id := range first.JobIDs {
			inFirst[id] = true
		}
		var out []Job
		for _, j := range arrived {
			if inFirst[j.ID] {
				out = append(out, j)
			}
		}
		return out
	}
	return arrived[:1]
}

// PoissonArrivals generates n jobs with exponential inter-arrival times
// of the given mean (seconds), cycling through the provided circuits.
// The stream is deterministic in the seed.
func PoissonArrivals(circs []*circuit.Circuit, n int, meanGap float64, seed int64) []Job {
	jobs := make([]Job, n)
	t := 0.0
	state := uint64(seed)*2654435761 + 1013904223
	next := func() float64 {
		// xorshift64* uniform in (0,1)
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		u := float64(state*0x2545F4914F6CDD1D>>11) / float64(uint64(1)<<53)
		if u <= 0 {
			u = 0.5
		}
		return u
	}
	for i := 0; i < n; i++ {
		// Inverse-CDF exponential sample.
		u := next()
		t += -meanGap * math.Log(u)
		jobs[i] = Job{ID: i, Circ: circs[i%len(circs)], Arrival: t}
	}
	return jobs
}
