package cloudsim

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fleet"
)

// fleetBackend is one device's simulation state: its compiler, the
// time it next becomes free, and how many jobs it has finished.
type fleetBackend struct {
	dev      *arch.Device
	comp     *core.Compiler
	freeAt   float64
	finished int
}

// selectBackend returns the backend that becomes free earliest.
// Backends tied on freeAt are decided by the fleet policy scored
// against the head job (sharing the live dispatcher's placement
// logic), or, with no policy, by ascending device name — never by
// slice order.
func selectBackend(backends []*fleetBackend, head Job, policy fleet.Policy) *fleetBackend {
	tied := []*fleetBackend{backends[0]}
	for _, cand := range backends[1:] {
		switch {
		case cand.freeAt < tied[0].freeAt:
			tied = append(tied[:0], cand)
		case cand.freeAt > tied[0].freeAt:
			// strictly later: not a contender
		default:
			tied = append(tied, cand) // exact freeAt tie
		}
	}
	if len(tied) == 1 {
		return tied[0]
	}
	if policy != nil {
		cands := make([]fleet.Candidate, len(tied))
		for i, t := range tied {
			cands[i] = fleet.Candidate{
				Chip: fleet.ChipOf(t.dev),
				Load: fleet.Load{Dispatched: int64(t.finished)},
			}
		}
		fj := fleet.Job{
			Qubits: head.Circ.NumQubits,
			CNOTs:  head.Circ.CNOTCount(),
			Gate1s: head.Circ.Gate1Count(),
		}
		if idx := fleet.Pick(policy, cands, fj); idx >= 0 {
			return tied[idx]
		}
	}
	best := tied[0]
	for _, t := range tied[1:] {
		if t.dev.Name < best.dev.Name {
			best = t
		}
	}
	return best
}

// FleetMetrics aggregates a multi-backend simulation.
type FleetMetrics struct {
	Metrics
	// PerDevice maps device name to the jobs it completed.
	PerDevice map[string]int
}

// RunFleet simulates a cloud service with several backends sharing one
// submission queue: whenever a backend becomes idle it pulls the next
// batch (per the policy) from the jobs that have arrived. Devices must
// have distinct names. Returns aggregate metrics plus each backend's
// batch trace.
func RunFleet(devices []*arch.Device, jobs []Job, cfg Config) (*FleetMetrics, map[string][]BatchRecord, error) {
	if len(devices) == 0 {
		return nil, nil, fmt.Errorf("cloudsim: fleet needs at least one device")
	}
	seen := map[string]bool{}
	for _, d := range devices {
		if seen[d.Name] {
			return nil, nil, fmt.Errorf("cloudsim: duplicate device name %q", d.Name)
		}
		seen[d.Name] = true
	}
	if len(jobs) == 0 {
		return &FleetMetrics{PerDevice: map[string]int{}}, map[string][]BatchRecord{}, nil
	}
	if cfg.Shots <= 0 {
		return nil, nil, fmt.Errorf("cloudsim: shots must be positive")
	}

	queue := append([]Job(nil), jobs...)
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].Arrival < queue[j].Arrival })

	backends := make([]*fleetBackend, len(devices))
	for i, d := range devices {
		comp := core.NewCompiler(d)
		comp.Attempts = 1
		backends[i] = &fleetBackend{dev: d, comp: comp}
	}

	traces := map[string][]BatchRecord{}
	var (
		waitSum, turnSum float64
		busyQS           float64
		makespan         float64
		batches          int
	)
	for len(queue) > 0 {
		// The next backend to act is the one free earliest; it cannot
		// start before the head job arrives. Ties on freeAt are broken
		// deterministically — by the fleet allocation policy when one is
		// configured, by ascending device name otherwise — never by
		// slice order.
		b := selectBackend(backends, queue[0], cfg.FleetPolicy)
		now := b.freeAt
		if queue[0].Arrival > now {
			now = queue[0].Arrival
		}
		avail := 0
		for avail < len(queue) && queue[avail].Arrival <= now {
			avail++
		}
		batchJobs := pickBatch(b.dev, queue[:avail], cfg)
		progs := make([]*circuit.Circuit, len(batchJobs))
		ids := make([]int, len(batchJobs))
		for i, j := range batchJobs {
			progs[i] = j.Circ
			ids[i] = j.ID
		}
		strat := core.CDAPXSwap
		if len(progs) == 1 {
			strat = core.Separate
		}
		res, err := b.comp.Compile(progs, strat)
		if err != nil {
			strat = core.Separate
			batchJobs = batchJobs[:1]
			progs = progs[:1]
			ids = ids[:1]
			res, err = b.comp.Compile(progs, strat)
			if err != nil {
				return nil, nil, fmt.Errorf("cloudsim: job %d unschedulable on %s: %w", ids[0], b.dev.Name, err)
			}
		}
		service := cfg.CompileSeconds +
			float64(cfg.Shots)*(cfg.ShotOverheadSeconds+float64(res.Depth)*cfg.LayerSeconds)
		finish := now + service
		qubits := 0
		for _, p := range progs {
			qubits += p.NumQubits
		}
		traces[b.dev.Name] = append(traces[b.dev.Name], BatchRecord{
			JobIDs:     ids,
			Start:      now,
			Finish:     finish,
			Depth:      res.Depth,
			CNOTs:      res.CNOTs,
			Strategy:   strat,
			QubitsUsed: qubits,
		})
		for _, j := range batchJobs {
			waitSum += now - j.Arrival
			turnSum += finish - j.Arrival
		}
		busyQS += float64(qubits) * service
		b.freeAt = finish
		b.finished += len(ids)
		batches++
		if finish > makespan {
			makespan = finish
		}

		inBatch := map[int]bool{}
		for _, id := range ids {
			inBatch[id] = true
		}
		var rest []Job
		for _, j := range queue {
			if !inBatch[j.ID] {
				rest = append(rest, j)
			}
		}
		queue = rest
	}

	m := &FleetMetrics{
		Metrics: Metrics{
			Makespan:      makespan,
			AvgWait:       waitSum / float64(len(jobs)),
			AvgTurnaround: turnSum / float64(len(jobs)),
			Batches:       batches,
			TRF:           float64(len(jobs)) / float64(batches),
		},
		PerDevice: map[string]int{},
	}
	totalQubits := 0
	for _, b := range backends {
		m.PerDevice[b.dev.Name] = b.finished
		totalQubits += b.dev.NumQubits()
	}
	if makespan > 0 {
		m.ThroughputPerHour = float64(len(jobs)) / makespan * 3600
		m.QubitUtilization = busyQS / (float64(totalQubits) * makespan)
	}
	return m, traces, nil
}
