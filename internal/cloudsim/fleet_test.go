package cloudsim

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/fleet"
)

func saturatedJobs(n int) []Job {
	circs := suiteCircuits()
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{ID: i, Circ: circs[i%len(circs)], Arrival: 0}
	}
	return jobs
}

func TestFleetValidation(t *testing.T) {
	if _, _, err := RunFleet(nil, saturatedJobs(2), DefaultConfig()); err == nil {
		t.Fatal("empty fleet must error")
	}
	d := arch.IBMQ16(0)
	if _, _, err := RunFleet([]*arch.Device{d, d}, saturatedJobs(2), DefaultConfig()); err == nil {
		t.Fatal("duplicate device names must error")
	}
	m, traces, err := RunFleet([]*arch.Device{d}, nil, DefaultConfig())
	if err != nil || len(traces) != 0 || m.Batches != 0 {
		t.Fatalf("empty jobs: %v %v %v", m, traces, err)
	}
	cfg := DefaultConfig()
	cfg.Shots = 0
	if _, _, err := RunFleet([]*arch.Device{d}, saturatedJobs(2), cfg); err == nil {
		t.Fatal("zero shots must error")
	}
}

func TestFleetServesEveryJobOnce(t *testing.T) {
	d1 := arch.IBMQ16(0)
	d2 := arch.Tokyo(1)
	jobs := saturatedJobs(14)
	cfg := DefaultConfig()
	cfg.Shots = 512
	m, traces, err := RunFleet([]*arch.Device{d1, d2}, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	total := 0
	for dev, recs := range traces {
		for _, r := range recs {
			for _, id := range r.JobIDs {
				if seen[id] {
					t.Fatalf("job %d served twice", id)
				}
				seen[id] = true
				total++
			}
		}
		if m.PerDevice[dev] == 0 && len(recs) > 0 {
			t.Fatalf("device %s completed jobs but reports 0", dev)
		}
	}
	if total != len(jobs) {
		t.Fatalf("served %d of %d", total, len(jobs))
	}
	// Both backends should have participated under a saturated queue.
	if m.PerDevice[d1.Name] == 0 || m.PerDevice[d2.Name] == 0 {
		t.Fatalf("load not spread: %v", m.PerDevice)
	}
}

func TestFleetBeatsSingleBackendOnMakespan(t *testing.T) {
	jobs := saturatedJobs(16)
	cfg := DefaultConfig()
	cfg.Shots = 1024
	single, _, err := Run(arch.IBMQ16(0), jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	second := arch.IBMQ16(5)
	second.Name = "ibmq16-b"
	fleet, _, err := RunFleet([]*arch.Device{arch.IBMQ16(0), second}, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Makespan >= single.Makespan {
		t.Fatalf("fleet makespan %v >= single-backend %v", fleet.Makespan, single.Makespan)
	}
	if fleet.AvgWait >= single.AvgWait {
		t.Fatalf("fleet wait %v >= single-backend %v", fleet.AvgWait, single.AvgWait)
	}
}

// TestFleetIdleTieBreaksOnName pins the regression where two backends
// free at the same instant were picked by slice order: the
// lexicographically smaller device name must win from either position.
func TestFleetIdleTieBreaksOnName(t *testing.T) {
	mk := func(name string, free float64) *fleetBackend {
		d := arch.IBMQ16(0)
		d.Name = name
		return &fleetBackend{dev: d, freeAt: free}
	}
	head := saturatedJobs(1)[0]
	za := []*fleetBackend{mk("zeta", 3), mk("alpha", 3)}
	az := []*fleetBackend{mk("alpha", 3), mk("zeta", 3)}
	for _, backends := range [][]*fleetBackend{za, az} {
		if got := selectBackend(backends, head, nil).dev.Name; got != "alpha" {
			t.Fatalf("freeAt tie broke to %q, want alpha", got)
		}
	}
	// An earlier-free backend still wins outright, whatever its name.
	late := []*fleetBackend{mk("alpha", 5), mk("zeta", 3)}
	if got := selectBackend(late, head, nil).dev.Name; got != "zeta" {
		t.Fatalf("earliest-free backend lost to %q", got)
	}
}

// TestFleetIdleTieUsesPolicy: with a fleet policy configured, a freeAt
// tie is decided by policy score (here fidelity: the cleaner chip),
// not by name.
func TestFleetIdleTieUsesPolicy(t *testing.T) {
	clean := arch.IBMQ16(0)
	clean.Name = "zz-clean"
	noisy := arch.IBMQ16(7)
	noisy.Name = "aa-noisy"
	for q := range noisy.ReadoutErr {
		noisy.ReadoutErr[q] = 0.2
	}
	for l, e := range noisy.CNOTErr {
		noisy.CNOTErr[l] = e + 0.05
	}
	p, err := fleet.New("fidelity")
	if err != nil {
		t.Fatal(err)
	}
	backends := []*fleetBackend{
		{dev: noisy},
		{dev: clean},
	}
	got := selectBackend(backends, saturatedJobs(1)[0], p).dev.Name
	if got != "zz-clean" {
		t.Fatalf("fidelity tie-break picked %q, want zz-clean", got)
	}
}

func TestFleetBackendsDoNotOverlapPerDevice(t *testing.T) {
	jobs := saturatedJobs(10)
	cfg := DefaultConfig()
	cfg.Shots = 256
	_, traces, err := RunFleet([]*arch.Device{arch.IBMQ16(0), arch.Tokyo(2)}, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for dev, recs := range traces {
		for i := 1; i < len(recs); i++ {
			if recs[i].Start < recs[i-1].Finish-1e-9 {
				t.Fatalf("%s: overlapping batches", dev)
			}
		}
	}
}
