package cloudsim

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/nisqbench"
)

func suiteCircuits() []*circuit.Circuit {
	names := []string{"bv_n3", "toffoli_3", "peres_3", "3_17_13", "4mod5-v1_22"}
	out := make([]*circuit.Circuit, len(names))
	for i, n := range names {
		out[i] = nisqbench.MustGet(n)
	}
	return out
}

func TestPoissonArrivalsDeterministicAndMonotonic(t *testing.T) {
	a := PoissonArrivals(suiteCircuits(), 30, 10, 7)
	b := PoissonArrivals(suiteCircuits(), 30, 10, 7)
	if len(a) != 30 {
		t.Fatalf("jobs = %d", len(a))
	}
	prev := 0.0
	for i := range a {
		if a[i].Arrival != b[i].Arrival {
			t.Fatal("same seed must give same arrivals")
		}
		if a[i].Arrival < prev {
			t.Fatal("arrivals must be nondecreasing")
		}
		prev = a[i].Arrival
		if a[i].Circ == nil {
			t.Fatal("nil circuit")
		}
	}
	c := PoissonArrivals(suiteCircuits(), 30, 10, 8)
	if c[5].Arrival == a[5].Arrival {
		t.Fatal("different seeds must differ")
	}
	// Mean inter-arrival roughly matches.
	mean := a[len(a)-1].Arrival / float64(len(a))
	if mean < 3 || mean > 30 {
		t.Fatalf("mean gap %v wildly off target 10", mean)
	}
}

func TestRunEmptyAndBadConfig(t *testing.T) {
	d := arch.IBMQ16(0)
	m, recs, err := Run(d, nil, DefaultConfig())
	if err != nil || len(recs) != 0 || m.Batches != 0 {
		t.Fatalf("empty run: %v %v %v", m, recs, err)
	}
	cfg := DefaultConfig()
	cfg.Shots = 0
	if _, _, err := Run(d, PoissonArrivals(suiteCircuits(), 2, 1, 1), cfg); err == nil {
		t.Fatal("zero shots must error")
	}
}

func TestRunServesEveryJobOnce(t *testing.T) {
	d := arch.IBMQ16(0)
	jobs := PoissonArrivals(suiteCircuits(), 12, 5, 3)
	for _, policy := range []Policy{FIFOSeparate, FIFOPairs, QuCloud} {
		cfg := DefaultConfig()
		cfg.Policy = policy
		cfg.Shots = 512
		m, recs, err := Run(d, jobs, cfg)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		seen := map[int]bool{}
		for _, r := range recs {
			for _, id := range r.JobIDs {
				if seen[id] {
					t.Fatalf("%s: job %d served twice", policy, id)
				}
				seen[id] = true
			}
			if r.Finish <= r.Start {
				t.Fatalf("%s: batch with non-positive service time", policy)
			}
		}
		if len(seen) != len(jobs) {
			t.Fatalf("%s: served %d of %d jobs", policy, len(seen), len(jobs))
		}
		if m.Batches != len(recs) {
			t.Fatalf("%s: metrics batches %d != records %d", policy, m.Batches, len(recs))
		}
	}
}

func TestBatchesDoNotOverlapInTime(t *testing.T) {
	d := arch.IBMQ16(0)
	jobs := PoissonArrivals(suiteCircuits(), 10, 2, 5)
	cfg := DefaultConfig()
	cfg.Shots = 256
	_, recs, err := Run(d, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Start < recs[i-1].Finish-1e-9 {
			t.Fatalf("batch %d starts at %v before batch %d finishes at %v",
				i, recs[i].Start, i-1, recs[i-1].Finish)
		}
	}
}

func TestQuCloudBeatsSeparateOnThroughput(t *testing.T) {
	// With a saturated queue (all jobs arrive at once), co-location
	// must improve makespan, wait time, and utilization.
	d := arch.IBMQ16(0)
	var jobs []Job
	circs := suiteCircuits()
	for i := 0; i < 15; i++ {
		jobs = append(jobs, Job{ID: i, Circ: circs[i%len(circs)], Arrival: 0})
	}
	run := func(p Policy) *Metrics {
		cfg := DefaultConfig()
		cfg.Policy = p
		cfg.Shots = 1024
		m, _, err := Run(d, jobs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	sep := run(FIFOSeparate)
	qc := run(QuCloud)
	if qc.Makespan >= sep.Makespan {
		t.Fatalf("qucloud makespan %v >= separate %v", qc.Makespan, sep.Makespan)
	}
	if qc.AvgWait >= sep.AvgWait {
		t.Fatalf("qucloud wait %v >= separate %v", qc.AvgWait, sep.AvgWait)
	}
	if qc.ThroughputPerHour <= sep.ThroughputPerHour {
		t.Fatalf("qucloud throughput %v <= separate %v", qc.ThroughputPerHour, sep.ThroughputPerHour)
	}
	if qc.QubitUtilization <= sep.QubitUtilization {
		t.Fatalf("qucloud utilization %v <= separate %v", qc.QubitUtilization, sep.QubitUtilization)
	}
	if sep.TRF != 1 {
		t.Fatalf("separate TRF = %v", sep.TRF)
	}
	if qc.TRF <= 1 {
		t.Fatalf("qucloud TRF = %v", qc.TRF)
	}
}

func TestIdleBackendWaitsForArrivals(t *testing.T) {
	d := arch.IBMQ16(0)
	// One early job, one very late job: the second batch must start at
	// its arrival, not at the first batch's finish.
	jobs := []Job{
		{ID: 0, Circ: nisqbench.MustGet("bv_n3"), Arrival: 0},
		{ID: 1, Circ: nisqbench.MustGet("bv_n3"), Arrival: 1e6},
	}
	cfg := DefaultConfig()
	cfg.Shots = 128
	_, recs, err := Run(d, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if math.Abs(recs[1].Start-1e6) > 1e-6 {
		t.Fatalf("second batch starts at %v, want 1e6", recs[1].Start)
	}
}

func TestPolicyStrings(t *testing.T) {
	if FIFOSeparate.String() != "fifo-separate" || FIFOPairs.String() != "fifo-pairs" || QuCloud.String() != "qucloud" {
		t.Fatal("policy strings")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy must still format")
	}
}
