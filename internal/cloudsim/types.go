package cloudsim

import (
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/sched"
)

// Job is one submitted quantum program. It is the single job shape
// shared by the offline simulators in this package and the live
// service in internal/service: the service stores a Job per submission
// (ID is the service-assigned sequence number, Arrival the submission
// time in seconds since service start) and persists ID and Arrival in
// the client-visible job record alongside its own lifecycle fields.
type Job struct {
	ID   int
	Circ *circuit.Circuit
	// Arrival is the submission time in seconds from simulation (or
	// service) start.
	Arrival float64
}

// SchedJob projects the job onto the EPST scheduler's queue-item
// shape, so every consumer (cloudsim policies, the live service)
// feeds sched.Schedule identically.
func (j Job) SchedJob() sched.Job {
	return sched.Job{ID: j.ID, Circ: j.Circ}
}

// BatchRecord describes one executed batch. internal/service reuses
// this type verbatim for its per-backend batch traces and persists
// every field: JobIDs (the Job.IDs co-located in the batch), Start and
// Finish (seconds since service start), the post-compilation Depth and
// CNOTs, the compilation Strategy, and QubitsUsed (the number of
// physical qubits the batch occupied).
// The JSON tags match the service API's snake_case field convention.
type BatchRecord struct {
	JobIDs   []int         `json:"job_ids"`
	Start    float64       `json:"start"`
	Finish   float64       `json:"finish"`
	Depth    int           `json:"depth"`
	CNOTs    int           `json:"cnots"`
	Strategy core.Strategy `json:"strategy"`
	// QubitsUsed is the number of physical qubits the batch occupied.
	QubitsUsed int `json:"qubits_used"`
}
