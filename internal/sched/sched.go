// Package sched implements the paper's compilation task scheduler
// (Algorithm 4): it batches queued quantum programs for multi-programming
// when the estimated fidelity loss stays under a threshold. Fidelity is
// estimated with EPST (Equation 4) on the regions the CDAP partitioner
// would allocate; the throughput gain is reported as the Trial Reduction
// Factor (TRF).
package sched

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/community"
	"repro/internal/fp"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Job is one queued compilation task.
type Job struct {
	// ID is the caller's identifier (unique within a queue).
	ID int
	// Circ is the program to run.
	Circ *circuit.Circuit
}

// Batch is a set of jobs scheduled to run concurrently; a singleton
// batch is a separate execution.
type Batch struct {
	JobIDs []int
}

// Config tunes Algorithm 4.
type Config struct {
	// Epsilon is the maximum tolerated EPST violation
	// 1 - coEPST/sepEPST for every job in a batch.
	Epsilon float64
	// Lookahead is N: only the first N queued jobs are considered when
	// extending a batch (10 in the paper).
	Lookahead int
	// MaxColocate bounds the batch size (the paper's
	// max_colocate_num; it "supports more than two programs").
	MaxColocate int
	// Omega is the CDAP reward weight for the hierarchy tree.
	Omega float64
}

// DefaultConfig mirrors the paper's defaults with the knee ω for IBMQ16.
func DefaultConfig() Config {
	return Config{Epsilon: 0.15, Lookahead: 10, MaxColocate: 3, Omega: 0.95}
}

// EPST computes Equation 4 for a program allocated to the given
// physical-qubit region: r2q^|CNOTs| * r1q^|1q| * rro^|qubits| where the
// r's are the mean reliabilities over the region's links and qubits.
func EPST(d *arch.Device, p *circuit.Circuit, region []int) float64 {
	if len(region) == 0 {
		return 0
	}
	var r2q float64
	edges := d.Coupling.InducedEdges(region)
	if len(edges) > 0 {
		for _, e := range edges {
			r2q += 1 - d.CNOTErr[e]
		}
		r2q /= float64(len(edges))
	} else {
		r2q = 1 // single-qubit region: no CNOTs possible anyway
	}
	var r1q, rro float64
	for _, q := range region {
		r1q += 1 - d.Gate1Err[q]
		rro += 1 - d.ReadoutErr[q]
	}
	r1q /= float64(len(region))
	rro /= float64(len(region))
	return math.Pow(r2q, float64(p.RawCNOTCount())) *
		math.Pow(r1q, float64(p.Gate1Count())) *
		math.Pow(rro, float64(p.NumQubits))
}

// SeparateEPST is a program's best-case EPST: the EPST on the region
// CDAP allocates when the program runs alone.
func SeparateEPST(d *arch.Device, tree *community.Tree, p *circuit.Circuit) (float64, error) {
	res, err := partition.CDAP(d, tree, []*circuit.Circuit{p})
	if err != nil {
		return 0, err
	}
	return EPST(d, p, res.Assignments[0].Region), nil
}

// ColocatedEPST partitions the chip among all programs with CDAP and
// returns each program's EPST on its allocated region. On devices with
// a pairwise crosstalk matrix, each program's estimate charges its
// region's links their worst conditional error against every other
// program's links (EPSTUnder), so the scheduler's epsilon test rejects
// co-locations whose regions interfere even when each region is fine
// in isolation. Without a matrix the estimates are unchanged.
func ColocatedEPST(d *arch.Device, tree *community.Tree, progs []*circuit.Circuit) ([]float64, error) {
	res, err := partition.CDAP(d, tree, progs)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(progs))
	for i, a := range res.Assignments {
		if d.HasCrosstalk() {
			var busy []graph.Edge
			for j, b := range res.Assignments {
				if j != i {
					busy = append(busy, d.Coupling.InducedEdges(b.Region)...)
				}
			}
			p := progs[i]
			out[i] = d.EPSTUnder(a.Region, p.RawCNOTCount(), p.Gate1Count(), p.NumQubits, busy)
			continue
		}
		out[i] = EPST(d, progs[i], a.Region)
	}
	return out, nil
}

// Schedule runs Algorithm 4 over the job queue and returns the batches
// in submission order. Jobs that cannot be co-located within the
// violation threshold run separately. An error is returned only when a
// job cannot be placed at all (more qubits than the chip has).
//
// Schedule is deterministic (it draws no randomness) and safe to call
// from concurrent goroutines as long as each call uses its own queue
// slice; the device and circuits are only read.
func Schedule(d *arch.Device, jobs []Job, cfg Config) ([]Batch, error) {
	if cfg.Lookahead <= 0 {
		cfg.Lookahead = 10
	}
	if cfg.MaxColocate <= 0 {
		cfg.MaxColocate = 2
	}
	tree := community.BuildCached(d, cfg.Omega)
	sepCache := map[int]float64{}
	sepEPST := func(j Job) (float64, error) {
		if v, ok := sepCache[j.ID]; ok {
			return v, nil
		}
		v, err := SeparateEPST(d, tree, j.Circ)
		if err != nil {
			return 0, fmt.Errorf("sched: job %d cannot run even alone: %w", j.ID, err)
		}
		sepCache[j.ID] = v
		return v, nil
	}

	queue := append([]Job(nil), jobs...)
	var batches []Batch
	for len(queue) > 0 {
		cur := []Job{queue[0]}
		if _, err := sepEPST(queue[0]); err != nil {
			return nil, err
		}
		idx := 1
		for idx < len(queue) && idx < cfg.Lookahead && len(cur) < cfg.MaxColocate {
			trial := append(append([]Job(nil), cur...), queue[idx])
			if violationOK(d, tree, trial, sepEPST, cfg.Epsilon) {
				cur = trial
			}
			idx++
		}
		ids := make([]int, len(cur))
		inBatch := map[int]bool{}
		for i, j := range cur {
			ids[i] = j.ID
			inBatch[j.ID] = true
		}
		batches = append(batches, Batch{JobIDs: ids})
		var rest []Job
		for _, j := range queue {
			if !inBatch[j.ID] {
				rest = append(rest, j)
			}
		}
		queue = rest
	}
	return batches, nil
}

// violationOK reports whether every job in the trial batch keeps its
// EPST violation within epsilon.
func violationOK(d *arch.Device, tree *community.Tree, trial []Job, sepEPST func(Job) (float64, error), epsilon float64) bool {
	progs := make([]*circuit.Circuit, len(trial))
	for i, j := range trial {
		progs[i] = j.Circ
	}
	co, err := ColocatedEPST(d, tree, progs)
	if err != nil {
		if errors.Is(err, partition.ErrNoRegion) {
			return false
		}
		return false
	}
	for i, j := range trial {
		sep, err := sepEPST(j)
		if err != nil || fp.Zero(sep) {
			return false
		}
		if violation := 1 - co[i]/sep; violation > epsilon {
			return false
		}
	}
	return true
}

// TRF is the Trial Reduction Factor: the ratio of executions needed
// separately (one per job) to the executions needed with the batching
// (one per batch). Separate execution has TRF 1; perfect pairing has 2.
func TRF(numJobs int, batches []Batch) float64 {
	if len(batches) == 0 {
		return 0
	}
	return float64(numJobs) / float64(len(batches))
}

// RandomPairs is the random-workload baseline of §V-B3: it shuffles the
// queue with the given seed and pairs consecutive jobs unconditionally
// (the last job runs alone when the count is odd). It is a convenience
// wrapper over RandomPairsRand.
func RandomPairs(jobs []Job, seed int64) []Batch {
	return RandomPairsRand(jobs, rand.New(rand.NewSource(seed)))
}

// RandomPairsRand is RandomPairs with a caller-supplied random source.
// Concurrent schedulers (e.g. one worker goroutine per backend in
// internal/service) must each own their *rand.Rand: nothing in this
// package touches the global math/rand state, so schedules stay
// deterministic and race-free as long as each worker threads its own
// rng through.
func RandomPairsRand(jobs []Job, rng *rand.Rand) []Batch {
	order := rng.Perm(len(jobs))
	var batches []Batch
	for i := 0; i < len(order); i += 2 {
		b := Batch{JobIDs: []int{jobs[order[i]].ID}}
		if i+1 < len(order) {
			b.JobIDs = append(b.JobIDs, jobs[order[i+1]].ID)
		}
		batches = append(batches, b)
	}
	return batches
}

// SeparateAll is the separate-execution baseline: one batch per job.
func SeparateAll(jobs []Job) []Batch {
	out := make([]Batch, len(jobs))
	for i, j := range jobs {
		out[i] = Batch{JobIDs: []int{j.ID}}
	}
	return out
}
