package sched

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/community"
	"repro/internal/nisqbench"
)

func tinyQueue() []Job {
	names := []string{"bv_n3", "bv_n4", "peres_3", "toffoli_3", "fredkin_3",
		"3_17_13", "4mod5-v1_22", "mod5mils_65", "alu-v0_27", "decod24-v2_43"}
	jobs := make([]Job, len(names))
	for i, n := range names {
		jobs[i] = Job{ID: i, Circ: nisqbench.MustGet(n)}
	}
	return jobs
}

func TestEPSTFormula(t *testing.T) {
	d := arch.Linear(3, 0.1, 0.15)
	for q := range d.Gate1Err {
		d.Gate1Err[q] = 0.05
	}
	p := circuit.New("p", 3)
	p.CX(0, 1).CX(1, 2).H(0)
	// r2q = 0.9, r1q = 0.95, rro = 0.85; EPST = 0.9^2 * 0.95 * 0.85^3
	// (the worked example from §IV-C).
	want := math.Pow(0.9, 2) * 0.95 * math.Pow(0.85, 3)
	if got := EPST(d, p, []int{0, 1, 2}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("EPST = %v, want %v", got, want)
	}
}

func TestEPSTEmptyRegion(t *testing.T) {
	d := arch.Linear(3, 0.1, 0.1)
	if EPST(d, circuit.New("p", 1), nil) != 0 {
		t.Fatal("empty region EPST must be 0")
	}
}

func TestEPSTSingleQubitRegion(t *testing.T) {
	d := arch.Linear(3, 0.1, 0.1)
	p := circuit.New("p", 1)
	p.H(0).Measure(0)
	got := EPST(d, p, []int{1})
	want := (1 - d.Gate1Err[1]) * 0.9
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("EPST = %v, want %v", got, want)
	}
}

func TestSeparateVsColocatedEPST(t *testing.T) {
	d := arch.IBMQ16(0)
	tree := community.Build(d, 0.95)
	a := nisqbench.MustGet("bv_n4")
	b := nisqbench.MustGet("toffoli_3")
	sepA, err := SeparateEPST(d, tree, a)
	if err != nil {
		t.Fatal(err)
	}
	co, err := ColocatedEPST(d, tree, []*circuit.Circuit{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if sepA <= 0 || sepA > 1 {
		t.Fatalf("sep EPST = %v", sepA)
	}
	// Separate execution is (approximately) the best case. The solo
	// allocator optimizes region fidelity rather than EPST, so tiny
	// inversions are possible; co-location must not beat it by more
	// than a sliver.
	if co[0] > sepA*1.02 {
		t.Fatalf("co-located EPST %v far exceeds separate %v", co[0], sepA)
	}
	if co[0] <= 0 || co[1] <= 0 {
		t.Fatalf("co-located EPSTs = %v", co)
	}
}

func TestColocationOnLopsidedChipViolates(t *testing.T) {
	// Left half reliable, right half poor: solo both programs pick the
	// left; co-located, the second lands right and suffers.
	d := arch.Linear(6, 0.01, 0.01)
	for _, e := range d.Coupling.Edges() {
		if e.U >= 3 {
			d.CNOTErr[e] = 0.12
		}
	}
	for q := 3; q < 6; q++ {
		d.ReadoutErr[q] = 0.12
	}
	tree := community.Build(d, 0.95)
	a := nisqbench.MustGet("bv_n3")
	b := nisqbench.MustGet("toffoli_3")
	sepB, err := SeparateEPST(d, tree, b)
	if err != nil {
		t.Fatal(err)
	}
	co, err := ColocatedEPST(d, tree, []*circuit.Circuit{a, b})
	if err != nil {
		t.Fatal(err)
	}
	// One of the two must land on the weak half and violate a tight
	// threshold.
	sepA, err := SeparateEPST(d, tree, a)
	if err != nil {
		t.Fatal(err)
	}
	vA, vB := 1-co[0]/sepA, 1-co[1]/sepB
	if vA < 0.05 && vB < 0.05 {
		t.Fatalf("violations = %v, %v; expected one program to suffer on the weak half", vA, vB)
	}
}

func TestScheduleEpsilonZeroOnLopsidedChip(t *testing.T) {
	// On a chip whose second region is clearly worse, a zero tolerance
	// must force separate execution while a loose one co-locates.
	d := arch.Linear(8, 0.01, 0.01)
	for _, e := range d.Coupling.Edges() {
		if e.U >= 4 {
			d.CNOTErr[e] = 0.12
		}
	}
	for q := 4; q < 8; q++ {
		d.ReadoutErr[q] = 0.12
	}
	jobs := []Job{
		{ID: 0, Circ: nisqbench.MustGet("toffoli_3")},
		{ID: 1, Circ: nisqbench.MustGet("fredkin_3")},
	}
	cfg := DefaultConfig()
	cfg.Epsilon = 0
	strict, err := Schedule(d, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict) != 2 {
		t.Fatalf("epsilon=0 batches = %v, want separate execution", strict)
	}
	cfg.Epsilon = 0.95
	loose, err := Schedule(d, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(loose) != 1 {
		t.Fatalf("epsilon=0.95 batches = %v, want one co-located batch", loose)
	}
}

func TestScheduleBatchesCoverQueueExactly(t *testing.T) {
	d := arch.IBMQ16(0)
	jobs := tinyQueue()
	batches, err := Schedule(d, jobs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, b := range batches {
		if len(b.JobIDs) == 0 {
			t.Fatal("empty batch")
		}
		if len(b.JobIDs) > DefaultConfig().MaxColocate {
			t.Fatalf("batch too large: %v", b.JobIDs)
		}
		for _, id := range b.JobIDs {
			if seen[id] {
				t.Fatalf("job %d scheduled twice", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != len(jobs) {
		t.Fatalf("scheduled %d of %d jobs", len(seen), len(jobs))
	}
}

func TestScheduleHigherEpsilonRaisesTRF(t *testing.T) {
	d := arch.IBMQ16(0)
	jobs := tinyQueue()
	trf := func(eps float64) float64 {
		cfg := DefaultConfig()
		cfg.Epsilon = eps
		batches, err := Schedule(d, jobs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return TRF(len(jobs), batches)
	}
	low, high := trf(0.02), trf(0.5)
	if high < low {
		t.Fatalf("TRF(eps=0.5)=%v < TRF(eps=0.02)=%v; throughput must not drop as tolerance grows", high, low)
	}
	if high <= 1 {
		t.Fatalf("TRF at eps=0.5 is %v; expected some co-location", high)
	}
}

func TestScheduleLookaheadBounds(t *testing.T) {
	d := arch.IBMQ16(0)
	jobs := tinyQueue()
	cfg := DefaultConfig()
	cfg.Lookahead = 1 // can never look past the head job
	batches, err := Schedule(d, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if len(b.JobIDs) != 1 {
			t.Fatalf("lookahead=1 must force separate execution, got %v", b.JobIDs)
		}
	}
}

func TestScheduleRejectsImpossibleJob(t *testing.T) {
	d := arch.Linear(3, 0.02, 0.02)
	big := circuit.New("big", 5)
	big.CX(0, 1)
	if _, err := Schedule(d, []Job{{ID: 0, Circ: big}}, DefaultConfig()); err == nil {
		t.Fatal("job larger than the chip must error")
	}
}

func TestTRF(t *testing.T) {
	if TRF(10, nil) != 0 {
		t.Fatal("no batches -> TRF 0")
	}
	b := []Batch{{JobIDs: []int{0, 1}}, {JobIDs: []int{2}}}
	if got := TRF(3, b); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("TRF = %v, want 1.5", got)
	}
}

func TestRandomPairs(t *testing.T) {
	jobs := tinyQueue()
	batches := RandomPairs(jobs, 1)
	if len(batches) != 5 {
		t.Fatalf("batches = %d, want 5", len(batches))
	}
	seen := map[int]bool{}
	for _, b := range batches {
		if len(b.JobIDs) != 2 {
			t.Fatalf("pair size = %d", len(b.JobIDs))
		}
		for _, id := range b.JobIDs {
			seen[id] = true
		}
	}
	if len(seen) != len(jobs) {
		t.Fatal("pairs must cover all jobs")
	}
	// Odd queue: last runs alone.
	odd := RandomPairs(jobs[:3], 2)
	total := 0
	for _, b := range odd {
		total += len(b.JobIDs)
	}
	if total != 3 || len(odd) != 2 {
		t.Fatalf("odd pairing = %v", odd)
	}
}

func TestSeparateAll(t *testing.T) {
	jobs := tinyQueue()
	batches := SeparateAll(jobs)
	if len(batches) != len(jobs) {
		t.Fatalf("batches = %d", len(batches))
	}
	if TRF(len(jobs), batches) != 1 {
		t.Fatal("separate TRF must be 1")
	}
}
