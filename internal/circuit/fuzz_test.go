package circuit

import (
	"testing"
)

// FuzzParseQASMString asserts the parser's safety contract on arbitrary
// input: it must return an error or a valid circuit, never panic, hang,
// or allocate without bound. On success the circuit must pass Validate
// and survive a canonical round-trip: QASMString renders a program the
// parser accepts again, and rendering that reparse reproduces the same
// text byte for byte.
func FuzzParseQASMString(f *testing.F) {
	seeds := []string{
		sampleQASM,
		gateDefQASM,
		"OPENQASM 2.0;\nqreg q[3];\ncreg c[3];\nccx q[0],q[1],q[2];\nmeasure q -> c;\n",
		"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\nrz(-pi/4) q[0];\ncx q[0],q[1];\nbarrier q;\nmeasure q[0] -> c[0];\n",
		"OPENQASM 2.0;\nqreg q[1];\nu3(1e-07,2.5,-0.25) q[0];\n",
		"OPENQASM 2.0;\nqreg q[2];\ngate foo a, b { cx a, b; h a; }\nfoo q[1], q[0];\n",
		// Former crashers: each of these once panicked or recursed
		// without bound; they must stay plain parse errors.
		"OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[5];\n",            // operand out of range
		"OPENQASM 2.0;\nqreg q[3];\nccx q[0],q[0],q[2];\n",      // duplicate ccx qubits
		"OPENQASM 2.0;\nqreg q[1];\ngate g a { g a; }\ng q[0];", // recursive gate def
		"OPENQASM 2.0;\nqreg q[999999999];\n",                   // oversized register
		"OPENQASM 2.0;\nqreg q[1];\nrz(1e308*10) q[0];\n",       // non-finite parameter
		// Hard-error shapes with offset info: both must stay errors,
		// and their mutations exercise the offset bookkeeping.
		"OPENQASM 2.0;\nqreg q[2];\nh q[0]",               // trailing statement, no ';'
		"OPENQASM 2.0;\nqreg q[2];\ngate g a { cx a,a;\n", // unclosed gate body
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseQASMString("fuzz", src)
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("parsed circuit fails Validate: %v\nsource:\n%s", err, src)
		}
		s1 := QASMString(c)
		c2, err := ParseQASMString("fuzz-rt", s1)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\ncanonical:\n%s\nsource:\n%s", err, s1, src)
		}
		if s2 := QASMString(c2); s1 != s2 {
			t.Fatalf("round-trip is not a fixed point\nfirst:\n%s\nsecond:\n%s", s1, s2)
		}
	})
}
