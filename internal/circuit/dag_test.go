package circuit

import (
	"reflect"
	"testing"
	"testing/quick"
)

// paperFigure11 builds the Figure 11 example: 4 CNOT layers where g1 is
// critical (successor g3 on l2) and g2 is not.
//
//	g1 = cx q0,q1   (l1)
//	g2 = cx q2,q3   (l1)  -- no successors
//	g3 = cx q1,q4   (l2, depends on g1)
func paperFigure11() *Circuit {
	c := New("fig11", 5)
	c.CX(0, 1) // 0: g1
	c.CX(2, 3) // 1: g2
	c.CX(1, 4) // 2: g3 depends on g1
	return c
}

func TestDAGEdges(t *testing.T) {
	d := NewDAG(paperFigure11())
	if !reflect.DeepEqual(d.Succ[0], []int{2}) {
		t.Fatalf("succ(g1) = %v, want [2]", d.Succ[0])
	}
	if len(d.Succ[1]) != 0 {
		t.Fatalf("succ(g2) = %v, want empty", d.Succ[1])
	}
	if !reflect.DeepEqual(d.Pred[2], []int{0}) {
		t.Fatalf("pred(g3) = %v, want [0]", d.Pred[2])
	}
}

func TestFrontLayerAndExecute(t *testing.T) {
	s := NewState(NewDAG(paperFigure11()))
	if got := s.Front(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("front = %v, want [0 1]", got)
	}
	s.Execute(0)
	if got := s.Front(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("front after g1 = %v, want [1 2]", got)
	}
	s.Execute(1)
	s.Execute(2)
	if !s.Done() {
		t.Fatal("all gates executed, state must be done")
	}
}

func TestExecuteNonFrontPanics(t *testing.T) {
	s := NewState(NewDAG(paperFigure11()))
	defer func() {
		if recover() == nil {
			t.Fatal("executing a non-front gate must panic")
		}
	}()
	s.Execute(2)
}

func TestCriticalGates(t *testing.T) {
	// Figure 11: g1 in F has successor g3 on l2 -> critical; g2 has no
	// successors -> not critical.
	s := NewState(NewDAG(paperFigure11()))
	if got := s.CriticalGates(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("critical = %v, want [0]", got)
	}
}

func TestCriticalGatesLookThrough1Q(t *testing.T) {
	// A 1q gate between two CNOTs must not hide the criticality.
	c := New("c", 3)
	c.CX(0, 1) // 0
	c.H(1)     // 1
	c.CX(1, 2) // 2
	s := NewState(NewDAG(c))
	if got := s.CriticalGates(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("critical = %v, want [0]", got)
	}
}

func TestFrontTwoQubitSkips1Q(t *testing.T) {
	c := New("c", 2)
	c.H(0).CX(0, 1)
	s := NewState(NewDAG(c))
	if got := s.FrontTwoQubit(); len(got) != 0 {
		t.Fatalf("front 2q = %v, want empty (cx blocked by h)", got)
	}
	s.Execute(0)
	if got := s.FrontTwoQubit(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("front 2q = %v, want [1]", got)
	}
}

func TestExtendedSet(t *testing.T) {
	c := New("c", 4)
	c.CX(0, 1) // 0 front
	c.CX(1, 2) // 1
	c.CX(2, 3) // 2
	s := NewState(NewDAG(c))
	got := s.ExtendedSet(10)
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("extended = %v, want [1 2]", got)
	}
	if got := s.ExtendedSet(1); len(got) != 1 {
		t.Fatalf("extended limited = %v, want 1 entry", got)
	}
}

func TestCriticalPathLen(t *testing.T) {
	c := New("c", 3)
	c.CX(0, 1).CX(1, 2).CX(0, 1)
	d := NewDAG(c)
	if got := d.CriticalPathLen(); got != 3 {
		t.Fatalf("critical path = %d, want 3", got)
	}
	par := New("p", 4)
	par.CX(0, 1).CX(2, 3)
	if got := NewDAG(par).CriticalPathLen(); got != 1 {
		t.Fatalf("parallel critical path = %d, want 1", got)
	}
}

func TestBarrierOrdersAcrossQubits(t *testing.T) {
	c := New("b", 2)
	c.H(0)                         // 0
	c.Add(Gate{Name: GateBarrier}) // 1
	c.H(1)                         // 2: must depend on barrier
	d := NewDAG(c)
	if !reflect.DeepEqual(d.Pred[2], []int{1}) {
		t.Fatalf("pred(h q1) = %v, want [1]", d.Pred[2])
	}
}

// Property: executing gates in any front-respecting order visits each
// gate exactly once and ends Done.
func TestStateExhaustionProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed % 5)
		if n < 0 {
			n = -n
		}
		n += 2
		c := New("r", n)
		s := seed
		for k := 0; k < 3*n; k++ {
			s = s*6364136223846793005 + 1442695040888963407
			a := int(uint64(s)>>33) % n
			b := int(uint64(s)>>13) % n
			if a == b {
				c.H(a)
			} else {
				c.CX(a, b)
			}
		}
		st := NewState(NewDAG(c))
		steps := 0
		for !st.Done() {
			f := st.Front()
			if len(f) == 0 {
				return false // deadlock
			}
			// Execute the highest-index front gate to stress ordering.
			st.Execute(f[len(f)-1])
			steps++
			if steps > len(c.Gates) {
				return false
			}
		}
		return steps == len(c.Gates)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
