package circuit

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/fp"
)

// ParseQASM reads an OpenQASM 2.0 program and returns it as a Circuit.
// Supported: one quantum register, the standard qelib1 gates, measure,
// barrier, and user gate definitions (`gate name(params) q,... { ... }`)
// which are expanded inline at application sites. Classical registers
// are parsed but only the measured qubit index is retained.
func ParseQASM(name string, r io.Reader) (*Circuit, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("qasm %s: %w", name, err)
	}
	// Strip line comments, keep newlines irrelevant (statements are
	// ';'-terminated; gate bodies are brace-delimited).
	var clean strings.Builder
	for _, line := range strings.Split(string(raw), "\n") {
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		clean.WriteString(line)
		clean.WriteByte(' ')
	}
	stmts, err := splitStatements(clean.String())
	if err != nil {
		return nil, fmt.Errorf("qasm %s: %w", name, err)
	}
	p := &qasmParser{name: name, defs: map[string]*gateDef{}}
	for _, stmt := range stmts {
		if err := p.statement(stmt); err != nil {
			return nil, fmt.Errorf("qasm %s: %w", name, err)
		}
	}
	if p.c == nil {
		return nil, fmt.Errorf("qasm %s: no qreg declaration", name)
	}
	return p.c, nil
}

// splitStatements breaks QASM source into statements: ';' terminates a
// statement at brace depth 0; a brace-delimited block (a gate body)
// belongs to its statement and the closing '}' also terminates it.
// Malformed input is a hard error carrying a byte offset: an unbalanced
// '}' points at the brace, an unclosed '{' points at the outermost
// opener left dangling at end of input, and a trailing statement with
// no terminating ';' points at its first byte. Offsets index the
// comment-stripped source ParseQASM feeds in (comments removed,
// newlines flattened to spaces), which matches the original byte
// positions for comment-free sources.
func splitStatements(s string) ([]string, error) {
	var out []string
	depth, start := 0, 0
	lastOpen := -1 // offset of the outermost still-open '{'
	flush := func(end int) {
		if stmt := strings.TrimSpace(s[start:end]); stmt != "" {
			out = append(out, stmt)
		}
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '{':
			if depth == 0 {
				lastOpen = i
			}
			depth++
		case '}':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced '}' at offset %d", i)
			}
			if depth == 0 {
				flush(i + 1)
				start = i + 1
			}
		case ';':
			if depth == 0 {
				flush(i)
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unclosed '{' opened at offset %d reaches end of input", lastOpen)
	}
	if stmt := strings.TrimSpace(s[start:]); stmt != "" {
		// Point at the statement text, not the flush boundary: the gap
		// between them is whitespace the message would mislocate.
		off := start + strings.Index(s[start:], stmt[:1])
		return nil, fmt.Errorf("trailing unterminated statement %q at offset %d (missing ';')", stmt, off)
	}
	return out, nil
}

// ParseQASMString is ParseQASM over a string.
func ParseQASMString(name, src string) (*Circuit, error) {
	return ParseQASM(name, strings.NewReader(src))
}

// gateDef is a user `gate` declaration awaiting inline expansion.
type gateDef struct {
	params []string // formal parameter names
	qargs  []string // formal qubit argument names
	body   []string // ';'-separated body statements
}

// Parser robustness limits: untrusted QASM (user uploads, fuzzing) must
// fail with an error, never panic, recurse unboundedly, or allocate
// pathologically.
const (
	// maxQASMQubits caps a qreg declaration; it is far above every chip
	// and benchmark in this repository.
	maxQASMQubits = 4096
	// maxGateExpansionDepth caps nested user-gate expansion, rejecting
	// (mutually) recursive gate definitions such as `gate g a { g a; }`.
	maxGateExpansionDepth = 64
)

type qasmParser struct {
	name  string
	c     *Circuit
	qreg  string
	defs  map[string]*gateDef
	depth int // current user-gate expansion depth
}

func (p *qasmParser) statement(stmt string) error {
	fields := strings.Fields(stmt)
	if len(fields) == 0 {
		return nil
	}
	switch {
	case fields[0] == "OPENQASM", strings.HasPrefix(stmt, "include"):
		return nil
	case fields[0] == "qreg":
		rname, size, err := parseRegDecl(stmt[len("qreg"):])
		if err != nil {
			return err
		}
		if p.c != nil {
			return fmt.Errorf("multiple qreg declarations")
		}
		p.c = New(p.name, size)
		p.qreg = rname
		return nil
	case fields[0] == "creg":
		return nil
	case fields[0] == "gate":
		return p.defineGate(stmt)
	}
	if p.c == nil {
		return fmt.Errorf("gate before qreg declaration: %q", stmt)
	}
	return p.apply(stmt, nil, nil)
}

// defineGate parses `gate name(p1,p2) a,b { stmts }`.
func (p *qasmParser) defineGate(stmt string) error {
	open := strings.Index(stmt, "{")
	closeB := strings.LastIndex(stmt, "}")
	if open < 0 || closeB < open {
		return fmt.Errorf("malformed gate definition %q", stmt)
	}
	head := strings.TrimSpace(stmt[len("gate"):open])
	bodySrc := stmt[open+1 : closeB]
	def := &gateDef{}
	// Optional parenthesized parameter list.
	gname := head
	if pi := strings.Index(head, "("); pi >= 0 {
		pe := strings.Index(head, ")")
		if pe < pi {
			return fmt.Errorf("malformed gate parameters in %q", head)
		}
		for _, prm := range strings.Split(head[pi+1:pe], ",") {
			if prm = strings.TrimSpace(prm); prm != "" {
				def.params = append(def.params, prm)
			}
		}
		gname = head[:pi] + " " + head[pe+1:]
		gname = strings.TrimSpace(strings.Replace(gname, head[pi:pe+1], "", 1))
	}
	hf := strings.Fields(gname)
	if len(hf) < 2 {
		return fmt.Errorf("gate definition needs a name and qubit args: %q", stmt)
	}
	name := strings.ToLower(hf[0])
	for _, qa := range strings.Split(strings.Join(hf[1:], ""), ",") {
		if qa = strings.TrimSpace(qa); qa != "" {
			def.qargs = append(def.qargs, qa)
		}
	}
	for _, bs := range strings.Split(bodySrc, ";") {
		if bs = strings.TrimSpace(bs); bs != "" {
			def.body = append(def.body, bs)
		}
	}
	p.defs[name] = def
	return nil
}

// apply executes one gate-application statement. Inside a gate-body
// expansion, qbind maps formal qubit names to physical indices and
// pbind formal parameter names to values; at top level both are nil.
func (p *qasmParser) apply(stmt string, qbind map[string]int, pbind map[string]float64) error {
	gname, params, rest, err := splitGateHeadVars(stmt, pbind)
	if err != nil {
		return err
	}
	switch gname {
	case GateBarrier:
		if qbind == nil {
			p.c.Add(Gate{Name: GateBarrier})
		}
		return nil
	case GateMeasure:
		parts := strings.SplitN(rest, "->", 2)
		q, err := p.operand(parts[0], qbind)
		if err != nil {
			return err
		}
		p.c.Measure(q)
		return nil
	}
	var qubits []int
	if strings.TrimSpace(rest) != "" {
		for _, op := range strings.Split(rest, ",") {
			q, err := p.operand(op, qbind)
			if err != nil {
				return err
			}
			qubits = append(qubits, q)
		}
	}
	switch gname {
	case GateH, GateX, GateY, GateZ, GateS, GateSdg, GateT, GateTdg,
		GateRX, GateRY, GateRZ, GateU1, GateU2, GateU3, GateCX, GateCZ, GateSWAP:
		g := Gate{Name: gname, Qubits: qubits, Params: params}
		if err := g.validateArity(); err != nil {
			return err
		}
		p.c.Add(g)
		return nil
	case "id", "u0":
		return nil
	case "ccx":
		if len(qubits) != 3 {
			return fmt.Errorf("ccx takes 3 qubits")
		}
		if qubits[0] == qubits[1] || qubits[0] == qubits[2] || qubits[1] == qubits[2] {
			return fmt.Errorf("ccx qubits must be distinct, got %v", qubits)
		}
		AppendToffoli(p.c, qubits[0], qubits[1], qubits[2])
		return nil
	}
	// User-defined gate: expand the body with fresh bindings.
	def, ok := p.defs[gname]
	if !ok {
		return fmt.Errorf("unsupported gate %q", gname)
	}
	if len(qubits) != len(def.qargs) {
		return fmt.Errorf("gate %q takes %d qubits, got %d", gname, len(def.qargs), len(qubits))
	}
	if len(params) != len(def.params) {
		return fmt.Errorf("gate %q takes %d parameters, got %d", gname, len(def.params), len(params))
	}
	qb := map[string]int{}
	for i, qa := range def.qargs {
		qb[qa] = qubits[i]
	}
	pb := map[string]float64{}
	for i, pn := range def.params {
		pb[pn] = params[i]
	}
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxGateExpansionDepth {
		return fmt.Errorf("gate %q: expansion exceeds depth %d (recursive definition?)", gname, maxGateExpansionDepth)
	}
	for _, bs := range def.body {
		if err := p.apply(bs, qb, pb); err != nil {
			return fmt.Errorf("in gate %q: %w", gname, err)
		}
	}
	return nil
}

// operand resolves `q[3]` against the quantum register or a bare formal
// name against the gate-body binding, rejecting indices outside the
// declared register (Circuit.Add would panic on them).
func (p *qasmParser) operand(op string, qbind map[string]int) (int, error) {
	op = strings.TrimSpace(op)
	if qbind != nil {
		if q, ok := qbind[op]; ok {
			return q, nil
		}
	}
	q, err := parseOperand(op, p.qreg)
	if err != nil {
		return 0, err
	}
	if q >= p.c.NumQubits {
		return 0, fmt.Errorf("operand %q exceeds register size %d", op, p.c.NumQubits)
	}
	return q, nil
}

func parseRegDecl(s string) (string, int, error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "[")
	closeB := strings.Index(s, "]")
	if open < 0 || closeB < open {
		return "", 0, fmt.Errorf("malformed register declaration %q", s)
	}
	size, err := strconv.Atoi(strings.TrimSpace(s[open+1 : closeB]))
	if err != nil || size <= 0 {
		return "", 0, fmt.Errorf("bad register size in %q", s)
	}
	if size > maxQASMQubits {
		return "", 0, fmt.Errorf("register size %d exceeds limit %d", size, maxQASMQubits)
	}
	return strings.TrimSpace(s[:open]), size, nil
}

func splitGateHead(stmt string) (name string, params []float64, rest string, err error) {
	return splitGateHeadVars(stmt, nil)
}

// splitGateHeadVars parses "name[(exprs)] operands" with parameter
// expressions evaluated under the given variable bindings.
func splitGateHeadVars(stmt string, vars map[string]float64) (name string, params []float64, rest string, err error) {
	i := 0
	for i < len(stmt) && stmt[i] != ' ' && stmt[i] != '(' && stmt[i] != '\t' {
		i++
	}
	name = strings.ToLower(stmt[:i])
	rest = strings.TrimSpace(stmt[i:])
	if strings.HasPrefix(rest, "(") {
		depth, j := 0, 0
		for ; j < len(rest); j++ {
			switch rest[j] {
			case '(':
				depth++
			case ')':
				depth--
			}
			if depth == 0 {
				break
			}
		}
		if depth != 0 {
			return "", nil, "", fmt.Errorf("unbalanced parens in %q", stmt)
		}
		for _, p := range splitTopLevel(rest[1:j], ',') {
			v, err := evalExprVars(p, vars)
			if err != nil {
				return "", nil, "", err
			}
			params = append(params, v)
		}
		rest = strings.TrimSpace(rest[j+1:])
	}
	return name, params, rest, nil
}

// splitTopLevel splits s on sep, ignoring separators inside parentheses.
func splitTopLevel(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

func parseOperand(op, qreg string) (int, error) {
	op = strings.TrimSpace(op)
	open := strings.Index(op, "[")
	closeB := strings.Index(op, "]")
	if open < 0 || closeB < open {
		return 0, fmt.Errorf("malformed operand %q", op)
	}
	reg := strings.TrimSpace(op[:open])
	if qreg != "" && reg != qreg && !strings.HasPrefix(reg, "c") {
		return 0, fmt.Errorf("unknown register %q", reg)
	}
	idx, err := strconv.Atoi(strings.TrimSpace(op[open+1 : closeB]))
	if err != nil || idx < 0 {
		return 0, fmt.Errorf("bad index in %q", op)
	}
	return idx, nil
}

// evalExpr evaluates QASM parameter arithmetic: numbers, pi, + - * /,
// unary minus, and parentheses.
func evalExpr(s string) (float64, error) {
	return evalExprVars(s, nil)
}

// evalExprVars is evalExpr with named variable bindings (gate-body
// formal parameters).
func evalExprVars(s string, vars map[string]float64) (float64, error) {
	p := &exprParser{s: strings.TrimSpace(s), vars: vars}
	v, err := p.parseSum()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.i != len(p.s) {
		return 0, fmt.Errorf("trailing garbage in expression %q", s)
	}
	// Non-finite parameters (e.g. 1e308*10) would poison simulation and
	// break the QASM round-trip ("%g" renders +Inf, which won't reparse).
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("expression %q is not finite", s)
	}
	return v, nil
}

type exprParser struct {
	s     string
	i     int
	vars  map[string]float64
	depth int // recursion depth across parens and unary signs
}

// maxExprDepth bounds the expression parser's recursion so adversarial
// inputs like "((((…))))" or "-----…1" fail fast instead of growing the
// stack without limit.
const maxExprDepth = 256

func (p *exprParser) enter() error {
	p.depth++
	if p.depth > maxExprDepth {
		return fmt.Errorf("expression %q nests deeper than %d", p.s, maxExprDepth)
	}
	return nil
}

func (p *exprParser) skipSpace() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *exprParser) parseSum() (float64, error) {
	v, err := p.parseProduct()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.i >= len(p.s) || (p.s[p.i] != '+' && p.s[p.i] != '-') {
			return v, nil
		}
		op := p.s[p.i]
		p.i++
		rhs, err := p.parseProduct()
		if err != nil {
			return 0, err
		}
		if op == '+' {
			v += rhs
		} else {
			v -= rhs
		}
	}
}

func (p *exprParser) parseProduct() (float64, error) {
	v, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.i >= len(p.s) || (p.s[p.i] != '*' && p.s[p.i] != '/') {
			return v, nil
		}
		op := p.s[p.i]
		p.i++
		rhs, err := p.parseUnary()
		if err != nil {
			return 0, err
		}
		if op == '*' {
			v *= rhs
		} else {
			if fp.Zero(rhs) {
				return 0, fmt.Errorf("division by zero in %q", p.s)
			}
			v /= rhs
		}
	}
}

func (p *exprParser) parseUnary() (float64, error) {
	p.skipSpace()
	if p.i < len(p.s) && p.s[p.i] == '-' {
		if err := p.enter(); err != nil {
			return 0, err
		}
		defer func() { p.depth-- }()
		p.i++
		v, err := p.parseUnary()
		return -v, err
	}
	if p.i < len(p.s) && p.s[p.i] == '+' {
		if err := p.enter(); err != nil {
			return 0, err
		}
		defer func() { p.depth-- }()
		p.i++
		return p.parseUnary()
	}
	return p.parseAtom()
}

func (p *exprParser) parseAtom() (float64, error) {
	p.skipSpace()
	if p.i >= len(p.s) {
		return 0, fmt.Errorf("unexpected end of expression %q", p.s)
	}
	if p.s[p.i] == '(' {
		if err := p.enter(); err != nil {
			return 0, err
		}
		defer func() { p.depth-- }()
		p.i++
		v, err := p.parseSum()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.i >= len(p.s) || p.s[p.i] != ')' {
			return 0, fmt.Errorf("missing ) in %q", p.s)
		}
		p.i++
		return v, nil
	}
	if c := p.s[p.i]; c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
		start := p.i
		for p.i < len(p.s) {
			c := p.s[p.i]
			if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
				p.i++
				continue
			}
			break
		}
		ident := p.s[start:p.i]
		if ident == "pi" {
			return math.Pi, nil
		}
		if v, ok := p.vars[ident]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("unknown identifier %q in expression %q", ident, p.s)
	}
	start := p.i
	for p.i < len(p.s) && (p.s[p.i] == '.' || p.s[p.i] == 'e' || p.s[p.i] == 'E' ||
		(p.s[p.i] >= '0' && p.s[p.i] <= '9') ||
		((p.s[p.i] == '+' || p.s[p.i] == '-') && p.i > start && (p.s[p.i-1] == 'e' || p.s[p.i-1] == 'E'))) {
		p.i++
	}
	if start == p.i {
		return 0, fmt.Errorf("expected number at %q", p.s[p.i:])
	}
	return strconv.ParseFloat(p.s[start:p.i], 64)
}

// WriteQASM renders the circuit as OpenQASM 2.0.
func WriteQASM(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[%d];\ncreg c[%d];\n", c.NumQubits, c.NumQubits)
	for _, g := range c.Gates {
		switch {
		case g.IsBarrier():
			fmt.Fprintln(bw, "barrier q;")
		case g.IsMeasure():
			fmt.Fprintf(bw, "measure q[%d] -> c[%d];\n", g.Qubits[0], g.Qubits[0])
		default:
			fmt.Fprintf(bw, "%s;\n", g.String())
		}
	}
	return bw.Flush()
}

// QASMString renders the circuit as an OpenQASM 2.0 string.
func QASMString(c *Circuit) string {
	var b strings.Builder
	if err := WriteQASM(&b, c); err != nil {
		panic(err) // strings.Builder never errors
	}
	return b.String()
}

// AppendToffoli appends the standard 15-gate decomposition of a Toffoli
// (CCX) with controls a, b and target t (Figure 3 of the paper).
func AppendToffoli(c *Circuit, a, b, t int) {
	c.H(t)
	c.CX(b, t)
	c.Tdg(t)
	c.CX(a, t)
	c.T(t)
	c.CX(b, t)
	c.Tdg(t)
	c.CX(a, t)
	c.T(b)
	c.T(t)
	c.H(t)
	c.CX(a, b)
	c.T(a)
	c.Tdg(b)
	c.CX(a, b)
}
