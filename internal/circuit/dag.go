package circuit

import "sort"

// DAG is the data-dependency graph of a circuit: gate i precedes gate j
// when they share a qubit and i comes first, with transitively implied
// edges omitted (each qubit contributes a chain). Barriers order
// everything before them against everything after.
type DAG struct {
	Circ *Circuit
	// Succ[i] and Pred[i] are the direct successors/predecessors of
	// gate i, sorted ascending.
	Succ [][]int
	Pred [][]int
}

// NewDAG builds the dependency DAG of c.
func NewDAG(c *Circuit) *DAG {
	n := len(c.Gates)
	d := &DAG{
		Circ: c,
		Succ: make([][]int, n),
		Pred: make([][]int, n),
	}
	last := make([]int, c.NumQubits) // last gate index touching qubit, -1 if none
	for i := range last {
		last[i] = -1
	}
	addEdge := func(from, to int) {
		d.Succ[from] = append(d.Succ[from], to)
		d.Pred[to] = append(d.Pred[to], from)
	}
	barrierFrontier := -1
	for i, g := range c.Gates {
		if g.IsBarrier() {
			// A barrier depends on the last gate of every qubit.
			seen := map[int]bool{}
			for q := 0; q < c.NumQubits; q++ {
				if last[q] >= 0 && !seen[last[q]] {
					seen[last[q]] = true
					addEdge(last[q], i)
				}
				last[q] = i
			}
			barrierFrontier = i
			continue
		}
		seen := map[int]bool{}
		for _, q := range g.Qubits {
			if last[q] >= 0 && !seen[last[q]] {
				seen[last[q]] = true
				addEdge(last[q], i)
			}
			last[q] = i
		}
		if len(seen) == 0 && barrierFrontier >= 0 {
			addEdge(barrierFrontier, i)
		}
	}
	for i := 0; i < n; i++ {
		sort.Ints(d.Succ[i])
		sort.Ints(d.Pred[i])
	}
	return d
}

// CriticalPathLen returns the number of gates on the longest dependency
// chain (the DAG's critical path), which equals the gate-count depth of
// the circuit when every gate costs one layer.
func (d *DAG) CriticalPathLen() int {
	n := len(d.Circ.Gates)
	memo := make([]int, n)
	for i := range memo {
		memo[i] = -1
	}
	var longest func(i int) int
	longest = func(i int) int {
		if memo[i] >= 0 {
			return memo[i]
		}
		best := 0
		for _, s := range d.Succ[i] {
			if l := longest(s); l > best {
				best = l
			}
		}
		memo[i] = best + 1
		return memo[i]
	}
	max := 0
	for i := 0; i < n; i++ {
		if l := longest(i); l > max {
			max = l
		}
	}
	return max
}

// State tracks routing progress over a DAG: which gates have been
// emitted and which are currently in the front layer (no unexecuted
// predecessors). It is the per-program "program context" of Algorithm 3.
type State struct {
	dag      *DAG
	executed []bool
	npred    []int
	front    map[int]bool
	done     int
}

// NewState returns a fresh routing state with the initial front layer
// populated.
func NewState(d *DAG) *State {
	n := len(d.Circ.Gates)
	s := &State{
		dag:      d,
		executed: make([]bool, n),
		npred:    make([]int, n),
		front:    make(map[int]bool),
	}
	for i := 0; i < n; i++ {
		s.npred[i] = len(d.Pred[i])
		if s.npred[i] == 0 {
			s.front[i] = true
		}
	}
	return s
}

// DAG returns the underlying dependency graph.
func (s *State) DAG() *DAG { return s.dag }

// Done reports whether every gate has been executed.
func (s *State) Done() bool { return s.done == len(s.executed) }

// Remaining returns the number of unexecuted gates.
func (s *State) Remaining() int { return len(s.executed) - s.done }

// Front returns the current front layer as a sorted gate-index slice.
func (s *State) Front() []int {
	out := make([]int, 0, len(s.front))
	for i := range s.front {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// FrontTwoQubit returns the front-layer gates that are two-qubit gates
// (the only ones that can be hardware-incompliant), sorted.
func (s *State) FrontTwoQubit() []int {
	var out []int
	for i := range s.front {
		if s.dag.Circ.Gates[i].IsTwoQubit() {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// AppendFrontTwoQubit appends the front-layer two-qubit gate indices to
// dst in ascending order and returns the extended slice — the
// allocation-free form of FrontTwoQubit for callers that reuse a
// scratch buffer across queries.
func (s *State) AppendFrontTwoQubit(dst []int) []int {
	start := len(dst)
	for i := range s.front {
		if s.dag.Circ.Gates[i].IsTwoQubit() {
			dst = append(dst, i)
		}
	}
	sort.Ints(dst[start:])
	return dst
}

// Execute marks gate i as done, updating the front layer. It panics if
// i is not currently in the front layer (dependency violation).
func (s *State) Execute(i int) {
	if !s.front[i] {
		panic("circuit: executing a gate outside the front layer")
	}
	delete(s.front, i)
	s.executed[i] = true
	s.done++
	for _, succ := range s.dag.Succ[i] {
		s.npred[succ]--
		if s.npred[succ] == 0 && !s.executed[succ] {
			s.front[succ] = true
		}
	}
}

// Executed reports whether gate i has been executed.
func (s *State) Executed(i int) bool { return s.executed[i] }

// CriticalGates returns the front-layer two-qubit gates that have at
// least one two-qubit successor whose remaining dependencies would be
// (partly) resolved by executing them — the paper's Critical Gates (CG):
// CNOTs in F with successors on the second layer. Resolving them first
// advances the front layer fastest.
func (s *State) CriticalGates() []int {
	var out []int
	for i := range s.front {
		g := s.dag.Circ.Gates[i]
		if !g.IsTwoQubit() {
			continue
		}
		if s.hasTwoQubitDescendantInSecondLayer(i) {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// hasTwoQubitDescendantInSecondLayer reports whether front gate i has a
// successor two-qubit gate reachable through only already-executed or
// single-qubit gates — i.e. a CNOT on the "second layer" that executing
// i helps unblock.
func (s *State) hasTwoQubitDescendantInSecondLayer(i int) bool {
	seen := map[int]bool{}
	stack := append([]int(nil), s.dag.Succ[i]...)
	for len(stack) > 0 {
		j := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[j] || s.executed[j] {
			continue
		}
		seen[j] = true
		g := s.dag.Circ.Gates[j]
		if g.IsTwoQubit() {
			return true
		}
		// 1q gates and barriers are free; look through them.
		stack = append(stack, s.dag.Succ[j]...)
	}
	return false
}

// ExtendedSet returns up to limit unexecuted two-qubit gates that follow
// the front layer in dependency order (SABRE's look-ahead window E).
func (s *State) ExtendedSet(limit int) []int {
	var out []int
	seen := map[int]bool{}
	// BFS from the front layer through the DAG.
	queue := s.Front()
	for len(queue) > 0 && len(out) < limit {
		i := queue[0]
		queue = queue[1:]
		for _, succ := range s.dag.Succ[i] {
			if seen[succ] || s.executed[succ] {
				continue
			}
			seen[succ] = true
			if s.dag.Circ.Gates[succ].IsTwoQubit() && !s.front[succ] {
				out = append(out, succ)
				if len(out) >= limit {
					break
				}
			}
			queue = append(queue, succ)
		}
	}
	sort.Ints(out)
	return out
}
