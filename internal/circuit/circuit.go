package circuit

import (
	"fmt"

	"repro/internal/graph"
)

// Circuit is a quantum program: an ordered gate list over NumQubits
// logical qubits (indices 0..NumQubits-1).
type Circuit struct {
	Name      string
	NumQubits int
	Gates     []Gate
}

// New returns an empty circuit over n logical qubits.
func New(name string, n int) *Circuit {
	if n < 0 {
		panic("circuit: negative qubit count")
	}
	return &Circuit{Name: name, NumQubits: n}
}

// Add appends a gate, validating that its qubits are in range.
func (c *Circuit) Add(g Gate) *Circuit {
	for _, q := range g.Qubits {
		if q < 0 || q >= c.NumQubits {
			panic(fmt.Sprintf("circuit %q: qubit %d out of range [0,%d)", c.Name, q, c.NumQubits))
		}
	}
	if err := g.validateArity(); err != nil {
		panic(err)
	}
	c.Gates = append(c.Gates, g)
	return c
}

// Convenience builders. Each appends the gate and returns the circuit so
// constructions chain.

// H appends a Hadamard on q.
func (c *Circuit) H(q int) *Circuit { return c.Add(Gate{Name: GateH, Qubits: []int{q}}) }

// X appends a Pauli-X on q.
func (c *Circuit) X(q int) *Circuit { return c.Add(Gate{Name: GateX, Qubits: []int{q}}) }

// Y appends a Pauli-Y on q.
func (c *Circuit) Y(q int) *Circuit { return c.Add(Gate{Name: GateY, Qubits: []int{q}}) }

// Z appends a Pauli-Z on q.
func (c *Circuit) Z(q int) *Circuit { return c.Add(Gate{Name: GateZ, Qubits: []int{q}}) }

// S appends an S gate on q.
func (c *Circuit) S(q int) *Circuit { return c.Add(Gate{Name: GateS, Qubits: []int{q}}) }

// Sdg appends an S-dagger on q.
func (c *Circuit) Sdg(q int) *Circuit { return c.Add(Gate{Name: GateSdg, Qubits: []int{q}}) }

// T appends a T gate on q.
func (c *Circuit) T(q int) *Circuit { return c.Add(Gate{Name: GateT, Qubits: []int{q}}) }

// Tdg appends a T-dagger on q.
func (c *Circuit) Tdg(q int) *Circuit { return c.Add(Gate{Name: GateTdg, Qubits: []int{q}}) }

// RZ appends a Z-rotation by theta on q.
func (c *Circuit) RZ(theta float64, q int) *Circuit {
	return c.Add(Gate{Name: GateRZ, Qubits: []int{q}, Params: []float64{theta}})
}

// RX appends an X-rotation by theta on q.
func (c *Circuit) RX(theta float64, q int) *Circuit {
	return c.Add(Gate{Name: GateRX, Qubits: []int{q}, Params: []float64{theta}})
}

// RY appends a Y-rotation by theta on q.
func (c *Circuit) RY(theta float64, q int) *Circuit {
	return c.Add(Gate{Name: GateRY, Qubits: []int{q}, Params: []float64{theta}})
}

// CX appends a CNOT with the given control and target.
func (c *Circuit) CX(control, target int) *Circuit {
	return c.Add(Gate{Name: GateCX, Qubits: []int{control, target}})
}

// CZ appends a controlled-Z between a and b.
func (c *Circuit) CZ(a, b int) *Circuit { return c.Add(Gate{Name: GateCZ, Qubits: []int{a, b}}) }

// SWAP appends a SWAP between a and b.
func (c *Circuit) SWAP(a, b int) *Circuit { return c.Add(Gate{Name: GateSWAP, Qubits: []int{a, b}}) }

// Measure appends a measurement of q.
func (c *Circuit) Measure(q int) *Circuit {
	return c.Add(Gate{Name: GateMeasure, Qubits: []int{q}})
}

// MeasureAll appends measurements on every qubit.
func (c *Circuit) MeasureAll() *Circuit {
	for q := 0; q < c.NumQubits; q++ {
		c.Measure(q)
	}
	return c
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := New(c.Name, c.NumQubits)
	out.Gates = make([]Gate, len(c.Gates))
	for i, g := range c.Gates {
		out.Gates[i] = Gate{
			Name:   g.Name,
			Qubits: append([]int(nil), g.Qubits...),
			Params: append([]float64(nil), g.Params...),
		}
	}
	return out
}

// CNOTCount returns the number of two-qubit gates, counting each SWAP as
// three CNOTs (the paper's accounting for post-compilation overheads).
func (c *Circuit) CNOTCount() int {
	n := 0
	for _, g := range c.Gates {
		switch {
		case g.Name == GateSWAP:
			n += 3
		case g.IsTwoQubit():
			n++
		}
	}
	return n
}

// RawCNOTCount returns the number of two-qubit gates without SWAP
// decomposition (SWAP counts once).
func (c *Circuit) RawCNOTCount() int {
	n := 0
	for _, g := range c.Gates {
		if g.IsTwoQubit() {
			n++
		}
	}
	return n
}

// Gate1Count returns the number of single-qubit gates, excluding
// measurements and barriers.
func (c *Circuit) Gate1Count() int {
	n := 0
	for _, g := range c.Gates {
		if len(g.Qubits) == 1 && !g.IsMeasure() && !g.IsBarrier() {
			n++
		}
	}
	return n
}

// MeasureCount returns the number of measurement operations.
func (c *Circuit) MeasureCount() int {
	n := 0
	for _, g := range c.Gates {
		if g.IsMeasure() {
			n++
		}
	}
	return n
}

// Depth returns the circuit depth: the length of the critical path when
// gates are scheduled as soon as their qubits are free. SWAPs count as 3
// layers (their CNOT decomposition); barriers synchronize all qubits but
// add no depth themselves.
func (c *Circuit) Depth() int {
	level := make([]int, c.NumQubits)
	maxLevel := 0
	for _, g := range c.Gates {
		if g.IsBarrier() {
			for q := range level {
				if level[q] < maxLevel {
					level[q] = maxLevel
				}
			}
			continue
		}
		cost := 1
		if g.Name == GateSWAP {
			cost = 3
		}
		start := 0
		for _, q := range g.Qubits {
			if level[q] > start {
				start = level[q]
			}
		}
		for _, q := range g.Qubits {
			level[q] = start + cost
		}
		if start+cost > maxLevel {
			maxLevel = start + cost
		}
	}
	return maxLevel
}

// CNOTDensity is the partitioning priority from Algorithm 2:
// (#CNOT instructions) / (#qubits).
func (c *Circuit) CNOTDensity() float64 {
	if c.NumQubits == 0 {
		return 0
	}
	return float64(c.RawCNOTCount()) / float64(c.NumQubits)
}

// InteractionGraph returns the logical-qubit interaction graph: an edge
// per qubit pair that shares a two-qubit gate, weighted by the number of
// such gates. Greatest-Weighted-Edge-First allocation consumes it.
func (c *Circuit) InteractionGraph() *graph.Graph {
	g := graph.New(c.NumQubits)
	for _, gt := range c.Gates {
		if !gt.IsTwoQubit() {
			continue
		}
		u, v := gt.Qubits[0], gt.Qubits[1]
		g.AddWeightedEdge(u, v, g.Weight(u, v)+1)
	}
	return g
}

// UsedQubits returns the sorted list of qubits touched by at least one
// gate.
func (c *Circuit) UsedQubits() []int {
	used := make([]bool, c.NumQubits)
	for _, g := range c.Gates {
		for _, q := range g.Qubits {
			used[q] = true
		}
	}
	var out []int
	for q, u := range used {
		if u {
			out = append(out, q)
		}
	}
	return out
}

// Validate checks all gate operands are in range and arities are legal.
func (c *Circuit) Validate() error {
	for i, g := range c.Gates {
		if err := g.validateArity(); err != nil {
			return fmt.Errorf("circuit %q gate %d: %w", c.Name, i, err)
		}
		for _, q := range g.Qubits {
			if q < 0 || q >= c.NumQubits {
				return fmt.Errorf("circuit %q gate %d: qubit %d out of range", c.Name, i, q)
			}
		}
	}
	return nil
}

// Compose appends all gates of other (remapped by offset) to c. The
// caller must ensure offset+other.NumQubits <= c.NumQubits. It is the
// "merge into one circuit" operation used by the plain-SABRE
// multi-programming baseline.
func (c *Circuit) Compose(other *Circuit, offset int) *Circuit {
	if offset < 0 || offset+other.NumQubits > c.NumQubits {
		panic(fmt.Sprintf("circuit: compose offset %d with %d qubits into %d", offset, other.NumQubits, c.NumQubits))
	}
	for _, g := range other.Gates {
		c.Add(g.Remap(func(q int) int { return q + offset }))
	}
	return c
}

// Stats summarizes a circuit for reporting.
type Stats struct {
	Name      string
	NumQubits int
	Gates     int
	CNOTs     int
	Gate1s    int
	Depth     int
}

// Summary returns the circuit's Stats (CNOTs counted with SWAP=3).
func (c *Circuit) Summary() Stats {
	return Stats{
		Name:      c.Name,
		NumQubits: c.NumQubits,
		Gates:     len(c.Gates),
		CNOTs:     c.CNOTCount(),
		Gate1s:    c.Gate1Count(),
		Depth:     c.Depth(),
	}
}
