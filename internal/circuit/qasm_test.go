package circuit

import (
	"math"
	"strings"
	"testing"
)

const sampleQASM = `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/2) q[2];
u3(pi/2, 0, -pi) q[1]; // euler rotation
barrier q[0],q[1],q[2];
measure q[0] -> c[0];
measure q[1] -> c[1];
`

func TestParseQASMBasics(t *testing.T) {
	c, err := ParseQASMString("sample", sampleQASM)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 3 {
		t.Fatalf("qubits = %d", c.NumQubits)
	}
	if c.RawCNOTCount() != 1 || c.MeasureCount() != 2 {
		t.Fatalf("cnots=%d measures=%d", c.RawCNOTCount(), c.MeasureCount())
	}
	var rz Gate
	for _, g := range c.Gates {
		if g.Name == GateRZ {
			rz = g
		}
	}
	if len(rz.Params) != 1 || math.Abs(rz.Params[0]-math.Pi/2) > 1e-12 {
		t.Fatalf("rz params = %v", rz.Params)
	}
	var u3 Gate
	for _, g := range c.Gates {
		if g.Name == GateU3 {
			u3 = g
		}
	}
	if len(u3.Params) != 3 || math.Abs(u3.Params[2]+math.Pi) > 1e-12 {
		t.Fatalf("u3 params = %v", u3.Params)
	}
}

func TestParseQASMMultiLineStatement(t *testing.T) {
	src := "OPENQASM 2.0;\nqreg q[2]\n;\ncx\nq[0],\nq[1];\n"
	c, err := ParseQASMString("ml", src)
	if err != nil {
		t.Fatal(err)
	}
	if c.RawCNOTCount() != 1 {
		t.Fatalf("cnots = %d", c.RawCNOTCount())
	}
}

func TestParseQASMCCXExpanded(t *testing.T) {
	src := "qreg q[3]; ccx q[0],q[1],q[2];"
	c, err := ParseQASMString("ccx", src)
	if err != nil {
		t.Fatal(err)
	}
	if c.RawCNOTCount() != 6 {
		t.Fatalf("ccx must expand to 6 CNOTs, got %d", c.RawCNOTCount())
	}
}

func TestParseQASMErrors(t *testing.T) {
	cases := []string{
		"cx q[0],q[1];",               // gate before qreg
		"qreg q[2]; frobnicate q[0];", // unknown gate
		"qreg q[2]; cx q[0];",         // wrong arity
		"qreg q[0];",                  // zero-size register
		"qreg q[2]; h q[5];",          // parse ok but Add panics? -> out of range
		"qreg q[2]; rz(pi/0) q[0];",   // division by zero
		"qreg q[2]; h q[0]",           // unterminated
	}
	for _, src := range cases {
		func() {
			defer func() { recover() }() // out-of-range Add panics; treat as failure signal too
			if c, err := ParseQASMString("bad", src); err == nil && c != nil {
				// The out-of-range case panics inside Add; reaching here
				// with no error means the parser accepted invalid input.
				if src != "qreg q[2]; h q[5];" {
					t.Errorf("ParseQASM(%q) accepted invalid input", src)
				}
			}
		}()
	}
}

func TestQASMRoundTrip(t *testing.T) {
	c := New("rt", 3)
	c.H(0).CX(0, 1).RZ(1.25, 2).SWAP(1, 2).MeasureAll()
	src := QASMString(c)
	got, err := ParseQASMString("rt", src)
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, src)
	}
	if got.NumQubits != c.NumQubits || len(got.Gates) != len(c.Gates) {
		t.Fatalf("round-trip mismatch: %d gates vs %d", len(got.Gates), len(c.Gates))
	}
	for i := range c.Gates {
		if got.Gates[i].Name != c.Gates[i].Name {
			t.Fatalf("gate %d: %q vs %q", i, got.Gates[i].Name, c.Gates[i].Name)
		}
	}
}

func TestEvalExpr(t *testing.T) {
	cases := map[string]float64{
		"pi":           math.Pi,
		"pi/2":         math.Pi / 2,
		"-pi/4":        -math.Pi / 4,
		"3*pi/2":       3 * math.Pi / 2,
		"1+2*3":        7,
		"(1+2)*3":      9,
		"2.5e-1":       0.25,
		"-(1-4)":       3,
		"pi/2 + pi/4":  3 * math.Pi / 4,
		"--1":          1,
		"+0.5":         0.5,
		"1e3":          1000,
		"(pi)/(2)":     math.Pi / 2,
		"0.1*0.2":      0.1 * 0.2,
		"10/4":         2.5,
		"1-2-3":        -4, // left associativity
		"8/2/2":        2,
		"pi*pi":        math.Pi * math.Pi,
		"2*(3+(4-1))":  12,
		"-pi":          -math.Pi,
		"0":            0,
		"  1 + 1  ":    2,
		"1.5 * -2":     -3,
		"(1+1)*(2+2)":  8,
		"3.14159":      3.14159,
		"1/3":          1.0 / 3.0,
		"2e2/4":        50,
		"((((1))))":    1,
		"pi - pi":      0,
		"5*0.2":        1,
		"7/7":          1,
		"1+2+3+4":      10,
		"2*2*2":        8,
		"100/10*2":     20, // left-to-right
		"-1*-1":        1,
		"(2+3)*(2-3)":  -5,
		"0.5+0.25":     0.75,
		"pi/2/2":       math.Pi / 4,
		"1e-2":         0.01,
		"9.99":         9.99,
		"-(-(-(1)))":   -1,
		"4*(pi/4)":     math.Pi,
		"((1+2)*3)+4":  13,
		"1 - -1":       2,
		"2 * (1 + 1)":  4,
		"(1/2)*(1/2)":  0.25,
		"3 - 1 * 2":    1, // precedence
		"(3 - 1) * 2":  4,
		"6/3+1":        3,
		"6/(3+1)":      1.5,
		"2+pi*0":       2,
		"1.0e0":        1,
		"0.0":          0,
		"5":            5,
		"(pi+pi)/2":    math.Pi,
		"((2)*(3))/6":  1,
		"1/(1+1)":      0.5,
		"10-5-5":       0,
		"2*pi":         2 * math.Pi,
		"-0.5*2":       -1,
		"4/2*3":        6,
		"1+(2*(3+4))":  15,
		"(1)":          1,
		"((1+1))":      2,
		"-((1+1))":     -2,
		"3*-2":         -6,
		"0.25*4":       1,
		"pi/(2*2)":     math.Pi / 4,
		"1e1*1e1":      100,
		"100/4/5":      5,
		"7-2*3":        1,
		"(7-2)*3":      15,
		"2.5*2":        5,
		"9/3*3":        9,
		"1+1/2":        1.5,
		"(1+1)/2":      1,
		"pi*0.5":       math.Pi / 2,
		"0-1":          -1,
		"5+-3":         2,
		"5-+3":         2,
		"1.25e2":       125,
		"3/4":          0.75,
		"(2*3)+(4*5)":  26,
		"((2*3)+4)*5":  50,
		"-(2+3)*2":     -10,
		"1/8":          0.125,
		"16/2/2/2":     2,
		"2+2":          4,
		"pi+0":         math.Pi,
		"(0.1+0.2)*10": (0.1 + 0.2) * 10,
	}
	for src, want := range cases {
		got, err := evalExpr(src)
		if err != nil {
			t.Errorf("evalExpr(%q): %v", src, err)
			continue
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("evalExpr(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestEvalExprErrors(t *testing.T) {
	for _, src := range []string{"", "1+", "(1", "1)", "1//2", "abc", "1 2", "*3", "1/(2-2)"} {
		if _, err := evalExpr(src); err == nil {
			t.Errorf("evalExpr(%q) must error", src)
		}
	}
}

func TestWriteQASMContainsHeader(t *testing.T) {
	c := New("h", 1).H(0).Measure(0)
	s := QASMString(c)
	for _, want := range []string{"OPENQASM 2.0;", "qreg q[1];", "h q[0];", "measure q[0] -> c[0];"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

const gateDefQASM = `
OPENQASM 2.0;
include "qelib1.inc";
gate majority a,b,c
{
  cx c,b;
  cx c,a;
  ccx a,b,c;
}
gate rot(theta) q {
  rz(theta/2) q;
  rx(theta) q;
  rz(-theta/2) q;
}
qreg q[4];
creg c[4];
majority q[0],q[1],q[2];
rot(pi/2) q[3];
measure q[0] -> c[0];
`

func TestParseQASMGateDefinitions(t *testing.T) {
	c, err := ParseQASMString("defs", gateDefQASM)
	if err != nil {
		t.Fatal(err)
	}
	// majority expands to 2 cx + ccx (6 cx) = 8 CNOTs.
	if got := c.RawCNOTCount(); got != 8 {
		t.Fatalf("CNOTs = %d, want 8", got)
	}
	// rot expands to rz, rx, rz on qubit 3 with bound parameters.
	var rzs []Gate
	for _, g := range c.Gates {
		if g.Name == GateRZ && g.Qubits[0] == 3 {
			rzs = append(rzs, g)
		}
	}
	if len(rzs) != 2 {
		t.Fatalf("rz on q3 = %d, want 2", len(rzs))
	}
	if math.Abs(rzs[0].Params[0]-math.Pi/4) > 1e-12 {
		t.Fatalf("rz theta/2 = %v, want pi/4", rzs[0].Params[0])
	}
	if math.Abs(rzs[1].Params[0]+math.Pi/4) > 1e-12 {
		t.Fatalf("rz -theta/2 = %v, want -pi/4", rzs[1].Params[0])
	}
}

func TestParseQASMNestedGateDefinitions(t *testing.T) {
	src := `
qreg q[3];
gate inner a,b { cx a,b; }
gate outer a,b,c { inner a,b; inner b,c; }
outer q[0],q[1],q[2];
`
	c, err := ParseQASMString("nested", src)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.RawCNOTCount(); got != 2 {
		t.Fatalf("CNOTs = %d, want 2", got)
	}
	if c.Gates[0].Qubits[0] != 0 || c.Gates[1].Qubits[1] != 2 {
		t.Fatalf("expansion qubits wrong: %v", c.Gates)
	}
}

// TestSplitStatementsErrorOffsets pins the offset info on the three
// malformed-input shapes: a trailing statement with no ';', an
// unclosed '{' reaching end of input, and a stray '}'. Offsets index
// the cleaned source handed to splitStatements.
func TestSplitStatementsErrorOffsets(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"qreg q[2]; h q[0]", `trailing unterminated statement "h q[0]" at offset 11`},
		{"qreg q[2]; gate g a { cx a,a", "unclosed '{' opened at offset 20"},
		{"qreg q[1]; }", "unbalanced '}' at offset 11"},
		{"h q[0]", `trailing unterminated statement "h q[0]" at offset 0`},
		{"{", "unclosed '{' opened at offset 0"},
	}
	for _, c := range cases {
		_, err := splitStatements(c.src)
		if err == nil {
			t.Errorf("splitStatements(%q) accepted malformed input", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("splitStatements(%q) error = %q, want it to contain %q", c.src, err, c.want)
		}
	}
}

// TestParseQASMErrorsCarryOffsets checks the offsets survive the
// ParseQASM wrapping, so a user of the public API can locate the
// malformed byte.
func TestParseQASMErrorsCarryOffsets(t *testing.T) {
	if _, err := ParseQASMString("bad", "qreg q[2]; h q[0]"); err == nil || !strings.Contains(err.Error(), "offset") {
		t.Errorf("trailing statement error lacks offset info: %v", err)
	}
	if _, err := ParseQASMString("bad", "qreg q[2]; gate g a { cx a,a"); err == nil || !strings.Contains(err.Error(), "offset") {
		t.Errorf("unclosed brace error lacks offset info: %v", err)
	}
}

func TestParseQASMGateDefErrors(t *testing.T) {
	cases := []string{
		"qreg q[2]; gate g a,b { cx a,b; } g q[0];",           // wrong qubit count
		"qreg q[2]; gate g(t) a { rz(t) a; } g q[0];",         // missing parameter
		"qreg q[2]; gate g a { rz(undefinedvar) a; } g q[0];", // unknown identifier
		"qreg q[2]; gate g a { cx a,a",                        // unbalanced brace
	}
	for _, src := range cases {
		if _, err := ParseQASMString("bad", src); err == nil {
			t.Errorf("ParseQASM(%q) accepted invalid input", src)
		}
	}
}

func TestParseQASMBarrierInsideGateBodyIgnored(t *testing.T) {
	src := "qreg q[2]; gate g a,b { cx a,b; barrier a; cx a,b; } g q[0],q[1];"
	c, err := ParseQASMString("b", src)
	if err != nil {
		t.Fatal(err)
	}
	// Body barriers are scheduling hints within the definition; the
	// expansion keeps only the gates.
	if got := c.RawCNOTCount(); got != 2 {
		t.Fatalf("CNOTs = %d", got)
	}
	for _, g := range c.Gates {
		if g.IsBarrier() {
			t.Fatal("body barrier must not leak into the circuit")
		}
	}
}
