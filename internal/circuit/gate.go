// Package circuit represents quantum programs as gate lists over logical
// qubits, with the derived structures the mapping stack needs: gate
// DAGs, front layers, critical gates, interaction graphs, depth, and an
// OpenQASM 2.0 subset reader/writer.
package circuit

import (
	"fmt"
	"sort"
	"strings"
)

// Gate names understood throughout the repository. All names are
// canonical lowercase OpenQASM spellings.
const (
	GateH       = "h"
	GateX       = "x"
	GateY       = "y"
	GateZ       = "z"
	GateS       = "s"
	GateSdg     = "sdg"
	GateT       = "t"
	GateTdg     = "tdg"
	GateRX      = "rx"
	GateRY      = "ry"
	GateRZ      = "rz"
	GateU1      = "u1"
	GateU2      = "u2"
	GateU3      = "u3"
	GateCX      = "cx"
	GateCZ      = "cz"
	GateSWAP    = "swap"
	GateMeasure = "measure"
	GateBarrier = "barrier"
)

// Gate is one operation on logical qubits. For GateCX, Qubits[0] is the
// control and Qubits[1] the target. GateMeasure carries one qubit; the
// classical bit is implicitly the same index.
type Gate struct {
	Name   string
	Qubits []int
	Params []float64
}

// NewGate builds a gate after validating the operand count for known
// gate names.
func NewGate(name string, qubits ...int) Gate {
	g := Gate{Name: name, Qubits: qubits}
	if err := g.validateArity(); err != nil {
		panic(err)
	}
	return g
}

func (g Gate) validateArity() error {
	want := -1
	switch g.Name {
	case GateH, GateX, GateY, GateZ, GateS, GateSdg, GateT, GateTdg,
		GateRX, GateRY, GateRZ, GateU1, GateU2, GateU3, GateMeasure:
		want = 1
	case GateCX, GateCZ, GateSWAP:
		want = 2
	case GateBarrier:
		return nil
	}
	if want >= 0 && len(g.Qubits) != want {
		return fmt.Errorf("circuit: gate %q takes %d qubits, got %d", g.Name, want, len(g.Qubits))
	}
	if len(g.Qubits) == 2 && g.Qubits[0] == g.Qubits[1] {
		return fmt.Errorf("circuit: gate %q with duplicate qubit %d", g.Name, g.Qubits[0])
	}
	return nil
}

// IsTwoQubit reports whether the gate acts on exactly two qubits.
func (g Gate) IsTwoQubit() bool { return len(g.Qubits) == 2 && g.Name != GateBarrier }

// IsCNOT reports whether the gate is a CX.
func (g Gate) IsCNOT() bool { return g.Name == GateCX }

// IsMeasure reports whether the gate is a measurement.
func (g Gate) IsMeasure() bool { return g.Name == GateMeasure }

// IsBarrier reports whether the gate is a barrier (scheduling no-op).
func (g Gate) IsBarrier() bool { return g.Name == GateBarrier }

// Remap returns a copy of the gate with each qubit q replaced by f(q).
func (g Gate) Remap(f func(int) int) Gate {
	q := make([]int, len(g.Qubits))
	for i, v := range g.Qubits {
		q[i] = f(v)
	}
	return Gate{Name: g.Name, Qubits: q, Params: g.Params}
}

// String renders the gate in QASM-like syntax, e.g. "cx q[0],q[1]".
func (g Gate) String() string {
	var b strings.Builder
	b.WriteString(g.Name)
	if len(g.Params) > 0 {
		b.WriteByte('(')
		for i, p := range g.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%g", p)
		}
		b.WriteByte(')')
	}
	b.WriteByte(' ')
	for i, q := range g.Qubits {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "q[%d]", q)
	}
	return b.String()
}

// SortedQubits returns the gate's qubits in ascending order (fresh slice).
func (g Gate) SortedQubits() []int {
	q := append([]int(nil), g.Qubits...)
	sort.Ints(q)
	return q
}
