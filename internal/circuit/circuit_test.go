package circuit

import (
	"reflect"
	"testing"
)

func TestAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range qubit must panic")
		}
	}()
	New("x", 2).H(2)
}

func TestDuplicateQubitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("cx q,q must panic")
		}
	}()
	New("x", 2).CX(1, 1)
}

func TestCounts(t *testing.T) {
	c := New("t", 3)
	c.H(0).CX(0, 1).SWAP(1, 2).T(2).Measure(0)
	if got := c.CNOTCount(); got != 4 { // 1 cx + swap as 3
		t.Fatalf("CNOTCount = %d, want 4", got)
	}
	if got := c.RawCNOTCount(); got != 2 {
		t.Fatalf("RawCNOTCount = %d, want 2", got)
	}
	if got := c.Gate1Count(); got != 2 {
		t.Fatalf("Gate1Count = %d, want 2", got)
	}
	if got := c.MeasureCount(); got != 1 {
		t.Fatalf("MeasureCount = %d, want 1", got)
	}
}

func TestDepthSequentialVsParallel(t *testing.T) {
	seq := New("seq", 2).H(0).H(0).H(0)
	if seq.Depth() != 3 {
		t.Fatalf("sequential depth = %d, want 3", seq.Depth())
	}
	par := New("par", 3).H(0).H(1).H(2)
	if par.Depth() != 1 {
		t.Fatalf("parallel depth = %d, want 1", par.Depth())
	}
	mix := New("mix", 3).CX(0, 1).CX(1, 2) // chained on qubit 1
	if mix.Depth() != 2 {
		t.Fatalf("chained depth = %d, want 2", mix.Depth())
	}
}

func TestDepthSwapCostsThree(t *testing.T) {
	c := New("s", 2).SWAP(0, 1)
	if c.Depth() != 3 {
		t.Fatalf("swap depth = %d, want 3", c.Depth())
	}
}

func TestDepthBarrierSynchronizes(t *testing.T) {
	c := New("b", 2)
	c.H(0).H(0).Add(Gate{Name: GateBarrier}).H(1)
	// Qubit 1's H cannot start before layer 2 (barrier after 2 layers).
	if c.Depth() != 3 {
		t.Fatalf("barrier depth = %d, want 3", c.Depth())
	}
}

func TestCNOTDensity(t *testing.T) {
	c := New("d", 4)
	c.CX(0, 1).CX(1, 2).CX(2, 3)
	if got := c.CNOTDensity(); got != 0.75 {
		t.Fatalf("density = %v, want 0.75", got)
	}
	if New("e", 0).CNOTDensity() != 0 {
		t.Fatal("empty circuit density must be 0")
	}
}

func TestInteractionGraph(t *testing.T) {
	c := New("ig", 3)
	c.CX(0, 1).CX(0, 1).CX(1, 2)
	g := c.InteractionGraph()
	if g.Weight(0, 1) != 2 || g.Weight(1, 2) != 1 || g.Weight(0, 2) != 0 {
		t.Fatalf("weights = %v %v %v", g.Weight(0, 1), g.Weight(1, 2), g.Weight(0, 2))
	}
}

func TestUsedQubits(t *testing.T) {
	c := New("u", 5)
	c.H(1).CX(3, 1)
	if got := c.UsedQubits(); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("used = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := New("c", 2).CX(0, 1)
	d := c.Clone()
	d.H(0)
	d.Gates[0].Qubits[0] = 1 // mutate clone deeply... wait, cx would be 1,1
	if len(c.Gates) != 1 || c.Gates[0].Qubits[0] != 0 {
		t.Fatal("clone must not alias original")
	}
}

func TestCompose(t *testing.T) {
	a := New("a", 2).CX(0, 1)
	merged := New("m", 5)
	merged.Compose(a, 0)
	merged.Compose(a, 3)
	if len(merged.Gates) != 2 {
		t.Fatalf("gates = %d", len(merged.Gates))
	}
	if got := merged.Gates[1].Qubits; !reflect.DeepEqual(got, []int{3, 4}) {
		t.Fatalf("offset qubits = %v", got)
	}
}

func TestComposeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overflowing compose must panic")
		}
	}()
	New("m", 3).Compose(New("a", 2).CX(0, 1), 2)
}

func TestValidate(t *testing.T) {
	c := New("v", 2).CX(0, 1)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.Gates = append(c.Gates, Gate{Name: GateCX, Qubits: []int{0, 5}})
	if err := c.Validate(); err == nil {
		t.Fatal("Validate must catch out-of-range qubits")
	}
}

func TestMeasureAll(t *testing.T) {
	c := New("m", 3).MeasureAll()
	if c.MeasureCount() != 3 {
		t.Fatalf("measures = %d", c.MeasureCount())
	}
}

func TestSummary(t *testing.T) {
	c := New("s", 2).H(0).CX(0, 1)
	st := c.Summary()
	if st.Name != "s" || st.Gates != 2 || st.CNOTs != 1 || st.Gate1s != 1 || st.Depth != 2 {
		t.Fatalf("summary = %+v", st)
	}
}

func TestGateString(t *testing.T) {
	g := Gate{Name: GateRZ, Qubits: []int{2}, Params: []float64{0.5}}
	if got := g.String(); got != "rz(0.5) q[2]" {
		t.Fatalf("String = %q", got)
	}
	if got := NewGate(GateCX, 0, 1).String(); got != "cx q[0],q[1]" {
		t.Fatalf("String = %q", got)
	}
}

func TestGateRemap(t *testing.T) {
	g := NewGate(GateCX, 0, 1).Remap(func(q int) int { return q + 10 })
	if !reflect.DeepEqual(g.Qubits, []int{10, 11}) {
		t.Fatalf("remap = %v", g.Qubits)
	}
}

func TestToffoliDecomposition(t *testing.T) {
	c := New("ccx", 3)
	AppendToffoli(c, 0, 1, 2)
	if got := c.RawCNOTCount(); got != 6 {
		t.Fatalf("toffoli CNOTs = %d, want 6", got)
	}
	if got := len(c.Gates); got != 15 {
		t.Fatalf("toffoli gates = %d, want 15", got)
	}
}
