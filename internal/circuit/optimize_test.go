package circuit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOptimizeCancelsAdjacentCX(t *testing.T) {
	c := New("c", 2)
	c.CX(0, 1).CX(0, 1)
	o := Optimize(c)
	if len(o.Gates) != 0 {
		t.Fatalf("gates = %v, want none", o.Gates)
	}
}

func TestOptimizeKeepsOppositeOrientationCX(t *testing.T) {
	c := New("c", 2)
	c.CX(0, 1).CX(1, 0)
	o := Optimize(c)
	if len(o.Gates) != 2 {
		t.Fatalf("cx(0,1) cx(1,0) must survive, got %v", o.Gates)
	}
}

func TestOptimizeSwapAndCZAreSymmetric(t *testing.T) {
	c := New("c", 2)
	c.SWAP(0, 1).SWAP(1, 0)
	if o := Optimize(c); len(o.Gates) != 0 {
		t.Fatalf("swap pair must cancel, got %v", o.Gates)
	}
	c2 := New("c2", 2)
	c2.CZ(0, 1).CZ(1, 0)
	if o := Optimize(c2); len(o.Gates) != 0 {
		t.Fatalf("cz pair must cancel, got %v", o.Gates)
	}
}

func TestOptimizeBlockedByInterveningGate(t *testing.T) {
	c := New("c", 2)
	c.CX(0, 1).H(0).CX(0, 1)
	o := Optimize(c)
	if len(o.Gates) != 3 {
		t.Fatalf("intervening h must block cancellation, got %v", o.Gates)
	}
	// A gate on an unrelated qubit must NOT block.
	c2 := New("c2", 3)
	c2.CX(0, 1).H(2).CX(0, 1)
	o2 := Optimize(c2)
	if len(o2.Gates) != 1 || o2.Gates[0].Name != GateH {
		t.Fatalf("unrelated gate must not block, got %v", o2.Gates)
	}
}

func TestOptimizePartialOverlapBlocks(t *testing.T) {
	// cx(0,1) x(1) cx(0,1): the x touches qubit 1, blocking.
	c := New("c", 2)
	c.CX(0, 1).X(1).CX(0, 1)
	if o := Optimize(c); len(o.Gates) != 3 {
		t.Fatalf("gates = %v", o.Gates)
	}
	// h(0) between cx pair on (0,1): blocks via shared qubit 0.
	c2 := New("c2", 3)
	c2.CX(0, 1).CX(1, 2) // different pairs; nothing cancels
	if o := Optimize(c2); len(o.Gates) != 2 {
		t.Fatalf("gates = %v", o.Gates)
	}
}

func TestOptimizeInversePairs(t *testing.T) {
	c := New("c", 1)
	c.S(0).Sdg(0).T(0).Tdg(0).Tdg(0).T(0)
	if o := Optimize(c); len(o.Gates) != 0 {
		t.Fatalf("s/sdg t/tdg pairs must cancel, got %v", o.Gates)
	}
}

func TestOptimizeRotationFusion(t *testing.T) {
	c := New("c", 1)
	c.RZ(0.3, 0).RZ(0.4, 0)
	o := Optimize(c)
	if len(o.Gates) != 1 || math.Abs(o.Gates[0].Params[0]-0.7) > 1e-12 {
		t.Fatalf("gates = %v", o.Gates)
	}
}

func TestOptimizeRotationFusionToZero(t *testing.T) {
	c := New("c", 1)
	c.RX(0.5, 0).RX(-0.5, 0)
	if o := Optimize(c); len(o.Gates) != 0 {
		t.Fatalf("rx pair summing to 0 must vanish, got %v", o.Gates)
	}
	c2 := New("c2", 1)
	c2.RZ(math.Pi, 0).RZ(math.Pi, 0)
	if o := Optimize(c2); len(o.Gates) != 0 {
		t.Fatalf("rz pair summing to 2pi must vanish, got %v", o.Gates)
	}
}

func TestOptimizeChainsAcrossPasses(t *testing.T) {
	// h x x h: inner xs cancel, then the hs become adjacent and cancel.
	c := New("c", 1)
	c.H(0).X(0).X(0).H(0)
	if o := Optimize(c); len(o.Gates) != 0 {
		t.Fatalf("nested pairs must fully cancel, got %v", o.Gates)
	}
}

func TestOptimizeBarrierBlocks(t *testing.T) {
	c := New("c", 1)
	c.X(0).Add(Gate{Name: GateBarrier}).X(0)
	if o := Optimize(c); len(o.Gates) != 3 {
		t.Fatalf("barrier must block, got %v", o.Gates)
	}
}

func TestOptimizeMeasurePreserved(t *testing.T) {
	c := New("c", 1)
	c.X(0).Measure(0)
	o := Optimize(c)
	if o.MeasureCount() != 1 || o.Gate1Count() != 1 {
		t.Fatalf("gates = %v", o.Gates)
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	c := New("c", 2)
	c.CX(0, 1).CX(0, 1)
	Optimize(c)
	if len(c.Gates) != 2 {
		t.Fatal("input circuit mutated")
	}
}

func TestOptimizeMixedRotationsDontFuse(t *testing.T) {
	c := New("c", 1)
	c.RZ(0.3, 0).RX(0.4, 0)
	if o := Optimize(c); len(o.Gates) != 2 {
		t.Fatalf("rz+rx must not fuse, got %v", o.Gates)
	}
}

// Property: optimization preserves the circuit's unitary action on
// every computational basis state for classical (X/CX/SWAP) circuits —
// checked by tracking basis-state permutations symbolically.
func TestOptimizePreservesClassicalSemantics(t *testing.T) {
	f := func(seed int64) bool {
		n := 3
		c := New("r", n)
		s := seed
		for k := 0; k < 24; k++ {
			s = s*6364136223846793005 + 1442695040888963407
			a := int(uint64(s)>>33) % n
			b := int(uint64(s)>>13) % n
			switch uint64(s) % 3 {
			case 0:
				c.X(a)
			case 1:
				if a != b {
					c.CX(a, b)
				}
			default:
				if a != b {
					c.SWAP(a, b)
				}
			}
		}
		o := Optimize(c)
		if len(o.Gates) > len(c.Gates) {
			return false
		}
		// Apply both to every basis state.
		apply := func(circ *Circuit, in int) int {
			bits := in
			for _, g := range circ.Gates {
				switch g.Name {
				case GateX:
					bits ^= 1 << uint(g.Qubits[0])
				case GateCX:
					if bits&(1<<uint(g.Qubits[0])) != 0 {
						bits ^= 1 << uint(g.Qubits[1])
					}
				case GateSWAP:
					a, b := uint(g.Qubits[0]), uint(g.Qubits[1])
					ba, bb := (bits>>a)&1, (bits>>b)&1
					if ba != bb {
						bits ^= 1<<a | 1<<b
					}
				}
			}
			return bits
		}
		for in := 0; in < 1<<n; in++ {
			if apply(c, in) != apply(o, in) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
