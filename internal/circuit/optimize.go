package circuit

import "math"

// Optimize applies the standard peephole cleanups a high-optimization
// compiler pass performs after routing, repeating until a fixed point:
//
//   - self-inverse cancellation: adjacent identical h/x/y/z/cx/cz/swap
//     pairs on the same qubits annihilate;
//   - inverse-pair cancellation: s·sdg, t·tdg (either order);
//   - rotation fusion: adjacent rz/rx/ry/u1 on the same qubit merge by
//     adding angles; a merged angle of ~0 (mod 2pi) drops the gate.
//
// "Adjacent" means no intervening gate touches any shared qubit.
// Barriers block all optimization across them; measurements terminate a
// qubit's timeline. The input circuit is not modified.
func Optimize(c *Circuit) *Circuit {
	cur := c.Clone()
	for {
		next, changed := optimizePass(cur)
		if !changed {
			next.Name = c.Name
			return next
		}
		cur = next
	}
}

// selfInverse lists gates that cancel with an identical copy of
// themselves on the same operands.
var selfInverse = map[string]bool{
	GateH: true, GateX: true, GateY: true, GateZ: true,
	GateCX: true, GateCZ: true, GateSWAP: true,
}

// inversePairs maps a gate name to the name that cancels it.
var inversePairs = map[string]string{
	GateS: GateSdg, GateSdg: GateS,
	GateT: GateTdg, GateTdg: GateT,
}

// rotations lists the fusable single-qubit rotations.
var rotations = map[string]bool{
	GateRZ: true, GateRX: true, GateRY: true, GateU1: true,
}

func optimizePass(c *Circuit) (*Circuit, bool) {
	n := len(c.Gates)
	removed := make([]bool, n)
	// last[q] is the index of the most recent surviving gate touching
	// qubit q, or -1.
	last := make([]int, c.NumQubits)
	for i := range last {
		last[i] = -1
	}
	gates := make([]Gate, n)
	copy(gates, c.Gates)
	changed := false

	sameQubits := func(a, b Gate) bool {
		if len(a.Qubits) != len(b.Qubits) {
			return false
		}
		for i := range a.Qubits {
			if a.Qubits[i] != b.Qubits[i] {
				return false
			}
		}
		return true
	}
	// For symmetric gates (cz, swap) operand order is irrelevant.
	sameQubitsSym := func(a, b Gate) bool {
		if len(a.Qubits) == 2 && len(b.Qubits) == 2 {
			return (a.Qubits[0] == b.Qubits[0] && a.Qubits[1] == b.Qubits[1]) ||
				(a.Qubits[0] == b.Qubits[1] && a.Qubits[1] == b.Qubits[0])
		}
		return sameQubits(a, b)
	}

	for i := 0; i < n; i++ {
		g := gates[i]
		if g.IsBarrier() {
			for q := range last {
				last[q] = -2 // wall: nothing fuses across a barrier
			}
			continue
		}
		// The candidate predecessor must be the immediate last gate on
		// every operand qubit.
		prev := -1
		ok := true
		for _, q := range g.Qubits {
			if last[q] < 0 {
				ok = false
				break
			}
			if prev == -1 {
				prev = last[q]
			} else if prev != last[q] {
				ok = false
				break
			}
		}
		if ok && prev >= 0 && !removed[prev] {
			p := gates[prev]
			switch {
			case selfInverse[g.Name] && p.Name == g.Name &&
				((g.Name == GateCZ || g.Name == GateSWAP) && sameQubitsSym(p, g) ||
					(g.Name != GateCZ && g.Name != GateSWAP) && sameQubits(p, g)):
				// Also require the predecessor to own exactly the same
				// qubit set (a cx can only cancel a cx on both qubits).
				if len(p.Qubits) == len(g.Qubits) {
					removed[prev] = true
					removed[i] = true
					changed = true
					for _, q := range g.Qubits {
						last[q] = -1
					}
					continue
				}
			case inversePairs[g.Name] == p.Name && sameQubits(p, g):
				removed[prev] = true
				removed[i] = true
				changed = true
				for _, q := range g.Qubits {
					last[q] = -1
				}
				continue
			case rotations[g.Name] && p.Name == g.Name && sameQubits(p, g):
				theta := p.Params[0] + g.Params[0]
				removed[i] = true
				changed = true
				if isZeroAngle(theta) {
					removed[prev] = true
					last[g.Qubits[0]] = -1
				} else {
					gates[prev] = Gate{Name: g.Name, Qubits: p.Qubits, Params: []float64{theta}}
					// prev stays the last gate on this qubit.
				}
				continue
			}
		}
		for _, q := range g.Qubits {
			last[q] = i
		}
	}

	out := New(c.Name, c.NumQubits)
	for i, g := range gates {
		if !removed[i] {
			out.Add(g)
		}
	}
	return out, changed
}

// isZeroAngle reports whether theta is ~0 modulo 2pi.
func isZeroAngle(theta float64) bool {
	m := math.Mod(theta, 2*math.Pi)
	if m < 0 {
		m += 2 * math.Pi
	}
	return m < 1e-10 || 2*math.Pi-m < 1e-10
}
