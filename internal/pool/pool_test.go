package pool

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		n := 37
		hits := make([]int32, n)
		if err := ForEach(context.Background(), n, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, max int32
	var mu sync.Mutex
	err := ForEach(context.Background(), 50, workers, func(i int) error {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > max {
			max = c
		}
		mu.Unlock()
		atomic.AddInt32(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if max > workers {
		t.Fatalf("observed %d concurrent calls, want <= %d", max, workers)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	wantErr := errors.New("boom")
	err := ForEach(context.Background(), 10, 1, func(i int) error {
		if i == 3 {
			return wantErr
		}
		if i > 3 {
			t.Errorf("index %d ran after sequential error", i)
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want %v", err, wantErr)
	}

	// Parallel path: the recorded error is returned (lowest index among
	// those that failed before cancellation took effect).
	err = ForEach(context.Background(), 100, 4, func(i int) error {
		if i%10 == 9 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("parallel: got %v, want %v", err, wantErr)
	}
}

func TestForEachErrorStopsDispatch(t *testing.T) {
	var ran int32
	wantErr := errors.New("stop")
	err := ForEach(context.Background(), 10_000, 2, func(i int) error {
		atomic.AddInt32(&ran, 1)
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want %v", err, wantErr)
	}
	if n := atomic.LoadInt32(&ran); n > 100 {
		t.Fatalf("%d indices ran after first error; dispatch did not stop", n)
	}
}

func TestForEachContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	err := ForEach(ctx, 1000, 4, func(i int) error {
		atomic.AddInt32(&ran, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestForEachNilContextAndEmptyRange(t *testing.T) {
	if err := ForEach(nil, 0, 4, func(i int) error { return errors.New("never") }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	called := false
	if err := ForEach(nil, 1, 0, func(i int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("fn not called for n=1")
	}
}

func TestForEachNested(t *testing.T) {
	var total int32
	err := ForEach(context.Background(), 4, 2, func(i int) error {
		return ForEach(context.Background(), 4, 2, func(j int) error {
			atomic.AddInt32(&total, 1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 16 {
		t.Fatalf("nested ForEach ran %d inner calls, want 16", total)
	}
}

func TestSetDefault(t *testing.T) {
	orig := Default()
	SetDefault(7)
	if got := Default(); got != 7 {
		t.Fatalf("Default() = %d after SetDefault(7)", got)
	}
	SetDefault(0)
	if got := Default(); got < 1 {
		t.Fatalf("Default() = %d after reset; want >= 1", got)
	}
	_ = orig
}

func TestForEachRecoversPanic(t *testing.T) {
	// A panic in one unit must surface as that unit's error — on both
	// the sequential (workers=1) and parallel paths — instead of
	// killing the goroutine and deadlocking or crashing the process.
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), 8, workers, func(i int) error {
			if i == 3 {
				panic("unit exploded")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic should surface as an error", workers)
		}
		if !strings.Contains(err.Error(), "panic in unit 3") || !strings.Contains(err.Error(), "unit exploded") {
			t.Fatalf("workers=%d: unexpected panic error: %v", workers, err)
		}
	}
}

func TestForEachPanicKeepsLowestIndexPriority(t *testing.T) {
	// An earlier unit's plain error still wins over a later panic.
	sentinel := errors.New("boom")
	err := ForEach(context.Background(), 8, 1, func(i int) error {
		if i == 2 {
			return sentinel
		}
		if i == 5 {
			panic("later panic")
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel error from unit 2, got %v", err)
	}
}
