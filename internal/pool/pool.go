// Package pool provides the bounded worker pool shared by the parallel
// compile and simulate paths. It is deliberately tiny: one indexed
// fan-out primitive (ForEach) plus a process-wide default worker count
// that cmd/quexp's -parallel flag can override.
//
// Determinism contract: ForEach only decides *where* fn(i) runs, never
// what it computes. Callers keep results bit-stable by writing into
// index-addressed slices inside fn and reducing them in index order
// after ForEach returns; no aggregation may depend on completion order.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

var (
	defaultMu      sync.Mutex
	defaultWorkers int // guarded by defaultMu; 0 means GOMAXPROCS
)

// SetDefault overrides the process-wide default worker count used when
// ForEach is called with workers <= 0. n <= 0 restores the GOMAXPROCS
// default.
func SetDefault(n int) {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if n < 0 {
		n = 0
	}
	defaultWorkers = n
}

// Default returns the current default worker count: the SetDefault
// override when present, otherwise GOMAXPROCS.
func Default() int {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultWorkers > 0 {
		return defaultWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most `workers`
// goroutines (workers <= 0 selects Default()) and blocks until all
// started work finishes. The first error by index wins; once any fn
// returns an error, or ctx is cancelled, remaining indices are skipped.
// A nil ctx is treated as context.Background().
//
// A panic inside fn is recovered and reported as that index's error: a
// fault in one unit must fail the sweep, not kill the process from a
// pool goroutine the caller cannot recover on.
//
// Callers whose per-index failures must not abort the sweep (e.g.
// best-of-N compilation attempts) should record errors into an indexed
// slice inside fn and return nil.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = Default()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := call(fn, i); err != nil {
				return err
			}
		}
		return nil
	}

	// Internal cancellation stops the dispatch loop on the first error
	// without polluting the parent context.
	inner, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n) // each index written by at most one goroutine
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || inner.Err() != nil {
					return
				}
				if err := call(fn, i); err != nil {
					errs[i] = err
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// call runs fn(i), converting a panic into an error.
func call(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pool: panic in unit %d: %v", i, r)
		}
	}()
	return fn(i)
}
