package ccache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"repro/internal/circuit"
)

// Key collects everything a compiled result depends on. Two compiles
// with equal fingerprints are interchangeable: same circuit structure,
// same device in the same calibration state, same compiler knobs.
//
// Program names are deliberately excluded — resubmitting bv_n3 under a
// different job label must still hit — and CalVersion ties every entry
// to one calibration epoch, so ApplyCalibration invalidates the whole
// cache by construction.
type Key struct {
	Device       string
	CalVersion   uint64
	Strategy     string
	Omega        float64
	Attempts     int
	Traversals   int
	NoisePenalty float64
	PreOptimize  bool
	Bridge       bool
	Programs     []*circuit.Circuit
}

// Fingerprint returns the canonical sha256 hex digest of the key. Every
// field is serialized through a fixed-width, order-preserving encoding
// (floats via math.Float64bits, ints as 8-byte big-endian, strings
// length-prefixed), so the digest is stable across processes and
// cannot collide through field-boundary ambiguity.
func (k Key) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	wu := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wi := func(v int) { wu(uint64(int64(v))) }
	wf := func(v float64) { wu(math.Float64bits(v)) }
	wb := func(v bool) {
		if v {
			wu(1)
		} else {
			wu(0)
		}
	}
	ws := func(s string) {
		wi(len(s))
		h.Write([]byte(s))
	}

	ws("ccache/v1")
	ws(k.Device)
	wu(k.CalVersion)
	ws(k.Strategy)
	wf(k.Omega)
	wi(k.Attempts)
	wi(k.Traversals)
	wf(k.NoisePenalty)
	wb(k.PreOptimize)
	wb(k.Bridge)

	wi(len(k.Programs))
	for _, p := range k.Programs {
		wi(p.NumQubits)
		wi(len(p.Gates))
		for _, g := range p.Gates {
			ws(g.Name)
			wi(len(g.Qubits))
			for _, q := range g.Qubits {
				wi(q)
			}
			wi(len(g.Params))
			for _, v := range g.Params {
				wf(v)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
