package ccache

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/circuit"
)

func TestNewDisabled(t *testing.T) {
	for _, capacity := range []int{0, -1, -100} {
		if c := New(capacity); c != nil {
			t.Fatalf("New(%d) = %v, want nil (disabled)", capacity, c)
		}
	}
}

// TestNilCacheBypasses proves the nil receiver is a full pass-through:
// compute runs every time and all methods are safe.
func TestNilCacheBypasses(t *testing.T) {
	var c *Cache
	calls := 0
	for i := 0; i < 3; i++ {
		v, err, out := c.GetOrCompute(context.Background(), "k", func(context.Context) (any, error) {
			calls++
			return calls, nil
		})
		if err != nil || out != OutcomeBypass {
			t.Fatalf("nil cache: err=%v outcome=%v", err, out)
		}
		if v.(int) != i+1 {
			t.Fatalf("nil cache should recompute every call: got %v on call %d", v, i+1)
		}
	}
	if got := c.Stats(); got != (Stats{}) {
		t.Fatalf("nil Stats = %+v, want zeros", got)
	}
	if c.Len() != 0 {
		t.Fatal("nil Len should be 0")
	}
}

func TestHitMissAndLRUOrder(t *testing.T) {
	c := New(2)
	ctx := context.Background()
	get := func(key string) Outcome {
		_, err, out := c.GetOrCompute(ctx, key, func(context.Context) (any, error) { return key, nil })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	if out := get("a"); out != OutcomeMiss {
		t.Fatalf("first a: %v, want miss", out)
	}
	if out := get("b"); out != OutcomeMiss {
		t.Fatalf("first b: %v, want miss", out)
	}
	if out := get("a"); out != OutcomeHit {
		t.Fatalf("second a: %v, want hit", out)
	}
	// a was just touched, so inserting c must evict b (the LRU tail).
	evicts := 0
	c.OnEvict = func() { evicts++ }
	if out := get("c"); out != OutcomeMiss {
		t.Fatalf("first c: %v, want miss", out)
	}
	if evicts != 1 {
		t.Fatalf("OnEvict fired %d times, want 1", evicts)
	}
	if out := get("a"); out != OutcomeHit {
		t.Fatalf("a should have survived the eviction, got %v", out)
	}
	if out := get("b"); out != OutcomeMiss {
		t.Fatalf("b should have been evicted, got %v", out)
	}

	st := c.Stats()
	want := Stats{Hits: 2, Misses: 4, Evictions: 2, Size: 2, Capacity: 2}
	if st != want {
		t.Fatalf("Stats = %+v, want %+v", st, want)
	}
}

// TestSingleflight hammers one key from many goroutines: compute must
// run exactly once, every caller gets the same value, and exactly one
// caller reports a miss while the rest report hit or coalesced.
func TestSingleflight(t *testing.T) {
	c := New(8)
	const workers = 32
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	outcomes := make([]Outcome, workers)
	values := make([]any, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, out := c.GetOrCompute(context.Background(), "key", func(context.Context) (any, error) {
				close(started)
				<-release // hold the compute open so everyone piles on
				calls.Add(1)
				return "value", nil
			})
			if err != nil {
				t.Error(err)
			}
			outcomes[i], values[i] = out, v
		}(i)
	}
	<-started
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	misses := 0
	for i := 0; i < workers; i++ {
		if values[i] != "value" {
			t.Fatalf("worker %d got %v", i, values[i])
		}
		switch outcomes[i] {
		case OutcomeMiss:
			misses++
		case OutcomeHit, OutcomeCoalesced:
		default:
			t.Fatalf("worker %d: unexpected outcome %v", i, outcomes[i])
		}
	}
	if misses != 1 {
		t.Fatalf("%d misses, want exactly 1", misses)
	}
	st := c.Stats()
	if st.Hits+st.Coalesced != workers-1 {
		t.Fatalf("hits(%d)+coalesced(%d) != %d", st.Hits, st.Coalesced, workers-1)
	}
}

// TestErrorNotCached proves a failed compute is retried: the error
// reaches the caller (and any coalesced waiters) but never occupies a
// cache slot.
func TestErrorNotCached(t *testing.T) {
	c := New(4)
	ctx := context.Background()
	boom := errors.New("boom")
	calls := 0
	compute := func(context.Context) (any, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return "ok", nil
	}
	if _, err, out := c.GetOrCompute(ctx, "k", compute); !errors.Is(err, boom) || out != OutcomeMiss {
		t.Fatalf("first call: err=%v outcome=%v", err, out)
	}
	if c.Len() != 0 {
		t.Fatalf("error was cached: Len=%d", c.Len())
	}
	if v, err, out := c.GetOrCompute(ctx, "k", compute); err != nil || v != "ok" || out != OutcomeMiss {
		t.Fatalf("retry: v=%v err=%v outcome=%v", v, err, out)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
}

// TestComputePanicWakesWaiters proves a panicking compute re-panics in
// the initiating caller while coalesced waiters receive an error
// instead of hanging on the ready channel.
func TestComputePanicWakesWaiters(t *testing.T) {
	c := New(4)
	entered := make(chan struct{})

	var waiterErr error
	var waiterDone sync.WaitGroup
	waiterDone.Add(1)
	go func() {
		defer waiterDone.Done()
		<-entered
		_, waiterErr, _ = c.GetOrCompute(context.Background(), "k", func(context.Context) (any, error) {
			return "should not run", nil
		})
	}()

	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("panic did not propagate to the initiating caller")
			}
		}()
		c.GetOrCompute(context.Background(), "k", func(context.Context) (any, error) {
			close(entered)
			// Hold the compute open until the waiter has coalesced, so
			// the panic provably races a live waiter.
			for c.Stats().Coalesced == 0 {
				runtime.Gosched()
			}
			panic("kaboom")
		})
	}()
	waiterDone.Wait()

	// The coalesced waiter must see the panic turned into an error —
	// never hang — and the error must not be cached.
	if !errorContains(waiterErr, "kaboom") {
		t.Fatalf("waiter error = %v, want the recovered panic", waiterErr)
	}
	if _, err, _ := c.GetOrCompute(context.Background(), "k", func(context.Context) (any, error) { return "fresh", nil }); err != nil {
		t.Fatalf("key should be retryable after panic: %v", err)
	}
}

func errorContains(err error, sub string) bool {
	return err != nil && len(err.Error()) >= len(sub) && containsStr(err.Error(), sub)
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestCoalescedWaiterHonorsContext: a waiter whose context is canceled
// mid-wait returns promptly with ctx.Err() instead of blocking on the
// in-flight compute.
func TestCoalescedWaiterHonorsContext(t *testing.T) {
	c := New(4)
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)

	go c.GetOrCompute(context.Background(), "k", func(context.Context) (any, error) {
		close(entered)
		<-release
		return "slow", nil
	})
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err, out := c.GetOrCompute(ctx, "k", func(context.Context) (any, error) {
		t.Error("coalesced waiter must not compute")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) || out != OutcomeCoalesced {
		t.Fatalf("err=%v outcome=%v, want context.Canceled/coalesced", err, out)
	}
}

// TestLookupHookBypass: a failing lookup hook turns the call into a
// pure bypass — compute runs, nothing is stored, counters untouched.
func TestLookupHookBypass(t *testing.T) {
	c := New(4)
	hookErr := errors.New("cache outage")
	c.LookupHook = func(context.Context) error { return hookErr }
	v, err, out := c.GetOrCompute(context.Background(), "k", func(context.Context) (any, error) { return 42, nil })
	if err != nil || v != 42 || out != OutcomeBypass {
		t.Fatalf("v=%v err=%v outcome=%v", v, err, out)
	}
	if c.Len() != 0 {
		t.Fatalf("bypass stored an entry: Len=%d", c.Len())
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("bypass moved counters: %+v", st)
	}
}

// TestStoreHookSkipsStore: a failing store hook serves the computed
// value but leaves the cache unchanged, so the next call misses again.
func TestStoreHookSkipsStore(t *testing.T) {
	c := New(4)
	c.StoreHook = func(context.Context) error { return errors.New("disk full") }
	for i := 0; i < 2; i++ {
		v, err, out := c.GetOrCompute(context.Background(), "k", func(context.Context) (any, error) { return i, nil })
		if err != nil || out != OutcomeMiss || v != i {
			t.Fatalf("call %d: v=%v err=%v outcome=%v", i, v, err, out)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("store hook failure still stored: Len=%d", c.Len())
	}
}

func TestOutcomeString(t *testing.T) {
	cases := map[Outcome]string{
		OutcomeBypass:    "bypass",
		OutcomeHit:       "hit",
		OutcomeMiss:      "miss",
		OutcomeCoalesced: "coalesced",
		Outcome(99):      "Outcome(99)",
	}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", int(o), got, want)
		}
	}
}

// --- fingerprint tests ---

func baseKey() Key {
	p := circuit.New("bv_n3", 3)
	p.H(0).H(1).CX(0, 2).RZ(0.25, 1).MeasureAll()
	return Key{
		Device:       "ibmq16",
		CalVersion:   1,
		Strategy:     "qucloud",
		Omega:        0.5,
		Attempts:     2,
		Traversals:   4,
		NoisePenalty: 1.5,
		Programs:     []*circuit.Circuit{p},
	}
}

func TestFingerprintStable(t *testing.T) {
	a, b := baseKey().Fingerprint(), baseKey().Fingerprint()
	if a != b {
		t.Fatalf("fingerprint not deterministic: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint length %d, want 64 hex chars", len(a))
	}
}

// TestFingerprintIgnoresName: the same structure under a different job
// label must map to the same entry.
func TestFingerprintIgnoresName(t *testing.T) {
	k := baseKey()
	renamed := baseKey()
	renamed.Programs[0].Name = "submitted-under-other-label"
	if k.Fingerprint() != renamed.Fingerprint() {
		t.Fatal("fingerprint must not depend on circuit names")
	}
}

// TestFingerprintSensitivity flips each key ingredient in isolation and
// requires a distinct digest for every mutation.
func TestFingerprintSensitivity(t *testing.T) {
	base := baseKey().Fingerprint()
	mutations := []struct {
		name string
		mut  func(*Key)
	}{
		{"device", func(k *Key) { k.Device = "ibmq50" }},
		{"calversion", func(k *Key) { k.CalVersion = 2 }},
		{"strategy", func(k *Key) { k.Strategy = "sabre" }},
		{"omega", func(k *Key) { k.Omega = 0.6 }},
		{"attempts", func(k *Key) { k.Attempts = 3 }},
		{"traversals", func(k *Key) { k.Traversals = 5 }},
		{"noisepenalty", func(k *Key) { k.NoisePenalty = 2.0 }},
		{"preoptimize", func(k *Key) { k.PreOptimize = true }},
		{"bridge", func(k *Key) { k.Bridge = true }},
		{"gate-name", func(k *Key) { k.Programs[0].Gates[0].Name = "x" }},
		{"gate-qubit", func(k *Key) { k.Programs[0].Gates[2].Qubits[1] = 1 }},
		{"gate-param", func(k *Key) { k.Programs[0].Gates[3].Params[0] = 0.5 }},
		{"extra-gate", func(k *Key) { k.Programs[0].X(0) }},
		{"numqubits", func(k *Key) { k.Programs[0].NumQubits = 4 }},
		{"extra-program", func(k *Key) { k.Programs = append(k.Programs, circuit.New("p2", 1).X(0)) }},
		{"program-order", func(k *Key) {
			k.Programs = append(k.Programs, circuit.New("p2", 1).X(0))
			k.Programs[0], k.Programs[1] = k.Programs[1], k.Programs[0]
		}},
	}
	seen := map[string]string{base: "base"}
	for _, m := range mutations {
		k := baseKey()
		m.mut(&k)
		fp := k.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("mutation %q collides with %q", m.name, prev)
		}
		seen[fp] = m.name
	}
	// program-order vs extra-program differ only in ordering; make sure
	// both changed from base AND from each other (covered by the map).
	if len(seen) != len(mutations)+1 {
		t.Fatalf("expected %d distinct fingerprints, got %d", len(mutations)+1, len(seen))
	}
}

// TestFingerprintNoFieldBleed: moving a suffix of one string field into
// the next must change the digest (length-prefixed encoding).
func TestFingerprintNoFieldBleed(t *testing.T) {
	a := Key{Device: "ab", Strategy: "c"}
	b := Key{Device: "a", Strategy: "bc"}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("field boundary ambiguity: ab|c == a|bc")
	}
}

func TestFingerprintDistinguishesZeroSignFloats(t *testing.T) {
	a, b := baseKey(), baseKey()
	a.Omega, b.Omega = 0.0, negZero()
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("0.0 and -0.0 must fingerprint differently (Float64bits encoding)")
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}

// BenchmarkFingerprint keeps the lookup path honest: hashing a Table-II
// sized circuit must be trivially cheap next to a compile.
func BenchmarkFingerprint(b *testing.B) {
	k := baseKey()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = k.Fingerprint()
	}
}

// TestGetOrComputeConcurrentKeys exercises mixed keys under race: all
// values must come back keyed correctly.
func TestGetOrComputeConcurrentKeys(t *testing.T) {
	c := New(4)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%8)
			v, err, _ := c.GetOrCompute(context.Background(), key, func(context.Context) (any, error) {
				return key, nil
			})
			if err != nil || v != key {
				t.Errorf("key %s: v=%v err=%v", key, v, err)
			}
		}(i)
	}
	wg.Wait()
}
