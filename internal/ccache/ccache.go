// Package ccache implements the compile-result cache behind qucloudd's
// hot path: a bounded LRU of values keyed by a canonical content
// fingerprint (see Key), with singleflight deduplication so N
// concurrent requests for the same key trigger exactly one compute.
//
// Invalidation is by key construction, not by explicit purge: the
// fingerprint embeds the device's calibration artifact version, so a
// calibration update retires every stale entry simply by making its
// key unreachable (the LRU evicts the garbage as fresh entries arrive).
// Cached values are shared between callers and must be treated as
// immutable.
//
// The package itself is deterministic (no wall clock, no randomness):
// callers who want lookup-latency metrics time GetOrCompute themselves.
package ccache

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// Outcome classifies how GetOrCompute satisfied a request.
type Outcome int

// GetOrCompute outcomes.
const (
	// OutcomeBypass means the cache did not participate: the receiver
	// was nil (caching disabled) or the lookup hook reported an outage;
	// the value was computed directly and not stored.
	OutcomeBypass Outcome = iota
	// OutcomeHit means the value was served from the cache.
	OutcomeHit
	// OutcomeMiss means this call computed the value (and stored it on
	// success).
	OutcomeMiss
	// OutcomeCoalesced means the call joined an in-flight compute for
	// the same key and waited for its result (singleflight dedup).
	OutcomeCoalesced
)

func (o Outcome) String() string {
	switch o {
	case OutcomeBypass:
		return "bypass"
	case OutcomeHit:
		return "hit"
	case OutcomeMiss:
		return "miss"
	case OutcomeCoalesced:
		return "coalesced"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Stats is a point-in-time summary of the cache's counters.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
}

// entry is one cache slot. Before ready closes it is an in-flight
// compute that later arrivals coalesce onto; after ready closes val and
// err are immutable and may be read without the cache lock.
type entry struct {
	key       string
	ready     chan struct{} // closed once val/err are final
	val       any           // immutable after ready closes
	err       error         // immutable after ready closes
	published bool          // guarded by Cache.mu
	elem      *list.Element // guarded by Cache.mu; nil until stored
}

// Cache is a bounded LRU with singleflight deduplication, safe for
// concurrent use. The zero value is not usable; construct with New. A
// nil *Cache is valid and bypasses caching entirely, so callers can
// thread an optional cache without branching.
type Cache struct {
	// LookupHook and StoreHook, when non-nil, run at the top of every
	// lookup and before every store. An error from LookupHook makes
	// GetOrCompute bypass the cache for that call (compute directly,
	// store nothing); an error from StoreHook suppresses only the
	// store. They exist for fault injection and must be set before the
	// cache is shared between goroutines.
	LookupHook func(context.Context) error
	StoreHook  func(context.Context) error
	// OnEvict, when non-nil, is called once per evicted entry, outside
	// the cache lock. Set before sharing, like the hooks.
	OnEvict func()

	cap int

	mu        sync.Mutex
	entries   map[string]*entry // guarded by mu
	order     *list.List        // guarded by mu; front = most recent
	hits      int64             // guarded by mu
	misses    int64             // guarded by mu
	coalesced int64             // guarded by mu
	evictions int64             // guarded by mu
}

// New returns a cache bounded to capacity entries. A capacity <= 0
// returns nil — the disabled cache — so a config knob can feed New
// directly.
func New(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	return &Cache{
		cap:     capacity,
		entries: map[string]*entry{},
		order:   list.New(),
	}
}

// Stats returns the cache's counters. A nil cache reports zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
		Size:      c.order.Len(),
		Capacity:  c.cap,
	}
}

// Len returns the number of stored entries (in-flight computes are not
// counted).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// GetOrCompute returns the cached value for key, or runs compute
// exactly once per key across concurrent callers and caches its result.
// Errors are never cached: a failed compute is reported to every
// coalesced waiter, then forgotten, so the next request retries. The
// returned Outcome tells the caller how the value was obtained (for hit
// / miss / dedup metrics).
//
// A caller whose context expires while coalesced on another caller's
// compute returns ctx.Err() without waiting further; the compute itself
// runs under the initiating caller's context. A panic from compute (or
// a hook) propagates to the caller after waking any waiters with an
// error, so singleflight can never strand a goroutine.
func (c *Cache) GetOrCompute(ctx context.Context, key string, compute func(context.Context) (any, error)) (any, error, Outcome) {
	if c == nil {
		v, err := compute(ctx)
		return v, err, OutcomeBypass
	}
	if hook := c.LookupHook; hook != nil {
		if err := hook(ctx); err != nil {
			// Cache outage: serve the request without the cache rather
			// than failing it.
			v, cerr := compute(ctx)
			return v, cerr, OutcomeBypass
		}
	}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.ready:
			// Stored entry: entries only stay mapped on success.
			c.hits++
			c.order.MoveToFront(e.elem)
			c.mu.Unlock()
			return e.val, e.err, OutcomeHit
		default:
		}
		c.coalesced++
		c.mu.Unlock()
		select {
		case <-e.ready:
			return e.val, e.err, OutcomeCoalesced
		case <-ctx.Done():
			return nil, ctx.Err(), OutcomeCoalesced
		}
	}
	e := &entry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	v, err := c.runCompute(ctx, e, compute)
	return v, err, OutcomeMiss
}

// runCompute executes the winner's compute and publishes the result to
// the entry. The deferred publish guarantees waiters are woken even if
// compute or a hook panics (the panic then continues to the caller).
func (c *Cache) runCompute(ctx context.Context, e *entry, compute func(context.Context) (any, error)) (v any, err error) {
	store := false
	defer func() {
		if r := recover(); r != nil {
			c.publish(e, nil, fmt.Errorf("ccache: compute panicked: %v", r), false)
			panic(r)
		}
		c.publish(e, v, err, store)
	}()
	v, err = compute(ctx)
	if err == nil {
		store = true
		if hook := c.StoreHook; hook != nil {
			if herr := hook(ctx); herr != nil {
				store = false // store suppressed; the value still serves this call
			}
		}
	}
	return v, err
}

// publish finalizes an in-flight entry: record the result, wake
// waiters, and either insert it into the LRU (store) or unmap it so the
// key can be retried. Eviction callbacks run outside the lock.
func (c *Cache) publish(e *entry, v any, err error, store bool) {
	evicted := 0
	c.mu.Lock()
	if e.published {
		c.mu.Unlock()
		return
	}
	e.published = true
	e.val, e.err = v, err
	close(e.ready)
	if store {
		e.elem = c.order.PushFront(e)
		for c.order.Len() > c.cap {
			back := c.order.Back()
			c.order.Remove(back)
			delete(c.entries, back.Value.(*entry).key)
			c.evictions++
			evicted++
		}
	} else {
		delete(c.entries, e.key)
	}
	c.mu.Unlock()
	if c.OnEvict != nil {
		for i := 0; i < evicted; i++ {
			c.OnEvict()
		}
	}
}
