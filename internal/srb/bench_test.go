package srb

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

// BenchmarkSRBEstimate times a full simulated-SRB sweep of a linear
// chip: one isolated baseline per link plus one simultaneous run per
// adjacent pair. It is the calibration-time cost a cloud provider pays
// to refresh the E(g_i|g_j) matrix, so regressions here matter as much
// as compile-path ones; make bench-compare gates it via the srb group
// in BENCH_parallel.json.
func BenchmarkSRBEstimate(b *testing.B) {
	d := arch.Linear(8, 0.01, 0.02)
	d.Crosstalk = arch.GenerateHostileCrosstalk(d, 1, 0.5, 3, 5)
	if err := d.Validate(); err != nil {
		b.Fatal(err)
	}
	noise := sim.DefaultNoise()
	cfg := Config{Length: 8, Trials: 200, Seed: 1, Workers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateMatrix(context.Background(), d, noise, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
