package srb

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/graph"
	"repro/internal/sim"
)

// testDevice returns IBMQ16 carrying an adversarial ground-truth
// matrix: ~30% of adjacent pairs hostile with conditional errors 3-5x
// the base rate, so the estimator has real structure to recover.
func testDevice(t *testing.T) *arch.Device {
	t.Helper()
	d := arch.IBMQ16(3)
	d.Crosstalk = arch.GenerateHostileCrosstalk(d, 11, 0.3, 3, 5)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func estimate(t *testing.T, d *arch.Device, cfg Config) arch.CrosstalkMatrix {
	t.Helper()
	est, err := EstimateMatrix(context.Background(), d, sim.DefaultNoise(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// TestEstimateSeparatesHostileFromBenign is the estimator's core
// contract: averaged over the hostile pairs the estimate must sit well
// above the base error, and averaged over benign pairs it must stay
// near it. Individual pairs are noisy at test-sized trial counts, so
// the assertion is on group means.
func TestEstimateSeparatesHostileFromBenign(t *testing.T) {
	d := testDevice(t)
	cfg := Config{Length: 16, Trials: 1500, Seed: 5}
	est := estimate(t, d, cfg)

	hostile := map[arch.EdgePair]bool{}
	for _, p := range d.HostilePairs(2.5) {
		hostile[p] = true
	}
	if len(hostile) == 0 {
		t.Fatal("ground truth has no hostile pairs; adjust the generator seed")
	}
	var hostileExcess, benignExcess float64
	var nh, nb int
	for p, e := range est {
		base := d.CNOTError(p.Victim.U, p.Victim.V)
		if hostile[p] {
			hostileExcess += e - base
			nh++
		} else {
			benignExcess += e - base
			nb++
		}
	}
	if nh == 0 || nb == 0 {
		t.Fatalf("degenerate split: %d hostile, %d benign", nh, nb)
	}
	hostileExcess /= float64(nh)
	benignExcess /= float64(nb)
	t.Logf("mean excess error: hostile=%.4f benign=%.4f (%d/%d pairs)", hostileExcess, benignExcess, nh, nb)
	if hostileExcess < 2*benignExcess || hostileExcess < 0.01 {
		t.Errorf("estimator does not separate hostile pairs: hostile excess %.4f vs benign %.4f",
			hostileExcess, benignExcess)
	}
}

// TestEstimateDeterministicAcrossWorkers pins the shard/seed contract:
// the matrix must be identical at any fan-out width.
func TestEstimateDeterministicAcrossWorkers(t *testing.T) {
	d := testDevice(t)
	cfg := Config{Length: 8, Trials: 300, Seed: 2}
	cfg.Workers = 1
	a := estimate(t, d, cfg)
	cfg.Workers = 8
	b := estimate(t, d, cfg)
	if len(a) != len(b) {
		t.Fatalf("worker-count changed pair count: %d vs %d", len(a), len(b))
	}
	for p, v := range a {
		//lint:ignore floateq determinism contract is bit-identity
		if b[p] != v {
			t.Errorf("pair %v: %v (1 worker) vs %v (8 workers)", p, v, b[p])
		}
	}
}

// TestEstimateValidatesAsCalibration checks the estimated matrix is
// directly installable: every entry keys a real qubit-disjoint pair
// with a probability the arch validator accepts.
func TestEstimateValidatesAsCalibration(t *testing.T) {
	d := testDevice(t)
	est := estimate(t, d, Config{Length: 8, Trials: 300, Seed: 4})
	fresh := arch.IBMQ16(3)
	fresh.Crosstalk = est
	if err := fresh.Validate(); err != nil {
		t.Fatalf("estimated matrix rejected by device validation: %v", err)
	}
	if len(est) != len(d.AdjacentEdgePairs()) {
		t.Errorf("estimate covers %d pairs, want all %d adjacent pairs", len(est), len(d.AdjacentEdgePairs()))
	}
}

// TestTrainScheduleShape pins the hand-built schedule: disjoint trains
// land step-aligned so the simulator co-fires them.
func TestTrainScheduleShape(t *testing.T) {
	d := arch.IBMQ16(0)
	links := []graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(7, 8)}
	sched, progs := trainSchedule(d, links, 5)
	if len(progs) != 2 {
		t.Fatalf("got %d programs", len(progs))
	}
	wantOps := 2 * (5 + 2) // per program: 5 CNOTs + 2 measures
	if len(sched.Ops) != wantOps {
		t.Errorf("got %d ops, want %d", len(sched.Ops), wantOps)
	}
	if len(sched.Measurements) != 4 {
		t.Errorf("got %d measurements, want 4", len(sched.Measurements))
	}
	// Noiseless sanity: a CX train on |00> survives with certainty.
	noise := sim.DefaultNoise()
	noise.Enabled = false
	out, err := sim.SimulateScheduleClifford(d, sched, progs, 50, 1, noise)
	if err != nil {
		t.Fatal(err)
	}
	for p, pst := range out.PST {
		//lint:ignore floateq noiseless PST is exactly 1
		if pst != 1 {
			t.Errorf("program %d noiseless PST = %v, want 1", p, pst)
		}
	}
}
