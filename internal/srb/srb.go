// Package srb estimates a device's pairwise crosstalk matrix with
// simulated Simultaneous Randomized Benchmarking (Gambetta et al.; used
// for crosstalk characterization by Murali et al., ASPLOS'20). For each
// ordered pair of adjacent coupling links it runs two Monte-Carlo
// experiments on the noisy simulator: a train of CNOTs on the victim
// link alone, and the same train while an equal-length train fires on
// the aggressor link. The drop in the victim's per-CNOT survival
// probability between the two runs, anchored at the link's calibrated
// base error, yields the conditional-error estimate E(victim|aggressor).
//
// The estimator is deterministic: pair enumeration is sorted, every
// simulation derives its seed from the pair's index, and the
// Monte-Carlo engine's shard contract makes each simulation independent
// of worker count.
package srb

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/graph"
	"repro/internal/pool"
	"repro/internal/router"
	"repro/internal/sim"
)

// Config controls the simulated-SRB sweep.
type Config struct {
	// Length is the number of CNOTs per benchmarking train. Longer
	// trains amplify the survival gap (error ~ compounds per CNOT) but
	// cost proportionally more simulation time.
	Length int
	// Trials is the Monte-Carlo trial count per experiment.
	Trials int
	// Seed derives every experiment's RNG stream.
	Seed int64
	// Workers bounds the pair-level fan-out (0 = pool default). Each
	// individual simulation runs sequentially so results are identical
	// at any worker count.
	Workers int
}

// DefaultConfig returns a configuration balancing estimator variance
// against runtime: 16-CNOT trains and 2000 trials resolve conditional
// errors of a few percent well enough to separate hostile pairs
// (ratio >= 2) from benign ones.
func DefaultConfig() Config {
	return Config{Length: 16, Trials: 2000, Seed: 1}
}

// visibility is the probability that one injected Pauli flips the
// measured bitstring: the simulator draws X, Y, or Z uniformly, and Z
// is invisible on the computational-basis states an all-CNOT train
// preserves.
const visibility = 2.0 / 3.0

// EstimateMatrix characterizes every ordered adjacent link pair of the
// device and returns the estimated conditional-error matrix. The device
// under test (carrying the "physical truth", e.g. an installed
// crosstalk matrix) is only read. Estimates are clamped to
// [0, arch.MaxCondErr].
func EstimateMatrix(ctx context.Context, d *arch.Device, noise sim.NoiseModel, cfg Config) (arch.CrosstalkMatrix, error) {
	if cfg.Length <= 0 || cfg.Trials <= 0 {
		return nil, fmt.Errorf("srb: length and trials must be positive (got %d, %d)", cfg.Length, cfg.Trials)
	}
	pairs := d.AdjacentEdgePairs()
	if len(pairs) == 0 {
		return arch.CrosstalkMatrix{}, nil
	}

	// Isolated baselines, one per distinct victim link, computed up
	// front so the pair sweep only pays for the simultaneous runs.
	// Seeds index the sorted edge list, keeping them independent of
	// which pairs reference the edge.
	edges := d.Coupling.Edges()
	edgeIdx := make(map[graph.Edge]int, len(edges))
	for i, e := range edges {
		edgeIdx[e] = i
	}
	iso := make([]float64, len(edges))
	isoErr := make([]error, len(edges))
	var mu sync.Mutex
	need := map[int]bool{}
	for _, p := range pairs {
		need[edgeIdx[p.Victim]] = true
	}
	var needIdx []int
	for i := range iso {
		if need[i] {
			needIdx = append(needIdx, i)
		}
	}
	// map iteration order does not matter: results land in indexed
	// slots and every seed is a pure function of the edge index.
	err := pool.ForEach(ctx, len(needIdx), cfg.Workers, func(k int) error {
		i := needIdx[k]
		s, err := survival(ctx, d, noise, cfg, []graph.Edge{edges[i]}, cfg.Seed+int64(i)*7919)
		mu.Lock()
		iso[i], isoErr[i] = s, err
		mu.Unlock()
		return err
	})
	if err != nil {
		return nil, firstError(isoErr, err)
	}

	out := make(arch.CrosstalkMatrix, len(pairs))
	est := make([]float64, len(pairs))
	estErr := make([]error, len(pairs))
	err = pool.ForEach(ctx, len(pairs), cfg.Workers, func(k int) error {
		p := pairs[k]
		seed := cfg.Seed + 104729 + int64(k)*7919
		sSim, err := survival(ctx, d, noise, cfg, []graph.Edge{p.Victim, p.Aggressor}, seed)
		if err != nil {
			mu.Lock()
			estErr[k] = err
			mu.Unlock()
			return err
		}
		base := d.CNOTError(p.Victim.U, p.Victim.V)
		sIso := iso[edgeIdx[p.Victim]]
		// Survival decays per CNOT as s ~ 1 - visibility*err, so the
		// survival gap between the simultaneous and isolated runs,
		// rescaled by the visibility, is the extra error the aggressor
		// induces on top of the calibrated base rate.
		e := base + (sIso-sSim)/visibility
		if e < 0 {
			e = 0
		}
		if e > arch.MaxCondErr {
			e = arch.MaxCondErr
		}
		mu.Lock()
		est[k] = e
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, firstError(estErr, err)
	}
	for k, p := range pairs {
		out[p] = est[k]
	}
	return out, nil
}

// survival runs one SRB experiment — an equal-length CNOT train on each
// of the given links, co-scheduled layer by layer — and returns the
// per-CNOT survival probability of the first link's program (the
// victim): PST^(1/Length).
func survival(ctx context.Context, d *arch.Device, noise sim.NoiseModel, cfg Config, links []graph.Edge, seed int64) (float64, error) {
	sched, progs := trainSchedule(d, links, cfg.Length)
	// Workers=1: the outer pair sweep already saturates the pool, and a
	// sequential inner run avoids nested-parallelism thrash.
	out, err := sim.SimulateScheduleCliffordCtx(ctx, d, sched, progs, cfg.Trials, seed, noise, 1)
	if err != nil {
		return 0, err
	}
	return math.Pow(out.PST[0], 1/float64(cfg.Length)), nil
}

// trainSchedule hand-builds the routed schedule of one SRB experiment:
// program p is a train of `length` CNOTs on links[p] followed by
// measurement of both endpoints. The trains are qubit-disjoint, so the
// ASAP layerizer co-fires step i of every train in layer i — exactly
// the simultaneous execution SRB probes.
func trainSchedule(d *arch.Device, links []graph.Edge, length int) (*router.Schedule, []*circuit.Circuit) {
	sched := &router.Schedule{Device: d}
	progs := make([]*circuit.Circuit, len(links))
	for p, e := range links {
		c := circuit.New(fmt.Sprintf("srb-train-%d", p), 2)
		for i := 0; i < length; i++ {
			c.Add(circuit.NewGate(circuit.GateCX, 0, 1))
			sched.Ops = append(sched.Ops, router.Op{
				Program: p, Gate: circuit.NewGate(circuit.GateCX, e.U, e.V),
				GateIndex: i, TriggerProgram: -1,
			})
		}
		for l, phys := range [2]int{e.U, e.V} {
			c.Add(circuit.NewGate(circuit.GateMeasure, l))
			sched.Ops = append(sched.Ops, router.Op{
				Program: p, Gate: circuit.NewGate(circuit.GateMeasure, phys),
				GateIndex: length + l, TriggerProgram: -1,
			})
			sched.Measurements = append(sched.Measurements, router.Measurement{Program: p, Logical: l, Phys: phys})
		}
		progs[p] = c
	}
	sched.SwapsByProgram = make([]int, len(links))
	sched.FinalMapping = make([][]int, len(links))
	for p, e := range links {
		sched.FinalMapping[p] = []int{e.U, e.V}
	}
	return sched, progs
}

// firstError prefers the first per-slot error (deterministic across
// worker schedules) over the pool's own (first-observed) error.
func firstError(slots []error, fallback error) error {
	for _, e := range slots {
		if e != nil {
			return e
		}
	}
	return fallback
}
