// Package core implements the QuCloud compiler pipeline — the paper's
// primary contribution. It ties the CDAP partitioner, the X-SWAP
// router, and the fidelity simulator together behind the six
// compilation strategies the paper evaluates: Separate, SABRE,
// Baseline (FRP + noise-aware SABRE), CDAP+X-SWAP, CDAP-only, and
// X-SWAP-only. The root qucloud package re-exports this API.
package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/community"
	"repro/internal/partition"
	"repro/internal/pool"
	"repro/internal/router"
	"repro/internal/sim"
)

// Strategy selects a compilation policy for a multi-program workload.
type Strategy int

// The six strategies of the paper's evaluation.
const (
	// Separate compiles and runs each program alone on the whole chip
	// (the no-multi-programming upper bound for fidelity).
	Separate Strategy = iota
	// SABRE merges all programs into one circuit and compiles it with
	// plain (noise-unaware) SABRE: reverse-traversal initial mapping
	// plus heuristic SWAP search.
	SABRE
	// Baseline is the multi-programming baseline of Das et al.: FRP
	// partitioning plus noise-aware SABRE with intra-program SWAPs.
	Baseline
	// CDAPXSwap is QuCloud: CDAP partitioning plus X-SWAP routing.
	CDAPXSwap
	// CDAPOnly ablates X-SWAP: CDAP partitioning with SABRE's plain
	// transition (intra-program SWAPs only).
	CDAPOnly
	// XSwapOnly ablates CDAP: SABRE's initial mapping (on the merged
	// circuit) with X-SWAP routing.
	XSwapOnly
)

// Strategies lists all strategies in the paper's table order.
var Strategies = []Strategy{Separate, SABRE, Baseline, CDAPXSwap, CDAPOnly, XSwapOnly}

func (s Strategy) String() string {
	switch s {
	case Separate:
		return "Separate"
	case SABRE:
		return "SABRE"
	case Baseline:
		return "Baseline"
	case CDAPXSwap:
		return "CDAP+X-SWAP"
	case CDAPOnly:
		return "CDAP-only"
	case XSwapOnly:
		return "X-SWAP-only"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// MarshalJSON renders the strategy by name, so API payloads that embed
// compiled-batch records stay readable.
func (s Strategy) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts either a strategy name (as MarshalJSON emits)
// or the numeric constant.
func (s *Strategy) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err == nil {
		for _, cand := range Strategies {
			if cand.String() == name {
				*s = cand
				return nil
			}
		}
		return fmt.Errorf("qucloud: unknown strategy %q", name)
	}
	var n int
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*s = Strategy(n)
	return nil
}

// Compiler compiles multi-program workloads onto a device. A Compiler
// holds no mutable state (derived artifacts live in the device's
// calibration-keyed cache), so one instance may be used from concurrent
// goroutines as long as its exported fields are not being reassigned.
type Compiler struct {
	// Device is the target chip.
	Device *arch.Device
	// Omega is the CDAP reward weight (use the knee value for the
	// chip; 0.95 for IBMQ16, 0.40 for IBMQ50).
	Omega float64
	// Attempts is the number of seeds tried per compilation; the
	// schedule with the fewest post-compilation CNOTs wins (the
	// paper reports the best of 5).
	Attempts int
	// Traversals is the number of SABRE reverse-traversal rounds used
	// to refine merged-circuit initial mappings.
	Traversals int
	// NoisePenalty is the noise-aware SWAP-cost weight used by the
	// Separate and Baseline strategies.
	NoisePenalty float64
	// PreOptimize runs the peephole optimizer (self-inverse
	// cancellation, rotation fusion) on every source program before
	// mapping, as a high-optimization-level toolchain would.
	PreOptimize bool
	// Bridge lets the router execute one-off distance-2 CNOTs as
	// 4-CNOT bridges instead of SWAPs (extension; off by default to
	// match the paper's SWAP-only accounting).
	Bridge bool
	// Workers bounds the goroutines used for compilation attempts,
	// per-program separate compilation, and simulation trial shards:
	// 0 uses the process default (pool.Default()), 1 forces sequential
	// execution. Results are identical at every setting.
	Workers int
}

// NewCompiler returns a Compiler with the paper's defaults for the
// device (ω = 0.95 for chips up to 20 qubits, 0.40 above).
func NewCompiler(d *arch.Device) *Compiler {
	omega := 0.95
	if d.NumQubits() > 20 {
		omega = 0.40
	}
	return &Compiler{
		Device:       d,
		Omega:        omega,
		Attempts:     5,
		Traversals:   3,
		NoisePenalty: 2,
	}
}

// Tree returns the CDAP hierarchy tree for the current calibration,
// building it on first use (the paper builds it once per calibration
// cycle and reuses it). The tree lives in the device's
// calibration-keyed artifact cache, so concurrent compilers on the same
// device share one build and a Compiler holds no mutable state of its
// own — Compile and Simulate are safe for concurrent use.
func (c *Compiler) Tree() *community.Tree {
	return community.BuildCached(c.Device, c.Omega)
}

// InvalidateTree drops every artifact cached for the device's current
// calibration (the hierarchy tree included); call after changing the
// device's error data in place. ApplyCalibration invalidates
// automatically.
func (c *Compiler) InvalidateTree() { c.Device.InvalidateArtifacts() }

// Result is a compiled workload.
type Result struct {
	Strategy Strategy
	// Programs are the source programs, in the caller's order.
	Programs []*circuit.Circuit
	// Schedules holds one joint schedule for co-located strategies, or
	// one schedule per program for Separate.
	Schedules []*router.Schedule
	// Initial holds the initial mappings matching Schedules: for
	// co-located strategies Initial[0][p] is program p's mapping; for
	// Separate, Initial[i] holds only program i's mapping.
	Initial [][][]int
	// CNOTs and Depth are the post-compilation totals (SWAP = 3 CNOTs;
	// for Separate they sum/max over the per-program schedules).
	CNOTs int
	Depth int
	// Swaps and InterSwaps total the inserted SWAPs.
	Swaps      int
	InterSwaps int
}

// Compile compiles the workload under the given strategy, trying
// c.Attempts seeds and keeping the schedule with the fewest
// post-compilation CNOTs.
func (c *Compiler) Compile(progs []*circuit.Circuit, strat Strategy) (*Result, error) {
	return c.CompileContext(context.Background(), progs, strat)
}

// CompileContext is Compile with a caller-supplied context, the hook a
// serving layer uses to bound a batch: cancellation is checked between
// compilation attempts (and between per-program units inside Separate),
// so an expired deadline abandons the remaining attempts and fails the
// compilation with the context's error. With an uncancelled context the
// result is identical to Compile.
//
// A panic inside one attempt (partitioner or router invariant
// violation) fails only that attempt; the best of the surviving
// attempts still wins. The compilation as a whole errors only when
// every attempt failed.
func (c *Compiler) CompileContext(ctx context.Context, progs []*circuit.Circuit, strat Strategy) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(progs) == 0 {
		return nil, errors.New("qucloud: empty workload")
	}
	if c.PreOptimize {
		opt := make([]*circuit.Circuit, len(progs))
		for i, p := range progs {
			opt[i] = circuit.Optimize(p)
		}
		progs = opt
	}
	attempts := c.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	// Attempts are independent (seeded per index), so they fan out over
	// the worker pool; each records its outcome at its own index and
	// the winner is picked by a seed-order scan afterwards, replicating
	// the sequential first-best / last-error semantics exactly.
	results := make([]*Result, attempts)
	errs := make([]error, attempts)
	_ = pool.ForEach(ctx, attempts, c.Workers, func(i int) error {
		results[i], errs[i] = c.compileAttempt(ctx, progs, strat, int64(i)+1)
		return nil
	})
	var best *Result
	var lastErr error
	for i := 0; i < attempts; i++ {
		if errs[i] != nil {
			lastErr = errs[i]
			continue
		}
		if best == nil || results[i].CNOTs < best.CNOTs {
			best = results[i]
		}
	}
	if best == nil {
		if err := ctx.Err(); err != nil {
			// The deadline expired before any attempt finished; report
			// the cancellation rather than a skipped attempt's nil error.
			return nil, fmt.Errorf("qucloud: %s compilation canceled: %w", strat, err)
		}
		return nil, fmt.Errorf("qucloud: %s compilation failed: %w", strat, lastErr)
	}
	return best, nil
}

// compileAttempt is compileOnce behind a recover: a panic in the
// partitioner/router pipeline becomes this attempt's error instead of
// unwinding the caller (or, under parallel attempts, killing the
// process from a pool goroutine).
func (c *Compiler) compileAttempt(ctx context.Context, progs []*circuit.Circuit, strat Strategy, seed int64) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("qucloud: attempt %d panicked: %v", seed, r)
		}
	}()
	return c.compileOnce(ctx, progs, strat, seed)
}

func (c *Compiler) compileOnce(ctx context.Context, progs []*circuit.Circuit, strat Strategy, seed int64) (*Result, error) {
	switch strat {
	case Separate:
		return c.compileSeparate(ctx, progs, seed)
	case SABRE:
		return c.compileMergedSABRE(progs, seed, false)
	case XSwapOnly:
		return c.compileMergedSABRE(progs, seed, true)
	case Baseline:
		res, err := partition.FRP(c.Device, progs)
		if err != nil {
			return nil, err
		}
		opts := router.DefaultOptions()
		opts.NoisePenalty = c.NoisePenalty
		opts.UseBridge = c.Bridge
		opts.Seed = seed
		return c.routeJoint(progs, res, opts, Baseline)
	case CDAPOnly:
		res, err := partition.CDAP(c.Device, c.Tree(), progs)
		if err != nil {
			return nil, err
		}
		// Same noise-aware transition as the baseline, so the ablation
		// isolates the initial-mapping contribution.
		opts := router.DefaultOptions()
		opts.NoisePenalty = c.NoisePenalty
		opts.UseBridge = c.Bridge
		opts.Seed = seed
		return c.routeJoint(progs, res, opts, CDAPOnly)
	case CDAPXSwap:
		res, err := partition.CDAP(c.Device, c.Tree(), progs)
		if err != nil {
			return nil, err
		}
		opts := router.XSWAPOptions()
		opts.NoisePenalty = c.NoisePenalty
		opts.UseBridge = c.Bridge
		opts.Seed = seed
		return c.routeJoint(progs, res, opts, CDAPXSwap)
	}
	return nil, fmt.Errorf("qucloud: unknown strategy %v", strat)
}

// compileSeparate compiles each program alone: CDAP's single-program
// allocation (most reliable region) plus noise-aware routing. Programs
// are independent, so they compile in parallel into indexed slots; the
// totals are assembled in program order afterwards.
func (c *Compiler) compileSeparate(ctx context.Context, progs []*circuit.Circuit, seed int64) (*Result, error) {
	type sepUnit struct {
		sched   *router.Schedule
		mapping []int
	}
	units := make([]sepUnit, len(progs))
	if err := pool.ForEach(ctx, len(progs), c.Workers, func(i int) error {
		p := progs[i]
		res, err := partition.CDAP(c.Device, c.Tree(), []*circuit.Circuit{p})
		if err != nil {
			return err
		}
		opts := router.DefaultOptions()
		opts.NoisePenalty = c.NoisePenalty
		opts.UseBridge = c.Bridge
		opts.Seed = seed
		mapping, err := router.ReverseTraversal(c.Device, p, res.Assignments[0].InitialMapping, c.Traversals, opts)
		if err != nil {
			return err
		}
		s, err := router.RouteSingle(c.Device, p, mapping, opts)
		if err != nil {
			return err
		}
		units[i] = sepUnit{sched: s, mapping: mapping}
		return nil
	}); err != nil {
		return nil, err
	}
	out := &Result{Strategy: Separate, Programs: progs}
	for _, u := range units {
		out.Schedules = append(out.Schedules, u.sched)
		out.Initial = append(out.Initial, [][]int{u.mapping})
		out.CNOTs += u.sched.CNOTCount()
		out.Swaps += u.sched.SwapCount
		if d := u.sched.Depth(); d > out.Depth {
			out.Depth = d
		}
	}
	return out, nil
}

// compileMergedSABRE implements the SABRE and X-SWAP-only strategies:
// the programs are merged into one circuit, SABRE's reverse traversal
// produces the initial mapping, and the workload is routed jointly —
// without (SABRE) or with (X-SWAP-only) the X-SWAP scheme.
func (c *Compiler) compileMergedSABRE(progs []*circuit.Circuit, seed int64, xswap bool) (*Result, error) {
	total := 0
	offsets := make([]int, len(progs))
	for i, p := range progs {
		offsets[i] = total
		total += p.NumQubits
	}
	if total > c.Device.NumQubits() {
		return nil, fmt.Errorf("qucloud: workload needs %d qubits, chip has %d", total, c.Device.NumQubits())
	}
	merged := circuit.New("merged", total)
	for i, p := range progs {
		merged.Compose(p, offsets[i])
	}
	opts := router.DefaultOptions()
	opts.Seed = seed
	start := router.RandomInitialMapping(c.Device, merged, seed*7919+13)
	mapping, err := router.ReverseTraversal(c.Device, merged, start, c.Traversals, opts)
	if err != nil {
		return nil, err
	}
	initial := make([][]int, len(progs))
	for i, p := range progs {
		initial[i] = mapping[offsets[i] : offsets[i]+p.NumQubits]
	}
	ropts := router.DefaultOptions()
	ropts.Seed = seed
	ropts.InterProgram = true // merged compilation has no program walls
	if xswap {
		ropts = router.XSWAPOptions()
		ropts.Seed = seed
	}
	ropts.UseBridge = c.Bridge
	strat := SABRE
	if xswap {
		strat = XSwapOnly
	}
	return c.routeJointMappings(progs, initial, ropts, strat)
}

func (c *Compiler) routeJoint(progs []*circuit.Circuit, res *partition.Result, opts router.Options, strat Strategy) (*Result, error) {
	initial := make([][]int, len(progs))
	for i, a := range res.Assignments {
		initial[i] = a.InitialMapping
	}
	// Refine the partitioner's GWEF mapping with joint reverse
	// traversal under the same SWAP policy that will route the final
	// pass (Das et al.'s baseline inherits SABRE's traversal too).
	if c.Traversals > 0 {
		refined, err := router.ReverseTraversalMulti(c.Device, progs, initial, c.Traversals, opts)
		if err == nil {
			initial = refined
		}
	}
	return c.routeJointMappings(progs, initial, opts, strat)
}

func (c *Compiler) routeJointMappings(progs []*circuit.Circuit, initial [][]int, opts router.Options, strat Strategy) (*Result, error) {
	s, err := router.Route(c.Device, progs, initial, opts)
	if err != nil {
		return nil, err
	}
	return &Result{
		Strategy:   strat,
		Programs:   progs,
		Schedules:  []*router.Schedule{s},
		Initial:    [][][]int{initial},
		CNOTs:      s.CNOTCount(),
		Depth:      s.Depth(),
		Swaps:      s.SwapCount,
		InterSwaps: s.InterSwapCount,
	}, nil
}

// Simulate estimates per-program PSTs for the compiled result by Monte
// Carlo simulation with the given trial count and noise model. For the
// Separate strategy each program runs alone; for co-located strategies
// the joint schedule runs once with all programs sharing the chip.
func (c *Compiler) Simulate(r *Result, trials int, seed int64, noise sim.NoiseModel) ([]float64, error) {
	return c.SimulateContext(context.Background(), r, trials, seed, noise)
}

// SimulateContext is Simulate with a caller-supplied context:
// cancellation is checked at trial-shard boundaries (and between
// per-program runs for Separate), so a service deadline abandons the
// remaining Monte-Carlo budget. An uncancelled context yields results
// bit-identical to Simulate.
func (c *Compiler) SimulateContext(ctx context.Context, r *Result, trials int, seed int64, noise sim.NoiseModel) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if r.Strategy == Separate {
		psts := make([]float64, len(r.Programs))
		for i, p := range r.Programs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out, err := sim.SimulateScheduleCtx(ctx, c.Device, r.Schedules[i], []*circuit.Circuit{p}, trials, seed+int64(i), noise, c.Workers)
			if err != nil {
				return nil, err
			}
			psts[i] = out.PST[0]
		}
		return psts, nil
	}
	out, err := sim.SimulateScheduleCtx(ctx, c.Device, r.Schedules[0], r.Programs, trials, seed, noise, c.Workers)
	if err != nil {
		return nil, err
	}
	return out.PST, nil
}

// Validate checks the result's schedules against the source programs.
func (r *Result) Validate() error {
	if r.Strategy == Separate {
		for i, s := range r.Schedules {
			if err := s.Validate([]*circuit.Circuit{r.Programs[i]}, r.Initial[i]); err != nil {
				return err
			}
		}
		return nil
	}
	return r.Schedules[0].Validate(r.Programs, r.Initial[0])
}

// SimulateClifford is Simulate with the stabilizer-tableau backend: it
// supports any chip size (including the 50-qubit device) but requires
// every program to be a Clifford circuit.
func (c *Compiler) SimulateClifford(r *Result, trials int, seed int64, noise sim.NoiseModel) ([]float64, error) {
	return c.SimulateCliffordContext(context.Background(), r, trials, seed, noise)
}

// SimulateCliffordContext is SimulateClifford with a caller-supplied
// context, checked at shard boundaries like SimulateContext.
func (c *Compiler) SimulateCliffordContext(ctx context.Context, r *Result, trials int, seed int64, noise sim.NoiseModel) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if r.Strategy == Separate {
		psts := make([]float64, len(r.Programs))
		for i, p := range r.Programs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out, err := sim.SimulateScheduleCliffordCtx(ctx, c.Device, r.Schedules[i], []*circuit.Circuit{p}, trials, seed+int64(i), noise, c.Workers)
			if err != nil {
				return nil, err
			}
			psts[i] = out.PST[0]
		}
		return psts, nil
	}
	out, err := sim.SimulateScheduleCliffordCtx(ctx, c.Device, r.Schedules[0], r.Programs, trials, seed, noise, c.Workers)
	if err != nil {
		return nil, err
	}
	return out.PST, nil
}
