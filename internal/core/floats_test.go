package core

import "testing"

func TestFloatEq(t *testing.T) {
	if !FloatEq(0.1+0.2, 0.3) {
		t.Error("FloatEq(0.1+0.2, 0.3) = false, want true")
	}
	if FloatEq(0.95, 0.40) {
		t.Error("FloatEq(0.95, 0.40) = true, want false")
	}
	if FloatTol <= 0 || FloatTol >= 1e-6 {
		t.Errorf("FloatTol = %g out of the documented range", FloatTol)
	}
}
