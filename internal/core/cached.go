package core

import (
	"context"

	"repro/internal/ccache"
	"repro/internal/circuit"
)

// CacheKey builds the content-addressed cache key for compiling progs
// under strat with this compiler's current configuration. The key
// captures everything the compilation output depends on — the circuit
// structure (names excluded), the device identity and its calibration
// artifact version, the strategy, and every compiler knob that steers
// attempt seeding or routing — so equal fingerprints imply bit-identical
// Results. ApplyCalibration bumps the device's calibration version,
// which retires every key minted before it.
func (c *Compiler) CacheKey(progs []*circuit.Circuit, strat Strategy) ccache.Key {
	attempts := c.Attempts
	if attempts <= 0 {
		attempts = 1 // CompileContext's own normalization
	}
	return ccache.Key{
		Device:       c.Device.Name,
		CalVersion:   c.Device.CalibrationVersion(),
		Strategy:     strat.String(),
		Omega:        c.Omega,
		Attempts:     attempts,
		Traversals:   c.Traversals,
		NoisePenalty: c.NoisePenalty,
		PreOptimize:  c.PreOptimize,
		Bridge:       c.Bridge,
		Programs:     progs,
	}
}

// CompileCachedContext is CompileContext behind a compile-result cache:
// a fingerprint hit returns the stored *Result without recompiling, a
// miss compiles and stores, and concurrent identical requests coalesce
// onto one compile (singleflight). A nil cache degrades to a plain
// CompileContext call, so callers thread an optional cache without
// branching.
//
// The returned Result is shared between all callers that hit the same
// key and must be treated as immutable — the compiler pipeline never
// mutates a Result after building it, so sharing is safe. Cached and
// uncached paths are byte-identical: compilation is deterministic in
// (key ingredients), which the cross-path differential tests enforce.
func (c *Compiler) CompileCachedContext(ctx context.Context, cache *ccache.Cache, progs []*circuit.Circuit, strat Strategy) (*Result, ccache.Outcome, error) {
	if cache == nil {
		res, err := c.CompileContext(ctx, progs, strat)
		return res, ccache.OutcomeBypass, err
	}
	v, err, outcome := cache.GetOrCompute(ctx, c.CacheKey(progs, strat).Fingerprint(), func(ctx context.Context) (any, error) {
		return c.CompileContext(ctx, progs, strat)
	})
	if err != nil {
		return nil, outcome, err
	}
	return v.(*Result), outcome, nil
}
