package core

import "repro/internal/fp"

// FloatTol is the tolerance FloatEq compares under (see fp.Tol).
const FloatTol = fp.Tol

// FloatEq reports whether two fidelity-scale values (PST, EPST,
// modularity, error rates) are equal within FloatTol × max(1, |a|,
// |b|). Use it instead of == on float64: exact equality on simulated
// fidelities is brittle against any reassociation of the underlying
// arithmetic, and the floateq lint check rejects it.
func FloatEq(a, b float64) bool { return fp.Eq(a, b) }
