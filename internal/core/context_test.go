package core

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

// TestCompileContextCanceled: an already-canceled context must fail
// the compilation with the context error instead of hanging or
// returning a bogus result.
func TestCompileContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	comp := NewCompiler(arch.IBMQ16(0))
	for _, s := range Strategies {
		if _, err := comp.CompileContext(ctx, pairWorkload(), s); err == nil {
			t.Fatalf("%s: canceled context should fail compilation", s)
		}
	}
}

// TestSimulateContextCanceled: the simulation variants must honor an
// already-canceled context.
func TestSimulateContextCanceled(t *testing.T) {
	comp := NewCompiler(arch.IBMQ16(0))
	res, err := comp.Compile(pairWorkload(), Separate)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := comp.SimulateContext(ctx, res, 32, 1, sim.DefaultNoise()); err == nil {
		t.Fatal("canceled context should fail simulation")
	}
	if _, err := comp.SimulateCliffordContext(ctx, res, 32, 1, sim.DefaultNoise()); err == nil {
		t.Fatal("canceled context should fail Clifford simulation")
	}
}

// TestContextVariantsMatchPlain: with a live context the ctx variants
// must be bit-identical to the plain API (the PR 3 determinism
// contract extends to context plumbing).
func TestContextVariantsMatchPlain(t *testing.T) {
	d := arch.IBMQ16(0)
	progs := pairWorkload()
	ctx := context.Background()

	plainComp := NewCompiler(d)
	ctxComp := NewCompiler(d)
	plainRes, err := plainComp.Compile(progs, CDAPXSwap)
	if err != nil {
		t.Fatal(err)
	}
	ctxRes, err := ctxComp.CompileContext(ctx, progs, CDAPXSwap)
	if err != nil {
		t.Fatal(err)
	}
	if plainRes.CNOTs != ctxRes.CNOTs || plainRes.Depth != ctxRes.Depth {
		t.Fatalf("context compile diverged: plain (cnots=%d depth=%d) vs ctx (cnots=%d depth=%d)",
			plainRes.CNOTs, plainRes.Depth, ctxRes.CNOTs, ctxRes.Depth)
	}

	noise := sim.DefaultNoise()
	plainPSTs, err := plainComp.Simulate(plainRes, 64, 3, noise)
	if err != nil {
		t.Fatal(err)
	}
	ctxPSTs, err := ctxComp.SimulateContext(ctx, ctxRes, 64, 3, noise)
	if err != nil {
		t.Fatal(err)
	}
	if len(plainPSTs) != len(ctxPSTs) {
		t.Fatalf("PST count diverged: %d vs %d", len(plainPSTs), len(ctxPSTs))
	}
	for i := range plainPSTs {
		if plainPSTs[i] != ctxPSTs[i] {
			t.Fatalf("PST[%d] diverged: %v vs %v", i, plainPSTs[i], ctxPSTs[i])
		}
	}
}
