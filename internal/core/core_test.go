package core

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/nisqbench"
	"repro/internal/sim"
)

func pairWorkload() []*circuit.Circuit {
	return []*circuit.Circuit{
		nisqbench.MustGet("bv_n3"),
		nisqbench.MustGet("toffoli_3"),
	}
}

func TestAllStrategiesCompileAndValidate(t *testing.T) {
	d := arch.IBMQ16(0)
	progs := pairWorkload()
	for _, s := range Strategies {
		comp := NewCompiler(d)
		comp.Attempts = 2
		res, err := comp.Compile(progs, s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("%s: invalid schedule: %v", s, err)
		}
		if res.CNOTs <= 0 || res.Depth <= 0 {
			t.Fatalf("%s: cnots=%d depth=%d", s, res.CNOTs, res.Depth)
		}
		if res.Strategy != s {
			t.Fatalf("%s: result strategy %v", s, res.Strategy)
		}
	}
}

func TestSeparateHasPerProgramSchedules(t *testing.T) {
	d := arch.IBMQ16(0)
	progs := pairWorkload()
	comp := NewCompiler(d)
	res, err := comp.Compile(progs, Separate)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedules) != 2 {
		t.Fatalf("schedules = %d, want 2", len(res.Schedules))
	}
}

func TestColocatedHasOneSchedule(t *testing.T) {
	d := arch.IBMQ16(0)
	comp := NewCompiler(d)
	res, err := comp.Compile(pairWorkload(), CDAPXSwap)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedules) != 1 {
		t.Fatalf("schedules = %d, want 1", len(res.Schedules))
	}
}

func TestSimulateReturnsPerProgramPSTs(t *testing.T) {
	d := arch.IBMQ16(0)
	progs := pairWorkload()
	for _, s := range []Strategy{Separate, CDAPXSwap, SABRE} {
		comp := NewCompiler(d)
		comp.Attempts = 2
		res, err := comp.Compile(progs, s)
		if err != nil {
			t.Fatal(err)
		}
		psts, err := comp.Simulate(res, 200, 11, sim.DefaultNoise())
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if len(psts) != 2 {
			t.Fatalf("%s: psts = %v", s, psts)
		}
		for _, p := range psts {
			if p < 0.05 || p > 1 {
				t.Fatalf("%s: implausible PST %v", s, p)
			}
		}
	}
}

func TestCompileEmptyWorkload(t *testing.T) {
	comp := NewCompiler(arch.IBMQ16(0))
	if _, err := comp.Compile(nil, CDAPXSwap); err == nil {
		t.Fatal("empty workload must error")
	}
}

func TestCompileOversizedWorkload(t *testing.T) {
	comp := NewCompiler(arch.IBMQ16(0))
	progs := []*circuit.Circuit{nisqbench.MustGet("qft_10"), nisqbench.MustGet("bv_n10")}
	for _, s := range []Strategy{SABRE, Baseline, CDAPXSwap} {
		if _, err := comp.Compile(progs, s); err == nil {
			t.Fatalf("%s: 20 qubits on 15-qubit chip must error", s)
		}
	}
}

func TestStrategyStrings(t *testing.T) {
	want := map[Strategy]string{
		Separate:  "Separate",
		SABRE:     "SABRE",
		Baseline:  "Baseline",
		CDAPXSwap: "CDAP+X-SWAP",
		CDAPOnly:  "CDAP-only",
		XSwapOnly: "X-SWAP-only",
	}
	for s, w := range want {
		if s.String() != w {
			t.Fatalf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
	if !strings.Contains(Strategy(99).String(), "99") {
		t.Fatal("unknown strategy string")
	}
}

func TestNewCompilerOmegaByChipSize(t *testing.T) {
	if c := NewCompiler(arch.IBMQ16(0)); c.Omega != 0.95 {
		t.Fatalf("IBMQ16 omega = %v, want 0.95", c.Omega)
	}
	if c := NewCompiler(arch.IBMQ50(0)); c.Omega != 0.40 {
		t.Fatalf("IBMQ50 omega = %v, want 0.40", c.Omega)
	}
}

func TestTreeCachedAndInvalidated(t *testing.T) {
	comp := NewCompiler(arch.IBMQ16(0))
	t1 := comp.Tree()
	t2 := comp.Tree()
	if t1 != t2 {
		t.Fatal("tree must be cached")
	}
	comp.InvalidateTree()
	if comp.Tree() == t1 {
		t.Fatal("InvalidateTree must drop the cache")
	}
}

func TestBestOfAttemptsNotWorseThanOne(t *testing.T) {
	d := arch.IBMQ16(3)
	progs := []*circuit.Circuit{nisqbench.MustGet("3_17_13"), nisqbench.MustGet("alu-v0_27")}
	one := NewCompiler(d)
	one.Attempts = 1
	many := NewCompiler(d)
	many.Attempts = 5
	r1, err := one.Compile(progs, CDAPXSwap)
	if err != nil {
		t.Fatal(err)
	}
	r5, err := many.Compile(progs, CDAPXSwap)
	if err != nil {
		t.Fatal(err)
	}
	if r5.CNOTs > r1.CNOTs {
		t.Fatalf("best-of-5 (%d CNOTs) worse than single attempt (%d)", r5.CNOTs, r1.CNOTs)
	}
}

func TestXSwapOnlyCountsInterSwapsOnBigChip(t *testing.T) {
	// On IBMQ50 with four programs, X-SWAP should find at least some
	// inter-program shortcuts across many seeds.
	d := arch.IBMQ50(1)
	progs := []*circuit.Circuit{
		nisqbench.MustGet("aj-e11_165"),
		nisqbench.MustGet("4gt4-v0_72"),
		nisqbench.MustGet("ham7_104"),
		nisqbench.MustGet("alu-bdd_288"),
	}
	comp := NewCompiler(d)
	comp.Attempts = 1
	comp.NoisePenalty = 0
	res, err := comp.Compile(progs, CDAPXSwap)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	t.Logf("swaps=%d inter=%d", res.Swaps, res.InterSwaps)
}

func TestSeparateBeatsColocationOnAverageFidelity(t *testing.T) {
	// The headline ordering of Table II: separate execution's mean PST
	// over a small suite must not lose to the merged-SABRE co-location.
	d := arch.IBMQ16(0)
	suite := [][2]string{{"bv_n3", "toffoli_3"}, {"bv_n3", "peres_3"}}
	avg := func(strat Strategy) float64 {
		sum, n := 0.0, 0
		for wi, w := range suite {
			progs := []*circuit.Circuit{nisqbench.MustGet(w[0]), nisqbench.MustGet(w[1])}
			comp := NewCompiler(d)
			comp.Attempts = 2
			res, err := comp.Compile(progs, strat)
			if err != nil {
				t.Fatal(err)
			}
			psts, err := comp.Simulate(res, 400, int64(100+wi), sim.DefaultNoise())
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range psts {
				sum += p
				n++
			}
		}
		return sum / float64(n)
	}
	sep, sab := avg(Separate), avg(SABRE)
	if sep < sab-0.05 {
		t.Fatalf("Separate avg PST %.3f clearly below SABRE co-location %.3f", sep, sab)
	}
}

func TestPreOptimizeShrinksRedundantCircuits(t *testing.T) {
	d := arch.IBMQ16(0)
	wasteful := circuit.New("wasteful", 3)
	wasteful.CX(0, 1).CX(0, 1).H(2).H(2).CX(1, 2).MeasureAll()
	comp := NewCompiler(d)
	comp.Attempts = 1
	comp.PreOptimize = true
	res, err := comp.Compile([]*circuit.Circuit{wasteful}, Separate)
	if err != nil {
		t.Fatal(err)
	}
	// Only the surviving cx(1,2) plus potential swaps should remain.
	plain := NewCompiler(d)
	plain.Attempts = 1
	res2, err := plain.Compile([]*circuit.Circuit{wasteful}, Separate)
	if err != nil {
		t.Fatal(err)
	}
	if res.CNOTs >= res2.CNOTs {
		t.Fatalf("optimized CNOTs %d >= unoptimized %d", res.CNOTs, res2.CNOTs)
	}
}

func TestBridgeOptionReducesOrMatchesCNOTs(t *testing.T) {
	d := arch.IBMQ16(2)
	progs := []*circuit.Circuit{
		nisqbench.MustGet("bv_n4"), // one-shot CX pairs: bridge-friendly
		nisqbench.MustGet("bv_n3"),
	}
	with := NewCompiler(d)
	with.Bridge = true
	without := NewCompiler(d)
	rw, err := with.Compile(progs, CDAPXSwap)
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Validate(); err != nil {
		t.Fatal(err)
	}
	ro, err := without.Compile(progs, CDAPXSwap)
	if err != nil {
		t.Fatal(err)
	}
	if rw.CNOTs > ro.CNOTs {
		t.Fatalf("bridge-enabled CNOTs %d > swap-only %d", rw.CNOTs, ro.CNOTs)
	}
}
