package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/arch"
	"repro/internal/ccache"
	"repro/internal/circuit"
	"repro/internal/cloudsim"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/quos"
	"repro/internal/sched"
)

// Circuit-breaker states. A worker's breaker is "closed" in normal
// operation; BreakerThreshold consecutive batch failures open it, the
// backend drains for BreakerCooldown, then a single half-open probe
// batch decides between closing (healthy again) and re-opening.
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

// breaker is one worker's circuit-breaker bookkeeping.
type breaker struct {
	state    string    // breakerClosed / breakerOpen / breakerHalfOpen
	fails    int       // consecutive batch failures
	opens    int64     // cumulative trips
	openedAt time.Time // when it last opened
}

// worker owns one backend device: it claims EPST batches from the
// shared queue, compiles and simulates them, and writes results back.
// Mutable fields (eps, busy, counters, trace, breaker) are guarded by
// Service.mu; comp, ctrl, and the seed counter are touched only by the
// worker's own goroutine, so each worker is deterministic and
// race-free without sharing any random state.
//
// The worker loop is panic-isolated: a panic while claiming fails only
// the head job, a panic while executing fails only the claimed batch,
// and in both cases the loop keeps serving. Batch execution runs under
// the Config.BatchTimeout deadline, transient failures retry with
// capped deterministic backoff, and repeated failures trip the
// breaker so a miscalibrated backend drains instead of crash-looping.
type worker struct {
	svc   *Service
	index int
	dev   *arch.Device
	comp  *core.Compiler
	ctrl  *quos.Controller // nil under PolicyStatic
	seed  int64            // per-worker deterministic seed counter

	eps            float64                // guarded by svc.mu
	busy           bool                   // guarded by svc.mu
	jobsDone       int64                  // guarded by svc.mu
	batchesDone    int64                  // guarded by svc.mu
	cacheHits      int64                  // guarded by svc.mu
	cacheMisses    int64                  // guarded by svc.mu
	cacheCoalesced int64                  // guarded by svc.mu
	trace          []cloudsim.BatchRecord // guarded by svc.mu
	schedErrs      int64                  // guarded by svc.mu
	lastSchedErr   string                 // guarded by svc.mu
	brk            breaker                // guarded by svc.mu
	dispatched     int64                  // guarded by svc.mu; jobs routed here by the dispatcher
	migrated       int64                  // guarded by svc.mu; jobs moved away after this breaker opened
	ewma           fleet.EWMA             // guarded by svc.mu; smoothed per-job service seconds
}

// newWorker wires a worker for the device.
func newWorker(s *Service, index int, dev *arch.Device) *worker {
	comp := core.NewCompiler(dev)
	comp.Attempts = s.cfg.Attempts
	comp.Workers = s.cfg.Workers
	w := &worker{
		svc:   s,
		index: index,
		dev:   dev,
		comp:  comp,
		seed:  s.cfg.Seed + int64(index)*1_000_003,
		eps:   s.cfg.Epsilon,
		brk:   breaker{state: breakerClosed},
		ewma:  fleet.NewEWMA(0.3),
	}
	if s.cfg.Policy == PolicyAdaptive {
		qcfg := quos.DefaultConfig()
		qcfg.InitialEpsilon = s.cfg.Epsilon
		qcfg.Lookahead = s.cfg.Lookahead
		qcfg.MaxColocate = s.cfg.MaxColocate
		w.ctrl = quos.NewController(qcfg)
	}
	return w
}

// nextSeed returns a fresh deterministic simulation seed; only the
// worker goroutine calls it.
func (w *worker) nextSeed() int64 {
	w.seed++
	return w.seed
}

// run is the worker loop: wait out the breaker, claim a batch, execute
// it, repeat until the service drains (or is forced to stop). Panics
// in either phase are recovered so one pathological batch can never
// silence the backend.
func (w *worker) run(ctx context.Context) {
	defer w.svc.wg.Done()
	for {
		if !w.breakerWait(ctx) {
			return
		}
		batch, exit := w.claimIsolated(ctx)
		if exit {
			return
		}
		if batch == nil {
			continue // claim panic recovered; head job failed
		}
		w.executeIsolated(ctx, batch)
	}
}

// breakerWait blocks while this worker's breaker is open, until the
// cooldown elapses (transitioning to half-open for one probe batch) or
// the service shuts down. It returns false when the worker should
// exit (forced stop). Draining bypasses the cooldown: the backend
// probes immediately so shutdown is never delayed by an open breaker.
func (w *worker) breakerWait(ctx context.Context) bool {
	s := w.svc
	for {
		s.mu.Lock()
		if s.forced {
			s.mu.Unlock()
			return false
		}
		if w.brk.state != breakerOpen {
			s.mu.Unlock()
			return true
		}
		wait := s.cfg.BreakerCooldown - time.Since(w.brk.openedAt)
		if wait <= 0 || s.draining {
			w.brk.state = breakerHalfOpen
			s.mu.Unlock()
			return true
		}
		s.mu.Unlock()
		sleepInterruptible(ctx, s.stopCh, wait)
	}
}

// claimIsolated runs claim behind a recover: a panic while selecting a
// batch (scheduler invariant violation, injected chaos) fails the
// oldest fitting job — so the queue cannot livelock on a poison job —
// and the loop continues. exit is true when the worker should stop.
func (w *worker) claimIsolated(ctx context.Context) (batch []*job, exit bool) {
	defer func() {
		if r := recover(); r != nil {
			w.svc.metrics.PanicsRecovered.Inc()
			w.failHead(fmt.Sprintf("claim panic: %v", r))
			batch, exit = nil, false
		}
	}()
	batch = w.claim(ctx)
	return batch, batch == nil
}

// claim blocks until jobs the dispatcher routed to this backend are
// queued, then selects the next EPST batch among them and removes it
// from the queue. It returns nil when the worker should exit: the
// service is draining and holds nothing assigned here, or a forced
// stop was requested.
func (w *worker) claim(ctx context.Context) []*job {
	s := w.svc
	s.mu.Lock()
	defer s.mu.Unlock()
	var cands []*job
	for {
		if s.forced {
			return nil
		}
		cands = cands[:0]
		for _, j := range s.queue {
			if j.assigned == w.index {
				cands = append(cands, j)
			}
		}
		if len(cands) > 0 {
			break
		}
		if s.draining {
			return nil
		}
		s.cond.Wait()
	}

	// Scheduling happens under the service lock: the EPST pass over
	// Lookahead tiny programs is milliseconds, and holding the lock
	// keeps claim/requeue linearizable across workers.
	look := len(cands)
	if look > s.cfg.Lookahead {
		look = s.cfg.Lookahead
	}
	sjobs := make([]sched.Job, look)
	for i, j := range cands[:look] {
		sjobs[i] = j.item.SchedJob()
	}
	scfg := sched.Config{
		Epsilon:     w.eps,
		Lookahead:   s.cfg.Lookahead,
		MaxColocate: s.cfg.MaxColocate,
		Omega:       omegaFor(w.dev),
	}
	selected := map[int]bool{}
	// The schedule fault hook fires here in claim (not inside
	// scheduleSafe's recover) so an injected panic unwinds into
	// claimIsolated and exercises the failHead path.
	var batches []sched.Batch
	err := s.cfg.Faults.Visit(ctx, faultinject.SiteSchedule)
	if err == nil {
		batches, err = w.scheduleSafe(sjobs, scfg)
	}
	if err == nil && len(batches) > 0 {
		for _, id := range batches[0].JobIDs {
			selected[id] = true
		}
	} else {
		// Head-of-line fallback: the oldest fitting job runs alone. A
		// scheduler error must not be silent — record it for
		// BackendStatus and the metrics snapshot.
		if err != nil {
			w.schedErrs++
			w.lastSchedErr = err.Error()
			s.metrics.SchedulerErrors.Inc()
		}
		selected[cands[0].rec.Seq] = true
	}

	var batch []*job
	rest := s.queue[:0]
	for _, j := range s.queue {
		if selected[j.rec.Seq] {
			batch = append(batch, j)
		} else {
			rest = append(rest, j)
		}
	}
	s.queue = rest

	now := time.Now()
	seqs := make([]int, len(batch))
	for i, j := range batch {
		seqs[i] = j.rec.Seq
	}
	for _, j := range batch {
		j.rec.Backend = w.dev.Name
		j.rec.CoJobs = seqs
		// WaitSeconds accumulates across requeues (co-location fallback,
		// migration): each claim adds only the time since the job last
		// entered the queue, and QueueLatency is observed once per job —
		// a requeued job must not be double-counted.
		j.rec.WaitSeconds += now.Sub(j.lastQueued).Seconds()
		j.claimed = now
		if !j.waitObserved {
			j.waitObserved = true
			s.observeLatency(s.metrics.QueueLatency, j.rec.WaitSeconds)
		}
		s.setStateLocked(j, StateBatched)
		s.dequeuedLocked(j)
		// Advance the WFQ virtual clock to the claimed work's start tag
		// so an idle tenant's next job restarts at the current virtual
		// time instead of draining accumulated credit.
		if j.vstart > s.vtime {
			s.vtime = j.vstart
		}
	}
	w.busy = true
	s.metrics.QueueDepth.Set(int64(len(s.queue)))
	s.metrics.InFlight.Add(int64(len(batch)))
	return batch
}

// scheduleSafe runs the EPST scheduler with panic containment: a
// scheduler panic becomes an error handled by the head-of-line
// fallback instead of unwinding claim. Called with Service.mu held
// (the schedule pass is part of the linearized claim).
func (w *worker) scheduleSafe(sjobs []sched.Job, scfg sched.Config) (batches []sched.Batch, err error) {
	defer func() {
		if r := recover(); r != nil {
			w.svc.metrics.PanicsRecovered.Inc()
			batches, err = nil, fmt.Errorf("scheduler panic: %v", r)
		}
	}()
	return sched.Schedule(w.dev, sjobs, scfg)
}

// failHead marks the oldest queued job assigned to this backend failed
// (the claim-panic recovery path: without removing a job the loop
// would re-panic on the same queue head forever).
func (w *worker) failHead(msg string) {
	s := w.svc
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, j := range s.queue {
		if j.assigned != w.index {
			continue
		}
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		j.rec.Error = msg
		j.rec.Backend = w.dev.Name
		s.setStateLocked(j, StateFailed)
		s.dequeuedLocked(j)
		s.markTerminalLocked(j)
		s.metrics.JobsFailed.Inc()
		s.observeLatency(s.metrics.TotalLatency, time.Since(j.rec.SubmittedAt).Seconds())
		s.metrics.QueueDepth.Set(int64(len(s.queue)))
		return
	}
}

// requeueFront returns unexecuted jobs to the queue (used when a
// co-located compilation falls back to running the head alone). The
// jobs stay assigned to this backend, so Backend is kept; only the
// batch membership is undone. Each job re-enters at its original WFQ
// position — the sorted insert lands it where it sat before the claim
// relative to everything still queued — and its wait clock restarts so
// the next claim adds only the new queueing time.
func (w *worker) requeueFront(tail []*job) {
	s := w.svc
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range tail {
		j.rec.CoJobs = nil
		j.lastQueued = now
		s.setStateLocked(j, StateQueued)
		s.enqueueLocked(j)
	}
	s.metrics.InFlight.Add(-int64(len(tail)))
	s.cond.Broadcast()
}

// executeIsolated drives one claimed batch through the retrying
// executor behind a last-resort recover: whatever escapes the
// per-phase isolation fails the batch (in its current, possibly
// fallback-shrunk form) with the recovered message, and the worker
// loop stays alive.
func (w *worker) executeIsolated(ctx context.Context, batch []*job) {
	cur := batch
	defer func() {
		if r := recover(); r != nil {
			w.svc.metrics.PanicsRecovered.Inc()
			w.fail(cur, fmt.Errorf("worker panic: %v", r))
			w.breakerFailure()
		}
	}()
	w.execute(ctx, &cur)
}

// execute runs the batch, retrying transient failures with capped
// deterministic backoff (base<<attempt, capped at RetryMaxDelay) and
// feeding the circuit breaker. curp tracks the live batch: the
// co-location fallback inside an attempt may shrink it.
func (w *worker) execute(ctx context.Context, curp *[]*job) {
	s := w.svc
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := w.attempt(ctx, curp)
		if err == nil {
			w.breakerSuccess()
			return
		}
		lastErr = err
		if attempt >= s.cfg.MaxRetries || !isTransient(err) {
			break
		}
		s.metrics.BatchRetries.Inc()
		sleepInterruptible(ctx, s.stopCh, backoffDelay(s.cfg, attempt))
	}
	if errors.Is(lastErr, context.DeadlineExceeded) {
		s.metrics.BatchTimeouts.Inc()
		lastErr = fmt.Errorf("batch deadline (%s) exceeded: %w", s.cfg.BatchTimeout, lastErr)
	}
	w.fail(*curp, lastErr)
	w.breakerFailure()
}

// attempt is one full compile+simulate pass over the live batch under
// the per-batch deadline, which descends from the service's run
// context so a forced shutdown cancels the attempt mid-flight. On
// success it records results and returns nil; any error leaves the
// batch claimed for the caller's retry/fail decision.
func (w *worker) attempt(ctx context.Context, curp *[]*job) error {
	s := w.svc
	batch := *curp
	if s.cfg.BatchTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.BatchTimeout)
		defer cancel()
	}

	start := time.Now()
	progs := make([]*circuit.Circuit, len(batch))
	func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, j := range batch {
			s.setStateLocked(j, StateCompiling)
			progs[i] = j.item.Circ
		}
	}()

	m := s.metrics
	strat := strategyFor(len(batch))
	res, err := w.compile(ctx, progs, strat)
	s.observeLatency(m.CompileLatency, time.Since(start).Seconds())
	if err != nil && len(batch) > 1 && ctx.Err() == nil {
		// Co-location failed after all: put the tail back and run the
		// head alone, as the offline cloudsim does. The fallback
		// retry's duration is measured on its own — the failed
		// co-located attempt must not inflate its compile latency.
		m.FallbackBatches.Inc()
		w.requeueFront(batch[1:])
		batch, progs = batch[:1], progs[:1]
		*curp = batch
		strat = core.Separate
		retryStart := time.Now()
		res, err = w.compile(ctx, progs, strat)
		s.observeLatency(m.CompileLatency, time.Since(retryStart).Seconds())
	}
	if err != nil {
		return fmt.Errorf("compile: %w", err)
	}

	simStart := time.Now()
	psts, err := w.simulate(ctx, res)
	if err != nil {
		return fmt.Errorf("execute: %w", err)
	}
	if s.cfg.ExecDwell > 0 {
		// Emulated hardware occupancy (see Config.ExecDwell): the
		// backend stays busy for the dwell as a real QPU would across
		// its shots.
		time.Sleep(s.cfg.ExecDwell)
	}
	executed := time.Now()
	// Guard the average before it reaches the adaptive controller: a
	// count mismatch or non-finite PST would poison epsilon adaptation
	// with NaN forever after.
	avg, err := batchAvgPST(psts, len(batch))
	if err != nil {
		return fmt.Errorf("execute: %w", err)
	}

	// Adaptive control: compare achieved fidelity to the
	// separate-execution estimate and let the controller move epsilon.
	var newEps float64
	adapted := false
	if w.ctrl != nil {
		if sepEst, estErr := quos.SeparateEstimateContext(ctx, w.comp, progs, s.cfg.Noise); estErr == nil {
			w.ctrl.Observe(len(progs) > 1, avg, sepEst)
			newEps = w.ctrl.Epsilon()
			adapted = true
		}
	}

	qubits := 0
	for _, p := range progs {
		qubits += p.NumQubits
	}
	seqs := make([]int, len(batch))
	for i, j := range batch {
		seqs[i] = j.rec.Seq
	}
	func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, j := range batch {
			j.rec.PST = psts[i]
			j.rec.ServiceSeconds = executed.Sub(j.claimed).Seconds()
			s.setStateLocked(j, StateDone)
			s.markTerminalLocked(j)
		}
		if adapted {
			w.eps = newEps
		}
		w.busy = false
		w.jobsDone += int64(len(batch))
		w.batchesDone++
		// Feed the dispatcher's wait estimator: the batch's wall time
		// amortized over its jobs approximates per-job service cost.
		w.ewma.Observe(executed.Sub(start).Seconds() / float64(len(batch)))
		w.trace = append(w.trace, cloudsim.BatchRecord{
			JobIDs:     seqs,
			Start:      start.Sub(s.start).Seconds(),
			Finish:     executed.Sub(s.start).Seconds(),
			Depth:      res.Depth,
			CNOTs:      res.CNOTs,
			Strategy:   strat,
			QubitsUsed: qubits,
		})
		if len(w.trace) > s.cfg.TraceDepth {
			w.trace = w.trace[len(w.trace)-s.cfg.TraceDepth:]
		}
	}()

	m.BatchesExecuted.Inc()
	m.BatchSize.Observe(float64(len(batch)))
	if len(batch) > 1 {
		m.ColocatedBatches.Inc()
		m.ColocatedJobs.Add(int64(len(batch)))
	}
	s.observeLatency(m.ExecLatency, executed.Sub(simStart).Seconds())
	m.InFlight.Add(-int64(len(batch)))
	for i, j := range batch {
		m.JobsCompleted.Inc()
		s.observeLatency(m.TotalLatency, executed.Sub(j.rec.SubmittedAt).Seconds())
		m.PST.Observe(psts[i])
	}
	return nil
}

// compile runs one batch compilation with fault injection and panic
// containment: a compiler panic fails the batch with the recovered
// message instead of unwinding the worker. The compile goes through
// the service-wide result cache (nil when disabled): a fingerprint hit
// skips the pipeline, and identical batches compiling concurrently on
// other workers coalesce onto one compilation. Panics from the cache's
// own hooks surface here too, so a faulted cache can never unwind the
// worker loop.
func (w *worker) compile(ctx context.Context, progs []*circuit.Circuit, strat core.Strategy) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			w.svc.metrics.PanicsRecovered.Inc()
			res, err = nil, fmt.Errorf("compiler panic: %v", r)
		}
	}()
	if err := w.svc.cfg.Faults.Visit(ctx, faultinject.SiteCompile); err != nil {
		return nil, err
	}
	start := time.Now()
	res, outcome, err := w.comp.CompileCachedContext(ctx, w.svc.cache, progs, strat)
	w.recordCacheOutcome(outcome, time.Since(start).Seconds())
	return res, err
}

// recordCacheOutcome feeds one cached-compile outcome into the shared
// registry and the per-worker counters shown in /v1/backends. Lookup
// latency is recorded only when the cache actually served the result
// (hit or coalesced) — a miss's duration is the compile itself, which
// CompileLatency already measures.
func (w *worker) recordCacheOutcome(outcome ccache.Outcome, seconds float64) {
	m := w.svc.metrics
	switch outcome {
	case ccache.OutcomeHit:
		m.CacheHits.Inc()
		w.svc.observeLatency(m.CacheLookup, seconds)
	case ccache.OutcomeMiss:
		m.CacheMisses.Inc()
	case ccache.OutcomeCoalesced:
		m.CacheCoalesced.Inc()
		w.svc.observeLatency(m.CacheLookup, seconds)
	default:
		return // bypass: caching disabled or faulted out of this call
	}
	w.svc.mu.Lock()
	defer w.svc.mu.Unlock()
	switch outcome {
	case ccache.OutcomeHit:
		w.cacheHits++
	case ccache.OutcomeMiss:
		w.cacheMisses++
	case ccache.OutcomeCoalesced:
		w.cacheCoalesced++
	}
}

// simulate runs the compiled batch with fault injection and panic
// containment, under the batch deadline.
func (w *worker) simulate(ctx context.Context, res *core.Result) (psts []float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			w.svc.metrics.PanicsRecovered.Inc()
			psts, err = nil, fmt.Errorf("simulator panic: %v", r)
		}
	}()
	if err := w.svc.cfg.Faults.Visit(ctx, faultinject.SiteSimulate); err != nil {
		return nil, err
	}
	return w.comp.SimulateContext(ctx, res, w.svc.cfg.Trials, w.nextSeed(), w.svc.cfg.Noise)
}

// batchAvgPST averages the per-program PSTs, rejecting the count
// mismatches and non-finite values that would otherwise feed NaN into
// quos epsilon adaptation.
func batchAvgPST(psts []float64, want int) (float64, error) {
	if len(psts) == 0 || len(psts) != want {
		return 0, fmt.Errorf("internal: simulator returned %d PSTs for %d programs", len(psts), want)
	}
	sum := 0.0
	for i, p := range psts {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			return 0, fmt.Errorf("internal: simulator returned non-finite PST %v for program %d", p, i)
		}
		sum += p
	}
	return sum / float64(len(psts)), nil
}

// fail marks every job in the batch failed.
func (w *worker) fail(batch []*job, err error) {
	s := w.svc
	now := time.Now()
	func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, j := range batch {
			j.rec.Error = err.Error()
			j.rec.ServiceSeconds = now.Sub(j.claimed).Seconds()
			s.setStateLocked(j, StateFailed)
			s.markTerminalLocked(j)
		}
		w.busy = false
		w.batchesDone++
	}()
	s.metrics.BatchesExecuted.Inc()
	s.metrics.BatchSize.Observe(float64(len(batch)))
	s.metrics.InFlight.Add(-int64(len(batch)))
	for _, j := range batch {
		s.metrics.JobsFailed.Inc()
		s.observeLatency(s.metrics.TotalLatency, now.Sub(j.rec.SubmittedAt).Seconds())
	}
}

// breakerSuccess records a successful batch: the failure streak resets
// and a half-open probe (or a drain-bypass probe) closes the breaker.
func (w *worker) breakerSuccess() {
	s := w.svc
	s.mu.Lock()
	defer s.mu.Unlock()
	if w.brk.state != breakerClosed {
		w.brk.state = breakerClosed
		s.metrics.OpenBreakers.Add(-1)
	}
	w.brk.fails = 0
}

// breakerFailure records a failed batch: a failed half-open probe
// re-opens immediately; BreakerThreshold consecutive failures trip a
// closed breaker. A threshold of 0 disables the breaker.
func (w *worker) breakerFailure() {
	s := w.svc
	s.mu.Lock()
	defer s.mu.Unlock()
	w.brk.fails++
	switch w.brk.state {
	case breakerHalfOpen:
		w.brk.state = breakerOpen
		w.brk.openedAt = time.Now()
		w.brk.opens++
		s.metrics.BreakerTrips.Inc()
		s.migrateLocked(w)
	case breakerClosed:
		if s.cfg.BreakerThreshold > 0 && w.brk.fails >= s.cfg.BreakerThreshold {
			w.brk.state = breakerOpen
			w.brk.openedAt = time.Now()
			w.brk.opens++
			s.metrics.BreakerTrips.Inc()
			s.metrics.OpenBreakers.Add(1)
			s.migrateLocked(w)
		}
	}
}

// isTransient reports whether the error advertises itself as
// retryable via a Transient() bool method (net.Error style; the
// fault-injection harness' burst errors do).
func isTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// backoffDelay is the deterministic capped retry backoff for the
// zero-based attempt number: RetryBaseDelay << attempt, capped at
// RetryMaxDelay.
func backoffDelay(cfg Config, attempt int) time.Duration {
	if attempt > 30 {
		return cfg.RetryMaxDelay
	}
	d := cfg.RetryBaseDelay << uint(attempt)
	if d <= 0 || d > cfg.RetryMaxDelay {
		d = cfg.RetryMaxDelay
	}
	return d
}

// sleepInterruptible sleeps for d or until stop closes or ctx is
// cancelled, whichever comes first.
func sleepInterruptible(ctx context.Context, stop <-chan struct{}, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-stop:
	case <-ctx.Done():
	}
}

// statusLocked assembles the worker's BackendStatus; callers hold
// Service.mu.
func (w *worker) statusLocked() BackendStatus {
	return BackendStatus{
		Name:            w.dev.Name,
		Qubits:          w.dev.NumQubits(),
		Policy:          w.svc.cfg.Policy,
		Epsilon:         w.eps,
		Busy:            w.busy,
		JobsCompleted:   w.jobsDone,
		BatchesExecuted: w.batchesDone,
		Cache: CacheCounters{
			Hits:      w.cacheHits,
			Misses:    w.cacheMisses,
			Coalesced: w.cacheCoalesced,
		},
		Breaker: BreakerStatus{
			State:               w.brk.state,
			ConsecutiveFailures: w.brk.fails,
			Opens:               w.brk.opens,
		},
		SchedulerErrors: w.schedErrs,
		LastSchedError:  w.lastSchedErr,
		RecentBatches:   append([]cloudsim.BatchRecord(nil), w.trace...),
	}
}
