package service

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/cloudsim"
	"repro/internal/core"
	"repro/internal/quos"
	"repro/internal/sched"
)

// worker owns one backend device: it claims EPST batches from the
// shared queue, compiles and simulates them, and writes results back.
// Mutable fields (eps, busy, counters, trace) are guarded by
// Service.mu; comp, ctrl, and the seed counter are touched only by the
// worker's own goroutine, so each worker is deterministic and
// race-free without sharing any random state.
type worker struct {
	svc   *Service
	index int
	dev   *arch.Device
	comp  *core.Compiler
	ctrl  *quos.Controller // nil under PolicyStatic
	seed  int64            // per-worker deterministic seed counter

	eps         float64                // guarded by svc.mu
	busy        bool                   // guarded by svc.mu
	jobsDone    int64                  // guarded by svc.mu
	batchesDone int64                  // guarded by svc.mu
	trace       []cloudsim.BatchRecord // guarded by svc.mu
}

// newWorker wires a worker for the device.
func newWorker(s *Service, index int, dev *arch.Device) *worker {
	comp := core.NewCompiler(dev)
	comp.Attempts = s.cfg.Attempts
	comp.Workers = s.cfg.Workers
	w := &worker{
		svc:   s,
		index: index,
		dev:   dev,
		comp:  comp,
		seed:  s.cfg.Seed + int64(index)*1_000_003,
		eps:   s.cfg.Epsilon,
	}
	if s.cfg.Policy == PolicyAdaptive {
		qcfg := quos.DefaultConfig()
		qcfg.InitialEpsilon = s.cfg.Epsilon
		qcfg.Lookahead = s.cfg.Lookahead
		qcfg.MaxColocate = s.cfg.MaxColocate
		w.ctrl = quos.NewController(qcfg)
	}
	return w
}

// nextSeed returns a fresh deterministic simulation seed; only the
// worker goroutine calls it.
func (w *worker) nextSeed() int64 {
	w.seed++
	return w.seed
}

// run is the worker loop: claim a batch, execute it, repeat until the
// service drains (or is forced to stop).
func (w *worker) run() {
	defer w.svc.wg.Done()
	for {
		batch := w.claim()
		if batch == nil {
			return
		}
		w.execute(batch)
	}
}

// claim blocks until jobs that fit this device are queued, then
// selects the next EPST batch and removes it from the queue. It
// returns nil when the worker should exit: the service is draining and
// holds nothing this device can run, or a forced stop was requested.
func (w *worker) claim() []*job {
	s := w.svc
	s.mu.Lock()
	defer s.mu.Unlock()
	var cands []*job
	for {
		if s.forced {
			return nil
		}
		cands = cands[:0]
		for _, j := range s.queue {
			if j.rec.Qubits <= w.dev.NumQubits() {
				cands = append(cands, j)
			}
		}
		if len(cands) > 0 {
			break
		}
		if s.draining {
			return nil
		}
		s.cond.Wait()
	}

	// Scheduling happens under the service lock: the EPST pass over
	// Lookahead tiny programs is milliseconds, and holding the lock
	// keeps claim/requeue linearizable across workers.
	look := len(cands)
	if look > s.cfg.Lookahead {
		look = s.cfg.Lookahead
	}
	sjobs := make([]sched.Job, look)
	for i, j := range cands[:look] {
		sjobs[i] = j.item.SchedJob()
	}
	scfg := sched.Config{
		Epsilon:     w.eps,
		Lookahead:   s.cfg.Lookahead,
		MaxColocate: s.cfg.MaxColocate,
		Omega:       omegaFor(w.dev),
	}
	selected := map[int]bool{}
	if batches, err := sched.Schedule(w.dev, sjobs, scfg); err == nil && len(batches) > 0 {
		for _, id := range batches[0].JobIDs {
			selected[id] = true
		}
	} else {
		selected[cands[0].rec.Seq] = true
	}

	var batch []*job
	rest := s.queue[:0]
	for _, j := range s.queue {
		if selected[j.rec.Seq] {
			batch = append(batch, j)
		} else {
			rest = append(rest, j)
		}
	}
	s.queue = rest

	now := time.Now()
	seqs := make([]int, len(batch))
	for i, j := range batch {
		seqs[i] = j.rec.Seq
	}
	for _, j := range batch {
		j.rec.State = StateBatched
		j.rec.Backend = w.dev.Name
		j.rec.CoJobs = seqs
		j.rec.WaitSeconds = now.Sub(j.rec.SubmittedAt).Seconds()
		j.claimed = now
		s.metrics.QueueLatency.Observe(j.rec.WaitSeconds)
	}
	w.busy = true
	s.metrics.QueueDepth.Set(int64(len(s.queue)))
	s.metrics.InFlight.Add(int64(len(batch)))
	return batch
}

// requeueFront returns unexecuted jobs to the head of the queue (used
// when a co-located compilation falls back to running the head alone).
func (w *worker) requeueFront(tail []*job) {
	s := w.svc
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range tail {
		j.rec.State = StateQueued
		j.rec.Backend = ""
		j.rec.CoJobs = nil
	}
	s.queue = append(append([]*job(nil), tail...), s.queue...)
	s.metrics.QueueDepth.Set(int64(len(s.queue)))
	s.metrics.InFlight.Add(-int64(len(tail)))
	s.cond.Broadcast()
}

// execute compiles, simulates, and records one claimed batch.
func (w *worker) execute(batch []*job) {
	s := w.svc
	start := time.Now()
	progs := make([]*circuit.Circuit, len(batch))
	s.mu.Lock()
	for i, j := range batch {
		j.rec.State = StateCompiling
		progs[i] = j.item.Circ
	}
	s.mu.Unlock()

	strat := strategyFor(len(batch))
	res, err := w.comp.Compile(progs, strat)
	if err != nil && len(batch) > 1 {
		// Co-location failed after all: put the tail back and run the
		// head alone, as the offline cloudsim does.
		w.requeueFront(batch[1:])
		batch, progs = batch[:1], progs[:1]
		strat = core.Separate
		res, err = w.comp.Compile(progs, strat)
	}
	compiled := time.Now()
	if err != nil {
		w.fail(batch, fmt.Errorf("compile: %w", err))
		return
	}

	psts, err := w.comp.Simulate(res, s.cfg.Trials, w.nextSeed(), s.cfg.Noise)
	executed := time.Now()
	if err != nil {
		w.fail(batch, fmt.Errorf("execute: %w", err))
		return
	}
	avg := 0.0
	for _, p := range psts {
		avg += p
	}
	avg /= float64(len(psts))

	// Adaptive control: compare achieved fidelity to the
	// separate-execution estimate and let the controller move epsilon.
	var newEps float64
	adapted := false
	if w.ctrl != nil {
		if sepEst, estErr := quos.SeparateEstimate(w.comp, progs, s.cfg.Noise); estErr == nil {
			w.ctrl.Observe(len(progs) > 1, avg, sepEst)
			newEps = w.ctrl.Epsilon()
			adapted = true
		}
	}

	qubits := 0
	for _, p := range progs {
		qubits += p.NumQubits
	}
	seqs := make([]int, len(batch))
	for i, j := range batch {
		seqs[i] = j.rec.Seq
	}
	s.mu.Lock()
	for i, j := range batch {
		j.rec.State = StateDone
		j.rec.PST = psts[i]
		j.rec.ServiceSeconds = executed.Sub(j.claimed).Seconds()
	}
	if adapted {
		w.eps = newEps
	}
	w.busy = false
	w.jobsDone += int64(len(batch))
	w.batchesDone++
	w.trace = append(w.trace, cloudsim.BatchRecord{
		JobIDs:     seqs,
		Start:      start.Sub(s.start).Seconds(),
		Finish:     executed.Sub(s.start).Seconds(),
		Depth:      res.Depth,
		CNOTs:      res.CNOTs,
		Strategy:   strat,
		QubitsUsed: qubits,
	})
	if len(w.trace) > s.cfg.TraceDepth {
		w.trace = w.trace[len(w.trace)-s.cfg.TraceDepth:]
	}
	s.mu.Unlock()

	m := s.metrics
	m.BatchesExecuted.Inc()
	m.BatchSize.Observe(float64(len(batch)))
	if len(batch) > 1 {
		m.ColocatedBatches.Inc()
		m.ColocatedJobs.Add(int64(len(batch)))
	}
	m.CompileLatency.Observe(compiled.Sub(start).Seconds())
	m.ExecLatency.Observe(executed.Sub(compiled).Seconds())
	m.InFlight.Add(-int64(len(batch)))
	for i, j := range batch {
		m.JobsCompleted.Inc()
		m.TotalLatency.Observe(executed.Sub(j.rec.SubmittedAt).Seconds())
		m.PST.Observe(psts[i])
	}
}

// fail marks every job in the batch failed.
func (w *worker) fail(batch []*job, err error) {
	s := w.svc
	now := time.Now()
	s.mu.Lock()
	for _, j := range batch {
		j.rec.State = StateFailed
		j.rec.Error = err.Error()
		j.rec.ServiceSeconds = now.Sub(j.claimed).Seconds()
	}
	w.busy = false
	w.batchesDone++
	s.mu.Unlock()
	s.metrics.BatchesExecuted.Inc()
	s.metrics.BatchSize.Observe(float64(len(batch)))
	s.metrics.InFlight.Add(-int64(len(batch)))
	for _, j := range batch {
		s.metrics.JobsFailed.Inc()
		s.metrics.TotalLatency.Observe(now.Sub(j.rec.SubmittedAt).Seconds())
	}
}

// statusLocked assembles the worker's BackendStatus; callers hold
// Service.mu.
func (w *worker) statusLocked() BackendStatus {
	return BackendStatus{
		Name:            w.dev.Name,
		Qubits:          w.dev.NumQubits(),
		Policy:          w.svc.cfg.Policy,
		Epsilon:         w.eps,
		Busy:            w.busy,
		JobsCompleted:   w.jobsDone,
		BatchesExecuted: w.batchesDone,
		RecentBatches:   append([]cloudsim.BatchRecord(nil), w.trace...),
	}
}
