package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/nisqbench"
)

// testConfig keeps the workers fast: one compile attempt and a small
// Monte-Carlo budget per batch.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Trials = 32
	cfg.Attempts = 1
	cfg.Lookahead = 4
	cfg.Seed = 7
	return cfg
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	devices := []*arch.Device{arch.London(), arch.IBMQ16(0)}
	svc, err := New(devices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func benchQASM(t *testing.T, name string) string {
	t.Helper()
	return circuit.QASMString(nisqbench.MustGet(name))
}

func submit(t *testing.T, url, name, qasm string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(SubmitRequest{Name: name, QASM: qasm})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode
}

// waitTerminal polls the job until it leaves the live states.
func waitTerminal(t *testing.T, url, id string, deadline time.Duration) JobRecord {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		var rec JobRecord
		if code := getJSON(t, url+"/v1/jobs/"+id, &rec); code != http.StatusOK {
			t.Fatalf("poll %s: HTTP %d", id, code)
		}
		if rec.State.Terminal() {
			return rec
		}
		if time.Now().After(stop) {
			t.Fatalf("job %s still %s after %s", id, rec.State, deadline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSubmitPollAndMetrics(t *testing.T) {
	svc := newTestService(t, testConfig())
	svc.Start()
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, body := submit(t, ts.URL, "bv", benchQASM(t, "bv_n3"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var rec JobRecord
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != StateQueued || rec.ID == "" {
		t.Fatalf("unexpected accept record: %+v", rec)
	}

	final := waitTerminal(t, ts.URL, rec.ID, 60*time.Second)
	if final.State != StateDone {
		t.Fatalf("job failed: %+v", final)
	}
	if final.PST <= 0 {
		t.Fatalf("expected non-zero PST, got %v", final.PST)
	}
	if final.Backend == "" {
		t.Fatalf("terminal job missing backend: %+v", final)
	}

	var snap MetricsSnapshot
	if code := getJSON(t, ts.URL+"/metrics", &snap); code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	if snap.Jobs.Accepted != 1 || snap.Jobs.Completed != 1 {
		t.Fatalf("metrics missed the job: %+v", snap.Jobs)
	}
	if snap.PST.Count != 1 || snap.PST.Mean <= 0 {
		t.Fatalf("PST histogram not updated: %+v", snap.PST)
	}

	var health healthResponse
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: %d %+v", code, health)
	}
	var backends []BackendStatus
	if code := getJSON(t, ts.URL+"/v1/backends", &backends); code != http.StatusOK || len(backends) != 2 {
		t.Fatalf("backends: %d %+v", code, backends)
	}
}

func TestRejectOnFullQueue(t *testing.T) {
	cfg := testConfig()
	cfg.QueueSize = 2
	svc := newTestService(t, cfg)
	// Workers intentionally not started: the queue cannot drain, so
	// the third submission must hit backpressure deterministically.
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	qasm := benchQASM(t, "bv_n3")
	for i := 0; i < 2; i++ {
		resp, body := submit(t, ts.URL, "bv", qasm)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, body := submit(t, ts.URL, "bv", qasm)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expected 429, got %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	var snap MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &snap)
	if snap.Jobs.Rejected != 1 || snap.Queue.Depth != 2 {
		t.Fatalf("backpressure not reflected in metrics: %+v %+v", snap.Jobs, snap.Queue)
	}
}

func TestSubmitValidation(t *testing.T) {
	svc := newTestService(t, testConfig())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: expected 400, got %d", resp.StatusCode)
	}
	// Unparseable QASM.
	if resp, body := submit(t, ts.URL, "x", "not qasm at all"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad qasm: expected 400, got %d: %s", resp.StatusCode, body)
	}
	// Program larger than every backend (IBMQ16 is the biggest).
	big := circuit.QASMString(nisqbench.GHZ(30))
	if resp, body := submit(t, ts.URL, "ghz30", big); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized: expected 400, got %d: %s", resp.StatusCode, body)
	}
	// Unknown job id.
	r, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("expected 404, got %d", r.StatusCode)
	}
}

// TestConcurrentJobsAcrossBackends is the acceptance scenario: 24 jobs
// submitted concurrently over HTTP to a 2-backend daemon must all
// reach "done" with non-zero PST, and /metrics must reflect the
// completed counts.
func TestConcurrentJobsAcrossBackends(t *testing.T) {
	cfg := testConfig()
	cfg.QueueSize = 64
	svc := newTestService(t, cfg)
	svc.Start()
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	names := []string{"bv_n3", "bv_n4", "peres_3", "toffoli_3", "fredkin_3", "3_17_13"}
	qasms := make([]string, len(names))
	for i, n := range names {
		qasms[i] = benchQASM(t, n)
	}

	const n = 24
	ids := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := submit(t, ts.URL, names[i%len(names)], qasms[i%len(qasms)])
			if resp.StatusCode != http.StatusAccepted {
				errs[i] = fmt.Errorf("job %d: HTTP %d: %s", i, resp.StatusCode, body)
				return
			}
			var rec JobRecord
			if err := json.Unmarshal(body, &rec); err != nil {
				errs[i] = err
				return
			}
			ids[i] = rec.ID
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	backendsUsed := map[string]bool{}
	for _, id := range ids {
		rec := waitTerminal(t, ts.URL, id, 120*time.Second)
		if rec.State != StateDone {
			t.Fatalf("job %s not done: %+v", id, rec)
		}
		if rec.PST <= 0 {
			t.Fatalf("job %s reported zero PST: %+v", id, rec)
		}
		backendsUsed[rec.Backend] = true
	}

	var snap MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &snap)
	if snap.Jobs.Accepted != n || snap.Jobs.Completed != n || snap.Jobs.Failed != 0 {
		t.Fatalf("metrics do not reflect the %d completed jobs: %+v", n, snap.Jobs)
	}
	if snap.Batches.Executed == 0 || snap.Batches.Executed > n {
		t.Fatalf("implausible batch count: %+v", snap.Batches)
	}
	if snap.PST.Count != n {
		t.Fatalf("PST histogram saw %d jobs, want %d", snap.PST.Count, n)
	}
	t.Logf("served %d jobs in %d batches (avg %.2f, colocation %.0f%%) on backends %v",
		n, snap.Batches.Executed, snap.Batches.AvgSize, snap.Batches.ColocationRate*100, backendsUsed)
}

// TestGracefulShutdownDrains submits a burst and immediately shuts
// down: the drain must finish every queued and in-flight batch.
func TestGracefulShutdownDrains(t *testing.T) {
	svc := newTestService(t, testConfig())
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	qasm := benchQASM(t, "bv_n3")
	var ids []string
	for i := 0; i < 6; i++ {
		resp, body := submit(t, ts.URL, "bv", qasm)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
		var rec JobRecord
		if err := json.Unmarshal(body, &rec); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	for _, id := range ids {
		rec, ok := svc.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if rec.State != StateDone {
			t.Fatalf("job %s not drained to done: %+v", id, rec)
		}
	}
	// Submissions after shutdown are refused.
	if _, err := svc.Submit(nisqbench.MustGet("bv_n3")); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("expected ErrShuttingDown, got %v", err)
	}
	resp, body := submit(t, ts.URL, "bv", qasm)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expected 503 after shutdown, got %d: %s", resp.StatusCode, body)
	}
}

// TestForcedShutdown cancels the drain context up front: workers stop
// after their current batch and the leftovers are failed, never stuck.
func TestForcedShutdown(t *testing.T) {
	cfg := testConfig()
	svc := newTestService(t, cfg)
	svc.Start()

	for i := 0; i < 8; i++ {
		if _, err := svc.Submit(nisqbench.MustGet("bv_n4")); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := svc.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	for _, rec := range svc.Jobs() {
		if !rec.State.Terminal() {
			t.Fatalf("job left non-terminal after forced shutdown: %+v", rec)
		}
	}
}

func TestAdaptivePolicyAdjustsEpsilon(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = PolicyAdaptive
	svc := newTestService(t, cfg)
	svc.Start()

	for i := 0; i < 6; i++ {
		if _, err := svc.Submit(nisqbench.MustGet("bv_n3")); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for _, rec := range svc.Jobs() {
		if rec.State != StateDone {
			t.Fatalf("adaptive run left job %+v", rec)
		}
	}
	// The controller must have kept epsilon inside its bounds; if any
	// backend co-located a batch, epsilon moved off the initial value.
	moved := false
	for _, b := range svc.Backends() {
		if b.Epsilon <= 0 || b.Epsilon > 0.5 {
			t.Fatalf("epsilon out of bounds: %+v", b)
		}
		if b.Epsilon != cfg.Epsilon {
			moved = true
		}
	}
	var colocated int64
	for _, b := range svc.Backends() {
		for _, r := range b.RecentBatches {
			if len(r.JobIDs) > 1 {
				colocated++
			}
		}
	}
	if colocated > 0 && !moved {
		t.Fatalf("co-located batches executed but no backend adapted epsilon")
	}
}

// TestCacheServesRepeatSubmissions drives the cloud-queue replay
// pattern the cache exists for: the same benchmark circuit submitted
// twice compiles once — the registry, the /v1/backends counters, and
// the /metrics cache section must all agree on one miss and one hit.
func TestCacheServesRepeatSubmissions(t *testing.T) {
	svc, err := New([]*arch.Device{arch.London()}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp, body := submit(t, ts.URL, "bv", benchQASM(t, "bv_n3"))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
		var rec JobRecord
		if err := json.Unmarshal(body, &rec); err != nil {
			t.Fatal(err)
		}
		if got := waitTerminal(t, ts.URL, rec.ID, 60*time.Second); got.State != StateDone {
			t.Fatalf("job %d: %+v", i, got)
		}
	}

	m := svc.Metrics()
	if m.CacheMisses.Value() != 1 || m.CacheHits.Value() != 1 {
		t.Fatalf("registry: hits=%d misses=%d, want 1/1", m.CacheHits.Value(), m.CacheMisses.Value())
	}
	if got := m.CacheLookup.Snapshot().Count; got != 1 {
		t.Fatalf("CacheLookup observations = %d, want 1 (hits only)", got)
	}

	var backends []BackendStatus
	if code := getJSON(t, ts.URL+"/v1/backends", &backends); code != http.StatusOK {
		t.Fatalf("backends: HTTP %d", code)
	}
	if c := backends[0].Cache; c.Hits != 1 || c.Misses != 1 || c.Coalesced != 0 {
		t.Fatalf("backend cache counters: %+v, want hits=1 misses=1", c)
	}

	var snap MetricsSnapshot
	if code := getJSON(t, ts.URL+"/metrics", &snap); code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 1 || snap.Cache.HitRate != 0.5 {
		t.Fatalf("/metrics cache section: %+v", snap.Cache)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestCacheDisabled: a negative CacheSize turns caching off entirely —
// every compile is a bypass and no counter ever moves.
func TestCacheDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.CacheSize = -1
	svc, err := New([]*arch.Device{arch.London()}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if svc.cache != nil {
		t.Fatal("negative CacheSize should leave the cache nil")
	}
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp, body := submit(t, ts.URL, "bv", benchQASM(t, "bv_n3"))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
		var rec JobRecord
		if err := json.Unmarshal(body, &rec); err != nil {
			t.Fatal(err)
		}
		if got := waitTerminal(t, ts.URL, rec.ID, 60*time.Second); got.State != StateDone {
			t.Fatalf("job %d: %+v", i, got)
		}
	}
	m := svc.Metrics()
	if m.CacheHits.Value() != 0 || m.CacheMisses.Value() != 0 || m.CacheCoalesced.Value() != 0 {
		t.Fatalf("disabled cache moved counters: hits=%d misses=%d coalesced=%d",
			m.CacheHits.Value(), m.CacheMisses.Value(), m.CacheCoalesced.Value())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
