package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/nisqbench"
)

// tenantConfig is a three-tenant key table: alice holds a 3x fair
// share, bob 1x, and carol is disabled (revoked key).
func tenantConfig() Config {
	cfg := testConfig()
	cfg.Tenants = []Tenant{
		{ID: "alice", Key: "key-alice", Weight: 3},
		{ID: "bob", Key: "key-bob", Weight: 1},
		{ID: "carol", Key: "key-carol", Weight: 1, Disabled: true},
	}
	return cfg
}

// authedDo issues one request with a bearer key (empty key sends no
// Authorization header) and returns the response with its body read.
func authedDo(t *testing.T, method, url, key string, body []byte, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func submitBody(t *testing.T, name, qasm, idemKey string) []byte {
	t.Helper()
	b, err := json.Marshal(SubmitRequest{Name: name, QASM: qasm, IdempotencyKey: idemKey})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTenantAuth covers the bearer-key middleware: 401 without or with
// an unknown key, 403 for a revoked tenant, job ownership scoping on
// reads, and the operator bypass for /metrics and /healthz.
func TestTenantAuth(t *testing.T) {
	svc := newTestService(t, tenantConfig())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	qasm := benchQASM(t, "bv_n3")

	// Missing and malformed credentials are 401 with a challenge.
	for _, key := range []string{"", "no-such-key"} {
		resp, _ := authedDo(t, http.MethodPost, ts.URL+"/v1/jobs", key, submitBody(t, "bv", qasm, ""), nil)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("key %q: expected 401, got %d", key, resp.StatusCode)
		}
		if resp.Header.Get("WWW-Authenticate") == "" {
			t.Fatalf("key %q: 401 missing WWW-Authenticate challenge", key)
		}
	}
	// A disabled tenant's valid key is 403, not 401: the identity is
	// recognized but revoked.
	if resp, _ := authedDo(t, http.MethodPost, ts.URL+"/v1/jobs", "key-carol", submitBody(t, "bv", qasm, ""), nil); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("disabled tenant: expected 403, got %d", resp.StatusCode)
	}

	// A valid key submits, and the record carries the tenant.
	resp, body := authedDo(t, http.MethodPost, ts.URL+"/v1/jobs", "key-alice", submitBody(t, "bv", qasm, ""), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("alice submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var rec JobRecord
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Tenant != "alice" {
		t.Fatalf("job not attributed to alice: %+v", rec)
	}

	// Reads are scoped to the owning tenant.
	if resp, _ := authedDo(t, http.MethodGet, ts.URL+"/v1/jobs/"+rec.ID, "key-bob", nil, nil); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("cross-tenant job read: expected 403, got %d", resp.StatusCode)
	}
	if resp, _ := authedDo(t, http.MethodGet, ts.URL+"/v1/jobs/"+rec.ID, "key-alice", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("owner job read: expected 200, got %d", resp.StatusCode)
	}
	_, listBody := authedDo(t, http.MethodGet, ts.URL+"/v1/jobs", "key-bob", nil, nil)
	var bobJobs []JobRecord
	if err := json.Unmarshal(listBody, &bobJobs); err != nil {
		t.Fatal(err)
	}
	if len(bobJobs) != 0 {
		t.Fatalf("bob sees alice's jobs: %+v", bobJobs)
	}

	// Operators scrape /metrics and /healthz without keys.
	for _, path := range []string{"/metrics", "/healthz"} {
		if resp, _ := authedDo(t, http.MethodGet, ts.URL+path, "", nil, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s without auth: expected 200, got %d", path, resp.StatusCode)
		}
	}
	// The tenancy section of /metrics reports the configured tenants.
	_, metricsBody := authedDo(t, http.MethodGet, ts.URL+"/metrics", "", nil, nil)
	var snap MetricsSnapshot
	if err := json.Unmarshal(metricsBody, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Tenancy == nil || !snap.Tenancy.AuthRequired || len(snap.Tenancy.Tenants) != 3 {
		t.Fatalf("tenancy section missing or wrong: %+v", snap.Tenancy)
	}
}

// TestTenantQuota: admission control caps each tenant at its weighted
// share of the queue, so a saturating tenant gets per-tenant 429s while
// the others' shares stay available.
func TestTenantQuota(t *testing.T) {
	cfg := tenantConfig()
	cfg.QueueSize = 10
	// Weights 3+1+1: alice's derived cap is 10*3/5 = 6, bob's 10*1/5 = 2.
	svc := newTestService(t, cfg) // workers not started: nothing drains
	circ := nisqbench.MustGet("bv_n3")

	for i := 0; i < 6; i++ {
		if _, _, err := svc.SubmitJob(circ, SubmitOptions{Tenant: "alice"}); err != nil {
			t.Fatalf("alice submit %d: %v", i, err)
		}
	}
	if _, _, err := svc.SubmitJob(circ, SubmitOptions{Tenant: "alice"}); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("alice over quota: expected ErrTenantQuota, got %v", err)
	}
	// Alice's saturation must not consume bob's share.
	for i := 0; i < 2; i++ {
		if _, _, err := svc.SubmitJob(circ, SubmitOptions{Tenant: "bob"}); err != nil {
			t.Fatalf("bob submit %d under alice saturation: %v", i, err)
		}
	}
	if _, _, err := svc.SubmitJob(circ, SubmitOptions{Tenant: "bob"}); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("bob over quota: expected ErrTenantQuota, got %v", err)
	}
	if _, _, err := svc.SubmitJob(circ, SubmitOptions{Tenant: "nobody"}); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("expected ErrUnknownTenant, got %v", err)
	}
	if _, _, err := svc.SubmitJob(circ, SubmitOptions{Tenant: "carol"}); !errors.Is(err, ErrTenantDisabled) {
		t.Fatalf("expected ErrTenantDisabled, got %v", err)
	}

	for _, tm := range svc.TenantStats() {
		switch tm.ID {
		case "alice":
			if tm.Queued != 6 || tm.Rejected != 1 || tm.MaxQueued != 6 {
				t.Fatalf("alice stats: %+v", tm)
			}
		case "bob":
			if tm.Queued != 2 || tm.Rejected != 1 || tm.MaxQueued != 2 {
				t.Fatalf("bob stats: %+v", tm)
			}
		}
	}
}

// queueTenants snapshots the tenant ID of every queued job in claim
// order.
func queueTenants(svc *Service) []string {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	out := make([]string, len(svc.queue))
	for i, j := range svc.queue {
		out[i] = j.rec.Tenant
	}
	return out
}

// TestWFQOrdering: with both tenants backlogged, claim order follows
// the virtual finish tags — a weight-3 tenant gets three claim slots
// per weight-1 slot — and a light tenant arriving behind a saturating
// one jumps ahead of the backlog instead of waiting it out.
func TestWFQOrdering(t *testing.T) {
	cfg := tenantConfig()
	for i := range cfg.Tenants {
		cfg.Tenants[i].MaxQueued = 100 // isolate ordering from admission caps
	}
	svc := newTestService(t, cfg) // workers not started: the queue is inspectable
	circ := nisqbench.MustGet("bv_n3")

	// Interleaved backlog: 6 alice (weight 3) and 2 bob (weight 1) jobs.
	for i := 0; i < 6; i++ {
		if _, _, err := svc.SubmitJob(circ, SubmitOptions{Tenant: "alice"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, _, err := svc.SubmitJob(circ, SubmitOptions{Tenant: "bob"}); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"alice", "alice", "alice", "bob", "alice", "alice", "alice", "bob"}
	got := queueTenants(svc)
	if len(got) != len(want) {
		t.Fatalf("queue length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("claim order %v, want %v (diverges at %d)", got, want, i)
		}
	}
}

// TestWFQLightTenantJumpsBacklog: a saturating tenant fills the queue
// first; a light tenant's first jobs still sort ahead of most of the
// backlog because its virtual finish tags start at the current virtual
// time, not behind the saturator's accumulated tags.
func TestWFQLightTenantJumpsBacklog(t *testing.T) {
	cfg := tenantConfig()
	for i := range cfg.Tenants {
		cfg.Tenants[i].MaxQueued = 100
	}
	svc := newTestService(t, cfg)
	circ := nisqbench.MustGet("bv_n3")

	for i := 0; i < 12; i++ {
		if _, _, err := svc.SubmitJob(circ, SubmitOptions{Tenant: "bob"}); err != nil {
			t.Fatal(err)
		}
	}
	// Alice (weight 3) arrives after bob's backlog of 12.
	for i := 0; i < 2; i++ {
		if _, _, err := svc.SubmitJob(circ, SubmitOptions{Tenant: "alice"}); err != nil {
			t.Fatal(err)
		}
	}
	got := queueTenants(svc)
	// Alice's tags are 1/3 and 2/3; bob's first is 1. Alice's late
	// arrivals claim the first two slots.
	if got[0] != "alice" || got[1] != "alice" {
		t.Fatalf("light tenant stuck behind the backlog: head of queue is %v", got[:4])
	}
}

// TestIdempotentResubmission: a retried submission with the same
// Idempotency-Key and content returns the original job (200), even
// when the queue is full; the same key with different content is a 409.
func TestIdempotentResubmission(t *testing.T) {
	cfg := testConfig()
	cfg.QueueSize = 1
	svc := newTestService(t, cfg) // open mode, workers not started
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	qasm := benchQASM(t, "bv_n3")

	resp, body := authedDo(t, http.MethodPost, ts.URL+"/v1/jobs", "", submitBody(t, "bv", qasm, ""), map[string]string{"Idempotency-Key": "retry-1"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var first JobRecord
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}

	// The queue (size 1) is now full; an unkeyed submission bounces...
	if resp, _ := authedDo(t, http.MethodPost, ts.URL+"/v1/jobs", "", submitBody(t, "bv", qasm, ""), nil); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("unkeyed submit on full queue: expected 429, got %d", resp.StatusCode)
	}
	// ...but the keyed retry collapses onto the admitted job: 200 with
	// the same record, no admission check.
	resp, body = authedDo(t, http.MethodPost, ts.URL+"/v1/jobs", "", submitBody(t, "bv", qasm, ""), map[string]string{"Idempotency-Key": "retry-1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("idempotent retry: expected 200, got %d: %s", resp.StatusCode, body)
	}
	var dup JobRecord
	if err := json.Unmarshal(body, &dup); err != nil {
		t.Fatal(err)
	}
	if dup.ID != first.ID {
		t.Fatalf("retry created a new job: %s vs %s", dup.ID, first.ID)
	}
	if got := svc.Metrics().IdempotentHits.Value(); got != 1 {
		t.Fatalf("IdempotentHits = %d, want 1", got)
	}

	// Same key, different program: the key is being misused — 409.
	resp, body = authedDo(t, http.MethodPost, ts.URL+"/v1/jobs", "", submitBody(t, "bv4", benchQASM(t, "bv_n4"), ""), map[string]string{"Idempotency-Key": "retry-1"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting reuse: expected 409, got %d: %s", resp.StatusCode, body)
	}
}

// TestIdempotencyScopedPerTenant: two tenants may use the same
// idempotency key without colliding.
func TestIdempotencyScopedPerTenant(t *testing.T) {
	svc := newTestService(t, tenantConfig())
	circ := nisqbench.MustGet("bv_n3")

	recA, dupA, err := svc.SubmitJob(circ, SubmitOptions{Tenant: "alice", IdempotencyKey: "shared"})
	if err != nil || dupA {
		t.Fatalf("alice: %+v %v %v", recA, dupA, err)
	}
	recB, dupB, err := svc.SubmitJob(circ, SubmitOptions{Tenant: "bob", IdempotencyKey: "shared"})
	if err != nil || dupB {
		t.Fatalf("bob's key collided with alice's: %+v %v %v", recB, dupB, err)
	}
	if recA.ID == recB.ID {
		t.Fatalf("tenants shared a job: %s", recA.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
