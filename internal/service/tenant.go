package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"

	"repro/internal/ccache"
	"repro/internal/circuit"
)

// This file is the multi-tenant front end: static API-key
// authentication, weighted-fair queueing across tenants, and
// per-tenant admission control.
//
// Fairness is start-time fair queueing over a single shared queue:
// every admitted job gets a virtual start/finish tag
//
//	vstart  = max(service vtime, tenant's last vfinish)
//	vfinish = vstart + 1/weight
//
// and the queue is kept sorted by (vfinish, seq). Workers claim jobs
// in queue order, so a tenant with weight w receives a w-proportional
// share of claim slots whenever it is backlogged, while an idle
// tenant's unused share is redistributed (its next job restarts at the
// current virtual time instead of accumulating credit). Admission
// control caps each tenant's queued jobs at its weighted share of
// QueueSize (or an explicit MaxQueued), so one saturating tenant gets
// 429s while everyone else's share stays available.

// Tenant is one API tenant: a static bearer key mapped to an identity
// with a fair-queueing weight and an admission cap. The set is loaded
// from Config.Tenants (qucloudd reads a JSON array from -tenants).
type Tenant struct {
	// ID is the tenant's stable identity, recorded on every job.
	ID string `json:"id"`
	// Key is the static API key presented as "Authorization: Bearer".
	Key string `json:"key"`
	// Weight is the WFQ share (relative to the other tenants); <= 0
	// defaults to 1.
	Weight float64 `json:"weight,omitempty"`
	// MaxQueued caps this tenant's queued (not yet claimed) jobs; 0
	// derives the cap from the tenant's weighted share of QueueSize.
	MaxQueued int `json:"max_queued,omitempty"`
	// Disabled rejects the tenant's requests with 403 without removing
	// its key (key revocation that keeps the identity auditable).
	Disabled bool `json:"disabled,omitempty"`
}

// LoadTenants reads a JSON array of Tenant from path (the qucloudd
// -tenants file format).
func LoadTenants(path string) ([]Tenant, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	var ts []Tenant
	if err := json.Unmarshal(data, &ts); err != nil {
		return nil, fmt.Errorf("tenants: parsing %s: %w", path, err)
	}
	return ts, nil
}

// Multi-tenant submission errors.
var (
	// ErrTenantQuota rejects a submission because the tenant's queued
	// share is exhausted (HTTP 429); other tenants may still submit.
	ErrTenantQuota = errors.New("service: tenant queue share full")
	// ErrUnknownTenant rejects a submission naming a tenant the service
	// was not configured with.
	ErrUnknownTenant = errors.New("service: unknown tenant")
	// ErrTenantDisabled rejects a disabled tenant (HTTP 403).
	ErrTenantDisabled = errors.New("service: tenant disabled")
	// ErrIdemConflict rejects a reused idempotency key whose request
	// content differs from the original submission (HTTP 409).
	ErrIdemConflict = errors.New("service: idempotency key reused with different content")
)

// idemEntry binds an idempotency key to the job it created and the
// content fingerprint it was created with.
type idemEntry struct {
	jobID       string
	fingerprint string
}

// tenantState is one tenant's runtime accounting.
type tenantState struct {
	cfg       Tenant
	weight    float64 // normalized (>0); immutable
	maxQueued int     // resolved admission cap; immutable

	vfinish   float64              // guarded by Service.mu; virtual finish tag of the last admitted job
	queued    int                  // guarded by Service.mu; jobs currently in the queue
	submitted int64                // guarded by Service.mu
	completed int64                // guarded by Service.mu
	failed    int64                // guarded by Service.mu
	rejected  int64                // guarded by Service.mu; quota + backpressure rejections
	idem      map[string]idemEntry // guarded by Service.mu
}

// buildTenants validates cfg.Tenants and resolves the runtime states.
// With no tenants configured the service runs in open (single-tenant)
// mode: an implicit "default" tenant owns every job and no
// authentication is required.
func buildTenants(cfg Config) (byID map[string]*tenantState, byKey map[string]*tenantState, ordered []*tenantState, err error) {
	tenants := cfg.Tenants
	open := len(tenants) == 0
	if open {
		tenants = []Tenant{{ID: DefaultTenantID, Weight: 1}}
	}
	total := 0.0
	for i := range tenants {
		if tenants[i].Weight <= 0 {
			tenants[i].Weight = 1
		}
		total += tenants[i].Weight
	}
	byID = make(map[string]*tenantState, len(tenants))
	byKey = make(map[string]*tenantState, len(tenants))
	for _, t := range tenants {
		if t.ID == "" {
			return nil, nil, nil, fmt.Errorf("service: tenant with empty id")
		}
		if byID[t.ID] != nil {
			return nil, nil, nil, fmt.Errorf("service: duplicate tenant id %q", t.ID)
		}
		if !open && t.Key == "" {
			return nil, nil, nil, fmt.Errorf("service: tenant %q has no key", t.ID)
		}
		if t.Key != "" && byKey[t.Key] != nil {
			return nil, nil, nil, fmt.Errorf("service: tenants %q and %q share a key", byKey[t.Key].cfg.ID, t.ID)
		}
		cap := t.MaxQueued
		if cap <= 0 {
			// Weighted share of the global queue, at least 1 so a tiny
			// weight can still submit.
			cap = int(float64(cfg.QueueSize) * t.Weight / total)
			if cap < 1 {
				cap = 1
			}
		}
		st := &tenantState{
			cfg:       t,
			weight:    t.Weight,
			maxQueued: cap,
			idem:      map[string]idemEntry{},
		}
		byID[t.ID] = st
		if t.Key != "" {
			byKey[t.Key] = st
		}
		ordered = append(ordered, st)
	}
	sort.Slice(ordered, func(i, k int) bool { return ordered[i].cfg.ID < ordered[k].cfg.ID })
	return byID, byKey, ordered, nil
}

// DefaultTenantID owns every job when no tenants are configured (open
// mode).
const DefaultTenantID = "default"

// tenantLocked resolves a tenant ID for submission; empty selects the
// default tenant in open mode. Callers hold s.mu.
func (s *Service) tenantLocked(id string) (*tenantState, error) {
	if id == "" {
		if s.authRequired {
			return nil, fmt.Errorf("%w: submission without a tenant", ErrUnknownTenant)
		}
		id = DefaultTenantID
	}
	t, ok := s.tenants[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, id)
	}
	if t.cfg.Disabled {
		return nil, fmt.Errorf("%w: %q", ErrTenantDisabled, id)
	}
	return t, nil
}

// tagLocked assigns the WFQ virtual start/finish tags for one job of
// tenant t. Callers hold s.mu.
func (s *Service) tagLocked(t *tenantState, j *job) {
	start := s.vtime
	if t.vfinish > start {
		start = t.vfinish
	}
	t.vfinish = start + 1/t.weight
	j.vstart, j.vfinish = start, t.vfinish
}

// enqueueLocked inserts the job into the shared queue, keeping it
// sorted by (vfinish, seq), and charges the tenant's queued share.
// Callers hold s.mu.
func (s *Service) enqueueLocked(j *job) {
	i := sort.Search(len(s.queue), func(i int) bool {
		q := s.queue[i]
		if q.vfinish > j.vfinish {
			return true
		}
		if q.vfinish < j.vfinish {
			return false
		}
		return q.rec.Seq > j.rec.Seq
	})
	s.queue = append(s.queue, nil)
	copy(s.queue[i+1:], s.queue[i:])
	s.queue[i] = j
	j.tenant.queued++
	s.metrics.QueueDepth.Set(int64(len(s.queue)))
}

// dequeuedLocked settles accounting for a job that left the queue (by
// claim, failure, or drain). Callers hold s.mu.
func (s *Service) dequeuedLocked(j *job) {
	j.tenant.queued--
}

// contentFingerprint is the idempotency identity of a submission: the
// ccache content fingerprint of the program alone (no device, no
// calibration, no knobs — a retried request must collapse onto its
// original job regardless of where that job was routed).
func contentFingerprint(circ *circuit.Circuit) string {
	return ccache.Key{Programs: []*circuit.Circuit{circ}}.Fingerprint()
}

// TenantMetrics is one tenant's row in the /metrics tenancy section
// (and the per-tenant loadgen fairness inputs).
type TenantMetrics struct {
	ID        string  `json:"id"`
	Weight    float64 `json:"weight"`
	MaxQueued int     `json:"max_queued"`
	Queued    int     `json:"queued"`
	Submitted int64   `json:"submitted"`
	Completed int64   `json:"completed"`
	Failed    int64   `json:"failed"`
	Rejected  int64   `json:"rejected"`
}

// TenantStats reports every tenant's accounting, ordered by ID.
func (s *Service) TenantStats() []TenantMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantMetrics, len(s.tenantList))
	for i, t := range s.tenantList {
		out[i] = TenantMetrics{
			ID:        t.cfg.ID,
			Weight:    t.weight,
			MaxQueued: t.maxQueued,
			Queued:    t.queued,
			Submitted: t.submitted,
			Completed: t.completed,
			Failed:    t.failed,
			Rejected:  t.rejected,
		}
	}
	return out
}
