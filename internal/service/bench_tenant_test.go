package service

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/nisqbench"
)

// BenchmarkTenantLoadgen is the multi-tenant fairness run benchjson
// records in BENCH_service.json: four tenants with 4:2:1:1 weights
// drive independent Poisson submission streams (100k jobs total per
// iteration) into one WFQ-scheduled service. Each tenant's demand is
// proportional to its weight, so under fair weighted service all four
// streams stay backlogged and finish together; the Jain index is taken
// over the weight-normalized completions x_i = completed_i/weight_i at
// the moment the last stream finishes submitting — mid-contention, not
// after the drain, where any scheduler would eventually reach 1.0.
// Reported metrics: "jain" (1.0 = perfectly weight-proportional
// service), "p99_total_s" (end-to-end p99 latency), and "jobs/s".
//
// The streams are open-loop Poisson until admission pushes back: a
// tenant at its cap backs off briefly and re-offers the same job, so a
// saturating tenant keeps sustained pressure on its share without
// starving the others — exactly the contention WFQ arbitrates.
func BenchmarkTenantLoadgen(b *testing.B) {
	const (
		tenantCount  = 4
		baseJobs     = 12_500 // per weight unit; weights sum to 8 → 100k jobs
		meanGap      = 2 * time.Microsecond
		retryBackoff = 50 * time.Microsecond
	)
	weights := []float64{4, 2, 1, 1}
	circ := nisqbench.MustGet("bv_n3")

	var totalJobs int
	var elapsed time.Duration
	var jain, p99 float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := DefaultConfig()
		cfg.Trials = 4
		cfg.Attempts = 1
		cfg.Lookahead = 8
		cfg.Seed = 7
		cfg.QueueSize = 4096
		cfg.Tenants = make([]Tenant, tenantCount)
		for t := range cfg.Tenants {
			cfg.Tenants[t] = Tenant{
				ID:     "tenant-" + string(rune('a'+t)),
				Key:    "key-" + string(rune('a'+t)),
				Weight: weights[t],
			}
		}
		svc, err := New([]*arch.Device{arch.London(), arch.IBMQ16(0)}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		start := time.Now()
		svc.Start()

		var wg sync.WaitGroup
		errs := make([]error, tenantCount)
		for t := 0; t < tenantCount; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(1000*i + t)))
				opts := SubmitOptions{Tenant: cfg.Tenants[t].ID}
				demand := int(weights[t]) * baseJobs
				for submitted := 0; submitted < demand; {
					_, _, err := svc.SubmitJob(circ, opts)
					switch {
					case err == nil:
						submitted++
					case errors.Is(err, ErrTenantQuota), errors.Is(err, ErrQueueFull):
						time.Sleep(retryBackoff)
						continue
					default:
						errs[t] = err
						return
					}
					if gap := time.Duration(rng.ExpFloat64() * float64(meanGap)); gap > 0 {
						time.Sleep(gap)
					}
				}
			}(t)
		}
		wg.Wait()
		// Mid-contention fairness snapshot: every stream has offered its
		// full weight-proportional demand; what each tenant has actually
		// completed by now reflects the claim shares WFQ granted. Unfair
		// service shows up as a depressed x_i for whoever was shorted.
		var sum, sq float64
		for _, tm := range svc.TenantStats() {
			x := float64(tm.Completed) / tm.Weight
			sum += x
			sq += x * x
		}
		if sq > 0 {
			jain = sum * sum / (tenantCount * sq)
		}
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
		if err := svc.Shutdown(context.Background()); err != nil {
			b.Fatal(err)
		}
		elapsed += time.Since(start)
		b.StopTimer()

		iterJobs := 0
		for _, tm := range svc.TenantStats() {
			demand := int64(tm.Weight) * baseJobs
			if tm.Completed+tm.Failed != demand {
				b.Fatalf("tenant %s finished %d/%d jobs (%d failed)",
					tm.ID, tm.Completed+tm.Failed, demand, tm.Failed)
			}
			iterJobs += int(demand)
		}
		p99 = svc.Metrics().TotalLatency.Snapshot().P99
		totalJobs += iterJobs
		b.StartTimer()
	}
	b.StopTimer()
	if secs := elapsed.Seconds(); secs > 0 {
		b.ReportMetric(float64(totalJobs)/secs, "jobs/s")
	}
	b.ReportMetric(jain, "jain")
	b.ReportMetric(p99, "p99_total_s")
}
