package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/circuit"
)

// maxQASMBytes bounds a submission body; larger requests get 413.
const maxQASMBytes = 1 << 20

// jobsPageDefault and jobsPageMax bound GET /v1/jobs responses: the
// endpoint pages with ?limit= / ?after= instead of returning the whole
// store (which MaxJobHistory lets grow to thousands of records).
const (
	jobsPageDefault = 256
	jobsPageMax     = 2048
)

// SubmitRequest is the POST /v1/jobs body. QASM holds the OpenQASM 2.0
// source parsed by internal/circuit; Name optionally overrides the
// circuit's display name. IdempotencyKey duplicates the
// Idempotency-Key header for clients that prefer body fields (the
// header wins when both are set).
type SubmitRequest struct {
	Name           string `json:"name,omitempty"`
	QASM           string `json:"qasm"`
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// healthResponse is the GET /healthz body.
type healthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Backends      int     `json:"backends"`
}

// tenantCtxKey carries the authenticated tenant's ID in the request
// context.
type tenantCtxKey struct{}

// tenantID returns the tenant the middleware authenticated, or "".
func tenantID(r *http.Request) string {
	id, _ := r.Context().Value(tenantCtxKey{}).(string)
	return id
}

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs             submit a QASM program (202; 200 on an
//	                          idempotent duplicate; 400, 409, 413, 429, 503)
//	GET  /v1/jobs             list job records (?limit= / ?after=<job-id>)
//	GET  /v1/jobs/{id}        one job record (404 when unknown)
//	GET  /v1/jobs/{id}/events job lifecycle stream (Server-Sent Events)
//	GET  /v1/backends         per-backend worker status
//	GET  /v1/fleet            fleet-dispatcher view
//	GET  /metrics             MetricsSnapshot JSON
//	GET  /healthz             liveness probe
//
// With Config.Tenants set, every /v1 route requires a tenant API key
// ("Authorization: Bearer <key>"): missing or unknown keys get 401,
// disabled tenants 403, and job visibility is scoped to the owning
// tenant. /metrics and /healthz stay open for operators.
//
// When Config.RequestTimeout is positive every request except the SSE
// stream is additionally bounded by http.TimeoutHandler (a lifecycle
// stream legitimately outlives the timeout).
func (s *Service) Handler() http.Handler {
	api := http.NewServeMux()
	api.HandleFunc("POST /v1/jobs", s.handleSubmit)
	api.HandleFunc("GET /v1/jobs", s.handleJobs)
	api.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	api.HandleFunc("GET /v1/backends", s.handleBackends)
	api.HandleFunc("GET /v1/fleet", s.handleFleet)
	api.HandleFunc("GET /metrics", s.handleMetrics)
	api.HandleFunc("GET /healthz", s.handleHealth)
	var h http.Handler = api
	if s.cfg.RequestTimeout > 0 {
		h = jsonTimeoutHandler(h, s.cfg.RequestTimeout)
	}
	root := http.NewServeMux()
	root.Handle("/", h)
	// The SSE route sits outside the timeout wrapper: TimeoutHandler's
	// ResponseWriter cannot flush, and a stream may outlive the timeout.
	root.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	return s.requireTenant(root)
}

// jsonTimeoutHandler bounds h with http.TimeoutHandler while keeping
// the timeout response on-contract: TimeoutHandler writes its body to
// the original ResponseWriter, whose pre-set headers survive, so
// setting Content-Type up front makes the 503 JSON instead of
// content-sniffed text/plain. Handlers that answer in time overwrite
// the header from their own header map as usual.
func jsonTimeoutHandler(h http.Handler, timeout time.Duration) http.Handler {
	th := http.TimeoutHandler(h, timeout, `{"error":"request timed out"}`)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		th.ServeHTTP(w, r)
	})
}

// requireTenant authenticates every /v1 request against the tenant
// key table and stores the tenant ID in the request context. In open
// mode (no tenants configured) it only tags requests with the default
// tenant. /metrics and /healthz bypass auth: operators scrape them.
func (s *Service) requireTenant(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.authRequired {
			next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, DefaultTenantID)))
			return
		}
		if r.URL.Path == "/metrics" || r.URL.Path == "/healthz" {
			next.ServeHTTP(w, r)
			return
		}
		auth := r.Header.Get("Authorization")
		key, ok := strings.CutPrefix(auth, "Bearer ")
		if !ok || key == "" {
			w.Header().Set("WWW-Authenticate", `Bearer realm="qucloudd"`)
			writeError(w, http.StatusUnauthorized, "missing or malformed Authorization bearer token")
			return
		}
		t, ok := s.tenantsByKey[key]
		if !ok {
			w.Header().Set("WWW-Authenticate", `Bearer realm="qucloudd"`)
			writeError(w, http.StatusUnauthorized, "unknown API key")
			return
		}
		if t.cfg.Disabled {
			writeError(w, http.StatusForbidden, "tenant is disabled")
			return
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, t.cfg.ID)))
	})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxQASMBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		// MaxBytesReader surfaces through the JSON decoder; an oversized
		// body is the client's payload problem (413), not a syntax error.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the "+strconv.FormatInt(tooBig.Limit, 10)+"-byte submission limit")
			return
		}
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if strings.TrimSpace(req.QASM) == "" {
		writeError(w, http.StatusBadRequest, "missing qasm field")
		return
	}
	name := req.Name
	if name == "" {
		name = "job"
	}
	circ, err := circuit.ParseQASMString(name, req.QASM)
	if err != nil {
		writeError(w, http.StatusBadRequest, "qasm parse error: "+err.Error())
		return
	}
	idem := r.Header.Get("Idempotency-Key")
	if idem == "" {
		idem = req.IdempotencyKey
	}
	rec, duplicate, err := s.SubmitJob(circ, SubmitOptions{Tenant: tenantID(r), IdempotencyKey: idem})
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantQuota):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrIdemConflict):
		writeError(w, http.StatusConflict, err.Error())
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, ErrTenantDisabled):
		writeError(w, http.StatusForbidden, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if duplicate {
		// The idempotency key matched an existing job: report it rather
		// than a new admission.
		writeJSON(w, http.StatusOK, rec)
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

// parseAfter resolves the ?after= cursor: a job ID as returned by the
// API ("job-000123") or a bare sequence number. Returns -1 (start from
// the beginning) for an empty value, or an error flag for garbage.
func parseAfter(v string) (int, bool) {
	if v == "" {
		return -1, true
	}
	v = strings.TrimPrefix(v, "job-")
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := jobsPageDefault
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		limit = n
	}
	if limit > jobsPageMax {
		limit = jobsPageMax
	}
	after, ok := parseAfter(q.Get("after"))
	if !ok {
		writeError(w, http.StatusBadRequest, "after must be a job id or sequence number")
		return
	}
	scope := ""
	if s.authRequired {
		scope = tenantID(r)
	}
	writeJSON(w, http.StatusOK, s.JobsPage(scope, after, limit))
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if s.authRequired && rec.Tenant != tenantID(r) {
		writeError(w, http.StatusForbidden, "job belongs to another tenant")
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Service) handleBackends(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Backends())
}

func (s *Service) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Fleet())
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status:        "ok",
		UptimeSeconds: s.Uptime().Seconds(),
		Backends:      len(s.workers),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
