package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"repro/internal/circuit"
)

// maxQASMBytes bounds a submission body; larger requests get 400.
const maxQASMBytes = 1 << 20

// SubmitRequest is the POST /v1/jobs body. QASM holds the OpenQASM 2.0
// source parsed by internal/circuit; Name optionally overrides the
// circuit's display name.
type SubmitRequest struct {
	Name string `json:"name,omitempty"`
	QASM string `json:"qasm"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// healthResponse is the GET /healthz body.
type healthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Backends      int     `json:"backends"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs      submit a QASM program (202, 400, 429, 503)
//	GET  /v1/jobs      list all job records
//	GET  /v1/jobs/{id} one job record (404 when unknown)
//	GET  /v1/backends  per-backend worker status
//	GET  /v1/fleet     fleet-dispatcher view (policy, per-chip load, decisions)
//	GET  /metrics      MetricsSnapshot JSON
//	GET  /healthz      liveness probe
//
// When Config.RequestTimeout is positive every request is additionally
// bounded by http.TimeoutHandler.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/backends", s.handleBackends)
	mux.HandleFunc("GET /v1/fleet", s.handleFleet)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	var h http.Handler = mux
	if s.cfg.RequestTimeout > 0 {
		h = http.TimeoutHandler(h, s.cfg.RequestTimeout, `{"error":"request timed out"}`)
	}
	return h
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxQASMBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if strings.TrimSpace(req.QASM) == "" {
		writeError(w, http.StatusBadRequest, "missing qasm field")
		return
	}
	name := req.Name
	if name == "" {
		name = "job"
	}
	circ, err := circuit.ParseQASMString(name, req.QASM)
	if err != nil {
		writeError(w, http.StatusBadRequest, "qasm parse error: "+err.Error())
		return
	}
	rec, err := s.Submit(circ)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Service) handleBackends(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Backends())
}

func (s *Service) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Fleet())
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status:        "ok",
		UptimeSeconds: s.Uptime().Seconds(),
		Backends:      len(s.workers),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
