package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/nisqbench"
)

// TestSSEEventOrdering: the lifecycle stream delivers every state
// transition exactly once, with per-job sequence numbers 1..n in order,
// ending on the terminal event.
func TestSSEEventOrdering(t *testing.T) {
	svc := newTestService(t, testConfig())
	svc.Start()
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	rec, err := svc.Submit(nisqbench.MustGet("bv_n3"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + rec.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events stream: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}

	// The server closes the stream after the terminal event, so reading
	// to EOF collects the complete history.
	var events []JobEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var ev JobEvent
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("bad event payload %q: %v", data, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if len(events) < 2 {
		t.Fatalf("expected a full lifecycle, got %+v", events)
	}
	for i, ev := range events {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d (history %+v)", i, ev.Seq, events)
		}
		if ev.JobID != rec.ID {
			t.Fatalf("event for wrong job: %+v", ev)
		}
	}
	if events[0].State != StateQueued {
		t.Fatalf("first event %+v, want queued", events[0])
	}
	last := events[len(events)-1]
	if !last.State.Terminal() {
		t.Fatalf("stream ended on non-terminal event %+v", last)
	}
	if last.State == StateDone && last.PST <= 0 {
		t.Fatalf("terminal done event missing PST: %+v", last)
	}
	for _, ev := range events[:len(events)-1] {
		if ev.State.Terminal() {
			t.Fatalf("terminal state before the last event: %+v", events)
		}
	}
}

// TestShutdownNeverStartedReleasesContext is the regression test for
// the leaked run context: Shutdown on a service whose workers never
// started must still cancel the run context (and close the WAL), not
// just mark the jobs failed.
func TestShutdownNeverStartedReleasesContext(t *testing.T) {
	cfg := testConfig()
	cfg.DataDir = t.TempDir()
	svc := newWALService(t, cfg)
	rec, err := svc.Submit(nisqbench.MustGet("bv_n3"))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if svc.runCtx.Err() == nil {
		t.Fatal("run context still live after Shutdown on a never-started service")
	}
	got, ok := svc.Job(rec.ID)
	if !ok || got.State != StateFailed {
		t.Fatalf("queued job not failed by shutdown: %+v (found %v)", got, ok)
	}
	if svc.wlog != nil {
		t.Fatal("WAL left open after Shutdown")
	}
}

// TestOversizedSubmission413 is the regression test for oversized
// bodies: MaxBytesReader trips inside the JSON decoder and must
// surface as 413, not a generic 400.
func TestOversizedSubmission413(t *testing.T) {
	svc := newTestService(t, testConfig())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	big, err := json.Marshal(SubmitRequest{Name: "big", QASM: strings.Repeat("x", maxQASMBytes+1)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: expected 413, got %d", resp.StatusCode)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "submission limit") {
		t.Fatalf("413 body does not explain the limit: %+v", e)
	}
}

// TestWaitObservedOncePerJob is the regression test for double-counted
// queue latency: a job that is claimed, requeued (co-location
// fallback), and claimed again must observe QueueLatency exactly once,
// while WaitSeconds accumulates both queue passes.
func TestWaitObservedOncePerJob(t *testing.T) {
	svc := newTestService(t, testConfig()) // workers constructed but not started
	rec, err := svc.Submit(nisqbench.MustGet("bv_n3"))
	if err != nil {
		t.Fatal(err)
	}
	svc.mu.Lock()
	j := svc.jobs[rec.ID]
	w := svc.workers[j.assigned]
	svc.mu.Unlock()

	// First claim: the job leaves the queue and its wait is observed.
	batch := w.claim(context.Background())
	if len(batch) != 1 || batch[0] != j {
		t.Fatalf("claim returned %d jobs", len(batch))
	}
	waitAfterFirst := j.rec.WaitSeconds
	if got := svc.Metrics().QueueLatency.Snapshot().Count; got != 1 {
		t.Fatalf("QueueLatency count after first claim = %d, want 1", got)
	}

	// Requeue (the co-location fallback path) and claim again.
	w.requeueFront(batch)
	time.Sleep(10 * time.Millisecond)
	batch = w.claim(context.Background())
	if len(batch) != 1 {
		t.Fatalf("second claim returned %d jobs", len(batch))
	}
	if j.rec.WaitSeconds <= waitAfterFirst {
		t.Fatalf("WaitSeconds did not accumulate the second queue pass: %v -> %v",
			waitAfterFirst, j.rec.WaitSeconds)
	}
	if got := svc.Metrics().QueueLatency.Snapshot().Count; got != 1 {
		t.Fatalf("QueueLatency observed %d times, want exactly 1", got)
	}
}

// TestTimeoutResponseIsJSON is the regression test for the timeout
// envelope: a request that outlives RequestTimeout must get the JSON
// error contract, not http.TimeoutHandler's content-sniffed text/html.
func TestTimeoutResponseIsJSON(t *testing.T) {
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	})
	ts := httptest.NewServer(jsonTimeoutHandler(slow, 20*time.Millisecond))
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request: expected 503, got %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("timeout Content-Type = %q, want application/json", ct)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("timeout body is not the JSON error envelope: %v", err)
	}
	if e.Error == "" {
		t.Fatal("timeout envelope has no error message")
	}

	// Handlers that answer in time keep their own headers: the pre-set
	// Content-Type must not leak into non-timeout responses.
	fast := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		w.Write([]byte("ok"))
	})
	ts2 := httptest.NewServer(jsonTimeoutHandler(fast, time.Second))
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "text/plain" {
		t.Fatalf("fast-path Content-Type = %q, want the handler's text/plain", ct)
	}
}

// TestJobsPaging is the regression test for the unbounded listing:
// GET /v1/jobs pages with ?limit= and ?after= and rejects garbage
// parameters.
func TestJobsPaging(t *testing.T) {
	cfg := testConfig()
	cfg.QueueSize = 16
	svc := newTestService(t, cfg) // not started: records stay queued and stable
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 5; i++ {
		rec, err := svc.Submit(nisqbench.MustGet("bv_n3"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}

	page := func(query string) []JobRecord {
		t.Helper()
		var recs []JobRecord
		if code := getJSON(t, ts.URL+"/v1/jobs"+query, &recs); code != http.StatusOK {
			t.Fatalf("GET /v1/jobs%s: HTTP %d", query, code)
		}
		return recs
	}
	if got := page(""); len(got) != 5 {
		t.Fatalf("unpaged listing returned %d records, want 5", len(got))
	}
	firstPage := page("?limit=2")
	if len(firstPage) != 2 || firstPage[0].ID != ids[0] || firstPage[1].ID != ids[1] {
		t.Fatalf("first page wrong: %+v", firstPage)
	}
	// The cursor is the last ID of the previous page.
	secondPage := page("?limit=2&after=" + firstPage[1].ID)
	if len(secondPage) != 2 || secondPage[0].ID != ids[2] || secondPage[1].ID != ids[3] {
		t.Fatalf("second page wrong: %+v", secondPage)
	}
	if rest := page("?after=" + secondPage[1].ID); len(rest) != 1 || rest[0].ID != ids[4] {
		t.Fatalf("final page wrong: %+v", rest)
	}

	for _, q := range []string{"?limit=0", "?limit=banana", "?after=banana", "?after=-3"} {
		resp, err := http.Get(ts.URL + "/v1/jobs" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /v1/jobs%s: expected 400, got %d", q, resp.StatusCode)
		}
	}
}
