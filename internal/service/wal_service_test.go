package service

import (
	"context"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/faultinject"
	"repro/internal/nisqbench"
)

// newWALService builds a service on a WAL-backed data directory. The
// caller decides whether to Start it.
func newWALService(t *testing.T, cfg Config) *Service {
	t.Helper()
	svc, err := New([]*arch.Device{arch.London(), arch.IBMQ16(0)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestWALReplayAfterKill is the durability acceptance test: jobs queued
// on a WAL-backed service survive an abrupt process death (no Shutdown,
// no WAL close) and complete after the next daemon replays them.
func TestWALReplayAfterKill(t *testing.T) {
	cfg := testConfig()
	cfg.DataDir = t.TempDir()

	// First daemon: accept three jobs, then "die" without Shutdown. The
	// WAL file descriptor stays open — exactly what a SIGKILL leaves
	// behind (appends are unbuffered writes, so the log is on disk).
	first := newWALService(t, cfg)
	var ids []string
	for _, name := range []string{"bv_n3", "bv_n4", "peres_3"} {
		rec, err := first.Submit(nisqbench.MustGet(name))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}

	// Second daemon on the same data dir: every queued job must come
	// back with its identity intact.
	second := newWALService(t, cfg)
	recovered := second.Jobs()
	if len(recovered) != len(ids) {
		t.Fatalf("replayed %d jobs, want %d: %+v", len(recovered), len(ids), recovered)
	}
	byID := map[string]JobRecord{}
	for _, rec := range recovered {
		byID[rec.ID] = rec
	}
	for _, id := range ids {
		rec, ok := byID[id]
		if !ok {
			t.Fatalf("job %s lost across restart", id)
		}
		if rec.State != StateQueued {
			t.Fatalf("replayed job %s in state %s, want queued", id, rec.State)
		}
	}
	if got := second.Metrics().WALReplayedJobs.Value(); got != int64(len(ids)) {
		t.Fatalf("WALReplayedJobs = %d, want %d", got, len(ids))
	}

	// The replayed jobs are runnable, not just visible: start and drain.
	second.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := second.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		rec, ok := second.Job(id)
		if !ok || rec.State != StateDone {
			t.Fatalf("replayed job %s did not complete: %+v (found %v)", id, rec, ok)
		}
	}

	// Third daemon: the drained jobs replay as terminal history, not as
	// runnable work.
	third := newWALService(t, cfg)
	if depth := len(queueTenants(third)); depth != 0 {
		t.Fatalf("terminal jobs re-entered the queue: depth %d", depth)
	}
	for _, id := range ids {
		rec, ok := third.Job(id)
		if !ok || rec.State != StateDone {
			t.Fatalf("terminal record %s not replayed: %+v (found %v)", id, rec, ok)
		}
	}
	if err := third.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestWALAppendFaultKeepsServing: an injected append failure loses one
// record's durability but never rejects the submission (availability
// over durability), and the failure is counted.
func TestWALAppendFaultKeepsServing(t *testing.T) {
	cfg := testConfig()
	cfg.DataDir = t.TempDir()
	cfg.Faults = faultinject.New(1).FailVisits(faultinject.SiteWALAppend, 1, 1)
	svc := newWALService(t, cfg)

	recLost, err := svc.Submit(nisqbench.MustGet("bv_n3"))
	if err != nil {
		t.Fatalf("submit during append fault must still be accepted: %v", err)
	}
	recKept, err := svc.Submit(nisqbench.MustGet("bv_n4"))
	if err != nil {
		t.Fatal(err)
	}
	m := svc.Metrics()
	if m.WALAppendErrors.Value() != 1 || m.WALAppends.Value() != 1 {
		t.Fatalf("append accounting: errors=%d appends=%d, want 1/1",
			m.WALAppendErrors.Value(), m.WALAppends.Value())
	}

	// Only the durable job survives a restart — the faulted append was
	// a real durability loss, visible in the counter above.
	nextCfg := cfg
	nextCfg.Faults = nil
	next := newWALService(t, nextCfg)
	if _, ok := next.Job(recLost.ID); ok {
		t.Fatalf("job %s replayed despite its append having failed", recLost.ID)
	}
	if rec, ok := next.Job(recKept.ID); !ok || rec.State != StateQueued {
		t.Fatalf("durable job %s not replayed: %+v (found %v)", recKept.ID, rec, ok)
	}
}

// TestWALReplayFaultStartsEmpty: a fault during startup replay discards
// the recovered records (counted), but the service still comes up and
// keeps logging new work.
func TestWALReplayFaultStartsEmpty(t *testing.T) {
	cfg := testConfig()
	cfg.DataDir = t.TempDir()
	seed := newWALService(t, cfg)
	if _, err := seed.Submit(nisqbench.MustGet("bv_n3")); err != nil {
		t.Fatal(err)
	}

	cfg.Faults = faultinject.New(1).FailVisits(faultinject.SiteWALReplay, 1, 1)
	svc := newWALService(t, cfg)
	if jobs := svc.Jobs(); len(jobs) != 0 {
		t.Fatalf("replay fault should start empty, got %+v", jobs)
	}
	if got := svc.Metrics().WALReplayErrors.Value(); got != 1 {
		t.Fatalf("WALReplayErrors = %d, want 1", got)
	}
	// The log stays live: new submissions are accepted and appended.
	if _, err := svc.Submit(nisqbench.MustGet("bv_n4")); err != nil {
		t.Fatal(err)
	}
	if got := svc.Metrics().WALAppends.Value(); got != 1 {
		t.Fatalf("post-fault appends = %d, want 1", got)
	}
}

// TestWALReplaySkipsUnknownTenant: records from a tenant that no longer
// exists in the key table are dropped (and counted), not resurrected
// under someone else's identity.
func TestWALReplaySkipsUnknownTenant(t *testing.T) {
	cfg := tenantConfig()
	cfg.DataDir = t.TempDir()
	seed := newWALService(t, cfg)
	if _, _, err := seed.SubmitJob(nisqbench.MustGet("bv_n3"), SubmitOptions{Tenant: "alice"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := seed.SubmitJob(nisqbench.MustGet("bv_n4"), SubmitOptions{Tenant: "bob"}); err != nil {
		t.Fatal(err)
	}

	// Alice is offboarded before the restart.
	cfg.Tenants = cfg.Tenants[1:]
	svc := newWALService(t, cfg)
	jobs := svc.Jobs()
	if len(jobs) != 1 || jobs[0].Tenant != "bob" {
		t.Fatalf("expected only bob's job to replay, got %+v", jobs)
	}
	if got := svc.Metrics().WALReplaySkipped.Value(); got != 1 {
		t.Fatalf("WALReplaySkipped = %d, want 1", got)
	}
}
