package service

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/faultinject"
)

// newChaosService builds a single-backend service so fault-injection
// visit counters advance in a deterministic order (two workers racing
// for the same site counter would make "fail visit N" ambiguous).
func newChaosService(t *testing.T, cfg Config) *Service {
	t.Helper()
	svc, err := New([]*arch.Device{arch.London()}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// chaosConfig keeps retries/breaker/backoff fast enough for tests.
func chaosConfig() Config {
	cfg := testConfig()
	cfg.RetryBaseDelay = time.Millisecond
	cfg.RetryMaxDelay = 5 * time.Millisecond
	cfg.BreakerCooldown = 50 * time.Millisecond
	return cfg
}

// submitOK submits and fails the test on anything but 202.
func submitOK(t *testing.T, url string) JobRecord {
	t.Helper()
	resp, body := submit(t, url, "bv", benchQASM(t, "bv_n3"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var rec JobRecord
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	return rec
}

// shutdownClean drains the service and asserts the workers exit (the
// goroutine-leak check: Shutdown blocks on the worker WaitGroup, so a
// wedged worker turns into a test timeout here).
func shutdownClean(t *testing.T, svc *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("drained shutdown failed: %v", err)
	}
}

// TestChaosCompilerPanicIsolation injects a panic into the first batch
// compilation: only that batch's job may fail (with the recovered
// message), and the worker must keep serving the next job.
func TestChaosCompilerPanicIsolation(t *testing.T) {
	cfg := chaosConfig()
	cfg.Faults = faultinject.New(1).PanicVisits(faultinject.SiteCompile, 1, 1)
	svc := newChaosService(t, cfg)
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	victim := waitTerminal(t, ts.URL, submitOK(t, ts.URL).ID, 60*time.Second)
	if victim.State != StateFailed {
		t.Fatalf("expected panicked batch to fail, got %+v", victim)
	}
	if !strings.Contains(victim.Error, "compiler panic") || !strings.Contains(victim.Error, "injected panic") {
		t.Fatalf("failed job should carry the recovered panic message, got %q", victim.Error)
	}

	survivor := waitTerminal(t, ts.URL, submitOK(t, ts.URL).ID, 60*time.Second)
	if survivor.State != StateDone {
		t.Fatalf("worker did not survive the panic: %+v", survivor)
	}
	if got := svc.Metrics().PanicsRecovered.Value(); got < 1 {
		t.Fatalf("PanicsRecovered = %d, want >= 1", got)
	}
	shutdownClean(t, svc)
}

// TestChaosSimulatorTimeout injects latency beyond the batch deadline
// into the simulator: the batch must fail with a deadline error (and
// count as a timeout) while the next job runs normally.
func TestChaosSimulatorTimeout(t *testing.T) {
	cfg := chaosConfig()
	cfg.BatchTimeout = 100 * time.Millisecond
	cfg.Faults = faultinject.New(1).DelayVisits(faultinject.SiteSimulate, 1, 1, 10*time.Second)
	svc := newChaosService(t, cfg)
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	victim := waitTerminal(t, ts.URL, submitOK(t, ts.URL).ID, 60*time.Second)
	if victim.State != StateFailed {
		t.Fatalf("expected timed-out batch to fail, got %+v", victim)
	}
	if !strings.Contains(victim.Error, "deadline") {
		t.Fatalf("failed job should mention the deadline, got %q", victim.Error)
	}
	if got := svc.Metrics().BatchTimeouts.Value(); got != 1 {
		t.Fatalf("BatchTimeouts = %d, want 1", got)
	}

	survivor := waitTerminal(t, ts.URL, submitOK(t, ts.URL).ID, 60*time.Second)
	if survivor.State != StateDone {
		t.Fatalf("worker did not survive the timeout: %+v", survivor)
	}
	shutdownClean(t, svc)
}

// TestChaosErrorBurstTripsBreaker drives three consecutive permanent
// compile failures through a threshold-3 breaker: it must open (423
// visible in /v1/backends and the metrics gauge), then close again
// after the cooldown once a healthy probe batch succeeds.
func TestChaosErrorBurstTripsBreaker(t *testing.T) {
	cfg := chaosConfig()
	cfg.BreakerThreshold = 3
	cfg.MaxRetries = -1 // disable retries: each failure counts once
	cfg.Faults = faultinject.New(1).FailVisits(faultinject.SiteCompile, 1, 3)
	svc := newChaosService(t, cfg)
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		rec := waitTerminal(t, ts.URL, submitOK(t, ts.URL).ID, 60*time.Second)
		if rec.State != StateFailed || rec.Error == "" {
			t.Fatalf("burst job %d should fail with an error, got %+v", i, rec)
		}
	}
	var backends []BackendStatus
	if code := getJSON(t, ts.URL+"/v1/backends", &backends); code != http.StatusOK {
		t.Fatalf("backends: HTTP %d", code)
	}
	if backends[0].Breaker.State != breakerOpen {
		t.Fatalf("breaker should be open after 3 failures, got %+v", backends[0].Breaker)
	}
	if got := svc.Metrics().BreakerTrips.Value(); got != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", got)
	}
	if got := svc.Metrics().OpenBreakers.Value(); got != 1 {
		t.Fatalf("OpenBreakers = %d, want 1", got)
	}

	// The backend is healthy again (the burst window has passed): after
	// the cooldown the half-open probe batch must close the breaker.
	probe := waitTerminal(t, ts.URL, submitOK(t, ts.URL).ID, 60*time.Second)
	if probe.State != StateDone {
		t.Fatalf("probe batch should succeed, got %+v", probe)
	}
	if code := getJSON(t, ts.URL+"/v1/backends", &backends); code != http.StatusOK {
		t.Fatalf("backends: HTTP %d", code)
	}
	if backends[0].Breaker.State != breakerClosed || backends[0].Breaker.Opens != 1 {
		t.Fatalf("breaker should have closed after the probe, got %+v", backends[0].Breaker)
	}
	if got := svc.Metrics().OpenBreakers.Value(); got != 0 {
		t.Fatalf("OpenBreakers = %d after recovery, want 0", got)
	}
	shutdownClean(t, svc)
}

// TestChaosTransientRetrySucceeds injects two transient compile
// failures: the batch must succeed on the third attempt with exactly
// two recorded retries and no failed jobs.
func TestChaosTransientRetrySucceeds(t *testing.T) {
	cfg := chaosConfig()
	cfg.MaxRetries = 2
	cfg.Faults = faultinject.New(1).FailTransient(faultinject.SiteCompile, 1, 2)
	svc := newChaosService(t, cfg)
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	rec := waitTerminal(t, ts.URL, submitOK(t, ts.URL).ID, 60*time.Second)
	if rec.State != StateDone {
		t.Fatalf("job should succeed after transient retries, got %+v", rec)
	}
	if got := svc.Metrics().BatchRetries.Value(); got != 2 {
		t.Fatalf("BatchRetries = %d, want 2", got)
	}
	if got := svc.Metrics().JobsFailed.Value(); got != 0 {
		t.Fatalf("JobsFailed = %d, want 0", got)
	}
	shutdownClean(t, svc)
}

// TestChaosSchedulerPanicFailsHead injects a panic into batch claiming:
// the head job is failed (so the queue cannot livelock on it) and the
// worker loop keeps serving.
func TestChaosSchedulerPanicFailsHead(t *testing.T) {
	cfg := chaosConfig()
	cfg.Faults = faultinject.New(1).PanicVisits(faultinject.SiteSchedule, 1, 1)
	svc := newChaosService(t, cfg)
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	victim := waitTerminal(t, ts.URL, submitOK(t, ts.URL).ID, 60*time.Second)
	if victim.State != StateFailed || !strings.Contains(victim.Error, "claim panic") {
		t.Fatalf("head job should fail with the claim panic, got %+v", victim)
	}
	survivor := waitTerminal(t, ts.URL, submitOK(t, ts.URL).ID, 60*time.Second)
	if survivor.State != StateDone {
		t.Fatalf("worker did not survive the claim panic: %+v", survivor)
	}
	shutdownClean(t, svc)
}

// TestChaosSchedulerErrorFallback injects a scheduler error: the batch
// degrades to head-of-line (the job still executes) and the error is
// surfaced in the metrics and the backend status instead of being
// swallowed.
func TestChaosSchedulerErrorFallback(t *testing.T) {
	cfg := chaosConfig()
	cfg.Faults = faultinject.New(1).FailVisits(faultinject.SiteSchedule, 1, 1)
	svc := newChaosService(t, cfg)
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	rec := waitTerminal(t, ts.URL, submitOK(t, ts.URL).ID, 60*time.Second)
	if rec.State != StateDone {
		t.Fatalf("head-of-line fallback should still run the job, got %+v", rec)
	}
	if got := svc.Metrics().SchedulerErrors.Value(); got != 1 {
		t.Fatalf("SchedulerErrors = %d, want 1", got)
	}
	var backends []BackendStatus
	if code := getJSON(t, ts.URL+"/v1/backends", &backends); code != http.StatusOK {
		t.Fatalf("backends: HTTP %d", code)
	}
	if backends[0].SchedulerErrors != 1 || !strings.Contains(backends[0].LastSchedError, "injected failure") {
		t.Fatalf("scheduler error not surfaced in backend status: %+v", backends[0])
	}
	shutdownClean(t, svc)
}

// TestChaosCacheLookupPanicContained injects a panic into the first
// compile-cache lookup: only that batch fails (with the recovered
// message) and the worker keeps serving — a faulted cache can never
// unwind the worker loop. The follow-up job recompiles from scratch
// (the panicked call stored nothing) and succeeds.
func TestChaosCacheLookupPanicContained(t *testing.T) {
	cfg := chaosConfig()
	cfg.Faults = faultinject.New(1).PanicVisits(faultinject.SiteCacheLookup, 1, 1)
	svc := newChaosService(t, cfg)
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	victim := waitTerminal(t, ts.URL, submitOK(t, ts.URL).ID, 60*time.Second)
	if victim.State != StateFailed || !strings.Contains(victim.Error, "compiler panic") {
		t.Fatalf("cache-lookup panic should fail only its batch, got %+v", victim)
	}
	if got := svc.Metrics().PanicsRecovered.Value(); got < 1 {
		t.Fatalf("PanicsRecovered = %d, want >= 1", got)
	}

	survivor := waitTerminal(t, ts.URL, submitOK(t, ts.URL).ID, 60*time.Second)
	if survivor.State != StateDone {
		t.Fatalf("worker did not survive the cache panic: %+v", survivor)
	}
	shutdownClean(t, svc)
}

// TestChaosCacheLookupErrorBypasses injects an error into the first
// cache lookup: the cache steps aside (the compile runs uncached and is
// not stored) and the job still succeeds — a cache outage degrades to
// the uncached path, never to a failed job.
func TestChaosCacheLookupErrorBypasses(t *testing.T) {
	cfg := chaosConfig()
	cfg.Faults = faultinject.New(1).FailVisits(faultinject.SiteCacheLookup, 1, 1)
	svc := newChaosService(t, cfg)
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	first := waitTerminal(t, ts.URL, submitOK(t, ts.URL).ID, 60*time.Second)
	if first.State != StateDone {
		t.Fatalf("bypassed job should still succeed, got %+v", first)
	}
	m := svc.Metrics()
	if m.CacheHits.Value() != 0 || m.CacheMisses.Value() != 0 {
		t.Fatalf("bypass must not move cache counters: hits=%d misses=%d",
			m.CacheHits.Value(), m.CacheMisses.Value())
	}

	// The bypassed compile stored nothing, so the identical follow-up
	// is a genuine miss, and only the third request hits.
	second := waitTerminal(t, ts.URL, submitOK(t, ts.URL).ID, 60*time.Second)
	third := waitTerminal(t, ts.URL, submitOK(t, ts.URL).ID, 60*time.Second)
	if second.State != StateDone || third.State != StateDone {
		t.Fatalf("follow-up jobs: %+v / %+v", second, third)
	}
	if m.CacheMisses.Value() != 1 || m.CacheHits.Value() != 1 {
		t.Fatalf("after bypass+miss+hit: hits=%d misses=%d, want 1/1",
			m.CacheHits.Value(), m.CacheMisses.Value())
	}
	shutdownClean(t, svc)
}

// TestChaosCacheStoreErrorSkipsStore injects an error into the first
// cache store: the computed result still serves its own batch (the job
// succeeds) but is not retained, so the next identical batch misses
// again and only the one after that hits.
func TestChaosCacheStoreErrorSkipsStore(t *testing.T) {
	cfg := chaosConfig()
	cfg.Faults = faultinject.New(1).FailVisits(faultinject.SiteCacheStore, 1, 1)
	svc := newChaosService(t, cfg)
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		if rec := waitTerminal(t, ts.URL, submitOK(t, ts.URL).ID, 60*time.Second); rec.State != StateDone {
			t.Fatalf("job %d should succeed despite the store fault, got %+v", i, rec)
		}
	}
	m := svc.Metrics()
	if m.CacheMisses.Value() != 2 || m.CacheHits.Value() != 1 {
		t.Fatalf("store fault should cost one extra miss: hits=%d misses=%d, want 1/2",
			m.CacheHits.Value(), m.CacheMisses.Value())
	}
	shutdownClean(t, svc)
}

// TestChaosCacheStorePanicContained injects a panic into the first
// cache store: the worker recovers (the batch fails with the message,
// no waiter can hang on the in-flight entry) and the key stays
// retryable — the next identical batch compiles fresh and succeeds.
func TestChaosCacheStorePanicContained(t *testing.T) {
	cfg := chaosConfig()
	cfg.Faults = faultinject.New(1).PanicVisits(faultinject.SiteCacheStore, 1, 1)
	svc := newChaosService(t, cfg)
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	victim := waitTerminal(t, ts.URL, submitOK(t, ts.URL).ID, 60*time.Second)
	if victim.State != StateFailed || !strings.Contains(victim.Error, "compiler panic") {
		t.Fatalf("store panic should fail only its batch, got %+v", victim)
	}
	survivor := waitTerminal(t, ts.URL, submitOK(t, ts.URL).ID, 60*time.Second)
	if survivor.State != StateDone {
		t.Fatalf("worker did not survive the store panic: %+v", survivor)
	}
	if got := svc.Metrics().CacheHits.Value(); got != 0 {
		t.Fatalf("panicked store must not populate the cache: hits=%d", got)
	}
	shutdownClean(t, svc)
}

// TestChaosNaNLatencyObservation is the metrics-poisoning regression
// test: every latency reading is replaced with NaN via the observation
// hook, a job runs to completion, and /metrics must still serve valid
// JSON with every histogram field finite — the poisoned samples land in
// the dropped counters instead of sum/mean/min/max.
func TestChaosNaNLatencyObservation(t *testing.T) {
	cfg := chaosConfig()
	cfg.Faults = faultinject.New(1).ObserveVisits(faultinject.SiteLatency, 1, 0, math.NaN())
	svc := newChaosService(t, cfg)
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	if rec := waitTerminal(t, ts.URL, submitOK(t, ts.URL).ID, 60*time.Second); rec.State != StateDone {
		t.Fatalf("job should succeed, got %+v", rec)
	}

	// encoding/json refuses non-finite floats, so a poisoned histogram
	// would turn this decode into an HTTP-layer failure.
	var snap MetricsSnapshot
	if code := getJSON(t, ts.URL+"/metrics", &snap); code != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", code)
	}
	hists := map[string]HistogramSnapshot{
		"queue":   snap.LatencySeconds.Queue,
		"compile": snap.LatencySeconds.Compile,
		"execute": snap.LatencySeconds.Execute,
		"total":   snap.LatencySeconds.Total,
		"lookup":  snap.Cache.LookupSeconds,
	}
	dropped := int64(0)
	for name, h := range hists {
		for field, v := range map[string]float64{
			"sum": h.Sum, "mean": h.Mean, "min": h.Min, "max": h.Max,
			"p50": h.P50, "p90": h.P90, "p99": h.P99,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s.%s is non-finite: %v", name, field, v)
			}
		}
		if h.Count != 0 {
			t.Errorf("%s recorded %d NaN samples as observations", name, h.Count)
		}
		dropped += h.Dropped
	}
	if dropped == 0 {
		t.Fatal("no histogram reported dropped samples; the NaN hook did not engage")
	}
	shutdownClean(t, svc)
}
