package service

import (
	"expvar"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric, safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value, safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates float64 observations into fixed buckets. The
// bounds are upper-inclusive bucket edges; observations above the last
// bound land in an implicit overflow bucket.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // immutable after NewHistogram; read under mu with counts
	counts  []int64   // guarded by mu
	sum     float64   // guarded by mu
	count   int64     // guarded by mu
	min     float64   // guarded by mu
	max     float64   // guarded by mu
	dropped int64     // guarded by mu; non-finite samples rejected by Observe
}

// NewHistogram returns a histogram over the given ascending bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one sample. Non-finite samples (NaN, ±Inf) are
// dropped into a counter instead of being accumulated: one poisoned
// observation would otherwise corrupt sum/mean/min/max permanently and
// make the JSON /metrics encoding fail outright (encoding/json rejects
// non-finite floats).
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.dropped++
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
}

// HistogramSnapshot is a point-in-time summary of a Histogram. Dropped
// counts the non-finite samples Observe rejected (0 when healthy, so
// the field is omitted from JSON unless something fed the histogram
// NaN/Inf).
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     float64 `json:"sum"`
	Mean    float64 `json:"mean"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	P50     float64 `json:"p50"`
	P90     float64 `json:"p90"`
	P99     float64 `json:"p99"`
	Dropped int64   `json:"dropped,omitempty"`
}

// Snapshot summarizes the histogram. Quantiles are estimated from the
// bucket midpoints (the overflow bucket reports the observed max).
// Every float field is guaranteed finite: Observe drops non-finite
// samples, and sanitizeLocked backstops accumulator overflow, so a
// snapshot can always be JSON-encoded.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max, Dropped: h.dropped}
	if h.count == 0 {
		return s
	}
	s.Mean = h.sum / float64(h.count)
	s.P50 = h.quantileLocked(0.50)
	s.P90 = h.quantileLocked(0.90)
	s.P99 = h.quantileLocked(0.99)
	s.sanitize()
	return s
}

// sanitize zeroes any non-finite summary field. Observe keeps poison
// out, but sum can still overflow to +Inf from finite inputs; /metrics
// must stay encodable regardless.
func (s *HistogramSnapshot) sanitize() {
	for _, f := range []*float64{&s.Sum, &s.Mean, &s.Min, &s.Max, &s.P50, &s.P90, &s.P99} {
		if math.IsNaN(*f) || math.IsInf(*f, 0) {
			*f = 0
		}
	}
}

// quantileLocked estimates the q-quantile from the bucket counts. The
// returned midpoint is clamped into [h.min, h.max]: without the clamp a
// single observation reported the raw bucket midpoint (p50 of one
// sample must equal that sample), and a bucket whose lower edge sits
// below h.min leaked the stale edge into the estimate.
func (h *Histogram) quantileLocked(q float64) float64 {
	target := int64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen > target {
			if i >= len(h.bounds) {
				return h.max
			}
			lo := h.min
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if lo < h.min {
				lo = h.min
			}
			if hi > h.max {
				hi = h.max
			}
			if lo > hi {
				lo = hi
			}
			return (lo + hi) / 2
		}
	}
	return h.max
}

// Registry is the service's metric set: everything qucloudd exposes on
// /metrics (as JSON) and via expvar.
type Registry struct {
	start time.Time

	JobsAccepted  Counter
	JobsRejected  Counter
	JobsCompleted Counter
	JobsFailed    Counter
	// JobsEvicted counts terminal job records dropped by the
	// MaxJobHistory retention cap.
	JobsEvicted Counter

	BatchesExecuted Counter
	// ColocatedBatches counts batches with >1 program; ColocatedJobs
	// counts the jobs that ran in such batches (numerator of the
	// co-location rate).
	ColocatedBatches Counter
	ColocatedJobs    Counter

	QueueDepth Gauge
	InFlight   Gauge

	// Robustness counters: recovered worker panics, batch retries
	// after transient failures, batches failed by the per-batch
	// deadline, scheduler errors absorbed by head-of-line fallback,
	// co-location fallbacks (tail requeued, head run alone), and
	// circuit-breaker trips. OpenBreakers gauges how many backends are
	// currently tripped (open or half-open).
	PanicsRecovered Counter
	BatchRetries    Counter
	BatchTimeouts   Counter
	SchedulerErrors Counter
	FallbackBatches Counter
	BreakerTrips    Counter
	OpenBreakers    Gauge

	// Compile-cache counters: fingerprint hits and misses, entries
	// evicted by the LRU bound, and requests coalesced onto an
	// in-flight identical compile (singleflight dedup).
	CacheHits      Counter
	CacheMisses    Counter
	CacheEvictions Counter
	CacheCoalesced Counter

	// Fleet-dispatch counters: routing decisions made by the
	// internal/fleet dispatcher and jobs migrated off a backend whose
	// circuit breaker opened.
	Dispatches   Counter
	JobsMigrated Counter

	// Multi-tenant front-end counters: submissions rejected by a
	// tenant's admission quota (a subset of JobsRejected) and
	// submissions collapsed onto an existing job by their idempotency
	// key.
	TenantRejected Counter
	IdempotentHits Counter

	// Write-ahead-log counters: successful and failed appends, jobs
	// restored by startup replay, unparseable lines skipped during
	// replay, and whole replays abandoned (injected or real I/O
	// failure — the service then starts empty but keeps logging).
	WALAppends       Counter
	WALAppendErrors  Counter
	WALReplayedJobs  Counter
	WALReplaySkipped Counter
	WALReplayErrors  Counter

	// fleetSource supplies the per-device fleet section for Snapshot;
	// the service wires it in New (before any worker starts), so reads
	// are race-free. nil (registry used standalone in tests) omits the
	// section.
	fleetSource func() FleetSection
	// tenantSource supplies the tenancy section (auth mode + per-tenant
	// rows); wired in New like fleetSource. nil omits the section.
	tenantSource func() (authRequired bool, tenants []TenantMetrics)

	BatchSize      *Histogram
	QueueLatency   *Histogram // seconds from submit to batch claim
	CompileLatency *Histogram // seconds compiling a batch
	ExecLatency    *Histogram // seconds simulating ("executing") a batch
	TotalLatency   *Histogram // seconds from submit to terminal state
	PST            *Histogram // achieved per-job PST
	CacheLookup    *Histogram // seconds per served cache hit/coalesce
}

// NewRegistry returns a registry with the service's bucket layout.
func NewRegistry() *Registry {
	latency := []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 300}
	pst := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1}
	// Cache lookups are microseconds, not seconds: their buckets sit
	// three orders of magnitude below the batch-latency layout.
	lookup := []float64{1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 1e-2, 0.1}
	return &Registry{
		start:          time.Now(),
		BatchSize:      NewHistogram([]float64{1, 2, 3, 4, 6, 8}),
		QueueLatency:   NewHistogram(latency),
		CompileLatency: NewHistogram(latency),
		ExecLatency:    NewHistogram(latency),
		TotalLatency:   NewHistogram(latency),
		PST:            NewHistogram(pst),
		CacheLookup:    NewHistogram(lookup),
	}
}

// MetricsSnapshot is the JSON document served on /metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Jobs          struct {
		Accepted  int64 `json:"accepted"`
		Rejected  int64 `json:"rejected"`
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed"`
	} `json:"jobs"`
	Batches struct {
		Executed       int64   `json:"executed"`
		Colocated      int64   `json:"colocated"`
		ColocatedJobs  int64   `json:"colocated_jobs"`
		AvgSize        float64 `json:"avg_size"`
		ColocationRate float64 `json:"colocation_rate"`
		TRF            float64 `json:"trf"`
	} `json:"batches"`
	Queue struct {
		Depth    int64 `json:"depth"`
		InFlight int64 `json:"in_flight"`
	} `json:"queue"`
	Robustness struct {
		JobsEvicted     int64 `json:"jobs_evicted"`
		PanicsRecovered int64 `json:"panics_recovered"`
		BatchRetries    int64 `json:"batch_retries"`
		BatchTimeouts   int64 `json:"batch_timeouts"`
		SchedulerErrors int64 `json:"scheduler_errors"`
		FallbackBatches int64 `json:"fallback_batches"`
		BreakerTrips    int64 `json:"breaker_trips"`
		OpenBreakers    int64 `json:"open_breakers"`
	} `json:"robustness"`
	Cache struct {
		Hits          int64             `json:"hits"`
		Misses        int64             `json:"misses"`
		Evictions     int64             `json:"evictions"`
		Coalesced     int64             `json:"coalesced"`
		HitRate       float64           `json:"hit_rate"`
		LookupSeconds HistogramSnapshot `json:"lookup_seconds"`
	} `json:"cache"`
	LatencySeconds struct {
		Queue   HistogramSnapshot `json:"queue"`
		Compile HistogramSnapshot `json:"compile"`
		Execute HistogramSnapshot `json:"execute"`
		Total   HistogramSnapshot `json:"total"`
	} `json:"latency_seconds"`
	BatchSize HistogramSnapshot `json:"batch_size"`
	PST       HistogramSnapshot `json:"pst"`
	Fleet     *FleetSection     `json:"fleet,omitempty"`
	Tenancy   *TenancySection   `json:"tenancy,omitempty"`
	WAL       struct {
		Appends       int64 `json:"appends"`
		AppendErrors  int64 `json:"append_errors"`
		ReplayedJobs  int64 `json:"replayed_jobs"`
		ReplaySkipped int64 `json:"replay_skipped"`
		ReplayErrors  int64 `json:"replay_errors"`
	} `json:"wal"`
}

// TenancySection is the /metrics view of the multi-tenant front end:
// whether bearer auth is enforced, the front-end-wide counters, and
// one row per tenant (ordered by ID).
type TenancySection struct {
	AuthRequired   bool            `json:"auth_required"`
	QuotaRejected  int64           `json:"quota_rejected"`
	IdempotentHits int64           `json:"idempotent_hits"`
	Tenants        []TenantMetrics `json:"tenants"`
}

// FleetSection is the /metrics view of the fleet dispatcher: the
// active policy, fleet-wide routing counters, and one row per device.
type FleetSection struct {
	Policy       string               `json:"policy"`
	Dispatches   int64                `json:"dispatches"`
	JobsMigrated int64                `json:"jobs_migrated"`
	Devices      []FleetDeviceMetrics `json:"devices"`
}

// FleetDeviceMetrics is one backend's dispatch counters in the
// /metrics fleet section.
type FleetDeviceMetrics struct {
	Name       string `json:"name"`
	Dispatched int64  `json:"dispatched"`
	Migrated   int64  `json:"migrated"`
	QueueDepth int    `json:"queue_depth"`
	Breaker    string `json:"breaker"`
}

// Snapshot assembles the current metric values.
func (r *Registry) Snapshot() MetricsSnapshot {
	var s MetricsSnapshot
	s.UptimeSeconds = time.Since(r.start).Seconds()
	s.Jobs.Accepted = r.JobsAccepted.Value()
	s.Jobs.Rejected = r.JobsRejected.Value()
	s.Jobs.Completed = r.JobsCompleted.Value()
	s.Jobs.Failed = r.JobsFailed.Value()
	s.Batches.Executed = r.BatchesExecuted.Value()
	s.Batches.Colocated = r.ColocatedBatches.Value()
	s.Batches.ColocatedJobs = r.ColocatedJobs.Value()
	s.BatchSize = r.BatchSize.Snapshot()
	if s.Batches.Executed > 0 {
		done := s.Jobs.Completed + s.Jobs.Failed
		s.Batches.AvgSize = float64(done) / float64(s.Batches.Executed)
		s.Batches.TRF = float64(done) / float64(s.Batches.Executed)
	}
	if done := s.Jobs.Completed + s.Jobs.Failed; done > 0 {
		s.Batches.ColocationRate = float64(s.Batches.ColocatedJobs) / float64(done)
	}
	s.Queue.Depth = r.QueueDepth.Value()
	s.Queue.InFlight = r.InFlight.Value()
	s.Robustness.JobsEvicted = r.JobsEvicted.Value()
	s.Robustness.PanicsRecovered = r.PanicsRecovered.Value()
	s.Robustness.BatchRetries = r.BatchRetries.Value()
	s.Robustness.BatchTimeouts = r.BatchTimeouts.Value()
	s.Robustness.SchedulerErrors = r.SchedulerErrors.Value()
	s.Robustness.FallbackBatches = r.FallbackBatches.Value()
	s.Robustness.BreakerTrips = r.BreakerTrips.Value()
	s.Robustness.OpenBreakers = r.OpenBreakers.Value()
	s.Cache.Hits = r.CacheHits.Value()
	s.Cache.Misses = r.CacheMisses.Value()
	s.Cache.Evictions = r.CacheEvictions.Value()
	s.Cache.Coalesced = r.CacheCoalesced.Value()
	if total := s.Cache.Hits + s.Cache.Misses + s.Cache.Coalesced; total > 0 {
		s.Cache.HitRate = float64(s.Cache.Hits+s.Cache.Coalesced) / float64(total)
	}
	s.Cache.LookupSeconds = r.CacheLookup.Snapshot()
	s.LatencySeconds.Queue = r.QueueLatency.Snapshot()
	s.LatencySeconds.Compile = r.CompileLatency.Snapshot()
	s.LatencySeconds.Execute = r.ExecLatency.Snapshot()
	s.LatencySeconds.Total = r.TotalLatency.Snapshot()
	s.PST = r.PST.Snapshot()
	if r.fleetSource != nil {
		sec := r.fleetSource()
		s.Fleet = &sec
	}
	if r.tenantSource != nil {
		auth, tenants := r.tenantSource()
		s.Tenancy = &TenancySection{
			AuthRequired:   auth,
			QuotaRejected:  r.TenantRejected.Value(),
			IdempotentHits: r.IdempotentHits.Value(),
			Tenants:        tenants,
		}
	}
	s.WAL.Appends = r.WALAppends.Value()
	s.WAL.AppendErrors = r.WALAppendErrors.Value()
	s.WAL.ReplayedJobs = r.WALReplayedJobs.Value()
	s.WAL.ReplaySkipped = r.WALReplaySkipped.Value()
	s.WAL.ReplayErrors = r.WALReplayErrors.Value()
	return s
}

// expvar integration: expvar.Publish panics on duplicate names, so the
// package publishes a single "qucloudd" Func once and routes it through
// an atomically swappable current registry (tests create many
// registries; only the one passed to PublishExpvar is exported).
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// PublishExpvar exports this registry's snapshot under the expvar key
// "qucloudd" (alongside Go's default memstats/cmdline vars). Safe to
// call more than once; the most recent registry wins.
func (r *Registry) PublishExpvar() {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("qucloudd", expvar.Func(func() any {
			if reg := expvarReg.Load(); reg != nil {
				return reg.Snapshot()
			}
			return nil
		}))
	})
}
