// Package service implements qucloudd, the long-running QuCloud
// compilation service: an HTTP/JSON front end over a bounded in-memory
// job queue, dispatched across one goroutine worker per registered
// backend (internal/arch device). Every admitted job is routed to a
// specific chip by the fleet dispatcher (internal/fleet) under a
// pluggable allocation policy — speed, fidelity, fairness, or balanced
// — scored from per-chip calibration summaries, live queue depth, and
// smoothed service times. Each worker pulls batches of its own jobs
// with the EPST scheduler (internal/sched) — under a static epsilon or
// the internal/quos adaptive controller — compiles them through the
// QuCloud pipeline (internal/core), "executes" them on the noisy
// simulator (internal/sim), and records per-job results in an
// in-memory store with lifecycle states
// (queued → batched → compiling → done/failed). When a backend's
// circuit breaker opens, its still-queued jobs migrate back through
// the dispatcher onto healthy chips.
//
// The queue applies backpressure: when it is full, Submit returns
// ErrQueueFull and the HTTP layer answers 429. Shutdown drains the
// queue and finishes in-flight batches; cancel the drain context to
// force workers to stop after their current batch.
package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/ccache"
	"repro/internal/circuit"
	"repro/internal/cloudsim"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/sim"
	"repro/internal/wal"
)

// State is a job's lifecycle stage.
type State string

// The job lifecycle. Terminal states are StateDone and StateFailed.
const (
	StateQueued    State = "queued"
	StateBatched   State = "batched"
	StateCompiling State = "compiling"
	StateDone      State = "done"
	StateFailed    State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Policy selects how workers choose the co-location threshold.
type Policy string

// Batching policies.
const (
	// PolicyStatic schedules every batch with Config.Epsilon.
	PolicyStatic Policy = "static"
	// PolicyAdaptive gives each worker a quos.Controller that adapts
	// epsilon from achieved batch fidelity.
	PolicyAdaptive Policy = "adaptive"
)

// Config tunes the service.
type Config struct {
	// QueueSize bounds the pending-job queue; submissions beyond it
	// are rejected with ErrQueueFull (HTTP 429).
	QueueSize int
	// Policy picks static or adaptive epsilon control.
	Policy Policy
	// FleetPolicy names the internal/fleet allocation policy that routes
	// each admitted job to a backend (speed, fidelity, fairness,
	// balanced). Empty selects "balanced".
	FleetPolicy string
	// Epsilon is the (initial) EPST violation threshold.
	Epsilon float64
	// Lookahead and MaxColocate pass through to the EPST scheduler.
	Lookahead   int
	MaxColocate int
	// Trials is the Monte-Carlo budget per executed batch.
	Trials int
	// ExecDwell emulates hardware occupancy: after simulating a batch
	// the worker holds its backend busy for this wall-clock duration,
	// approximating shots × (reset + readout + depth·layer) on a real
	// QPU (the offline cloudsim's timing model). The simulator itself
	// answers at CPU speed, which makes queueing behaviour — and any
	// fleet scale-out measurement — unrealistically compute-bound
	// without it. 0 (the default) disables the dwell.
	ExecDwell time.Duration
	// Attempts is the compiler's best-of-N seed count.
	Attempts int
	// Workers bounds the goroutines each backend worker's compiler uses
	// for attempt/simulation fan-out (core.Compiler.Workers): 0 uses
	// the process-wide pool default, 1 forces sequential compilation.
	// Results are identical at every setting.
	Workers int
	// Seed derives each worker's deterministic simulation seeds.
	Seed int64
	// Noise is the simulator's noise model.
	Noise sim.NoiseModel
	// RequestTimeout bounds each HTTP request (http.TimeoutHandler).
	RequestTimeout time.Duration
	// TraceDepth is how many recent batch records each backend keeps.
	TraceDepth int

	// BatchTimeout is the per-batch execution deadline: one
	// compile+simulate attempt may spend at most this long, checked at
	// compiler-attempt and simulation-shard boundaries, so a runaway
	// X-SWAP search fails the batch instead of wedging the backend.
	// 0 selects the default; negative disables the deadline.
	BatchTimeout time.Duration
	// MaxRetries is how many times a batch is re-attempted after a
	// transient failure (an error advertising Transient() bool, as the
	// fault-injection harness produces). Permanent failures — compile
	// errors, panics, deadlines — are never retried: the pipeline is
	// deterministic, so they would fail identically. 0 selects the
	// default; negative disables retries.
	MaxRetries int
	// RetryBaseDelay and RetryMaxDelay shape the deterministic capped
	// backoff between retries: base<<attempt, capped at max.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// BreakerThreshold opens a backend's circuit breaker after this
	// many consecutive batch failures; the backend then drains (claims
	// nothing) for BreakerCooldown before a single half-open probe
	// batch decides between closing and re-opening. 0 selects the
	// default; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker drains before the
	// half-open probe. 0 selects the default; negative probes
	// immediately.
	BreakerCooldown time.Duration
	// MaxJobHistory caps how many terminal job records the in-memory
	// store retains; beyond it the oldest terminal records are evicted
	// (GET on an evicted id returns 404) so a long-running daemon does
	// not leak. 0 selects the default (~4096); negative disables
	// eviction.
	MaxJobHistory int
	// CacheSize bounds the compile-result cache shared by all backend
	// workers: compiled batches are keyed by a content fingerprint of
	// (circuit structure, device + calibration version, strategy,
	// compiler knobs), so resubmitting an identical workload skips the
	// compile entirely and concurrent identical jobs coalesce onto one
	// compilation. 0 selects the default (1024 entries); negative
	// disables caching.
	CacheSize int
	// Tenants is the static API-key table for the multi-tenant front
	// end. Empty (the default) runs the service open: no authentication,
	// every job owned by the implicit "default" tenant. Non-empty turns
	// on bearer-token auth, weighted-fair queueing, and per-tenant
	// admission control.
	Tenants []Tenant
	// DataDir, when non-empty, enables the write-ahead job log
	// (<DataDir>/wal.jsonl): admitted jobs are logged before their
	// submission is acknowledged and replayed on the next startup, so
	// queued jobs survive a restart or kill.
	DataDir string
	// Faults is the test-only fault-injection hook set; nil (the
	// production value) injects nothing.
	Faults *faultinject.Injector
}

// DefaultConfig returns production-ish defaults around the paper's
// ε = 0.15 operating point.
func DefaultConfig() Config {
	return Config{
		QueueSize:      256,
		Policy:         PolicyStatic,
		Epsilon:        0.15,
		Lookahead:      10,
		MaxColocate:    3,
		Trials:         512,
		Attempts:       1,
		Seed:           1,
		Noise:          sim.DefaultNoise(),
		RequestTimeout: 30 * time.Second,
		TraceDepth:     64,

		BatchTimeout:     2 * time.Minute,
		MaxRetries:       2,
		RetryBaseDelay:   50 * time.Millisecond,
		RetryMaxDelay:    2 * time.Second,
		BreakerThreshold: 5,
		BreakerCooldown:  5 * time.Second,
		MaxJobHistory:    4096,
		CacheSize:        1024,
	}
}

// Sentinel submission errors, mapped to HTTP statuses by the handler.
var (
	// ErrQueueFull signals backpressure (HTTP 429).
	ErrQueueFull = errors.New("service: queue full")
	// ErrShuttingDown rejects submissions during drain (HTTP 503).
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrTooLarge rejects programs no backend can hold (HTTP 400).
	ErrTooLarge = errors.New("service: program too large for every backend")
)

// JobRecord is the persisted, client-visible view of a job. Alongside
// the service's own lifecycle fields it persists the shared
// cloudsim.Job identity: Seq is the cloudsim.Job.ID and ArrivalSeconds
// its Arrival (seconds since service start).
type JobRecord struct {
	ID             string    `json:"id"`
	Seq            int       `json:"seq"`
	Tenant         string    `json:"tenant,omitempty"`
	Name           string    `json:"name"`
	Qubits         int       `json:"qubits"`
	Gates          int       `json:"gates"`
	State          State     `json:"state"`
	Backend        string    `json:"backend,omitempty"`
	CoJobs         []int     `json:"co_jobs,omitempty"`
	SubmittedAt    time.Time `json:"submitted_at"`
	ArrivalSeconds float64   `json:"arrival_seconds"`
	WaitSeconds    float64   `json:"wait_seconds,omitempty"`
	ServiceSeconds float64   `json:"service_seconds,omitempty"`
	PST            float64   `json:"pst,omitempty"`
	Error          string    `json:"error,omitempty"`
}

// job pairs the client-visible record with the queue-item shape shared
// with internal/cloudsim. All fields are guarded by Service.mu except
// tenant/vstart/vfinish/idemKey, which are immutable after admission.
type job struct {
	rec      JobRecord
	item     cloudsim.Job
	fj       fleet.Job // width and gate counts for dispatch scoring
	assigned int       // worker index the dispatcher routed the job to
	claimed  time.Time

	tenant  *tenantState // owning tenant; immutable after admission
	vstart  float64      // WFQ virtual start tag; immutable after admission
	vfinish float64      // WFQ virtual finish tag (queue sort key); immutable after admission
	idemKey string       // idempotency key binding to release on eviction; immutable

	lastQueued   time.Time // guarded by mu; when the job last entered the queue
	waitObserved bool      // guarded by mu; QueueLatency recorded (once per job)

	events   []JobEvent      // guarded by mu; lifecycle events, Seq ascending
	watchers []chan struct{} // guarded by mu; SSE subscriber wakeups (cap 1)
}

// BreakerStatus surfaces a worker's circuit-breaker state: "closed"
// (normal), "open" (draining after BreakerThreshold consecutive batch
// failures), or "half-open" (one probe batch in flight after the
// cooldown).
type BreakerStatus struct {
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Opens               int64  `json:"opens"`
}

// CacheCounters surfaces one worker's compile-cache traffic for
// GET /v1/backends (the registry aggregates the same events service-wide
// on /metrics).
type CacheCounters struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
}

// BackendStatus describes one worker for GET /v1/backends.
type BackendStatus struct {
	Name            string                 `json:"name"`
	Qubits          int                    `json:"qubits"`
	Policy          Policy                 `json:"policy"`
	Epsilon         float64                `json:"epsilon"`
	Busy            bool                   `json:"busy"`
	JobsCompleted   int64                  `json:"jobs_completed"`
	BatchesExecuted int64                  `json:"batches_executed"`
	Cache           CacheCounters          `json:"cache"`
	Breaker         BreakerStatus          `json:"breaker"`
	SchedulerErrors int64                  `json:"scheduler_errors,omitempty"`
	LastSchedError  string                 `json:"last_scheduler_error,omitempty"`
	RecentBatches   []cloudsim.BatchRecord `json:"recent_batches,omitempty"`
}

// Service is the qucloudd runtime: job store, bounded queue, and one
// worker per backend.
type Service struct {
	cfg       Config
	start     time.Time
	metrics   *Registry
	workers   []*worker
	maxQubits int
	// policy routes every admitted job to a backend; chips caches each
	// worker's calibration summary by worker index. Both are immutable
	// after New.
	policy fleet.Policy
	chips  []fleet.Chip
	// cache is the compile-result cache shared by every worker (keys
	// embed the device name and calibration version, so backends never
	// collide); nil when Config.CacheSize disables caching.
	cache *ccache.Cache
	// tenants/tenantsByKey/tenantList index the tenant table three ways
	// (by ID, by API key, ordered by ID for deterministic iteration);
	// the maps and slice are immutable after New, the pointed-to states
	// hold mu-guarded accounting. authRequired is true when
	// Config.Tenants was non-empty (bearer auth enforced).
	tenants      map[string]*tenantState
	tenantsByKey map[string]*tenantState
	tenantList   []*tenantState
	authRequired bool
	// wlog is the write-ahead job log; nil when Config.DataDir is empty.
	wlog *wal.Log

	// stopCh closes when Shutdown begins, waking workers out of
	// breaker-cooldown and retry-backoff sleeps.
	stopCh   chan struct{}
	stopOnce sync.Once
	// runCtx is the root context every worker loop (and every per-batch
	// deadline) descends from; a forced Shutdown cancels it so in-flight
	// compiles and simulations abort instead of running to completion
	// after the caller has given up.
	runCtx    context.Context
	runCancel context.CancelFunc

	mu          sync.Mutex
	cond        *sync.Cond         // signals queue/lifecycle changes; Wait called with mu held
	queue       []*job             // guarded by mu
	jobs        map[string]*job    // guarded by mu
	terminalIDs []string           // guarded by mu; terminal job ids, oldest first (eviction order)
	seq         int                // guarded by mu
	vtime       float64            // guarded by mu; WFQ global virtual time
	accepting   bool               // guarded by mu
	draining    bool               // guarded by mu
	forced      bool               // guarded by mu
	started     bool               // guarded by mu
	decisions   []DispatchDecision // guarded by mu; recent dispatch trace, oldest first
	wg          sync.WaitGroup
}

// New builds a service over the devices (one worker each). Zero-valued
// Config fields fall back to DefaultConfig; devices must be non-empty
// with distinct names.
//
//lint:ignore ctxflow construction-time WAL replay visits faults under the run context New itself roots; there is no earlier context to plumb
func New(devices []*arch.Device, cfg Config) (*Service, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("service: need at least one backend device")
	}
	def := DefaultConfig()
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = def.QueueSize
	}
	if cfg.Policy == "" {
		cfg.Policy = def.Policy
	}
	if cfg.Policy != PolicyStatic && cfg.Policy != PolicyAdaptive {
		return nil, fmt.Errorf("service: unknown policy %q", cfg.Policy)
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = def.Epsilon
	}
	if cfg.Lookahead <= 0 {
		cfg.Lookahead = def.Lookahead
	}
	if cfg.MaxColocate <= 0 {
		cfg.MaxColocate = def.MaxColocate
	}
	if cfg.Trials <= 0 {
		cfg.Trials = def.Trials
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = def.Attempts
	}
	if cfg.TraceDepth <= 0 {
		cfg.TraceDepth = def.TraceDepth
	}
	// Robustness knobs: 0 means "default", negative means "disabled"
	// (normalized to the zero of the mechanism).
	if cfg.BatchTimeout == 0 {
		cfg.BatchTimeout = def.BatchTimeout
	} else if cfg.BatchTimeout < 0 {
		cfg.BatchTimeout = 0
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = def.MaxRetries
	} else if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.RetryBaseDelay <= 0 {
		cfg.RetryBaseDelay = def.RetryBaseDelay
	}
	if cfg.RetryMaxDelay <= 0 {
		cfg.RetryMaxDelay = def.RetryMaxDelay
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = def.BreakerThreshold
	} else if cfg.BreakerThreshold < 0 {
		cfg.BreakerThreshold = 0
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = def.BreakerCooldown
	} else if cfg.BreakerCooldown < 0 {
		cfg.BreakerCooldown = 0
	}
	if cfg.MaxJobHistory == 0 {
		cfg.MaxJobHistory = def.MaxJobHistory
	} else if cfg.MaxJobHistory < 0 {
		cfg.MaxJobHistory = 0
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = def.CacheSize
	} else if cfg.CacheSize < 0 {
		cfg.CacheSize = 0
	}
	if cfg.FleetPolicy == "" {
		cfg.FleetPolicy = "balanced"
	}
	fleetPolicy, err := fleet.New(cfg.FleetPolicy)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	tenants, tenantsByKey, tenantList, err := buildTenants(cfg)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	s := &Service{
		cfg:          cfg,
		start:        time.Now(),
		metrics:      NewRegistry(),
		policy:       fleetPolicy,
		jobs:         map[string]*job{},
		stopCh:       make(chan struct{}),
		accepting:    true,
		tenants:      tenants,
		tenantsByKey: tenantsByKey,
		tenantList:   tenantList,
		authRequired: len(cfg.Tenants) > 0,
	}
	s.cond = sync.NewCond(&s.mu)
	//lint:ignore ctxflow the service owns its workers' lifetime, so the run context is rooted here; Shutdown cancels it
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	// The cache's hooks bind the chaos sites (lookup outage → bypass,
	// store outage → serve-but-skip-store) and the eviction counter.
	// faultinject.Visit is nil-injector-safe, so production configs pay
	// only a nil check.
	s.cache = ccache.New(cfg.CacheSize)
	if s.cache != nil {
		faults := cfg.Faults
		s.cache.OnEvict = s.metrics.CacheEvictions.Inc
		s.cache.LookupHook = func(ctx context.Context) error {
			return faults.Visit(ctx, faultinject.SiteCacheLookup)
		}
		s.cache.StoreHook = func(ctx context.Context) error {
			return faults.Visit(ctx, faultinject.SiteCacheStore)
		}
	}
	for i, d := range devices {
		if seen[d.Name] {
			return nil, fmt.Errorf("service: duplicate backend name %q", d.Name)
		}
		seen[d.Name] = true
		if n := d.NumQubits(); n > s.maxQubits {
			s.maxQubits = n
		}
		s.workers = append(s.workers, newWorker(s, i, d))
		s.chips = append(s.chips, fleet.ChipOf(d))
	}
	s.metrics.fleetSource = s.fleetMetrics
	s.metrics.tenantSource = func() (bool, []TenantMetrics) { return s.authRequired, s.TenantStats() }
	if cfg.DataDir != "" {
		if err := s.openWAL(s.runCtx, cfg.DataDir); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// openWAL opens (or creates) the write-ahead job log under dir and
// restores its state: terminal records re-enter the job store, pending
// records — jobs admitted before the previous process died — are
// re-parsed and re-enqueued with their original identity. Afterwards
// the log is compacted to exactly the restored state. A fault injected
// at the replay site discards the replayed records (availability over
// durability) but keeps the log open for new appends.
func (s *Service) openWAL(ctx context.Context, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("service: data dir: %w", err)
	}
	l, rep, err := wal.Open(filepath.Join(dir, "wal.jsonl"))
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	s.wlog = l
	faults := s.cfg.Faults
	l.AppendHook = func() error {
		return faults.Visit(s.runCtx, faultinject.SiteWALAppend)
	}
	if err := faults.Visit(ctx, faultinject.SiteWALReplay); err != nil {
		s.metrics.WALReplayErrors.Inc()
		return nil
	}
	s.metrics.WALReplaySkipped.Add(int64(rep.Skipped))
	pending, terminal := rep.Pending()
	// Compact first, so replay cost tracks live state rather than the
	// previous daemon's lifetime; terminal records appended during the
	// restore below (e.g. a pending job whose QASM no longer parses)
	// then land after the compacted content.
	live := make([]wal.Record, 0, len(terminal)*2+len(pending))
	for _, t := range terminal {
		sub := t
		sub.Type = wal.TypeSubmit
		sub.Backend, sub.Error, sub.PST, sub.WaitSeconds, sub.ServiceSeconds = "", "", 0, 0, 0
		// QASM is not retained for terminal jobs: they are never requeued.
		sub.QASM = ""
		live = append(live, sub, wal.Record{
			Type: t.Type, ID: t.ID, Backend: t.Backend, Error: t.Error,
			PST: t.PST, WaitSeconds: t.WaitSeconds, ServiceSeconds: t.ServiceSeconds,
		})
	}
	live = append(live, pending...)
	if err := l.Compact(live); err != nil {
		s.metrics.WALAppendErrors.Inc()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range terminal {
		s.restoreTerminalLocked(t)
	}
	for _, p := range pending {
		s.restorePendingLocked(p)
	}
	return nil
}

// restoreTerminalLocked rebuilds a finished job's record from its
// merged WAL submit+terminal pair so GET /v1/jobs/{id} keeps answering
// across a restart. Callers hold s.mu.
func (s *Service) restoreTerminalLocked(t wal.Record) {
	if _, exists := s.jobs[t.ID]; exists {
		return
	}
	state := StateDone
	if t.Type == wal.TypeFailed {
		state = StateFailed
	}
	tn := s.tenants[t.Tenant]
	j := &job{
		rec: JobRecord{
			ID:             t.ID,
			Seq:            t.Seq,
			Tenant:         t.Tenant,
			Name:           t.Name,
			Backend:        t.Backend,
			SubmittedAt:    time.Unix(0, t.SubmittedUnixNano),
			ArrivalSeconds: t.Arrival,
			WaitSeconds:    t.WaitSeconds,
			ServiceSeconds: t.ServiceSeconds,
			PST:            t.PST,
			Error:          t.Error,
		},
		tenant:  tn,
		idemKey: t.Idem,
	}
	s.setStateLocked(j, state)
	s.jobs[t.ID] = j
	s.terminalIDs = append(s.terminalIDs, t.ID)
	if tn != nil && t.Idem != "" {
		tn.idem[t.Idem] = idemEntry{jobID: t.ID, fingerprint: t.Fingerprint}
	}
	if t.Seq >= s.seq {
		s.seq = t.Seq + 1
	}
	s.metrics.WALReplayedJobs.Inc()
}

// restorePendingLocked re-admits a job the previous process accepted
// but never finished: the QASM source is re-parsed and the job
// re-enters the queue with its original ID, sequence, tenant, and
// submission instant (so its measured wait honestly includes the
// downtime). Jobs that no longer parse or fit any backend are restored
// as failed instead of silently dropped. Callers hold s.mu.
func (s *Service) restorePendingLocked(p wal.Record) {
	if _, exists := s.jobs[p.ID]; exists {
		return
	}
	tn := s.tenants[p.Tenant]
	if tn == nil {
		// The tenant table changed across the restart; default-tenant
		// jobs (open mode) land here too when tenants were added.
		if s.authRequired {
			s.metrics.WALReplaySkipped.Inc()
			return
		}
		tn = s.tenants[DefaultTenantID]
	}
	if p.Seq >= s.seq {
		s.seq = p.Seq + 1
	}
	submitted := time.Unix(0, p.SubmittedUnixNano)
	j := &job{
		rec: JobRecord{
			ID:             p.ID,
			Seq:            p.Seq,
			Tenant:         tn.cfg.ID,
			Name:           p.Name,
			SubmittedAt:    submitted,
			ArrivalSeconds: p.Arrival,
		},
		tenant:     tn,
		idemKey:    p.Idem,
		lastQueued: submitted,
	}
	if p.Idem != "" {
		tn.idem[p.Idem] = idemEntry{jobID: p.ID, fingerprint: p.Fingerprint}
	}
	circ, err := circuit.ParseQASMString(p.Name, p.QASM)
	if err == nil && circ.NumQubits > s.maxQubits {
		err = fmt.Errorf("%w: program %q needs %d qubits, largest backend has %d",
			ErrTooLarge, p.Name, circ.NumQubits, s.maxQubits)
	}
	if err == nil {
		j.rec.Qubits = circ.NumQubits
		j.rec.Gates = len(circ.Gates)
		j.item = cloudsim.Job{ID: p.Seq, Circ: circ, Arrival: p.Arrival}
		j.fj = fleet.Job{Qubits: circ.NumQubits, CNOTs: circ.CNOTCount(), Gate1s: circ.Gate1Count()}
		if !s.dispatchLocked(j, -1) {
			err = fmt.Errorf("%w: program %q needs %d qubits", ErrTooLarge, p.Name, circ.NumQubits)
		}
	}
	s.jobs[p.ID] = j
	if err != nil {
		j.rec.Error = "replay: " + err.Error()
		s.setStateLocked(j, StateFailed)
		s.markTerminalLocked(j)
		s.metrics.JobsFailed.Inc()
		return
	}
	s.tagLocked(tn, j)
	s.setStateLocked(j, StateQueued)
	s.enqueueLocked(j)
	tn.submitted++
	s.metrics.WALReplayedJobs.Inc()
	s.metrics.JobsAccepted.Inc()
}

// Start launches the backend workers. It is idempotent.
func (s *Service) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	for _, w := range s.workers {
		s.wg.Add(1)
		go w.run(s.runCtx)
	}
}

// Metrics exposes the service's metric registry.
func (s *Service) Metrics() *Registry { return s.metrics }

// observeLatency funnels a measured duration (in seconds) through the
// fault-injection observation hook before recording it, so chaos tests
// can substitute NaN/Inf readings; Histogram.Observe drops whatever
// non-finite value comes back instead of letting it poison /metrics.
func (s *Service) observeLatency(h *Histogram, seconds float64) {
	h.Observe(s.cfg.Faults.Observe(faultinject.SiteLatency, seconds))
}

// Uptime is the time since the service was constructed.
func (s *Service) Uptime() time.Duration { return time.Since(s.start) }

// SubmitOptions carries the front-end context of one submission.
type SubmitOptions struct {
	// Tenant is the authenticated tenant's ID; empty selects the
	// implicit default tenant (open mode only).
	Tenant string
	// IdempotencyKey, when non-empty, deduplicates retried submissions:
	// the same tenant resubmitting the same program content under the
	// same key gets the original job's record back instead of a new
	// job; the same key with different content is rejected with
	// ErrIdemConflict.
	IdempotencyKey string
}

// Submit enqueues a parsed program for the default tenant. It fails
// with ErrQueueFull under backpressure, ErrShuttingDown during drain,
// and ErrTooLarge when no backend can hold the program.
func (s *Service) Submit(circ *circuit.Circuit) (JobRecord, error) {
	rec, _, err := s.SubmitJob(circ, SubmitOptions{})
	return rec, err
}

// SubmitJob enqueues a parsed program under the given tenant and
// idempotency context. The returned bool is true when the submission
// collapsed onto an existing job via its idempotency key. Admission
// errors: ErrShuttingDown during drain, ErrQueueFull when the global
// queue is full, ErrTenantQuota when the tenant's weighted share is
// exhausted, ErrTooLarge when no backend fits, plus the tenant
// resolution errors (ErrUnknownTenant, ErrTenantDisabled) and
// ErrIdemConflict for a reused key with different content.
func (s *Service) SubmitJob(circ *circuit.Circuit, opts SubmitOptions) (JobRecord, bool, error) {
	if circ == nil || circ.NumQubits == 0 {
		return JobRecord{}, false, fmt.Errorf("service: empty program")
	}
	if circ.NumQubits > s.maxQubits {
		return JobRecord{}, false, fmt.Errorf("%w: program %q needs %d qubits, largest backend has %d",
			ErrTooLarge, circ.Name, circ.NumQubits, s.maxQubits)
	}
	fj := fleet.Job{Qubits: circ.NumQubits, CNOTs: circ.CNOTCount(), Gate1s: circ.Gate1Count()}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.tenantLocked(opts.Tenant)
	if err != nil {
		return JobRecord{}, false, err
	}
	var fp string
	if opts.IdempotencyKey != "" {
		// Check the key before any admission control: a retry of an
		// already-admitted job must succeed even when the queue is full.
		fp = contentFingerprint(circ)
		if e, ok := t.idem[opts.IdempotencyKey]; ok {
			if prior, live := s.jobs[e.jobID]; live {
				if e.fingerprint != fp {
					return JobRecord{}, false, fmt.Errorf("%w: key %q", ErrIdemConflict, opts.IdempotencyKey)
				}
				s.metrics.IdempotentHits.Inc()
				return snapshotRecord(prior), true, nil
			}
			// The bound job was evicted from the store; the key is free.
			delete(t.idem, opts.IdempotencyKey)
		}
	}
	if !s.accepting {
		s.metrics.JobsRejected.Inc()
		t.rejected++
		return JobRecord{}, false, ErrShuttingDown
	}
	if len(s.queue) >= s.cfg.QueueSize {
		s.metrics.JobsRejected.Inc()
		t.rejected++
		return JobRecord{}, false, ErrQueueFull
	}
	if t.queued >= t.maxQueued {
		s.metrics.JobsRejected.Inc()
		s.metrics.TenantRejected.Inc()
		t.rejected++
		return JobRecord{}, false, fmt.Errorf("%w: tenant %q has %d jobs queued (cap %d)",
			ErrTenantQuota, t.cfg.ID, t.queued, t.maxQueued)
	}
	seq := s.seq
	s.seq++
	now := time.Now()
	arrival := now.Sub(s.start).Seconds()
	j := &job{
		rec: JobRecord{
			ID:             fmt.Sprintf("job-%06d", seq),
			Seq:            seq,
			Tenant:         t.cfg.ID,
			Name:           circ.Name,
			Qubits:         circ.NumQubits,
			Gates:          len(circ.Gates),
			SubmittedAt:    now,
			ArrivalSeconds: arrival,
		},
		item:       cloudsim.Job{ID: seq, Circ: circ, Arrival: arrival},
		fj:         fj,
		tenant:     t,
		idemKey:    opts.IdempotencyKey,
		lastQueued: now,
	}
	// Route before enqueueing so the candidate queue depths exclude the
	// job being placed.
	if !s.dispatchLocked(j, -1) {
		s.seq-- // roll back: the job was never admitted
		s.metrics.JobsRejected.Inc()
		t.rejected++
		return JobRecord{}, false, fmt.Errorf("%w: program %q needs %d qubits",
			ErrTooLarge, circ.Name, circ.NumQubits)
	}
	s.tagLocked(t, j)
	s.setStateLocked(j, StateQueued)
	// Log before acknowledging: once SubmitJob returns, the job must
	// survive a process kill. An append failure is counted but does not
	// reject the job — availability over durability.
	s.walSubmitLocked(j, circ, fp)
	s.enqueueLocked(j)
	s.jobs[j.rec.ID] = j
	t.submitted++
	if opts.IdempotencyKey != "" {
		t.idem[opts.IdempotencyKey] = idemEntry{jobID: j.rec.ID, fingerprint: fp}
	}
	s.metrics.JobsAccepted.Inc()
	s.cond.Broadcast()
	return snapshotRecord(j), false, nil
}

// walSubmitLocked appends the job's admission record to the WAL (no-op
// without a data dir). Callers hold s.mu.
func (s *Service) walSubmitLocked(j *job, circ *circuit.Circuit, fp string) {
	if s.wlog == nil {
		return
	}
	err := s.wlog.Append(wal.Record{
		Type:              wal.TypeSubmit,
		ID:                j.rec.ID,
		Seq:               j.rec.Seq,
		Tenant:            j.rec.Tenant,
		Name:              j.rec.Name,
		QASM:              circuit.QASMString(circ),
		Idem:              j.idemKey,
		Fingerprint:       fp,
		SubmittedUnixNano: j.rec.SubmittedAt.UnixNano(),
		Arrival:           j.rec.ArrivalSeconds,
	})
	if err != nil {
		s.metrics.WALAppendErrors.Inc()
		return
	}
	s.metrics.WALAppends.Inc()
}

// Job returns the record for the given public id.
func (s *Service) Job(id string) (JobRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobRecord{}, false
	}
	return snapshotRecord(j), true
}

// Jobs lists every record, oldest first.
func (s *Service) Jobs() []JobRecord {
	return s.JobsPage("", -1, 0)
}

// JobsPage lists records oldest (lowest Seq) first: only the given
// tenant's jobs when tenant is non-empty, starting strictly after
// sequence number `after` (-1 for the beginning), and at most limit
// records when limit is positive. It backs the GET /v1/jobs paging.
func (s *Service) JobsPage(tenant string, after int, limit int) []JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobRecord, 0, len(s.jobs))
	for _, j := range s.jobs {
		if tenant != "" && j.rec.Tenant != tenant {
			continue
		}
		if j.rec.Seq <= after {
			continue
		}
		out = append(out, snapshotRecord(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Seq < out[k].Seq })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Backends reports every worker's status.
func (s *Service) Backends() []BackendStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]BackendStatus, len(s.workers))
	for i, w := range s.workers {
		out[i] = w.statusLocked()
	}
	return out
}

// Shutdown stops accepting jobs, drains the queue, and waits for the
// workers to finish every remaining batch. If ctx is canceled first,
// workers stop after their current batch, leftover queued jobs are
// marked failed, and ctx's error is returned.
func (s *Service) Shutdown(ctx context.Context) error {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.mu.Lock()
	s.accepting = false
	s.draining = true
	started := s.started
	s.cond.Broadcast()
	s.mu.Unlock()

	if !started {
		// The run context must be cancelled on this path too: nothing
		// ever started from it, but leaving it live leaks the context
		// (and any future derivation from it would never be released).
		s.runCancel()
		s.failRemaining("service shut down before execution")
		s.closeWAL()
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.runCancel()
		s.failRemaining("service shut down before execution")
		s.closeWAL()
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		s.forced = true
		s.cond.Broadcast()
		s.mu.Unlock()
		// Cancel the run context so the current batch's compile/simulate
		// aborts at its next deadline check instead of finishing a result
		// nobody will read.
		s.runCancel()
		<-done
		s.failRemaining("service shut down before execution")
		s.closeWAL()
		return ctx.Err()
	}
}

// closeWAL syncs and closes the write-ahead log after the last
// terminal append of a shutdown (no-op without a data dir).
func (s *Service) closeWAL() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wlog != nil {
		_ = s.wlog.Close()
		s.wlog = nil
	}
}

// failRemaining marks every still-queued job failed (used when a
// shutdown leaves jobs behind).
func (s *Service) failRemaining(msg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.queue {
		j.rec.Error = msg
		s.setStateLocked(j, StateFailed)
		s.dequeuedLocked(j)
		s.markTerminalLocked(j)
		s.metrics.JobsFailed.Inc()
		s.observeLatency(s.metrics.TotalLatency, time.Since(j.rec.SubmittedAt).Seconds())
	}
	s.queue = nil
	s.metrics.QueueDepth.Set(0)
}

// markTerminalLocked records that the job reached a terminal state:
// per-tenant outcome counters, the WAL terminal append, and eviction
// of the oldest terminal records beyond Config.MaxJobHistory, so the
// in-memory store cannot grow without bound under a long-running
// daemon. Callers hold s.mu and have already set a terminal state.
func (s *Service) markTerminalLocked(j *job) {
	if j.tenant != nil {
		if j.rec.State == StateDone {
			j.tenant.completed++
		} else {
			j.tenant.failed++
		}
	}
	if s.wlog != nil {
		typ := wal.TypeDone
		if j.rec.State == StateFailed {
			typ = wal.TypeFailed
		}
		err := s.wlog.Append(wal.Record{
			Type:           typ,
			ID:             j.rec.ID,
			Backend:        j.rec.Backend,
			Error:          j.rec.Error,
			PST:            j.rec.PST,
			WaitSeconds:    j.rec.WaitSeconds,
			ServiceSeconds: j.rec.ServiceSeconds,
		})
		if err != nil {
			s.metrics.WALAppendErrors.Inc()
		} else {
			s.metrics.WALAppends.Inc()
		}
	}
	s.terminalIDs = append(s.terminalIDs, j.rec.ID)
	if s.cfg.MaxJobHistory <= 0 {
		return
	}
	for len(s.terminalIDs) > s.cfg.MaxJobHistory {
		id := s.terminalIDs[0]
		s.terminalIDs = s.terminalIDs[1:]
		// Release the evicted job's idempotency-key binding so the key
		// can be reused once the job it named is gone.
		if old := s.jobs[id]; old != nil && old.idemKey != "" && old.tenant != nil {
			if e := old.tenant.idem[old.idemKey]; e.jobID == id {
				delete(old.tenant.idem, old.idemKey)
			}
		}
		delete(s.jobs, id)
		s.metrics.JobsEvicted.Inc()
	}
}

// snapshotRecord copies a job's record (cloning the CoJobs slice so
// callers can't observe later mutation).
func snapshotRecord(j *job) JobRecord {
	rec := j.rec
	rec.CoJobs = append([]int(nil), j.rec.CoJobs...)
	return rec
}

// omegaFor mirrors core.NewCompiler's knee: 0.95 up to 20 qubits, 0.40
// above.
func omegaFor(d *arch.Device) float64 {
	if d.NumQubits() > 20 {
		return 0.40
	}
	return 0.95
}

// strategyFor picks the compilation strategy for a batch size.
func strategyFor(n int) core.Strategy {
	if n > 1 {
		return core.CDAPXSwap
	}
	return core.Separate
}
