package service

import (
	"context"
	"sort"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/nisqbench"
)

// benchFleet measures end-to-end service throughput for a fleet of n
// identically-calibrated 5-qubit chips under the given allocation
// policy: each iteration boots a fresh service, pushes a fixed tiny
// workload through it, and drains. Alongside ns/op it reports the
// custom units benchjson records in BENCH_fleet.json: completed-job
// throughput (jobs/s) and the p99 submit-to-claim wait (p99_wait_s).
//
// A real QPU occupies wall-clock device time per batch (shots ×
// readout), which is what a fleet parallelizes; the host-side
// simulator alone would make this a pure CPU benchmark and hide the
// scale-out. ExecDwell supplies that occupancy, so the 4-chip runs
// overlap device dwells exactly as four physical backends would.
func benchFleet(b *testing.B, chips int, policy string) {
	const jobsPerRun = 24
	circ := nisqbench.MustGet("bv_n3")
	var waits []float64
	var elapsed time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		devices := make([]*arch.Device, chips)
		for c := range devices {
			d := arch.London()
			if chips > 1 {
				d.Name = d.Name + "-" + string(rune('a'+c))
			}
			devices[c] = d
		}
		cfg := DefaultConfig()
		cfg.Trials = 16
		cfg.Attempts = 1
		cfg.Lookahead = 4
		cfg.Seed = 7
		cfg.FleetPolicy = policy
		cfg.ExecDwell = 10 * time.Millisecond
		svc, err := New(devices, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		start := time.Now()
		svc.Start()
		for j := 0; j < jobsPerRun; j++ {
			if _, err := svc.Submit(circ); err != nil {
				b.Fatal(err)
			}
		}
		if err := svc.Shutdown(context.Background()); err != nil {
			b.Fatal(err)
		}
		elapsed += time.Since(start)
		b.StopTimer()
		for _, rec := range svc.Jobs() {
			if rec.State != StateDone {
				b.Fatalf("job %s ended %s: %s", rec.ID, rec.State, rec.Error)
			}
			waits = append(waits, rec.WaitSeconds)
		}
		b.StartTimer()
	}
	b.StopTimer()
	if secs := elapsed.Seconds(); secs > 0 {
		b.ReportMetric(float64(jobsPerRun*b.N)/secs, "jobs/s")
	}
	sort.Float64s(waits)
	if len(waits) > 0 {
		idx := int(float64(len(waits)) * 0.99)
		if idx >= len(waits) {
			idx = len(waits) - 1
		}
		b.ReportMetric(waits[idx], "p99_wait_s")
	}
}

func BenchmarkFleet1ChipSpeed(b *testing.B)    { benchFleet(b, 1, "speed") }
func BenchmarkFleet4ChipSpeed(b *testing.B)    { benchFleet(b, 4, "speed") }
func BenchmarkFleet1ChipFidelity(b *testing.B) { benchFleet(b, 1, "fidelity") }
func BenchmarkFleet4ChipFidelity(b *testing.B) { benchFleet(b, 4, "fidelity") }
func BenchmarkFleet1ChipFairness(b *testing.B) { benchFleet(b, 1, "fairness") }
func BenchmarkFleet4ChipFairness(b *testing.B) { benchFleet(b, 4, "fairness") }
func BenchmarkFleet1ChipBalanced(b *testing.B) { benchFleet(b, 1, "balanced") }
func BenchmarkFleet4ChipBalanced(b *testing.B) { benchFleet(b, 4, "balanced") }
