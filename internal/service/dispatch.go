package service

import (
	"repro/internal/fleet"
)

// This file is the service side of the fleet dispatcher: every
// admitted job is routed to a backend at submit time by
// internal/fleet's policy scoring, workers claim only their own
// assignments, and when a backend's circuit breaker opens its
// still-queued jobs migrate back through the dispatcher onto healthy
// chips. All routing runs under Service.mu, so dispatch decisions are
// linearized with claims and requeues.

// DispatchDecision is one routing decision in the recent-dispatch
// trace served on /v1/fleet. Migrated decisions record the backend the
// job was moved away from.
type DispatchDecision struct {
	Seq      int     `json:"seq"`
	Qubits   int     `json:"qubits"`
	Backend  string  `json:"backend"`
	Score    float64 `json:"score"`
	Migrated bool    `json:"migrated,omitempty"`
	From     string  `json:"from,omitempty"`
}

// FleetDeviceStatus is one chip's row in the /v1/fleet view: its
// calibration summary plus the live load the dispatcher scores.
type FleetDeviceStatus struct {
	fleet.Chip
	fleet.Load
	Migrated     int64  `json:"migrated"`
	BreakerState string `json:"breaker_state"`
}

// FleetStatus is the GET /v1/fleet document: the active policy, the
// fleet-wide counters, every chip's dispatch view, and the recent
// decision trace (oldest first).
type FleetStatus struct {
	Policy          string              `json:"policy"`
	Dispatches      int64               `json:"dispatches"`
	JobsMigrated    int64               `json:"jobs_migrated"`
	Devices         []FleetDeviceStatus `json:"devices"`
	RecentDecisions []DispatchDecision  `json:"recent_decisions,omitempty"`
}

// candidatesLocked assembles the dispatcher's view of every backend:
// static calibration summary plus live queue depth, busy flag,
// smoothed service time, cumulative dispatches, and breaker state.
// Only a fully open breaker counts as BreakerOpen — a half-open
// backend must stay eligible or its probe batch would starve while any
// healthy chip exists. Callers hold s.mu.
func (s *Service) candidatesLocked() []fleet.Candidate {
	depth := make([]int, len(s.workers))
	for _, j := range s.queue {
		depth[j.assigned]++
	}
	cands := make([]fleet.Candidate, len(s.workers))
	for i, w := range s.workers {
		cands[i] = fleet.Candidate{
			Chip: s.chips[i],
			Load: fleet.Load{
				QueueDepth:         depth[i],
				Busy:               w.busy,
				EWMAServiceSeconds: w.ewma.Value(),
				Dispatched:         w.dispatched,
				BreakerOpen:        w.brk.state == breakerOpen,
			},
		}
	}
	return cands
}

// dispatchLocked routes one job. from is -1 for a fresh submission, or
// the index of the worker the job is migrating away from (the pick
// must then land elsewhere; staying put is reported as false and the
// job keeps its assignment). It returns false when no backend can take
// the job. Callers hold s.mu.
func (s *Service) dispatchLocked(j *job, from int) bool {
	cands := s.candidatesLocked()
	idx := fleet.Pick(s.policy, cands, j.fj)
	if idx < 0 || idx == from {
		return false
	}
	j.assigned = idx
	j.rec.Backend = s.workers[idx].dev.Name
	s.workers[idx].dispatched++
	s.metrics.Dispatches.Inc()
	d := DispatchDecision{
		Seq:     j.rec.Seq,
		Qubits:  j.rec.Qubits,
		Backend: s.workers[idx].dev.Name,
		Score:   s.policy.Score(cands[idx], j.fj),
	}
	if from >= 0 {
		d.Migrated = true
		d.From = s.workers[from].dev.Name
	}
	s.decisions = append(s.decisions, d)
	if len(s.decisions) > s.cfg.TraceDepth {
		s.decisions = s.decisions[len(s.decisions)-s.cfg.TraceDepth:]
	}
	return true
}

// migrateLocked re-routes every job still queued for the given worker
// (called when its breaker opens, with s.mu held). Jobs that cannot
// move — no other chip fits them — stay assigned and wait for the
// half-open probe. During drain nothing moves: breakerWait already
// bypasses the cooldown then, and re-routing onto a worker that may
// have exited would strand the job.
func (s *Service) migrateLocked(from *worker) {
	if s.draining {
		return
	}
	moved := 0
	for _, j := range s.queue {
		if j.assigned != from.index || j.rec.State != StateQueued {
			continue
		}
		if s.dispatchLocked(j, from.index) {
			s.metrics.JobsMigrated.Inc()
			from.migrated++
			moved++
		}
	}
	if moved > 0 {
		s.cond.Broadcast()
	}
}

// Fleet reports the dispatcher's live view for GET /v1/fleet.
func (s *Service) Fleet() FleetStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := FleetStatus{
		Policy:          s.policy.Name(),
		Dispatches:      s.metrics.Dispatches.Value(),
		JobsMigrated:    s.metrics.JobsMigrated.Value(),
		RecentDecisions: append([]DispatchDecision(nil), s.decisions...),
	}
	cands := s.candidatesLocked()
	st.Devices = make([]FleetDeviceStatus, len(cands))
	for i, c := range cands {
		st.Devices[i] = FleetDeviceStatus{
			Chip:         c.Chip,
			Load:         c.Load,
			Migrated:     s.workers[i].migrated,
			BreakerState: s.workers[i].brk.state,
		}
	}
	return st
}

// fleetMetrics is the Registry's fleet section source (wired in New,
// before any worker starts).
func (s *Service) fleetMetrics() FleetSection {
	st := s.Fleet()
	sec := FleetSection{
		Policy:       st.Policy,
		Dispatches:   st.Dispatches,
		JobsMigrated: st.JobsMigrated,
	}
	sec.Devices = make([]FleetDeviceMetrics, len(st.Devices))
	for i, d := range st.Devices {
		sec.Devices[i] = FleetDeviceMetrics{
			Name:       d.Chip.Name,
			Dispatched: d.Load.Dispatched,
			Migrated:   d.Migrated,
			QueueDepth: d.Load.QueueDepth,
			Breaker:    d.BreakerState,
		}
	}
	return sec
}
