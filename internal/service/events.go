package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// This file is the job lifecycle event stream: every state transition
// appends a JobEvent to the job's history, and GET
// /v1/jobs/{id}/events serves that history — then live updates — as
// Server-Sent Events. History plus notification (rather than a
// per-subscriber event channel) means a subscriber can connect at any
// point in the job's life and still see every transition exactly once,
// in order.

// JobEvent is one lifecycle transition of a job. Seq is 1-based and
// strictly increasing per job, so clients can resume a dropped stream
// with SSE's Last-Event-ID semantics.
type JobEvent struct {
	Seq     int       `json:"seq"`
	JobID   string    `json:"job_id"`
	State   State     `json:"state"`
	At      time.Time `json:"at"`
	Backend string    `json:"backend,omitempty"`
	PST     float64   `json:"pst,omitempty"`
	Error   string    `json:"error,omitempty"`
}

// setStateLocked transitions the job's state and appends the matching
// event, waking any SSE subscribers. Every state assignment in the
// service goes through here so the event history is complete by
// construction. Callers hold s.mu and have already set the fields the
// event snapshots (Backend, PST, Error).
func (s *Service) setStateLocked(j *job, state State) {
	j.rec.State = state
	j.events = append(j.events, JobEvent{
		Seq:     len(j.events) + 1,
		JobID:   j.rec.ID,
		State:   state,
		At:      time.Now(),
		Backend: j.rec.Backend,
		PST:     j.rec.PST,
		Error:   j.rec.Error,
	})
	for _, ch := range j.watchers {
		select {
		case ch <- struct{}{}:
		default: // subscriber already has a wakeup pending
		}
	}
}

// Events returns a copy of the job's event history.
func (s *Service) Events(id string) ([]JobEvent, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return append([]JobEvent(nil), j.events...), true
}

// watchLocked registers a wakeup channel on the job; the returned
// cancel removes it. Callers hold s.mu.
func (s *Service) watchLocked(j *job) (ch chan struct{}, cancel func()) {
	ch = make(chan struct{}, 1)
	j.watchers = append(j.watchers, ch)
	return ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, w := range j.watchers {
			if w == ch {
				j.watchers = append(j.watchers[:i], j.watchers[i+1:]...)
				return
			}
		}
	}
}

// handleJobEvents streams a job's lifecycle as Server-Sent Events:
// the full history first, then live transitions, closing once the job
// is terminal. The route is registered outside the TimeoutHandler
// wrapper — a lifecycle stream legitimately outlives RequestTimeout,
// and http.TimeoutHandler's ResponseWriter cannot flush.
func (s *Service) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if s.authRequired && j.rec.Tenant != tenantID(r) {
		s.mu.Unlock()
		writeError(w, http.StatusForbidden, "job belongs to another tenant")
		return
	}
	ch, cancel := s.watchLocked(j)
	s.mu.Unlock()
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	cursor := 0
	for {
		s.mu.Lock()
		pendingEvents := append([]JobEvent(nil), j.events[cursor:]...)
		s.mu.Unlock()
		cursor += len(pendingEvents)
		terminal := false
		for _, ev := range pendingEvents {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: state\ndata: %s\n\n", ev.Seq, data); err != nil {
				return
			}
			if ev.State.Terminal() {
				terminal = true
			}
		}
		if len(pendingEvents) > 0 {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		case <-s.stopCh:
			// Shutdown fails or finishes every job, so one more pass
			// drains the terminal event; after that the loop exits via
			// the terminal check or the client hangs up.
			select {
			case <-ch:
			case <-r.Context().Done():
				return
			}
		}
	}
}
