package service

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/faultinject"
)

// TestJobHistoryEviction caps the terminal-record store at 3 and runs
// 5 jobs through: the oldest two records must be evicted (counted and
// 404 on GET) while the newest three stay queryable.
func TestJobHistoryEviction(t *testing.T) {
	cfg := testConfig()
	cfg.MaxJobHistory = 3
	svc := newChaosService(t, cfg)
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	ids := make([]string, 5)
	for i := range ids {
		rec := submitOK(t, ts.URL)
		ids[i] = rec.ID
		if final := waitTerminal(t, ts.URL, rec.ID, 60*time.Second); final.State != StateDone {
			t.Fatalf("job %d failed: %+v", i, final)
		}
	}
	if got := svc.Metrics().JobsEvicted.Value(); got != 2 {
		t.Fatalf("JobsEvicted = %d, want 2", got)
	}
	for _, id := range ids[:2] {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("evicted job %s: HTTP %d, want 404", id, resp.StatusCode)
		}
	}
	for _, id := range ids[2:] {
		var rec JobRecord
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &rec); code != http.StatusOK {
			t.Fatalf("retained job %s: HTTP %d, want 200", id, code)
		}
	}
	shutdownClean(t, svc)
}

// TestBatchAvgPST checks the guard that keeps count mismatches and
// non-finite simulator output away from the adaptive controller.
func TestBatchAvgPST(t *testing.T) {
	if _, err := batchAvgPST(nil, 1); err == nil {
		t.Fatal("empty PST slice should be rejected")
	}
	if _, err := batchAvgPST([]float64{0.5}, 2); err == nil {
		t.Fatal("count mismatch should be rejected")
	}
	if _, err := batchAvgPST([]float64{0.5, math.NaN()}, 2); err == nil {
		t.Fatal("NaN PST should be rejected")
	}
	if _, err := batchAvgPST([]float64{math.Inf(1), 0.5}, 2); err == nil {
		t.Fatal("infinite PST should be rejected")
	}
	avg, err := batchAvgPST([]float64{0.25, 0.75}, 2)
	if err != nil || avg != 0.5 {
		t.Fatalf("batchAvgPST = %v, %v; want 0.5, nil", avg, err)
	}
}

// TestColocationFallbackMetrics fails the first (co-located) compile
// of a 16-qubit backend: the tail is requeued, the head runs alone,
// every job still completes, and the fallback is counted with each
// compile call's latency observed separately.
func TestColocationFallbackMetrics(t *testing.T) {
	cfg := testConfig()
	cfg.Faults = faultinject.New(1).FailVisits(faultinject.SiteCompile, 1, 1)
	svc, err := New([]*arch.Device{arch.IBMQ16(0)}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Queue three co-locatable programs before starting the worker so
	// the first claim sees them all.
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	ids := make([]string, 3)
	for i := range ids {
		ids[i] = submitOK(t, ts.URL).ID
	}
	svc.Start()
	for _, id := range ids {
		if rec := waitTerminal(t, ts.URL, id, 60*time.Second); rec.State != StateDone {
			t.Fatalf("job %s should survive the fallback, got %+v", id, rec)
		}
	}

	m := svc.Metrics()
	if got := m.FallbackBatches.Value(); got != 1 {
		t.Fatalf("FallbackBatches = %d, want 1", got)
	}
	// One observation per compile call: the failed co-located attempt,
	// its head-alone fallback, and the compiles for the requeued tail —
	// exactly the number of compiler-site visits.
	wantCompiles := int64(cfg.Faults.Visits(faultinject.SiteCompile))
	if got := m.CompileLatency.Snapshot().Count; got != wantCompiles {
		t.Fatalf("CompileLatency count = %d, want %d (one per compile call)", got, wantCompiles)
	}
	shutdownClean(t, svc)
}

// TestShutdownDuringRequeueRace forces a shutdown while a worker is
// mid-fallback (failing compiles keep requeueing batch tails): every
// job must still reach a terminal state with an error and the gauges
// must return to zero. Run under -race this doubles as the
// requeue/shutdown data-race regression test.
func TestShutdownDuringRequeueRace(t *testing.T) {
	cfg := testConfig()
	cfg.MaxRetries = -1
	cfg.Faults = faultinject.New(1).FailVisits(faultinject.SiteCompile, 1, 0)
	svc, err := New([]*arch.Device{arch.IBMQ16(0)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	ids := make([]string, 6)
	for i := range ids {
		ids[i] = submitOK(t, ts.URL).ID
	}
	svc.Start()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil && err != context.DeadlineExceeded {
		t.Fatalf("forced shutdown: %v", err)
	}

	for _, id := range ids {
		rec, ok := svc.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if !rec.State.Terminal() {
			t.Fatalf("job %s not terminal after shutdown: %+v", id, rec)
		}
		if rec.State == StateFailed && rec.Error == "" {
			t.Fatalf("failed job %s has no error message", id)
		}
	}
	m := svc.Metrics()
	if got := m.InFlight.Value(); got != 0 {
		t.Fatalf("InFlight = %d after shutdown, want 0", got)
	}
	if got := m.QueueDepth.Value(); got != 0 {
		t.Fatalf("QueueDepth = %d after shutdown, want 0", got)
	}
}

// TestBreakerDisabled keeps the breaker off (negative threshold): any
// number of consecutive failures must leave it closed.
func TestBreakerDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.BreakerThreshold = -1
	cfg.MaxRetries = -1
	cfg.Faults = faultinject.New(1).FailVisits(faultinject.SiteCompile, 1, 4)
	svc := newChaosService(t, cfg)
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for i := 0; i < 4; i++ {
		rec := waitTerminal(t, ts.URL, submitOK(t, ts.URL).ID, 60*time.Second)
		if rec.State != StateFailed || !strings.Contains(rec.Error, "injected failure") {
			t.Fatalf("job %d: %+v", i, rec)
		}
	}
	if got := svc.Metrics().BreakerTrips.Value(); got != 0 {
		t.Fatalf("BreakerTrips = %d with breaker disabled, want 0", got)
	}
	backends := svc.Backends()
	if backends[0].Breaker.State != breakerClosed {
		t.Fatalf("breaker should stay closed when disabled, got %+v", backends[0].Breaker)
	}
	shutdownClean(t, svc)
}

// TestBackoffDelay pins the deterministic capped backoff schedule.
func TestBackoffDelay(t *testing.T) {
	cfg := Config{RetryBaseDelay: 50 * time.Millisecond, RetryMaxDelay: 2 * time.Second}
	want := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, 1600 * time.Millisecond,
		2 * time.Second, 2 * time.Second,
	}
	for attempt, w := range want {
		if got := backoffDelay(cfg, attempt); got != w {
			t.Fatalf("backoffDelay(%d) = %s, want %s", attempt, got, w)
		}
	}
	if got := backoffDelay(cfg, 64); got != cfg.RetryMaxDelay {
		t.Fatalf("overflowing attempt should cap at max, got %s", got)
	}
}
