package service

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/faultinject"
	"repro/internal/nisqbench"
)

// dispatchTrace submits the same job stream to a fresh, never-started
// 3-chip service and returns the JSON-encoded dispatch decisions.
// Workers never run, so the trace depends only on calibration and the
// evolving queue depths — exactly what must stay deterministic.
func dispatchTrace(t *testing.T, policy string) []byte {
	t.Helper()
	devices := []*arch.Device{arch.London(), arch.IBMQ16(0), arch.Tokyo(1)}
	cfg := testConfig()
	cfg.FleetPolicy = policy
	svc, err := New(devices, cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"bv_n3", "toffoli_3", "fredkin_3", "bv_n4", "peres_3", "bv_n3"}
	for round := 0; round < 4; round++ {
		for _, n := range names {
			if _, err := svc.Submit(nisqbench.MustGet(n)); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := svc.Fleet()
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(st.RecentDecisions)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestFleetDispatchDeterministic pins the acceptance criterion: the
// dispatch trace for one job stream is byte-identical at GOMAXPROCS
// 1, 2, and 8, for every policy.
func TestFleetDispatchDeterministic(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, policy := range []string{"speed", "fidelity", "fairness", "balanced"} {
		var want []byte
		for _, procs := range []int{1, 2, 8} {
			runtime.GOMAXPROCS(procs)
			got := dispatchTrace(t, policy)
			if want == nil {
				want = got
				continue
			}
			if string(got) != string(want) {
				t.Fatalf("%s: GOMAXPROCS=%d trace diverged:\n%s\nvs\n%s", policy, procs, got, want)
			}
		}
		if len(want) <= 2 {
			t.Fatalf("%s: empty dispatch trace", policy)
		}
	}
}

// TestFleetSpreadsAcrossChips: a stream of identical jobs on a fleet
// of identical chips must alternate between them under balanced (the
// queue-depth penalty), never pile onto one.
func TestFleetSpreadsAcrossChips(t *testing.T) {
	a, b := arch.London(), arch.London()
	a.Name, b.Name = "london-a", "london-b"
	svc, err := New([]*arch.Device{a, b}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := svc.Submit(nisqbench.MustGet("bv_n3")); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Fleet()
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st.Policy != "balanced" {
		t.Fatalf("default policy = %q, want balanced", st.Policy)
	}
	for _, d := range st.Devices {
		if d.Load.Dispatched != 4 {
			t.Fatalf("load not alternated: %s got %d of 8", d.Chip.Name, d.Load.Dispatched)
		}
	}
	// The trace alternates a,b,a,b…: equal chips tie-break to the
	// smaller name exactly when their queue depths match.
	for i, dec := range st.RecentDecisions {
		want := "london-a"
		if i%2 == 1 {
			want = "london-b"
		}
		if dec.Backend != want {
			t.Fatalf("decision %d routed to %s, want %s", i, dec.Backend, want)
		}
	}
}

// TestFleetViewAndMetrics drives a small workload end to end and
// checks GET /v1/fleet and the /metrics fleet section.
func TestFleetViewAndMetrics(t *testing.T) {
	svc := newTestService(t, testConfig())
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, submitOK(t, ts.URL).ID)
	}
	for _, id := range ids {
		waitTerminal(t, ts.URL, id, 60*time.Second)
	}
	shutdownClean(t, svc)

	var st FleetStatus
	if code := getJSON(t, ts.URL+"/v1/fleet", &st); code != 200 {
		t.Fatalf("GET /v1/fleet: HTTP %d", code)
	}
	if st.Policy != "balanced" || len(st.Devices) != 2 {
		t.Fatalf("fleet view: %+v", st)
	}
	if st.Dispatches != 3 {
		t.Fatalf("dispatches = %d, want 3", st.Dispatches)
	}
	var perDevice int64
	for _, d := range st.Devices {
		perDevice += d.Load.Dispatched
		if d.BreakerState != "closed" {
			t.Fatalf("%s breaker %q after healthy run", d.Chip.Name, d.BreakerState)
		}
	}
	if perDevice != st.Dispatches {
		t.Fatalf("per-device dispatched %d != fleet dispatches %d", perDevice, st.Dispatches)
	}
	if len(st.RecentDecisions) != 3 {
		t.Fatalf("decision trace has %d entries", len(st.RecentDecisions))
	}

	var snap MetricsSnapshot
	if code := getJSON(t, ts.URL+"/metrics", &snap); code != 200 {
		t.Fatalf("GET /metrics: HTTP %d", code)
	}
	if snap.Fleet == nil {
		t.Fatal("metrics snapshot missing fleet section")
	}
	if snap.Fleet.Policy != "balanced" || snap.Fleet.Dispatches != 3 || len(snap.Fleet.Devices) != 2 {
		t.Fatalf("metrics fleet section: %+v", snap.Fleet)
	}
}

// TestChaosBreakerMigration is the acceptance chaos case: jobs are
// spread over two identical chips, the first compile on one of them is
// made to fail with the breaker threshold at 1, and every job still
// queued for the tripped backend must migrate to the healthy one — no
// job lost, none duplicated, exactly the one faulted batch failed.
func TestChaosBreakerMigration(t *testing.T) {
	a, b := arch.London(), arch.London()
	a.Name, b.Name = "london-a", "london-b"
	cfg := chaosConfig()
	cfg.MaxColocate = 1
	cfg.MaxRetries = -1
	cfg.BreakerThreshold = 1
	cfg.BreakerCooldown = time.Minute // stay open for the whole test
	cfg.Faults = faultinject.New(1).FailVisits(faultinject.SiteCompile, 1, 1)
	svc, err := New([]*arch.Device{a, b}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-load the queue before the workers start so both backends hold
	// several assigned jobs when the fault fires.
	const jobs = 12
	for i := 0; i < jobs; i++ {
		if _, err := svc.Submit(nisqbench.MustGet("bv_n3")); err != nil {
			t.Fatal(err)
		}
	}
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	deadline := time.Now().Add(60 * time.Second)
	for {
		done := true
		for _, rec := range svc.Jobs() {
			if !rec.State.Terminal() {
				done = false
				break
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs not terminal: %+v", svc.Jobs())
		}
		time.Sleep(20 * time.Millisecond)
	}
	shutdownClean(t, svc)

	var doneN, failedN int
	seen := map[int]bool{}
	for _, rec := range svc.Jobs() {
		if seen[rec.Seq] {
			t.Fatalf("job %d appears twice", rec.Seq)
		}
		seen[rec.Seq] = true
		switch rec.State {
		case StateDone:
			doneN++
		case StateFailed:
			failedN++
			if !strings.Contains(rec.Error, "injected") {
				t.Fatalf("unexpected failure: %q", rec.Error)
			}
		}
	}
	if doneN+failedN != jobs {
		t.Fatalf("%d done + %d failed != %d submitted", doneN, failedN, jobs)
	}
	if failedN != 1 {
		t.Fatalf("%d jobs failed, want exactly the faulted batch", failedN)
	}

	st := svc.Fleet()
	if st.JobsMigrated < 1 {
		t.Fatalf("no jobs migrated off the tripped backend: %+v", st)
	}
	var perDevice, migrated int64
	for _, d := range st.Devices {
		perDevice += d.Load.Dispatched
		migrated += d.Migrated
	}
	if migrated != st.JobsMigrated {
		t.Fatalf("per-device migrated %d != fleet counter %d", migrated, st.JobsMigrated)
	}
	// Every migration re-dispatches, so total routing decisions are
	// the submissions plus the migrations.
	if perDevice != int64(jobs)+st.JobsMigrated || st.Dispatches != perDevice {
		t.Fatalf("dispatch accounting: per-device %d, fleet %d, migrated %d",
			perDevice, st.Dispatches, st.JobsMigrated)
	}
}
