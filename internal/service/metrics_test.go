package service

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 800 {
		t.Fatalf("counter: got %d, want 800", c.Value())
	}
	if g.Value() != 0 {
		t.Fatalf("gauge: got %d, want 0", g.Value())
	}
	g.Set(42)
	if g.Value() != 42 {
		t.Fatalf("gauge set: got %d", g.Value())
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5, 10})
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("empty histogram: %+v", s)
	}
	for _, v := range []float64{0.5, 1.5, 1.5, 4, 20} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count: got %d", s.Count)
	}
	if s.Min != 0.5 || s.Max != 20 {
		t.Fatalf("min/max: %+v", s)
	}
	if want := 27.5 / 5; s.Mean != want {
		t.Fatalf("mean: got %v want %v", s.Mean, want)
	}
	// The median observation (1.5) lands in the (1,2] bucket.
	if s.P50 < 1 || s.P50 > 2 {
		t.Fatalf("p50 outside its bucket: %v", s.P50)
	}
	// The 99th percentile is the overflow observation.
	if s.P99 != 20 {
		t.Fatalf("p99: got %v want 20", s.P99)
	}
}

// TestHistogramDropsNonFinite is the regression test for the
// metrics-poisoning bug: a single NaN or ±Inf observation used to
// corrupt sum/mean (and min/max) forever — and break the JSON /metrics
// encoding, which rejects non-finite floats. Such samples must now land
// in the dropped counter without touching any accumulator.
func TestHistogramDropsNonFinite(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	h.Observe(1.5)
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		h.Observe(v)
	}
	h.Observe(0.5)

	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count includes dropped samples: %+v", s)
	}
	if s.Dropped != 3 {
		t.Fatalf("dropped: got %d, want 3", s.Dropped)
	}
	if s.Sum != 2 || s.Min != 0.5 || s.Max != 1.5 {
		t.Fatalf("accumulators poisoned: %+v", s)
	}
	for name, v := range map[string]float64{
		"sum": s.Sum, "mean": s.Mean, "min": s.Min, "max": s.Max,
		"p50": s.P50, "p90": s.P90, "p99": s.P99,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s is non-finite: %v", name, v)
		}
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
}

// TestHistogramSingleSampleQuantiles: p50 (and every quantile) of one
// observation must equal that observation, not the raw midpoint of
// whatever bucket it landed in.
func TestHistogramSingleSampleQuantiles(t *testing.T) {
	for _, v := range []float64{0.3, 4, 7.5, 100} { // interior, edge-adjacent, overflow
		h := NewHistogram([]float64{1, 2, 5, 10})
		h.Observe(v)
		s := h.Snapshot()
		if s.P50 != v || s.P90 != v || s.P99 != v {
			t.Fatalf("single sample %v: quantiles %v/%v/%v, want all == %v", v, s.P50, s.P90, s.P99, v)
		}
	}
}

// TestHistogramQuantileClampedToObservedRange: bucket edges outside the
// observed [min, max] must not leak into the estimate.
func TestHistogramQuantileClampedToObservedRange(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	// Both samples land in the (1,10] bucket; its raw midpoint 5.5 is
	// outside the observed range [4, 4.5].
	h.Observe(4)
	h.Observe(4.5)
	s := h.Snapshot()
	if s.P50 < s.Min || s.P50 > s.Max {
		t.Fatalf("p50 %v escaped the observed range [%v, %v]", s.P50, s.Min, s.Max)
	}
}

// TestHistogramDuplicateBounds: duplicate bucket edges create
// permanently empty zero-width buckets; quantile estimation must skip
// them and still report values inside the observed range.
func TestHistogramDuplicateBounds(t *testing.T) {
	h := NewHistogram([]float64{1, 1, 2, 2, 5})
	for _, v := range []float64{0.5, 1.5, 3} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count: %+v", s)
	}
	for _, q := range []float64{s.P50, s.P90, s.P99} {
		if q < s.Min || q > s.Max {
			t.Fatalf("quantile %v outside [%v, %v]", q, s.Min, s.Max)
		}
	}
	if s.P50 < 1 || s.P50 > 2 {
		t.Fatalf("median observation 1.5 should estimate inside (1,2], got %v", s.P50)
	}
}

// TestHistogramEmptyBuckets: a distribution with large gaps (most
// buckets empty) must still produce in-range quantiles.
func TestHistogramEmptyBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5, 10, 50, 100})
	h.Observe(0.1)
	h.Observe(99)
	s := h.Snapshot()
	if s.P50 < s.Min || s.P50 > s.Max || s.P99 < s.Min || s.P99 > s.Max {
		t.Fatalf("quantiles escaped observed range: %+v", s)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram([]float64{0.5, 1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 250; j++ {
				h.Observe(0.75)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 2000 {
		t.Fatalf("lost observations: %+v", s)
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.JobsAccepted.Add(10)
	r.JobsCompleted.Add(8)
	r.JobsFailed.Add(2)
	r.BatchesExecuted.Add(5)
	r.ColocatedBatches.Add(3)
	r.ColocatedJobs.Add(6)
	r.BatchSize.Observe(2)
	r.PST.Observe(0.9)
	s := r.Snapshot()
	if s.Batches.AvgSize != 2 || s.Batches.TRF != 2 {
		t.Fatalf("derived batch stats: %+v", s.Batches)
	}
	if s.Batches.ColocationRate != 0.6 {
		t.Fatalf("colocation rate: %+v", s.Batches)
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back MetricsSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Jobs.Accepted != 10 {
		t.Fatalf("round trip lost data: %+v", back.Jobs)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r1 := NewRegistry()
	r2 := NewRegistry()
	r1.PublishExpvar()
	r2.PublishExpvar() // must not panic on the duplicate name
	if got := expvarReg.Load(); got != r2 {
		t.Fatal("latest registry should win")
	}
}
