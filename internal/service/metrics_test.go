package service

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 800 {
		t.Fatalf("counter: got %d, want 800", c.Value())
	}
	if g.Value() != 0 {
		t.Fatalf("gauge: got %d, want 0", g.Value())
	}
	g.Set(42)
	if g.Value() != 42 {
		t.Fatalf("gauge set: got %d", g.Value())
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5, 10})
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("empty histogram: %+v", s)
	}
	for _, v := range []float64{0.5, 1.5, 1.5, 4, 20} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count: got %d", s.Count)
	}
	if s.Min != 0.5 || s.Max != 20 {
		t.Fatalf("min/max: %+v", s)
	}
	if want := 27.5 / 5; s.Mean != want {
		t.Fatalf("mean: got %v want %v", s.Mean, want)
	}
	// The median observation (1.5) lands in the (1,2] bucket.
	if s.P50 < 1 || s.P50 > 2 {
		t.Fatalf("p50 outside its bucket: %v", s.P50)
	}
	// The 99th percentile is the overflow observation.
	if s.P99 != 20 {
		t.Fatalf("p99: got %v want 20", s.P99)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram([]float64{0.5, 1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 250; j++ {
				h.Observe(0.75)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 2000 {
		t.Fatalf("lost observations: %+v", s)
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.JobsAccepted.Add(10)
	r.JobsCompleted.Add(8)
	r.JobsFailed.Add(2)
	r.BatchesExecuted.Add(5)
	r.ColocatedBatches.Add(3)
	r.ColocatedJobs.Add(6)
	r.BatchSize.Observe(2)
	r.PST.Observe(0.9)
	s := r.Snapshot()
	if s.Batches.AvgSize != 2 || s.Batches.TRF != 2 {
		t.Fatalf("derived batch stats: %+v", s.Batches)
	}
	if s.Batches.ColocationRate != 0.6 {
		t.Fatalf("colocation rate: %+v", s.Batches)
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back MetricsSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Jobs.Accepted != 10 {
		t.Fatalf("round trip lost data: %+v", back.Jobs)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r1 := NewRegistry()
	r2 := NewRegistry()
	r1.PublishExpvar()
	r2.PublishExpvar() // must not panic on the duplicate name
	if got := expvarReg.Load(); got != r2 {
		t.Fatal("latest registry should win")
	}
}
