package nisqbench

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/circuit"
)

func TestAllBenchmarksBuildAndValidate(t *testing.T) {
	for _, name := range Names() {
		c := MustGet(name)
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if c.MeasureCount() != c.NumQubits {
			t.Errorf("%s: %d measures for %d qubits", name, c.MeasureCount(), c.NumQubits)
		}
		if c.RawCNOTCount() == 0 && name != "bv_n2" {
			t.Errorf("%s: no CNOTs", name)
		}
	}
}

func TestTableIInventory(t *testing.T) {
	// The registry must contain exactly the Table I programs.
	wantTiny := []string{"bv_n3", "bv_n4", "fredkin_3", "peres_3", "toffoli_3"}
	wantSmall := []string{"3_17_13", "4mod5-v1_22", "alu-v0_27", "decod24-v2_43", "mod5mils_65"}
	if got := ByClass(Tiny); !equalStrings(got, wantTiny) {
		t.Fatalf("tiny = %v, want %v", got, wantTiny)
	}
	if got := ByClass(Small); !equalStrings(got, wantSmall) {
		t.Fatalf("small = %v, want %v", got, wantSmall)
	}
	if got := len(ByClass(Large)); got != 16 {
		t.Fatalf("large count = %d, want 16", got)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
	if _, err := Class("nope"); err == nil {
		t.Fatal("unknown class must error")
	}
}

func TestClassReporting(t *testing.T) {
	if cl, _ := Class("bv_n3"); cl != Tiny {
		t.Fatalf("bv_n3 class = %v", cl)
	}
	if cl, _ := Class("qft_16"); cl != Large {
		t.Fatalf("qft_16 class = %v", cl)
	}
	if Tiny.String() != "tiny" || Small.String() != "small" || Large.String() != "large" {
		t.Fatal("SizeClass strings")
	}
}

func TestBVStructure(t *testing.T) {
	c := BernsteinVazirani(4)
	if c.NumQubits != 4 {
		t.Fatalf("qubits = %d", c.NumQubits)
	}
	if got := c.RawCNOTCount(); got != 3 {
		t.Fatalf("bv_n4 CNOTs = %d, want 3", got)
	}
}

func TestToffoliFredkinPeresCNOTs(t *testing.T) {
	if got := Toffoli().RawCNOTCount(); got != 6 {
		t.Fatalf("toffoli CNOTs = %d, want 6", got)
	}
	if got := Fredkin().RawCNOTCount(); got != 8 {
		t.Fatalf("fredkin CNOTs = %d, want 8", got)
	}
	if got := Peres().RawCNOTCount(); got != 7 {
		t.Fatalf("peres CNOTs = %d, want 7", got)
	}
}

func TestQFTCNOTCount(t *testing.T) {
	// QFT(n) has n(n-1)/2 controlled phases, each 2 CNOTs.
	c := QFT(10)
	if got, want := c.RawCNOTCount(), 90; got != want {
		t.Fatalf("qft_10 CNOTs = %d, want %d", got, want)
	}
	if got, want := QFT(16).RawCNOTCount(), 240; got != want {
		t.Fatalf("qft_16 CNOTs = %d, want %d", got, want)
	}
}

func TestIsingCNOTCount(t *testing.T) {
	c := IsingModel(10, 5)
	if got, want := c.RawCNOTCount(), 90; got != want { // 9 pairs x 2 x 5 steps
		t.Fatalf("ising CNOTs = %d, want %d", got, want)
	}
}

func TestSyntheticRevLibSignatures(t *testing.T) {
	for _, sig := range revlibSigs {
		c := MustGet(sig.name)
		if c.NumQubits != sig.qubits {
			t.Errorf("%s qubits = %d, want %d", sig.name, c.NumQubits, sig.qubits)
		}
		if got := c.RawCNOTCount(); got != sig.cnots {
			t.Errorf("%s CNOTs = %d, want %d", sig.name, got, sig.cnots)
		}
	}
}

func TestSyntheticRevLibDeterministic(t *testing.T) {
	a := SyntheticRevLib("ham7_104", 7, 149)
	b := SyntheticRevLib("ham7_104", 7, 149)
	if len(a.Gates) != len(b.Gates) {
		t.Fatal("same name must give same circuit")
	}
	for i := range a.Gates {
		if a.Gates[i].String() != b.Gates[i].String() {
			t.Fatalf("gate %d differs: %v vs %v", i, a.Gates[i], b.Gates[i])
		}
	}
	c := SyntheticRevLib("other", 7, 149)
	same := len(a.Gates) == len(c.Gates)
	if same {
		for i := range a.Gates {
			if a.Gates[i].String() != c.Gates[i].String() {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different names must differ")
	}
}

func TestSyntheticRevLibIsNCTOnly(t *testing.T) {
	// Only classical-permutation building blocks (plus the Toffoli
	// decomposition's h/t/tdg) and measurements may appear.
	allowed := map[string]bool{
		circuit.GateX: true, circuit.GateCX: true, circuit.GateH: true,
		circuit.GateT: true, circuit.GateTdg: true, circuit.GateMeasure: true,
	}
	c := MustGet("alu-v0_27")
	for _, g := range c.Gates {
		if !allowed[g.Name] {
			t.Fatalf("unexpected gate %q in synthetic RevLib circuit", g.Name)
		}
	}
}

func TestTinyBenchmarksAreTiny(t *testing.T) {
	for _, name := range ByClass(Tiny) {
		c := MustGet(name)
		if c.NumQubits > 5 {
			t.Errorf("%s: %d qubits, tiny should be <= 5", name, c.NumQubits)
		}
		if c.RawCNOTCount() > 60 {
			t.Errorf("%s: %d CNOTs, too many for tiny", name, c.RawCNOTCount())
		}
	}
}

func TestExportQASMRoundTrip(t *testing.T) {
	dir := t.TempDir()
	n, err := ExportQASM(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(Names()) {
		t.Fatalf("exported %d of %d", n, len(Names()))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != n {
		t.Fatalf("files = %d", len(entries))
	}
	// Round-trip a representative subset through the parser.
	for _, name := range []string{"bv_n4", "qft_10", "ham7_104", "grover_n2"} {
		f, err := os.Open(filepath.Join(dir, name+".qasm"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := circuit.ParseQASM(name, f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := MustGet(name)
		if got.NumQubits != want.NumQubits || got.RawCNOTCount() != want.RawCNOTCount() ||
			got.MeasureCount() != want.MeasureCount() {
			t.Fatalf("%s round-trip mismatch: %d/%d/%d vs %d/%d/%d", name,
				got.NumQubits, got.RawCNOTCount(), got.MeasureCount(),
				want.NumQubits, want.RawCNOTCount(), want.MeasureCount())
		}
	}
}
