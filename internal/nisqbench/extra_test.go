package nisqbench

import "testing"

func TestExtraSuiteRegistered(t *testing.T) {
	want := []string{"adder_n4", "dj_n4", "ghz_n4", "ghz_n8", "grover_n2", "qaoa_n6", "wstate_n3"}
	got := ByClass(Extra)
	if len(got) != len(want) {
		t.Fatalf("extra = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("extra = %v, want %v", got, want)
		}
	}
	if Extra.String() != "extra" {
		t.Fatal("Extra string")
	}
}

func TestExtraBenchmarksValidate(t *testing.T) {
	for _, name := range ByClass(Extra) {
		c := MustGet(name)
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if c.MeasureCount() != c.NumQubits {
			t.Errorf("%s: %d measures for %d qubits", name, c.MeasureCount(), c.NumQubits)
		}
	}
}

func TestGHZStructure(t *testing.T) {
	c := GHZ(8)
	if c.NumQubits != 8 || c.RawCNOTCount() != 7 {
		t.Fatalf("ghz_n8: %d qubits %d CNOTs", c.NumQubits, c.RawCNOTCount())
	}
}

func TestQAOACNOTCount(t *testing.T) {
	// Ring of 6 with 2 layers: 6 edges x 2 CNOTs x 2 layers = 24.
	if got := QAOAMaxCutRing(6, 2).RawCNOTCount(); got != 24 {
		t.Fatalf("qaoa CNOTs = %d, want 24", got)
	}
}

func TestExtraConstructorsPanicOnBadArgs(t *testing.T) {
	for name, f := range map[string]func(){
		"ghz":    func() { GHZ(1) },
		"wstate": func() { WState(4) },
		"dj":     func() { DeutschJozsa(1) },
		"qaoa":   func() { QAOAMaxCutRing(2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: bad args must panic", name)
				}
			}()
			f()
		}()
	}
}
