package nisqbench

import (
	"fmt"
	"math"

	"repro/internal/circuit"
)

// Extra is the size class of benchmarks beyond the paper's Table I:
// common NISQ kernels (GHZ, W state, adders, Grover, Deutsch-Jozsa,
// QAOA) useful for exercising the mapper on different interaction
// structures.
const Extra SizeClass = 3

func init() {
	add := func(name string, build func() *circuit.Circuit) {
		registry[name] = Spec{Name: name, Class: Extra, Build: build}
	}
	add("ghz_n4", func() *circuit.Circuit { return GHZ(4) })
	add("ghz_n8", func() *circuit.Circuit { return GHZ(8) })
	add("wstate_n3", func() *circuit.Circuit { return WState(3) })
	add("adder_n4", Adder4)
	add("grover_n2", Grover2)
	add("dj_n4", func() *circuit.Circuit { return DeutschJozsa(4) })
	add("qaoa_n6", func() *circuit.Circuit { return QAOAMaxCutRing(6, 2) })
}

// GHZ returns the n-qubit GHZ-state preparation circuit: H on qubit 0
// followed by a CNOT chain. Its ideal output is an even mixture of
// all-zeros and all-ones; the modal-outcome convention makes all-zeros
// the PST target.
func GHZ(n int) *circuit.Circuit {
	if n < 2 {
		panic("nisqbench: GHZ needs >= 2 qubits")
	}
	c := circuit.New(fmt.Sprintf("ghz_n%d", n), n)
	c.H(0)
	for q := 0; q+1 < n; q++ {
		c.CX(q, q+1)
	}
	return c.MeasureAll()
}

// WState returns the 3-qubit W-state preparation
// (|100>+|010>+|001>)/sqrt(3) using controlled rotations decomposed
// into ry and CNOTs.
func WState(n int) *circuit.Circuit {
	if n != 3 {
		panic("nisqbench: WState implemented for 3 qubits")
	}
	c := circuit.New("wstate_n3", 3)
	// ry(theta0) puts amplitude sqrt(1/3) on |1> of qubit 0.
	theta0 := 2 * math.Acos(math.Sqrt(1.0/3.0))
	c.RY(theta0, 0)
	// Controlled-H-like rotation on qubit 1 conditioned on qubit 0
	// being |0>: implemented with x-sandwiched controlled-ry.
	c.X(0)
	appendCRY(c, math.Pi/2, 0, 1)
	c.X(0)
	// Spread from qubit 1 to qubit 2 conditioned on both being 0.
	c.X(0)
	c.X(1)
	appendCCX(c, 0, 1, 2)
	c.X(0)
	c.X(1)
	return c.MeasureAll()
}

// appendCRY appends a controlled-RY(theta) via two CNOTs.
func appendCRY(c *circuit.Circuit, theta float64, control, target int) {
	c.RY(theta/2, target)
	c.CX(control, target)
	c.RY(-theta/2, target)
	c.CX(control, target)
}

// appendCCX appends a decomposed Toffoli.
func appendCCX(c *circuit.Circuit, a, b, t int) { circuit.AppendToffoli(c, a, b, t) }

// Adder4 returns a 4-qubit ripple 1-bit full adder (QASMBench's
// adder_n4 shape): inputs a=1, b=1, cin=0 -> sum=0, cout=1.
func Adder4() *circuit.Circuit {
	c := circuit.New("adder_n4", 4)
	// qubits: 0=a, 1=b, 2=sum/cin, 3=cout
	c.X(0)
	c.X(1)
	circuit.AppendToffoli(c, 0, 1, 3) // carry
	c.CX(0, 1)
	circuit.AppendToffoli(c, 1, 2, 3) // carry propagate
	c.CX(1, 2)                        // sum
	c.CX(0, 1)                        // restore b
	return c.MeasureAll()
}

// Grover2 returns a 2-qubit Grover search marking |11> (one iteration
// suffices at n=2: the output is deterministically |11>).
func Grover2() *circuit.Circuit {
	c := circuit.New("grover_n2", 2)
	c.H(0).H(1)
	// Oracle: flip phase of |11> = CZ.
	c.CZ(0, 1)
	// Diffusion: H X cz X H on both qubits.
	c.H(0).H(1)
	c.X(0).X(1)
	c.CZ(0, 1)
	c.X(0).X(1)
	c.H(0).H(1)
	return c.MeasureAll()
}

// DeutschJozsa returns an n-qubit Deutsch-Jozsa circuit for a balanced
// oracle f(x) = x_0 XOR ... (parity of the first n-1 bits): the data
// qubits deterministically read all ones.
func DeutschJozsa(n int) *circuit.Circuit {
	if n < 2 {
		panic("nisqbench: DJ needs >= 2 qubits")
	}
	c := circuit.New(fmt.Sprintf("dj_n%d", n), n)
	anc := n - 1
	c.X(anc)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for q := 0; q < n-1; q++ {
		c.CX(q, anc) // balanced parity oracle
	}
	for q := 0; q < n-1; q++ {
		c.H(q)
	}
	c.H(anc)
	c.X(anc)
	return c.MeasureAll()
}

// QAOAMaxCutRing returns a p-layer QAOA MaxCut ansatz on an n-vertex
// ring graph with fixed angles; each ZZ term costs two CNOTs. It
// exercises the mapper with ring-structured interactions.
func QAOAMaxCutRing(n, p int) *circuit.Circuit {
	if n < 3 || p < 1 {
		panic("nisqbench: QAOA needs n >= 3 and p >= 1")
	}
	c := circuit.New(fmt.Sprintf("qaoa_n%d", n), n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	gamma, beta := 0.7, 0.4
	for layer := 0; layer < p; layer++ {
		for q := 0; q < n; q++ {
			u, v := q, (q+1)%n
			c.CX(u, v)
			c.RZ(gamma, v)
			c.CX(u, v)
		}
		for q := 0; q < n; q++ {
			c.RX(2*beta, q)
		}
	}
	return c.MeasureAll()
}
