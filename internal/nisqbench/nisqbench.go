// Package nisqbench provides the NISQ benchmark programs of the paper's
// Table I. The algorithmically well-specified programs
// (Bernstein-Vazirani, Toffoli, Fredkin, Peres, QFT, Ising model) are
// constructed exactly. The RevLib reversible-arithmetic circuits, whose
// original gate lists are not redistributable here, are generated as
// seeded synthetic NCT (NOT / CNOT / Toffoli) circuits matching the
// published qubit and CNOT-count signatures; because NCT circuits are
// classical permutations, their noiseless output on |0...0> is a
// deterministic bitstring, just like the originals — which is what the
// PST metric requires.
package nisqbench

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/circuit"
)

// SizeClass groups the benchmarks as in Table I.
type SizeClass int

// Size classes from Table I.
const (
	Tiny SizeClass = iota
	Small
	Large
)

func (s SizeClass) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Large:
		return "large"
	case Extra:
		return "extra"
	}
	return fmt.Sprintf("SizeClass(%d)", int(s))
}

// Spec describes one benchmark: how to build it and its class.
type Spec struct {
	Name  string
	Class SizeClass
	Build func() *circuit.Circuit
}

// revlibSig holds the published (qubits, CNOTs) signature of a RevLib
// circuit that we synthesize. Gate totals follow from the NCT mix.
type revlibSig struct {
	name   string
	class  SizeClass
	qubits int
	cnots  int
}

var revlibSigs = []revlibSig{
	{"3_17_13", Small, 3, 17},
	{"decod24-v2_43", Small, 4, 22},
	{"4mod5-v1_22", Small, 5, 11},
	{"mod5mils_65", Small, 5, 16},
	{"alu-v0_27", Small, 5, 17},
	{"aj-e11_165", Large, 5, 69},
	{"4gt4-v0_72", Large, 6, 113},
	{"alu-bdd_288", Large, 7, 38},
	{"ex2_227", Large, 7, 275},
	{"ham7_104", Large, 7, 149},
	{"sys6-v0_111", Large, 10, 98},
	{"rd53_311", Large, 13, 124},
	{"alu-v2_31", Large, 5, 198},
	{"C17_204", Large, 7, 205},
	{"cnt3-5_180", Large, 16, 215},
	{"sf_276", Large, 6, 336},
	{"sym9_146", Large, 12, 148},
}

var registry = buildRegistry()

func buildRegistry() map[string]Spec {
	reg := map[string]Spec{}
	add := func(name string, class SizeClass, build func() *circuit.Circuit) {
		reg[name] = Spec{Name: name, Class: class, Build: build}
	}
	add("bv_n3", Tiny, func() *circuit.Circuit { return BernsteinVazirani(3) })
	add("bv_n4", Tiny, func() *circuit.Circuit { return BernsteinVazirani(4) })
	add("bv_n10", Large, func() *circuit.Circuit { return BernsteinVazirani(10) })
	add("peres_3", Tiny, Peres)
	add("toffoli_3", Tiny, Toffoli)
	add("fredkin_3", Tiny, Fredkin)
	add("qft_10", Large, func() *circuit.Circuit { return QFT(10) })
	add("qft_16", Large, func() *circuit.Circuit { return QFT(16) })
	add("ising_model_10", Large, func() *circuit.Circuit { return IsingModel(10, 5) })
	for _, sig := range revlibSigs {
		sig := sig
		add(sig.name, sig.class, func() *circuit.Circuit {
			return SyntheticRevLib(sig.name, sig.qubits, sig.cnots)
		})
	}
	return reg
}

// Get builds the named benchmark circuit. The returned circuit ends with
// measurements on every qubit.
func Get(name string) (*circuit.Circuit, error) {
	spec, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("nisqbench: unknown benchmark %q", name)
	}
	return spec.Build(), nil
}

// MustGet is Get but panics on unknown names; for tests and examples.
func MustGet(name string) *circuit.Circuit {
	c, err := Get(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Names returns all benchmark names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByClass returns the benchmark names of one size class, sorted.
func ByClass(class SizeClass) []string {
	var out []string
	for n, s := range registry {
		if s.Class == class {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Class returns the size class of a known benchmark.
func Class(name string) (SizeClass, error) {
	spec, ok := registry[name]
	if !ok {
		return 0, fmt.Errorf("nisqbench: unknown benchmark %q", name)
	}
	return spec.Class, nil
}

// BernsteinVazirani returns the n-qubit BV circuit for the hidden string
// of all ones over n-1 data qubits (qubit n-1 is the ancilla). The
// noiseless outcome on the data qubits is the hidden string.
func BernsteinVazirani(n int) *circuit.Circuit {
	if n < 2 {
		panic("nisqbench: BV needs >= 2 qubits")
	}
	c := circuit.New(fmt.Sprintf("bv_n%d", n), n)
	anc := n - 1
	for q := 0; q < n-1; q++ {
		c.H(q)
	}
	c.X(anc)
	c.H(anc)
	for q := 0; q < n-1; q++ {
		c.CX(q, anc)
	}
	for q := 0; q < n-1; q++ {
		c.H(q)
	}
	c.H(anc)
	c.X(anc) // uncompute the ancilla to |0> for a clean deterministic output
	return c.MeasureAll()
}

// Toffoli returns the decomposed Toffoli benchmark: controls prepared in
// |11> so the target deterministically flips (|111> out).
func Toffoli() *circuit.Circuit {
	c := circuit.New("toffoli_3", 3)
	c.X(0).X(1)
	circuit.AppendToffoli(c, 0, 1, 2)
	return c.MeasureAll()
}

// Peres returns the Peres-gate benchmark (Toffoli followed by a CNOT on
// the controls), inputs prepared as |11>.
func Peres() *circuit.Circuit {
	c := circuit.New("peres_3", 3)
	c.X(0).X(1)
	circuit.AppendToffoli(c, 0, 1, 2)
	c.CX(0, 1)
	return c.MeasureAll()
}

// Fredkin returns the controlled-SWAP benchmark with the control and
// first target prepared in |1>, so the targets swap (|101> out). The
// standard decomposition is CX(b,a); CCX(c,a,b); CX(b,a).
func Fredkin() *circuit.Circuit {
	c := circuit.New("fredkin_3", 3)
	c.X(0).X(1)
	c.CX(2, 1)
	circuit.AppendToffoli(c, 0, 1, 2)
	c.CX(2, 1)
	return c.MeasureAll()
}

// QFT returns the n-qubit quantum Fourier transform with each controlled
// phase decomposed into two CNOTs and three u1 rotations (the final
// qubit-reversal SWAP network is omitted, as is conventional for mapping
// benchmarks).
func QFT(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("qft_%d", n), n)
	for i := 0; i < n; i++ {
		c.H(i)
		for j := i + 1; j < n; j++ {
			theta := math.Pi / math.Pow(2, float64(j-i))
			appendCU1(c, theta, j, i)
		}
	}
	return c.MeasureAll()
}

// appendCU1 appends a controlled-u1(theta) using 2 CNOTs.
func appendCU1(c *circuit.Circuit, theta float64, control, target int) {
	c.RZ(theta/2, control)
	c.CX(control, target)
	c.RZ(-theta/2, target)
	c.CX(control, target)
	c.RZ(theta/2, target)
}

// IsingModel returns a trotterized 1-D transverse-field Ising chain on n
// qubits with the given number of Trotter steps. Each step applies a ZZ
// interaction (2 CNOTs) on every nearest-neighbor pair plus RX fields.
func IsingModel(n, steps int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("ising_model_%d", n), n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for s := 0; s < steps; s++ {
		for q := 0; q+1 < n; q++ {
			c.CX(q, q+1)
			c.RZ(0.3, q+1)
			c.CX(q, q+1)
		}
		for q := 0; q < n; q++ {
			c.RX(0.2, q)
		}
	}
	return c.MeasureAll()
}

// SyntheticRevLib generates a deterministic classical-reversible (NCT)
// circuit with the given qubit count whose CNOT count (after Toffoli
// decomposition) is exactly targetCNOTs. The gate sequence is seeded by
// the circuit name, so the same name always produces the same circuit.
// Two-qubit interactions have a locality bias (geometrically distributed
// operand distance) to mimic the structure of real arithmetic circuits.
func SyntheticRevLib(name string, qubits, targetCNOTs int) *circuit.Circuit {
	if qubits < 3 {
		panic("nisqbench: synthetic RevLib circuits need >= 3 qubits")
	}
	rng := rand.New(rand.NewSource(seedFromName(name)))
	c := circuit.New(name, qubits)
	// Prepare a non-trivial basis input so the permutation output isn't
	// |0...0>.
	for q := 0; q < qubits; q += 2 {
		c.X(q)
	}
	pick2 := func() (int, int) {
		a := rng.Intn(qubits)
		// Geometric-ish distance bias: mostly neighbors.
		d := 1 + rng.Intn(2) + rng.Intn(2)
		b := a + d
		if rng.Intn(2) == 0 {
			b = a - d
		}
		if b < 0 || b >= qubits {
			b = (a + d) % qubits
		}
		if a == b {
			b = (a + 1) % qubits
		}
		return a, b
	}
	cnots := 0
	for cnots < targetCNOTs {
		remaining := targetCNOTs - cnots
		switch {
		case remaining >= 6 && rng.Float64() < 0.45:
			a, b := pick2()
			t := rng.Intn(qubits)
			for t == a || t == b {
				t = rng.Intn(qubits)
			}
			circuit.AppendToffoli(c, a, b, t)
			cnots += 6
		default:
			a, b := pick2()
			c.CX(a, b)
			cnots++
		}
		if rng.Float64() < 0.25 {
			c.X(rng.Intn(qubits))
		}
	}
	return c.MeasureAll()
}

func seedFromName(name string) int64 {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int64(h & math.MaxInt64)
}

// ExportQASM writes every registered benchmark to dir as
// "<name>.qasm" in OpenQASM 2.0, returning the file count. Slashes in
// benchmark names are replaced with dashes.
func ExportQASM(dir string) (int, error) {
	n := 0
	for _, name := range Names() {
		c := MustGet(name)
		path := filepath.Join(dir, strings.ReplaceAll(name, "/", "-")+".qasm")
		f, err := os.Create(path)
		if err != nil {
			return n, fmt.Errorf("nisqbench: export %s: %w", name, err)
		}
		err = circuit.WriteQASM(f, c)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return n, fmt.Errorf("nisqbench: export %s: %w", name, err)
		}
		n++
	}
	return n, nil
}
