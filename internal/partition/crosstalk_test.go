package partition

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/community"
)

// cxHeavy returns a 2-qubit circuit with the given CNOT count, so CNOT
// density (and with it CDAP's placement order) is under test control.
func cxHeavy(name string, cnots int) *circuit.Circuit {
	c := circuit.New(name, 2)
	for i := 0; i < cnots; i++ {
		c.CX(0, 1)
	}
	c.MeasureAll()
	return c
}

// regionsHostile reports whether any link of region a forms a
// characterized hostile pair (ratio >= 2) with any link of region b.
func regionsHostile(d *arch.Device, a, b []int) bool {
	for _, ea := range d.Coupling.InducedEdges(a) {
		for _, eb := range d.Coupling.InducedEdges(b) {
			if d.CrosstalkRatio(ea, eb) >= 2 || d.CrosstalkRatio(eb, ea) >= 2 {
				return true
			}
		}
	}
	return false
}

// TestCDAPAvoidsHostileCoLocation is the property the tentpole claims:
// on a chip where every adjacent link pair is hostile but equal-quality
// distant regions exist, CDAP must never place two programs on regions
// whose links form a hostile pair. The uniform line makes every
// placement identical in base EPST, so only the crosstalk penalty can
// break the tie — and a gap of one qubit between regions always
// suffices to escape it.
func TestCDAPAvoidsHostileCoLocation(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		d := arch.Linear(10, 0.02, 0.02)
		d.Crosstalk = arch.GenerateHostileCrosstalk(d, seed, 1, 4, 6) // every pair hostile
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		tree := community.Build(d, 0.95)
		progs := []*circuit.Circuit{cxHeavy("p0", 8), cxHeavy("p1", 4)}
		res, err := CDAP(d, tree, progs)
		if err != nil {
			t.Fatal(err)
		}
		r0, r1 := res.Assignments[0].Region, res.Assignments[1].Region
		if regionsHostile(d, r0, r1) {
			t.Errorf("seed %d: CDAP co-scheduled hostile regions %v and %v", seed, r0, r1)
		}
	}
}

// TestCDAPHostilePenaltyHasTeeth verifies the property test is not
// vacuous: the crosstalk-blind walk (no matrix) packs the same two
// programs onto regions that WOULD be hostile under the matrix, so the
// avoidance above is the penalty's doing, not an accident of tie-breaks.
func TestCDAPHostilePenaltyHasTeeth(t *testing.T) {
	d := arch.Linear(10, 0.02, 0.02)
	matrix := arch.GenerateHostileCrosstalk(d, 1, 1, 4, 6)
	tree := community.Build(d, 0.95)
	progs := []*circuit.Circuit{cxHeavy("p0", 8), cxHeavy("p1", 4)}
	res, err := CDAP(d, tree, progs) // matrix-free walk
	if err != nil {
		t.Fatal(err)
	}
	d.Crosstalk = matrix // judge the blind placement under the matrix
	if !regionsHostile(d, res.Assignments[0].Region, res.Assignments[1].Region) {
		t.Skip("blind CDAP happened to pick benign regions; property test not strengthened by this topology")
	}
}

// TestCDAPMatrixKeepsQuality: the penalty must steer placement, not
// wreck it — regions stay connected, disjoint, and correctly sized on
// a real topology with a partially hostile matrix.
func TestCDAPMatrixQualityOnIBMQ16(t *testing.T) {
	d := arch.IBMQ16(3)
	d.Crosstalk = arch.GenerateHostileCrosstalk(d, 7, 0.3, 3, 5)
	tree := community.Build(d, 0.95)
	progs := []*circuit.Circuit{cxHeavy("p0", 6), cxHeavy("p1", 5), cxHeavy("p2", 4)}
	res, err := CDAP(d, tree, progs)
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{}
	for pi, a := range res.Assignments {
		if len(a.Region) != 2 {
			t.Fatalf("program %d region %v wrong size", pi, a.Region)
		}
		if !d.Coupling.SubsetConnected(a.Region) {
			t.Fatalf("program %d region %v not connected", pi, a.Region)
		}
		for _, q := range a.Region {
			if used[q] {
				t.Fatalf("qubit %d assigned twice", q)
			}
			used[q] = true
		}
	}
}

// TestCDAPMatrixFreeUnchanged pins the fallback: with no matrix the
// placed-edges plumbing must not alter assignments. (The full-workload
// byte-identity sweep lives in the root fingerprint tests; this is the
// unit-level version.)
func TestCDAPMatrixFreeUnchanged(t *testing.T) {
	d := arch.IBMQ16(3)
	tree := community.Build(d, 0.95)
	progs := []*circuit.Circuit{cxHeavy("p0", 6), cxHeavy("p1", 5)}
	a, err := CDAP(d, tree, progs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CDAP(d, tree, progs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if !equalInts(a.Assignments[i].Region, b.Assignments[i].Region) ||
			!equalInts(a.Assignments[i].InitialMapping, b.Assignments[i].InitialMapping) {
			t.Fatalf("program %d: repeated matrix-free CDAP differs", i)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
