package partition

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/community"
	"repro/internal/graph"
	"repro/internal/nisqbench"
)

func checkResult(t *testing.T, d *arch.Device, progs []*circuit.Circuit, res *Result) {
	t.Helper()
	if len(res.Assignments) != len(progs) {
		t.Fatalf("assignments = %d, want %d", len(res.Assignments), len(progs))
	}
	used := map[int]int{}
	for pi, a := range res.Assignments {
		if a.Program != pi {
			t.Fatalf("assignment %d has Program %d", pi, a.Program)
		}
		if len(a.Region) != progs[pi].NumQubits {
			t.Fatalf("program %d region size %d, want %d", pi, len(a.Region), progs[pi].NumQubits)
		}
		for _, q := range a.Region {
			if prev, dup := used[q]; dup {
				t.Fatalf("qubit %d granted to programs %d and %d", q, prev, pi)
			}
			used[q] = pi
		}
		if len(a.InitialMapping) != progs[pi].NumQubits {
			t.Fatalf("program %d mapping size %d", pi, len(a.InitialMapping))
		}
		seen := map[int]bool{}
		inRegion := map[int]bool{}
		for _, q := range a.Region {
			inRegion[q] = true
		}
		for l, phys := range a.InitialMapping {
			if phys < 0 || phys >= d.NumQubits() {
				t.Fatalf("program %d logical %d mapped to %d", pi, l, phys)
			}
			if !inRegion[phys] {
				t.Fatalf("program %d logical %d mapped outside its region", pi, l)
			}
			if seen[phys] {
				t.Fatalf("program %d physical %d used twice", pi, phys)
			}
			seen[phys] = true
		}
		if !d.Coupling.SubsetConnected(a.Region) {
			t.Fatalf("program %d region %v not connected", pi, a.Region)
		}
	}
}

func progsPair() []*circuit.Circuit {
	return []*circuit.Circuit{
		nisqbench.MustGet("bv_n4"),
		nisqbench.MustGet("toffoli_3"),
	}
}

func TestCDAPBasic(t *testing.T) {
	d := arch.IBMQ16(0)
	tree := community.Build(d, 0.95)
	progs := progsPair()
	res, err := CDAP(d, tree, progs)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, d, progs, res)
}

func TestCDAPSingleProgram(t *testing.T) {
	d := arch.IBMQ16(0)
	tree := community.Build(d, 0.95)
	progs := []*circuit.Circuit{nisqbench.MustGet("bv_n3")}
	res, err := CDAP(d, tree, progs)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, d, progs, res)
}

func TestCDAPPrefersReliableRegion(t *testing.T) {
	// Linear chain with one clearly better half: a 3-qubit program must
	// land on the reliable half.
	d := arch.Linear(8, 0.02, 0.02)
	for _, e := range d.Coupling.Edges() {
		if e.U >= 4 {
			d.CNOTErr[e] = 0.11 // right half is bad
		}
	}
	for q := 4; q < 8; q++ {
		d.ReadoutErr[q] = 0.11
	}
	tree := community.Build(d, 0.95)
	progs := []*circuit.Circuit{nisqbench.MustGet("bv_n3")}
	res, err := CDAP(d, tree, progs)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range res.Assignments[0].Region {
		if q >= 4 {
			t.Fatalf("region %v includes weak half", res.Assignments[0].Region)
		}
	}
}

func TestCDAPFourProgramsOnIBMQ50(t *testing.T) {
	d := arch.IBMQ50(0)
	tree := community.Build(d, 0.40)
	progs := []*circuit.Circuit{
		nisqbench.MustGet("aj-e11_165"),
		nisqbench.MustGet("alu-v2_31"),
		nisqbench.MustGet("4gt4-v0_72"),
		nisqbench.MustGet("sf_276"),
	}
	res, err := CDAP(d, tree, progs)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, d, progs, res)
}

func TestCDAPTooManyQubits(t *testing.T) {
	d := arch.IBMQ16(0)
	tree := community.Build(d, 0.95)
	progs := []*circuit.Circuit{
		nisqbench.MustGet("qft_10"),
		nisqbench.MustGet("bv_n10"),
	}
	if _, err := CDAP(d, tree, progs); !errors.Is(err, ErrNoRegion) {
		t.Fatalf("err = %v, want ErrNoRegion", err)
	}
}

func TestCDAPEmptyPrograms(t *testing.T) {
	d := arch.IBMQ16(0)
	tree := community.Build(d, 0.95)
	res, err := CDAP(d, tree, nil)
	if err != nil || len(res.Assignments) != 0 {
		t.Fatalf("empty CDAP = %v, %v", res, err)
	}
}

func TestCDAPDensityPriority(t *testing.T) {
	// The denser program must be allocated first and therefore get the
	// better region on a chip with one clearly superior community.
	d := arch.Linear(8, 0.02, 0.02)
	for _, e := range d.Coupling.Edges() {
		if e.U >= 4 {
			d.CNOTErr[e] = 0.10
		}
	}
	dense := circuit.New("dense", 3)
	dense.CX(0, 1).CX(1, 2).CX(0, 1).CX(1, 2).CX(0, 1).CX(1, 2)
	sparse := circuit.New("sparse", 3)
	sparse.CX(0, 1)
	tree := community.Build(d, 0.95)
	res, err := CDAP(d, tree, []*circuit.Circuit{sparse, dense})
	if err != nil {
		t.Fatal(err)
	}
	// dense is program index 1; it must sit on the good half (qubits 0-3).
	for _, q := range res.Assignments[1].Region {
		if q >= 4 {
			t.Fatalf("dense program got weak region %v", res.Assignments[1].Region)
		}
	}
}

func TestFRPBasic(t *testing.T) {
	d := arch.IBMQ16(0)
	progs := progsPair()
	res, err := FRP(d, progs)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, d, progs, res)
}

func TestFRPSingleQubitProgram(t *testing.T) {
	d := arch.IBMQ16(0)
	one := circuit.New("one", 1)
	one.H(0).Measure(0)
	res, err := FRP(d, []*circuit.Circuit{one})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments[0].Region) != 1 {
		t.Fatalf("region = %v", res.Assignments[0].Region)
	}
}

func TestFRPFailsWhenFragmented(t *testing.T) {
	// Motivation §III-A: FRP requires a root with >= 2 free neighbors;
	// after enough allocations it cannot find one even though qubits
	// remain. Build a path of 3 qubits and ask for two 2-qubit programs:
	// after the first takes the middle, the second has no valid root.
	d := arch.Linear(3, 0.02, 0.02)
	p1 := circuit.New("p1", 2)
	p1.CX(0, 1).CX(0, 1)
	p2 := circuit.New("p2", 2)
	p2.CX(0, 1)
	_, err := FRP(d, []*circuit.Circuit{p1, p2})
	if !errors.Is(err, ErrNoRegion) {
		t.Fatalf("err = %v, want ErrNoRegion", err)
	}
}

// TestCDAPBeatsFRPOnUtilization reproduces the paper's Figure 5 claim:
// for a 5-qubit + 4-qubit pair on IBMQ16, CDAP always finds a
// co-location while FRP sometimes cannot (wasted roots).
func TestCDAPBeatsFRPOnUtilization(t *testing.T) {
	pair := []*circuit.Circuit{
		nisqbench.MustGet("4mod5-v1_22"), // 5 qubits, as P1 in Figure 5
		nisqbench.MustGet("decod24-v2_43"),
	}
	cdapOK, frpOK := 0, 0
	for seed := int64(0); seed < 50; seed++ {
		dd := arch.IBMQ16(seed)
		tr := community.Build(dd, 0.95)
		if _, err := CDAP(dd, tr, pair); err == nil {
			cdapOK++
		}
		if _, err := FRP(dd, pair); err == nil {
			frpOK++
		}
	}
	if cdapOK != 50 {
		t.Fatalf("CDAP co-located the Figure 5 pair on %d/50 calibrations, want 50", cdapOK)
	}
	if frpOK >= cdapOK {
		t.Fatalf("FRP co-located %d/50 >= CDAP %d/50; expected FRP to waste qubits on some calibration", frpOK, cdapOK)
	}
}

// TestCDAPTripleNonInferior packs three programs (13 of 15 qubits);
// heuristic fragmentation makes some calibrations infeasible for either
// partitioner, but CDAP must stay competitive with FRP.
func TestCDAPTripleNonInferior(t *testing.T) {
	progs := []*circuit.Circuit{
		nisqbench.MustGet("4mod5-v1_22"),
		nisqbench.MustGet("decod24-v2_43"),
		nisqbench.MustGet("bv_n4"),
	}
	cdapOK, frpOK := 0, 0
	for seed := int64(0); seed < 50; seed++ {
		dd := arch.IBMQ16(seed)
		tr := community.Build(dd, 0.95)
		if _, err := CDAP(dd, tr, progs); err == nil {
			cdapOK++
		}
		if _, err := FRP(dd, progs); err == nil {
			frpOK++
		}
	}
	if cdapOK < frpOK-5 {
		t.Fatalf("CDAP co-located %d/50, FRP %d/50; CDAP fell too far behind", cdapOK, frpOK)
	}
	if cdapOK < 30 {
		t.Fatalf("CDAP co-located only %d/50 triples", cdapOK)
	}
}

func TestTrivial(t *testing.T) {
	d := arch.IBMQ16(0)
	progs := progsPair()
	res, err := Trivial(d, progs)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Assignments[0].Region[0]; got != 0 {
		t.Fatalf("first region starts at %d", got)
	}
	if got := res.Assignments[1].Region[0]; got != progs[0].NumQubits {
		t.Fatalf("second region starts at %d", got)
	}
	if _, err := Trivial(arch.Linear(3, 0.02, 0.02), progs); !errors.Is(err, ErrNoRegion) {
		t.Fatal("Trivial must fail when the chip is too small")
	}
}

func TestAllocateGWEFMapsHotPairToBestLink(t *testing.T) {
	d := arch.Linear(4, 0.05, 0.02)
	d.CNOTErr[graph.NewEdge(2, 3)] = 0.01 // the best link
	p := circuit.New("p", 4)
	p.CX(0, 1).CX(0, 1).CX(0, 1).CX(2, 3) // hot pair (0,1)
	mapping := AllocateGWEF(d, p, []int{0, 1, 2, 3})
	hot := [2]int{mapping[0], mapping[1]}
	sort.Ints(hot[:])
	if hot != [2]int{2, 3} {
		t.Fatalf("hot logical pair mapped to %v, want the reliable link {2,3}", hot)
	}
}

func TestAllocateGWEFNoInteractions(t *testing.T) {
	d := arch.Linear(3, 0.05, 0.02)
	d.ReadoutErr = []float64{0.3, 0.01, 0.2}
	p := circuit.New("p", 2) // two isolated qubits
	p.H(0).H(1)
	mapping := AllocateGWEF(d, p, []int{0, 1})
	// Both land in the region; the region here contains qubit 0 and 1.
	if mapping[0] == mapping[1] {
		t.Fatal("two logical qubits share a physical qubit")
	}
}

func TestAllocateGWEFRegionSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched region must panic")
		}
	}()
	AllocateGWEF(arch.Linear(3, 0.02, 0.02), circuit.New("p", 2), []int{0})
}

func TestOccupied(t *testing.T) {
	d := arch.IBMQ16(0)
	tree := community.Build(d, 0.95)
	progs := progsPair()
	res, err := CDAP(d, tree, progs)
	if err != nil {
		t.Fatal(err)
	}
	owner := res.Occupied(d.NumQubits())
	count := map[int]int{}
	for _, o := range owner {
		count[o]++
	}
	if count[0] != progs[0].NumQubits || count[1] != progs[1].NumQubits {
		t.Fatalf("ownership counts = %v", count)
	}
}

func TestByCNOTDensityOrdering(t *testing.T) {
	a := circuit.New("a", 2) // density 0.5
	a.CX(0, 1)
	b := circuit.New("b", 2) // density 1.5
	b.CX(0, 1).CX(0, 1).CX(0, 1)
	order := byCNOTDensity([]*circuit.Circuit{a, b})
	if order[0] != 1 || order[1] != 0 {
		t.Fatalf("order = %v, want [1 0]", order)
	}
}

// TestPartitionFuzz stresses both partitioners across random devices
// and workloads: results must be valid partitions or clean ErrNoRegion.
func TestPartitionFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 80; trial++ {
		var d *arch.Device
		switch rng.Intn(4) {
		case 0:
			d = arch.Linear(5+rng.Intn(6), 0.02+0.04*rng.Float64(), 0.03)
		case 1:
			d = arch.Grid(2+rng.Intn(3), 3+rng.Intn(3), 0.03, 0.03)
		case 2:
			d = arch.IBMQ16(rng.Int63())
		default:
			d = arch.Tokyo(rng.Int63())
		}
		var progs []*circuit.Circuit
		budget := d.NumQubits()
		for len(progs) < 3 && budget >= 2 {
			n := 2 + rng.Intn(4)
			if n > budget {
				n = budget
			}
			c := circuit.New("f", n)
			for g := 0; g < 2+rng.Intn(10); g++ {
				a := rng.Intn(n)
				if n == 1 {
					c.H(a)
					continue
				}
				b := rng.Intn(n - 1)
				if b >= a {
					b++
				}
				c.CX(a, b)
			}
			progs = append(progs, c)
			budget -= n
		}
		tree := community.Build(d, 0.95)
		if res, err := CDAP(d, tree, progs); err == nil {
			checkResult(t, d, progs, res)
		} else if !errors.Is(err, ErrNoRegion) {
			t.Fatalf("trial %d: CDAP unexpected error %v", trial, err)
		}
		if res, err := FRP(d, progs); err == nil {
			checkResult(t, d, progs, res)
		} else if !errors.Is(err, ErrNoRegion) {
			t.Fatalf("trial %d: FRP unexpected error %v", trial, err)
		}
	}
}

// TestOmegaSensitivityByProgramSize checks §IV-A1's observation: "the
// mapping results of programs with fewer qubits are more sensitive to
// ω" — across an ω grid, the small program's allocated region changes
// at least as often as the large program's.
func TestOmegaSensitivityByProgramSize(t *testing.T) {
	smallProg := nisqbench.MustGet("bv_n3")  // 3 qubits
	largeProg := nisqbench.MustGet("qft_10") // 10 qubits
	distinct := func(d *arch.Device, p *circuit.Circuit) int {
		seen := map[string]bool{}
		for w := 0.0; w <= 2.5; w += 0.25 {
			tree := community.Build(d, w)
			res, err := CDAP(d, tree, []*circuit.Circuit{p})
			if err != nil {
				t.Fatal(err)
			}
			key := ""
			for _, q := range res.Assignments[0].Region {
				key += string(rune('A' + q))
			}
			seen[key] = true
		}
		return len(seen)
	}
	small, large := 0, 0
	for seed := int64(0); seed < 6; seed++ {
		d := arch.IBMQ16(seed)
		small += distinct(d, smallProg)
		large += distinct(d, largeProg)
	}
	if small < large {
		t.Fatalf("small program saw %d regions, large %d; small should be at least as omega-sensitive", small, large)
	}
	t.Logf("distinct regions across omega grid and 6 days: small=%d large=%d", small, large)
}
