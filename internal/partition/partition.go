// Package partition assigns physical-qubit regions to concurrent quantum
// programs and produces their initial mappings. It implements the
// paper's CDAP partitioner (Algorithm 2) on top of the community
// hierarchy tree, the FRP baseline partitioner from Das et al.
// (MICRO'19), and the Greatest-Weighted-Edge-First initial-mapping
// policy both use within an allocated region.
package partition

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/community"
	"repro/internal/graph"
)

// ErrNoRegion is returned when the partitioner cannot find a region for
// some program; callers revert to separate execution (Algorithm 2 line 9).
var ErrNoRegion = errors.New("partition: no feasible region for program")

// Assignment is one program's allocation.
type Assignment struct {
	// Program indexes the input program slice.
	Program int
	// Region is the sorted set of physical qubits granted to the
	// program (exactly the program's qubit count).
	Region []int
	// InitialMapping maps each logical qubit to its physical qubit.
	InitialMapping []int
}

// Result is a complete partition of the chip among programs, indexed by
// the original program order.
type Result struct {
	Assignments []Assignment
}

// Occupied returns a physical-qubit occupancy mask: entry q is the
// program index owning qubit q, or -1.
func (r *Result) Occupied(numQubits int) []int {
	owner := make([]int, numQubits)
	for i := range owner {
		owner[i] = -1
	}
	for _, a := range r.Assignments {
		for _, q := range a.Region {
			owner[q] = a.Program
		}
	}
	return owner
}

// byCNOTDensity returns program indices sorted by descending CNOT
// density (Algorithm 2 line 1); ties break toward more qubits, then
// original order, so results are deterministic.
func byCNOTDensity(progs []*circuit.Circuit) []int {
	idx := make([]int, len(progs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		da, db := progs[idx[a]].CNOTDensity(), progs[idx[b]].CNOTDensity()
		//lint:ignore floateq exact tie-break keeps the comparator a strict weak order; an epsilon band would make "equal" intransitive
		if da != db {
			return da > db
		}
		return progs[idx[a]].NumQubits > progs[idx[b]].NumQubits
	})
	return idx
}

// CDAP partitions the device among the programs by walking the
// hierarchy tree bottom-up per program (highest CNOT density first),
// choosing for each the candidate community with the highest average
// fidelity, then mapping it inside the region with
// Greatest-Weighted-Edge-First. The tree must have been built for d.
func CDAP(d *arch.Device, tree *community.Tree, progs []*circuit.Circuit) (*Result, error) {
	if len(progs) == 0 {
		return &Result{}, nil
	}
	total := 0
	for _, p := range progs {
		total += p.NumQubits
	}
	if total > d.NumQubits() {
		return nil, fmt.Errorf("%w: %d qubits requested, %d on chip", ErrNoRegion, total, d.NumQubits())
	}

	avail := make([]bool, d.NumQubits())
	for i := range avail {
		avail[i] = true
	}
	cut := map[*community.Node]bool{} // nodes severed from their parents

	res := &Result{Assignments: make([]Assignment, len(progs))}
	// placed accumulates the induced coupling links of already-assigned
	// regions. On devices with a pairwise crosstalk matrix, candidate
	// regions whose links are hostile to these neighbors score lower
	// (EPSTUnder), so CDAP steers later programs away from placements
	// that would interfere with earlier ones. Without a matrix, placed is
	// ignored and the walk is byte-identical to the crosstalk-blind CDAP.
	var placed []graph.Edge
	for _, pi := range byCNOTDensity(progs) {
		p := progs[pi]
		region, err := cdapFindRegion(d, tree, avail, cut, p, placed)
		if err != nil {
			return nil, fmt.Errorf("%w: program %q (%d qubits)", ErrNoRegion, p.Name, p.NumQubits)
		}
		mapping := AllocateGWEF(d, p, region)
		for _, q := range region {
			avail[q] = false
		}
		if d.HasCrosstalk() {
			placed = append(placed, d.Coupling.InducedEdges(region)...)
		}
		res.Assignments[pi] = Assignment{Program: pi, Region: sortedCopy(region), InitialMapping: mapping}
		pruneIsolatedSiblings(d, tree, avail, cut)
	}
	return res, nil
}

// cdapFindRegion walks the tree from every available leaf upward to the
// first ancestor whose effective available set can host the program
// connectedly, then returns the best connected subset of the
// highest-estimated-fidelity candidate (Algorithm 2 lines 3-12, plus
// the redundant-qubit subsetting of §IV-A3). Fidelity is estimated with
// the program-aware EPST (Equation 4), so link reliability is weighted
// by how CNOT-heavy the program is. placed lists the coupling links of
// regions already granted to other programs: with a pairwise crosstalk
// matrix, EPSTUnder charges each candidate link its worst conditional
// error against those neighbors, penalizing hostile adjacency.
func cdapFindRegion(d *arch.Device, tree *community.Tree, avail []bool, cut map[*community.Node]bool, p *circuit.Circuit, placed []graph.Edge) ([]int, error) {
	size := p.NumQubits
	type candidate struct {
		subset []int
		score  float64
	}
	var best *candidate
	seen := map[*community.Node]bool{}
	// score = region fidelity minus a small penalty per free qubit the
	// allocation would strand (leave with no free neighbor). The
	// penalty keeps later programs mappable without overriding large
	// fidelity differences; §IV-A3's redundant-qubit relabeling has the
	// same goal.
	score := func(subset []int) float64 {
		epst := d.EPSTUnder(subset, p.RawCNOTCount(), p.Gate1Count(), p.NumQubits, placed)
		return epst - strandPenalty*float64(strandedAfter(d, avail, subset))
	}
	for q := 0; q < d.NumQubits(); q++ {
		if !avail[q] {
			continue
		}
		node := tree.Leaves[q]
		for node != nil {
			eff := effAvailable(node, avail, cut)
			if len(eff) >= size {
				found := false
				if !seen[node] {
					seen[node] = true
					if subset := bestConnectedSubset(d, avail, eff, p, placed); subset != nil {
						found = true
						if s := score(subset); best == nil || s > best.score {
							best = &candidate{subset: subset, score: s}
						}
					}
				} else {
					found = true // evaluated via another leaf
				}
				if found {
					break
				}
				// Enough qubits but no connected subset (the node's
				// remainder is fragmented): keep climbing so a larger
				// ancestor can still host the program.
			}
			if cut[node] {
				break // severed from its parent (Algorithm 2 line 16)
			}
			node = node.Parent
		}
	}
	if best == nil {
		return nil, ErrNoRegion
	}
	return best.subset, nil
}

// effAvailable returns the node's qubits that are still available,
// excluding subtrees severed by the isolated-sibling rule.
func effAvailable(n *community.Node, avail []bool, cut map[*community.Node]bool) []int {
	if n.IsLeaf() {
		q := n.Qubits[0]
		if avail[q] {
			return []int{q}
		}
		return nil
	}
	var out []int
	if !cut[n.Left] {
		out = append(out, effAvailable(n.Left, avail, cut)...)
	}
	if !cut[n.Right] {
		out = append(out, effAvailable(n.Right, avail, cut)...)
	}
	return out
}

// pruneIsolatedSiblings applies Algorithm 2 lines 14-17: any node whose
// remaining qubits have no coupling link to available qubits outside the
// node is severed from its parent, so its qubits stop counting toward
// ancestor candidates (they remain usable via the node itself).
func pruneIsolatedSiblings(d *arch.Device, tree *community.Tree, avail []bool, cut map[*community.Node]bool) {
	for _, n := range tree.Nodes() {
		if cut[n] || n.Parent == nil {
			continue
		}
		eff := effAvailable(n, avail, cut)
		if len(eff) == 0 {
			continue
		}
		isolated := true
		inNode := map[int]bool{}
		for _, q := range n.Qubits {
			inNode[q] = true
		}
		for _, q := range eff {
			for _, nb := range d.Coupling.Neighbors(q) {
				if avail[nb] && !inNode[nb] {
					isolated = false
					break
				}
			}
			if !isolated {
				break
			}
		}
		if isolated {
			cut[n] = true
		}
	}
}

// strandedAfter counts the currently-available qubits outside subset
// that would be left with no available neighbor once subset is taken —
// qubits almost certainly wasted for every later program.
func strandedAfter(d *arch.Device, avail []bool, subset []int) int {
	taken := map[int]bool{}
	for _, q := range subset {
		taken[q] = true
	}
	stranded := 0
	for q := 0; q < d.NumQubits(); q++ {
		if !avail[q] || taken[q] {
			continue
		}
		hasFreeNbr := false
		for _, nb := range d.Coupling.Neighbors(q) {
			if avail[nb] && !taken[nb] {
				hasFreeNbr = true
				break
			}
		}
		if !hasFreeNbr {
			stranded++
		}
	}
	return stranded
}

// strandPenalty is the score deduction per free qubit an allocation
// would strand; small enough that sizeable fidelity gaps still dominate.
const strandPenalty = 0.01

// bestConnectedSubset returns the best connected subset of exactly the
// program's qubit count from pool, or nil when pool has no connected
// subset of that size. It greedily grows a set from each seed qubit,
// always taking the neighbor that maximizes the program's EPST so far,
// and keeps the seed whose result scores highest on EPST minus the
// stranding penalty (avail describes the chip's current free qubits).
// The greedy growth steps use the crosstalk-blind EPST for speed; only
// the final per-seed score charges conditional errors against placed —
// enough to choose a benign seed region when one exists.
func bestConnectedSubset(d *arch.Device, avail []bool, pool []int, p *circuit.Circuit, placed []graph.Edge) []int {
	size := p.NumQubits
	cnots, g1s := p.RawCNOTCount(), p.Gate1Count()
	epst := func(set []int) float64 { return d.EPST(set, cnots, g1s, size) }
	if size <= 0 {
		return []int{}
	}
	if len(pool) < size {
		return nil
	}
	inPool := map[int]bool{}
	for _, q := range pool {
		inPool[q] = true
	}
	var best []int
	bestScore := -1.0
	for _, seed := range pool {
		set := []int{seed}
		inSet := map[int]bool{seed: true}
		for len(set) < size {
			cand, candFid := -1, -1.0
			for _, q := range set {
				for _, nb := range d.Coupling.Neighbors(q) {
					if !inPool[nb] || inSet[nb] {
						continue
					}
					fid := epst(append(set, nb))
					if fid > candFid {
						cand, candFid = nb, fid
					}
				}
			}
			if cand < 0 {
				break // pool disconnected around this seed
			}
			set = append(set, cand)
			inSet[cand] = true
		}
		if len(set) == size {
			s := d.EPSTUnder(set, cnots, g1s, size, placed) - strandPenalty*float64(strandedAfter(d, avail, set))
			if s > bestScore {
				best, bestScore = sortedCopy(set), s
			}
		}
	}
	return best
}

// AllocateGWEF maps a program's logical qubits onto the given physical
// region with the Greatest-Weighted-Edge-First policy (Murali et al.):
// the most frequently interacting logical pair goes to the region's most
// reliable link, and the mapping grows outward pairing hot logical
// qubits with reliable neighboring physical qubits. The region must
// contain exactly the program's qubit count.
func AllocateGWEF(d *arch.Device, p *circuit.Circuit, region []int) []int {
	if len(region) != p.NumQubits {
		panic(fmt.Sprintf("partition: region size %d != program qubits %d", len(region), p.NumQubits))
	}
	mapping := make([]int, p.NumQubits)
	for i := range mapping {
		mapping[i] = -1
	}
	if p.NumQubits == 0 {
		return mapping
	}
	inRegion := map[int]bool{}
	for _, q := range region {
		inRegion[q] = true
	}
	physFree := map[int]bool{}
	for _, q := range region {
		physFree[q] = true
	}

	ig := p.InteractionGraph()
	type wedge struct {
		u, v int
		w    float64
	}
	var edges []wedge
	for _, e := range ig.Edges() {
		edges = append(edges, wedge{e.U, e.V, ig.Weight(e.U, e.V)})
	}
	sort.SliceStable(edges, func(a, b int) bool { return edges[a].w > edges[b].w })

	// Most reliable physical link inside the region.
	bestLink := func() (int, int, bool) {
		bu, bv, brel := -1, -1, -1.0
		for _, e := range d.Coupling.InducedEdges(region) {
			if physFree[e.U] && physFree[e.V] {
				if rel := 1 - d.CNOTErr[e]; rel > brel {
					bu, bv, brel = e.U, e.V, rel
				}
			}
		}
		return bu, bv, bu >= 0
	}

	place := func(l, phys int) {
		mapping[l] = phys
		delete(physFree, phys)
	}

	// freeInOrder visits the still-free region qubits in region order, so
	// every tie-break below is deterministic (physFree is a map; ranging
	// over it directly would pick among equal candidates at random).
	freeInOrder := func(visit func(q int)) {
		for _, q := range region {
			if physFree[q] {
				visit(q)
			}
		}
	}

	// placeNear maps logical l onto the free region qubit closest to
	// anchor, preferring reliable direct links.
	placeNear := func(l, anchor int) {
		cand, candScore := -1, -1.0
		for _, nb := range d.Coupling.Neighbors(anchor) {
			if inRegion[nb] && physFree[nb] {
				if rel := d.CNOTReliability(anchor, nb); rel > candScore {
					cand, candScore = nb, rel
				}
			}
		}
		if cand >= 0 {
			place(l, cand)
			return
		}
		// No free neighbor: take the free region qubit with the fewest
		// hops to the anchor (first in region order on ties).
		hops := d.Hops()
		bestQ, bestHops := -1, 1<<30
		freeInOrder(func(q int) {
			if hops[anchor][q] >= 0 && hops[anchor][q] < bestHops {
				bestQ, bestHops = q, hops[anchor][q]
			}
		})
		if bestQ < 0 {
			// Region disconnected from anchor (can't happen for
			// connected regions, but stay total).
			freeInOrder(func(q int) {
				if bestQ < 0 {
					bestQ = q
				}
			})
		}
		place(l, bestQ)
	}

	for _, e := range edges {
		mu, mv := mapping[e.u] >= 0, mapping[e.v] >= 0
		switch {
		case mu && mv:
			continue
		case !mu && !mv:
			if pu, pv, ok := bestLink(); ok {
				// Orient: heavier-degree logical qubit on the
				// better-connected physical qubit.
				if ig.Degree(e.u) >= ig.Degree(e.v) == (d.Coupling.Degree(pu) >= d.Coupling.Degree(pv)) {
					place(e.u, pu)
					place(e.v, pv)
				} else {
					place(e.u, pv)
					place(e.v, pu)
				}
			} else {
				// No free link left: place both near each other greedily
				// (first free qubit in region order keeps this
				// deterministic).
				placed := false
				freeInOrder(func(q int) {
					if !placed {
						place(e.u, q)
						placed = true
					}
				})
				placeNear(e.v, mapping[e.u])
			}
		case mu:
			placeNear(e.v, mapping[e.u])
		default:
			placeNear(e.u, mapping[e.v])
		}
	}

	// Logical qubits with no two-qubit interactions: best readout first.
	var loose []int
	for l, m := range mapping {
		if m < 0 {
			loose = append(loose, l)
		}
	}
	var freeList []int
	freeInOrder(func(q int) { freeList = append(freeList, q) })
	sort.SliceStable(freeList, func(a, b int) bool {
		return d.ReadoutErr[freeList[a]] < d.ReadoutErr[freeList[b]]
	})
	for i, l := range loose {
		place(l, freeList[i])
	}
	return mapping
}

// FRP implements the baseline partitioner from Das et al.: per program
// (highest CNOT density first), pick the free qubit with the highest
// utility among those with at least two free neighbors as the root, then
// greedily grow the region by the highest-utility free neighbor.
func FRP(d *arch.Device, progs []*circuit.Circuit) (*Result, error) {
	if len(progs) == 0 {
		return &Result{}, nil
	}
	avail := make([]bool, d.NumQubits())
	for i := range avail {
		avail[i] = true
	}
	res := &Result{Assignments: make([]Assignment, len(progs))}
	for _, pi := range byCNOTDensity(progs) {
		p := progs[pi]
		region, err := frpFindRegion(d, avail, p.NumQubits)
		if err != nil {
			return nil, fmt.Errorf("%w: program %q (%d qubits)", ErrNoRegion, p.Name, p.NumQubits)
		}
		mapping := AllocateGWEF(d, p, region)
		for _, q := range region {
			avail[q] = false
		}
		res.Assignments[pi] = Assignment{Program: pi, Region: sortedCopy(region), InitialMapping: mapping}
	}
	return res, nil
}

func frpFindRegion(d *arch.Device, avail []bool, size int) ([]int, error) {
	if size == 1 {
		// Degenerate single-qubit program: best available readout.
		best, bestErr := -1, 2.0
		for q := 0; q < d.NumQubits(); q++ {
			if avail[q] && d.ReadoutErr[q] < bestErr {
				best, bestErr = q, d.ReadoutErr[q]
			}
		}
		if best < 0 {
			return nil, ErrNoRegion
		}
		return []int{best}, nil
	}
	// Root: the highest-utility free qubit with >= 2 free neighbors
	// ("a reliable root that has enough neighbors with high utility").
	// Das et al.'s FRP commits to one root; when its greedy growth
	// dead-ends the partition fails and the system reverts to separate
	// execution — exactly the under-utilization Figure 5 criticizes.
	root, rootU := -1, -1.0
	for q := 0; q < d.NumQubits(); q++ {
		if !avail[q] {
			continue
		}
		freeNbrs := 0
		for _, nb := range d.Coupling.Neighbors(q) {
			if avail[nb] {
				freeNbrs++
			}
		}
		if freeNbrs < 2 {
			continue
		}
		if u := d.Utility(q, avail); u > rootU {
			root, rootU = q, u
		}
	}
	if root < 0 {
		return nil, ErrNoRegion
	}
	set := []int{root}
	inSet := map[int]bool{root: true}
	for len(set) < size {
		cand, candU := -1, -1.0
		for _, q := range set {
			for _, nb := range d.Coupling.Neighbors(q) {
				if !avail[nb] || inSet[nb] {
					continue
				}
				if u := d.Utility(nb, avail); u > candU {
					cand, candU = nb, u
				}
			}
		}
		if cand < 0 {
			return nil, ErrNoRegion
		}
		set = append(set, cand)
		inSet[cand] = true
	}
	return set, nil
}

// Trivial places the programs side by side in qubit-index order with
// identity mappings — the layout a topology- and noise-unaware compiler
// would use. The plain-SABRE baseline starts from it.
func Trivial(d *arch.Device, progs []*circuit.Circuit) (*Result, error) {
	next := 0
	res := &Result{Assignments: make([]Assignment, len(progs))}
	for pi, p := range progs {
		if next+p.NumQubits > d.NumQubits() {
			return nil, fmt.Errorf("%w: programs need %d+ qubits, chip has %d", ErrNoRegion, next+p.NumQubits, d.NumQubits())
		}
		region := make([]int, p.NumQubits)
		mapping := make([]int, p.NumQubits)
		for l := 0; l < p.NumQubits; l++ {
			region[l] = next + l
			mapping[l] = next + l
		}
		res.Assignments[pi] = Assignment{Program: pi, Region: region, InitialMapping: mapping}
		next += p.NumQubits
	}
	return res, nil
}

func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
