package viz

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/graph"
	"repro/internal/router"
)

func TestCalibrationReport(t *testing.T) {
	d := arch.Linear(3, 0.02, 0.05)
	d.CNOTErr[graph.NewEdge(1, 2)] = 0.09 // weak
	rep := CalibrationReport(d)
	for _, want := range []string{"device linear3", "readout error", "CNOT error", "<- weak", "Q0", "Q1-Q2"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	// Worst link first: the weak 1-2 line precedes 0-1.
	if strings.Index(rep, "Q1-Q2") > strings.Index(rep, "Q0-Q1") {
		t.Fatal("links must be sorted worst first")
	}
}

func routedBell(t *testing.T) (*router.Schedule, *circuit.Circuit) {
	t.Helper()
	d := arch.Linear(3, 0.02, 0.02)
	p := circuit.New("p", 2)
	p.H(0).CX(0, 1).MeasureAll()
	s, err := router.Route(d, []*circuit.Circuit{p}, [][]int{{0, 2}}, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return s, p
}

func TestTimelineShape(t *testing.T) {
	s, _ := routedBell(t)
	tl := Timeline(s, 0)
	lines := strings.Split(strings.TrimRight(tl, "\n"), "\n")
	if len(lines) != 3 { // qubits 0,1,2 all active (swap through 1)
		t.Fatalf("lanes = %d:\n%s", len(lines), tl)
	}
	if !strings.Contains(tl, "h") {
		t.Fatalf("timeline missing h gate:\n%s", tl)
	}
	if !strings.Contains(tl, "S") {
		t.Fatalf("timeline missing swap:\n%s", tl)
	}
	if !strings.Contains(tl, "M") {
		t.Fatalf("timeline missing measurement:\n%s", tl)
	}
	if !strings.Contains(tl, "C") || !strings.Contains(tl, "T") {
		t.Fatalf("timeline missing cnot marks:\n%s", tl)
	}
	// All lanes equal width.
	w := -1
	for _, l := range lines {
		inner := l[strings.Index(l, "|")+1 : strings.LastIndex(l, "|")]
		if w < 0 {
			w = len(inner)
		} else if len(inner) != w {
			t.Fatalf("ragged lanes:\n%s", tl)
		}
	}
}

func TestTimelineTruncation(t *testing.T) {
	s, _ := routedBell(t)
	tl := Timeline(s, 2)
	if !strings.Contains(tl, "layers shown") {
		t.Fatalf("truncated timeline must say so:\n%s", tl)
	}
}

func TestPartitionMap(t *testing.T) {
	d := arch.Linear(5, 0.02, 0.02)
	owner := []int{0, 0, -1, 1, 1}
	out := PartitionMap(d, owner, []string{"bv_n3", "toffoli"})
	for _, want := range []string{"bv_n3", "toffoli", "free", "[0 1]", "[3 4]", "[2]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("partition map missing %q:\n%s", want, out)
		}
	}
	// Missing names fall back to indices.
	out2 := PartitionMap(d, owner, nil)
	if !strings.Contains(out2, "program 0") {
		t.Fatalf("fallback name missing:\n%s", out2)
	}
}
