// Package viz renders text diagnostics for devices and compiled
// schedules: calibration reports with error-rate bars and per-qubit
// schedule timelines. The CLI tools use it for human inspection; tests
// use it to pin rendering behaviour.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/router"
)

// CalibrationReport renders the device's error rates: one bar per qubit
// (readout error) and one per link (CNOT error), worst first, with weak
// elements flagged. Bars are scaled to the worst observed rate.
func CalibrationReport(d *arch.Device) string {
	var b strings.Builder
	fmt.Fprintf(&b, "device %s: %d qubits, %d links\n", d.Name, d.NumQubits(), d.Coupling.M())

	maxRO := 0.0
	for _, e := range d.ReadoutErr {
		if e > maxRO {
			maxRO = e
		}
	}
	b.WriteString("\nreadout error per qubit:\n")
	type qerr struct {
		q int
		e float64
	}
	qs := make([]qerr, d.NumQubits())
	for q := range qs {
		qs[q] = qerr{q, d.ReadoutErr[q]}
	}
	sort.SliceStable(qs, func(i, j int) bool { return qs[i].e > qs[j].e })
	for _, qe := range qs {
		fmt.Fprintf(&b, "  Q%-3d %6.2f%% %s\n", qe.q, qe.e*100, bar(qe.e, maxRO))
	}

	maxCX := 0.0
	for _, e := range d.CNOTErr {
		if e > maxCX {
			maxCX = e
		}
	}
	b.WriteString("\nCNOT error per link (worst first):\n")
	type lerr struct {
		u, v int
		e    float64
	}
	var ls []lerr
	for _, ed := range d.Coupling.Edges() {
		ls = append(ls, lerr{ed.U, ed.V, d.CNOTErr[ed]})
	}
	sort.SliceStable(ls, func(i, j int) bool { return ls[i].e > ls[j].e })
	for _, le := range ls {
		flag := ""
		if le.e >= 0.07 {
			flag = "  <- weak"
		}
		fmt.Fprintf(&b, "  Q%d-Q%-3d %6.2f%% %s%s\n", le.u, le.v, le.e*100, bar(le.e, maxCX), flag)
	}
	return b.String()
}

func bar(v, max float64) string {
	if max <= 0 {
		return ""
	}
	n := int(v / max * 30)
	return strings.Repeat("#", n)
}

// Timeline renders a compiled schedule as per-qubit lanes over ASAP
// layers: '.' idle, lowercase letters for 1q gates, 'C'/'T' for CNOT
// control/target, 'S' for SWAP halves, 'M' for measurement. Only active
// qubits get lanes; output is truncated at maxLayers columns (0 means
// no limit).
func Timeline(s *router.Schedule, maxLayers int) string {
	// ASAP layering (measure ops pinned to the final layer).
	level := map[int]int{}
	type cell struct {
		q     int
		layer int
		ch    byte
	}
	var cells []cell
	activeSet := map[int]bool{}
	maxLevel := 0
	place := func(qubits []int, cost int, chars []byte) {
		start := 0
		for _, q := range qubits {
			activeSet[q] = true
			if level[q] > start {
				start = level[q]
			}
		}
		for i, q := range qubits {
			for k := 0; k < cost; k++ {
				cells = append(cells, cell{q, start + k, chars[i]})
			}
			level[q] = start + cost
		}
		if start+cost > maxLevel {
			maxLevel = start + cost
		}
	}
	var measures []router.Op
	for _, op := range s.Ops {
		g := op.Gate
		switch {
		case g.IsBarrier():
		case g.IsMeasure():
			measures = append(measures, op)
		case g.Name == circuit.GateSWAP:
			place(g.Qubits, 3, []byte{'S', 'S'})
		case g.IsTwoQubit():
			place(g.Qubits, 1, []byte{'C', 'T'})
		default:
			ch := byte('u')
			if len(g.Name) > 0 {
				ch = g.Name[0]
			}
			place(g.Qubits, 1, []byte{ch})
		}
	}
	for _, op := range measures {
		q := op.Gate.Qubits[0]
		activeSet[q] = true
		cells = append(cells, cell{q, maxLevel, 'M'})
	}
	width := maxLevel + 1
	if maxLayers > 0 && width > maxLayers {
		width = maxLayers
	}

	var active []int
	for q := range activeSet {
		active = append(active, q)
	}
	sort.Ints(active)
	lanes := map[int][]byte{}
	for _, q := range active {
		lane := make([]byte, width)
		for i := range lane {
			lane[i] = '.'
		}
		lanes[q] = lane
	}
	for _, c := range cells {
		if c.layer < width {
			lanes[c.q][c.layer] = c.ch
		}
	}
	var b strings.Builder
	for _, q := range active {
		fmt.Fprintf(&b, "Q%-3d |%s|\n", q, lanes[q])
	}
	if maxLayers > 0 && maxLevel+1 > maxLayers {
		fmt.Fprintf(&b, "(%d of %d layers shown)\n", maxLayers, maxLevel+1)
	}
	return b.String()
}

// PartitionMap renders qubit ownership after partitioning: one line per
// program listing its physical qubits, plus the free set.
func PartitionMap(d *arch.Device, owner []int, names []string) string {
	var b strings.Builder
	byProg := map[int][]int{}
	for q, o := range owner {
		byProg[o] = append(byProg[o], q)
	}
	progIDs := make([]int, 0, len(byProg))
	for o := range byProg {
		if o >= 0 {
			progIDs = append(progIDs, o)
		}
	}
	sort.Ints(progIDs)
	for _, o := range progIDs {
		name := fmt.Sprintf("program %d", o)
		if o < len(names) && names[o] != "" {
			name = names[o]
		}
		fmt.Fprintf(&b, "%-20s %v\n", name, byProg[o])
	}
	if free := byProg[-1]; len(free) > 0 {
		fmt.Fprintf(&b, "%-20s %v\n", "free", free)
	}
	return b.String()
}
