package quos

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/nisqbench"
	"repro/internal/sched"
)

func queueOf(names ...string) []sched.Job {
	jobs := make([]sched.Job, len(names))
	for i, n := range names {
		jobs[i] = sched.Job{ID: i, Circ: nisqbench.MustGet(n)}
	}
	return jobs
}

func TestRunEmptyAndInvalid(t *testing.T) {
	d := arch.IBMQ16(0)
	res, err := Run(d, nil, DefaultConfig(), 1)
	if err != nil || len(res.Reports) != 0 {
		t.Fatalf("empty run: %v %v", res, err)
	}
	cfg := DefaultConfig()
	cfg.Trials = 0
	if _, err := Run(d, queueOf("bv_n3"), cfg, 1); err == nil {
		t.Fatal("zero trials must error")
	}
}

func TestRunProcessesEveryJobOnce(t *testing.T) {
	d := arch.IBMQ16(0)
	jobs := queueOf("bv_n3", "toffoli_3", "peres_3", "3_17_13", "alu-v0_27", "bv_n4")
	cfg := DefaultConfig()
	cfg.Trials = 150
	res, err := Run(d, jobs, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, r := range res.Reports {
		for _, id := range r.JobIDs {
			if seen[id] {
				t.Fatalf("job %d executed twice", id)
			}
			seen[id] = true
		}
		if r.EpsilonAfter < cfg.MinEpsilon || r.EpsilonAfter > cfg.MaxEpsilon {
			t.Fatalf("epsilon %v escaped bounds", r.EpsilonAfter)
		}
	}
	if len(seen) != len(jobs) {
		t.Fatalf("executed %d of %d jobs", len(seen), len(jobs))
	}
	if res.TRF < 1 || res.TRF > float64(cfg.MaxColocate) {
		t.Fatalf("TRF = %v", res.TRF)
	}
	if res.AvgPST <= 0 || res.AvgPST > 1 {
		t.Fatalf("avg PST = %v", res.AvgPST)
	}
}

func TestEpsilonBacksOffUnderBadFidelity(t *testing.T) {
	// A chip whose links are terrible outside one small island: the
	// scheduler's EPST is computed from the same calibration, so force
	// disagreement by making the simulator's crosstalk/idle channels
	// (invisible to EPST) dominate via deep co-located programs.
	d := arch.IBMQ16(0)
	deep := circuit.New("deep", 3)
	for i := 0; i < 120; i++ {
		deep.CX(0, 1)
		deep.CX(1, 2)
	}
	deep.MeasureAll()
	var jobs []sched.Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, sched.Job{ID: i, Circ: deep.Clone()})
	}
	cfg := DefaultConfig()
	cfg.Trials = 120
	cfg.Target = 0.02 // strict: any real loss triggers back-off
	res, err := Run(d, jobs, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	anyViolation := false
	for _, r := range res.Reports {
		if r.Violated {
			anyViolation = true
		}
	}
	if anyViolation && res.FinalEpsilon >= cfg.InitialEpsilon {
		t.Fatalf("violations occurred but epsilon rose: %v", res.FinalEpsilon)
	}
	t.Logf("final epsilon %v, violations %v", res.FinalEpsilon, anyViolation)
}

func TestEpsilonGrowsWhenColocationIsSafe(t *testing.T) {
	// Tiny shallow programs on a good chip: co-location is nearly
	// free, so a generous target lets epsilon probe upward.
	d := arch.IBMQ16(0)
	var jobs []sched.Job
	names := []string{"bv_n3", "bv_n4", "bv_n3", "bv_n4", "bv_n3", "bv_n4"}
	for i, n := range names {
		jobs = append(jobs, sched.Job{ID: i, Circ: nisqbench.MustGet(n)})
	}
	cfg := DefaultConfig()
	cfg.Trials = 150
	cfg.Target = 0.5 // lenient
	res, err := Run(d, jobs, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	grew := false
	for _, r := range res.Reports {
		if len(r.JobIDs) > 1 && !r.Violated {
			grew = true
		}
	}
	if grew && res.FinalEpsilon < cfg.InitialEpsilon {
		t.Fatalf("safe co-locations should not shrink epsilon: %v", res.FinalEpsilon)
	}
}
