// Package quos prototypes the adaptive runtime the paper's QuOS vision
// sketches (§II-E, §III): a feedback controller around the EPST
// scheduler. The static scheduler trusts its estimated fidelity; QuOS
// additionally observes each batch's *achieved* fidelity and adapts the
// co-location threshold epsilon on-the-fly — tightening it after
// fidelity regressions (reverting toward separate execution, which the
// paper notes static systems cannot do) and relaxing it when
// multi-programming proves harmless.
package quos

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Config tunes the adaptive controller.
type Config struct {
	// InitialEpsilon seeds the co-location threshold.
	InitialEpsilon float64
	// MinEpsilon and MaxEpsilon bound the adaptation.
	MinEpsilon, MaxEpsilon float64
	// Target is the tolerated achieved-fidelity loss per batch:
	// observed PST may fall below the separate-execution estimate by
	// this fraction before the controller reacts.
	Target float64
	// Step is the multiplicative adaptation: epsilon /= (1+Step) on
	// violation, *= (1+Step/2) on success (asymmetric, like congestion
	// control: back off fast, probe slowly).
	Step float64
	// Trials is the Monte-Carlo budget per batch observation.
	Trials int
	// Lookahead and MaxColocate pass through to the scheduler.
	Lookahead   int
	MaxColocate int
}

// DefaultConfig returns a controller with congestion-control-style
// dynamics around the paper's ε = 0.15 operating point.
func DefaultConfig() Config {
	return Config{
		InitialEpsilon: 0.15,
		MinEpsilon:     0.01,
		MaxEpsilon:     0.5,
		Target:         0.12,
		Step:           0.5,
		Trials:         400,
		Lookahead:      10,
		MaxColocate:    3,
	}
}

// BatchReport records one executed batch and the controller state.
type BatchReport struct {
	JobIDs []int
	// AvgPST is the observed batch fidelity (0..1); SeparateEstimate
	// is the EPST-based expectation had the jobs run alone.
	AvgPST           float64
	SeparateEstimate float64
	// EpsilonAfter is the threshold after adaptation.
	EpsilonAfter float64
	Violated     bool
}

// Result is the full adaptive run.
type Result struct {
	Reports []BatchReport
	// AvgPST is the mean observed fidelity over all jobs; TRF the
	// throughput gain.
	AvgPST float64
	TRF    float64
	// FinalEpsilon is the threshold the controller converged to.
	FinalEpsilon float64
}

// Run processes the queue adaptively: schedule the next batch with the
// current epsilon, compile and "execute" it (Monte-Carlo simulation
// stands in for hardware), compare the observed fidelity against the
// separate-execution expectation, and adapt epsilon.
func Run(d *arch.Device, jobs []sched.Job, cfg Config, seed int64) (*Result, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("quos: trials must be positive")
	}
	if len(jobs) == 0 {
		return &Result{FinalEpsilon: cfg.InitialEpsilon}, nil
	}
	eps := cfg.InitialEpsilon
	queue := append([]sched.Job(nil), jobs...)
	comp := core.NewCompiler(d)
	comp.Attempts = 2
	noise := sim.DefaultNoise()

	var (
		reports  []BatchReport
		pstSum   float64
		pstCount int
	)
	for len(queue) > 0 {
		scfg := sched.DefaultConfig()
		scfg.Epsilon = eps
		scfg.Lookahead = cfg.Lookahead
		scfg.MaxColocate = cfg.MaxColocate
		if d.NumQubits() > 20 {
			scfg.Omega = 0.40
		}
		batches, err := sched.Schedule(d, queue, scfg)
		if err != nil {
			return nil, fmt.Errorf("quos: %w", err)
		}
		batch := batches[0]
		byID := map[int]*circuit.Circuit{}
		for _, j := range queue {
			byID[j.ID] = j.Circ
		}
		progs := make([]*circuit.Circuit, len(batch.JobIDs))
		for i, id := range batch.JobIDs {
			progs[i] = byID[id]
		}
		strat := core.CDAPXSwap
		if len(progs) == 1 {
			strat = core.Separate
		}
		res, err := comp.Compile(progs, strat)
		if err != nil {
			res, err = comp.Compile(progs, core.Separate)
			if err != nil {
				return nil, fmt.Errorf("quos: job %d unschedulable: %w", batch.JobIDs[0], err)
			}
		}
		psts, err := comp.Simulate(res, cfg.Trials, seed+int64(len(reports)), noise)
		if err != nil {
			return nil, err
		}
		avg := 0.0
		for _, p := range psts {
			avg += p
			pstSum += p
			pstCount++
		}
		avg /= float64(len(psts))

		// Expectation if the jobs had run alone: their separate PSTs
		// estimated analytically from a separate compilation's ESP.
		sepRes, err := comp.Compile(progs, core.Separate)
		if err != nil {
			return nil, err
		}
		sepEst := 0.0
		for i := range progs {
			esp, err := sim.AnalyticESP(d, sepRes.Schedules[i], 1, noise.IdleErrPerLayer)
			if err != nil {
				return nil, err
			}
			sepEst += esp.PerProgram[0]
		}
		sepEst /= float64(len(progs))

		violated := len(progs) > 1 && avg < sepEst*(1-cfg.Target)
		if violated {
			eps /= 1 + cfg.Step
			if eps < cfg.MinEpsilon {
				eps = cfg.MinEpsilon
			}
		} else if len(progs) > 1 {
			eps *= 1 + cfg.Step/2
			if eps > cfg.MaxEpsilon {
				eps = cfg.MaxEpsilon
			}
		}
		reports = append(reports, BatchReport{
			JobIDs:           batch.JobIDs,
			AvgPST:           avg,
			SeparateEstimate: sepEst,
			EpsilonAfter:     eps,
			Violated:         violated,
		})

		inBatch := map[int]bool{}
		for _, id := range batch.JobIDs {
			inBatch[id] = true
		}
		var rest []sched.Job
		for _, j := range queue {
			if !inBatch[j.ID] {
				rest = append(rest, j)
			}
		}
		queue = rest
	}
	out := &Result{
		Reports:      reports,
		FinalEpsilon: eps,
		TRF:          float64(len(jobs)) / float64(len(reports)),
	}
	if pstCount > 0 {
		out.AvgPST = pstSum / float64(pstCount)
	}
	return out, nil
}
