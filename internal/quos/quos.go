// Package quos prototypes the adaptive runtime the paper's QuOS vision
// sketches (§II-E, §III): a feedback controller around the EPST
// scheduler. The static scheduler trusts its estimated fidelity; QuOS
// additionally observes each batch's *achieved* fidelity and adapts the
// co-location threshold epsilon on-the-fly — tightening it after
// fidelity regressions (reverting toward separate execution, which the
// paper notes static systems cannot do) and relaxing it when
// multi-programming proves harmless.
package quos

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Config tunes the adaptive controller.
type Config struct {
	// InitialEpsilon seeds the co-location threshold.
	InitialEpsilon float64
	// MinEpsilon and MaxEpsilon bound the adaptation.
	MinEpsilon, MaxEpsilon float64
	// Target is the tolerated achieved-fidelity loss per batch:
	// observed PST may fall below the separate-execution estimate by
	// this fraction before the controller reacts.
	Target float64
	// Step is the multiplicative adaptation: epsilon /= (1+Step) on
	// violation, *= (1+Step/2) on success (asymmetric, like congestion
	// control: back off fast, probe slowly).
	Step float64
	// Trials is the Monte-Carlo budget per batch observation.
	Trials int
	// Lookahead and MaxColocate pass through to the scheduler.
	Lookahead   int
	MaxColocate int
}

// DefaultConfig returns a controller with congestion-control-style
// dynamics around the paper's ε = 0.15 operating point.
func DefaultConfig() Config {
	return Config{
		InitialEpsilon: 0.15,
		MinEpsilon:     0.01,
		MaxEpsilon:     0.5,
		Target:         0.12,
		Step:           0.5,
		Trials:         400,
		Lookahead:      10,
		MaxColocate:    3,
	}
}

// Controller is the epsilon-adaptation rule of the QuOS runtime,
// factored out of Run so that long-running services (internal/service)
// can feed it live batch observations. A Controller is not safe for
// concurrent use; give each backend worker its own.
type Controller struct {
	cfg Config
	eps float64
}

// NewController returns a controller seeded at cfg.InitialEpsilon.
func NewController(cfg Config) *Controller {
	return &Controller{cfg: cfg, eps: cfg.InitialEpsilon}
}

// Epsilon is the current co-location threshold to schedule with.
func (c *Controller) Epsilon() float64 { return c.eps }

// Observe feeds one executed batch: whether it co-located programs,
// the achieved average PST, and the separate-execution estimate. It
// adapts epsilon (back off fast on violation, probe slowly on success)
// and reports whether the batch violated the fidelity target.
func (c *Controller) Observe(colocated bool, avgPST, separateEstimate float64) bool {
	violated := colocated && avgPST < separateEstimate*(1-c.cfg.Target)
	if violated {
		c.eps /= 1 + c.cfg.Step
		if c.eps < c.cfg.MinEpsilon {
			c.eps = c.cfg.MinEpsilon
		}
	} else if colocated {
		c.eps *= 1 + c.cfg.Step/2
		if c.eps > c.cfg.MaxEpsilon {
			c.eps = c.cfg.MaxEpsilon
		}
	}
	return violated
}

// BatchReport records one executed batch and the controller state.
type BatchReport struct {
	JobIDs []int
	// AvgPST is the observed batch fidelity (0..1); SeparateEstimate
	// is the EPST-based expectation had the jobs run alone.
	AvgPST           float64
	SeparateEstimate float64
	// EpsilonAfter is the threshold after adaptation.
	EpsilonAfter float64
	Violated     bool
}

// Result is the full adaptive run.
type Result struct {
	Reports []BatchReport
	// AvgPST is the mean observed fidelity over all jobs; TRF the
	// throughput gain.
	AvgPST float64
	TRF    float64
	// FinalEpsilon is the threshold the controller converged to.
	FinalEpsilon float64
}

// SeparateEstimate is the expectation had the jobs run alone: each
// program's PST estimated analytically (ESP) from a separate
// compilation, averaged over the programs. Long-running services use
// it as the reference the Controller compares achieved fidelity to.
func SeparateEstimate(comp *core.Compiler, progs []*circuit.Circuit, noise sim.NoiseModel) (float64, error) {
	return SeparateEstimateContext(context.Background(), comp, progs, noise)
}

// SeparateEstimateContext is SeparateEstimate under a caller context,
// so a service's per-batch deadline also bounds the reference
// compilation the adaptive controller compares against.
func SeparateEstimateContext(ctx context.Context, comp *core.Compiler, progs []*circuit.Circuit, noise sim.NoiseModel) (float64, error) {
	sepRes, err := comp.CompileContext(ctx, progs, core.Separate)
	if err != nil {
		return 0, err
	}
	est := 0.0
	for i := range progs {
		esp, err := sim.AnalyticESP(comp.Device, sepRes.Schedules[i], 1, noise.IdleErrPerLayer)
		if err != nil {
			return 0, err
		}
		est += esp.PerProgram[0]
	}
	return est / float64(len(progs)), nil
}

// Run processes the queue adaptively: schedule the next batch with the
// current epsilon, compile and "execute" it (Monte-Carlo simulation
// stands in for hardware), compare the observed fidelity against the
// separate-execution expectation, and adapt epsilon.
func Run(d *arch.Device, jobs []sched.Job, cfg Config, seed int64) (*Result, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("quos: trials must be positive")
	}
	if len(jobs) == 0 {
		return &Result{FinalEpsilon: cfg.InitialEpsilon}, nil
	}
	ctrl := NewController(cfg)
	queue := append([]sched.Job(nil), jobs...)
	comp := core.NewCompiler(d)
	comp.Attempts = 2
	noise := sim.DefaultNoise()

	var (
		reports  []BatchReport
		pstSum   float64
		pstCount int
	)
	for len(queue) > 0 {
		scfg := sched.DefaultConfig()
		scfg.Epsilon = ctrl.Epsilon()
		scfg.Lookahead = cfg.Lookahead
		scfg.MaxColocate = cfg.MaxColocate
		if d.NumQubits() > 20 {
			scfg.Omega = 0.40
		}
		batches, err := sched.Schedule(d, queue, scfg)
		if err != nil {
			return nil, fmt.Errorf("quos: %w", err)
		}
		batch := batches[0]
		byID := map[int]*circuit.Circuit{}
		for _, j := range queue {
			byID[j.ID] = j.Circ
		}
		progs := make([]*circuit.Circuit, len(batch.JobIDs))
		for i, id := range batch.JobIDs {
			progs[i] = byID[id]
		}
		strat := core.CDAPXSwap
		if len(progs) == 1 {
			strat = core.Separate
		}
		res, err := comp.Compile(progs, strat)
		if err != nil {
			res, err = comp.Compile(progs, core.Separate)
			if err != nil {
				return nil, fmt.Errorf("quos: job %d unschedulable: %w", batch.JobIDs[0], err)
			}
		}
		psts, err := comp.Simulate(res, cfg.Trials, seed+int64(len(reports)), noise)
		if err != nil {
			return nil, err
		}
		avg := 0.0
		for _, p := range psts {
			avg += p
			pstSum += p
			pstCount++
		}
		avg /= float64(len(psts))

		sepEst, err := SeparateEstimate(comp, progs, noise)
		if err != nil {
			return nil, err
		}

		violated := ctrl.Observe(len(progs) > 1, avg, sepEst)
		reports = append(reports, BatchReport{
			JobIDs:           batch.JobIDs,
			AvgPST:           avg,
			SeparateEstimate: sepEst,
			EpsilonAfter:     ctrl.Epsilon(),
			Violated:         violated,
		})

		inBatch := map[int]bool{}
		for _, id := range batch.JobIDs {
			inBatch[id] = true
		}
		var rest []sched.Job
		for _, j := range queue {
			if !inBatch[j.ID] {
				rest = append(rest, j)
			}
		}
		queue = rest
	}
	out := &Result{
		Reports:      reports,
		FinalEpsilon: ctrl.Epsilon(),
		TRF:          float64(len(jobs)) / float64(len(reports)),
	}
	if pstCount > 0 {
		out.AvgPST = pstSum / float64(pstCount)
	}
	return out, nil
}
