package router

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
)

// optimalSwaps finds the true minimum SWAP count to execute the 2-qubit
// gate sequence on the device from the initial mapping, by BFS over
// (mapping, gates-done) states. Exponential — tiny instances only.
func optimalSwaps(d *arch.Device, pairs [][2]int, initial []int) int {
	n := d.NumQubits()
	type state struct {
		mapping string // logical -> phys, as bytes
		done    int
	}
	encode := func(m []int) string {
		b := make([]byte, len(m))
		for i, v := range m {
			b[i] = byte(v)
		}
		return string(b)
	}
	decode := func(s string) []int {
		m := make([]int, len(s))
		for i := range s {
			m[i] = int(s[i])
		}
		return m
	}
	// advance executes every executable gate prefix.
	advance := func(m []int, done int) int {
		for done < len(pairs) {
			a, b := m[pairs[done][0]], m[pairs[done][1]]
			if !d.Coupling.HasEdge(a, b) {
				break
			}
			done++
		}
		return done
	}
	start := state{encode(initial), advance(initial, 0)}
	if start.done == len(pairs) {
		return 0
	}
	seen := map[state]bool{start: true}
	frontier := []state{start}
	for depth := 1; depth <= 12; depth++ {
		var next []state
		for _, st := range frontier {
			m := decode(st.mapping)
			phys2log := make([]int, n)
			for i := range phys2log {
				phys2log[i] = -1
			}
			for l, p := range m {
				phys2log[p] = l
			}
			for _, e := range d.Coupling.Edges() {
				m2 := append([]int(nil), m...)
				la, lb := phys2log[e.U], phys2log[e.V]
				if la >= 0 {
					m2[la] = e.V
				}
				if lb >= 0 {
					m2[lb] = e.U
				}
				done := advance(m2, st.done)
				if done == len(pairs) {
					return depth
				}
				ns := state{encode(m2), done}
				if !seen[ns] {
					seen[ns] = true
					next = append(next, ns)
				}
			}
		}
		frontier = next
	}
	return -1 // not found within bound
}

// TestRouterNearOptimalOnSmallInstances compares the heuristic router's
// SWAP count against the exact optimum on random small circuits. The
// heuristic may lose a little, but large gaps indicate a regression.
func TestRouterNearOptimalOnSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	devices := []*arch.Device{
		arch.Linear(4, 0.02, 0.02),
		arch.Ring(5, 0.02, 0.02),
		arch.Grid(2, 3, 0.02, 0.02),
	}
	totalOpt, totalGot := 0, 0
	cases := 0
	for _, d := range devices {
		for trial := 0; trial < 12; trial++ {
			nl := 3 + rng.Intn(2) // 3-4 logical qubits
			if nl > d.NumQubits() {
				nl = d.NumQubits()
			}
			var pairs [][2]int
			c := circuit.New("t", nl)
			for g := 0; g < 4+rng.Intn(5); g++ {
				a := rng.Intn(nl)
				b := rng.Intn(nl - 1)
				if b >= a {
					b++
				}
				pairs = append(pairs, [2]int{a, b})
				c.CX(a, b)
			}
			perm := rng.Perm(d.NumQubits())[:nl]
			opt := optimalSwaps(d, pairs, perm)
			if opt < 0 {
				continue // beyond the exhaustive bound; skip
			}
			s, err := Route(d, []*circuit.Circuit{c}, [][]int{perm}, DefaultOptions())
			if err != nil {
				t.Fatalf("%s trial %d: %v", d.Name, trial, err)
			}
			if err := s.Validate([]*circuit.Circuit{c}, [][]int{perm}); err != nil {
				t.Fatal(err)
			}
			if s.SwapCount < opt {
				t.Fatalf("%s trial %d: router used %d swaps, below proven optimum %d — optimal search is wrong",
					d.Name, trial, s.SwapCount, opt)
			}
			// Per-instance slack: the heuristic may use up to opt+3
			// extra swaps on adversarial cases.
			if s.SwapCount > opt+3 {
				t.Errorf("%s trial %d: router %d swaps vs optimal %d", d.Name, trial, s.SwapCount, opt)
			}
			totalOpt += opt
			totalGot += s.SwapCount
			cases++
		}
	}
	if cases < 20 {
		t.Fatalf("only %d cases solved exactly", cases)
	}
	// Aggregate: within 60% of optimal total.
	if float64(totalGot) > 1.6*float64(totalOpt)+3 {
		t.Fatalf("aggregate swaps %d vs optimal %d: heuristic too far from optimal", totalGot, totalOpt)
	}
	t.Logf("router swaps %d vs optimal %d over %d instances", totalGot, totalOpt, cases)
}
