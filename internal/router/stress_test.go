package router

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/circuit"
)

// randomDevice builds one of the standard test topologies from a seed.
func randomDevice(rng *rand.Rand) *arch.Device {
	switch rng.Intn(4) {
	case 0:
		return arch.Linear(4+rng.Intn(5), 0.02+0.05*rng.Float64(), 0.02)
	case 1:
		return arch.Grid(2+rng.Intn(2), 2+rng.Intn(3), 0.02, 0.02)
	case 2:
		return arch.Ring(4+rng.Intn(5), 0.03, 0.02)
	default:
		return arch.IBMQ16(rng.Int63())
	}
}

// randomProgram builds a random circuit over n qubits.
func randomProgram(rng *rand.Rand, name string, n, gates int) *circuit.Circuit {
	c := circuit.New(name, n)
	for i := 0; i < gates; i++ {
		a := rng.Intn(n)
		switch rng.Intn(4) {
		case 0:
			c.H(a)
		case 1:
			c.T(a)
		default:
			if n > 1 {
				b := rng.Intn(n - 1)
				if b >= a {
					b++
				}
				c.CX(a, b)
			} else {
				c.X(a)
			}
		}
	}
	return c.MeasureAll()
}

// randomDisjointMappings places the programs on random disjoint qubits.
func randomDisjointMappings(rng *rand.Rand, d *arch.Device, progs []*circuit.Circuit) [][]int {
	perm := rng.Perm(d.NumQubits())
	out := make([][]int, len(progs))
	at := 0
	for i, p := range progs {
		out[i] = append([]int(nil), perm[at:at+p.NumQubits]...)
		at += p.NumQubits
	}
	return out
}

// TestRouteStress fuzzes the router across topologies, programs,
// mappings, and option sets: every run must terminate, validate, and
// keep simulator-visible invariants (each measurement on a distinct
// physical qubit).
func TestRouteStress(t *testing.T) {
	optionSets := []func() Options{
		DefaultOptions,
		XSWAPOptions,
		func() Options {
			o := DefaultOptions()
			o.NoisePenalty = 3
			return o
		},
		func() Options {
			o := XSWAPOptions()
			o.UseBridge = true
			return o
		},
		func() Options {
			o := DefaultOptions()
			o.UseBridge = true
			o.ExtendedSetSize = 0
			o.ExtendedSetWeight = 0
			return o
		},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDevice(rng)
		nprogs := 1 + rng.Intn(2)
		total := d.NumQubits()
		var progs []*circuit.Circuit
		remaining := total
		for i := 0; i < nprogs && remaining >= 2; i++ {
			n := 2 + rng.Intn(min2(3, remaining-1))
			if n > remaining {
				n = remaining
			}
			progs = append(progs, randomProgram(rng, "p", n, 5+rng.Intn(20)))
			remaining -= n
		}
		mappings := randomDisjointMappings(rng, d, progs)
		opts := optionSets[rng.Intn(len(optionSets))]()
		opts.Seed = seed
		s, err := Route(d, progs, mappings, opts)
		if err != nil {
			// Intra-only routing can be genuinely infeasible when a
			// program's qubits are separated by another program on a
			// path-like chip; that is a documented failure, not a bug.
			return !opts.InterProgram
		}
		if err := s.Validate(progs, mappings); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		seen := map[int]bool{}
		perProgram := map[int]int{}
		for _, m := range s.Measurements {
			if seen[m.Phys] {
				t.Logf("seed %d: measurement collision on phys %d", seed, m.Phys)
				return false
			}
			seen[m.Phys] = true
			perProgram[m.Program]++
		}
		for pi, p := range progs {
			if perProgram[pi] != p.NumQubits {
				t.Logf("seed %d: program %d measured %d of %d qubits", seed, pi, perProgram[pi], p.NumQubits)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestRouteStressLargeChip runs fewer but bigger cases on IBMQ50.
func TestRouteStressLargeChip(t *testing.T) {
	if testing.Short() {
		t.Skip("large-chip stress skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(42))
	d := arch.IBMQ50(1)
	for i := 0; i < 6; i++ {
		progs := []*circuit.Circuit{
			randomProgram(rng, "a", 6, 60),
			randomProgram(rng, "b", 8, 80),
			randomProgram(rng, "c", 5, 40),
		}
		mappings := randomDisjointMappings(rng, d, progs)
		opts := XSWAPOptions()
		opts.Seed = int64(i)
		s, err := Route(d, progs, mappings, opts)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if err := s.Validate(progs, mappings); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}
