// Package router solves the mapping-transition problem: given programs
// with initial mappings on a chip, it inserts SWAPs until every
// two-qubit gate is executed on coupled physical qubits. It implements
// a SABRE-style heuristic search (front layer + extended-set look-ahead
// + decay), an optional noise-aware SWAP cost (the multi-programming
// baseline's transition), and the paper's X-SWAP scheme (Algorithm 3):
// joint routing of all co-located programs with inter-program SWAPs,
// critical-gate candidate restriction, and the gain/score function of
// Equations 2-3.
package router

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/arch"
	"repro/internal/circuit"
)

// Options tunes the router. The zero value is not useful; start from
// DefaultOptions.
type Options struct {
	// ExtendedSetSize is the look-ahead window |E| (gates).
	ExtendedSetSize int
	// ExtendedSetWeight is SABRE's W: the weight of the extended-set
	// cost relative to the front-layer cost.
	ExtendedSetWeight float64
	// DecayFactor discourages ping-ponging the same qubit; each SWAP
	// bumps its qubits' decay, which multiplies candidate scores.
	DecayFactor float64
	// DecayResetInterval resets decay every this many SWAPs.
	DecayResetInterval int
	// NoisePenalty adds -NoisePenalty*log(reliability of the SWAP's 3
	// CNOTs) to each candidate score, making routes prefer reliable
	// links (the noise-aware baseline). 0 disables it.
	NoisePenalty float64
	// InterProgram enables inter-program SWAPs (X-SWAP). When false,
	// each SWAP must stay within one program's qubits plus free qubits.
	InterProgram bool
	// GainTerm enables Equation 3's gain prioritization (SWAPs on the
	// global shortest path of gates where inter-program routing is
	// shorter score better). Only meaningful with InterProgram.
	GainTerm bool
	// CriticalGatesOnly restricts SWAP candidates to qubits of critical
	// gates (front gates with second-layer successors), as X-SWAP does.
	// When no critical gates exist, all front gates are used.
	CriticalGatesOnly bool
	// UseBridge executes distance-2 CNOTs as a 4-CNOT bridge (the
	// middle qubit is restored) instead of SWAPping, when the same
	// qubit pair does not recur in the look-ahead window. Bridges never
	// change the mapping; under InterProgram the middle qubit may
	// belong to another program (it is returned to its state).
	UseBridge bool
	// Seed drives random tie-breaking among equal-score candidates
	// ("best of 5 attempts" in the paper's methodology).
	Seed int64
}

// DefaultOptions returns the SABRE-like defaults used by every strategy.
func DefaultOptions() Options {
	return Options{
		ExtendedSetSize:    20,
		ExtendedSetWeight:  0.5,
		DecayFactor:        0.001,
		DecayResetInterval: 5,
		NoisePenalty:       0,
		InterProgram:       false,
		CriticalGatesOnly:  false,
		Seed:               1,
	}
}

// XSWAPOptions returns Algorithm 3's configuration: inter-program SWAPs
// with critical-gate prioritization on top of the SABRE defaults.
func XSWAPOptions() Options {
	o := DefaultOptions()
	o.InterProgram = true
	o.GainTerm = true
	o.CriticalGatesOnly = true
	return o
}

// Op is one scheduled operation on physical qubits.
type Op struct {
	// Program is the index of the owning program, or -1 for SWAPs
	// (SWAPs belong to the schedule, not to any single program).
	Program int
	// Gate has physical qubit operands.
	Gate circuit.Gate
	// IsSwap marks inserted routing SWAPs (not gates from the source).
	IsSwap bool
	// InterProgram marks SWAPs whose endpoints belonged to two
	// different programs when applied.
	InterProgram bool
	// GateIndex is the source gate index within its program (-1 for
	// inserted SWAPs).
	GateIndex int
	// TriggerProgram is, for SWAPs, the program whose blocked gate
	// caused the SWAP (-1 for non-SWAP ops; cost attribution).
	TriggerProgram int
	// BridgePart is 1..4 for the CNOTs of a bridged source CNOT
	// (GateIndex then names the source gate), 0 otherwise.
	BridgePart int
}

// Measurement records where a program's logical qubit was measured.
type Measurement struct {
	Program int
	Logical int
	Phys    int
}

// Schedule is the routed output for a set of co-located programs.
type Schedule struct {
	Device       *arch.Device
	Ops          []Op
	Measurements []Measurement
	// SwapCount and InterSwapCount total the inserted SWAPs;
	// BridgeCount totals the CNOTs executed as 4-CNOT bridges.
	SwapCount      int
	InterSwapCount int
	BridgeCount    int
	// SwapsByProgram attributes each SWAP to the program whose gate
	// triggered it (inter-program SWAPs count for that program too).
	SwapsByProgram []int
	// FinalMapping[p][l] is the physical qubit holding program p's
	// logical qubit l after all gates executed.
	FinalMapping [][]int
}

// PhysicalCircuit renders the schedule as one circuit over the device's
// physical qubits (SWAPs kept as swap gates; CNOTCount and Depth then
// account them as 3 CNOTs / 3 layers).
func (s *Schedule) PhysicalCircuit() *circuit.Circuit {
	c := circuit.New("schedule", s.Device.NumQubits())
	for _, op := range s.Ops {
		c.Add(op.Gate)
	}
	return c
}

// CNOTCount returns the post-compilation CNOT count (SWAP = 3 CNOTs).
func (s *Schedule) CNOTCount() int { return s.PhysicalCircuit().CNOTCount() }

// Depth returns the post-compilation circuit depth (SWAP = 3 layers).
func (s *Schedule) Depth() int { return s.PhysicalCircuit().Depth() }

// Validate re-simulates the schedule's qubit movements and checks that
// every two-qubit op touches coupled qubits, every source gate appears
// exactly once per program in dependency order, and measurements match
// the qubit positions at measure time.
func (s *Schedule) Validate(progs []*circuit.Circuit, initial [][]int) error {
	l2p := make([][]int, len(progs))
	for p := range progs {
		l2p[p] = append([]int(nil), initial[p]...)
	}
	next := make([]int, len(progs)) // next expected source gate per program (by DAG order we just check count)
	emitted := make([][]bool, len(progs))
	for p := range progs {
		emitted[p] = make([]bool, len(progs[p].Gates))
	}
	p2l := map[int][2]int{} // phys -> (program, logical)
	bridgeParts := map[[2]int]int{}
	for p, m := range l2p {
		for l, phys := range m {
			if prev, ok := p2l[phys]; ok {
				return fmt.Errorf("router: initial mapping collision on phys %d (%v vs %d/%d)", phys, prev, p, l)
			}
			p2l[phys] = [2]int{p, l}
		}
	}
	type measCheck struct {
		opIndex, program, logical, phys int
	}
	var measChecks []measCheck
	for i, op := range s.Ops {
		if op.Gate.IsTwoQubit() && !s.Device.Coupling.HasEdge(op.Gate.Qubits[0], op.Gate.Qubits[1]) {
			return fmt.Errorf("router: op %d %v on uncoupled qubits", i, op.Gate)
		}
		if op.IsSwap {
			a, b := op.Gate.Qubits[0], op.Gate.Qubits[1]
			la, aok := p2l[a]
			lb, bok := p2l[b]
			if aok {
				l2p[la[0]][la[1]] = b
			}
			if bok {
				l2p[lb[0]][lb[1]] = a
			}
			delete(p2l, a)
			delete(p2l, b)
			if aok {
				p2l[b] = la
			}
			if bok {
				p2l[a] = lb
			}
			continue
		}
		p := op.Program
		if p < 0 || p >= len(progs) {
			return fmt.Errorf("router: op %d has program %d", i, p)
		}
		gi := op.GateIndex
		if gi < 0 || gi >= len(progs[p].Gates) || emitted[p][gi] {
			return fmt.Errorf("router: op %d bad/duplicate gate index %d", i, gi)
		}
		src := progs[p].Gates[gi]
		if src.IsMeasure() {
			// Measurements are deferred and carry final positions;
			// verified after the replay completes.
			measChecks = append(measChecks, measCheck{i, p, src.Qubits[0], op.Gate.Qubits[0]})
			emitted[p][gi] = true
			next[p]++
			continue
		}
		if op.BridgePart > 0 {
			key := [2]int{p, gi}
			if op.BridgePart != bridgeParts[key]+1 {
				return fmt.Errorf("router: op %d bridge part %d out of order", i, op.BridgePart)
			}
			bridgeParts[key] = op.BridgePart
			// Parts 2 and 4 carry the control on the source's control
			// qubit; parts 1 and 3 carry the target on the source's
			// target qubit.
			switch op.BridgePart {
			case 2, 4:
				if op.Gate.Qubits[0] != l2p[p][src.Qubits[0]] {
					return fmt.Errorf("router: op %d bridge control mismatch", i)
				}
			default:
				if op.Gate.Qubits[1] != l2p[p][src.Qubits[1]] {
					return fmt.Errorf("router: op %d bridge target mismatch", i)
				}
			}
			if op.BridgePart == 4 {
				emitted[p][gi] = true
				next[p]++
			}
			continue
		}
		for k, lq := range src.Qubits {
			if l2p[p][lq] != op.Gate.Qubits[k] {
				return fmt.Errorf("router: op %d operand %d: logical %d is at phys %d, op says %d",
					i, k, lq, l2p[p][lq], op.Gate.Qubits[k])
			}
		}
		emitted[p][gi] = true
		next[p]++
	}
	for _, mc := range measChecks {
		if got := l2p[mc.program][mc.logical]; got != mc.phys {
			return fmt.Errorf("router: op %d measures phys %d but logical %d/%d ends at %d",
				mc.opIndex, mc.phys, mc.program, mc.logical, got)
		}
	}
	if len(s.Measurements) != len(measChecks) {
		return fmt.Errorf("router: %d measurement records for %d measure ops", len(s.Measurements), len(measChecks))
	}
	for i, m := range s.Measurements {
		if got := l2p[m.Program][m.Logical]; got != m.Phys {
			return fmt.Errorf("router: measurement %d records phys %d, final position is %d", i, m.Phys, got)
		}
	}
	for p := range progs {
		want := 0
		for _, g := range progs[p].Gates {
			if !g.IsBarrier() {
				want++
			}
		}
		if next[p] != want {
			return fmt.Errorf("router: program %d emitted %d/%d gates", p, next[p], want)
		}
	}
	return nil
}

// Route routes the programs jointly on the device starting from the
// given initial mappings (initial[p][l] = physical qubit of program p's
// logical qubit l). Regions must be disjoint; every physical qubit not
// in any mapping is free. It returns the complete schedule.
func Route(d *arch.Device, progs []*circuit.Circuit, initial [][]int, opts Options) (*Schedule, error) {
	r, err := newRun(d, progs, initial, opts)
	if err != nil {
		return nil, err
	}
	if err := r.route(); err != nil {
		return nil, err
	}
	r.sched.FinalMapping = make([][]int, len(progs))
	for p, pr := range r.progs {
		r.sched.FinalMapping[p] = append([]int(nil), pr.l2p...)
	}
	// Measurements are deferred to the end of the co-located schedule
	// (a program cannot be measured while others still run, §III-C),
	// and later SWAPs — including other programs' inter-program SWAPs —
	// may move an already-"measured" qubit. Rewrite every measurement
	// to the qubit's final physical position.
	for i := range r.sched.Ops {
		op := &r.sched.Ops[i]
		if op.Gate.IsMeasure() && op.Program >= 0 {
			lq := progs[op.Program].Gates[op.GateIndex].Qubits[0]
			op.Gate = circuit.Gate{Name: circuit.GateMeasure, Qubits: []int{r.progs[op.Program].l2p[lq]}}
		}
	}
	for i := range r.sched.Measurements {
		m := &r.sched.Measurements[i]
		m.Phys = r.progs[m.Program].l2p[m.Logical]
	}
	return r.sched, nil
}

// newRun validates the inputs and builds the routing state Route drives
// to completion (split out so tests can step the loop manually).
func newRun(d *arch.Device, progs []*circuit.Circuit, initial [][]int, opts Options) (*run, error) {
	if len(progs) != len(initial) {
		return nil, fmt.Errorf("router: %d programs but %d mappings", len(progs), len(initial))
	}
	r := &run{
		d:     d,
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
		sched: &Schedule{Device: d, SwapsByProgram: make([]int, len(progs))},
		decay: make([]float64, d.NumQubits()),
	}
	r.owner = make([]int, d.NumQubits())
	r.physLog = make([]int, d.NumQubits())
	for q := range r.owner {
		r.owner[q] = -1
		r.physLog[q] = -1
	}
	for p, prog := range progs {
		if prog.NumQubits != len(initial[p]) {
			return nil, fmt.Errorf("router: program %d has %d qubits, mapping has %d", p, prog.NumQubits, len(initial[p]))
		}
		pr := &progCtx{
			idx:   p,
			circ:  prog,
			state: circuit.NewState(circuit.NewDAG(prog)),
			l2p:   append([]int(nil), initial[p]...),
		}
		for l, phys := range pr.l2p {
			if phys < 0 || phys >= d.NumQubits() {
				return nil, fmt.Errorf("router: program %d logical %d mapped to %d", p, l, phys)
			}
			if r.owner[phys] != -1 {
				return nil, fmt.Errorf("router: physical qubit %d assigned twice", phys)
			}
			r.owner[phys] = p
			r.physLog[phys] = l
		}
		r.progs = append(r.progs, pr)
	}
	for p, prog := range progs {
		if err := measuresAreTerminal(prog); err != nil {
			return nil, fmt.Errorf("router: program %d: %w", p, err)
		}
	}
	return r, nil
}

// measuresAreTerminal checks that no gate touches a qubit after that
// qubit's measurement: the schedule defers all measurements to the end,
// which is only sound for terminal measurements.
func measuresAreTerminal(c *circuit.Circuit) error {
	measured := make([]bool, c.NumQubits)
	for i, g := range c.Gates {
		if g.IsBarrier() {
			continue
		}
		for _, q := range g.Qubits {
			if measured[q] {
				return fmt.Errorf("gate %d touches qubit %d after its measurement", i, q)
			}
		}
		if g.IsMeasure() {
			measured[g.Qubits[0]] = true
		}
	}
	return nil
}

type progCtx struct {
	idx   int
	circ  *circuit.Circuit
	state *circuit.State
	l2p   []int
	// Blocked-front cache: fb holds the blocked front-layer two-qubit
	// gates, valid while fbOK. It is invalidated whenever the front
	// layer advances (run.exec) or the program's mapping moves
	// (applySwap); frontBuf is the scratch for the DAG front query.
	// Routing asks for the blocked front several times per SWAP step
	// (bridges, candidates, scoring) — the cache makes all but the
	// first ask free.
	fb       []int
	fbOK     bool
	frontBuf []int
	// Restricted-hops memo (Equation 2's D'_p): rhops is the all-pairs
	// BFS result for ownership mask rhAllowed. The mask only changes
	// when a SWAP moves a program boundary, so most pickSwap calls
	// reuse the matrix instead of redoing n BFS traversals.
	rhAllowed []bool
	rhops     [][]int
}

type run struct {
	d       *arch.Device
	opts    Options
	rng     *rand.Rand
	progs   []*progCtx
	sched   *Schedule
	owner   []int // phys -> program or -1
	physLog []int // phys -> logical within owner or -1
	decay   []float64
	nswaps  int
	// Per-step scratch (see DESIGN.md, "Hot-path memory discipline"):
	// the candidate/scoring loop runs once per inserted SWAP, so its
	// working sets are reused instead of reallocated.
	allowedBuf []bool          // restrictedHops mask scratch
	seenEdge   []bool          // swapCandidates dedup, indexed a*n+b
	seenKeys   []int           // touched seenEdge entries to clear
	candBuf    []swapCandidate // swapCandidates output buffer
	critBuf    []int           // candidateGates critical-subset buffer
	snapsBuf   []progSnapshot  // pickSwap per-program snapshots
	bestBuf    []swapCandidate // pickSwap tied-best buffer
}

// exec advances program p past gate gi and invalidates its cached
// blocked front. Every front-layer Execute in the routing loop must go
// through here — a stale front cache would silently change SWAP
// candidates.
func (r *run) exec(p *progCtx, gi int) {
	p.state.Execute(gi)
	p.fbOK = false
}

func (r *run) route() error {
	hops := r.d.Hops()
	stall := 0
	limit := 200 + 20*r.d.NumQubits()
	for {
		progress := r.executeCompliant()
		done := true
		for _, p := range r.progs {
			if !p.state.Done() {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		if progress {
			stall = 0
		} else {
			stall++
		}
		if stall > limit {
			// Livelock backstop: walk the most blocked gate home along
			// its shortest legal path.
			if err := r.forceProgress(hops); err != nil {
				return err
			}
			stall = 0
			continue
		}
		if r.opts.UseBridge && r.tryBridges(hops) {
			stall = 0
			continue
		}
		cands := r.swapCandidates()
		if len(cands) == 0 {
			if err := r.forceProgress(hops); err != nil {
				return err
			}
			continue
		}
		best := r.pickSwap(cands, hops)
		r.applySwap(best, hops)
	}
}

// executeCompliant drains every hardware-compliant gate from all front
// layers (Algorithm 3 lines 4-6), returning whether anything executed.
func (r *run) executeCompliant() bool {
	any := false
	for {
		progress := false
		for _, p := range r.progs {
			for _, gi := range p.state.Front() {
				g := p.circ.Gates[gi]
				switch {
				case g.IsBarrier():
					r.exec(p, gi)
					progress = true
				case g.IsMeasure():
					phys := p.l2p[g.Qubits[0]]
					r.emit(p, gi, circuit.Gate{Name: circuit.GateMeasure, Qubits: []int{phys}})
					r.sched.Measurements = append(r.sched.Measurements, Measurement{
						Program: p.idx, Logical: g.Qubits[0], Phys: phys,
					})
					r.exec(p, gi)
					progress = true
				case !g.IsTwoQubit():
					r.emit(p, gi, g.Remap(func(l int) int { return p.l2p[l] }))
					r.exec(p, gi)
					progress = true
				default:
					a, b := p.l2p[g.Qubits[0]], p.l2p[g.Qubits[1]]
					if r.d.Coupling.HasEdge(a, b) {
						r.emit(p, gi, g.Remap(func(l int) int { return p.l2p[l] }))
						r.exec(p, gi)
						progress = true
					}
				}
			}
		}
		if !progress {
			return any
		}
		any = true
	}
}

func (r *run) emit(p *progCtx, gateIndex int, g circuit.Gate) {
	r.sched.Ops = append(r.sched.Ops, Op{Program: p.idx, Gate: g, GateIndex: gateIndex, TriggerProgram: -1})
}

// tryBridges executes blocked distance-2 CNOTs whose qubit pair does
// not recur in the look-ahead window as 4-CNOT bridges (middle qubit
// restored, mapping unchanged). Returns whether any gate executed.
func (r *run) tryBridges(hops [][]int) bool {
	any := false
	for _, p := range r.progs {
		for _, gi := range r.blockedFront(p) {
			g := p.circ.Gates[gi]
			if !g.IsCNOT() {
				continue
			}
			c, t := p.l2p[g.Qubits[0]], p.l2p[g.Qubits[1]]
			if hops[c][t] != 2 {
				continue
			}
			if r.pairRecurs(p, g.Qubits[0], g.Qubits[1]) {
				continue // SWAPping pays off for recurring pairs
			}
			m := r.bridgeMiddle(c, t, p.idx)
			if m < 0 {
				continue
			}
			seq := [4][2]int{{m, t}, {c, m}, {m, t}, {c, m}}
			for k, cx := range seq {
				r.sched.Ops = append(r.sched.Ops, Op{
					Program:        p.idx,
					Gate:           circuit.Gate{Name: circuit.GateCX, Qubits: []int{cx[0], cx[1]}},
					GateIndex:      gi,
					BridgePart:     k + 1,
					TriggerProgram: -1,
				})
			}
			r.sched.BridgeCount++
			r.exec(p, gi)
			any = true
		}
	}
	return any
}

// pairRecurs reports whether the logical pair (a,b) appears in another
// unexecuted two-qubit gate within the program's look-ahead window.
func (r *run) pairRecurs(p *progCtx, a, b int) bool {
	if a > b {
		a, b = b, a
	}
	window := p.state.ExtendedSet(r.opts.ExtendedSetSize)
	for _, gi := range window {
		g := p.circ.Gates[gi]
		x, y := g.Qubits[0], g.Qubits[1]
		if x > y {
			x, y = y, x
		}
		if x == a && y == b {
			return true
		}
	}
	return false
}

// bridgeMiddle returns the most reliable qubit adjacent to both c and t
// that the inter-program policy allows as a bridge middle, or -1.
func (r *run) bridgeMiddle(c, t, prog int) int {
	best, bestRel := -1, -1.0
	for _, m := range r.d.Coupling.Neighbors(c) {
		if !r.d.Coupling.HasEdge(m, t) {
			continue
		}
		if !r.opts.InterProgram && r.owner[m] != -1 && r.owner[m] != prog {
			continue
		}
		rel := (1 - r.d.CNOTError(c, m)) * (1 - r.d.CNOTError(m, t))
		if rel > bestRel {
			best, bestRel = m, rel
		}
	}
	return best
}

// swapCandidate is one candidate SWAP on a coupling edge.
type swapCandidate struct {
	a, b int // physical qubits
	// trigger is the program whose blocked gate generated the
	// candidate (for SWAP attribution).
	trigger int
}

// swapCandidates collects the SWAPs associated with the qubits of the
// candidate gates (critical gates when enabled and present, otherwise
// all blocked front gates), filtered by the inter-program policy. The
// dedup set and output list live on the run and are reused every step;
// the returned slice is valid until the next call.
func (r *run) swapCandidates() []swapCandidate {
	n := r.d.NumQubits()
	if r.seenEdge == nil {
		r.seenEdge = make([]bool, n*n)
	}
	out := r.candBuf[:0]
	r.seenKeys = r.seenKeys[:0]
	for _, p := range r.progs {
		gates := r.candidateGates(p)
		for _, gi := range gates {
			g := p.circ.Gates[gi]
			for _, lq := range g.Qubits {
				phys := p.l2p[lq]
				for _, nb := range r.d.Coupling.Neighbors(phys) {
					if !r.swapAllowed(p.idx, phys, nb) {
						continue
					}
					a, b := phys, nb
					if a > b {
						a, b = b, a
					}
					key := a*n + b
					if r.seenEdge[key] {
						continue
					}
					r.seenEdge[key] = true
					r.seenKeys = append(r.seenKeys, key)
					out = append(out, swapCandidate{a: a, b: b, trigger: p.idx})
				}
			}
		}
	}
	for _, key := range r.seenKeys {
		r.seenEdge[key] = false
	}
	// Candidate edges are unique, so insertion sort by (a, b) yields the
	// same order sort.Slice did, without its per-call allocations; lists
	// are a handful of edges long.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].a < out[j-1].a || (out[j].a == out[j-1].a && out[j].b < out[j-1].b)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	r.candBuf = out
	return out
}

// candidateGates returns the gate indices whose qubits seed SWAP
// candidates for program p: blocked front two-qubit gates, narrowed to
// critical gates when the option is on and any exist.
func (r *run) candidateGates(p *progCtx) []int {
	front := r.blockedFront(p)
	if !r.opts.CriticalGatesOnly {
		return front
	}
	// Both lists are sorted ascending, so the intersection is a linear
	// merge into the reusable critical-subset buffer.
	crit := r.critBuf[:0]
	cg := p.state.CriticalGates()
	i := 0
	for _, gi := range front {
		for i < len(cg) && cg[i] < gi {
			i++
		}
		if i < len(cg) && cg[i] == gi {
			crit = append(crit, gi)
		}
	}
	r.critBuf = crit
	if len(crit) > 0 {
		return crit
	}
	return front
}

// blockedFront returns p's front-layer two-qubit gates that are not
// hardware-compliant (executeCompliant has already drained compliant
// ones, but stay defensive). The result is cached on the program and
// invalidated by exec and applySwap — the only two mutations that can
// change it; callers must not hold the slice across either.
func (r *run) blockedFront(p *progCtx) []int {
	if p.fbOK {
		return p.fb
	}
	p.frontBuf = p.state.AppendFrontTwoQubit(p.frontBuf[:0])
	p.fb = p.fb[:0]
	for _, gi := range p.frontBuf {
		g := p.circ.Gates[gi]
		a, b := p.l2p[g.Qubits[0]], p.l2p[g.Qubits[1]]
		if !r.d.Coupling.HasEdge(a, b) {
			p.fb = append(p.fb, gi)
		}
	}
	p.fbOK = true
	return p.fb
}

// swapAllowed applies the inter-program policy: a SWAP touching another
// program's qubit is only legal under X-SWAP.
func (r *run) swapAllowed(prog, a, b int) bool {
	if r.opts.InterProgram {
		return true
	}
	for _, q := range [2]int{a, b} {
		if r.owner[q] != -1 && r.owner[q] != prog {
			return false
		}
	}
	return true
}

// restrictedHops returns D'_p: hop distances over the qubits free or
// owned by program p (Equation 2's per-program matrix). The matrix is
// memoized per program against its ownership mask: intra-program SWAPs
// leave the mask untouched, so the all-pairs BFS only reruns when a
// SWAP actually moves a program boundary. Callers must treat the
// returned matrix as read-only.
func (r *run) restrictedHops(p int) [][]int {
	pr := r.progs[p]
	if r.allowedBuf == nil {
		r.allowedBuf = make([]bool, r.d.NumQubits())
	}
	allowed := r.allowedBuf
	same := pr.rhops != nil
	for q := range allowed {
		a := r.owner[q] == -1 || r.owner[q] == p
		allowed[q] = a
		if same && pr.rhAllowed[q] != a {
			same = false
		}
	}
	if same {
		return pr.rhops
	}
	pr.rhAllowed = append(pr.rhAllowed[:0], allowed...)
	pr.rhops = r.d.Coupling.RestrictedHops(allowed)
	return pr.rhops
}

// progSnapshot caches everything score evaluation needs about one
// program for one SWAP decision, so candidates don't recompute it.
type progSnapshot struct {
	p     *progCtx
	front []int   // blocked front-layer 2q gate indices
	ext   []int   // extended-set gate indices
	dist  [][]int // distance matrix used by H (D or D'_p)
	// gainOf[k] is Equation 2's gain for front[k] (0 when irrelevant),
	// and gainST[k] the gate's current physical endpoints.
	gainOf []float64
	gainST [][2]int
}

// pickSwap scores every candidate with the heuristic cost function
// (Equation 3) and returns the minimum; ties break uniformly at random.
func (r *run) pickSwap(cands []swapCandidate, hops [][]int) swapCandidate {
	snaps := r.snapsBuf[:0]
	for _, p := range r.progs {
		front := r.blockedFront(p)
		if len(front) == 0 {
			continue
		}
		snap := progSnapshot{p: p, front: front}
		if r.opts.ExtendedSetWeight > 0 && r.opts.ExtendedSetSize > 0 {
			snap.ext = p.state.ExtendedSet(r.opts.ExtendedSetSize)
		}
		if r.opts.InterProgram {
			snap.dist = hops
		} else {
			snap.dist = r.restrictedHops(p.idx)
		}
		if r.opts.InterProgram && r.opts.GainTerm {
			dp := r.restrictedHops(p.idx)
			snap.gainOf = make([]float64, len(front))
			snap.gainST = make([][2]int, len(front))
			for k, gi := range front {
				g := p.circ.Gates[gi]
				s, t := p.l2p[g.Qubits[0]], p.l2p[g.Qubits[1]]
				snap.gainST[k] = [2]int{s, t}
				dGlobal := hops[s][t]
				dOwn := dp[s][t]
				if dOwn < 0 {
					dOwn = r.d.NumQubits() * 2
				}
				if gain := float64(dGlobal - dOwn); gain < 0 {
					snap.gainOf[k] = gain
				}
			}
		}
		snaps = append(snaps, snap)
	}
	r.snapsBuf = snaps

	best := r.bestBuf[:0]
	bestScore := math.Inf(1)
	for _, c := range cands {
		s := r.scoreSwap(c, hops, snaps)
		switch {
		case s < bestScore-1e-9:
			bestScore = s
			best = best[:0]
			best = append(best, c)
		case s <= bestScore+1e-9:
			best = append(best, c)
		}
	}
	r.bestBuf = best
	return best[r.rng.Intn(len(best))]
}

// scoreSwap computes score(SWAP) = H(SWAP) + Σ_i (1/|F_i|) Σ_g
// gain(g)·I(SWAP,g) plus the decay and noise terms.
func (r *run) scoreSwap(c swapCandidate, hops [][]int, snaps []progSnapshot) float64 {
	h := 0.0
	for si := range snaps {
		snap := &snaps[si]
		p := snap.p
		// Trial mapping: where each logical qubit would be after the swap.
		trial := func(l int) int {
			phys := p.l2p[l]
			switch phys {
			case c.a:
				return c.b
			case c.b:
				return c.a
			}
			return phys
		}
		sum := 0.0
		for _, gi := range snap.front {
			g := p.circ.Gates[gi]
			dd := snap.dist[trial(g.Qubits[0])][trial(g.Qubits[1])]
			if dd < 0 {
				dd = r.d.NumQubits() // unreachable under restriction: strongly discourage
			}
			sum += float64(dd)
		}
		h += sum / float64(len(snap.front))
		if len(snap.ext) > 0 {
			esum := 0.0
			for _, gi := range snap.ext {
				g := p.circ.Gates[gi]
				dd := snap.dist[trial(g.Qubits[0])][trial(g.Qubits[1])]
				if dd < 0 {
					dd = r.d.NumQubits()
				}
				esum += float64(dd)
			}
			h += r.opts.ExtendedSetWeight * esum / float64(len(snap.ext))
		}

		// Gain term (Equations 2-3): prioritize SWAPs lying on the
		// global shortest path of gates for which inter-program routing
		// is shorter than intra-program routing; gain(g) = D - D'_i <= 0
		// lowers the score of such SWAPs.
		if snap.gainOf != nil {
			gsum := 0.0
			for k := range snap.front {
				if snap.gainOf[k] >= 0 { // gains are negative where set, 0 where irrelevant
					continue
				}
				st := snap.gainST[k]
				if onShortestPath(hops, st[0], st[1], c.a, c.b) {
					gsum += snap.gainOf[k]
				}
			}
			h += gsum / float64(len(snap.front))
		}
	}

	// Decay discourages revisiting recently swapped qubits.
	dec := r.decay[c.a]
	if r.decay[c.b] > dec {
		dec = r.decay[c.b]
	}
	h *= 1 + dec

	// Noise-awareness: penalize unreliable links.
	if r.opts.NoisePenalty > 0 {
		rel := 1 - r.d.CNOTError(c.a, c.b)
		if rel < 1e-9 {
			rel = 1e-9
		}
		h += r.opts.NoisePenalty * 3 * -math.Log(rel)
	}
	return h
}

// onShortestPath reports whether the edge {a,b} lies on some shortest
// path between s and t.
func onShortestPath(hops [][]int, s, t, a, b int) bool {
	d := hops[s][t]
	if d < 0 {
		return false
	}
	if hops[s][a] >= 0 && hops[b][t] >= 0 && hops[s][a]+1+hops[b][t] == d {
		return true
	}
	return hops[s][b] >= 0 && hops[a][t] >= 0 && hops[s][b]+1+hops[a][t] == d
}

// applySwap emits the SWAP and updates mappings, ownership and decay.
func (r *run) applySwap(c swapCandidate, hops [][]int) {
	inter := r.owner[c.a] != -1 && r.owner[c.b] != -1 && r.owner[c.a] != r.owner[c.b]
	r.sched.Ops = append(r.sched.Ops, Op{
		Program:        -1,
		Gate:           circuit.Gate{Name: circuit.GateSWAP, Qubits: []int{c.a, c.b}},
		IsSwap:         true,
		InterProgram:   inter,
		GateIndex:      -1,
		TriggerProgram: c.trigger,
	})
	r.sched.SwapCount++
	if inter {
		r.sched.InterSwapCount++
	}
	if c.trigger >= 0 && c.trigger < len(r.sched.SwapsByProgram) {
		r.sched.SwapsByProgram[c.trigger]++
	}

	oa, ob := r.owner[c.a], r.owner[c.b]
	la, lb := r.physLog[c.a], r.physLog[c.b]
	if oa != -1 {
		r.progs[oa].l2p[la] = c.b
		r.progs[oa].fbOK = false
	}
	if ob != -1 {
		r.progs[ob].l2p[lb] = c.a
		r.progs[ob].fbOK = false
	}
	r.owner[c.a], r.owner[c.b] = ob, oa
	r.physLog[c.a], r.physLog[c.b] = lb, la

	r.nswaps++
	if r.opts.DecayResetInterval > 0 && r.nswaps%r.opts.DecayResetInterval == 0 {
		for i := range r.decay {
			r.decay[i] = 0
		}
	} else {
		r.decay[c.a] += r.opts.DecayFactor
		r.decay[c.b] += r.opts.DecayFactor
	}
}

// forceProgress routes the single most-blocked gate directly: it walks
// one endpoint toward the other along a legal shortest path, emitting
// the needed SWAPs. Guarantees termination when heuristic search stalls.
func (r *run) forceProgress(hops [][]int) error {
	// Pick the blocked gate with the smallest current distance.
	var (
		bp   *progCtx
		bg   = -1
		bd   = 1 << 30
		path []int
	)
	for _, p := range r.progs {
		for _, gi := range r.blockedFront(p) {
			g := p.circ.Gates[gi]
			s, t := p.l2p[g.Qubits[0]], p.l2p[g.Qubits[1]]
			var pth []int
			if r.opts.InterProgram {
				pth = r.d.Coupling.ShortestPath(s, t)
			} else {
				pth = r.restrictedPath(p.idx, s, t)
			}
			if pth == nil {
				continue
			}
			if len(pth) < bd {
				bp, bg, bd, path = p, gi, len(pth), pth
			}
		}
	}
	if bg < 0 {
		return fmt.Errorf("router: no blocked gate is routable; chip regions disconnected")
	}
	// Swap the source endpoint along the path until adjacent.
	for i := 0; i+2 < len(path); i++ {
		r.applySwap(swapCandidate{a: min2(path[i], path[i+1]), b: max2(path[i], path[i+1]), trigger: bp.idx}, hops)
	}
	return nil
}

// restrictedPath returns a shortest path from s to t over qubits free or
// owned by program p.
func (r *run) restrictedPath(p, s, t int) []int {
	allowed := make([]bool, r.d.NumQubits())
	for q := range allowed {
		allowed[q] = r.owner[q] == -1 || r.owner[q] == p
	}
	if !allowed[s] || !allowed[t] {
		return nil
	}
	// BFS with deterministic tie-break.
	prev := make([]int, r.d.NumQubits())
	dist := make([]int, r.d.NumQubits())
	for i := range prev {
		prev[i] = -1
		dist[i] = -1
	}
	dist[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		nbrs := append([]int(nil), r.d.Coupling.Neighbors(u)...)
		sort.Ints(nbrs)
		for _, v := range nbrs {
			if allowed[v] && dist[v] < 0 {
				dist[v] = dist[u] + 1
				prev[v] = u
				queue = append(queue, v)
			}
		}
	}
	if dist[t] < 0 {
		return nil
	}
	var path []int
	for at := t; at != -1; at = prev[at] {
		path = append(path, at)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
