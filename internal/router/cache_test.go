package router

import (
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/nisqbench"
)

// testRun builds a mid-route run over two co-located programs and
// drains the compliant prefix so the front layers hold blocked gates.
func testRun(tb testing.TB, opts Options) *run {
	tb.Helper()
	d := arch.IBMQ16(0)
	progs := []*circuit.Circuit{nisqbench.MustGet("bv_n3"), nisqbench.MustGet("3_17_13")}
	r, err := newRun(d, progs, [][]int{{0, 1, 2}, {5, 6, 7}}, opts)
	if err != nil {
		tb.Fatal(err)
	}
	r.executeCompliant()
	return r
}

// freshBlockedFront recomputes what blockedFront must return, bypassing
// the cache — the oracle for the invalidation tests.
func freshBlockedFront(r *run, p *progCtx) []int {
	var out []int
	for _, gi := range p.state.FrontTwoQubit() {
		g := p.circ.Gates[gi]
		a, b := p.l2p[g.Qubits[0]], p.l2p[g.Qubits[1]]
		if !r.d.Coupling.HasEdge(a, b) {
			out = append(out, gi)
		}
	}
	return out
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBlockedFrontCacheTracksMutations walks a real routing run and, at
// every step, checks the cached blocked front against a fresh
// recomputation — across executeCompliant drains and SWAP applications,
// the two invalidation sources.
func TestBlockedFrontCacheTracksMutations(t *testing.T) {
	for _, opts := range []Options{DefaultOptions(), XSWAPOptions()} {
		r := testRun(t, opts)
		hops := r.d.Hops()
		for step := 0; step < 60; step++ {
			for _, p := range r.progs {
				if got, want := r.blockedFront(p), freshBlockedFront(r, p); !sameInts(got, want) {
					t.Fatalf("step %d: cached blocked front %v, fresh %v", step, got, want)
				}
			}
			done := true
			for _, p := range r.progs {
				if !p.state.Done() {
					done = false
				}
			}
			if done {
				break
			}
			cands := r.swapCandidates()
			if len(cands) == 0 {
				if err := r.forceProgress(hops); err != nil {
					t.Fatal(err)
				}
			} else {
				r.applySwap(r.pickSwap(cands, hops), hops)
			}
			r.executeCompliant()
		}
	}
}

// TestRestrictedHopsMemo checks both memo behaviors: a repeat call with
// unchanged ownership returns the cached matrix, and an ownership
// change produces the same matrix a fresh computation would.
func TestRestrictedHopsMemo(t *testing.T) {
	r := testRun(t, XSWAPOptions())
	first := r.restrictedHops(0)
	if second := r.restrictedHops(0); &second[0] != &first[0] {
		t.Fatal("unchanged ownership recomputed the restricted-hops matrix")
	}
	fresh := func(p int) [][]int {
		allowed := make([]bool, r.d.NumQubits())
		for q := range allowed {
			allowed[q] = r.owner[q] == -1 || r.owner[q] == p
		}
		return r.d.Coupling.RestrictedHops(allowed)
	}
	if !reflect.DeepEqual(first, fresh(0)) {
		t.Fatal("memoized restricted hops differ from a fresh computation")
	}
	// Move a program boundary: swap one of program 0's qubits with a
	// free neighbor, which changes the allowed mask for both programs.
	var moved bool
	for _, nb := range r.d.Coupling.Neighbors(r.progs[0].l2p[0]) {
		if r.owner[nb] == -1 {
			a, b := r.progs[0].l2p[0], nb
			if a > b {
				a, b = b, a
			}
			r.applySwap(swapCandidate{a: a, b: b, trigger: 0}, r.d.Hops())
			moved = true
			break
		}
	}
	if !moved {
		t.Skip("no free neighbor to move a program boundary")
	}
	for p := range r.progs {
		if got, want := r.restrictedHops(p), fresh(p); !reflect.DeepEqual(got, want) {
			t.Fatalf("program %d: post-swap restricted hops differ from fresh computation", p)
		}
	}
}

// TestSwapCandidatesAllocs is the router-side allocation guard: once
// the per-step scratch is warm, collecting SWAP candidates must not
// allocate.
func TestSwapCandidatesAllocs(t *testing.T) {
	for _, opts := range []Options{DefaultOptions(), XSWAPOptions()} {
		r := testRun(t, opts)
		r.swapCandidates() // warm the scratch buffers
		allocs := testing.AllocsPerRun(50, func() {
			p := r.progs[0]
			p.fbOK = false // force the front recomputation too
			r.swapCandidates()
		})
		if opts.CriticalGatesOnly {
			// CriticalGates itself allocates its result; allow it but
			// nothing unbounded.
			if allocs > 8 {
				t.Fatalf("critical-gates candidate step allocates %.1f per run, want <= 8", allocs)
			}
		} else if allocs > 0 {
			t.Fatalf("candidate step allocates %.1f per run, want 0", allocs)
		}
	}
}

// TestSwapCandidatesMatchUncached pins the scratch rewrite against the
// original map-and-sort implementation.
func TestSwapCandidatesMatchUncached(t *testing.T) {
	for _, opts := range []Options{DefaultOptions(), XSWAPOptions()} {
		r := testRun(t, opts)
		got := append([]swapCandidate(nil), r.swapCandidates()...)

		seen := map[[2]int]bool{}
		var want []swapCandidate
		for _, p := range r.progs {
			for _, gi := range r.candidateGates(p) {
				g := p.circ.Gates[gi]
				for _, lq := range g.Qubits {
					phys := p.l2p[lq]
					for _, nb := range r.d.Coupling.Neighbors(phys) {
						if !r.swapAllowed(p.idx, phys, nb) {
							continue
						}
						key := [2]int{phys, nb}
						if key[0] > key[1] {
							key[0], key[1] = key[1], key[0]
						}
						if seen[key] {
							continue
						}
						seen[key] = true
						want = append(want, swapCandidate{a: key[0], b: key[1], trigger: p.idx})
					}
				}
			}
		}
		for i := 1; i < len(want); i++ {
			for j := i; j > 0 && (want[j].a < want[j-1].a || (want[j].a == want[j-1].a && want[j].b < want[j-1].b)); j-- {
				want[j], want[j-1] = want[j-1], want[j]
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("interProgram=%v: scratch candidates %v differ from reference %v", opts.InterProgram, got, want)
		}
	}
}
