// Property tests for the router, in an external test package so they
// can drive schedules through internal/sim (sim imports router, so an
// internal test would be an import cycle).
package router_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/router"
	"repro/internal/sim"
)

// randomClifford builds a seeded random Clifford circuit ending in
// MeasureAll, the shape the router's measure-deferral expects.
func randomClifford(rng *rand.Rand, name string, qubits, gates int) *circuit.Circuit {
	c := circuit.New(name, qubits)
	for i := 0; i < gates; i++ {
		if qubits >= 2 && rng.Intn(3) == 0 {
			a := rng.Intn(qubits)
			b := rng.Intn(qubits - 1)
			if b >= a {
				b++
			}
			if rng.Intn(2) == 0 {
				c.CX(a, b)
			} else {
				c.CZ(a, b)
			}
			continue
		}
		q := rng.Intn(qubits)
		switch rng.Intn(5) {
		case 0:
			c.H(q)
		case 1:
			c.S(q)
		case 2:
			c.Sdg(q)
		case 3:
			c.X(q)
		default:
			c.Z(q)
		}
	}
	return c.MeasureAll()
}

// checkSchedule asserts the structural properties every schedule must
// satisfy: Validate passes, every two-qubit op (source gate or inserted
// SWAP alike) runs on a coupled pair, and the final mappings form an
// injective placement into the device's physical qubits.
func checkSchedule(t *testing.T, d *arch.Device, s *router.Schedule, progs []*circuit.Circuit, initial [][]int) {
	t.Helper()
	if err := s.Validate(progs, initial); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for i, op := range s.Ops {
		if op.Gate.IsTwoQubit() && !d.Coupling.HasEdge(op.Gate.Qubits[0], op.Gate.Qubits[1]) {
			t.Fatalf("op %d %v uses uncoupled qubits", i, op.Gate)
		}
	}
	if len(s.FinalMapping) != len(progs) {
		t.Fatalf("FinalMapping has %d programs, want %d", len(s.FinalMapping), len(progs))
	}
	seen := map[int]bool{}
	for p, m := range s.FinalMapping {
		if len(m) != progs[p].NumQubits {
			t.Fatalf("program %d final mapping has %d entries, want %d", p, len(m), progs[p].NumQubits)
		}
		for l, phys := range m {
			if phys < 0 || phys >= d.NumQubits() {
				t.Fatalf("program %d logical %d mapped to phys %d, outside [0,%d)", p, l, phys, d.NumQubits())
			}
			if seen[phys] {
				t.Fatalf("program %d logical %d collides on phys %d", p, l, phys)
			}
			seen[phys] = true
		}
	}
}

// checkCliffordEquivalence asserts the routed schedule computes the same
// function as the logical programs: its noiseless Correct strings must
// match each program's device-free stabilizer reference.
func checkCliffordEquivalence(t *testing.T, d *arch.Device, s *router.Schedule, progs []*circuit.Circuit, seed int64) {
	t.Helper()
	out, err := sim.SimulateScheduleClifford(d, s, progs, 1, seed, sim.NoiseModel{})
	if err != nil {
		t.Fatalf("SimulateScheduleClifford: %v", err)
	}
	for p, prog := range progs {
		want, err := sim.CliffordOutcome(prog)
		if err != nil {
			t.Fatalf("CliffordOutcome(%s): %v", prog.Name, err)
		}
		if out.Correct[p] != want {
			t.Fatalf("program %d (%s): schedule computes %q, logical circuit computes %q",
				p, prog.Name, out.Correct[p], want)
		}
	}
}

// routerVariants covers the strategy-relevant option sets: plain SABRE,
// X-SWAP (inter-program with gain term), and bridging.
var routerVariants = []struct {
	name string
	opts router.Options
}{
	{"default", router.DefaultOptions()},
	{"xswap", router.XSWAPOptions()},
	{"bridge", func() router.Options { o := router.XSWAPOptions(); o.UseBridge = true; return o }()},
}

func TestRouteSingleProperties(t *testing.T) {
	d := arch.London()
	for _, v := range routerVariants {
		for trial := 0; trial < 8; trial++ {
			t.Run(fmt.Sprintf("%s/%d", v.name, trial), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(100 + trial)))
				qubits := 3 + rng.Intn(3) // 3..5 on the 5-qubit chip
				prog := randomClifford(rng, fmt.Sprintf("rc%d", trial), qubits, 10+rng.Intn(10))
				initial := make([]int, qubits)
				for l := range initial {
					initial[l] = l
				}
				s, err := router.RouteSingle(d, prog, initial, v.opts)
				if err != nil {
					t.Fatalf("RouteSingle: %v", err)
				}
				checkSchedule(t, d, s, []*circuit.Circuit{prog}, [][]int{initial})
				checkCliffordEquivalence(t, d, s, []*circuit.Circuit{prog}, int64(trial))
			})
		}
	}
}

func TestRouteMultiProgramProperties(t *testing.T) {
	d := arch.IBMQ16(0)
	for _, v := range routerVariants {
		for trial := 0; trial < 6; trial++ {
			t.Run(fmt.Sprintf("%s/%d", v.name, trial), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(500 + trial)))
				p0 := randomClifford(rng, "p0", 3, 8+rng.Intn(8))
				p1 := randomClifford(rng, "p1", 4, 8+rng.Intn(8))
				progs := []*circuit.Circuit{p0, p1}
				initial := [][]int{{0, 1, 2}, {3, 4, 5, 6}}
				s, err := router.Route(d, progs, initial, v.opts)
				if err != nil {
					t.Fatalf("Route: %v", err)
				}
				checkSchedule(t, d, s, progs, initial)
				checkCliffordEquivalence(t, d, s, progs, int64(trial))
			})
		}
	}
}
