package router

import (
	"math/rand"

	"repro/internal/arch"
	"repro/internal/circuit"
)

// RouteSingle routes one program (e.g. a merged multi-program circuit)
// with the given initial mapping.
func RouteSingle(d *arch.Device, prog *circuit.Circuit, initial []int, opts Options) (*Schedule, error) {
	return Route(d, []*circuit.Circuit{prog}, [][]int{initial}, opts)
}

// stripMeasures returns the circuit without measurement gates (reverse
// traversal must not replay measurements).
func stripMeasures(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(c.Name+"-nomeas", c.NumQubits)
	for _, g := range c.Gates {
		if !g.IsMeasure() {
			out.Add(g)
		}
	}
	return out
}

// reversed returns the circuit with its gate order reversed (gate
// inverses are irrelevant for mapping: only qubit pairs matter).
func reversed(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(c.Name+"-rev", c.NumQubits)
	for i := len(c.Gates) - 1; i >= 0; i-- {
		if !c.Gates[i].IsBarrier() {
			out.Add(c.Gates[i])
		}
	}
	return out
}

// RandomInitialMapping returns a uniformly random injective mapping of
// the program's logical qubits onto the device.
func RandomInitialMapping(d *arch.Device, prog *circuit.Circuit, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(d.NumQubits())
	return perm[:prog.NumQubits]
}

// ReverseTraversal implements SABRE's initial-mapping refinement: route
// the circuit forward, reuse the final mapping as the initial mapping of
// the reversed circuit, and iterate. The returned mapping is the one to
// use for the final forward pass. iters counts forward/backward pairs
// (the paper uses a small constant; 3 by our default callers).
func ReverseTraversal(d *arch.Device, prog *circuit.Circuit, start []int, iters int, opts Options) ([]int, error) {
	fwd := stripMeasures(prog)
	bwd := reversed(fwd)
	mapping := append([]int(nil), start...)
	for i := 0; i < iters; i++ {
		s, err := RouteSingle(d, fwd, mapping, opts)
		if err != nil {
			return nil, err
		}
		mapping = s.FinalMapping[0]
		s, err = RouteSingle(d, bwd, mapping, opts)
		if err != nil {
			return nil, err
		}
		mapping = s.FinalMapping[0]
	}
	return mapping, nil
}

// ReverseTraversalMulti refines the initial mappings of co-located
// programs jointly: route all programs forward, reuse the final
// mappings for the reversed programs, and iterate. The SWAP policy in
// opts (intra-only vs X-SWAP) is honored throughout, so programs stay
// within reach of their partitions under intra-only routing.
func ReverseTraversalMulti(d *arch.Device, progs []*circuit.Circuit, initial [][]int, iters int, opts Options) ([][]int, error) {
	fwd := make([]*circuit.Circuit, len(progs))
	bwd := make([]*circuit.Circuit, len(progs))
	for i, p := range progs {
		fwd[i] = stripMeasures(p)
		bwd[i] = reversed(fwd[i])
	}
	maps := make([][]int, len(initial))
	for i := range initial {
		maps[i] = append([]int(nil), initial[i]...)
	}
	for it := 0; it < iters; it++ {
		s, err := Route(d, fwd, maps, opts)
		if err != nil {
			return nil, err
		}
		maps = s.FinalMapping
		s, err = Route(d, bwd, maps, opts)
		if err != nil {
			return nil, err
		}
		maps = s.FinalMapping
	}
	return maps, nil
}

// SABRECompile compiles a single circuit with SABRE: random initial
// mapping refined by reverse traversal, then a final forward route. It
// is the single-program strategy the merged-circuit baseline uses.
func SABRECompile(d *arch.Device, prog *circuit.Circuit, opts Options, traversals int) (*Schedule, error) {
	start := RandomInitialMapping(d, prog, opts.Seed)
	mapping, err := ReverseTraversal(d, prog, start, traversals, opts)
	if err != nil {
		return nil, err
	}
	return RouteSingle(d, prog, mapping, opts)
}
