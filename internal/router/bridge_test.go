package router

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
)

func bridgeOpts() Options {
	o := DefaultOptions()
	o.UseBridge = true
	return o
}

func TestBridgeUsedForDistance2SingleUse(t *testing.T) {
	// cx between ends of a 3-qubit path, used once: bridge, not swap.
	d := arch.Linear(3, 0.02, 0.02)
	p := circuit.New("p", 2)
	p.CX(0, 1).MeasureAll()
	s := routeAndCheck(t, d, []*circuit.Circuit{p}, [][]int{{0, 2}}, bridgeOpts())
	if s.BridgeCount != 1 {
		t.Fatalf("bridges = %d, want 1", s.BridgeCount)
	}
	if s.SwapCount != 0 {
		t.Fatalf("swaps = %d, want 0", s.SwapCount)
	}
	// 4 CNOTs from the bridge, vs 3 (swap) + 1 (cx) without it.
	if got := s.CNOTCount(); got != 4 {
		t.Fatalf("CNOTs = %d, want 4", got)
	}
	// The mapping must be unchanged.
	if s.FinalMapping[0][0] != 0 || s.FinalMapping[0][1] != 2 {
		t.Fatalf("bridge must not move qubits: %v", s.FinalMapping[0])
	}
}

func TestBridgeSkippedForRecurringPair(t *testing.T) {
	// The same pair interacts repeatedly: SWAPping is better, and the
	// recurrence check must block the bridge.
	d := arch.Linear(3, 0.02, 0.02)
	p := circuit.New("p", 2)
	p.CX(0, 1).CX(0, 1).CX(0, 1).MeasureAll()
	s := routeAndCheck(t, d, []*circuit.Circuit{p}, [][]int{{0, 2}}, bridgeOpts())
	if s.BridgeCount != 0 {
		t.Fatalf("bridges = %d, want 0 for a recurring pair", s.BridgeCount)
	}
	if s.SwapCount == 0 {
		t.Fatal("expected a swap for the recurring pair")
	}
}

func TestBridgeMiddleRespectsOwnershipIntraMode(t *testing.T) {
	// 2x2 grid (edges 0-1, 0-2, 1-3, 2-3): p1's cx sits on the diagonal
	// 0..3; middle candidates are 1 (owned by p2) and 2 (free). Make
	// qubit 2's links worse so ownership, not reliability, decides.
	d := arch.Grid(2, 2, 0.02, 0.02)
	for _, e := range d.Coupling.Edges() {
		if e.U == 2 || e.V == 2 {
			d.CNOTErr[e] = 0.06
		}
	}
	p1 := circuit.New("p1", 2)
	p1.CX(0, 1)
	p2 := circuit.New("p2", 1)
	p2.H(0)
	s := routeAndCheck(t, d, []*circuit.Circuit{p1, p2}, [][]int{{0, 3}, {1}}, bridgeOpts())
	if s.BridgeCount != 1 {
		t.Fatalf("bridges = %d, want 1", s.BridgeCount)
	}
	for _, op := range s.Ops {
		if op.BridgePart > 0 {
			for _, q := range op.Gate.Qubits {
				if q == 1 {
					t.Fatal("intra-mode bridge crossed p2's qubit")
				}
			}
		}
	}
	// With inter-program routing the better middle (p2's qubit 1)
	// becomes legal and wins on reliability.
	o := bridgeOpts()
	o.InterProgram = true
	s2 := routeAndCheck(t, d, []*circuit.Circuit{p1, p2}, [][]int{{0, 3}, {1}}, o)
	if s2.BridgeCount != 1 {
		t.Fatalf("inter-program bridge count = %d, want 1", s2.BridgeCount)
	}
	used1 := false
	for _, op := range s2.Ops {
		if op.BridgePart > 0 && (op.Gate.Qubits[0] == 1 || op.Gate.Qubits[1] == 1) {
			used1 = true
		}
	}
	if !used1 {
		t.Fatal("inter-program bridge should use the more reliable middle")
	}
}

func TestBridgePicksReliableMiddle(t *testing.T) {
	// 2x2 grid: cx between diagonal corners 0 and 3; middles 1 and 2.
	// Make qubit 1's links terrible: the bridge must go through 2.
	d := arch.Grid(2, 2, 0.02, 0.02)
	for _, e := range d.Coupling.Edges() {
		if e.U == 1 || e.V == 1 {
			d.CNOTErr[e] = 0.3
		}
	}
	p := circuit.New("p", 2)
	p.CX(0, 1)
	s := routeAndCheck(t, d, []*circuit.Circuit{p}, [][]int{{0, 3}}, bridgeOpts())
	if s.BridgeCount != 1 {
		t.Fatalf("bridges = %d", s.BridgeCount)
	}
	for _, op := range s.Ops {
		if op.BridgePart > 0 {
			for _, q := range op.Gate.Qubits {
				if q == 1 {
					t.Fatal("bridge routed through the unreliable middle")
				}
			}
		}
	}
}

func TestBridgeValidateRejectsReorderedParts(t *testing.T) {
	d := arch.Linear(3, 0.02, 0.02)
	p := circuit.New("p", 2)
	p.CX(0, 1)
	s := routeAndCheck(t, d, []*circuit.Circuit{p}, [][]int{{0, 2}}, bridgeOpts())
	// Swap parts 1 and 2.
	var idx []int
	for i, op := range s.Ops {
		if op.BridgePart > 0 {
			idx = append(idx, i)
		}
	}
	if len(idx) != 4 {
		t.Fatalf("bridge ops = %d", len(idx))
	}
	s.Ops[idx[0]], s.Ops[idx[1]] = s.Ops[idx[1]], s.Ops[idx[0]]
	if err := s.Validate([]*circuit.Circuit{p}, [][]int{{0, 2}}); err == nil {
		t.Fatal("Validate must reject out-of-order bridge parts")
	}
}
